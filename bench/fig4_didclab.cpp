// Reproduces Figure 4: data transfers between WS9 and WS6 on the DIDCLAB LAN.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = eadt::bench::parse_options(argc, argv);
  std::cout << "Figure 4 — DIDCLAB WS9 <-> WS6 (LAN)\n\n";
  eadt::bench::run_concurrency_figure(eadt::testbeds::didclab(), opt);
  return 0;
}
