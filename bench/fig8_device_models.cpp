// Reproduces Figure 8: network device power consumption vs data traffic rate
// under the non-linear, linear and state-based models, plus the Section 4
// energy argument (what each model implies for a whole transfer).
#include <iostream>

#include "bench_common.hpp"
#include "power/device.hpp"

int main(int argc, char** argv) {
  using namespace eadt;
  const auto opt = bench::parse_options(argc, argv);

  std::cout << "Figure 8 — device power vs traffic rate (relative units)\n\n";

  const Watts idle = 100.0, max_dyn = 50.0;
  power::NonLinearDevicePower nonlinear(idle, max_dyn);
  power::LinearDevicePower linear(idle, max_dyn);
  power::StateBasedDevicePower state(
      idle, {{0.25, max_dyn * 0.25}, {0.5, max_dyn * 0.5}, {0.75, max_dyn * 0.75},
             {1.0, max_dyn}});

  Table curve({"traffic %", "non-linear W", "linear W", "state-based W"});
  for (int pct = 0; pct <= 100; pct += 10) {
    const double x = pct / 100.0;
    curve.add_row({std::to_string(pct), Table::num(nonlinear.power(x), 1),
                   Table::num(linear.power(x), 1), Table::num(state.power(x), 1)});
  }
  bench::emit(curve, opt);

  // Section 4's analysis: dynamic energy of moving 100 GB at rate d vs 4d.
  const Bytes data = 100ULL * kGB;
  const BitsPerSecond cap = gbps(10.0);
  Table energy({"model", "E(d=2.5Gbps) J", "E(4d=10Gbps) J", "faster/slower"});
  const power::DevicePowerModel* models[] = {&nonlinear, &linear, &state};
  const char* names[] = {"non-linear", "linear", "state-based"};
  for (int i = 0; i < 3; ++i) {
    const Joules slow = power::device_transfer_energy(*models[i], data, gbps(2.5), cap);
    const Joules fast = power::device_transfer_energy(*models[i], data, gbps(10.0), cap);
    energy.add_row({names[i], Table::num(slow, 0), Table::num(fast, 0),
                    Table::num(fast / slow, 2)});
  }
  std::cout << "Section 4 — load-dependent device energy for a 100 GB transfer\n";
  bench::emit(energy, opt);

  std::cout << "checks:\n"
               "  sub-linear model: faster transfer halves device energy (ratio ~0.5)\n"
               "  linear/state-based: device energy is rate-invariant (ratio ~1.0)\n";
  return 0;
}
