// Reproduces Table 1: per-packet power-consumption coefficients of the
// networking devices, and what they imply per transferred gigabyte.
#include <iostream>

#include "bench_common.hpp"
#include "power/device.hpp"

int main(int argc, char** argv) {
  using namespace eadt;
  const auto opt = bench::parse_options(argc, argv);

  std::cout << "Table 1 — per-packet device power coefficients\n\n";

  const net::DeviceKind kinds[] = {
      net::DeviceKind::kEnterpriseSwitch, net::DeviceKind::kEdgeSwitch,
      net::DeviceKind::kMetroRouter, net::DeviceKind::kEdgeRouter};

  Table table({"device", "Pp (nJ/packet)", "Ps-f (pJ/byte)", "J per GB @1500B MTU"});
  for (const auto kind : kinds) {
    const auto c = power::per_packet_coefficients(kind);
    const double packets_per_gb = static_cast<double>(kGB) / 1500.0;
    const Joules per_gb = packets_per_gb * power::per_packet_energy(kind, 1500);
    table.add_row({net::to_string(kind), Table::num(c.pp_nj, 1),
                   Table::num(c.psf_pj_per_byte, 2), Table::num(per_gb, 3)});
  }
  bench::emit(table, opt);

  std::cout << "Load-dependent network energy of the experiment transfers\n";
  Table routes({"testbed", "dataset GB", "network J"});
  for (auto t : testbeds::all_testbeds()) {
    const Bytes bytes = t.recipe.total_bytes / opt.scale;
    routes.add_row({t.env.name, Table::num(to_gb(bytes), 0),
                    Table::num(power::route_transfer_energy(t.env.route, bytes,
                                                            t.env.path.mtu),
                               0)});
  }
  bench::emit(routes, opt);
  return 0;
}
