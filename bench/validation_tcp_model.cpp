// Cross-validation of the fluid-flow TCP assumptions against the round-based
// packet simulator (net::packet_sim) on the paper's three paths. Not a paper
// figure — this is the repository's own evidence that the substrate stands
// on defensible ground.
#include <iostream>

#include "bench_common.hpp"
#include "net/packet_sim.hpp"

int main(int argc, char** argv) {
  using namespace eadt;
  const auto opt = bench::parse_options(argc, argv);

  std::cout << "Fluid-flow vs packet-level TCP validation\n\n";

  struct Case {
    const char* name;
    net::PathSpec path;
  };
  const Case cases[] = {
      {"XSEDE 10G/40ms", {gbps(10.0), 0.040, 32 * kMB, 1500}},
      {"FutureGrid 1G/28ms", {gbps(1.0), 0.028, 32 * kMB, 1500}},
      {"DIDCLAB 1G/0.2ms", {gbps(1.0), 0.0002, 32 * kMB, 1500}},
  };

  std::cout << "steady-state single-stream goodput\n";
  Table steady({"path", "fluid cap Mbps", "packet sim Mbps", "ratio"});
  for (const auto& c : cases) {
    const auto fluid = net::stream_window_cap(c.path);
    const auto packet = net::packet_sim_steady_goodput(c.path, 1);
    steady.add_row({c.name, Table::num(to_mbps(fluid), 0), Table::num(to_mbps(packet), 0),
                    Table::num(packet / fluid, 3)});
  }
  bench::emit(steady, opt);

  std::cout << "aggregate goodput vs stream count (XSEDE path)\n";
  Table agg({"streams", "packet sim Mbps", "fluid expectation Mbps"});
  for (const int flows : {1, 2, 4, 8, 16}) {
    const auto packet = net::packet_sim_steady_goodput(cases[0].path, flows);
    const double fluid = std::min(
        static_cast<double>(flows) * net::stream_window_cap(cases[0].path),
        cases[0].path.bandwidth);
    agg.add_row({std::to_string(flows), Table::num(to_mbps(packet), 0),
                 Table::num(to_mbps(fluid), 0)});
  }
  bench::emit(agg, opt);

  std::cout << "cold-start ramp duration\n";
  Table ramp({"path", "fluid slow-start s", "packet sim ramp s"});
  for (const auto& c : cases) {
    net::PacketSimConfig config;
    config.path = c.path;
    const auto r = net::simulate_tcp_rounds(config, 600);
    ramp.add_row({c.name, Table::num(net::slow_start_penalty(c.path, 1 * kGB, 0.0), 3),
                  Table::num(r.ramp_time(c.path), 3)});
  }
  bench::emit(ramp, opt);

  std::cout << "checks:\n"
               "  window-limited paths: fluid cap within ~10% of the round model\n"
               "  aggregate saturates at the link once streams * cap exceeds it\n"
               "  ramp durations agree to within round-quantisation factors\n";
  return 0;
}
