// Reproduces the Section 2.2 power-model accuracy table: error rates of the
// fine-grained, CPU-only and TDP-extended models against the (synthetic)
// power meter while running scp/rsync/ftp/bbcp/gridftp-shaped loads.
//
// Paper bands: fine-grained < 6 % everywhere; CPU-only close to fine-grained
// on the home machine; extending via the TDP ratio to the AMD server adds
// another 2-3 % of error.
#include <iostream>

#include "bench_common.hpp"
#include "power/calibrator.hpp"

int main(int argc, char** argv) {
  using namespace eadt;
  const auto opt = bench::parse_options(argc, argv);

  std::cout << "Section 2.2 — power model accuracy\n\n";

  // "Intel" home machine and "AMD" foreign machine, with mildly convex true
  // power curves and 2 % meter noise.
  power::GroundTruthServer intel({240.0, 28.0, 24.0, 18.0, 11.0}, 4, 115.0, 0.04,
                                 0.02, Rng(1001));
  // The AMD server's power tracks its 220 W TDP (~1.91x the Intel's)
  // component-wise to within 10-20 % — vendor spread Eq. 3 cannot see.
  power::GroundTruthServer amd({486.0, 48.6, 50.3, 31.7, 23.9}, 8, 220.0, 0.05, 0.02,
                               Rng(2002));

  const auto cal = power::calibrate(intel, Rng(7));
  std::cout << "model building phase (Intel server):\n"
            << "  fitted coefficients: cpu_scale=" << Table::num(cal.fitted.cpu_scale, 1)
            << " W, mem=" << Table::num(cal.fitted.mem, 1)
            << " W, disk=" << Table::num(cal.fitted.disk, 1)
            << " W, nic=" << Table::num(cal.fitted.nic, 1)
            << " W, base=" << Table::num(cal.fitted.active_base, 1) << " W\n"
            << "  fine-grained R^2 = " << Table::num(cal.fine_grained_r2, 4) << '\n'
            << "  CPU-power correlation = "
            << Table::num(100.0 * cal.cpu_power_correlation, 2)
            << "% (paper reports 89.71%)\n\n";

  const auto rows = power::evaluate_models(cal, intel, amd, Rng(8));
  Table table({"tool", "fine-grained MAPE %", "CPU-only MAPE %",
               "TDP-extended (AMD) MAPE %"});
  for (const auto& r : rows) {
    table.add_row({r.tool, Table::num(r.fine_grained_mape, 2),
                   Table::num(r.cpu_only_mape, 2), Table::num(r.tdp_extended_mape, 2)});
  }
  bench::emit(table, opt);

  std::cout << "checks:\n"
               "  fine-grained model stays under ~6% error for every tool\n"
               "  CPU-only >= fine-grained; TDP extension adds a few percent\n";
  return 0;
}
