// Ablations of the design choices DESIGN.md section 5 calls out. Each section
// switches exactly one decision off (or replaces it with the obvious
// alternative) and reruns the relevant experiment, so the contribution of
// every mechanism to the headline results is visible in isolation.
//
//   1. MinE's Large-chunk single-channel rule (where its energy edge lives)
//   2. HTEE/ProMC log weights vs bytes-proportional weights
//   3. HTEE's stride-2 search vs a full sweep
//   4. Packed vs spread channel placement (the Globus Online energy penalty)
//   5. Pipelining amortisation on/off (small-file collapse)
#include <iostream>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "baselines/baselines.hpp"
#include "obs/obs.hpp"

namespace {

using namespace eadt;

// --trace-out/--metrics-out/--decisions: every ablation run gets its own
// collector slot (trace track), labelled by its table row.
obs::ObsCollector* g_collector = nullptr;
std::size_t g_next_slot = 0;

proto::RunResult run_plan(const testbeds::Testbed& t, const proto::Dataset& ds,
                          proto::TransferPlan plan, proto::Controller* ctl = nullptr,
                          const std::string& label = {}) {
  proto::SessionConfig config;
  if (g_collector != nullptr) {
    config.obs = g_collector->slot(g_next_slot++, label.empty() ? "ablation" : label);
  }
  proto::TransferSession session(t.env, ds, std::move(plan), config);
  return session.run(ctl);
}

std::vector<std::string> row(const std::string& name, const proto::RunResult& r) {
  return {name, Table::num(to_mbps(r.avg_throughput()), 0),
          Table::num(r.end_system_energy, 0),
          Table::num(r.throughput_per_joule(), 0)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const auto collector = bench::make_collector(opt);
  g_collector = collector.get();
  auto t = testbeds::xsede();
  t.recipe.total_bytes /= opt.scale;
  const auto ds = t.make_dataset();
  const int cc = 12;

  std::cout << "Ablations (XSEDE testbed, cc budget " << cc << ")\n\n";

  {
    std::cout << "1. MinE: Large chunk pinned to one channel vs unrestricted\n";
    Table tab({"variant", "Mbps", "Joule", "ratio"});
    tab.add_row(row("MinE (pinned, paper)", run_plan(t, ds, core::plan_min_energy(t.env, ds, cc), nullptr,
                             "mine-pinned")));
    auto unpinned = core::plan_min_energy(t.env, ds, cc);
    unpinned.steal = proto::StealPolicy::kAll;  // freed channels may join Large
    tab.add_row(row("MinE without the rule",
                    run_plan(t, ds, unpinned, nullptr, "mine-unpinned")));
    tab.add_row(row("ProMC (reference)",
                    run_plan(t, ds, baselines::plan_promc(t.env, ds, cc), nullptr,
                             "promc-reference")));
    bench::emit(tab, opt);
  }

  {
    std::cout << "2. Channel weights: log(size)*log(count) vs bytes-proportional\n";
    Table tab({"variant", "Mbps", "Joule", "ratio"});
    tab.add_row(row("log weights (paper)",
                    run_plan(t, ds, baselines::plan_promc(t.env, ds, cc), nullptr,
                             "weights-log")));
    auto bytes_plan = baselines::plan_promc(t.env, ds, cc);
    {
      // Re-allocate channels proportional to chunk bytes (floor + remainder).
      Bytes total = 0;
      for (const auto& c : bytes_plan.chunks) total += c.total;
      int used = 0;
      for (std::size_t i = 0; i < bytes_plan.chunks.size(); ++i) {
        const double share = static_cast<double>(bytes_plan.chunks[i].total) /
                             static_cast<double>(total) * cc;
        bytes_plan.params[i].channels = static_cast<int>(share);
        used += bytes_plan.params[i].channels;
      }
      for (std::size_t i = 0; used < cc; i = (i + 1) % bytes_plan.chunks.size()) {
        ++bytes_plan.params[i].channels;
        ++used;
      }
    }
    tab.add_row(row("bytes-proportional",
                    run_plan(t, ds, bytes_plan, nullptr, "weights-bytes")));
    bench::emit(tab, opt);
  }

  {
    std::cout << "3. HTEE search: stride 2 (paper) vs full sweep (stride 1)\n";
    Table tab({"variant", "probes", "chosen cc", "Mbps", "Joule", "ratio"});
    for (const int stride : {2, 1}) {
      core::HteeController ctl(cc, stride);
      const auto r = run_plan(t, ds, core::plan_htee(t.env, ds, cc), &ctl,
                              stride == 2 ? "htee-stride2" : "htee-full");
      tab.add_row({stride == 2 ? "stride 2 (paper)" : "full sweep",
                   std::to_string(ctl.probe_count()), std::to_string(ctl.chosen_level()),
                   Table::num(to_mbps(r.avg_throughput()), 0),
                   Table::num(r.end_system_energy, 0),
                   Table::num(r.throughput_per_joule(), 0)});
    }
    bench::emit(tab, opt);
  }

  {
    std::cout << "4. Placement: packed on one DTN vs spread across the pool\n";
    Table tab({"variant", "Mbps", "Joule", "active servers/site"});
    for (const auto placement : {proto::Placement::kPacked, proto::Placement::kRoundRobin}) {
      auto plan = baselines::plan_single_chunk(t.env, ds, 2);
      plan.placement = placement;
      const auto r = run_plan(t, ds, std::move(plan), nullptr,
                              placement == proto::Placement::kPacked
                                  ? "placement-packed" : "placement-spread");
      int active = 0;
      for (const auto& s : r.source_servers) active += s.active_time > 0.0 ? 1 : 0;
      tab.add_row({placement == proto::Placement::kPacked ? "packed (custom client)"
                                                          : "spread (GO/GUC style)",
                   Table::num(to_mbps(r.avg_throughput()), 0),
                   Table::num(r.end_system_energy, 0), std::to_string(active)});
    }
    bench::emit(tab, opt);
  }

  {
    std::cout << "5. Pipelining: tuned depth vs disabled (Small chunk only)\n";
    Table tab({"variant", "Mbps", "Joule", "ratio"});
    tab.add_row(row("tuned pipelining (paper)",
                    run_plan(t, ds, baselines::plan_promc(t.env, ds, cc), nullptr,
                             "pipelining-tuned")));
    auto no_pp = baselines::plan_promc(t.env, ds, cc);
    for (auto& p : no_pp.params) p.pipelining = 1;
    tab.add_row(row("pipelining disabled",
                    run_plan(t, ds, std::move(no_pp), nullptr, "pipelining-off")));
    bench::emit(tab, opt);
  }

  if (collector) bench::write_obs_outputs(opt, *collector);
  return 0;
}
