// Reproduces Figure 5: SLA transfers between Stampede and Gordon (XSEDE).
// Targets are percentages of the maximum throughput ProMC achieves at cc=12.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = eadt::bench::parse_options(argc, argv);
  std::cout << "Figure 5 — SLA transfers @XSEDE\n\n";
  eadt::bench::run_sla_figure(eadt::testbeds::xsede(), 12, opt);
  return 0;
}
