// Reproduces Figure 3: data transfers between Alamo (TACC) and
// Hotel (UChicago) on FutureGrid.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = eadt::bench::parse_options(argc, argv);
  std::cout << "Figure 3 — FutureGrid Alamo <-> Hotel\n\n";
  eadt::bench::run_concurrency_figure(eadt::testbeds::futuregrid(), opt);
  return 0;
}
