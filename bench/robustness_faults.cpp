// Robustness under injected failures: sweep a fault-severity ladder (clean,
// light, moderate, heavy) across the XSEDE comparison and report what each
// algorithm pays in goodput, retries and wasted energy. The "energy overhead"
// column is the extra end-system joules relative to the same algorithm's
// fault-free run — the cost of retransmission and idle backoff the paper's
// clean-room figures never show.
#include <chrono>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "proto/faults.hpp"

int main(int argc, char** argv) {
  using namespace eadt;
  const auto opt = bench::parse_options(argc, argv);

  auto base = testbeds::xsede();
  base.recipe.total_bytes /= std::max(1u, opt.scale) * 4;  // keep runs brisk
  for (auto& band : base.recipe.bands) {
    band.max_size = std::max(band.max_size / (opt.scale * 4), band.min_size * 2);
  }
  const auto ds = base.make_dataset();

  struct Severity {
    const char* name;
    proto::FaultPlan plan;
  };
  std::vector<Severity> ladder;
  ladder.push_back({"clean", {}});
  {
    proto::FaultPlan light;
    light.stochastic.channel_drop_rate = 0.01;
    light.seed = 11;
    ladder.push_back({"light", light});
  }
  {
    proto::FaultPlan moderate;
    moderate.stochastic.channel_drop_rate = 0.03;
    moderate.stochastic.checksum_failure_prob = 0.002;
    moderate.seed = 11;
    ladder.push_back({"moderate", moderate});
  }
  {
    proto::FaultPlan heavy;
    heavy.stochastic.channel_drop_rate = 0.08;
    heavy.stochastic.checksum_failure_prob = 0.005;
    heavy.outages.push_back({/*source_side=*/true, /*server=*/0,
                             /*start=*/20.0, /*duration=*/30.0});
    heavy.retry.restart_markers = false;  // legacy stacks pay full retransmits
    heavy.seed = 11;
    ladder.push_back({"heavy", heavy});
  }

  std::cout << "Fault-severity ladder (XSEDE, cc=12): goodput and the energy "
               "price of recovery\n\n";

  const exp::Algorithm algorithms[] = {exp::Algorithm::kSc, exp::Algorithm::kMinE,
                                       exp::Algorithm::kProMc, exp::Algorithm::kHtee};

  // The full (severity x algorithm) grid as one parallel sweep; the clean
  // rows come back first (index order), giving every algorithm its energy
  // baseline before the faulted rows are rendered.
  std::vector<exp::SweepTask> tasks;
  std::vector<const char*> severity_of;
  for (const auto& sev : ladder) {
    for (const auto a : algorithms) {
      exp::SweepTask task;
      task.testbed = base;
      task.dataset = ds;
      task.algorithm = a;
      task.concurrency = 12;
      task.faults = sev.plan;
      tasks.push_back(std::move(task));
      severity_of.push_back(sev.name);
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = exp::SweepRunner(opt.jobs).run(tasks);
  const double sweep_ms = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - sweep_start).count();

  std::map<exp::Algorithm, Joules> clean_energy;
  Table table({"severity", "algorithm", "goodput Mbps", "Joules", "retries",
               "wasted MB", "wasted J", "energy overhead %"});
  for (const auto& r : results) {
    const auto& out = r.run;
    const auto a = out.algorithm;
    const auto& f = out.result.faults;
    if (!tasks[r.index].faults.active()) clean_energy[a] = out.energy();
    const double base_j = clean_energy.count(a) ? clean_energy[a] : 0.0;
    const double overhead =
        base_j > 0.0 ? (out.energy() - base_j) / base_j * 100.0 : 0.0;
    table.add_row({severity_of[r.index], exp::to_string(a),
                   Table::num(to_mbps(out.result.avg_goodput()), 0),
                   Table::num(out.energy(), 0), Table::num(double(f.retries), 0),
                   Table::num(double(f.wasted_bytes) / double(kMB), 1),
                   Table::num(f.wasted_joules, 0), Table::num(overhead, 1)});
  }
  bench::emit(table, opt);

  exp::BenchRecord record;
  record.total_wall_ms = sweep_ms;
  record.tasks = results;
  bench::write_bench_record(opt, std::move(record));

  std::cout << "Severities: light = 0.01 drops/s; moderate = 0.03 drops/s + "
               "0.2% checksum failures;\nheavy = 0.08 drops/s + 0.5% checksum "
               "failures + a 30 s source-server outage,\nwithout restart "
               "markers (full-file retransmission).\n";
  return 0;
}
