// Path-resilience scenarios: transfers that survive the path they started on.
// Four deterministic scenarios exercise the failover layer end to end:
//
//   path_outage      the primary route browns out to zero mid-transfer; the
//                    supervisor's health monitor turns the stalled goodput into
//                    suspicion, checkpoints the session, and resumes it on the
//                    backup route — landed bytes are never re-paid.
//   hedged_deadline  a clean run that still cannot make its interactive
//                    deadline after the first attempt window: the remaining
//                    tail is raced on two paths at once, the loser is cancelled
//                    at the winner's finish, and its energy is charged as
//                    hedge double-spend.
//   flap_storm       three site routes brown out in rotation under a
//                    twelve-tenant schedule with per-site power caps; tenants
//                    whose attempts abort mid-flap resume on whichever site is
//                    healthiest, and the measured per-site draw never crosses
//                    any cap.
//   partition_storm  the primary site goes dark for the whole run; everything
//                    placed there before the partition migrates to the
//                    surviving site and completes.
//
// Cells fan out with SweepRunner::parallel_indexed and are collected by
// index, so the record is bit-identical at any --jobs N.
#include <algorithm>
#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/scheduler.hpp"
#include "exp/service.hpp"
#include "net/path_set.hpp"
#include "obs/obs.hpp"
#include "proto/faults.hpp"

namespace {

using namespace eadt;

/// One supervisor-level scenario: jobs run back to back under a PathSet.
struct SupScenario {
  std::string name;
  std::vector<exp::TransferJob> jobs;
  std::vector<Bytes> job_bytes;  ///< dataset sizes, index-aligned with jobs
  exp::SupervisorPolicy supervision;
  proto::FaultPlan faults;
  proto::SessionConfig config;
  exp::ServiceReport report;
  double wall_ms = 0.0;
};

/// One scheduler-level scenario: tenants share one simulation across sites.
struct SchedScenario {
  std::string name;
  std::vector<exp::SchedulerJob> jobs;
  std::vector<Bytes> job_bytes;
  exp::SchedulerPolicy policy;
  proto::FaultPlan faults;
  exp::SchedulerReport report;
  double wall_ms = 0.0;
};

exp::FailoverScenarioRecord record_of(const SupScenario& s) {
  exp::FailoverScenarioRecord r;
  r.name = s.name;
  r.jobs = static_cast<int>(s.report.jobs.size());
  r.failed = s.report.failed_jobs;
  r.completed = r.jobs - r.failed;
  for (const auto& out : s.report.jobs) {
    r.attempts += out.attempts;
    r.migrations += out.migrations;
    r.hedge_legs += out.hedge_legs;
    r.hedge_energy_j += out.hedge_energy;
  }
  r.makespan_s = s.report.makespan;
  r.bytes = s.report.total_bytes;
  r.energy_j = s.report.total_energy;
  r.wall_ms = s.wall_ms;
  return r;
}

exp::FailoverScenarioRecord record_of(const SchedScenario& s) {
  exp::FailoverScenarioRecord r;
  r.name = s.name;
  r.jobs = s.report.submitted;
  r.completed = s.report.completed;
  r.failed = s.report.failed;
  for (const auto& out : s.report.jobs) r.attempts += out.attempts;
  r.migrations = s.report.migrations;
  r.power_cap_violations = s.report.power_cap_violations;
  r.makespan_s = s.report.makespan;
  r.bytes = s.report.total_bytes;
  r.energy_j = s.report.total_energy;
  r.wall_ms = s.wall_ms;
  return r;
}

/// Unique file bytes landed across every completed job's legs must equal the
/// sum of those jobs' dataset sizes — the byte-conservation invariant the
/// checkpoint journal guarantees (landed bytes are never re-paid, wasted
/// retransmissions are accounted separately).
template <typename Outcomes>
bool bytes_conserved(const Outcomes& outcomes, const std::vector<Bytes>& sizes) {
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& out = outcomes[i];
    if (out.failed) continue;
    if (out.result.goodput_bytes() != sizes[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);

  auto base = testbeds::xsede();
  base.recipe.total_bytes /= std::max(1u, opt.scale) * 4;
  for (auto& band : base.recipe.bands) {
    band.max_size = std::max(band.max_size / (opt.scale * 4), band.min_size * 2);
  }
  bench::print_header(base, opt);

  // Distinct per-job datasets from the scaled recipe.
  const auto dataset = [&](std::uint64_t seed) {
    auto tb = base;
    tb.dataset_seed = 91 + seed;
    return tb.make_dataset();
  };

  // Calibration: the shared reference rate, one uncontended kDeadline job
  // (T_fast — the supervisor scenarios' unit) and one uncontended kBalanced
  // job (T_bal — the scheduler scenarios' unit).
  exp::TransferService probe(base, 0.0, {});
  const BitsPerSecond reference_rate = probe.reference_rate();
  Seconds T_fast = 0.0;
  Seconds T_bal = 0.0;
  {
    std::vector<exp::TransferJob> jobs;
    jobs.push_back({"probe_fast", dataset(0), exp::JobPolicy::kDeadline, 0, 0, 8});
    jobs.push_back({"probe_bal", dataset(0), exp::JobPolicy::kBalanced, 0, 0, 4});
    const auto rep = probe.run_queue(jobs);
    T_fast = rep.jobs[0].result.duration;
    T_bal = rep.jobs[1].result.duration;
  }
  const Watts session_peak = exp::session_peak_power_bound(base.env);

  // The route catalogue: the testbed's own path, a backup with a longer
  // detour (same trunk class, higher RTT, different device chain and tariff
  // zone), and a tertiary that is longer still.
  net::PathSet paths2;
  paths2.add({"primary", base.env.path, base.env.route, 0});
  {
    net::PathSpec alt = base.env.path;
    alt.rtt *= 1.5;
    paths2.add({"backup", alt, net::futuregrid_route(), 1});
  }
  net::PathSet paths3 = paths2;
  {
    net::PathSpec alt = base.env.path;
    alt.rtt *= 2.0;
    paths3.add({"tertiary", alt, net::didclab_route(), 2});
  }

  SupScenario outage;
  {  // --- primary path dies mid-transfer ----------------------------------
    outage.name = "path_outage";
    for (int i = 0; i < 2; ++i) {
      outage.jobs.push_back({"out" + std::to_string(i), dataset(10 + i),
                             exp::JobPolicy::kDeadline, 0, 0, 8});
      outage.job_bytes.push_back(outage.jobs.back().dataset.total_bytes());
    }
    outage.supervision.attempt_deadline = 0.9 * T_fast;
    outage.supervision.max_attempts = 6;
    outage.supervision.degrade_after = 4;  // keep the ladder out of the story
    outage.supervision.paths = paths2;
    // The monitor must cross suspicion within one aborted attempt's worth of
    // stalled windows; the default threshold is tuned for tick-cadence feeds.
    outage.supervision.health.suspect_phi = 0.45;
    // Dense sample windows so the stall is observed many times before the
    // watchdog fires, at any --scale.
    outage.config.sample_interval = std::max(T_fast / 48.0, 1e-3);
    // Total brownout of the primary from 35% in, lasting past any horizon;
    // the backup route is untouched (FaultPlan::for_path filters by target).
    outage.faults.brownouts.push_back({0.35 * T_fast, 1e6, 0.0, /*path=*/0});
  }

  SupScenario hedged;
  {  // --- interactive deadline hedged on two paths -------------------------
    hedged.name = "hedged_deadline";
    for (int i = 0; i < 2; ++i) {
      hedged.jobs.push_back({"sla" + std::to_string(i), dataset(20 + i),
                             exp::JobPolicy::kDeadline, 0, 0, 8});
      hedged.job_bytes.push_back(hedged.jobs.back().dataset.total_bytes());
    }
    // Attempt 1 is cut at 60% of the clean duration; the projection then
    // overshoots the 85% deadline and the remaining tail races on both paths.
    hedged.supervision.attempt_deadline = 0.6 * T_fast;
    hedged.supervision.max_attempts = 6;
    hedged.supervision.degrade_after = 4;
    hedged.supervision.paths = paths2;
    hedged.supervision.job_deadline = 0.85 * T_fast;
    hedged.supervision.hedge = true;
    hedged.config.sample_interval = std::max(T_fast / 48.0, 1e-3);
  }

  SchedScenario flap;
  {  // --- rotating brownouts across three capped sites ---------------------
    flap.name = "flap_storm";
    flap.policy.max_concurrent = 9;
    flap.policy.max_queue_depth = 16;
    flap.policy.paths = paths3;
    flap.policy.path_power_caps = {session_peak * 3.0, session_peak * 3.0,
                                   session_peak * 3.0};
    flap.policy.power_cap = session_peak * 8.0;  // cross-site sum binds first
    // Tight enough that a tenant sharing a flapped site cannot finish in one
    // attempt: the abort is what hands it back to placement mid-storm.
    flap.policy.supervision.attempt_deadline = 1.5 * T_bal;
    flap.policy.supervision.max_attempts = 10;
    flap.policy.supervision.degrade_after = 2;
    flap.policy.horizon = 400.0 * T_bal;
    // The storm: each site flaps in turn (windows on one site never overlap).
    flap.policy.link_brownouts.push_back({1.0 * T_bal, 1.5 * T_bal, 0.05, 0});
    flap.policy.link_brownouts.push_back({2.0 * T_bal, 1.5 * T_bal, 0.05, 1});
    flap.policy.link_brownouts.push_back({3.0 * T_bal, 1.0 * T_bal, 0.10, 2});
    flap.policy.link_brownouts.push_back({4.0 * T_bal, 1.0 * T_bal, 0.05, 0});
    flap.faults.stochastic.channel_drop_rate = 0.001;
    flap.faults.seed = 23;
    for (int i = 0; i < 12; ++i) {
      const auto policy =
          i % 4 == 3 ? exp::JobPolicy::kGreen : exp::JobPolicy::kBalanced;
      flap.jobs.push_back({{"flap" + std::to_string(i), dataset(30 + i), policy,
                            0, 0, 4},
                           0.15 * T_bal * i});
      flap.job_bytes.push_back(flap.jobs.back().job.dataset.total_bytes());
    }
  }

  SchedScenario partition;
  {  // --- primary site partitioned for the whole run -----------------------
    partition.name = "partition_storm";
    partition.policy.max_concurrent = 4;
    partition.policy.max_queue_depth = 16;
    partition.policy.paths = paths2;
    partition.policy.path_power_caps = {session_peak * 2.5, session_peak * 2.5};
    partition.policy.supervision.attempt_deadline = 2.5 * T_bal;
    partition.policy.supervision.max_attempts = 12;
    partition.policy.supervision.degrade_after = 3;
    partition.policy.horizon = 500.0 * T_bal;
    partition.policy.link_brownouts.push_back({0.5 * T_bal, 60.0 * T_bal, 0.0, 0});
    for (int i = 0; i < 6; ++i) {
      partition.jobs.push_back({{"part" + std::to_string(i), dataset(50 + i),
                                 exp::JobPolicy::kBalanced, 0, 0, 4},
                                0.1 * T_bal * i});
      partition.job_bytes.push_back(partition.jobs.back().job.dataset.total_bytes());
    }
  }

  const auto collector = bench::make_collector(opt);

  // Four independent cells; each writes only its own slot, so the record is
  // byte-identical at any --jobs N.
  const auto timed = [](double* wall_ms, const std::function<void()>& body) {
    const auto start = std::chrono::steady_clock::now();
    body();
    *wall_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
  };
  std::vector<std::function<void()>> cells;
  const auto sup_cell = [&](SupScenario& s, std::size_t slot_base) {
    cells.push_back([&, slot_base] {
      timed(&s.wall_ms, [&] {
        proto::SessionConfig cfg = s.config;
        if (collector) cfg.obs = collector->slot(slot_base, s.name);
        exp::TransferService service(base, reference_rate, cfg);
        service.set_fault_plan(s.faults);
        service.set_supervisor(s.supervision);
        s.report = service.run_queue(s.jobs);
      });
    });
  };
  const auto sched_cell = [&](SchedScenario& s, std::size_t slot_base) {
    cells.push_back([&, slot_base] {
      timed(&s.wall_ms, [&] {
        exp::Scheduler scheduler(base, reference_rate, s.policy);
        scheduler.set_fault_plan(s.faults);
        scheduler.set_collector(collector.get(), slot_base);
        s.report = scheduler.run(s.jobs);
      });
    });
  };
  sup_cell(outage, 0);
  sup_cell(hedged, 64);
  sched_cell(flap, 128);
  sched_cell(partition, 192);

  const auto sweep_start = std::chrono::steady_clock::now();
  exp::SweepRunner::parallel_indexed(
      exp::resolve_jobs(opt.jobs), cells.size(),
      [&](std::size_t i) { cells[i](); });
  const double sweep_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - sweep_start)
                              .count();

  std::vector<exp::FailoverScenarioRecord> records;
  records.push_back(record_of(outage));
  records.push_back(record_of(hedged));
  records.push_back(record_of(flap));
  records.push_back(record_of(partition));

  Table table({"scenario", "jobs", "done", "fail", "attempts", "migrations",
               "hedge legs", "cap viol", "makespan s", "GB", "hedge J"});
  for (const auto& r : records) {
    table.add_row({r.name, Table::num(r.jobs, 0), Table::num(r.completed, 0),
                   Table::num(r.failed, 0), Table::num(r.attempts, 0),
                   Table::num(r.migrations, 0), Table::num(r.hedge_legs, 0),
                   Table::num(r.power_cap_violations, 0),
                   Table::num(r.makespan_s, 0),
                   Table::num(static_cast<double>(r.bytes) / 1e9, 2),
                   Table::num(r.hedge_energy_j, 0)});
  }
  bench::emit(table, opt);

  bool ok = true;
  const auto check = [&](const char* what, bool pass) {
    std::cout << "  " << what << ": " << (pass ? "yes" : "NO") << "\n";
    ok = ok && pass;
  };
  const auto all_completed_sup = [](const SupScenario& s) {
    return s.report.failed_jobs == 0;
  };
  const auto migrations_bounded = [](const exp::FailoverScenarioRecord& r) {
    return r.migrations >= 0 && r.migrations <= r.attempts;
  };
  std::cout << "checks:\n";
  check("outage jobs completed on the backup path",
        all_completed_sup(outage) &&
            std::all_of(outage.report.jobs.begin(), outage.report.jobs.end(),
                        [](const exp::JobOutcome& j) {
                          return j.migrations >= 1 && j.final_path == 1;
                        }));
  check("outage landed bytes equal the dataset (no byte re-paid, none lost)",
        bytes_conserved(outage.report.jobs, outage.job_bytes));
  check("deadline projection hedged the tail on two paths",
        all_completed_sup(hedged) &&
            std::all_of(hedged.report.jobs.begin(), hedged.report.jobs.end(),
                        [](const exp::JobOutcome& j) {
                          return j.hedge_legs == 2 && j.hedge_energy >= 0.0;
                        }));
  check("hedged landed bytes equal the dataset",
        bytes_conserved(hedged.report.jobs, hedged.job_bytes));
  check("flap storm completed every tenant",
        flap.report.accounting_consistent() &&
            flap.report.completed == flap.report.accepted);
  check("flap storm forced at least one cross-site migration",
        flap.report.migrations >= 1);
  check("partition drained every tenant onto the surviving site",
        partition.report.accounting_consistent() &&
            partition.report.completed == partition.report.accepted &&
            partition.report.migrations >= 1);
  check("scheduler landed bytes equal the datasets",
        bytes_conserved(flap.report.jobs, flap.job_bytes) &&
            bytes_conserved(partition.report.jobs, partition.job_bytes));
  check("no per-site power cap was ever exceeded",
        flap.report.power_cap_violations == 0 &&
            partition.report.power_cap_violations == 0);
  check("migrations never exceed attempts",
        std::all_of(records.begin(), records.end(), migrations_bounded));
  std::cout << "\n";

  exp::BenchRecord record;
  record.total_wall_ms = sweep_ms;
  record.failover = std::move(records);
  if (collector) {
    bench::write_obs_outputs(opt, *collector);
    bench::print_histogram_percentiles(opt, *collector);
    record.metrics = collector->metrics().snapshot();
  }
  bench::write_bench_record(opt, std::move(record));

  std::cout << "Scenario times are multiples of T = " << Table::num(T_fast, 1)
            << " s (one uncontended kDeadline job; scheduler scenarios use "
            << Table::num(T_bal, 1)
            << " s, the kBalanced\nequivalent). A migrated job resumes from "
               "its checkpoint journal on the new path —\nlanded bytes are "
               "charged once, and only a hedge race's losing leg is "
               "double-spent.\n";
  return ok ? 0 : 1;
}
