// Fleet-scale tick-pipeline race: one exp::Scheduler carrying ~1,000 tenants
// (200 with --quick, EADT_FLEET_TENANTS overrides, capped at 4,000) on the
// shared XSEDE path, run twice on identical inputs — once with the master
// tick forced sequential (policy.jobs = 1) and once with the parallel tick
// pipeline at --jobs / EADT_JOBS workers.
//
// The bench is a *correctness gate first, timing second*: the two reports are
// compared bit for bit (scheduler_report_payload — every per-job double in
// hex-float, every sample window, every recovery event) before any speedup
// is reported, and a mismatch fails the run regardless of how fast it was.
// The timing half records an eadt-bench-v1 MicroSample named
// "fleet_tick_pipeline" whose `speedup` field is the CI tripwire: the perf
// workflow requires >= 2x at 4 workers on machines with >= 4 cores.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "exp/scheduler.hpp"
#include "exp/service.hpp"
#include "obs/obs.hpp"
#include "obs/openmetrics.hpp"
#include "obs/telemetry.hpp"
#include "util/rng.hpp"

namespace {

using namespace eadt;

/// Tenant count: --quick = 200 (CI smoke / TSan), default 1000, and
/// EADT_FLEET_TENANTS pushes toward the 4,000-tenant ceiling for soak runs.
int fleet_size(const bench::Options& opt) {
  int n = opt.quick ? 200 : 1000;
  if (const char* env = std::getenv("EADT_FLEET_TENANTS")) {
    const int v = std::atoi(env);
    if (v > 0) n = v;
  }
  return std::clamp(n, 16, 4000);
}

/// The same deterministic schedule for every run of a given (n, scale):
/// small per-tenant datasets (2-4 files, 8-40 MB before --scale) drawn from
/// per-tenant seeds, a policy mix that exercises plans with and without
/// runtime controllers, and slightly staggered arrivals.
std::vector<exp::SchedulerJob> build_fleet(int n, unsigned scale) {
  std::vector<exp::SchedulerJob> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  // The 4 MB floor keeps the drain time ahead of the arrival ramp even at
  // --quick scale, so the fleet actually piles up instead of trickling
  // through a few dozen concurrent sessions.
  const Bytes floor_bytes = 4 * kMB;
  for (int i = 0; i < n; ++i) {
    Rng rng(4242u + static_cast<std::uint64_t>(i));
    exp::TransferJob job;
    job.name = "t" + std::to_string(i);
    const int files = static_cast<int>(rng.uniform_int(2, 4));
    for (int f = 0; f < files; ++f) {
      const Bytes raw = static_cast<Bytes>(rng.uniform_int(8, 40)) * kMB;
      job.dataset.files.push_back({std::max(raw / std::max(1u, scale), floor_bytes)});
    }
    switch (i % 3) {
      case 0: job.policy = exp::JobPolicy::kBalanced; break;
      case 1: job.policy = exp::JobPolicy::kGreen; break;
      default: job.policy = exp::JobPolicy::kDeadline; break;
    }
    job.max_channels = 2;
    jobs.push_back({std::move(job), 0.005 * i});
  }
  return jobs;
}

/// Telemetry rides every fleet run: one sample per 30 sim-seconds into a
/// 4096-entry ring, single-site (the fleet shares one path). Both the
/// sequential reference and the parallel run carry a hub so their exports
/// can be raced bitwise — the telemetry analogue of the payload compare.
constexpr double kTelemetryStride = 30.0;
constexpr std::size_t kTelemetryRing = 4096;

struct FleetRun {
  exp::SchedulerReport report;
  std::string payload;   ///< scheduler_report_payload — the bitwise identity
  double wall_ms = 0.0;  ///< run() only; schedule construction is untimed
  obs::TelemetryHub telemetry{kTelemetryStride, kTelemetryRing, /*site_count=*/1};
  obs::TickFlightRecorder flightrec;
};

void run_fleet(const testbeds::Testbed& base, int n, unsigned scale,
               int jobs_n, obs::ObsCollector* collector,
               obs::TickProfiler* profiler, FleetRun& out) {
  exp::SchedulerPolicy policy;
  policy.max_concurrent = n;  // the whole fleet ticks concurrently
  policy.max_queue_depth = n;
  policy.horizon = 24.0 * 3600;
  policy.jobs = jobs_n;
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;

  auto schedule = build_fleet(n, scale);
  exp::Scheduler scheduler(base, gbps(7.0), policy, cfg);
  scheduler.set_collector(collector);
  scheduler.set_telemetry(&out.telemetry);
  scheduler.set_flight_recorder(&out.flightrec);
  scheduler.set_tick_profiler(profiler);
  const auto start = std::chrono::steady_clock::now();
  out.report = scheduler.run(std::move(schedule));
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out.payload = exp::scheduler_report_payload(out.report);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);

  const auto base = testbeds::xsede();
  bench::print_header(base, opt);

  const int n = fleet_size(opt);
  const int jobs = exp::resolve_jobs(opt.jobs);
  const auto collector = bench::make_collector(opt);

  // Sequential reference first, then the parallel pipeline. The collector —
  // when observability was requested — rides the parallel run, the one whose
  // obs paths the pipeline must keep single-writer; so do the wall-clock tick
  // profiler and the scrape listener. Telemetry hubs ride both runs so the
  // sim-time series can be raced bitwise alongside the report payload.
  // The profiler registers its families up front, so a scrape that lands
  // before the parallel run still sees well-formed TYPE lines; the listener
  // binds before the sequential reference to give scrapers the widest window.
  std::unique_ptr<obs::TickProfiler> profiler;
  if (collector) profiler = std::make_unique<obs::TickProfiler>(collector->metrics());
  std::unique_ptr<obs::MetricsHttpServer> server;
  if (opt.metrics_listen >= 0 && collector) {
    obs::MetricsRegistry& registry = collector->metrics();
    server = std::make_unique<obs::MetricsHttpServer>(
        opt.metrics_listen, [&registry] { return registry.snapshot(); });
    if (server->running()) {
      std::cout << "serving /metrics on 127.0.0.1:" << server->port() << "\n";
    } else {
      std::cerr << "metrics listener failed (" << server->error()
                << "); run proceeds unscraped\n";
    }
  }

  FleetRun seq;
  run_fleet(base, n, opt.scale, 1, nullptr, nullptr, seq);
  FleetRun par;
  run_fleet(base, n, opt.scale, jobs, collector.get(), profiler.get(), par);
  if (server && server->running()) {
    server->stop();
    std::cout << "metrics listener served " << server->requests() << " scrape(s)\n";
  }

  const bool identical = seq.payload == par.payload;
  const bool telemetry_identical = seq.telemetry.to_json() == par.telemetry.to_json();
  const double speedup = par.wall_ms > 0.0 ? seq.wall_ms / par.wall_ms : 0.0;

  Table table({"mode", "jobs", "tenants", "done", "fail", "max cc", "GB",
               "makespan s", "wall ms"});
  const auto row = [&](const char* mode, int j, const FleetRun& r) {
    table.add_row({mode, Table::num(j, 0), Table::num(r.report.submitted, 0),
                   Table::num(r.report.completed, 0),
                   Table::num(r.report.failed, 0),
                   Table::num(r.report.max_concurrent_observed, 0),
                   Table::num(static_cast<double>(r.report.total_bytes) /
                                  static_cast<double>(kGB), 2),
                   Table::num(r.report.makespan, 1),
                   Table::num(r.wall_ms, 1)});
  };
  row("sequential", 1, seq);
  row("parallel", jobs, par);
  bench::emit(table, opt);

  bool ok = true;
  const auto check = [&](const char* what, bool pass) {
    std::cout << "  " << what << ": " << (pass ? "yes" : "NO") << "\n";
    ok = ok && pass;
  };
  std::cout << "checks:\n";
  check("parallel report is byte-identical to --jobs 1", identical);
  check("telemetry export is byte-identical to --jobs 1", telemetry_identical);
  check("telemetry sampler recorded the run", par.telemetry.size() > 0);
  check("flight recorder stayed quiet on the clean run",
        par.flightrec.triggers() == 0);
  check("accounting is conservative in both runs",
        seq.report.accounting_consistent() && par.report.accounting_consistent());
  check("every tenant completed",
        par.report.completed == par.report.submitted && par.report.failed == 0 &&
            par.report.rejected == 0);
  check("no power-cap violations", par.report.power_cap_violations == 0);
  std::cout << "\n";
  std::cout << "speedup at " << jobs << " workers: "
            << Table::num(speedup, 2) << "x ("
            << Table::num(seq.wall_ms, 1) << " ms -> "
            << Table::num(par.wall_ms, 1) << " ms; advisory here, gated in "
            << "CI on >= 4 cores)\n";

  exp::BenchRecord record;
  record.total_wall_ms = seq.wall_ms + par.wall_ms;
  exp::MicroSample micro;
  micro.name = "fleet_tick_pipeline";
  micro.ops = static_cast<std::uint64_t>(n);
  micro.wall_ms = par.wall_ms;
  micro.ops_per_sec = par.wall_ms > 0.0 ? n / (par.wall_ms / 1e3) : 0.0;
  micro.baseline_ops_per_sec = seq.wall_ms > 0.0 ? n / (seq.wall_ms / 1e3) : 0.0;
  micro.speedup = speedup;
  record.micro.push_back(std::move(micro));

  exp::ServiceScenarioRecord sr;
  sr.name = "fleet";
  sr.submitted = par.report.submitted;
  sr.accepted = par.report.accepted;
  sr.rejected = par.report.rejected;
  sr.completed = par.report.completed;
  sr.failed = par.report.failed;
  sr.preemptions = par.report.preemptions;
  sr.deferrals = par.report.deferrals;
  sr.max_concurrent = par.report.max_concurrent_observed;
  sr.power_cap_violations = par.report.power_cap_violations;
  sr.sla_interactive_met = par.report.interactive.sla_met;
  sr.sla_interactive_completed = par.report.interactive.completed;
  sr.makespan_s = par.report.makespan;
  sr.bytes = par.report.total_bytes;
  sr.energy_j = par.report.total_energy;
  sr.cost_usd = par.report.total_cost_usd;
  sr.peak_power_w = par.report.peak_power;
  sr.peak_power_bound_w = par.report.peak_power_bound;
  sr.wall_ms = par.wall_ms;
  record.service.push_back(std::move(sr));

  // The parallel run's series is the record's telemetry section: it is the
  // byte-compared copy, and the one a scrape observed live.
  record.telemetry = &par.telemetry;
  record.flightrec = &par.flightrec;
  if (collector) {
    bench::write_obs_outputs(opt, *collector);
    record.metrics = collector->metrics().snapshot();
  }
  bench::write_bench_record(opt, std::move(record));

  std::cout << "The race reruns one schedule at --jobs 1 and --jobs " << jobs
            << "; the payload compare above is the determinism contract the "
               "parallel\ntick pipeline ships under — speedup only counts "
               "after byte equality.\n";
  return ok ? 0 : 1;
}
