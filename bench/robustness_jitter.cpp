// Monte-Carlo robustness: do the paper's headline orderings survive link
// noise? Each seed adds 10 % multiplicative per-tick rate jitter (bursty
// cross-traffic, storage hiccups) and reruns the XSEDE comparison; the table
// reports means, spreads, and how often each ordering held.
#include <map>
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace eadt;
  const auto opt = bench::parse_options(argc, argv);

  auto base = testbeds::xsede();
  base.recipe.total_bytes /= std::max(1u, opt.scale) * 4;  // keep runs brisk
  for (auto& band : base.recipe.bands) {
    band.max_size = std::max(band.max_size / (opt.scale * 4), band.min_size * 2);
  }

  std::cout << "Monte-Carlo robustness under 10% link jitter (XSEDE, cc=12)\n\n";

  constexpr int kSeeds = 10;
  const exp::Algorithm algorithms[] = {exp::Algorithm::kSc, exp::Algorithm::kMinE,
                                       exp::Algorithm::kProMc, exp::Algorithm::kHtee};
  std::map<exp::Algorithm, RunningStats> thr, energy;
  int mine_cheapest = 0, promc_fastest = 0;

  // The (seed x algorithm) Monte-Carlo grid as one parallel sweep. Each task
  // carries its own jittered testbed, so accumulation below walks results in
  // submission order — identical to the old sequential loop.
  std::vector<exp::SweepTask> tasks;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    auto t = base;
    t.env.rate_jitter_sd = 0.10;
    t.env.jitter_seed = static_cast<std::uint64_t>(seed);
    const auto ds = t.make_dataset();
    for (const auto a : algorithms) {
      exp::SweepTask task;
      task.testbed = t;
      task.dataset = ds;
      task.algorithm = a;
      task.concurrency = 12;
      tasks.push_back(std::move(task));
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = exp::SweepRunner(opt.jobs).run(tasks);
  const double sweep_ms = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - sweep_start).count();

  for (int seed = 1; seed <= kSeeds; ++seed) {
    std::map<exp::Algorithm, exp::RunOutcome> outs;
    for (std::size_t i = 0; i < std::size(algorithms); ++i) {
      const auto& r = results[static_cast<std::size_t>(seed - 1) * std::size(algorithms) + i];
      outs.emplace(algorithms[i], r.run);
      thr[algorithms[i]].add(r.run.throughput_mbps());
      energy[algorithms[i]].add(r.run.energy());
    }
    const bool cheapest =
        outs.at(exp::Algorithm::kMinE).energy() < outs.at(exp::Algorithm::kSc).energy() &&
        outs.at(exp::Algorithm::kMinE).energy() <
            outs.at(exp::Algorithm::kProMc).energy();
    const bool fastest =
        outs.at(exp::Algorithm::kProMc).throughput_mbps() >=
            outs.at(exp::Algorithm::kSc).throughput_mbps() &&
        outs.at(exp::Algorithm::kProMc).throughput_mbps() >=
            outs.at(exp::Algorithm::kMinE).throughput_mbps();
    mine_cheapest += cheapest ? 1 : 0;
    promc_fastest += fastest ? 1 : 0;
  }

  Table table({"algorithm", "Mbps mean", "Mbps sd", "Joule mean", "Joule sd"});
  for (const auto a : algorithms) {
    table.add_row({exp::to_string(a), Table::num(thr[a].mean(), 0),
                   Table::num(thr[a].stddev(), 0), Table::num(energy[a].mean(), 0),
                   Table::num(energy[a].stddev(), 0)});
  }
  bench::emit(table, opt);

  std::cout << "ordering stability over " << kSeeds << " seeds:\n"
            << "  MinE cheapest (vs SC & ProMC): " << mine_cheapest << "/" << kSeeds
            << "\n  ProMC fastest (vs SC & MinE): " << promc_fastest << "/" << kSeeds
            << "\n";

  exp::BenchRecord record;
  record.total_wall_ms = sweep_ms;
  record.tasks = results;
  bench::write_bench_record(opt, std::move(record));
  return 0;
}
