// Reproduces Figure 6: SLA transfers between Alamo and Hotel (FutureGrid).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = eadt::bench::parse_options(argc, argv);
  std::cout << "Figure 6 — SLA transfers @FutureGrid\n\n";
  eadt::bench::run_sla_figure(eadt::testbeds::futuregrid(), 12, opt);
  return 0;
}
