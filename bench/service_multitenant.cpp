// Multi-tenant scheduler scenarios: many TransferSessions sharing one
// simulation and one path, arbitrated by a joint fair-share round per tick.
// Three deterministic scenarios exercise the overload-resilience layer:
//
//   overload_ramp   48 tenants arrive at ~2x the drain rate while a brownout
//                   storm cuts the shared link; the bounded queue sheds the
//                   overflow, interactive arrivals preempt running scavengers
//                   (which later *resume* from their checkpoints), and the
//                   scheduler must still reach >= 32 concurrent sessions.
//   power_capped    a site-wide watt cap gates dispatch against each
//                   session's provable peak draw; the measured per-tick sum
//                   must never cross the cap.
//   tariff_deferral scavengers submitted in the expensive band are shifted
//                   into the tariff's cheapest hours.
//
// Cells fan out with SweepRunner::parallel_indexed and are collected by
// index, so the record is bit-identical at any --jobs N.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/scheduler.hpp"
#include "exp/service.hpp"
#include "obs/obs.hpp"
#include "obs/openmetrics.hpp"
#include "obs/telemetry.hpp"
#include "power/tariff.hpp"
#include "proto/faults.hpp"

namespace {

using namespace eadt;

struct Scenario {
  std::string name;
  std::vector<exp::SchedulerJob> jobs;
  exp::SchedulerPolicy policy;
  proto::FaultPlan faults;
  bool tariffed = false;
  Seconds tariff_start = 0.0;
  exp::SchedulerReport report;
  double wall_ms = 0.0;
  /// Owned by the scenario so the parallel fan-out keeps each hub
  /// single-writer; null for scenarios that do not sample.
  std::unique_ptr<obs::TelemetryHub> telemetry;
  std::unique_ptr<obs::TickFlightRecorder> flightrec;
};

int resumes(const exp::SchedulerReport& report) {
  int n = 0;
  for (const auto& out : report.jobs) {
    n += out.recovery.count(exp::RecoveryAction::kResume);
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);

  auto base = testbeds::xsede();
  base.recipe.total_bytes /= std::max(1u, opt.scale) * 4;
  for (auto& band : base.recipe.bands) {
    band.max_size = std::max(band.max_size / (opt.scale * 4), band.min_size * 2);
  }
  bench::print_header(base, opt);

  // Per-tenant dataset: full-size file bands (so transfers stay
  // bandwidth-dominated and contention actually stretches them — shrinking
  // the files would leave per-file overheads in charge and no overload to
  // schedule around), with only the byte total scaled down. Distinct seeds
  // give every tenant its own file mix.
  auto tenant_tb = testbeds::xsede();
  tenant_tb.recipe.total_bytes /= std::max(1u, opt.scale);
  const auto tenant_dataset = [&](std::uint64_t seed) {
    auto tb = tenant_tb;
    tb.dataset_seed = 42 + seed;
    return tb.make_dataset();
  };

  // One clean probe calibrates the timeline (T = one uncontended tenant job)
  // and the reference rate every cell shares.
  exp::TransferService probe(base, 0.0, {});
  const BitsPerSecond reference_rate = probe.reference_rate();
  Seconds T = 0.0;
  {
    std::vector<exp::TransferJob> jobs;
    jobs.push_back({"probe", tenant_dataset(0), exp::JobPolicy::kBalanced, 0, 0, 4});
    T = probe.run_queue(jobs).jobs[0].result.duration;
  }
  const Watts session_peak = exp::session_peak_power_bound(base.env);

  std::vector<Scenario> scenarios;

  {  // --- overload ramp + brownout storm --------------------------------
    Scenario s;
    s.name = "overload_ramp";
    s.policy.max_concurrent = 32;
    s.policy.max_queue_depth = 8;
    s.policy.supervision.attempt_deadline = 120.0 * T;
    s.policy.supervision.max_attempts = 6;
    s.policy.supervision.degrade_after = 1;
    s.policy.horizon = 400.0 * T;
    // The storm: two site-level brownouts while every slot is occupied.
    s.policy.link_brownouts.push_back({3.0 * T, 2.0 * T, 0.35});
    s.policy.link_brownouts.push_back({6.0 * T, 1.5 * T, 0.5});
    // Background faults on every session, as in the robustness benches.
    s.faults.stochastic.channel_drop_rate = 0.002;
    s.faults.seed = 17;
    // 32 background tenants (scavenger-heavy) arrive almost at once and fill
    // every slot — under 32-way sharing each needs ~32 T, so the interactive
    // burst at 2 T lands mid-flight and must preempt its way in.
    for (int i = 0; i < 32; ++i) {
      const auto policy =
          i % 4 == 3 ? exp::JobPolicy::kBalanced : exp::JobPolicy::kGreen;
      s.jobs.push_back({{"bg" + std::to_string(i), tenant_dataset(i), policy,
                         0, 0, 4},
                        0.02 * T * i});
    }
    for (int i = 0; i < 16; ++i) {
      const auto policy = i % 4 == 0 ? exp::JobPolicy::kSla : exp::JobPolicy::kDeadline;
      s.jobs.push_back({{"fg" + std::to_string(i), tenant_dataset(32 + i), policy,
                         /*sla_percent=*/2.0, 0, 6},
                        2.0 * T + 0.125 * T * i});
    }
    // The ramp is the scenario whose shed/preempt/burn trajectory the record's
    // telemetry section narrates: ~8 samples per T across the whole horizon.
    s.telemetry = std::make_unique<obs::TelemetryHub>(
        /*stride_s=*/T / 8.0, /*capacity=*/8192, /*site_count=*/1);
    s.flightrec = std::make_unique<obs::TickFlightRecorder>();
    scenarios.push_back(std::move(s));
  }

  {  // --- site power cap --------------------------------------------------
    Scenario s;
    s.name = "power_capped";
    s.policy.max_concurrent = 8;
    s.policy.max_queue_depth = 16;
    s.policy.power_cap = session_peak * 5.0;  // room for 5 of 8 slots
    s.policy.horizon = 400.0 * T;
    for (int i = 0; i < 12; ++i) {
      s.jobs.push_back({{"cap" + std::to_string(i), tenant_dataset(60 + i),
                         exp::JobPolicy::kBalanced, 0, 0, 4},
                        0.1 * T * i});
    }
    scenarios.push_back(std::move(s));
  }

  {  // --- tariff-aware deferral ------------------------------------------
    Scenario s;
    s.name = "tariff_deferral";
    s.policy.max_concurrent = 4;
    s.policy.max_queue_depth = 16;
    s.policy.max_defer = 24.0 * 3600;
    s.policy.horizon = 48.0 * 3600 + 400.0 * T;
    s.tariffed = true;
    s.tariff_start = 10.0 * 3600;  // scheduler time 0 = 10:00, peak band
    for (int i = 0; i < 6; ++i) {
      s.jobs.push_back({{"night" + std::to_string(i), tenant_dataset(80 + i),
                         exp::JobPolicy::kGreen, 0, 0, 4},
                        60.0 * i});
    }
    scenarios.push_back(std::move(s));
  }

  // --jobs / EADT_JOBS drives both layers of parallelism: the scenario
  // fan-out below and each scheduler's own tick pipeline. The reports are
  // byte-identical at any value of either.
  const int jobs = exp::resolve_jobs(opt.jobs);
  for (auto& s : scenarios) s.policy.jobs = jobs;

  const auto collector = bench::make_collector(opt);
  const power::Tariff tariff = power::Tariff::time_of_use(
      0.05, {{8.0, 20.0, 0.30}});

  // The scrape listener spans the whole sweep: the registry is shared across
  // cells (snapshot() is what makes a mid-run scrape coherent).
  std::unique_ptr<obs::MetricsHttpServer> server;
  if (opt.metrics_listen >= 0 && collector) {
    obs::MetricsRegistry& registry = collector->metrics();
    server = std::make_unique<obs::MetricsHttpServer>(
        opt.metrics_listen, [&registry] { return registry.snapshot(); });
    if (server->running()) {
      std::cout << "serving /metrics on 127.0.0.1:" << server->port() << "\n";
    } else {
      std::cerr << "metrics listener failed (" << server->error()
                << "); run proceeds unscraped\n";
    }
  }

  const auto sweep_start = std::chrono::steady_clock::now();
  exp::SweepRunner::parallel_indexed(
      jobs, scenarios.size(), [&](std::size_t i) {
        auto& s = scenarios[i];
        const auto cell_start = std::chrono::steady_clock::now();
        exp::Scheduler scheduler(base, reference_rate, s.policy);
        scheduler.set_fault_plan(s.faults);
        if (s.tariffed) scheduler.set_tariff(tariff, s.tariff_start);
        // Slots are single-writer: give each cell its own slot range (the
        // range also covers the scheduler's own summary slot at base + n).
        scheduler.set_collector(collector.get(), i * 64);
        scheduler.set_telemetry(s.telemetry.get());
        scheduler.set_flight_recorder(s.flightrec.get());
        s.report = scheduler.run(s.jobs);
        s.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - cell_start)
                        .count();
      });
  if (server) server->stop();
  const double sweep_ms = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - sweep_start).count();

  Table table({"scenario", "sub", "acc", "rej", "done", "fail", "preempt",
               "defer", "resume", "max cc", "peak W", "cap W", "cap viol",
               "makespan s"});
  for (const auto& s : scenarios) {
    const auto& r = s.report;
    table.add_row({s.name, Table::num(r.submitted, 0), Table::num(r.accepted, 0),
                   Table::num(r.rejected, 0), Table::num(r.completed, 0),
                   Table::num(r.failed, 0), Table::num(r.preemptions, 0),
                   Table::num(r.deferrals, 0), Table::num(resumes(r), 0),
                   Table::num(r.max_concurrent_observed, 0),
                   Table::num(r.peak_power, 0),
                   Table::num(s.policy.power_cap, 0),
                   Table::num(r.power_cap_violations, 0),
                   Table::num(r.makespan, 0)});
  }
  bench::emit(table, opt);

  std::cout << "Per-class accounting (overload_ramp)\n";
  Table classes({"class", "submitted", "rejected", "completed", "failed",
                 "sla met"});
  const auto& ramp = scenarios[0].report;
  const auto class_row = [&](const char* name, const exp::SlaClassStats& c) {
    classes.add_row({name, Table::num(c.submitted, 0), Table::num(c.rejected, 0),
                     Table::num(c.completed, 0), Table::num(c.failed, 0),
                     Table::num(c.sla_met, 0)});
  };
  class_row("interactive", ramp.interactive);
  class_row("standard", ramp.standard);
  class_row("scavenger", ramp.scavenger);
  bench::emit(classes, opt);

  const auto& capped = scenarios[1].report;
  const auto& night = scenarios[2].report;
  bool ok = true;
  const auto check = [&](const char* what, bool pass) {
    std::cout << "  " << what << ": " << (pass ? "yes" : "NO") << "\n";
    ok = ok && pass;
  };
  std::cout << "checks:\n";
  check("overload ramp reached >= 32 concurrent sessions",
        ramp.max_concurrent_observed >= 32);
  check("bounded queue shed part of the overload", ramp.rejected > 0);
  check("interactive burst preempted running scavengers", ramp.preemptions > 0);
  check("preempted jobs resumed from their checkpoints", resumes(ramp) > 0);
  check("every scenario's accounting is conservative",
        ramp.accounting_consistent() && capped.accounting_consistent() &&
            night.accounting_consistent());
  check("power cap was never exceeded between ticks",
        capped.power_cap_violations == 0 &&
            capped.peak_power <= scenarios[1].policy.power_cap);
  check("cap held concurrency to the provable-bound budget",
        capped.max_concurrent_observed <= 5);
  check("scavengers deferred into the cheap tariff band",
        night.deferrals == static_cast<int>(night.jobs.size()));
  std::cout << "\n";

  exp::BenchRecord record;
  record.total_wall_ms = sweep_ms;
  for (const auto& s : scenarios) {
    exp::ServiceScenarioRecord sr;
    sr.name = s.name;
    sr.submitted = s.report.submitted;
    sr.accepted = s.report.accepted;
    sr.rejected = s.report.rejected;
    sr.completed = s.report.completed;
    sr.failed = s.report.failed;
    sr.preemptions = s.report.preemptions;
    sr.deferrals = s.report.deferrals;
    sr.max_concurrent = s.report.max_concurrent_observed;
    sr.power_cap_violations = s.report.power_cap_violations;
    sr.sla_interactive_met = s.report.interactive.sla_met;
    sr.sla_interactive_completed = s.report.interactive.completed;
    sr.makespan_s = s.report.makespan;
    sr.bytes = s.report.total_bytes;
    sr.energy_j = s.report.total_energy;
    sr.cost_usd = s.report.total_cost_usd;
    sr.peak_power_w = s.report.peak_power;
    sr.peak_power_bound_w = s.report.peak_power_bound;
    sr.power_cap_w = s.policy.power_cap;
    sr.wall_ms = s.wall_ms;
    record.service.push_back(std::move(sr));
  }
  record.telemetry = scenarios[0].telemetry.get();
  record.flightrec = scenarios[0].flightrec.get();
  if (collector) {
    bench::write_obs_outputs(opt, *collector);
    record.metrics = collector->metrics().snapshot();
  }
  bench::write_bench_record(opt, std::move(record));

  std::cout << "Scenario times are multiples of T = " << Table::num(T, 1)
            << " s (one uncontended tenant job). The ramp offers ~2x what the "
               "slice drains,\nso the bounded queue sheds the tail instead of "
               "letting latency grow without bound;\npreempted scavengers "
               "carry their byte journal across the preemption.\n";
  return ok ? 0 : 1;
}
