#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string_view>
#include <system_error>
#include <utility>
#include <vector>

#include "exp/report.hpp"
#include "obs/obs.hpp"

namespace eadt::bench {

namespace {

std::string basename_of(std::string_view path) {
  const auto slash = path.find_last_of('/');
  return std::string(slash == std::string_view::npos ? path : path.substr(slash + 1));
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   since)
      .count();
}

}  // namespace

void print_usage(std::ostream& os) {
  os << "usage: bench [--scale N] [--csv] [--plot STEM] [--jobs N] [--quick]\n"
        "             [--json PATH] [--no-json]\n"
        "  --scale N   divide the dataset size by N (default 1: paper scale)\n"
        "  --csv       emit CSV instead of aligned tables\n"
        "  --plot STEM write STEM.csv and a gnuplot script STEM.gp\n"
        "  --jobs N    sweep worker threads (default: EADT_JOBS, then all cores);\n"
        "              results are bit-identical for every N\n"
        "  --quick     smoke preset: raises --scale to at least 32\n"
        "  --json PATH write the perf record there instead of BENCH_<name>.json\n"
        "  --no-json   skip the BENCH_<name>.json perf record\n"
        "  --trace-out PATH    write a Chrome trace-event JSON of the sweep\n"
        "                      (open in ui.perfetto.dev or chrome://tracing)\n"
        "  --metrics-out PATH  write the metrics registry as JSON; the same\n"
        "                      snapshot is merged into the BENCH record\n"
        "  --decisions PATH    write the algorithm decision log as JSON\n"
        "  --metrics-listen P  serve GET /metrics (OpenMetrics) and /healthz on\n"
        "                      127.0.0.1:P while the bench runs (0 = ephemeral)\n"
        "  --force             overwrite existing --*-out files instead of\n"
        "                      refusing to clobber them\n";
}

std::optional<Options> try_parse_options(int argc, char** argv, std::string* error) {
  Options opt;
  if (argc > 0 && argv[0] != nullptr) opt.bench_name = basename_of(argv[0]);
  const auto fail = [&](std::string msg) -> std::optional<Options> {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value_of = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--quick") {
      opt.quick = true;
    } else if (arg == "--no-json") {
      opt.json = false;
    } else if (arg == "--scale") {
      const auto v = value_of();
      if (!v) return fail("--scale requires a value");
      opt.scale = static_cast<unsigned>(std::max(1, std::atoi(v->c_str())));
    } else if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = static_cast<unsigned>(std::max(1, std::atoi(arg.data() + 8)));
    } else if (arg == "--jobs") {
      const auto v = value_of();
      if (!v) return fail("--jobs requires a value");
      opt.jobs = std::max(0, std::atoi(v->c_str()));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      opt.jobs = std::max(0, std::atoi(arg.data() + 7));
    } else if (arg == "--plot") {
      const auto v = value_of();
      if (!v) return fail("--plot requires a value");
      opt.plot_stem = *v;
    } else if (arg.rfind("--plot=", 0) == 0) {
      opt.plot_stem = std::string(arg.substr(7));
    } else if (arg == "--json") {
      const auto v = value_of();
      if (!v) return fail("--json requires a value");
      opt.json_path = *v;
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = std::string(arg.substr(7));
    } else if (arg == "--trace-out") {
      const auto v = value_of();
      if (!v) return fail("--trace-out requires a value");
      opt.trace_out = *v;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      opt.trace_out = std::string(arg.substr(12));
    } else if (arg == "--metrics-out") {
      const auto v = value_of();
      if (!v) return fail("--metrics-out requires a value");
      opt.metrics_out = *v;
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      opt.metrics_out = std::string(arg.substr(14));
    } else if (arg == "--decisions") {
      const auto v = value_of();
      if (!v) return fail("--decisions requires a value");
      opt.decisions_out = *v;
    } else if (arg.rfind("--decisions=", 0) == 0) {
      opt.decisions_out = std::string(arg.substr(12));
    } else if (arg == "--metrics-listen") {
      const auto v = value_of();
      if (!v) return fail("--metrics-listen requires a port");
      opt.metrics_listen = std::atoi(v->c_str());
      if (opt.metrics_listen < 0 || opt.metrics_listen > 65535) {
        return fail("--metrics-listen port must be in [0, 65535]");
      }
    } else if (arg.rfind("--metrics-listen=", 0) == 0) {
      opt.metrics_listen = std::atoi(arg.data() + 17);
      if (opt.metrics_listen < 0 || opt.metrics_listen > 65535) {
        return fail("--metrics-listen port must be in [0, 65535]");
      }
    } else if (arg == "--force") {
      opt.force = true;
    } else if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (arg.rfind("--", 0) == 0) {
      return fail("unknown option '" + std::string(arg) + "'");
    } else {
      return fail("unexpected argument '" + std::string(arg) + "'");
    }
  }
  if (opt.quick) opt.scale = std::max(opt.scale, 32u);
  return opt;
}

std::optional<std::string> overwrite_refusal(const Options& opt) {
  if (opt.force) return std::nullopt;
  const std::string* outs[] = {&opt.trace_out, &opt.metrics_out, &opt.decisions_out};
  for (const auto* path : outs) {
    if (path->empty()) continue;
    std::error_code ec;
    if (std::filesystem::exists(*path, ec)) {
      return "refusing to overwrite existing '" + *path +
             "' (pass --force to replace it)";
    }
  }
  return std::nullopt;
}

Options parse_options(int argc, char** argv) {
  std::string error;
  auto opt = try_parse_options(argc, argv, &error);
  if (!opt) {
    std::cerr << "error: " << error << "\n";
    print_usage(std::cerr);
    std::exit(2);
  }
  if (opt->help) {
    print_usage(std::cout);
    std::exit(0);
  }
  if (const auto refusal = overwrite_refusal(*opt)) {
    std::cerr << "error: " << *refusal << "\n";
    std::exit(2);
  }
  return *opt;
}

void print_header(const testbeds::Testbed& t, const Options& opt) {
  std::cout << "== " << t.env.name << " ==\n"
            << "  link: " << Table::num(to_gbps(t.env.path.bandwidth), 1) << " Gbps, RTT "
            << Table::num(t.env.path.rtt * 1000.0, 1) << " ms, TCP buffer "
            << to_mb(t.env.path.tcp_buffer) << " MB, BDP "
            << Table::num(static_cast<double>(t.env.bdp()) / 1e6, 1) << " MB\n"
            << "  dataset: " << t.recipe.name << ", "
            << Table::num(to_gb(t.recipe.total_bytes / opt.scale), 1) << " GB"
            << (opt.scale > 1 ? " (scaled 1/" + std::to_string(opt.scale) + ")" : "")
            << "\n  DTN servers per site: " << t.env.source.servers.size() << "\n\n";
}

void emit(const Table& table, const Options& opt) {
  if (opt.csv) {
    table.render_csv(std::cout);
  } else {
    table.render(std::cout);
  }
  std::cout << '\n';
}

void write_bench_record(const Options& opt, exp::BenchRecord record) {
  if (!opt.json) return;
  if (record.name.empty()) record.name = opt.bench_name;
  record.commit = exp::bench_commit_stamp();
  record.jobs = exp::resolve_jobs(opt.jobs);
  record.scale = opt.scale;
  const std::string path =
      opt.json_path.empty() ? "BENCH_" + record.name + ".json" : opt.json_path;
  std::ofstream os(path);
  exp::write_bench_json(os, record);
  std::cout << "wrote " << path << " (" << record.tasks.size() << " tasks, jobs="
            << record.jobs << ")\n";
}

std::unique_ptr<obs::ObsCollector> make_collector(const Options& opt) {
  // A scrape listener needs a registry to expose even when nothing is being
  // written to disk, so --metrics-listen alone is enough to attach one.
  return opt.observing() || opt.metrics_listen >= 0
             ? std::make_unique<obs::ObsCollector>()
             : nullptr;
}

void write_obs_outputs(const Options& opt, const obs::ObsCollector& collector) {
  if (!opt.trace_out.empty()) {
    std::ofstream os(opt.trace_out);
    collector.write_chrome_trace(os);
    std::cout << "wrote " << opt.trace_out << " (Chrome trace; open in ui.perfetto.dev)\n";
  }
  if (!opt.metrics_out.empty()) {
    std::ofstream os(opt.metrics_out);
    collector.write_metrics_json(os);
    std::cout << "wrote " << opt.metrics_out << " (metrics registry)\n";
  }
  if (!opt.decisions_out.empty()) {
    std::ofstream os(opt.decisions_out);
    collector.write_decisions_json(os);
    std::cout << "wrote " << opt.decisions_out << " (algorithm decision log)\n";
  }
}

void print_histogram_percentiles(const Options& opt, const obs::ObsCollector& collector) {
  const auto metrics = collector.metrics().snapshot();
  Table table({"histogram", "count", "p50", "p90", "p99"});
  for (const auto& m : metrics) {
    if (m.kind != obs::MetricSnapshot::Kind::kHistogram || m.count == 0) continue;
    table.add_row({m.name, std::to_string(m.count),
                   Table::num(obs::histogram_quantile(m, 0.50), 1),
                   Table::num(obs::histogram_quantile(m, 0.90), 1),
                   Table::num(obs::histogram_quantile(m, 0.99), 1)});
  }
  if (table.rows() == 0) return;
  std::cout << "observed distributions (bucket-interpolated percentiles)\n";
  emit(table, opt);
}

namespace {

testbeds::Testbed scaled(testbeds::Testbed t, unsigned divisor) {
  t.recipe.total_bytes /= std::max(1u, divisor);
  return t;
}

}  // namespace

void run_concurrency_figure(const testbeds::Testbed& base, const Options& opt) {
  const auto t = scaled(base, opt.scale);
  print_header(base, opt);
  const auto dataset = t.make_dataset();

  const auto algorithms = exp::figure_algorithms();
  const auto levels = exp::figure_concurrency_levels();

  // Declarative grid: one task per unique run. GUC and GO do not take a
  // concurrency parameter, so they contribute one task each and their
  // outcome is replicated across the x-axis below.
  const auto collector = make_collector(opt);
  std::vector<exp::SweepTask> tasks;
  std::vector<std::pair<exp::Algorithm, int>> keys;
  const auto add_task = [&](exp::Algorithm a, int level) {
    exp::SweepTask task;
    task.testbed = t;
    task.dataset = dataset;
    task.algorithm = a;
    task.concurrency = level;
    task.obs = collector.get();  // slot = submission index (one run() call)
    tasks.push_back(std::move(task));
    keys.emplace_back(a, level);
  };
  for (const auto a : algorithms) {
    for (const int level : levels) {
      if ((a == exp::Algorithm::kGuc || a == exp::Algorithm::kGo) &&
          level != levels.front()) {
        continue;
      }
      add_task(a, level);
    }
  }
  // Brute-force reference sweep for panel (c).
  for (const int level : exp::bf_concurrency_levels()) {
    add_task(exp::Algorithm::kBf, level);
  }

  const exp::SweepRunner runner(opt.jobs);
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = runner.run(tasks);
  const double sweep_ms = elapsed_ms(sweep_start);

  std::map<std::pair<exp::Algorithm, int>, exp::RunOutcome> runs;
  std::map<int, exp::RunOutcome> bf;
  double best_bf_ratio = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& [a, level] = keys[i];
    if (a == exp::Algorithm::kBf) {
      best_bf_ratio = std::max(best_bf_ratio, results[i].run.ratio());
      bf.emplace(level, results[i].run);
    } else {
      runs.emplace(std::make_pair(a, level), results[i].run);
    }
  }
  for (const auto a : {exp::Algorithm::kGuc, exp::Algorithm::kGo}) {
    for (const int level : levels) {
      if (level != levels.front()) {
        runs.emplace(std::make_pair(a, level), runs.at({a, levels.front()}));
      }
    }
  }

  auto header_row = [&] {
    std::vector<std::string> h{"concurrency"};
    for (const auto a : algorithms) h.emplace_back(exp::to_string(a));
    return h;
  };

  std::cout << "(a) Throughput (Mbps)\n";
  Table thr(header_row());
  for (const int level : levels) {
    std::vector<std::string> row{std::to_string(level)};
    for (const auto a : algorithms) {
      row.push_back(Table::num(runs.at({a, level}).throughput_mbps(), 0));
    }
    thr.add_row(std::move(row));
  }
  emit(thr, opt);

  std::cout << "(b) End-system energy (Joule)\n";
  Table en(header_row());
  for (const int level : levels) {
    std::vector<std::string> row{std::to_string(level)};
    for (const auto a : algorithms) {
      row.push_back(Table::num(runs.at({a, level}).energy(), 0));
    }
    en.add_row(std::move(row));
  }
  emit(en, opt);

  std::cout << "(c) Energy efficiency (throughput/energy, normalised to best BF)\n";
  Table eff(header_row());
  for (const int level : levels) {
    std::vector<std::string> row{std::to_string(level)};
    for (const auto a : algorithms) {
      row.push_back(Table::num(runs.at({a, level}).ratio() / best_bf_ratio, 3));
    }
    eff.add_row(std::move(row));
  }
  emit(eff, opt);

  std::cout << "(c) Brute-force sweep (normalised ratio by concurrency)\n";
  Table bft({"concurrency", "BF ratio"});
  for (const auto& [level, out] : bf) {
    bft.add_row({std::to_string(level), Table::num(out.ratio() / best_bf_ratio, 3)});
  }
  emit(bft, opt);

  if (!opt.plot_stem.empty()) {
    exp::SweepTable sweep;
    sweep.levels = levels;
    for (const auto& [key, out] : runs) sweep.outcomes[key.first][key.second] = out;
    {
      std::ofstream csv(opt.plot_stem + ".csv");
      exp::write_sweep_csv(csv, sweep);
    }
    {
      std::ofstream gp(opt.plot_stem + ".gp");
      exp::write_sweep_gnuplot(gp, sweep, opt.plot_stem + ".csv", opt.plot_stem);
    }
    std::cout << "wrote " << opt.plot_stem << ".csv and " << opt.plot_stem
              << ".gp (render: gnuplot " << opt.plot_stem << ".gp)\n\n";
  }

  // The figure's headline observations, recomputed from this run.
  const auto& htee12 = runs.at({exp::Algorithm::kHtee, 12});
  const auto& mine12 = runs.at({exp::Algorithm::kMinE, 12});
  const auto& sc12 = runs.at({exp::Algorithm::kSc, 12});
  const auto& promc12 = runs.at({exp::Algorithm::kProMc, 12});
  std::cout << "checks:\n"
            << "  HTEE chose concurrency " << htee12.chosen_concurrency
            << " (ratio = " << Table::num(100.0 * htee12.ratio() / best_bf_ratio, 1)
            << "% of best BF)\n"
            << "  MinE ratio = " << Table::num(100.0 * mine12.ratio() / best_bf_ratio, 1)
            << "% of best BF\n"
            << "  SC/MinE energy at cc=12: "
            << Table::num(100.0 * sc12.energy() / mine12.energy() - 100.0, 1)
            << "% extra for SC\n"
            << "  ProMC peak throughput: " << Table::num(promc12.throughput_mbps(), 0)
            << " Mbps\n\n";

  exp::BenchRecord record;
  record.total_wall_ms = sweep_ms;
  record.tasks = results;
  if (collector) {
    write_obs_outputs(opt, *collector);
    print_histogram_percentiles(opt, *collector);
    record.metrics = collector->metrics().snapshot();
  }
  write_bench_record(opt, std::move(record));
}

void run_sla_figure(const testbeds::Testbed& base, int promc_level, const Options& opt) {
  const auto t = scaled(base, opt.scale);
  print_header(base, opt);
  const auto dataset = t.make_dataset();

  const exp::SweepRunner runner(opt.jobs);
  const auto sweep_start = std::chrono::steady_clock::now();

  // The ProMC maximum calibrates every SLA target, so it runs first (a
  // one-task sweep); the SLA grid then fans out in parallel. Two run() calls
  // means auto slots would collide at 0, so every task gets an explicit one.
  const auto collector = make_collector(opt);
  std::vector<exp::SweepTask> promc_tasks(1);
  promc_tasks[0].testbed = t;
  promc_tasks[0].dataset = dataset;
  promc_tasks[0].algorithm = exp::Algorithm::kProMc;
  promc_tasks[0].concurrency = promc_level;
  promc_tasks[0].obs = collector.get();
  promc_tasks[0].obs_slot = 0;
  auto promc_results = runner.run(promc_tasks);
  const auto& promc = promc_results[0].run;
  const BitsPerSecond max_thr = promc.result.avg_throughput();
  std::cout << "ProMC maximum throughput (cc=" << promc_level
            << "): " << Table::num(to_mbps(max_thr), 0)
            << " Mbps, energy " << Table::num(promc.energy(), 0) << " J\n\n";

  std::vector<exp::SweepTask> sla_tasks;
  for (const double target : exp::sla_target_percents()) {
    exp::SweepTask task;
    task.kind = exp::SweepTask::Kind::kSla;
    task.testbed = t;
    task.dataset = dataset;
    task.concurrency = 12;
    task.target_percent = target;
    task.max_throughput = max_thr;
    task.obs = collector.get();
    task.obs_slot = 1 + sla_tasks.size();
    sla_tasks.push_back(std::move(task));
  }
  const auto sla_results = runner.run(sla_tasks);
  const double sweep_ms = elapsed_ms(sweep_start);

  Table table({"target %", "target Mbps", "achieved Mbps", "energy J",
               "vs ProMC energy %", "deviation %", "final cc", "rearranged"});
  for (const auto& r : sla_results) {
    const auto& out = r.sla;
    table.add_row({Table::num(out.target_percent, 0),
                   Table::num(to_mbps(out.target_throughput), 0),
                   Table::num(out.achieved_mbps(), 0), Table::num(out.energy(), 0),
                   Table::num(100.0 * out.energy() / promc.energy() - 100.0, 1),
                   Table::num(out.deviation_percent(), 1),
                   std::to_string(out.final_concurrency),
                   out.rearranged ? "yes" : "no"});
  }
  std::cout << "SLA transfers (Figure panels a-c as columns)\n";
  emit(table, opt);

  exp::BenchRecord record;
  record.total_wall_ms = sweep_ms;
  record.tasks = std::move(promc_results);
  for (const auto& r : sla_results) {
    record.tasks.push_back(r);
    record.tasks.back().index = record.tasks.size() - 1;
  }
  if (collector) {
    write_obs_outputs(opt, *collector);
    print_histogram_percentiles(opt, *collector);
    record.metrics = collector->metrics().snapshot();
  }
  write_bench_record(opt, std::move(record));
}

}  // namespace eadt::bench
