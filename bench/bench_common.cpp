#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string_view>

#include "exp/report.hpp"

namespace eadt::bench {

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--scale" && i + 1 < argc) {
      opt.scale = static_cast<unsigned>(std::max(1, std::atoi(argv[++i])));
    } else if (arg.rfind("--scale=", 0) == 0) {
      opt.scale = static_cast<unsigned>(std::max(1, std::atoi(arg.data() + 8)));
    } else if (arg == "--plot" && i + 1 < argc) {
      opt.plot_stem = argv[++i];
    } else if (arg.rfind("--plot=", 0) == 0) {
      opt.plot_stem = std::string(arg.substr(7));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench [--scale N] [--csv] [--plot STEM]\n"
                   "  --scale N   divide the dataset size by N (default 1: paper scale)\n"
                   "  --csv       emit CSV instead of aligned tables\n"
                   "  --plot STEM write STEM.csv and a gnuplot script STEM.gp\n";
      std::exit(0);
    }
  }
  return opt;
}

void print_header(const testbeds::Testbed& t, const Options& opt) {
  std::cout << "== " << t.env.name << " ==\n"
            << "  link: " << Table::num(to_gbps(t.env.path.bandwidth), 1) << " Gbps, RTT "
            << Table::num(t.env.path.rtt * 1000.0, 1) << " ms, TCP buffer "
            << to_mb(t.env.path.tcp_buffer) << " MB, BDP "
            << Table::num(static_cast<double>(t.env.bdp()) / 1e6, 1) << " MB\n"
            << "  dataset: " << t.recipe.name << ", "
            << Table::num(to_gb(t.recipe.total_bytes / opt.scale), 1) << " GB"
            << (opt.scale > 1 ? " (scaled 1/" + std::to_string(opt.scale) + ")" : "")
            << "\n  DTN servers per site: " << t.env.source.servers.size() << "\n\n";
}

void emit(const Table& table, const Options& opt) {
  if (opt.csv) {
    table.render_csv(std::cout);
  } else {
    table.render(std::cout);
  }
  std::cout << '\n';
}

namespace {

testbeds::Testbed scaled(testbeds::Testbed t, unsigned divisor) {
  t.recipe.total_bytes /= std::max(1u, divisor);
  return t;
}

}  // namespace

void run_concurrency_figure(const testbeds::Testbed& base, const Options& opt) {
  const auto t = scaled(base, opt.scale);
  print_header(base, opt);
  const auto dataset = t.make_dataset();

  const auto algorithms = exp::figure_algorithms();
  const auto levels = exp::figure_concurrency_levels();

  std::map<std::pair<exp::Algorithm, int>, exp::RunOutcome> runs;
  for (const auto a : algorithms) {
    for (const int level : levels) {
      // GUC and GO do not take a concurrency parameter; run them once.
      if ((a == exp::Algorithm::kGuc || a == exp::Algorithm::kGo) &&
          level != levels.front()) {
        runs.emplace(std::make_pair(a, level), runs.at({a, levels.front()}));
        continue;
      }
      runs.emplace(std::make_pair(a, level), exp::run_algorithm(a, t, dataset, level));
    }
  }

  // Brute-force reference sweep for panel (c).
  std::map<int, exp::RunOutcome> bf;
  double best_bf_ratio = 0.0;
  for (const int level : exp::bf_concurrency_levels()) {
    auto out = exp::run_algorithm(exp::Algorithm::kBf, t, dataset, level);
    best_bf_ratio = std::max(best_bf_ratio, out.ratio());
    bf.emplace(level, std::move(out));
  }

  auto header_row = [&] {
    std::vector<std::string> h{"concurrency"};
    for (const auto a : algorithms) h.emplace_back(exp::to_string(a));
    return h;
  };

  std::cout << "(a) Throughput (Mbps)\n";
  Table thr(header_row());
  for (const int level : levels) {
    std::vector<std::string> row{std::to_string(level)};
    for (const auto a : algorithms) {
      row.push_back(Table::num(runs.at({a, level}).throughput_mbps(), 0));
    }
    thr.add_row(std::move(row));
  }
  emit(thr, opt);

  std::cout << "(b) End-system energy (Joule)\n";
  Table en(header_row());
  for (const int level : levels) {
    std::vector<std::string> row{std::to_string(level)};
    for (const auto a : algorithms) {
      row.push_back(Table::num(runs.at({a, level}).energy(), 0));
    }
    en.add_row(std::move(row));
  }
  emit(en, opt);

  std::cout << "(c) Energy efficiency (throughput/energy, normalised to best BF)\n";
  Table eff(header_row());
  for (const int level : levels) {
    std::vector<std::string> row{std::to_string(level)};
    for (const auto a : algorithms) {
      row.push_back(Table::num(runs.at({a, level}).ratio() / best_bf_ratio, 3));
    }
    eff.add_row(std::move(row));
  }
  emit(eff, opt);

  std::cout << "(c) Brute-force sweep (normalised ratio by concurrency)\n";
  Table bft({"concurrency", "BF ratio"});
  for (const auto& [level, out] : bf) {
    bft.add_row({std::to_string(level), Table::num(out.ratio() / best_bf_ratio, 3)});
  }
  emit(bft, opt);

  if (!opt.plot_stem.empty()) {
    exp::SweepTable sweep;
    sweep.levels = levels;
    for (const auto& [key, out] : runs) sweep.outcomes[key.first][key.second] = out;
    {
      std::ofstream csv(opt.plot_stem + ".csv");
      exp::write_sweep_csv(csv, sweep);
    }
    {
      std::ofstream gp(opt.plot_stem + ".gp");
      exp::write_sweep_gnuplot(gp, sweep, opt.plot_stem + ".csv", opt.plot_stem);
    }
    std::cout << "wrote " << opt.plot_stem << ".csv and " << opt.plot_stem
              << ".gp (render: gnuplot " << opt.plot_stem << ".gp)\n\n";
  }

  // The figure's headline observations, recomputed from this run.
  const auto& htee12 = runs.at({exp::Algorithm::kHtee, 12});
  const auto& mine12 = runs.at({exp::Algorithm::kMinE, 12});
  const auto& sc12 = runs.at({exp::Algorithm::kSc, 12});
  const auto& promc12 = runs.at({exp::Algorithm::kProMc, 12});
  std::cout << "checks:\n"
            << "  HTEE chose concurrency " << htee12.chosen_concurrency
            << " (ratio = " << Table::num(100.0 * htee12.ratio() / best_bf_ratio, 1)
            << "% of best BF)\n"
            << "  MinE ratio = " << Table::num(100.0 * mine12.ratio() / best_bf_ratio, 1)
            << "% of best BF\n"
            << "  SC/MinE energy at cc=12: "
            << Table::num(100.0 * sc12.energy() / mine12.energy() - 100.0, 1)
            << "% extra for SC\n"
            << "  ProMC peak throughput: " << Table::num(promc12.throughput_mbps(), 0)
            << " Mbps\n\n";
}

void run_sla_figure(const testbeds::Testbed& base, int promc_level, const Options& opt) {
  const auto t = scaled(base, opt.scale);
  print_header(base, opt);
  const auto dataset = t.make_dataset();

  const auto promc = exp::run_algorithm(exp::Algorithm::kProMc, t, dataset, promc_level);
  const BitsPerSecond max_thr = promc.result.avg_throughput();
  std::cout << "ProMC maximum throughput (cc=" << promc_level
            << "): " << Table::num(to_mbps(max_thr), 0)
            << " Mbps, energy " << Table::num(promc.energy(), 0) << " J\n\n";

  Table table({"target %", "target Mbps", "achieved Mbps", "energy J",
               "vs ProMC energy %", "deviation %", "final cc", "rearranged"});
  for (const double target : exp::sla_target_percents()) {
    const auto out = exp::run_slaee(t, dataset, target, max_thr, 12);
    table.add_row({Table::num(target, 0), Table::num(to_mbps(out.target_throughput), 0),
                   Table::num(out.achieved_mbps(), 0), Table::num(out.energy(), 0),
                   Table::num(100.0 * out.energy() / promc.energy() - 100.0, 1),
                   Table::num(out.deviation_percent(), 1),
                   std::to_string(out.final_concurrency),
                   out.rearranged ? "yes" : "no"});
  }
  std::cout << "SLA transfers (Figure panels a-c as columns)\n";
  emit(table, opt);
}

}  // namespace eadt::bench
