// Extension study: HTEE's probe ladder vs model-based tuning (three probes +
// curve fits). Reports search cost (windows spent probing), the level each
// method commits to, and how that level's standalone efficiency compares to
// the brute-force optimum on all three testbeds.
#include <map>
#include <iostream>

#include "bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/model_based.hpp"

int main(int argc, char** argv) {
  using namespace eadt;
  const auto opt = bench::parse_options(argc, argv);

  std::cout << "HTEE search vs model-based tuning (extension study)\n\n";

  Table table({"testbed", "method", "probe windows", "chosen cc",
               "chosen-level ratio vs BF best", "whole-run Mbps", "whole-run J"});
  for (auto t : testbeds::all_testbeds()) {
    t.recipe.total_bytes /= std::max(1u, opt.scale) * 4;
    for (auto& band : t.recipe.bands) {
      band.max_size = std::max(band.max_size / (opt.scale * 4), band.min_size * 2);
    }
    const auto ds = t.make_dataset();
    const int max_cc = t.default_max_channels;

    // Brute-force reference ratios per level, fanned out by the sweep runner.
    std::vector<exp::SweepTask> bf_tasks;
    for (int level = 1; level <= max_cc; ++level) {
      exp::SweepTask task;
      task.testbed = t;
      task.dataset = ds;
      task.algorithm = exp::Algorithm::kBf;
      task.concurrency = level;
      bf_tasks.push_back(std::move(task));
    }
    const auto bf_results = exp::SweepRunner(opt.jobs).run(bf_tasks);
    std::map<int, double> bf;
    double best_bf = 0.0;
    for (const auto& r : bf_results) {
      bf[r.run.concurrency] = r.run.ratio();
      best_bf = std::max(best_bf, bf[r.run.concurrency]);
    }

    {
      core::HteeController ctl(max_cc);
      proto::TransferSession s(t.env, ds, core::plan_htee(t.env, ds, max_cc));
      const auto r = s.run(&ctl);
      table.add_row({t.env.name, "HTEE", std::to_string(ctl.probe_count()),
                     std::to_string(ctl.chosen_level()),
                     Table::num(100.0 * bf[ctl.chosen_level()] / best_bf, 1) + "%",
                     Table::num(to_mbps(r.avg_throughput()), 0),
                     Table::num(r.end_system_energy, 0)});
    }
    {
      core::ModelBasedController ctl(max_cc);
      proto::TransferSession s(t.env, ds, core::plan_htee(t.env, ds, max_cc));
      const auto r = s.run(&ctl);
      table.add_row({t.env.name, "model-based", std::to_string(ctl.probe_count()),
                     std::to_string(ctl.chosen_level()),
                     Table::num(100.0 * bf[ctl.chosen_level()] / best_bf, 1) + "%",
                     Table::num(to_mbps(r.avg_throughput()), 0),
                     Table::num(r.end_system_energy, 0)});
    }
  }
  bench::emit(table, opt);

  std::cout << "checks:\n"
               "  model-based tuning spends half the probe windows and commits\n"
               "  to a level of comparable standalone efficiency\n";
  return 0;
}
