// google-benchmark microbenchmarks of the simulator's hot paths: the fair
// share allocator, event queue, utilization/power evaluation, and a whole
// small transfer session per iteration.
#include <benchmark/benchmark.h>

#include "baselines/baselines.hpp"
#include "net/fair_share.hpp"
#include "power/end_system.hpp"
#include "proto/session.hpp"
#include "sim/simulation.hpp"
#include "testbeds/testbeds.hpp"
#include "util/rng.hpp"

namespace {

using namespace eadt;

void BM_FairShare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<net::Demand> demands;
  for (int i = 0; i < n; ++i) demands.push_back({rng.uniform(1e8, 5e9), rng.uniform(1, 4)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::fair_share(gbps(10.0), demands));
  }
}
BENCHMARK(BM_FairShare)->Arg(4)->Arg(16)->Arg(64);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>((i * 7919) % 1000), [] {});
    }
    sim.run_until();
    benchmark::DoNotOptimize(sim.now());
  }
}
BENCHMARK(BM_EventQueue);

void BM_PowerModel(benchmark::State& state) {
  power::PowerCoefficients c;
  host::Utilization u{0.6, 0.2, 0.4, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(power::fine_grained_power(c, 4, u));
  }
}
BENCHMARK(BM_PowerModel);

void BM_SmallTransferSession(benchmark::State& state) {
  auto t = testbeds::didclab();
  t.recipe.total_bytes = 1ULL * kGB;
  const auto ds = t.make_dataset();
  for (auto _ : state) {
    proto::TransferSession s(t.env, ds, baselines::plan_promc(t.env, ds, 4));
    benchmark::DoNotOptimize(s.run());
  }
}
BENCHMARK(BM_SmallTransferSession)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
