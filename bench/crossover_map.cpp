// Crossover map: where does each algorithm win, across the RTT x bandwidth
// plane? The paper evaluates three points of that plane (10G/40ms, 1G/28ms,
// 1G/0.2ms); this study fills in the grid so a deployer can look up their own
// link. For every cell (parallel-storage endpoints, cc budget 8) the table
// reports the throughput winner, the energy winner, and the best
// throughput/energy ratio winner among {SC, MinE, ProMC, HTEE}.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace eadt;
  const auto opt = bench::parse_options(argc, argv);

  std::cout << "Algorithm crossover map (cc budget 8, 10 GB mixed dataset)\n\n";

  const double rtts_ms[] = {0.2, 5.0, 20.0, 40.0, 100.0};
  const double bws_gbps[] = {1.0, 10.0};

  const exp::Algorithm contenders[] = {exp::Algorithm::kSc, exp::Algorithm::kMinE,
                                       exp::Algorithm::kProMc, exp::Algorithm::kHtee};

  // Whole RTT x bandwidth x algorithm grid as one parallel sweep; per-cell
  // winners are picked afterwards from the index-ordered results.
  std::vector<exp::SweepTask> tasks;
  for (const double bw : bws_gbps) {
    for (const double rtt_ms : rtts_ms) {
      auto t = testbeds::xsede();  // endpoint template; path overridden per cell
      t.env.path.bandwidth = gbps(bw);
      t.env.path.rtt = rtt_ms / 1000.0;
      t.recipe.total_bytes = 10ULL * kGB / std::max(1u, opt.scale);
      for (auto& band : t.recipe.bands) {
        band.max_size = std::max(band.max_size / 16, band.min_size * 2);
      }
      const auto ds = t.make_dataset();
      for (const auto a : contenders) {
        exp::SweepTask task;
        task.testbed = t;
        task.dataset = ds;
        task.algorithm = a;
        task.concurrency = 8;
        tasks.push_back(std::move(task));
      }
    }
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = exp::SweepRunner(opt.jobs).run(tasks);
  const double sweep_ms = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - sweep_start).count();

  Table table({"bandwidth", "RTT ms", "BDP MB", "fastest", "cheapest", "best ratio",
               "ratio spread"});
  std::size_t cell = 0;
  for (const double bw : bws_gbps) {
    for (const double rtt_ms : rtts_ms) {
      const exp::RunOutcome* fastest = nullptr;
      const exp::RunOutcome* cheapest = nullptr;
      const exp::RunOutcome* best = nullptr;
      double worst_ratio = 0.0;
      std::vector<exp::RunOutcome> outs;
      outs.reserve(4);
      for (std::size_t i = 0; i < std::size(contenders); ++i) {
        outs.push_back(results[cell * std::size(contenders) + i].run);
      }
      ++cell;
      for (const auto& out : outs) {
        if (fastest == nullptr || out.throughput_mbps() > fastest->throughput_mbps()) {
          fastest = &out;
        }
        if (cheapest == nullptr || out.energy() < cheapest->energy()) cheapest = &out;
        if (best == nullptr || out.ratio() > best->ratio()) best = &out;
        worst_ratio = worst_ratio == 0.0 ? out.ratio() : std::min(worst_ratio, out.ratio());
      }
      table.add_row({Table::num(bw, 0) + " Gbps", Table::num(rtt_ms, 1),
                     Table::num(bw * 1e9 * rtt_ms / 1000.0 / 8.0 / 1e6, 1),
                     exp::to_string(fastest->algorithm),
                     exp::to_string(cheapest->algorithm),
                     exp::to_string(best->algorithm),
                     Table::num(best->ratio() / worst_ratio, 2) + "x"});
    }
  }
  bench::emit(table, opt);

  exp::BenchRecord record;
  record.total_wall_ms = sweep_ms;
  record.tasks = results;
  bench::write_bench_record(opt, std::move(record));

  std::cout << "reading the map:\n"
               "  the winner shifts across the plane — sequential SC on short\n"
               "  RTTs (no overlap to exploit, search overheads hurt), MinE in\n"
               "  the mid-BDP band, ProMC on long fat pipes — which is exactly\n"
               "  why a deployer cannot hard-code one algorithm and the paper\n"
               "  argues for online selection (HTEE).\n";
  return 0;
}
