// Supervised recovery sweep: how the watchdog deadline and the failure
// severity shape a job's fate. For each (deadline, severity) cell a kDeadline
// job runs under the Supervisor — checkpointed retries plus the degradation
// ladder — and the table reports the attempts it needed, whether the ladder
// stepped it down, the goodput it salvaged, and the energy overhead relative
// to the clean unsupervised run. The sweep makes the central trade visible:
// tight watchdogs bound tail latency per attempt but re-pay per-file
// overheads on every resumed leg, and under heavy faults they push jobs down
// the ladder to safer, slower operating points.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/service.hpp"
#include "proto/faults.hpp"

int main(int argc, char** argv) {
  using namespace eadt;
  const auto opt = bench::parse_options(argc, argv);

  auto base = testbeds::xsede();
  base.recipe.total_bytes /= std::max(1u, opt.scale) * 4;  // keep runs brisk
  for (auto& band : base.recipe.bands) {
    band.max_size = std::max(band.max_size / (opt.scale * 4), band.min_size * 2);
  }
  const auto ds = base.make_dataset();
  const int cc = 12;

  // The fault-free run calibrates deadlines and the energy baseline.
  exp::TransferService probe(base, 0.0, {});
  std::vector<exp::TransferJob> probe_jobs;
  probe_jobs.push_back({"clean", ds, exp::JobPolicy::kDeadline, 0, 0, cc});
  const auto clean = probe.run_queue(probe_jobs).jobs[0];
  const Seconds clean_t = clean.result.duration;
  const Joules clean_j = clean.result.end_system_energy;

  struct Severity {
    const char* name;
    proto::FaultPlan plan;
  };
  std::vector<Severity> severities;
  {
    proto::FaultPlan light;
    light.stochastic.channel_drop_rate = 0.02;
    light.seed = 17;
    severities.push_back({"light", light});
  }
  {
    proto::FaultPlan heavy;
    heavy.stochastic.channel_drop_rate = 0.10;
    heavy.stochastic.checksum_failure_prob = 0.005;
    heavy.brownouts.push_back({/*start=*/clean_t * 0.3, /*duration=*/clean_t * 0.3,
                               /*capacity_factor=*/0.4});
    heavy.seed = 17;
    severities.push_back({"heavy", heavy});
  }

  const double deadline_fractions[] = {0.35, 0.6, 1.0};

  std::cout << "Supervised recovery sweep (XSEDE, cc=" << cc
            << "): watchdog deadline x fault severity\n"
            << "clean unsupervised run: " << Table::num(clean_t, 1) << " s, "
            << Table::num(clean_j, 0) << " J\n\n";

  // Supervisor cells are not plain algorithm runs, so they use the sweep
  // runner's deterministic fan-out primitive directly: each (severity x
  // deadline) cell owns its service, and rows are rendered in cell order
  // regardless of which worker finished first.
  struct Cell {
    const char* severity = nullptr;
    const proto::FaultPlan* plan = nullptr;
    double deadline = 0.0;
    exp::JobOutcome job;
  };
  std::vector<Cell> cells;
  for (const auto& sev : severities) {
    for (const double frac : deadline_fractions) {
      cells.push_back({sev.name, &sev.plan, clean_t * frac, {}});
    }
  }
  const BitsPerSecond reference_rate = probe.reference_rate();
  const auto sweep_start = std::chrono::steady_clock::now();
  exp::SweepRunner::parallel_indexed(
      exp::resolve_jobs(opt.jobs), cells.size(), [&](std::size_t i) {
        auto& cell = cells[i];
        exp::TransferService service(base, reference_rate, {});
        service.set_fault_plan(*cell.plan);
        exp::SupervisorPolicy policy;
        policy.attempt_deadline = cell.deadline;
        policy.max_attempts = 20;
        policy.degrade_after = 2;
        service.set_supervisor(policy);

        std::vector<exp::TransferJob> jobs;
        jobs.push_back({"swept", ds, exp::JobPolicy::kDeadline, 0, 0, cc});
        cell.job = service.run_queue(jobs).jobs[0];
      });
  const double sweep_ms = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - sweep_start).count();

  Table table({"severity", "deadline s", "attempts", "degraded", "done",
               "goodput Mbps", "energy overhead %", "resumes", "rungs"});
  for (const auto& cell : cells) {
    const auto& job = cell.job;
    const double overhead =
        (job.result.end_system_energy - clean_j) / clean_j * 100.0;
    const int rungs =
        job.recovery.count(exp::RecoveryAction::kReduceChannels) +
        job.recovery.count(exp::RecoveryAction::kPolicyFallback);
    table.add_row({cell.severity, Table::num(cell.deadline, 1),
                   Table::num(double(job.attempts), 0),
                   job.recovery.degraded() ? "yes" : "no",
                   job.failed ? "FAILED" : "yes",
                   Table::num(to_mbps(job.result.avg_goodput()), 0),
                   Table::num(overhead, 1),
                   Table::num(
                       double(job.recovery.count(exp::RecoveryAction::kResume)), 0),
                   Table::num(double(rungs), 0)});
  }
  bench::emit(table, opt);

  exp::BenchRecord record;
  record.total_wall_ms = sweep_ms;
  bench::write_bench_record(opt, std::move(record));

  std::cout << "\nDeadlines are fractions (0.35 / 0.6 / 1.0) of the clean run "
               "time; every resumed\nleg re-pays per-file overheads on cold "
               "channels, so tighter watchdogs trade\nenergy for bounded "
               "per-attempt latency. 'rungs' counts degradation-ladder "
               "steps\n(channel reductions + policy fallbacks) the supervisor "
               "took.\n";
  return 0;
}
