// Core microbenchmark suite: the engine hot paths, self-timed, with the
// event queue raced against the std::map implementation it replaced.
//
// Five series (BENCH_core.json, schema eadt-bench-v1, `micro` section):
//   * event_queue_sched_fire_cancel — randomized schedule/fire/cancel churn
//     on sim::Simulation vs the reference std::map queue (same op sequence;
//     the speedup figure is the PR-over-PR perf gate);
//   * ticker_churn — re-arm fast path: many concurrent tickers firing;
//   * fair_share_rounds — net::fair_share_into with a warmed scratch;
//   * fair_share_waterfill_dist — net::WaterfillSolver dist mode at 10^6
//     flows (10^5 under --quick) vs the per-flow reference loop on the same
//     round, bitwise-checked before timing (its speedup is a CI tripwire);
//   * session_ticks — whole TransferSession steady-state ticks per second.
//
// Wall-clock numbers are the *non-deterministic* side of the schema: the ops
// counts are replay-stable, the rates are the perf trajectory.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <map>
#include <utility>
#include <vector>

#include "baselines/baselines.hpp"
#include "bench_common.hpp"
#include "net/fair_share.hpp"
#include "obs/obs.hpp"
#include "proto/session.hpp"
#include "sim/simulation.hpp"
#include "testbeds/testbeds.hpp"
#include "util/rng.hpp"

namespace {

using namespace eadt;

volatile double g_sink = 0.0;  // defeats dead-code elimination

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The event engine this PR replaced, verbatim: a std::map over (time, seq)
/// with eager cancellation, and tickers implemented as a shared_ptr registry
/// whose re-arm closure is re-scheduled — i.e. a fresh std::function (heap
/// clone: the closure outgrows the SBO buffer) plus a map node per
/// occurrence. Kept here as the baseline the heap engine is raced against
/// (the differential test in tests/test_simulation.cpp uses the same
/// reference to check behaviour, op for op).
class MapQueue {
 public:
  struct Id {
    double time = 0.0;
    std::uint64_t seq = 0;
  };

  [[nodiscard]] double now() const { return now_; }

  Id schedule_at(double t, std::function<void()> fn) {
    const double when = std::max(t, now_);
    const Id id{when, next_seq_++};
    queue_.emplace(std::make_pair(when, id.seq), std::move(fn));
    return id;
  }

  Id add_ticker(double interval, std::function<bool()> fn) {
    const std::uint64_t key = next_seq_;  // seq the first occurrence will get
    auto state = std::make_shared<TickerState>();
    state->fn = std::move(fn);
    state->rearm = [this, interval, key]() {
      const auto it = tickers_.find(key);
      if (it == tickers_.end()) return;  // cancelled while this firing was queued
      const auto st = it->second;
      if (!st->fn()) {
        tickers_.erase(key);
        return;
      }
      if (tickers_.count(key) != 0) {  // fn may have cancelled its own ticker
        st->current = schedule_at(now_ + std::max(interval, 0.0), st->rearm);
      }
    };
    tickers_.emplace(key, state);
    state->current = schedule_at(now_ + std::max(interval, 0.0), state->rearm);
    return state->current;
  }

  bool cancel(Id id) {
    if (auto it = tickers_.find(id.seq); it != tickers_.end()) {
      const Id current = it->second->current;
      tickers_.erase(it);
      queue_.erase({current.time, current.seq});
      return true;
    }
    return queue_.erase({id.time, id.seq}) > 0;
  }

  std::uint64_t run_until(double deadline) {
    std::uint64_t fired = 0;
    while (!queue_.empty() && queue_.begin()->first.first <= deadline) {
      const auto it = queue_.begin();
      now_ = it->first.first;
      auto fn = std::move(it->second);
      queue_.erase(it);
      fn();
      ++fired;
    }
    return fired;
  }

 private:
  struct TickerState {
    Id current;
    std::function<bool()> fn;
    std::function<void()> rearm;
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::map<std::pair<double, std::uint64_t>, std::function<void()>> queue_;
  std::map<std::uint64_t, std::shared_ptr<TickerState>> tickers_;
};

/// sim::Simulation behind the MapQueue interface, so both run the exact same
/// churn loop. Both consume one seq per occurrence, so tie-breaks — and
/// therefore the fired-event sequence — are identical.
class HeapQueue {
 public:
  using Id = sim::EventId;
  [[nodiscard]] double now() const { return sim_.now(); }
  Id schedule_at(double t, std::function<void()> fn) {
    return sim_.schedule_at(t, std::move(fn));
  }
  Id add_ticker(double interval, std::function<bool()> fn) {
    return sim_.add_ticker(interval, std::move(fn));
  }
  bool cancel(Id id) { return sim_.cancel(id); }
  std::uint64_t run_until(double deadline) { return sim_.run_until(deadline); }

 private:
  sim::Simulation sim_;
};

/// One deterministic session-shaped churn round-trip, mirroring what the
/// golden counters say real runs look like (ticks dominate fired events and
/// the queue stays shallow): every round starts a finite ticker, schedules a
/// burst of one-shot control events, cancels a wave of remembered ids (some
/// already fired, some mid-flight tickers — both implementations pay the
/// same misses), then advances time so the live tickers fire. Returns the
/// number of queue operations performed.
template <typename Queue>
std::uint64_t queue_churn(Queue& q, int rounds) {
  Rng rng(0xC0DEC0DEULL);
  std::vector<typename Queue::Id> ids;
  ids.reserve(64);
  std::uint64_t ops = 0;
  int spin = 0;
  const auto payload = [&] { ++spin; };
  for (int r = 0; r < rounds; ++r) {
    // ~6 tickers stay live in steady state (one added per round, each
    // self-stopping after 64 occurrences), each firing ~10 times per round:
    // ticks end up ~85% of fired events, like a session's counters.
    {
      auto left = 64;
      ids.push_back(q.add_ticker(rng.uniform(0.05, 0.4),
                                 [left, &spin]() mutable {
                                   ++spin;
                                   return --left > 0;
                                 }));
      ++ops;
    }
    for (int k = 0; k < 8; ++k) {
      ids.push_back(q.schedule_at(q.now() + rng.uniform(0.0, 4.0), payload));
      ++ops;
    }
    for (int k = 0; k < 3 && !ids.empty(); ++k) {
      const std::size_t pick = rng.uniform_int(0, ids.size() - 1);
      q.cancel(ids[pick]);
      ++ops;
      ids[pick] = ids.back();
      ids.pop_back();
    }
    ops += q.run_until(q.now() + 2.0);
  }
  ops += q.run_until(1e18);  // drain: every ticker self-stops
  g_sink = static_cast<double>(spin);
  return ops;
}

exp::MicroSample bench_event_queue(int rounds) {
  // Untimed warm-up pass so both sides measure steady-state allocator and
  // cache behaviour, not first-touch page faults.
  {
    HeapQueue w1;
    queue_churn(w1, rounds / 8 + 1);
    MapQueue w2;
    queue_churn(w2, rounds / 8 + 1);
  }
  HeapQueue heap;
  auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t ops = queue_churn(heap, rounds);
  const double heap_ms = ms_since(t0);

  MapQueue map;
  t0 = std::chrono::steady_clock::now();
  const std::uint64_t map_ops = queue_churn(map, rounds);
  const double map_ms = ms_since(t0);
  if (map_ops != ops) {
    std::cerr << "FATAL: baseline executed a different op count (" << map_ops
              << " vs " << ops << ")\n";
    std::exit(1);
  }

  exp::MicroSample m;
  m.name = "event_queue_sched_fire_cancel";
  m.ops = ops;
  m.wall_ms = heap_ms;
  m.ops_per_sec = heap_ms > 0.0 ? static_cast<double>(ops) * 1000.0 / heap_ms : 0.0;
  m.baseline_ops_per_sec =
      map_ms > 0.0 ? static_cast<double>(ops) * 1000.0 / map_ms : 0.0;
  m.speedup =
      m.baseline_ops_per_sec > 0.0 ? m.ops_per_sec / m.baseline_ops_per_sec : 0.0;
  return m;
}

exp::MicroSample bench_ticker_churn(int tickers, std::uint64_t fires_each) {
  sim::Simulation sim;
  for (int i = 0; i < tickers; ++i) {
    auto left = fires_each;
    sim.add_ticker(0.1 + 0.01 * static_cast<double>(i % 7),
                   [left]() mutable { return --left > 0; });
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.run_until();
  const double ms = ms_since(t0);
  g_sink = sim.now();

  exp::MicroSample m;
  m.name = "ticker_churn";
  m.ops = sim.counters().ticks;
  m.wall_ms = ms;
  m.ops_per_sec = ms > 0.0 ? static_cast<double>(m.ops) * 1000.0 / ms : 0.0;
  return m;
}

exp::MicroSample bench_fair_share(int calls) {
  Rng rng(7);
  std::vector<net::Demand> demands;
  for (int i = 0; i < 64; ++i) {
    demands.push_back({rng.uniform(1e8, 5e9), rng.uniform(1.0, 4.0)});
  }
  net::FairShareScratch scratch;
  std::vector<BitsPerSecond> alloc;
  double acc = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < calls; ++i) {
    // Nudge the capacity per call so the loop cannot be folded away.
    const double cap = gbps(10.0) + static_cast<double>(i % 97);
    acc += net::fair_share_into(cap, demands, alloc, scratch);
  }
  const double ms = ms_since(t0);
  g_sink = acc;

  exp::MicroSample m;
  m.name = "fair_share_rounds";
  m.ops = static_cast<std::uint64_t>(calls);
  m.wall_ms = ms;
  m.ops_per_sec = ms > 0.0 ? static_cast<double>(m.ops) * 1000.0 / ms : 0.0;
  return m;
}

/// Fair share at fleet scale: one arbiter-shaped round of `flows` flows in
/// 96 duplicate-demand clusters forming a capping CASCADE — each cluster's
/// cap/weight ratio sits just inside the next filling round's waterlevel
/// window, so progressive filling retires exactly one cluster per round and
/// pays rounds * survivors, the per-flow loop's real cost model under
/// heterogeneous fleets. The waterfill solver takes the same round in dist
/// form — 96 group entries — and is raced against the reference loop on the
/// expansion. Before any timing, one solve is checked BITWISE against the
/// reference (per-member rates and total); a mismatch is fatal, because the
/// solver's whole contract is exact equivalence.
exp::MicroSample bench_waterfill(std::uint64_t flows) {
  Rng rng(0xFA17CAFEULL);
  constexpr int kClusters = 96;
  constexpr int kSurvivors = 4;  // left uncapped: the terminal waterlevel round
  const std::uint64_t count = std::max<std::uint64_t>(flows / kClusters, 1);

  std::vector<double> weights;
  double w_active = 0.0;
  for (int j = 0; j < kClusters; ++j) {
    weights.push_back(static_cast<double>(rng.uniform_int(1, 8)));
    weights.back() += rng.uniform(0.0, 0.5);  // no two clusters collapse
    w_active += weights.back() * static_cast<double>(count);
  }

  // Walk the filling recurrence to place each cluster's ratio inside the
  // (share_{j-1}, share_j] window: cluster j then caps in round j and no
  // earlier. Windows are ~1e-4 wide relative — far above the solver's 1e-12
  // certification band, far below anything that would merge rounds.
  const BitsPerSecond capacity = 1e12;
  std::vector<net::DemandGroup> groups;
  double remaining = capacity;
  double prev_share = 0.0;
  for (int j = 0; j < kClusters - kSurvivors; ++j) {
    const double share = remaining / w_active;  // round j's waterlevel
    const double key = prev_share + 0.9 * (share - prev_share);
    const double cap = key * weights[static_cast<std::size_t>(j)];
    groups.push_back({cap, weights[static_cast<std::size_t>(j)], count});
    remaining -= cap * static_cast<double>(count);
    w_active -= weights[static_cast<std::size_t>(j)] * static_cast<double>(count);
    prev_share = share;
  }
  for (int j = kClusters - kSurvivors; j < kClusters; ++j) {
    // Survivors: ratio far above any waterlevel, so the final round splits
    // what's left by weight — the convergence the acceptance check pins.
    groups.push_back({prev_share * weights[static_cast<std::size_t>(j)] * 8.0,
                      weights[static_cast<std::size_t>(j)], count});
  }
  const std::uint64_t members = count * static_cast<std::uint64_t>(kClusters);

  std::vector<net::Demand> expanded;
  expanded.reserve(members);
  for (const auto& g : groups) {
    expanded.insert(expanded.end(), static_cast<std::size_t>(g.count),
                    net::Demand{g.cap, g.weight});
  }

  // Correctness gate, untimed: dist solve vs reference on the expansion.
  net::WaterfillSolver solver;
  net::FairShareScratch scratch;
  std::vector<BitsPerSecond> group_rates;
  std::vector<BitsPerSecond> ref_alloc;
  const BitsPerSecond total = solver.solve_dist(capacity, groups, group_rates);
  const BitsPerSecond ref_total =
      net::fair_share_reference_into(capacity, expanded, ref_alloc, scratch);
  if (total != ref_total) {
    std::cerr << "FATAL: waterfill total diverged from reference ("
              << total << " vs " << ref_total << ")\n";
    std::exit(1);
  }
  std::size_t at = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::uint64_t k = 0; k < groups[g].count; ++k, ++at) {
      if (group_rates[g] != ref_alloc[at]) {
        std::cerr << "FATAL: waterfill rate diverged from reference at flow "
                  << at << " (" << group_rates[g] << " vs " << ref_alloc[at]
                  << ")\n";
        std::exit(1);
      }
    }
  }
  // Convergence: oversubscribed, so the fill must place (essentially) the
  // whole capacity.
  if (!(total > 0.999999 * capacity && total < 1.000001 * capacity)) {
    std::cerr << "FATAL: waterfill did not converge (placed " << total
              << " of " << capacity << ")\n";
    std::exit(1);
  }

  const bool quick = flows < 1000000;
  const int dist_calls = quick ? 8 : 24;
  const int ref_calls = quick ? 2 : 3;

  double acc = 0.0;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < dist_calls; ++i) {
    // Nudge the capacity per call so the loop cannot be folded away.
    acc += solver.solve_dist(capacity + static_cast<double>(i % 97), groups,
                             group_rates);
  }
  const double dist_ms = ms_since(t0);

  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < ref_calls; ++i) {
    acc += net::fair_share_reference_into(capacity + static_cast<double>(i % 97),
                                          expanded, ref_alloc, scratch);
  }
  const double ref_ms = ms_since(t0);
  g_sink = acc;

  // Both sides are rated in flow-allocations per second, so the speedup is
  // the per-flow cost ratio even though the call counts differ.
  exp::MicroSample m;
  m.name = "fair_share_waterfill_dist";
  m.ops = static_cast<std::uint64_t>(dist_calls) * members;
  m.wall_ms = dist_ms;
  m.ops_per_sec = dist_ms > 0.0 ? static_cast<double>(m.ops) * 1000.0 / dist_ms : 0.0;
  const double ref_ops = static_cast<double>(ref_calls) * static_cast<double>(members);
  m.baseline_ops_per_sec = ref_ms > 0.0 ? ref_ops * 1000.0 / ref_ms : 0.0;
  m.speedup =
      m.baseline_ops_per_sec > 0.0 ? m.ops_per_sec / m.baseline_ops_per_sec : 0.0;
  return m;
}

exp::MicroSample bench_session_ticks(unsigned scale, obs::ObsSinks* sinks) {
  auto t = testbeds::didclab();
  t.recipe.total_bytes = std::max<Bytes>(t.recipe.total_bytes / scale, 64ULL << 20);
  const auto ds = t.make_dataset();
  proto::SessionConfig config;
  config.obs = sinks;  // null on unobserved runs: the timed loop is untouched
  proto::TransferSession session(t.env, ds, baselines::plan_promc(t.env, ds, 4),
                                 config);
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = session.run();
  const double ms = ms_since(t0);
  g_sink = res.duration;

  exp::MicroSample m;
  m.name = "session_ticks";
  m.ops = res.sim_counters.ticks;
  m.wall_ms = ms;
  m.ops_per_sec = ms > 0.0 ? static_cast<double>(m.ops) * 1000.0 / ms : 0.0;
  return m;
}

void print_sample(const exp::MicroSample& m) {
  std::cout << "  " << m.name << ": " << m.ops << " ops in " << m.wall_ms << " ms  ("
            << static_cast<std::uint64_t>(m.ops_per_sec) << " ops/s";
  if (m.baseline_ops_per_sec > 0.0) {
    std::cout << ", reference baseline " << static_cast<std::uint64_t>(m.baseline_ops_per_sec)
              << " ops/s, speedup " << m.speedup << "x";
  }
  std::cout << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  // --quick raises scale to >= 32, which also shrinks the op counts below.
  const int div = opt.scale > 1 ? 8 : 1;

  std::cout << "== core microbenchmarks ==\n";
  // --trace-out/--metrics-out/--decisions observe the one real-engine series
  // (session_ticks); the raw queue/fair-share loops have nothing to trace.
  const auto collector = bench::make_collector(opt);
  exp::BenchRecord record;
  record.name = "core";  // BENCH_core.json, whatever the binary is called
  const auto t0 = std::chrono::steady_clock::now();

  record.micro.push_back(bench_event_queue(20000 / div));
  print_sample(record.micro.back());
  record.micro.push_back(bench_ticker_churn(64, static_cast<std::uint64_t>(40000 / div)));
  print_sample(record.micro.back());
  record.micro.push_back(bench_fair_share(200000 / div));
  print_sample(record.micro.back());
  record.micro.push_back(
      bench_waterfill(static_cast<std::uint64_t>(1000000 / div)));
  print_sample(record.micro.back());
  record.micro.push_back(bench_session_ticks(
      opt.scale, collector ? collector->slot(0, "session_ticks") : nullptr));
  print_sample(record.micro.back());

  record.total_wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  if (collector) {
    bench::write_obs_outputs(opt, *collector);
    record.metrics = collector->metrics().snapshot();
  }
  bench::write_bench_record(opt, std::move(record));
  return 0;
}
