// Reproduces Figure 7: SLA transfers between WS9 and WS6 (DIDCLAB LAN).
// The ProMC reference runs at cc=1 — the LAN optimum.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = eadt::bench::parse_options(argc, argv);
  std::cout << "Figure 7 — SLA transfers @DIDCLAB\n\n";
  eadt::bench::run_sla_figure(eadt::testbeds::didclab(), 1, opt);
  return 0;
}
