// Reproduces Figure 10: decomposition of the total (load-dependent) transfer
// energy into end-system and network-infrastructure components for the HTEE
// algorithm on all three testbeds, and prints the Figure 9 device chains.
#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "power/device.hpp"

int main(int argc, char** argv) {
  using namespace eadt;
  const auto opt = bench::parse_options(argc, argv);

  std::cout << "Figure 10 — end-system vs network energy (HTEE transfers)\n\n";

  std::cout << "Figure 9 — device chains\n";
  for (const auto& t : testbeds::all_testbeds()) {
    std::cout << "  " << t.env.name << ": ";
    bool first = true;
    for (const auto& d : t.env.route.devices()) {
      if (!first) std::cout << " -> ";
      std::cout << net::to_string(d.kind);
      first = false;
    }
    std::cout << '\n';
  }
  std::cout << '\n';

  // One HTEE run per testbed, fanned out by the sweep runner.
  std::vector<exp::SweepTask> tasks;
  for (auto t : testbeds::all_testbeds()) {
    t.recipe.total_bytes /= opt.scale;
    exp::SweepTask task;
    task.dataset = t.make_dataset();
    task.algorithm = exp::Algorithm::kHtee;
    task.concurrency = t.default_max_channels;
    task.testbed = std::move(t);
    tasks.push_back(std::move(task));
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  const auto results = exp::SweepRunner(opt.jobs).run(tasks);
  const double sweep_ms = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - sweep_start).count();

  Table table({"testbed", "end-system kJ", "network kJ", "end-system %", "network %"});
  Table detail({"testbed", "device kind", "count", "J"});
  for (const auto& r : results) {
    const auto& t = tasks[r.index].testbed;
    const auto& out = r.run;
    const Joules end = out.result.end_system_energy;
    const Joules netj = out.result.network_energy;
    const double total = end + netj;
    table.add_row({t.env.name, Table::num(end / 1000.0, 2), Table::num(netj / 1000.0, 3),
                   Table::num(100.0 * end / total, 1), Table::num(100.0 * netj / total, 1)});
    for (const auto& dk : power::route_transfer_energy_by_kind(
             t.env.route, out.result.bytes, t.env.path.mtu)) {
      detail.add_row({t.env.name, net::to_string(dk.kind),
                      std::to_string(t.env.route.count(dk.kind)),
                      Table::num(dk.joules, 1)});
    }
  }
  bench::emit(table, opt);

  std::cout << "network energy by device kind (Eq. 5 + Table 1)\n";
  bench::emit(detail, opt);

  std::cout << "checks:\n"
               "  end-systems dominate the load-dependent energy on every testbed\n"
               "  the metro-router path gives FutureGrid the highest network\n"
               "  energy per byte of the three environments\n";

  exp::BenchRecord record;
  record.total_wall_ms = sweep_ms;
  record.tasks = results;
  bench::write_bench_record(opt, std::move(record));
  return 0;
}
