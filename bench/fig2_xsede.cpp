// Reproduces Figure 2: data transfers between Stampede (TACC) and
// Gordon (SDSC) on XSEDE — throughput, energy and efficiency vs concurrency.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  const auto opt = eadt::bench::parse_options(argc, argv);
  std::cout << "Figure 2 — XSEDE Stampede <-> Gordon\n\n";
  eadt::bench::run_concurrency_figure(eadt::testbeds::xsede(), opt);
  return 0;
}
