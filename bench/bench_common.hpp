// Shared driver for the figure-reproduction binaries.
//
// Every bench prints (a) the testbed header, (b) the same series the paper's
// figure plots, as a table, and (c) the qualitative checks the paper's text
// makes about that figure. `--scale N` divides the dataset bytes by N for a
// quick run; `--csv` switches the tables to CSV. Sweeps fan out across a
// thread pool (`--jobs`, deterministic: bit-identical to `--jobs 1`), and
// each invocation records its grid, per-task wall times and simulation
// counters to BENCH_<name>.json (disable with `--no-json`).
#pragma once

#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "util/table.hpp"

namespace eadt::obs {
class ObsCollector;
}  // namespace eadt::obs

namespace eadt::bench {

struct Options {
  /// Basename of argv[0]; names the BENCH_<name>.json perf record.
  std::string bench_name = "bench";
  unsigned scale = 1;
  bool csv = false;
  /// When non-empty, concurrency figures also write <stem>.csv and a
  /// ready-to-run gnuplot script <stem>.gp.
  std::string plot_stem;
  /// Sweep worker count; 0 = auto (EADT_JOBS, then hardware_concurrency).
  int jobs = 0;
  /// CI smoke preset: raises --scale to at least 32.
  bool quick = false;
  /// Write the BENCH_<name>.json perf record (default on).
  bool json = true;
  std::string json_path;  ///< overrides the default BENCH_<name>.json
  /// Observability exports, each off when empty: Chrome trace-event JSON
  /// (loadable in ui.perfetto.dev), standalone metrics JSON, and the
  /// algorithm decision log. Any non-empty path attaches an ObsCollector to
  /// the sweep; with all three empty the run is observation-free and its
  /// BENCH record is byte-identical to one from a build without obs.
  std::string trace_out;
  std::string metrics_out;
  std::string decisions_out;
  /// Serve GET /metrics (OpenMetrics) on 127.0.0.1:<port> while the bench's
  /// scheduler runs. 0 = ephemeral port, negative (default) = no listener.
  /// Implies a collector even when no --*-out flag asked for one.
  int metrics_listen = -1;
  /// Overwrite existing --trace-out/--metrics-out/--decisions files. Without
  /// it parse_options refuses to clobber (the BENCH json, which is a
  /// trajectory file meant to be overwritten, is exempt).
  bool force = false;
  bool help = false;

  [[nodiscard]] bool observing() const noexcept {
    return !trace_out.empty() || !metrics_out.empty() || !decisions_out.empty();
  }
};

/// Strict parser: unknown flags, stray positional arguments and missing
/// values are errors (`*error` explains which), not silently ignored.
[[nodiscard]] std::optional<Options> try_parse_options(int argc, char** argv,
                                                       std::string* error);

/// The clobber guard behind --force: returns the refusal message if any
/// requested --trace-out/--metrics-out/--decisions path already exists (and
/// --force was not given), nullopt when writing is safe. The BENCH json is
/// exempt — it is a perf-trajectory file meant to be rewritten every run.
/// parse_options exits with this message; tests call it directly.
[[nodiscard]] std::optional<std::string> overwrite_refusal(const Options& opt);

void print_usage(std::ostream& os);

/// try_parse_options, exiting with the usage message on error (status 2) or
/// on --help (status 0). The overload every bench main uses.
[[nodiscard]] Options parse_options(int argc, char** argv);

/// Testbed banner: Figure 1's specs for this environment.
void print_header(const testbeds::Testbed& t, const Options& opt);

void emit(const Table& table, const Options& opt);

/// Fill the invocation metadata (name/commit/jobs/scale) and write the
/// record to opt.json_path (default BENCH_<bench_name>.json). No-op when
/// --no-json was given.
void write_bench_record(const Options& opt, exp::BenchRecord record);

/// A collector iff some --trace-out/--metrics-out/--decisions flag asks for
/// one, or --metrics-listen wants a registry to scrape; null keeps the run on
/// the zero-cost unobserved path. Every bench that parses those flags must
/// either attach the collector to its runs and call write_obs_outputs, or
/// reject the flags — accepting them and silently writing nothing is a bug
/// (regression-tested in tests/test_bench_obs.cpp).
[[nodiscard]] std::unique_ptr<obs::ObsCollector> make_collector(const Options& opt);

/// Write whichever of the three observability exports were requested.
void write_obs_outputs(const Options& opt, const obs::ObsCollector& collector);

/// Percentile table (p50/p90/p99) of the session histograms — tick power,
/// per-class chunk energy, and anything else observed as a histogram — in the
/// human-readable output, not just the JSON exports. Prints nothing when no
/// histograms were recorded. Callers gate this on opt.observing(), which is
/// what keeps the default (unobserved) figure output byte-identical.
void print_histogram_percentiles(const Options& opt, const obs::ObsCollector& collector);

/// Figures 2/3/4: throughput, energy and efficiency vs concurrency for the
/// six algorithms, plus the brute-force reference sweep.
void run_concurrency_figure(const testbeds::Testbed& base, const Options& opt);

/// Figures 5/6/7: SLAEE at {95,90,80,70,50}% of the ProMC maximum.
void run_sla_figure(const testbeds::Testbed& base, int promc_level, const Options& opt);

}  // namespace eadt::bench
