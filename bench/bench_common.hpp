// Shared driver for the figure-reproduction binaries.
//
// Every bench prints (a) the testbed header, (b) the same series the paper's
// figure plots, as a table, and (c) the qualitative checks the paper's text
// makes about that figure. `--scale N` divides the dataset bytes by N for a
// quick run; `--csv` switches the tables to CSV.
#pragma once

#include <iostream>
#include <string>

#include "exp/runner.hpp"
#include "util/table.hpp"

namespace eadt::bench {

struct Options {
  unsigned scale = 1;
  bool csv = false;
  /// When non-empty, concurrency figures also write <stem>.csv and a
  /// ready-to-run gnuplot script <stem>.gp.
  std::string plot_stem;
};

[[nodiscard]] Options parse_options(int argc, char** argv);

/// Testbed banner: Figure 1's specs for this environment.
void print_header(const testbeds::Testbed& t, const Options& opt);

void emit(const Table& table, const Options& opt);

/// Figures 2/3/4: throughput, energy and efficiency vs concurrency for the
/// six algorithms, plus the brute-force reference sweep.
void run_concurrency_figure(const testbeds::Testbed& base, const Options& opt);

/// Figures 5/6/7: SLAEE at {95,90,80,70,50}% of the ProMC maximum.
void run_sla_figure(const testbeds::Testbed& base, int promc_level, const Options& opt);

}  // namespace eadt::bench
