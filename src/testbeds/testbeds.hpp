// The three experimental environments of the paper (Figure 1 / Figure 9),
// recast as simulator configurations:
//
//   XSEDE      Stampede (TACC) <-> Gordon (SDSC): 10 Gbps, 40 ms RTT, 32 MB
//              max TCP buffer, four 4-core DTN servers per site with striped
//              parallel storage.
//   FutureGrid Alamo (TACC) <-> Hotel (UChicago): 1 Gbps, 28 ms RTT, 32 MB
//              buffer, older 8-core nodes.
//   DIDCLAB    WS9 <-> WS6 LAN: 1 Gbps, ~0.2 ms RTT, single-disk
//              workstations (concurrent access thrashes the spindle).
//
// Host capability and power numbers are calibrated, not measured: they are
// chosen so the simulator reproduces the paper's qualitative behaviour
// (who wins, where the energy parabola bottoms out, where crossovers fall).
// See DESIGN.md section 2 for the substitution rationale.
#pragma once

#include "proto/dataset.hpp"
#include "proto/environment.hpp"

namespace eadt::testbeds {

struct Testbed {
  proto::Environment env;
  proto::DatasetRecipe recipe;
  /// When non-empty, make_dataset() loads this listing file (one
  /// "<size> [name]" per line) instead of generating from the recipe.
  std::string dataset_listing_path;
  int default_max_channels = 12;
  std::uint64_t dataset_seed = 42;

  /// Builds the experiment dataset: from the listing file if configured
  /// (throws std::runtime_error on a malformed listing — configuration is
  /// programmer/operator input), otherwise synthesised from the recipe.
  [[nodiscard]] proto::Dataset make_dataset() const;
};

[[nodiscard]] Testbed xsede();
[[nodiscard]] Testbed futuregrid();
[[nodiscard]] Testbed didclab();

/// All three, for parameterized sweeps.
[[nodiscard]] std::vector<Testbed> all_testbeds();

}  // namespace eadt::testbeds
