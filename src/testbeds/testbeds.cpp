#include "testbeds/testbeds.hpp"

#include <fstream>
#include <stdexcept>

#include "net/topology.hpp"

namespace eadt::testbeds {
namespace {

host::ServerSpec xsede_dtn(const std::string& name) {
  host::ServerSpec s;
  s.name = name;
  s.cores = 4;
  s.cpu_tdp = 115.0;
  s.nic_speed = gbps(10.0);
  s.mem_total = 64ULL * kGB;
  s.disk = {host::DiskKind::kParallelArray, gbps(16.0), 6.0, 0.0};
  s.per_core_goodput = gbps(3.0);
  s.per_stream_disk = gbps(1.1);
  s.proc_base_util = 0.025;
  s.util_per_gbps = 0.02;
  s.util_contention = 0.12;
  s.cs_alpha = 0.03;
  s.cs_util_per_thread = 0.02;
  return s;
}

host::ServerSpec futuregrid_node(const std::string& name) {
  host::ServerSpec s;
  s.name = name;
  s.cores = 4;
  s.cpu_tdp = 95.0;
  s.nic_speed = gbps(1.0);
  s.mem_total = 24ULL * kGB;
  s.disk = {host::DiskKind::kParallelArray, gbps(4.0), 5.0, 0.0};
  s.per_core_goodput = gbps(0.70);
  s.per_stream_disk = mbps(700.0);
  s.proc_base_util = 0.012;
  s.util_per_gbps = 0.22;  // 1 Gbps on older silicon costs relatively more
  s.util_contention = 0.04;
  s.cs_alpha = 0.05;
  s.cs_util_per_thread = 0.006;
  return s;
}

host::ServerSpec didclab_ws(const std::string& name) {
  host::ServerSpec s;
  s.name = name;
  s.cores = 4;
  s.cpu_tdp = 84.0;
  s.nic_speed = gbps(1.0);
  s.mem_total = 16ULL * kGB;
  s.disk = {host::DiskKind::kSingleDisk, mbps(780.0), 0.0, 0.20};
  s.per_core_goodput = gbps(1.5);
  s.per_stream_disk = mbps(800.0);
  s.proc_base_util = 0.02;
  s.util_per_gbps = 0.25;
  s.util_contention = 0.10;
  s.cs_alpha = 0.05;
  s.cs_util_per_thread = 0.015;
  return s;
}

}  // namespace

proto::Dataset Testbed::make_dataset() const {
  if (!dataset_listing_path.empty()) {
    std::ifstream in(dataset_listing_path);
    if (!in) {
      throw std::runtime_error("cannot open dataset listing " + dataset_listing_path);
    }
    std::string error;
    auto ds = proto::dataset_from_listing(in, &error);
    if (!ds) {
      throw std::runtime_error("bad dataset listing " + dataset_listing_path + ": " +
                               error);
    }
    return *ds;
  }
  return proto::generate_dataset(recipe, Rng(dataset_seed));
}

Testbed xsede() {
  Testbed t;
  t.env.name = "XSEDE Stampede(TACC) - Gordon(SDSC)";
  t.env.source.site = "stampede";
  t.env.destination.site = "gordon";
  for (int i = 0; i < 4; ++i) {
    t.env.source.servers.push_back(xsede_dtn("stampede-dtn" + std::to_string(i)));
    t.env.destination.servers.push_back(xsede_dtn("gordon-dtn" + std::to_string(i)));
  }
  t.env.source.power = {400.0, 8.0, 6.0, 6.0, 10.0};
  t.env.destination.power = t.env.source.power;
  t.env.path = {gbps(10.0), 0.040, 32 * kMB, 1500};
  t.env.congestion = {};
  t.env.route = net::xsede_route();
  t.env.warm_fraction = 0.7;
  t.env.per_file_cost = 0.08;  // Lustre metadata + stripe setup per file
  // 160 GB, 3 MB - 20 GB (Section 3's 10 Gbps dataset): a quarter of the
  // bytes in sub-BDP files, the rest split between medium and bulk files.
  t.recipe.name = "xsede-160GB";
  t.recipe.total_bytes = 160ULL * kGB;
  t.recipe.bands = {
      {3 * kMB, 50 * kMB, 0.25},
      {50 * kMB, 1 * kGB, 0.35},
      {1 * kGB, 20 * kGB, 0.40},
  };
  return t;
}

Testbed futuregrid() {
  Testbed t;
  t.env.name = "FutureGrid Alamo(TACC) - Hotel(UChicago)";
  t.env.source.site = "alamo";
  t.env.destination.site = "hotel";
  for (int i = 0; i < 2; ++i) {
    t.env.source.servers.push_back(futuregrid_node("alamo-node" + std::to_string(i)));
    t.env.destination.servers.push_back(futuregrid_node("hotel-node" + std::to_string(i)));
  }
  t.env.source.power = {320.0, 8.0, 6.0, 5.0, 5.0};
  t.env.destination.power = t.env.source.power;
  t.env.path = {gbps(1.0), 0.028, 32 * kMB, 1500};
  t.env.congestion = {};
  t.env.route = net::futuregrid_route();
  t.env.warm_fraction = 0.85;  // short RTT gaps barely decay the window
  t.env.per_file_cost = 0.008;
  // 40 GB, 3 MB - 5 GB (Section 3's 1 Gbps dataset).
  t.recipe.name = "futuregrid-40GB";
  t.recipe.total_bytes = 40ULL * kGB;
  t.recipe.bands = {
      {3 * kMB, 30 * kMB, 0.25},
      {30 * kMB, 300 * kMB, 0.35},
      {300 * kMB, 5 * kGB, 0.40},
  };
  return t;
}

Testbed didclab() {
  Testbed t;
  t.env.name = "DIDCLAB WS9 - WS6 (LAN)";
  t.env.source.site = "ws9";
  t.env.destination.site = "ws6";
  t.env.source.servers.push_back(didclab_ws("ws9"));
  t.env.destination.servers.push_back(didclab_ws("ws6"));
  t.env.source.power = {240.0, 8.0, 8.0, 4.0, 5.0};
  t.env.destination.power = t.env.source.power;
  t.env.path = {gbps(1.0), 0.0002, 32 * kMB, 1500};
  t.env.congestion = {};
  t.env.route = net::didclab_route();
  t.env.per_file_cost = 0.015;
  t.recipe.name = "didclab-40GB";
  t.recipe.total_bytes = 40ULL * kGB;
  t.recipe.bands = {
      {3 * kMB, 30 * kMB, 0.25},
      {30 * kMB, 300 * kMB, 0.35},
      {300 * kMB, 5 * kGB, 0.40},
  };
  return t;
}

std::vector<Testbed> all_testbeds() { return {xsede(), futuregrid(), didclab()}; }

}  // namespace eadt::testbeds
