// Build a Testbed from an INI configuration, so users can define their own
// environments without recompiling. Every key falls back to a sensible
// default (the XSEDE-like template), so a minimal file is enough:
//
//   [testbed]
//   name = my-wan
//   [path]
//   bandwidth_gbps = 10
//   rtt_ms = 40
//   buffer = 32MB
//   [source]                 ; and [destination]; [endpoint] sets both
//   servers = 4
//   cores = 4
//   disk = parallel          ; or: single
//   disk_gbps = 16
//   [dataset]
//   total = 160GB
//   bands = 3MB:50MB:0.25, 50MB:1GB:0.35, 1GB:20GB:0.40
//   [route]
//   devices = edge-switch, edge-router, edge-router, edge-switch
//
// See `testbed_config_reference()` for the full key list.
#pragma once

#include <optional>
#include <string>

#include "testbeds/testbeds.hpp"
#include "util/config.hpp"

namespace eadt::testbeds {

/// Build from a parsed Config. On failure returns nullopt and fills *error.
[[nodiscard]] std::optional<Testbed> testbed_from_config(const Config& config,
                                                         std::string* error = nullptr);

/// Convenience: load + parse + build.
[[nodiscard]] std::optional<Testbed> testbed_from_file(const std::string& path,
                                                       std::string* error = nullptr);

/// A complete, commented reference configuration (round-trips through
/// testbed_from_config to the XSEDE defaults).
[[nodiscard]] std::string testbed_config_reference();

}  // namespace eadt::testbeds
