#include "testbeds/config_testbed.hpp"

#include <sstream>

namespace eadt::testbeds {
namespace {

std::optional<net::DeviceKind> device_kind_from_name(std::string_view name) {
  if (name == "enterprise-switch") return net::DeviceKind::kEnterpriseSwitch;
  if (name == "edge-switch") return net::DeviceKind::kEdgeSwitch;
  if (name == "metro-router") return net::DeviceKind::kMetroRouter;
  if (name == "edge-router") return net::DeviceKind::kEdgeRouter;
  return std::nullopt;
}

/// Read one endpoint. `section` is "source" or "destination"; the shared
/// "[endpoint]" section provides cross-side defaults, and the built-in XSEDE
/// DTN is the template underneath.
bool fill_endpoint(const Config& cfg, const std::string& section,
                   proto::Endpoint& endpoint, std::string* error) {
  auto key = [&](std::string_view k) -> std::string_view {
    // Per-side section wins over the shared [endpoint] section.
    return cfg.has(section, k) ? std::string_view(section) : std::string_view("endpoint");
  };
  const Testbed reference = xsede();
  host::ServerSpec tmpl = reference.env.source.servers.front();
  tmpl.name = cfg.get_string(key("site"), "site", section);
  tmpl.cores = cfg.get_int(key("cores"), "cores", tmpl.cores);
  tmpl.cpu_tdp = cfg.get_double(key("tdp_watts"), "tdp_watts", tmpl.cpu_tdp);
  tmpl.nic_speed = gbps(cfg.get_double(key("nic_gbps"), "nic_gbps",
                                       to_gbps(tmpl.nic_speed)));
  tmpl.mem_total = cfg.get_size(key("mem"), "mem", tmpl.mem_total);

  const std::string disk_kind =
      cfg.get_string(key("disk"), "disk", "parallel");
  if (disk_kind == "parallel") {
    tmpl.disk.kind = host::DiskKind::kParallelArray;
  } else if (disk_kind == "single") {
    tmpl.disk.kind = host::DiskKind::kSingleDisk;
  } else {
    if (error != nullptr) *error = section + ": unknown disk kind '" + disk_kind + "'";
    return false;
  }
  tmpl.disk.max_bandwidth = gbps(cfg.get_double(key("disk_gbps"), "disk_gbps",
                                                to_gbps(tmpl.disk.max_bandwidth)));
  tmpl.disk.ramp = cfg.get_double(key("disk_ramp"), "disk_ramp", tmpl.disk.ramp);
  tmpl.disk.thrash_alpha =
      cfg.get_double(key("disk_thrash"), "disk_thrash", tmpl.disk.thrash_alpha);

  tmpl.per_core_goodput = gbps(cfg.get_double(key("per_core_gbps"), "per_core_gbps",
                                              to_gbps(tmpl.per_core_goodput)));
  tmpl.per_stream_disk = gbps(cfg.get_double(key("per_stream_gbps"), "per_stream_gbps",
                                             to_gbps(tmpl.per_stream_disk)));
  tmpl.proc_base_util =
      cfg.get_double(key("proc_base_util"), "proc_base_util", tmpl.proc_base_util);
  tmpl.util_per_gbps =
      cfg.get_double(key("util_per_gbps"), "util_per_gbps", tmpl.util_per_gbps);
  tmpl.util_contention =
      cfg.get_double(key("util_contention"), "util_contention", tmpl.util_contention);
  tmpl.cs_alpha = cfg.get_double(key("cs_alpha"), "cs_alpha", tmpl.cs_alpha);
  tmpl.cs_util_per_thread = cfg.get_double(key("cs_util_per_thread"),
                                           "cs_util_per_thread", tmpl.cs_util_per_thread);

  const int servers =
      cfg.get_int(key("servers"), "servers",
                  static_cast<int>(reference.env.source.servers.size()));
  if (servers < 1 || servers > 64) {
    if (error != nullptr) *error = section + ": servers must be in [1, 64]";
    return false;
  }
  endpoint.site = tmpl.name;
  endpoint.servers.clear();
  for (int i = 0; i < servers; ++i) {
    host::ServerSpec s = tmpl;
    s.name = tmpl.name + "-dtn" + std::to_string(i);
    endpoint.servers.push_back(std::move(s));
  }

  const std::string psec = "power." + section;
  auto pkey = [&](std::string_view k) -> std::string_view {
    return cfg.has(psec, k) ? std::string_view(psec) : std::string_view("power");
  };
  power::PowerCoefficients pc = xsede().env.source.power;
  pc.cpu_scale = cfg.get_double(pkey("cpu_scale"), "cpu_scale", pc.cpu_scale);
  pc.mem = cfg.get_double(pkey("mem_watts"), "mem_watts", pc.mem);
  pc.disk = cfg.get_double(pkey("disk_watts"), "disk_watts", pc.disk);
  pc.nic = cfg.get_double(pkey("nic_watts"), "nic_watts", pc.nic);
  pc.active_base = cfg.get_double(pkey("active_base_watts"), "active_base_watts",
                                  pc.active_base);
  endpoint.power = pc;
  return true;
}

}  // namespace

std::optional<Testbed> testbed_from_config(const Config& cfg, std::string* error) {
  Testbed t = xsede();  // template defaults

  t.env.name = cfg.get_string("testbed", "name", "custom-testbed");
  t.default_max_channels =
      cfg.get_int("testbed", "max_channels", t.default_max_channels);
  t.dataset_seed = static_cast<std::uint64_t>(
      cfg.get_int("testbed", "seed", static_cast<int>(t.dataset_seed)));

  t.env.path.bandwidth =
      gbps(cfg.get_double("path", "bandwidth_gbps", to_gbps(t.env.path.bandwidth)));
  t.env.path.rtt = cfg.get_double("path", "rtt_ms", t.env.path.rtt * 1000.0) / 1000.0;
  t.env.path.tcp_buffer = cfg.get_size("path", "buffer", t.env.path.tcp_buffer);
  t.env.path.mtu = cfg.get_size("path", "mtu", t.env.path.mtu);
  if (t.env.path.bandwidth <= 0.0 || t.env.path.rtt < 0.0) {
    if (error != nullptr) *error = "path: bandwidth must be > 0 and rtt >= 0";
    return std::nullopt;
  }

  t.env.congestion.loss_beta =
      cfg.get_double("congestion", "loss_beta", t.env.congestion.loss_beta);
  t.env.congestion.stream_knee =
      cfg.get_int("congestion", "stream_knee", t.env.congestion.stream_knee);
  t.env.congestion.stream_beta =
      cfg.get_double("congestion", "stream_beta", t.env.congestion.stream_beta);

  t.env.warm_fraction =
      cfg.get_double("tuning", "warm_fraction", t.env.warm_fraction);
  t.env.per_file_cost =
      cfg.get_double("tuning", "per_file_cost_s", t.env.per_file_cost);

  if (!fill_endpoint(cfg, "source", t.env.source, error)) return std::nullopt;
  if (!fill_endpoint(cfg, "destination", t.env.destination, error)) return std::nullopt;

  if (cfg.has("route", "devices")) {
    std::vector<net::NetworkDevice> devices;
    int index = 0;
    for (const auto& name : cfg.get_list("route", "devices")) {
      const auto kind = device_kind_from_name(name);
      if (!kind) {
        if (error != nullptr) *error = "route: unknown device kind '" + name + "'";
        return std::nullopt;
      }
      devices.push_back({*kind, name + "-" + std::to_string(index++)});
    }
    t.env.route = net::Route(std::move(devices));
  }

  if (cfg.has_section("dataset")) {
    t.dataset_listing_path = cfg.get_string("dataset", "listing", "");
    proto::DatasetRecipe recipe;
    recipe.name = cfg.get_string("dataset", "name", t.env.name + "-dataset");
    recipe.total_bytes = cfg.get_size("dataset", "total", t.recipe.total_bytes);
    if (cfg.has("dataset", "bands")) {
      double share_sum = 0.0;
      for (const auto& band_text : cfg.get_list("dataset", "bands")) {
        // "minsize:maxsize:byteshare"
        const std::size_t c1 = band_text.find(':');
        const std::size_t c2 = c1 == std::string::npos ? std::string::npos
                                                       : band_text.find(':', c1 + 1);
        if (c2 == std::string::npos) {
          if (error != nullptr) {
            *error = "dataset: band '" + band_text + "' is not min:max:share";
          }
          return std::nullopt;
        }
        const auto min_size = parse_size(band_text.substr(0, c1));
        const auto max_size = parse_size(band_text.substr(c1 + 1, c2 - c1 - 1));
        const double share = std::strtod(band_text.c_str() + c2 + 1, nullptr);
        if (!min_size || !max_size || *min_size == 0 || *max_size < *min_size ||
            share <= 0.0) {
          if (error != nullptr) {
            *error = "dataset: malformed band '" + band_text + "'";
          }
          return std::nullopt;
        }
        recipe.bands.push_back({*min_size, *max_size, share});
        share_sum += share;
      }
      if (share_sum < 0.99 || share_sum > 1.01) {
        if (error != nullptr) *error = "dataset: band shares must sum to 1";
        return std::nullopt;
      }
    } else {
      recipe.bands = t.recipe.bands;
    }
    t.recipe = std::move(recipe);
  }
  return t;
}

std::optional<Testbed> testbed_from_file(const std::string& path, std::string* error) {
  const auto cfg = Config::load(path, error);
  if (!cfg) return std::nullopt;
  return testbed_from_config(*cfg, error);
}

std::string testbed_config_reference() {
  std::ostringstream os;
  const Testbed t = xsede();
  const auto& s = t.env.source.servers.front();
  const auto& pc = t.env.source.power;
  os << "# eadt testbed configuration reference (defaults = XSEDE template)\n"
     << "[testbed]\n"
     << "name = " << t.env.name << "\n"
     << "max_channels = " << t.default_max_channels << "\n"
     << "seed = " << t.dataset_seed << "\n\n"
     << "[path]\n"
     << "bandwidth_gbps = " << to_gbps(t.env.path.bandwidth) << "\n"
     << "rtt_ms = " << t.env.path.rtt * 1000.0 << "\n"
     << "buffer = " << to_mb(t.env.path.tcp_buffer) << "MB\n"
     << "mtu = " << t.env.path.mtu << "\n\n"
     << "[congestion]\n"
     << "loss_beta = " << t.env.congestion.loss_beta << "\n"
     << "stream_knee = " << t.env.congestion.stream_knee << "\n"
     << "stream_beta = " << t.env.congestion.stream_beta << "\n\n"
     << "[tuning]\n"
     << "warm_fraction = " << t.env.warm_fraction << "\n"
     << "per_file_cost_s = " << t.env.per_file_cost << "\n\n"
     << "[endpoint]  ; shared by both sides; [source]/[destination] override\n"
     << "servers = " << t.env.source.servers.size() << "\n"
     << "cores = " << s.cores << "\n"
     << "tdp_watts = " << s.cpu_tdp << "\n"
     << "nic_gbps = " << to_gbps(s.nic_speed) << "\n"
     << "mem = " << to_gb(s.mem_total) << "GB\n"
     << "disk = parallel  ; or: single\n"
     << "disk_gbps = " << to_gbps(s.disk.max_bandwidth) << "\n"
     << "disk_ramp = " << s.disk.ramp << "\n"
     << "disk_thrash = " << s.disk.thrash_alpha << "\n"
     << "per_core_gbps = " << to_gbps(s.per_core_goodput) << "\n"
     << "per_stream_gbps = " << to_gbps(s.per_stream_disk) << "\n"
     << "proc_base_util = " << s.proc_base_util << "\n"
     << "util_per_gbps = " << s.util_per_gbps << "\n"
     << "util_contention = " << s.util_contention << "\n"
     << "cs_alpha = " << s.cs_alpha << "\n"
     << "cs_util_per_thread = " << s.cs_util_per_thread << "\n\n"
     << "[source]\n"
     << "site = stampede\n\n"
     << "[destination]\n"
     << "site = gordon\n\n"
     << "[power]  ; shared; power.source / power.destination override\n"
     << "cpu_scale = " << pc.cpu_scale << "\n"
     << "mem_watts = " << pc.mem << "\n"
     << "disk_watts = " << pc.disk << "\n"
     << "nic_watts = " << pc.nic << "\n"
     << "active_base_watts = " << pc.active_base << "\n\n"
     << "[dataset]\n"
     << "name = " << t.recipe.name << "\n"
     << "total = " << to_gb(t.recipe.total_bytes) << "GB\n"
     << "bands = 3MB:50MB:0.25, 50MB:1GB:0.35, 1GB:20GB:0.40\n\n"
     << "[route]\n"
     << "devices = edge-switch, enterprise-switch, edge-router, edge-router, "
        "enterprise-switch, edge-switch\n";
  return os.str();
}

}  // namespace eadt::testbeds
