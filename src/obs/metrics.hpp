// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Design constraints (MODEL.md §12):
//   * zero-cost when unattached — nothing in this header is touched unless a
//     sink pointer is installed, and the engine's hot paths only ever hold
//     pre-resolved Counter*/Histogram* handles;
//   * allocation-free on the hot path — handles are resolved once (registry
//     lookup takes a lock and may allocate), after which add()/set_max()/
//     observe() are lock-free atomic operations;
//   * deterministic under SweepRunner --jobs N — every shared mutation
//     commutes: counter adds and histogram bucket increments are integer
//     additions, gauges are monotonic set_max, and histogram sums accumulate
//     in 1/256-unit fixed point so double rounding cannot depend on the
//     interleaving of worker threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace eadt::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value / high-water-mark metric. Concurrent writers should only use
/// set_max() (max commutes, so parallel sweeps stay deterministic); set() is
/// for single-writer contexts.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void set_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper edges; one
/// implicit overflow bucket catches everything above the last edge. The sum
/// is kept in 1/256-unit fixed point (see file comment); values up to ~10^15
/// accumulate without overflow, far beyond any metric in this codebase.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Total of observed values, quantized to 1/256.
  [[nodiscard]] double sum() const noexcept {
    return static_cast<double>(sum_fixed_.load(std::memory_order_relaxed)) / kSumScale;
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return bounds_.size() + 1; }

 private:
  static constexpr double kSumScale = 256.0;
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_fixed_{0};
};

/// Point-in-time copy of one metric, detached from the registry. `count` is
/// the counter value / histogram observation count; `value` is the gauge
/// value / histogram sum.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  std::uint64_t count = 0;
  double value = 0.0;
  std::vector<double> bounds;          ///< histogram only
  std::vector<std::uint64_t> buckets;  ///< histogram only (bounds + overflow)
};

/// Get-or-create registry of named metrics. Lookups lock a mutex and may
/// allocate; the returned references are stable for the registry's lifetime,
/// so callers resolve handles once and mutate lock-free afterwards.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` are used only on first creation; later calls return the
  /// existing histogram regardless.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  [[nodiscard]] bool empty() const;

  /// All metrics, each family sorted by name.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Standalone export: `{"schema": "eadt-metrics-v1", "counters": ..}`.
  void write_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Estimate the q-quantile (q in [0, 1]) of a histogram snapshot by linear
/// interpolation within the bucket that crosses the target rank. The first
/// bucket interpolates from 0 (edges are upper bounds); the overflow bucket
/// has no upper edge, so its estimate clamps to the last finite bound.
/// Returns 0 for empty histograms and non-histogram snapshots. Deterministic:
/// pure arithmetic over the snapshot's integer bucket counts.
[[nodiscard]] double histogram_quantile(const MetricSnapshot& h, double q) noexcept;

/// Write the metrics object body shared by write_json and the BENCH record
/// merge: `{"counters": {..}, "gauges": {..}, "histograms": {..}}`, indented
/// by `indent` spaces per level starting at `base_indent`. With a non-empty
/// `schema` a `"schema"` member is emitted first.
void write_metrics_object(std::ostream& os, const std::vector<MetricSnapshot>& metrics,
                          int base_indent, std::string_view schema = {});

}  // namespace eadt::obs
