#include "obs/telemetry.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/json.hpp"

namespace eadt::obs {
namespace {

/// Shortest round-trip decimal for a double, matching the bench-record
/// writer's convention so one value always serializes the same way.
std::string jnum(double v) {
  if (!std::isfinite(v)) return "0";
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    std::istringstream is(os.str());
    double back = 0.0;
    is >> back;
    if (back == v) return os.str();
  }
  return "0";
}

std::string indent_of(int n) { return std::string(static_cast<std::size_t>(n), ' '); }

void size_sample(TelemetrySample& s, std::size_t sites) {
  s.site_power_w.assign(sites, 0.0);
  s.site_cap_w.assign(sites, 0.0);
  s.site_phi.assign(sites, 0.0);
}

void write_sample(std::ostream& os, const TelemetrySample& s, const std::string& pad) {
  os << pad << "{\"t\": " << jnum(s.t)
     << ", \"running\": " << s.running << ", \"queued\": " << s.queued
     << ", \"deferred\": " << s.deferred << ", \"channels\": " << s.channels
     << ", \"shed\": " << s.shed
     << ", \"preempted\": " << s.preempted << ", \"migrated\": " << s.migrated
     << ", \"completed\": " << s.completed << ", \"failed\": " << s.failed
     << ", \"power_w\": " << jnum(s.power_w) << ", \"cap_w\": " << jnum(s.cap_w)
     << ", \"headroom_w\": " << jnum(std::max(0.0, s.cap_w - s.power_w));
  os << ", \"class_running\": [";
  for (std::size_t i = 0; i < s.class_running.size(); ++i) {
    os << (i ? ", " : "") << s.class_running[i];
  }
  os << "], \"class_burn\": [";
  for (std::size_t i = 0; i < s.class_burn.size(); ++i) {
    os << (i ? ", " : "") << jnum(s.class_burn[i]);
  }
  os << "], \"site_power_w\": [";
  for (std::size_t i = 0; i < s.site_power_w.size(); ++i) {
    os << (i ? ", " : "") << jnum(s.site_power_w[i]);
  }
  os << "], \"site_cap_w\": [";
  for (std::size_t i = 0; i < s.site_cap_w.size(); ++i) {
    os << (i ? ", " : "") << jnum(s.site_cap_w[i]);
  }
  os << "], \"site_phi\": [";
  for (std::size_t i = 0; i < s.site_phi.size(); ++i) {
    os << (i ? ", " : "") << jnum(s.site_phi[i]);
  }
  os << "]}";
}

}  // namespace

TelemetryHub::TelemetryHub(double stride_s, std::size_t capacity, std::size_t site_count)
    : stride_s_(stride_s), next_t_(0.0), site_count_(site_count) {
  if (!enabled()) return;
  ring_.resize(std::max<std::size_t>(capacity, 1));
  for (TelemetrySample& s : ring_) size_sample(s, site_count_);
  size_sample(scratch_, site_count_);
}

void TelemetryHub::record(double now) {
  if (!enabled()) return;
  scratch_.t = now;
  TelemetrySample& slot = ring_[head_];
  // Member-wise assign: the vectors are identically sized, so operator= on
  // them copies in place without reallocating.
  slot.t = scratch_.t;
  slot.running = scratch_.running;
  slot.queued = scratch_.queued;
  slot.deferred = scratch_.deferred;
  slot.channels = scratch_.channels;
  slot.shed = scratch_.shed;
  slot.preempted = scratch_.preempted;
  slot.migrated = scratch_.migrated;
  slot.completed = scratch_.completed;
  slot.failed = scratch_.failed;
  slot.power_w = scratch_.power_w;
  slot.cap_w = scratch_.cap_w;
  slot.class_running = scratch_.class_running;
  slot.class_burn = scratch_.class_burn;
  std::copy(scratch_.site_power_w.begin(), scratch_.site_power_w.end(),
            slot.site_power_w.begin());
  std::copy(scratch_.site_cap_w.begin(), scratch_.site_cap_w.end(),
            slot.site_cap_w.begin());
  std::copy(scratch_.site_phi.begin(), scratch_.site_phi.end(), slot.site_phi.begin());
  head_ = (head_ + 1) % ring_.size();
  ++seen_;
  // Advance the stride clock past `now` so a stalled simulation does not
  // produce duplicate samples at one instant.
  while (next_t_ <= now + 1e-9) next_t_ += stride_s_;
}

std::size_t TelemetryHub::size() const noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(seen_, static_cast<std::uint64_t>(ring_.size())));
}

const TelemetrySample& TelemetryHub::sample(std::size_t i) const {
  assert(i < size());
  const std::size_t n = size();
  // Oldest retained sample sits at head_ once the ring has wrapped.
  const std::size_t start = seen_ > n ? head_ : 0;
  return ring_[(start + i) % ring_.size()];
}

void TelemetryHub::write_json(std::ostream& os, int base_indent) const {
  const std::string outer = indent_of(base_indent);
  const std::string inner = indent_of(base_indent + 2);
  const std::string item = indent_of(base_indent + 4);
  const std::size_t n = size();
  const std::uint64_t dropped = seen_ - static_cast<std::uint64_t>(n);

  os << "{\n";
  os << inner << "\"schema\": \"eadt-telemetry-v1\",\n";
  os << inner << "\"stride_s\": " << jnum(stride_s_) << ",\n";
  os << inner << "\"sites\": " << site_count_ << ",\n";
  os << inner << "\"samples_seen\": " << seen_ << ",\n";
  os << inner << "\"samples_dropped\": " << dropped << ",\n";
  os << inner << "\"samples\": [";
  for (std::size_t i = 0; i < n; ++i) {
    os << (i ? ",\n" : "\n");
    write_sample(os, sample(i), item);
  }
  if (n > 0) os << "\n" << inner;
  os << "]\n" << outer << "}";
}

std::string TelemetryHub::to_json() const {
  std::ostringstream os;
  write_json(os, 0);
  return os.str();
}

TickFlightRecorder::TickFlightRecorder(std::size_t ring_ticks, std::size_t max_dumps)
    : ring_(std::max<std::size_t>(ring_ticks, 1)), max_dumps_(max_dumps) {
  // Reserve every byte a dump can need up front: trigger() must not grow
  // vectors even when fired from deep inside the tick loop.
  dumps_.reserve(max_dumps_);
}

void TickFlightRecorder::note(const FlightTick& tick) noexcept {
  ring_[head_] = tick;
  head_ = (head_ + 1) % ring_.size();
  if (filled_ < ring_.size()) ++filled_;
}

void TickFlightRecorder::trigger(std::string_view reason, double t) {
  if (dumps_.size() >= max_dumps_) {
    ++suppressed_;
    return;
  }
  dumps_.emplace_back();
  Dump& dump = dumps_.back();
  dump.reason.assign(reason);
  dump.t = t;
  dump.ticks.reserve(filled_);
  const std::size_t start = filled_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < filled_; ++i) {
    dump.ticks.push_back(ring_[(start + i) % ring_.size()]);
  }
}

void TickFlightRecorder::write_json(std::ostream& os, int base_indent) const {
  const std::string outer = indent_of(base_indent);
  const std::string inner = indent_of(base_indent + 2);
  const std::string item = indent_of(base_indent + 4);
  const std::string tick_pad = indent_of(base_indent + 6);

  os << "{\n";
  os << inner << "\"schema\": \"eadt-flightrec-v1\",\n";
  os << inner << "\"ring_ticks\": " << ring_.size() << ",\n";
  os << inner << "\"suppressed\": " << suppressed_ << ",\n";
  os << inner << "\"dumps\": [";
  for (std::size_t d = 0; d < dumps_.size(); ++d) {
    const Dump& dump = dumps_[d];
    os << (d ? ",\n" : "\n") << item << "{\"reason\": ";
    write_json_string(os, dump.reason);
    os << ", \"t\": " << jnum(dump.t) << ", \"ticks\": [";
    for (std::size_t i = 0; i < dump.ticks.size(); ++i) {
      const FlightTick& ft = dump.ticks[i];
      os << (i ? ",\n" : "\n") << tick_pad << "{\"t\": " << jnum(ft.t)
         << ", \"running\": " << ft.running << ", \"queued\": " << ft.queued
         << ", \"deferred\": " << ft.deferred << ", \"power_w\": " << jnum(ft.power_w)
         << ", \"cap_w\": " << jnum(ft.cap_w)
         << ", \"watchdog_aborts\": " << ft.watchdog_aborts
         << ", \"cap_violations\": " << ft.cap_violations << "}";
    }
    if (!dump.ticks.empty()) os << "\n" << item;
    os << "]}";
  }
  if (!dumps_.empty()) os << "\n" << inner;
  os << "]\n" << outer << "}";
}

TickProfiler::TickProfiler(MetricsRegistry& registry) {
  const std::vector<double> bounds{1,    2,    5,     10,    20,    50,    100,
                                   200,  500,  1000,  2000,  5000,  10000, 20000,
                                   50000, 100000};
  phase_[kPrepare] = &registry.histogram("tickpipe.prepare_us", bounds);
  phase_[kArbiter] = &registry.histogram("tickpipe.arbiter_us", bounds);
  phase_[kApply] = &registry.histogram("tickpipe.apply_us", bounds);
  phase_[kCommit] = &registry.histogram("tickpipe.commit_us", bounds);
  for (std::size_t w = 0; w < kMaxWorkers; ++w) {
    worker_ops_[w] = &registry.gauge("tickpipe.worker" + std::to_string(w) + ".ops");
  }
}

void TickProfiler::record_worker_ops(std::size_t worker, std::uint64_t ops) noexcept {
  if (worker >= kMaxWorkers) return;
  worker_ops_[worker]->set(static_cast<double>(ops));
}

}  // namespace eadt::obs
