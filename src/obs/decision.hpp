// Algorithm decision log: a structured record of every choice the paper's
// algorithms make at runtime, with the measurements that drove it.
//
// The paper's energy/throughput trade-off is enacted through discrete
// decisions — MinE partitioning a dataset and walking channels across
// chunks, HTEE probing concurrency levels and settling on the best
// throughput-per-joule, SLAEE jumping or re-arranging channels to track an
// SLA, the Supervisor descending its degradation ladder. TickRecorder CSVs
// show the *consequences*; this log captures the decisions themselves, so
// `examples/explain_transfer` can render a "why did the algorithm do that"
// narrative and tests can assert on the reasoning, not just the outcome.
//
// One DecisionLog belongs to one session/task and is written single-threaded
// (ObsCollector hands each sweep task its own); merged exports iterate slots
// in index order, keeping parallel sweeps deterministic.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace eadt::obs {

enum class DecisionKind {
  kPlanPartition,       ///< MinE/tuner split the dataset into chunks
  kPlanChannelWalk,     ///< MinE moved a channel between chunks in planning
  kHteeProbe,           ///< HTEE measured one concurrency level
  kHteeChoose,          ///< HTEE ended its search and fixed the level
  kSlaeeJump,           ///< SLAEE jump-estimated a new concurrency level
  kSlaeeStep,           ///< SLAEE single-step increment toward the SLA
  kSlaeeRearrange,      ///< SLAEE re-arranged channels at the concurrency cap
  kSupervisorRetry,     ///< supervisor resumed an interrupted leg
  kSupervisorAbort,     ///< watchdog cut an attempt short; checkpoint taken
  kSupervisorDegrade,   ///< supervisor stepped down the degradation ladder
  kSupervisorGiveUp,    ///< supervisor exhausted the ladder
  kSupervisorDone,      ///< supervisor accepted a completed run
  kSchedulerAdmit,      ///< scheduler accepted a tenant job into the queue
  kSchedulerShed,       ///< admission control rejected a job (bounded queue)
  kSchedulerDefer,      ///< tariff-aware deferral pushed a start off-peak
  kSchedulerDispatch,   ///< scheduler started (or resumed) a tenant session
  kSchedulerPreempt,    ///< scheduler checkpointed a job to free capacity
  kSchedulerDone,       ///< scheduler retired a tenant job (either way)
  kPlanTune,            ///< planning-time tuner fixed a chunk's pipelining/parallelism
  kPathSuspect,         ///< health monitor's phi crossed the suspicion threshold
  kPathFailover,        ///< job migrated to the healthiest alternate path
  kHedgeLaunch,         ///< deadline projection missed; tail hedged on a second path
  kHedgeWin,            ///< one hedged leg finished; the loser was cancelled
};

[[nodiscard]] std::string_view to_string(DecisionKind kind) noexcept;

/// One decision. Numeric fields are 0 when not applicable to the kind.
struct Decision {
  Seconds at = 0.0;            ///< absolute transfer time of the decision
  DecisionKind kind = DecisionKind::kHteeProbe;
  const char* actor = "";      ///< "MinE", "HTEE", "SLAEE", "Supervisor" (static)
  std::string subject;         ///< short slug, e.g. "probe cc=3"
  std::string detail;          ///< human-readable reasoning fragment
  double measured_mbps = 0.0;  ///< throughput input to the decision
  double target_mbps = 0.0;    ///< SLA / plan target, when one exists
  double ratio = 0.0;          ///< throughput-per-joule input (HTEE)
  int level = 0;               ///< concurrency level under consideration
  int chosen = 0;              ///< concurrency level that resulted
};

class DecisionLog {
 public:
  void record(Decision d) { decisions_.push_back(std::move(d)); }

  [[nodiscard]] const std::vector<Decision>& decisions() const noexcept { return decisions_; }
  [[nodiscard]] bool empty() const noexcept { return decisions_.empty(); }

  /// `{"schema": "eadt-decisions-v1", "decisions": [...]}`.
  void write_json(std::ostream& os) const;

  /// Human-readable narrative, one decision per line, for explain_transfer.
  void write_narrative(std::ostream& os) const;

 private:
  std::vector<Decision> decisions_;
};

/// Append one decision as a JSON object (no trailing newline). `slot`/`task`
/// are emitted only when `task` is non-null — the merged multi-task form.
void write_decision_json(std::ostream& os, const Decision& d, std::size_t slot,
                         const std::string* task);

/// One narrative line (trailing newline included).
void write_decision_line(std::ostream& os, const Decision& d);

}  // namespace eadt::obs
