#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/json.hpp"

namespace eadt::obs {
namespace {

/// Shortest round-trip decimal (same convention as the bench-record writer).
std::string jnum(double v) {
  if (!std::isfinite(v)) return "0";
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    std::istringstream is(os.str());
    double back = 0.0;
    is >> back;
    if (back == v) return os.str();
  }
  return "0";
}

void write_event_prefix(std::ostream& os, bool& first, char phase, int pid, int tid,
                        Seconds t) {
  os << (first ? "\n" : ",\n") << "    {\"ph\": \"" << phase << "\", \"pid\": " << pid
     << ", \"tid\": " << tid << ", \"ts\": " << jnum(t * 1e6);
  first = false;
}

void write_args(std::ostream& os, const std::array<TraceArg, 3>& args) {
  bool any = false;
  for (const auto& a : args) {
    if (a.key == nullptr) continue;
    os << (any ? ", " : ", \"args\": {");
    write_json_string(os, a.key);
    os << ": " << jnum(a.value);
    any = true;
  }
  if (any) os << "}";
}

void write_metadata(std::ostream& os, bool& first, const char* which, int pid, int tid,
                    std::string_view name) {
  os << (first ? "\n" : ",\n") << "    {\"ph\": \"M\", \"pid\": " << pid
     << ", \"tid\": " << tid << ", \"name\": \"" << which << "\", \"args\": {\"name\": ";
  write_json_string(os, name);
  os << "}}";
  first = false;
}

void write_one_event(std::ostream& os, bool& first, int pid, const TraceEvent& e) {
  write_event_prefix(os, first, static_cast<char>(e.phase), pid, e.tid, e.t);
  if (e.name != nullptr) {
    os << ", \"name\": ";
    write_json_string(os, e.name);
  }
  if (e.cat != nullptr) {
    os << ", \"cat\": ";
    write_json_string(os, e.cat);
  }
  if (e.phase == TraceEvent::Phase::kInstant) os << ", \"s\": \"t\"";
  write_args(os, e.args);
  os << "}";
}

void write_truncation_marker(std::ostream& os, bool& first, int pid, Seconds last_t,
                             std::size_t dropped) {
  write_event_prefix(os, first, 'i', pid, 0, last_t);
  os << ", \"name\": \"trace-truncated\", \"cat\": \"obs\", \"s\": \"p\", "
        "\"args\": {\"dropped\": "
     << dropped << "}}";
}

}  // namespace

TraceBuffer::TraceBuffer(std::size_t max_events) : max_events_(max_events) {
  events_.reserve(std::min<std::size_t>(max_events_, 4096));
}

const char* TraceBuffer::intern(std::string name) {
  return interned_.insert(std::move(name)).first->c_str();
}

void TraceBuffer::set_thread_name(int tid, const char* name) { thread_names_[tid] = name; }

void TraceBuffer::push(const TraceEvent& e) {
  if (events_.size() >= max_events_ && e.phase != TraceEvent::Phase::kEnd) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

void TraceBuffer::begin(Seconds t, int tid, const char* name, const char* cat, TraceArg a,
                        TraceArg b, TraceArg c) {
  push({t, tid, TraceEvent::Phase::kBegin, name, cat, {a, b, c}});
}

void TraceBuffer::end(Seconds t, int tid) {
  push({t, tid, TraceEvent::Phase::kEnd, nullptr, nullptr, {}});
}

void TraceBuffer::instant(Seconds t, int tid, const char* name, const char* cat, TraceArg a,
                          TraceArg b) {
  push({t, tid, TraceEvent::Phase::kInstant, name, cat, {a, b, TraceArg{}}});
}

void TraceBuffer::counter(Seconds t, const char* name, double value) {
  push({t, kControlTid, TraceEvent::Phase::kCounter, name, nullptr,
        {TraceArg{"value", value}, TraceArg{}, TraceArg{}}});
}

void TraceBuffer::drain(std::vector<TraceEvent>& out) {
  out.insert(out.end(), events_.begin(), events_.end());
  events_.clear();
}

void write_chrome_trace(std::ostream& os, const std::vector<TraceProcess>& processes) {
  os << "{\n  \"traceEvents\": [";
  bool first = true;
  for (std::size_t p = 0; p < processes.size(); ++p) {
    const TraceBuffer* buf = processes[p].buffer;
    if (buf == nullptr) continue;
    const int pid = static_cast<int>(p) + 1;
    write_metadata(os, first, "process_name", pid, 0, processes[p].label);
    for (const auto& [tid, name] : buf->thread_names()) {
      write_metadata(os, first, "thread_name", pid, tid, name);
    }
    Seconds last_t = 0.0;
    for (const auto& e : buf->events()) {
      last_t = e.t;
      write_one_event(os, first, pid, e);
    }
    if (buf->dropped() > 0) {
      write_truncation_marker(os, first, pid, last_t, buf->dropped());
    }
  }
  os << (first ? "]" : "\n  ]") << ",\n  \"displayTimeUnit\": \"ms\"\n}\n";
}

StreamingTraceWriter::StreamingTraceWriter(std::ostream& os, TraceBuffer& buffer,
                                           std::string process_label)
    : os_(os), buffer_(buffer) {
  os_ << "{\n  \"traceEvents\": [";
  write_metadata(os_, first_, "process_name", /*pid=*/1, 0, process_label);
}

StreamingTraceWriter::~StreamingTraceWriter() { finish(); }

void StreamingTraceWriter::flush() {
  if (finished_) return;
  // Track labels may appear at any point (a resumed session re-labels its
  // lanes); emit whichever are new before their events reference them.
  for (const auto& [tid, name] : buffer_.thread_names()) {
    if (named_tracks_.insert(tid).second) {
      write_metadata(os_, first_, "thread_name", /*pid=*/1, tid, name);
    }
  }
  scratch_.clear();
  buffer_.drain(scratch_);
  for (const auto& e : scratch_) {
    last_t_ = e.t;
    write_one_event(os_, first_, /*pid=*/1, e);
  }
}

void StreamingTraceWriter::finish() {
  if (finished_) return;
  flush();
  if (buffer_.dropped() > 0) {
    write_truncation_marker(os_, first_, /*pid=*/1, last_t_, buffer_.dropped());
  }
  finished_ = true;
  os_ << (first_ ? "]" : "\n  ]") << ",\n  \"displayTimeUnit\": \"ms\"\n}\n";
}

}  // namespace eadt::obs
