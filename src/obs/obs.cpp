#include "obs/obs.hpp"

#include <ostream>

namespace eadt::obs {

ObsSinks* ObsCollector::slot(std::size_t index, std::string label) {
  std::lock_guard lock(mu_);
  auto it = slots_.find(index);
  if (it == slots_.end()) {
    auto s = std::make_unique<Slot>(trace_cap_);
    s->label = std::move(label);
    s->sinks.metrics = &metrics_;
    s->sinks.trace = &s->trace;
    s->sinks.decisions = &s->decisions;
    it = slots_.emplace(index, std::move(s)).first;
  }
  return &it->second->sinks;
}

bool ObsCollector::has_decisions() const {
  std::lock_guard lock(mu_);
  for (const auto& [index, s] : slots_) {
    if (!s->decisions.empty()) return true;
  }
  return false;
}

void ObsCollector::write_chrome_trace(std::ostream& os) const {
  std::vector<TraceProcess> processes;
  {
    std::lock_guard lock(mu_);
    processes.reserve(slots_.size());
    for (const auto& [index, s] : slots_) processes.push_back({s->label, &s->trace});
  }
  obs::write_chrome_trace(os, processes);
}

void ObsCollector::write_decisions_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  os << "{\n  \"schema\": \"eadt-decisions-v1\",\n  \"decisions\": [";
  bool first = true;
  for (const auto& [index, s] : slots_) {
    for (const auto& d : s->decisions.decisions()) {
      os << (first ? "\n    " : ",\n    ");
      write_decision_json(os, d, index, &s->label);
      first = false;
    }
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
}

void ObsCollector::write_narrative(std::ostream& os) const {
  std::lock_guard lock(mu_);
  for (const auto& [index, s] : slots_) {
    if (s->decisions.empty()) continue;
    os << "== " << s->label << " ==\n";
    s->decisions.write_narrative(os);
  }
}

}  // namespace eadt::obs
