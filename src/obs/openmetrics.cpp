#include "obs/openmetrics.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

namespace eadt::obs {
namespace {

/// Shortest round-trip decimal, the same convention as every other exporter
/// in the tree — equal doubles always render to equal text.
std::string jnum(double v) {
  if (!std::isfinite(v)) return "0";
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    std::istringstream is(os.str());
    double back = 0.0;
    is >> back;
    if (back == v) return os.str();
  }
  return "0";
}

[[nodiscard]] bool valid_start(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
}

[[nodiscard]] bool valid_body(char c) noexcept {
  return valid_start(c) || (c >= '0' && c <= '9');
}

[[nodiscard]] const char* kind_suffix(MetricSnapshot::Kind kind) noexcept {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter: return "_counter";
    case MetricSnapshot::Kind::kGauge: return "_gauge";
    case MetricSnapshot::Kind::kHistogram: return "_histogram";
  }
  return "_metric";
}

[[nodiscard]] const char* kind_name(MetricSnapshot::Kind kind) noexcept {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter: return "counter";
    case MetricSnapshot::Kind::kGauge: return "gauge";
    case MetricSnapshot::Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

/// One exposition family: a unique sanitized name, its kind, and every
/// snapshot that renders under it (more than one only when hostile names
/// collide after sanitization — each then carries a distinguishing label).
struct Family {
  std::string name;
  MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
  std::vector<const MetricSnapshot*> members;
};

/// True when sample `m` needs its original name preserved in a label: the
/// family name alone no longer identifies it (sanitization changed it, a
/// collision suffixed the family, or a counter's `_total` was folded).
[[nodiscard]] bool needs_name_label(const Family& family, const MetricSnapshot& m) {
  if (m.name == family.name) return false;
  return !(family.kind == MetricSnapshot::Kind::kCounter &&
           m.name == family.name + "_total");
}

void write_label_block(std::ostream& os, const Family& family, const MetricSnapshot& m,
                       const std::string* le) {
  const bool named = needs_name_label(family, m);
  if (le == nullptr && !named) return;
  os << '{';
  bool first = true;
  if (le != nullptr) {
    os << "le=\"" << *le << '"';
    first = false;
  }
  if (named) {
    os << (first ? "" : ",") << "name=\"" << openmetrics_label_escape(m.name) << '"';
  }
  os << '}';
}

}  // namespace

std::string openmetrics_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) out.push_back(valid_body(c) ? c : '_');
  if (out.empty() || !valid_start(out.front())) out.insert(out.begin(), '_');
  return out;
}

std::string openmetrics_label_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

const char* openmetrics_content_type() noexcept {
  return "application/openmetrics-text; version=1.0.0; charset=utf-8";
}

void write_openmetrics(std::ostream& os, const std::vector<MetricSnapshot>& metrics) {
  // Pass 1: group by sanitized family name. Counters fold a trailing
  // `_total` into the family (the spec reserves that suffix for the sample
  // name); a sanitized name already claimed by a *different* kind is
  // suffixed with its own kind so `# TYPE` lines stay unique.
  std::vector<Family> families;
  for (const MetricSnapshot& m : metrics) {
    std::string base = openmetrics_name(m.name);
    if (m.kind == MetricSnapshot::Kind::kCounter && base.size() > 6 &&
        base.ends_with("_total")) {
      base.resize(base.size() - 6);
    }
    Family* home = nullptr;
    while (home == nullptr) {
      Family* taken = nullptr;
      for (Family& f : families) {
        if (f.name == base) {
          taken = &f;
          break;
        }
      }
      if (taken == nullptr) {
        families.push_back({std::move(base), m.kind, {}});
        home = &families.back();
      } else if (taken->kind == m.kind) {
        home = taken;
      } else {
        base += kind_suffix(m.kind);
      }
    }
    home->members.push_back(&m);
  }

  // Pass 2: exposition text, one TYPE line per family, cumulative histogram
  // buckets, `# EOF` terminator.
  for (const Family& family : families) {
    os << "# TYPE " << family.name << ' ' << kind_name(family.kind) << '\n';
    for (const MetricSnapshot* mp : family.members) {
      const MetricSnapshot& m = *mp;
      switch (family.kind) {
        case MetricSnapshot::Kind::kCounter:
          os << family.name << "_total";
          write_label_block(os, family, m, nullptr);
          os << ' ' << m.count << '\n';
          break;
        case MetricSnapshot::Kind::kGauge:
          os << family.name;
          write_label_block(os, family, m, nullptr);
          os << ' ' << jnum(m.value) << '\n';
          break;
        case MetricSnapshot::Kind::kHistogram: {
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < m.bounds.size(); ++i) {
            cum += i < m.buckets.size() ? m.buckets[i] : 0;
            const std::string le = jnum(m.bounds[i]);
            os << family.name << "_bucket";
            write_label_block(os, family, m, &le);
            os << ' ' << cum << '\n';
          }
          static const std::string kInf = "+Inf";
          os << family.name << "_bucket";
          write_label_block(os, family, m, &kInf);
          os << ' ' << m.count << '\n';
          os << family.name << "_sum";
          write_label_block(os, family, m, nullptr);
          os << ' ' << jnum(m.value) << '\n';
          os << family.name << "_count";
          write_label_block(os, family, m, nullptr);
          os << ' ' << m.count << '\n';
          break;
        }
      }
    }
  }
  os << "# EOF\n";
}

MetricsHttpServer::MetricsHttpServer(int port, SnapshotFn snapshot)
    : snapshot_(std::move(snapshot)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    error_ = std::string("bind/listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  thread_ = std::thread([this] { serve(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void MetricsHttpServer::serve() {
  // Poll with a short timeout so stop() never waits on a blocked accept;
  // a scrape endpoint sees requests every few seconds, not continuously.
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle(client);
    ::close(client);
  }
}

void MetricsHttpServer::handle(int client) {
  char buf[2048];
  const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  const std::string_view request(buf, static_cast<std::size_t>(n));

  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  const char* status = "200 OK";
  if (request.rfind("GET /metrics", 0) == 0) {
    std::ostringstream os;
    write_openmetrics(os, snapshot_());
    body = os.str();
    content_type = openmetrics_content_type();
  } else if (request.rfind("GET /healthz", 0) == 0) {
    body = "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::string response = "HTTP/1.0 ";
  response += status;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  std::size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t w = ::send(client, response.data() + sent, response.size() - sent,
                             MSG_NOSIGNAL);
    if (w <= 0) return;
    sent += static_cast<std::size_t>(w);
  }
}

}  // namespace eadt::obs
