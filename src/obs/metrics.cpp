#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/json.hpp"

namespace eadt::obs {
namespace {

/// Shortest round-trip decimal for a double, matching the bench-record
/// writer's convention so one value always serializes the same way.
std::string jnum(double v) {
  if (!std::isfinite(v)) return "0";
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    std::istringstream is(os.str());
    double back = 0.0;
    is >> back;
    if (back == v) return os.str();
  }
  return "0";
}

std::string indent_of(int n) { return std::string(static_cast<std::size_t>(n), ' '); }

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::observe(double v) noexcept {
  if (!std::isfinite(v)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double fixed = v * kSumScale;
  if (fixed > 0.0) {
    sum_fixed_.fetch_add(static_cast<std::uint64_t>(std::llround(fixed)),
                         std::memory_order_relaxed);
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.try_emplace(std::string(name)).first;
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.try_emplace(std::string(name)).first;
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name), std::move(bounds)).first;
  }
  return it->second;
}

bool MetricsRegistry::empty() const {
  std::lock_guard lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.name = name;
    s.count = c.value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.name = name;
    s.value = g.value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot s;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.name = name;
    s.count = h.count();
    s.value = h.sum();
    s.bounds = h.bounds();
    s.buckets.reserve(h.bucket_count());
    for (std::size_t i = 0; i < h.bucket_count(); ++i) s.buckets.push_back(h.bucket(i));
    out.push_back(std::move(s));
  }
  return out;
}

double histogram_quantile(const MetricSnapshot& h, double q) noexcept {
  if (h.kind != MetricSnapshot::Kind::kHistogram || h.count == 0 || h.buckets.empty()) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(h.count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const std::uint64_t in_bucket = h.buckets[i];
    if (in_bucket == 0) continue;
    const double below = static_cast<double>(cum);
    cum += in_bucket;
    if (static_cast<double>(cum) < rank) continue;
    // The overflow bucket has no upper edge; the last finite bound is the
    // best (under-)estimate we can report without inventing a scale.
    if (i >= h.bounds.size()) return h.bounds.empty() ? 0.0 : h.bounds.back();
    const double lo = i == 0 ? 0.0 : h.bounds[i - 1];
    const double hi = h.bounds[i];
    const double frac = (rank - below) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
  }
  return h.bounds.empty() ? 0.0 : h.bounds.back();
}

void write_metrics_object(std::ostream& os, const std::vector<MetricSnapshot>& metrics,
                          int base_indent, std::string_view schema) {
  const std::string outer = indent_of(base_indent);
  const std::string inner = indent_of(base_indent + 2);
  const std::string item = indent_of(base_indent + 4);

  os << "{\n";
  bool first_section = true;
  if (!schema.empty()) {
    os << inner << "\"schema\": ";
    write_json_string(os, schema);
    first_section = false;
  }

  const auto open_section = [&](const char* key) {
    if (!first_section) os << ",\n";
    first_section = false;
    os << inner << '"' << key << "\": {";
  };

  const auto each = [&](MetricSnapshot::Kind kind, auto&& emit) {
    bool first = true;
    for (const auto& m : metrics) {
      if (m.kind != kind) continue;
      os << (first ? "\n" : ",\n") << item;
      write_json_string(os, m.name);
      os << ": ";
      emit(m);
      first = false;
    }
    if (!first) os << "\n" << inner;
    os << "}";
  };

  open_section("counters");
  each(MetricSnapshot::Kind::kCounter, [&](const MetricSnapshot& m) { os << m.count; });
  open_section("gauges");
  each(MetricSnapshot::Kind::kGauge, [&](const MetricSnapshot& m) { os << jnum(m.value); });
  open_section("histograms");
  each(MetricSnapshot::Kind::kHistogram, [&](const MetricSnapshot& m) {
    os << "{\"bounds\": [";
    for (std::size_t i = 0; i < m.bounds.size(); ++i) {
      os << (i ? ", " : "") << jnum(m.bounds[i]);
    }
    os << "], \"buckets\": [";
    for (std::size_t i = 0; i < m.buckets.size(); ++i) os << (i ? ", " : "") << m.buckets[i];
    os << "], \"count\": " << m.count << ", \"sum\": " << jnum(m.value) << "}";
  });
  os << "\n" << outer << "}";
}

void MetricsRegistry::write_json(std::ostream& os) const {
  write_metrics_object(os, snapshot(), 0, "eadt-metrics-v1");
  os << "\n";
}

}  // namespace eadt::obs
