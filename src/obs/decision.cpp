#include "obs/decision.hpp"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/json.hpp"

namespace eadt::obs {
namespace {

std::string jnum(double v) {
  if (!std::isfinite(v)) return "0";
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    std::istringstream is(os.str());
    double back = 0.0;
    is >> back;
    if (back == v) return os.str();
  }
  return "0";
}

}  // namespace

std::string_view to_string(DecisionKind kind) noexcept {
  switch (kind) {
    case DecisionKind::kPlanPartition: return "plan-partition";
    case DecisionKind::kPlanChannelWalk: return "plan-channel-walk";
    case DecisionKind::kHteeProbe: return "htee-probe";
    case DecisionKind::kHteeChoose: return "htee-choose";
    case DecisionKind::kSlaeeJump: return "slaee-jump";
    case DecisionKind::kSlaeeStep: return "slaee-step";
    case DecisionKind::kSlaeeRearrange: return "slaee-rearrange";
    case DecisionKind::kSupervisorRetry: return "supervisor-retry";
    case DecisionKind::kSupervisorAbort: return "supervisor-abort";
    case DecisionKind::kSupervisorDegrade: return "supervisor-degrade";
    case DecisionKind::kSupervisorGiveUp: return "supervisor-give-up";
    case DecisionKind::kSupervisorDone: return "supervisor-done";
    case DecisionKind::kSchedulerAdmit: return "scheduler-admit";
    case DecisionKind::kSchedulerShed: return "scheduler-shed";
    case DecisionKind::kSchedulerDefer: return "scheduler-defer";
    case DecisionKind::kSchedulerDispatch: return "scheduler-dispatch";
    case DecisionKind::kSchedulerPreempt: return "scheduler-preempt";
    case DecisionKind::kSchedulerDone: return "scheduler-done";
    case DecisionKind::kPlanTune: return "plan-tune";
    case DecisionKind::kPathSuspect: return "path-suspect";
    case DecisionKind::kPathFailover: return "path-failover";
    case DecisionKind::kHedgeLaunch: return "hedge-launch";
    case DecisionKind::kHedgeWin: return "hedge-win";
  }
  return "unknown";
}

void write_decision_json(std::ostream& os, const Decision& d, std::size_t slot,
                         const std::string* task) {
  os << "{";
  if (task != nullptr) {
    os << "\"slot\": " << slot << ", \"task\": ";
    write_json_string(os, *task);
    os << ", ";
  }
  os << "\"t\": " << jnum(d.at) << ", \"kind\": ";
  write_json_string(os, to_string(d.kind));
  os << ", \"actor\": ";
  write_json_string(os, d.actor);
  os << ", \"subject\": ";
  write_json_string(os, d.subject);
  os << ", \"detail\": ";
  write_json_string(os, d.detail);
  os << ", \"level\": " << d.level << ", \"chosen\": " << d.chosen
     << ", \"measured_mbps\": " << jnum(d.measured_mbps)
     << ", \"target_mbps\": " << jnum(d.target_mbps) << ", \"ratio\": " << jnum(d.ratio)
     << "}";
}

void write_decision_line(std::ostream& os, const Decision& d) {
  char head[64];
  std::snprintf(head, sizeof(head), "t=%9.2fs  %-10s ", d.at, d.actor);
  os << head << d.subject;
  if (!d.detail.empty()) os << " — " << d.detail;
  os << "\n";
}

void DecisionLog::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"eadt-decisions-v1\",\n  \"decisions\": [";
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    write_decision_json(os, decisions_[i], 0, nullptr);
  }
  os << (decisions_.empty() ? "]" : "\n  ]") << "\n}\n";
}

void DecisionLog::write_narrative(std::ostream& os) const {
  for (const auto& d : decisions_) write_decision_line(os, d);
}

}  // namespace eadt::obs
