// Span tracing over simulated time, exported as Chrome trace-event JSON.
//
// One TraceBuffer records the spans of one session/task and is written to by
// exactly one worker thread at a time (SweepRunner hands every task its own
// buffer via ObsCollector), so recording is plain vector appends — no locks
// on the hot path, and per-task event order is deterministic regardless of
// --jobs N. The exporter then lays tasks out as separate trace "processes"
// in slot order, so the merged file is byte-identical across job counts too.
//
// Track (tid) layout within one process, shared by everything that writes
// into a session's buffer:
//   tid 0                      algorithm / control (transfer span, probes,
//                              supervisor attempts, fault instants)
//   tid 1 + chunk              one track per chunk (chunk activity spans)
//   tid 64 + lane              channel leases; lanes are reused lowest-free
//                              so concurrent leases never overlap on a track
//
// Timestamps are simulated seconds (absolute transfer time — resumed legs
// continue, not restart), exported as the microseconds Chrome expects.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace eadt::obs {

inline constexpr int kControlTid = 0;
inline constexpr int kChunkTidBase = 1;
inline constexpr int kLaneTidBase = 64;

/// One numeric key/value attached to an event. Keys must be string literals
/// or intern()ed — the buffer stores the pointer, not a copy.
struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

struct TraceEvent {
  enum class Phase : char {
    kBegin = 'B',
    kEnd = 'E',
    kInstant = 'i',
    kCounter = 'C',
  };
  Seconds t = 0.0;
  int tid = 0;
  Phase phase = Phase::kInstant;
  const char* name = nullptr;  ///< literal or intern()ed; null on kEnd
  const char* cat = nullptr;
  std::array<TraceArg, 3> args{};  ///< unused slots have key == nullptr
};

/// Bounded single-writer span buffer. When the cap is reached new Begin/
/// Instant/Counter events are counted as dropped instead of recorded; End
/// events are always kept so already-open spans still close, and the
/// exporter appends a `trace-truncated` instant when anything was dropped.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCap = 1 << 18;  // ~8 MB of events

  explicit TraceBuffer(std::size_t max_events = kDefaultCap);

  /// Copy a dynamic name into the buffer and return a pointer that stays
  /// valid for the buffer's lifetime. Repeated strings are deduplicated, so
  /// per-window names (e.g. "HTEE probe cc=3") cost one allocation total.
  const char* intern(std::string name);

  /// Label a track; shows up as the Perfetto thread name.
  void set_thread_name(int tid, const char* name);

  void begin(Seconds t, int tid, const char* name, const char* cat, TraceArg a = {},
             TraceArg b = {}, TraceArg c = {});
  void end(Seconds t, int tid);
  void instant(Seconds t, int tid, const char* name, const char* cat, TraceArg a = {},
               TraceArg b = {});
  /// Perfetto counter track (one per name, process-wide).
  void counter(Seconds t, const char* name, double value);

  /// Move everything recorded so far to the back of `out` and clear the
  /// buffer; interned names, track labels and the drop count stay. Draining
  /// resets the capacity check, so a buffer that is drained regularly (the
  /// streaming writer below) records indefinitely without ever dropping.
  void drain(std::vector<TraceEvent>& out);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] const std::map<int, const char*>& thread_names() const noexcept {
    return thread_names_;
  }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }

 private:
  void push(const TraceEvent& e);

  std::size_t max_events_;
  std::size_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  std::map<int, const char*> thread_names_;
  std::set<std::string> interned_;  ///< node-based: c_str() pointers are stable
};

/// One traced task in a merged export: the buffer plus its process label.
struct TraceProcess {
  std::string label;
  const TraceBuffer* buffer = nullptr;
};

/// Write `{"traceEvents": [...]}` — the Chrome trace-event JSON object form,
/// loadable in Perfetto and chrome://tracing. Each TraceProcess becomes pid
/// `index + 1` with its label as the process name.
void write_chrome_trace(std::ostream& os, const std::vector<TraceProcess>& processes);

/// Incremental exporter for one long-running buffer: flush() drains whatever
/// the buffer holds and appends it to the stream, finish() (or the
/// destructor) closes the JSON envelope. Because every flush empties the
/// buffer, a run streamed at any cadence records indefinitely — the buffer's
/// event cap only bounds the span *between* flushes, not the run. The output
/// is byte-identical to a one-shot write_chrome_trace() of the same events
/// when the track labels were set before the first flush (sessions label
/// their tracks at begin(), so this is the normal case).
class StreamingTraceWriter {
 public:
  /// Starts the envelope immediately; `os` must outlive finish().
  StreamingTraceWriter(std::ostream& os, TraceBuffer& buffer, std::string process_label);
  ~StreamingTraceWriter();
  StreamingTraceWriter(const StreamingTraceWriter&) = delete;
  StreamingTraceWriter& operator=(const StreamingTraceWriter&) = delete;

  /// Drain the buffer and serialize everything it held. Cheap when empty.
  void flush();

  /// Final flush, a `trace-truncated` marker if the buffer overflowed
  /// between flushes, and the closing braces. Idempotent.
  void finish();

 private:
  std::ostream& os_;
  TraceBuffer& buffer_;
  bool first_ = true;
  bool finished_ = false;
  std::set<int> named_tracks_;  ///< thread_name metadata already emitted
  Seconds last_t_ = 0.0;
  std::vector<TraceEvent> scratch_;
};

}  // namespace eadt::obs
