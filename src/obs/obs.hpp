// Observability sink bundle and the multi-task collector.
//
// ObsSinks is the single pointer the engine layers carry: a null ObsSinks*
// (the default everywhere) means observability is fully off and costs one
// pointer compare per guarded site. The three members can be attached
// independently — a bench that only wants metrics pays nothing for tracing.
//
// ObsCollector owns observability for a whole sweep: one shared
// MetricsRegistry (atomic, commutative — see metrics.hpp) plus one private
// TraceBuffer and DecisionLog per task slot, so parallel workers never share
// a mutable buffer. slot() is the only synchronized call; exports walk slots
// in index order, which is what makes `--jobs N` output byte-identical to
// `--jobs 1`.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/decision.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace eadt::obs {

/// Borrowed sink pointers; any subset may be null. The pointed-to sinks must
/// outlive every run they observe.
struct ObsSinks {
  MetricsRegistry* metrics = nullptr;
  TraceBuffer* trace = nullptr;
  DecisionLog* decisions = nullptr;

  [[nodiscard]] bool any() const noexcept {
    return metrics != nullptr || trace != nullptr || decisions != nullptr;
  }
};

class ObsCollector {
 public:
  explicit ObsCollector(std::size_t trace_cap = TraceBuffer::kDefaultCap)
      : trace_cap_(trace_cap) {}

  /// Get-or-create the sink bundle for task slot `index`. Thread-safe; the
  /// returned pointer is stable for the collector's lifetime. `label` names
  /// the slot in exports (first caller wins).
  ObsSinks* slot(std::size_t index, std::string label);

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Any decision recorded in any slot?
  [[nodiscard]] bool has_decisions() const;

  void write_metrics_json(std::ostream& os) const { metrics_.write_json(os); }
  /// All slots merged, one trace process per slot, in slot order.
  void write_chrome_trace(std::ostream& os) const;
  /// All slots merged: `{"schema": "eadt-decisions-v1", "decisions": [...]}`
  /// with `slot`/`task` on every record.
  void write_decisions_json(std::ostream& os) const;
  /// Narrative across slots, with a heading per task.
  void write_narrative(std::ostream& os) const;

 private:
  struct Slot {
    std::string label;
    TraceBuffer trace;
    DecisionLog decisions;
    ObsSinks sinks;

    explicit Slot(std::size_t trace_cap) : trace(trace_cap) {}
  };

  mutable std::mutex mu_;
  std::size_t trace_cap_;
  MetricsRegistry metrics_;
  std::map<std::size_t, std::unique_ptr<Slot>> slots_;
};

}  // namespace eadt::obs
