// Live telemetry: deterministic sim-time sampler, tick flight recorder, and
// wall-clock tick-pipeline profiler.
//
// Three instruments with one hard boundary between them (MODEL.md §17):
//
//   * TelemetryHub samples *simulation* state on a sim-time stride from the
//     scheduler's serial commit section. Everything it records is a pure
//     function of deterministic scheduler state, so its `eadt-telemetry-v1`
//     export is byte-identical at any --jobs N. Storage is a bounded ring
//     whose entries are fully pre-sized at construction: recording a sample
//     copies scalars and assigns into same-sized vectors, so steady-state
//     ticks stay allocation-free with the sampler attached.
//   * TickFlightRecorder keeps the last K ticks of compact scheduler state
//     and freezes that window into a dump when something abnormal happens —
//     a watchdog abort, a site power cap measured above bound, or an
//     invariant trip. Dump storage is reserved up front and the number of
//     retained dumps is bounded; further triggers are counted, not stored.
//   * TickProfiler is the *wall-clock* side: per-phase latency histograms
//     (prepare/arbiter/apply/commit) and per-worker occupancy for the tick
//     pool. Its output lives in the MetricsRegistry next to other wall-clock
//     metrics and is never mixed into deterministic exports.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace eadt::obs {

/// Number of SLA classes the sampler tracks (kInteractive/kStandard/kBulk).
inline constexpr std::size_t kTelemetryClasses = 3;

/// One sim-time sample of fleet state. Counters are cumulative totals as of
/// the sample instant; gauges are instantaneous. Per-site vectors are indexed
/// by site id and sized once by the hub.
struct TelemetrySample {
  double t = 0.0;  ///< sim time (s)

  // Fleet-wide instantaneous state.
  int running = 0;
  int queued = 0;
  int deferred = 0;
  int channels = 0;  ///< open data channels summed over running tenants

  // Fleet-wide cumulative event counters.
  std::uint64_t shed = 0;
  std::uint64_t preempted = 0;
  std::uint64_t migrated = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;

  // Fleet-wide power vs. cap (W). Headroom is cap - power, clamped at 0 by
  // the exporter rather than stored.
  double power_w = 0.0;
  double cap_w = 0.0;

  // Per-SLA-class: currently running tenants and mean deadline burn rate
  // (elapsed attempt time / attempt deadline, over running tenants that have
  // a deadline; 0 when none do).
  std::array<int, kTelemetryClasses> class_running{};
  std::array<double, kTelemetryClasses> class_burn{};

  // Per-site power vs. configured cap and fair-share priority phi.
  std::vector<double> site_power_w;
  std::vector<double> site_cap_w;
  std::vector<double> site_phi;
};

/// Deterministic sim-time series sampler. The owner (exp::Scheduler) fills
/// scratch() during its serial commit phase and calls record(); the hub keeps
/// the last `capacity` samples. stride <= 0 disables the hub entirely —
/// due() is then always false and nothing is ever touched on the tick path.
class TelemetryHub {
 public:
  /// Pre-sizes the ring: `capacity` samples, each with `site_count`-sized
  /// per-site vectors. All allocation happens here.
  TelemetryHub(double stride_s, std::size_t capacity, std::size_t site_count);

  [[nodiscard]] bool enabled() const noexcept { return stride_s_ > 0.0; }
  [[nodiscard]] double stride_s() const noexcept { return stride_s_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t site_count() const noexcept { return site_count_; }

  /// True when sim time `now` has reached the next sample point.
  [[nodiscard]] bool due(double now) const noexcept {
    return enabled() && now + 1e-9 >= next_t_;
  }

  /// The reusable fill target. Its per-site vectors are pre-sized to
  /// site_count(); callers index-assign, never push_back.
  [[nodiscard]] TelemetrySample& scratch() noexcept { return scratch_; }

  /// Commit scratch() as the sample for sim time `now` and advance the
  /// stride clock. Allocation-free: assigns into a pre-sized ring entry.
  void record(double now);

  /// Samples currently retained (<= capacity) and total ever recorded.
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::uint64_t samples_seen() const noexcept { return seen_; }

  /// i-th retained sample, oldest first.
  [[nodiscard]] const TelemetrySample& sample(std::size_t i) const;

  /// Render the `eadt-telemetry-v1` object: schema, stride, sample count,
  /// drop count, and the retained samples oldest-first. Deterministic —
  /// byte-identical for equal sampled state.
  void write_json(std::ostream& os, int base_indent) const;

  /// Convenience: the full object as a string (used for bitwise compares).
  [[nodiscard]] std::string to_json() const;

 private:
  double stride_s_;
  double next_t_;
  std::size_t site_count_;
  std::vector<TelemetrySample> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::uint64_t seen_ = 0;
  TelemetrySample scratch_;
};

/// Compact per-tick scheduler state kept by the flight recorder. Plain
/// scalars only — entries are copied wholesale into dumps.
struct FlightTick {
  double t = 0.0;
  int running = 0;
  int queued = 0;
  int deferred = 0;
  double power_w = 0.0;
  double cap_w = 0.0;
  std::uint64_t watchdog_aborts = 0;
  std::uint64_t cap_violations = 0;
};

/// Last-K-ticks ring frozen into bounded dumps on abnormal events. All
/// storage (ring + max_dumps windows) is reserved at construction, so both
/// note() on the tick path and trigger() are allocation-free apart from the
/// reason string of a dump (triggers are by definition off the steady-state
/// path).
class TickFlightRecorder {
 public:
  explicit TickFlightRecorder(std::size_t ring_ticks = 64, std::size_t max_dumps = 4);

  /// Record one tick's state into the ring (overwrites the oldest).
  void note(const FlightTick& tick) noexcept;

  /// Freeze the current window as a dump labelled `reason` at sim time `t`.
  /// Beyond max_dumps the trigger is only counted (see suppressed()).
  void trigger(std::string_view reason, double t);

  struct Dump {
    std::string reason;
    double t = 0.0;
    std::vector<FlightTick> ticks;  ///< oldest first
  };

  [[nodiscard]] std::size_t ring_ticks() const noexcept { return ring_.size(); }
  [[nodiscard]] const std::vector<Dump>& dumps() const noexcept { return dumps_; }
  [[nodiscard]] std::uint64_t suppressed() const noexcept { return suppressed_; }
  [[nodiscard]] std::uint64_t triggers() const noexcept {
    return static_cast<std::uint64_t>(dumps_.size()) + suppressed_;
  }

  /// Render the `eadt-flightrec-v1` object (schema, ring size, dumps,
  /// suppressed count). Deterministic for equal recorded state.
  void write_json(std::ostream& os, int base_indent) const;

 private:
  std::vector<FlightTick> ring_;
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  std::size_t max_dumps_;
  std::vector<Dump> dumps_;
  std::uint64_t suppressed_ = 0;
};

/// Wall-clock tick-pipeline profiler. Resolves `tickpipe.*` histograms and
/// gauges from a MetricsRegistry once at construction; observe() is then a
/// lock-free histogram update. Phase durations are microseconds.
class TickProfiler {
 public:
  enum Phase : std::size_t { kPrepare = 0, kArbiter, kApply, kCommit, kPhaseCount };

  explicit TickProfiler(MetricsRegistry& registry);

  /// Record one phase's wall-clock duration in microseconds.
  void observe(Phase phase, double us) noexcept {
    phase_[static_cast<std::size_t>(phase)]->observe(us);
  }

  /// Record how many tick-pool work items worker `worker` executed over the
  /// run (single-writer: called once from the scheduler after the pool
  /// drains). Workers beyond the pre-registered limit are ignored.
  void record_worker_ops(std::size_t worker, std::uint64_t ops) noexcept;

  static constexpr std::size_t kMaxWorkers = 16;

 private:
  std::array<Histogram*, kPhaseCount> phase_{};
  std::array<Gauge*, kMaxWorkers> worker_ops_{};
};

}  // namespace eadt::obs
