// OpenMetrics exposition of the metrics registry, plus a scrape listener.
//
// The paper's energy/SLA tradeoffs are steered from *live* telemetry; until
// now the MetricsRegistry could only be snapshotted at exit. This header is
// the live surface:
//
//   * write_openmetrics() renders any MetricsRegistry snapshot to
//     OpenMetrics 1.0 exposition text — counters as `<family>_total`, gauges
//     verbatim, fixed-bucket histograms as cumulative `_bucket{le=...}` plus
//     `_sum`/`_count`, terminated by `# EOF`. Internal metric names carry
//     dots and arbitrary tenant strings, so every family name is sanitized
//     to the spec charset and the original is preserved losslessly in a
//     `name` label whenever sanitization changed it (which also keeps two
//     hostile names that sanitize identically as distinct series);
//   * MetricsHttpServer is a deliberately minimal single-threaded HTTP/1.0
//     listener serving GET /metrics and /healthz. One accept loop, one
//     request per connection, no keep-alive — a scrape endpoint, not a web
//     server. The hot path is never blocked by a scrape: engine writers
//     mutate pre-resolved atomic handles lock-free, and the scrape thread
//     only takes the registry's structural mutex for the snapshot walk.
//
// Rendering is deterministic: the snapshot is name-sorted per family and
// numbers use the shortest-round-trip convention shared by every exporter,
// so two snapshots of equal state render byte-identically.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace eadt::obs {

/// Sanitize one metric name into the OpenMetrics charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every invalid byte becomes '_', and a leading
/// digit (or an empty name) gains a '_' prefix. Pure function; collisions
/// between distinct inputs are disambiguated by the exporter's `name` label,
/// not here.
[[nodiscard]] std::string openmetrics_name(std::string_view name);

/// Escape a label value per the exposition spec: backslash, double quote and
/// newline get backslash escapes; everything else passes through.
[[nodiscard]] std::string openmetrics_label_escape(std::string_view value);

/// Render a registry snapshot (MetricsRegistry::snapshot()) as OpenMetrics
/// exposition text, `# EOF` terminator included. Families are emitted in
/// snapshot order (counters, gauges, histograms — each name-sorted); a family
/// whose sanitized name collides with an earlier family of a different kind
/// is suffixed with its kind to keep `# TYPE` lines unique.
void write_openmetrics(std::ostream& os, const std::vector<MetricSnapshot>& metrics);

/// The Content-Type a compliant scraper expects for the exposition body.
[[nodiscard]] const char* openmetrics_content_type() noexcept;

/// Minimal scrape endpoint: one background thread, HTTP/1.0, connection per
/// request. GET /metrics renders the provider's snapshot; GET /healthz
/// answers `ok`; anything else is 404. Start() binds immediately so the
/// caller can log the (possibly ephemeral) port before any scrape lands.
class MetricsHttpServer {
 public:
  using SnapshotFn = std::function<std::vector<MetricSnapshot>()>;

  /// `port` 0 binds an ephemeral port (see port()). `snapshot` is called on
  /// the scrape thread for every /metrics request and must be safe to call
  /// concurrently with engine writers — MetricsRegistry::snapshot() is.
  MetricsHttpServer(int port, SnapshotFn snapshot);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// The bound port, or -1 when the listener failed to start (the failure
  /// reason is in error(); the run proceeds unscraped rather than dying).
  [[nodiscard]] int port() const noexcept { return port_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] bool running() const noexcept { return port_ >= 0; }

  /// Scrapes served so far (/metrics and /healthz both count).
  [[nodiscard]] std::uint64_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Close the socket and join the scrape thread. Idempotent; the destructor
  /// calls it.
  void stop();

 private:
  void serve();
  void handle(int client);

  SnapshotFn snapshot_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::string error_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace eadt::obs
