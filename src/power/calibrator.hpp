// The one-time "model building phase" of Section 2.2.
//
// On the real systems the authors drove each component (CPU, memory, disk,
// NIC) through load levels, measured wall power with a meter, and fitted the
// Eq. 1 coefficients by linear regression. We reproduce the workflow against
// a synthetic ground-truth server whose true power curve is *not* exactly
// linear (mild CPU quadratic term + measurement noise), so the fitted model
// has realistic residual error — this is what the bench/model_accuracy
// harness uses to reproduce the paper's error-rate table (<6 % fine-grained,
// <8 % CPU-only, +2-3 % when TDP-extended to a different machine).
#pragma once

#include <string>
#include <vector>

#include "host/server.hpp"
#include "power/end_system.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace eadt::power {

/// A machine whose "measured" power we pretend to read from a power meter.
class GroundTruthServer {
 public:
  GroundTruthServer(PowerCoefficients true_coeffs, int cores, Watts tdp,
                    double cpu_quadratic, double noise_sd, Rng noise_rng);

  /// Metered power for a given load point (adds curvature + noise).
  [[nodiscard]] Watts measure(int active_cores, const host::Utilization& u);

  /// Noise-free truth, for regression quality checks.
  [[nodiscard]] Watts truth(int active_cores, const host::Utilization& u) const;

  [[nodiscard]] int cores() const noexcept { return cores_; }
  [[nodiscard]] Watts tdp() const noexcept { return tdp_; }
  [[nodiscard]] const PowerCoefficients& true_coefficients() const noexcept {
    return true_;
  }

 private:
  PowerCoefficients true_;
  int cores_;
  Watts tdp_;
  double cpu_quadratic_;
  double noise_sd_;
  Rng rng_;
};

struct CalibrationResult {
  PowerCoefficients fitted;       ///< fine-grained Eq. 1 coefficients
  double fine_grained_r2 = 0.0;
  double cpu_only_factor = 1.0;   ///< full-system stretch for the CPU-only model
  double cpu_only_base = 0.0;     ///< intercept of the CPU-only regression
  double cpu_power_correlation = 0.0;  ///< the paper reports 89.71 %

  /// The "solely CPU-based" prediction (Section 2.2's second model).
  [[nodiscard]] Watts cpu_only_predict(int active_cores, double cpu_utilization) const {
    return cpu_only_base + cpu_only_factor * fitted.cpu_scale *
                               cpu_coefficient(active_cores) * cpu_utilization;
  }
  /// Eq. 3: the CPU-only model carried to a machine with a different TDP.
  [[nodiscard]] Watts tdp_extended_predict(Watts local_tdp, Watts remote_tdp,
                                           int active_cores,
                                           double cpu_utilization) const {
    return local_tdp > 0.0
               ? cpu_only_predict(active_cores, cpu_utilization) * remote_tdp / local_tdp
               : 0.0;
  }
};

/// Sweep loads on `server`, regress, and return fitted models.
[[nodiscard]] CalibrationResult calibrate(GroundTruthServer& server, Rng rng,
                                          int samples_per_component = 40);

/// Synthetic per-tool load shape (how scp/rsync/ftp/bbcp/gridftp stress the
/// components differently).
struct ToolProfile {
  std::string name;
  double cpu_level;   ///< typical CPU utilization at full tilt
  double mem_level;
  double disk_level;
  double nic_level;
  double burstiness;  ///< relative sd of per-sample load wobble
};

/// The five tools evaluated in the paper.
[[nodiscard]] std::vector<ToolProfile> standard_tool_profiles();

struct ModelAccuracy {
  std::string tool;
  double fine_grained_mape = 0.0;  ///< percent
  double cpu_only_mape = 0.0;
  double tdp_extended_mape = 0.0;  ///< CPU-only model moved to `remote`
};

/// Replay `n_samples` load points per tool on `local` (and `remote` for the
/// TDP-extended column) and report each model's error against the meter.
[[nodiscard]] std::vector<ModelAccuracy> evaluate_models(
    const CalibrationResult& cal, GroundTruthServer& local, GroundTruthServer& remote,
    Rng rng, int n_samples = 200);

}  // namespace eadt::power
