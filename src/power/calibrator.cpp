#include "power/calibrator.hpp"

#include <algorithm>
#include <cmath>

namespace eadt::power {
namespace {

host::Utilization wobble(const ToolProfile& t, Rng& rng) {
  // During a transfer the components co-move — the pipeline either flows or
  // stalls as a whole. A shared load factor plus small per-component jitter
  // is what gives CPU utilization its ~90 % correlation with total power.
  const double shared = 1.0 + t.burstiness * rng.normal();
  auto jitter = [&](double level) {
    const double v = level * shared * (1.0 + 0.2 * t.burstiness * rng.normal());
    return std::clamp(v, 0.02, 1.0);
  };
  host::Utilization u;
  u.cpu = jitter(t.cpu_level);
  u.mem = jitter(t.mem_level);
  u.disk = jitter(t.disk_level);
  u.nic = jitter(t.nic_level);
  return u;
}

}  // namespace

GroundTruthServer::GroundTruthServer(PowerCoefficients true_coeffs, int cores, Watts tdp,
                                     double cpu_quadratic, double noise_sd, Rng noise_rng)
    : true_(true_coeffs),
      cores_(cores),
      tdp_(tdp),
      cpu_quadratic_(cpu_quadratic),
      noise_sd_(noise_sd),
      rng_(noise_rng) {}

Watts GroundTruthServer::truth(int active_cores, const host::Utilization& u) const {
  const Watts linear = fine_grained_power(true_, active_cores, u);
  // Mild convexity in the CPU response: real packages draw superlinearly as
  // utilization (and with it frequency/voltage residency) climbs.
  const Watts curve = cpu_quadratic_ * true_.cpu_scale * u.cpu * u.cpu;
  return linear + curve;
}

Watts GroundTruthServer::measure(int active_cores, const host::Utilization& u) {
  return std::max(0.0, truth(active_cores, u) * (1.0 + noise_sd_ * rng_.normal()));
}

CalibrationResult calibrate(GroundTruthServer& server, Rng rng,
                            int samples_per_component) {
  // Component sweeps: hold others at a low floor, ramp one component through
  // its range, at a fixed "all cores active" point (how the authors ran the
  // stressor benchmarks).
  std::vector<std::vector<double>> rows;
  std::vector<double> powers;
  const int n = server.cores();
  auto push = [&](const host::Utilization& u) {
    // Feature vector matches Eq. 1: [C_cpu,n-weighted u_cpu, u_mem, u_disk,
    // u_nic, 1] — the constant column absorbs the activation base.
    rows.push_back({cpu_coefficient(n) * u.cpu, u.mem, u.disk, u.nic, 1.0});
    powers.push_back(server.measure(n, u));
  };

  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < samples_per_component; ++i) {
      const double level = 0.05 + 0.95 * (static_cast<double>(i) + rng.uniform01()) /
                                      static_cast<double>(samples_per_component);
      host::Utilization u{0.08, 0.08, 0.08, 0.08};
      (c == 0 ? u.cpu : c == 1 ? u.mem : c == 2 ? u.disk : u.nic) = level;
      push(u);
    }
  }
  // Mixed points so cross terms do not alias into single coefficients.
  for (int i = 0; i < samples_per_component; ++i) {
    host::Utilization u{rng.uniform(0.05, 1.0), rng.uniform(0.05, 0.6),
                        rng.uniform(0.05, 0.9), rng.uniform(0.05, 0.9)};
    push(u);
  }

  CalibrationResult out;
  const auto fit = fit_linear(rows, powers);
  if (fit) {
    out.fitted.cpu_scale = fit->coefficients[0];
    out.fitted.mem = fit->coefficients[1];
    out.fitted.disk = fit->coefficients[2];
    out.fitted.nic = fit->coefficients[3];
    out.fitted.active_base = fit->coefficients[4];
    out.fine_grained_r2 = fit->r_squared;
  }

  // CPU-only stretch factor: the paper fits this against *transfer* load,
  // where the components co-move, so the CPU term can stand in for the rest.
  // Replay a generic transfer-shaped load and regress power on CPU alone.
  const ToolProfile generic{"generic-transfer", 0.60, 0.22, 0.44, 0.42, 0.15};
  std::vector<std::vector<double>> cpu_rows;
  std::vector<double> cpu_series, cpu_powers;
  Rng transfer_rng = rng.fork("cpu-only");
  for (int i = 0; i < 4 * samples_per_component; ++i) {
    host::Utilization u = wobble(generic, transfer_rng);
    const double feature = cpu_coefficient(n) * u.cpu;
    cpu_rows.push_back({feature, 1.0});
    cpu_series.push_back(feature);
    cpu_powers.push_back(server.measure(n, u));
  }
  if (const auto cpu_fit = fit_linear(cpu_rows, cpu_powers); cpu_fit) {
    if (out.fitted.cpu_scale > 1e-9) {
      out.cpu_only_factor = cpu_fit->coefficients[0] / out.fitted.cpu_scale;
      out.cpu_only_base = cpu_fit->coefficients[1];
    }
  }
  if (const auto corr = pearson_correlation(cpu_series, cpu_powers); corr) {
    out.cpu_power_correlation = *corr;
  }
  return out;
}

std::vector<ToolProfile> standard_tool_profiles() {
  // All five are data movers, so the component mix is similar (disk and NIC
  // track the data rate, memory tracks buffering); what differs is overall
  // intensity — scp/rsync drive the CPU hardest (crypto/delta), ftp is the
  // lightest. Shared shape + different intensity is what gives the CPU-only
  // model its usable accuracy in the paper.
  return {
      {"scp", 0.85, 0.31, 0.62, 0.57, 0.16},
      {"rsync", 0.75, 0.28, 0.56, 0.51, 0.18},
      {"ftp", 0.40, 0.14, 0.29, 0.27, 0.10},
      {"bbcp", 0.60, 0.22, 0.44, 0.41, 0.10},
      {"gridftp", 0.65, 0.24, 0.48, 0.45, 0.10},
  };
}

std::vector<ModelAccuracy> evaluate_models(const CalibrationResult& cal,
                                           GroundTruthServer& local,
                                           GroundTruthServer& remote, Rng rng,
                                           int n_samples) {
  std::vector<ModelAccuracy> table;
  // A transfer tool drives a handful of worker threads, so the number of
  // *active* cores during the replay is the same on both machines (bounded
  // by the smaller core count) — Eq. 3 moves the model across machines via
  // the TDP ratio alone, not via the Eq. 2 core polynomial.
  const int active = std::min({4, local.cores(), remote.cores()});
  for (const auto& tool : standard_tool_profiles()) {
    std::vector<double> meter_local, fg, cpu_only;
    std::vector<double> meter_remote, tdp_ext;
    Rng tool_rng = rng.fork(tool.name);
    for (int i = 0; i < n_samples; ++i) {
      const host::Utilization u = wobble(tool, tool_rng);
      meter_local.push_back(local.measure(active, u));
      fg.push_back(fine_grained_power(cal.fitted, active, u));
      cpu_only.push_back(cal.cpu_only_predict(active, u.cpu));

      const host::Utilization ur = wobble(tool, tool_rng);
      meter_remote.push_back(remote.measure(active, ur));
      tdp_ext.push_back(
          cal.tdp_extended_predict(local.tdp(), remote.tdp(), active, ur.cpu));
    }
    ModelAccuracy row;
    row.tool = tool.name;
    row.fine_grained_mape = mape_percent(fg, meter_local).value_or(0.0);
    row.cpu_only_mape = mape_percent(cpu_only, meter_local).value_or(0.0);
    row.tdp_extended_mape = mape_percent(tdp_ext, meter_remote).value_or(0.0);
    table.push_back(std::move(row));
  }
  return table;
}

}  // namespace eadt::power
