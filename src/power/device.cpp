#include "power/device.hpp"

#include <algorithm>
#include <cmath>

namespace eadt::power {

Watts LinearDevicePower::power(double x) const {
  return idle_ + max_dyn_ * std::clamp(x, 0.0, 1.0);
}

Watts NonLinearDevicePower::power(double x) const {
  return idle_ + max_dyn_ * std::sqrt(std::clamp(x, 0.0, 1.0));
}

StateBasedDevicePower::StateBasedDevicePower(Watts idle, std::vector<State> states)
    : idle_(idle), states_(std::move(states)) {
  std::sort(states_.begin(), states_.end(),
            [](const State& a, const State& b) { return a.threshold < b.threshold; });
}

Watts StateBasedDevicePower::power(double x) const {
  const double xc = std::clamp(x, 0.0, 1.0);
  Watts dyn = 0.0;
  for (const auto& s : states_) {
    if (xc >= s.threshold && s.threshold > 0.0) dyn = s.dynamic;
  }
  return idle_ + dyn;
}

Joules device_transfer_energy(const DevicePowerModel& model, Bytes bytes,
                              BitsPerSecond rate, BitsPerSecond capacity,
                              bool include_idle) {
  if (bytes == 0 || rate <= 0.0 || capacity <= 0.0) return 0.0;
  const Seconds duration = to_bits(bytes) / rate;
  const double fraction = std::clamp(rate / capacity, 0.0, 1.0);
  const Watts p = include_idle ? model.power(fraction) : model.dynamic_power(fraction);
  return p * duration;
}

PerPacketCoefficients per_packet_coefficients(net::DeviceKind kind) {
  // Table 1 of the paper (Vishwanath et al. regression coefficients).
  switch (kind) {
    case net::DeviceKind::kEnterpriseSwitch: return {40.0, 0.42};
    case net::DeviceKind::kEdgeSwitch: return {1571.0, 14.1};
    case net::DeviceKind::kMetroRouter: return {1375.0, 21.6};
    case net::DeviceKind::kEdgeRouter: return {1707.0, 15.3};
  }
  return {};
}

Joules per_packet_energy(net::DeviceKind kind, Bytes packet_bytes) {
  const auto c = per_packet_coefficients(kind);
  return c.pp_nj * 1e-9 +
         c.psf_pj_per_byte * 1e-12 * static_cast<double>(packet_bytes);
}

Joules route_transfer_energy(const net::Route& route, Bytes bytes, Bytes mtu) {
  if (bytes == 0 || mtu == 0) return 0.0;
  const double packets = std::ceil(static_cast<double>(bytes) / static_cast<double>(mtu));
  Joules per_packet_chain = 0.0;
  for (const auto& dev : route.devices()) {
    per_packet_chain += per_packet_energy(dev.kind, mtu);
  }
  return packets * per_packet_chain;
}

std::vector<DeviceKindEnergy> route_transfer_energy_by_kind(const net::Route& route,
                                                            Bytes bytes, Bytes mtu) {
  std::vector<DeviceKindEnergy> out;
  if (bytes == 0 || mtu == 0) return out;
  const double packets = std::ceil(static_cast<double>(bytes) / static_cast<double>(mtu));
  for (const auto& dev : route.devices()) {
    const Joules e = packets * per_packet_energy(dev.kind, mtu);
    auto it = std::find_if(out.begin(), out.end(),
                           [&](const DeviceKindEnergy& d) { return d.kind == dev.kind; });
    if (it == out.end()) {
      out.push_back({dev.kind, e});
    } else {
      it->joules += e;
    }
  }
  return out;
}

}  // namespace eadt::power
