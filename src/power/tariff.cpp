#include "power/tariff.hpp"

#include <algorithm>
#include <cmath>

namespace eadt::power {

Tariff Tariff::flat(double usd_per_kwh) {
  Tariff t;
  t.base_ = usd_per_kwh;
  return t;
}

Tariff Tariff::time_of_use(double base_usd_per_kwh, std::vector<TariffBand> bands) {
  Tariff t;
  t.base_ = base_usd_per_kwh;
  for (auto band : bands) {
    band.start_hour = std::clamp(band.start_hour, 0.0, 24.0);
    band.end_hour = std::clamp(band.end_hour, 0.0, 24.0);
    if (band.start_hour == band.end_hour) continue;  // empty
    if (band.start_hour < band.end_hour) {
      t.bands_.push_back(band);
    } else {
      // Wraps midnight: split into [start, 24) and [0, end).
      t.bands_.push_back({band.start_hour, 24.0, band.usd_per_kwh});
      t.bands_.push_back({0.0, band.end_hour, band.usd_per_kwh});
    }
  }
  return t;
}

double Tariff::price_at(Seconds time) const {
  double hour = std::fmod(time / 3600.0, 24.0);
  if (hour < 0.0) hour += 24.0;
  // Later bands override earlier ones.
  double price = base_;
  for (const auto& band : bands_) {
    if (hour >= band.start_hour && hour < band.end_hour) price = band.usd_per_kwh;
  }
  return price;
}

double Tariff::cost(Joules energy, Seconds start, Seconds duration) const {
  if (energy <= 0.0) return 0.0;
  if (duration <= 0.0) return energy * usd_per_joule(price_at(start));
  const Watts power = energy / duration;

  // Walk the interval, stopping at band edges (all edges live on the hour
  // grid of the configured bands plus midnight).
  std::vector<double> edges{0.0, 24.0};
  for (const auto& band : bands_) {
    edges.push_back(band.start_hour);
    edges.push_back(band.end_hour);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  double usd = 0.0;
  Seconds t = start;
  const Seconds end = start + duration;
  while (t < end - 1e-9) {
    double hour = std::fmod(t / 3600.0, 24.0);
    if (hour < 0.0) hour += 24.0;
    // Next edge strictly after `hour`.
    double next_hour = 24.0;
    for (const double e : edges) {
      if (e > hour + 1e-12) {
        next_hour = e;
        break;
      }
    }
    const Seconds span = std::min(end - t, (next_hour - hour) * 3600.0);
    usd += power * span * usd_per_joule(price_at(t));
    t += span;
  }
  return usd;
}

double Tariff::cheapest_hour() const {
  double best_hour = 0.0;
  double best_price = price_at(0.0);
  for (const auto& band : bands_) {
    if (band.usd_per_kwh < best_price) {
      best_price = band.usd_per_kwh;
      best_hour = band.start_hour;
    }
  }
  return best_hour;
}

}  // namespace eadt::power
