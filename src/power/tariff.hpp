// Electricity tariffs: turning Joules into money.
//
// The paper motivates energy-aware transfers with the worldwide power bill of
// data movement; a provider reasons in $ (or CO2), not Joules. A Tariff maps
// an energy draw over a wall-clock interval to cost, supporting flat rates
// and time-of-use schedules (24-hour cycle of price bands — the off-peak
// window a green queue wants to land in).
#pragma once

#include <vector>

#include "util/units.hpp"

namespace eadt::power {

inline constexpr Seconds kSecondsPerDay = 24.0 * 3600.0;

/// One price band of a 24-hour cycle: [start_hour, end_hour) at `usd_per_kwh`.
/// Bands may wrap midnight by having start_hour > end_hour.
struct TariffBand {
  double start_hour = 0.0;
  double end_hour = 24.0;
  double usd_per_kwh = 0.10;
};

class Tariff {
 public:
  /// Flat price at all hours.
  [[nodiscard]] static Tariff flat(double usd_per_kwh);

  /// Time-of-use: later bands override earlier ones where they overlap;
  /// hours not covered by any band fall back to `base_usd_per_kwh`.
  [[nodiscard]] static Tariff time_of_use(double base_usd_per_kwh,
                                          std::vector<TariffBand> bands);

  /// Price in effect at `time` (seconds since an arbitrary midnight; the
  /// schedule repeats every 24 h).
  [[nodiscard]] double price_at(Seconds time) const;

  /// Cost in USD of drawing `energy` at constant power over
  /// [start, start + duration) — integrates across band boundaries and
  /// midnight wraps exactly.
  [[nodiscard]] double cost(Joules energy, Seconds start, Seconds duration) const;

  /// Cheapest hour of the day (band start with the lowest price) — a
  /// scheduling hint for deferrable jobs.
  [[nodiscard]] double cheapest_hour() const;

 private:
  Tariff() = default;
  double base_ = 0.10;
  std::vector<TariffBand> bands_;  // normalised: non-wrapping, in order
};

/// USD per kWh -> USD per Joule.
[[nodiscard]] constexpr double usd_per_joule(double usd_per_kwh) {
  return usd_per_kwh / 3.6e6;
}

}  // namespace eadt::power
