// Network device power models (Section 4, Figure 8, Table 1).
//
// Three utilization->power shapes for switches/routers:
//   * non-linear  : dynamic power ~ sqrt(traffic rate) (Mahadevan et al.) —
//                   faster transfers *save* network energy,
//   * linear      : dynamic power ~ rate — network energy is rate-invariant,
//   * state-based : power steps at discrete rate thresholds — behaves like
//                   linear on aggregate.
// Plus the Vishwanath et al. per-packet model (Eq. 5) with the Table 1
// coefficients, used for the Figure 10 end-system vs. network decomposition.
#pragma once

#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "util/units.hpp"

namespace eadt::power {

/// Utilization->power curve for one device. `traffic_fraction` in [0, 1].
class DevicePowerModel {
 public:
  virtual ~DevicePowerModel() = default;
  /// Total instantaneous power at the given port utilization.
  [[nodiscard]] virtual Watts power(double traffic_fraction) const = 0;
  [[nodiscard]] Watts idle() const { return power(0.0); }
  /// Dynamic (load-dependent) part only.
  [[nodiscard]] Watts dynamic_power(double traffic_fraction) const {
    return power(traffic_fraction) - idle();
  }
};

class LinearDevicePower final : public DevicePowerModel {
 public:
  LinearDevicePower(Watts idle, Watts max_dynamic) : idle_(idle), max_dyn_(max_dynamic) {}
  [[nodiscard]] Watts power(double x) const override;

 private:
  Watts idle_, max_dyn_;
};

/// Sub-linear: dynamic ~ sqrt(x). Rate grows faster than power, so pushing
/// data faster reduces the energy per byte at the device.
class NonLinearDevicePower final : public DevicePowerModel {
 public:
  NonLinearDevicePower(Watts idle, Watts max_dynamic) : idle_(idle), max_dyn_(max_dynamic) {}
  [[nodiscard]] Watts power(double x) const override;

 private:
  Watts idle_, max_dyn_;
};

/// Discrete power states keyed on rate thresholds (e.g. DVS-style links).
class StateBasedDevicePower final : public DevicePowerModel {
 public:
  struct State {
    double threshold;  ///< active when traffic_fraction >= threshold
    Watts dynamic;
  };
  StateBasedDevicePower(Watts idle, std::vector<State> states);
  [[nodiscard]] Watts power(double x) const override;

 private:
  Watts idle_;
  std::vector<State> states_;  // sorted by threshold ascending
};

/// Energy E_T = P_i*T + P_d*T_d of a device over a transfer of `bytes` at
/// rate `rate` on a link of `capacity`, under a given curve (paper Eq. 4).
[[nodiscard]] Joules device_transfer_energy(const DevicePowerModel& model, Bytes bytes,
                                            BitsPerSecond rate, BitsPerSecond capacity,
                                            bool include_idle = false);

/// Table 1: per-packet coefficients for load-dependent device energy.
/// P_p is per-packet processing energy (nJ/packet); P_s-f is store-and-forward
/// energy per byte (pJ/byte), so larger packets cost more to buffer.
struct PerPacketCoefficients {
  double pp_nj = 0.0;
  double psf_pj_per_byte = 0.0;
};

[[nodiscard]] PerPacketCoefficients per_packet_coefficients(net::DeviceKind kind);

/// Load-dependent energy of one packet of `packet_bytes` through `kind`.
[[nodiscard]] Joules per_packet_energy(net::DeviceKind kind, Bytes packet_bytes);

/// Load-dependent network energy of pushing `bytes` across `route` with the
/// given MTU (Eq. 5 summed over the device chain; idle power excluded, as in
/// the paper's Figure 10 which considers only the load-dependent part).
[[nodiscard]] Joules route_transfer_energy(const net::Route& route, Bytes bytes, Bytes mtu);

/// Same, broken down by device kind (one entry per kind present, summed over
/// all devices of that kind on the route).
struct DeviceKindEnergy {
  net::DeviceKind kind;
  Joules joules = 0.0;
};
[[nodiscard]] std::vector<DeviceKindEnergy> route_transfer_energy_by_kind(
    const net::Route& route, Bytes bytes, Bytes mtu);

}  // namespace eadt::power
