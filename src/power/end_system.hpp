// End-system power models from Section 2.2 of the paper.
//
//   Fine-grained (Eq. 1):  P_t = C_cpu,n*u_cpu + C_mem*u_mem
//                                + C_disk*u_disk + C_nic*u_nic
//   CPU coefficient (Eq. 2): C_cpu,n = 0.011 n^2 - 0.082 n + 0.344
//   CPU-only:               P_t = C_cpu,n * u_cpu  (scaled to approximate the
//                                 full system; ~90 % correlated per the paper)
//   TDP-scaled (Eq. 3):     P_t = CPU-only(local) * TDP_remote / TDP_local
//
// Eq. 2 is dimensionless in the paper (regression against their Intel server);
// we keep the polynomial exactly and multiply by a machine-specific scale in
// watts. Its minimum near n = 3.7 is what produces the paper's "energy per
// core decreases until 4 active cores" parabola on 4-core DTNs.
#pragma once

#include <algorithm>

#include "host/server.hpp"
#include "util/units.hpp"

namespace eadt::power {

/// Eq. 2, verbatim.
[[nodiscard]] constexpr double cpu_coefficient(int active_cores) {
  const double n = static_cast<double>(active_cores);
  return 0.011 * n * n - 0.082 * n + 0.344;
}

/// Machine-specific coefficients (watts at utilization 1.0). Derived by the
/// one-time model-building regression (see ModelCalibrator) or configured per
/// testbed.
struct PowerCoefficients {
  Watts cpu_scale = 250.0;  ///< multiplies the Eq. 2 polynomial
  Watts mem = 30.0;
  Watts disk = 25.0;
  Watts nic = 20.0;
  /// Marginal power of a server merely *participating* in a transfer
  /// (kernel, interrupts, exiting deep idle states). Charged while >= 1
  /// channel is resident; this is what makes spreading channels over extra
  /// DTN servers (Globus Online) expensive.
  Watts active_base = 12.0;
};

/// Eq. 1 + Eq. 2 + activation base.
[[nodiscard]] Watts fine_grained_power(const PowerCoefficients& c, int active_cores,
                                       const host::Utilization& u);

/// CPU-only model; `full_system_factor` is the regression-derived ratio that
/// stretches the CPU term to approximate the whole system (the paper reports
/// ~89.7 % correlation between CPU utilization and total power).
[[nodiscard]] Watts cpu_only_power(const PowerCoefficients& c, int active_cores,
                                   double cpu_utilization,
                                   double full_system_factor = 1.35);

/// Eq. 3: extend a CPU-only model built on `local` to a `remote` machine by
/// the ratio of CPU TDP values.
[[nodiscard]] Watts tdp_scaled_power(const PowerCoefficients& local_coeffs,
                                     Watts local_tdp, Watts remote_tdp,
                                     int active_cores, double cpu_utilization,
                                     double full_system_factor = 1.35);

/// Trapezoid-free energy integrator (power is piecewise constant per tick).
class EnergyAccumulator {
 public:
  void add(Watts power, Seconds dt) noexcept {
    if (power > 0.0 && dt > 0.0) joules_ += power * dt;
  }
  [[nodiscard]] Joules total() const noexcept { return joules_; }
  void reset() noexcept { joules_ = 0.0; }

 private:
  Joules joules_ = 0.0;
};

}  // namespace eadt::power
