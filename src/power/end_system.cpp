#include "power/end_system.hpp"

namespace eadt::power {

Watts fine_grained_power(const PowerCoefficients& c, int active_cores,
                         const host::Utilization& u) {
  if (active_cores <= 0) return 0.0;
  const double c_cpu = cpu_coefficient(active_cores) * c.cpu_scale;
  return c.active_base + c_cpu * u.cpu + c.mem * u.mem + c.disk * u.disk + c.nic * u.nic;
}

Watts cpu_only_power(const PowerCoefficients& c, int active_cores,
                     double cpu_utilization, double full_system_factor) {
  if (active_cores <= 0) return 0.0;
  const double c_cpu = cpu_coefficient(active_cores) * c.cpu_scale;
  return c.active_base + c_cpu * std::clamp(cpu_utilization, 0.0, 1.0) * full_system_factor;
}

Watts tdp_scaled_power(const PowerCoefficients& local_coeffs, Watts local_tdp,
                       Watts remote_tdp, int active_cores, double cpu_utilization,
                       double full_system_factor) {
  if (local_tdp <= 0.0) return 0.0;
  const Watts local = cpu_only_power(local_coeffs, active_cores, cpu_utilization,
                                     full_system_factor);
  return local * (remote_tdp / local_tdp);
}

}  // namespace eadt::power
