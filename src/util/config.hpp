// Minimal INI-style configuration, for user-defined testbeds and scenarios.
//
// Grammar:
//   [section]            ; sections group keys
//   key = value          ; values keep internal spaces, trimmed at the ends
//   # comment, ; comment ; full-line or trailing comments
//
// Keys are unique per section (later duplicates overwrite). Values are
// fetched typed, with defaults: get_double / get_int / get_bool / get_string
// / get_size (accepts "32MB", "1.5GB", "300kb" style suffixes, binary
// multiples) / get_list (comma-separated).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace eadt {

class Config {
 public:
  /// Parse from text. On failure returns nullopt and fills *error with a
  /// "line N: reason" message (if error != nullptr).
  [[nodiscard]] static std::optional<Config> parse(std::string_view text,
                                                   std::string* error = nullptr);
  /// Parse from a file.
  [[nodiscard]] static std::optional<Config> load(const std::string& path,
                                                  std::string* error = nullptr);

  [[nodiscard]] bool has_section(std::string_view section) const;
  [[nodiscard]] bool has(std::string_view section, std::string_view key) const;

  [[nodiscard]] std::optional<std::string> get(std::string_view section,
                                               std::string_view key) const;
  [[nodiscard]] std::string get_string(std::string_view section, std::string_view key,
                                       std::string fallback) const;
  [[nodiscard]] double get_double(std::string_view section, std::string_view key,
                                  double fallback) const;
  [[nodiscard]] int get_int(std::string_view section, std::string_view key,
                            int fallback) const;
  /// true/yes/on/1 vs false/no/off/0 (case-insensitive).
  [[nodiscard]] bool get_bool(std::string_view section, std::string_view key,
                              bool fallback) const;
  /// Byte size with optional B/KB/MB/GB/TB suffix (binary multiples).
  [[nodiscard]] Bytes get_size(std::string_view section, std::string_view key,
                               Bytes fallback) const;
  /// Comma-separated list, items trimmed; empty items dropped.
  [[nodiscard]] std::vector<std::string> get_list(std::string_view section,
                                                  std::string_view key) const;

  [[nodiscard]] std::vector<std::string> sections() const;
  [[nodiscard]] std::vector<std::string> keys(std::string_view section) const;

 private:
  std::map<std::string, std::map<std::string, std::string>, std::less<>> data_;
};

/// "32MB" -> bytes; suffix optional (bare number = bytes); fractional values
/// allowed ("1.5GB"). Returns nullopt on malformed input.
[[nodiscard]] std::optional<Bytes> parse_size(std::string_view text);

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

}  // namespace eadt
