#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace eadt {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) noexcept {
  // Avoid the all-zero state xoshiro cannot leave.
  std::uint64_t sm = seed ^ 0xA0761D6478BD642FULL;
  for (auto& w : s_) w = splitmix64(sm);
}

Rng Rng::fork(std::string_view tag) const noexcept {
  // Mix the current state (not advanced) with the tag hash.
  const std::uint64_t mix = s_[0] ^ rotl(s_[2], 17) ^ fnv1a64(tag);
  return Rng(mix);
}

RngState Rng::state() const noexcept { return {s_[0], s_[1], s_[2], s_[3]}; }

void Rng::restore(const RngState& state) noexcept {
  if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0) {
    *this = Rng(0);
    return;
  }
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state[i];
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  // Multiply-shift without 128-bit arithmetic: scale a 53-bit uniform double.
  // Bias is < 2^-53 * span, negligible for simulation workloads.
  const double u = uniform01();
  std::uint64_t off = static_cast<std::uint64_t>(u * static_cast<double>(span));
  if (off >= span) off = span - 1;  // guard the u ~= 1 rounding edge
  return lo + off;
}

double Rng::log_uniform(double lo, double hi) noexcept {
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  return std::exp(uniform(llo, lhi));
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; uniform01() can return 0, so flip to (0, 1].
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace eadt
