// Units and conversions used across the EADT codebase.
//
// Conventions (documented once, used everywhere):
//   * data sizes   : Bytes (std::uint64_t), binary multiples (1 KB = 1024 B)
//   * rates        : bits per second (double)  -- networking convention
//   * time         : seconds (double), simulated time only
//   * power/energy : watts / joules (double)
#pragma once

#include <cstdint>

namespace eadt {

/// Exact byte count.
using Bytes = std::uint64_t;

/// Simulated time in seconds. The simulator never reads the wall clock.
using Seconds = double;

/// Data rate in bits per second.
using BitsPerSecond = double;

/// Instantaneous electrical power in watts.
using Watts = double;

/// Accumulated energy in joules.
using Joules = double;

inline constexpr Bytes kKB = 1024ULL;
inline constexpr Bytes kMB = 1024ULL * kKB;
inline constexpr Bytes kGB = 1024ULL * kMB;

constexpr Bytes operator""_KB(unsigned long long v) { return v * kKB; }
constexpr Bytes operator""_MB(unsigned long long v) { return v * kMB; }
constexpr Bytes operator""_GB(unsigned long long v) { return v * kGB; }

/// Megabits/s -> bits/s.
constexpr BitsPerSecond mbps(double v) { return v * 1e6; }
/// Gigabits/s -> bits/s.
constexpr BitsPerSecond gbps(double v) { return v * 1e9; }

/// bits/s -> Megabits/s (for reporting).
constexpr double to_mbps(BitsPerSecond v) { return v / 1e6; }
/// bits/s -> Gigabits/s (for reporting).
constexpr double to_gbps(BitsPerSecond v) { return v / 1e9; }

/// Bytes -> bits (watch for overflow only past ~2 EB, far beyond our datasets).
constexpr double to_bits(Bytes b) { return static_cast<double>(b) * 8.0; }

/// Bytes -> fractional megabytes (reporting).
constexpr double to_mb(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMB); }
/// Bytes -> fractional gigabytes (reporting).
constexpr double to_gb(Bytes b) { return static_cast<double>(b) / static_cast<double>(kGB); }

/// Time to move `size` at `rate`; returns +inf for rate <= 0.
constexpr Seconds transfer_time(Bytes size, BitsPerSecond rate) {
  return rate > 0.0 ? to_bits(size) / rate : 1e300;
}

/// Bandwidth-delay product in bytes (the paper's BDP = BW * RTT).
constexpr Bytes bdp_bytes(BitsPerSecond bandwidth, Seconds rtt) {
  const double bits = bandwidth * rtt;
  return bits <= 0.0 ? 0 : static_cast<Bytes>(bits / 8.0);
}

}  // namespace eadt
