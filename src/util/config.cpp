#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace eadt {
namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

void set_error(std::string* error, int line, const std::string& reason) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + reason;
  }
}

}  // namespace

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::optional<Bytes> parse_size(std::string_view text) {
  const std::string_view t = trim(text);
  if (t.empty()) return std::nullopt;
  std::size_t i = 0;
  while (i < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[i])) || t[i] == '.' || t[i] == '+')) {
    ++i;
  }
  if (i == 0) return std::nullopt;
  const std::string num(t.substr(0, i));
  char* end = nullptr;
  const double value = std::strtod(num.c_str(), &end);
  if (end == num.c_str() || value < 0.0) return std::nullopt;
  const std::string suffix = lower(trim(t.substr(i)));
  double mult = 1.0;
  if (suffix.empty() || suffix == "b") {
    mult = 1.0;
  } else if (suffix == "kb" || suffix == "k" || suffix == "kib") {
    mult = static_cast<double>(kKB);
  } else if (suffix == "mb" || suffix == "m" || suffix == "mib") {
    mult = static_cast<double>(kMB);
  } else if (suffix == "gb" || suffix == "g" || suffix == "gib") {
    mult = static_cast<double>(kGB);
  } else if (suffix == "tb" || suffix == "t" || suffix == "tib") {
    mult = static_cast<double>(kGB) * 1024.0;
  } else {
    return std::nullopt;
  }
  return static_cast<Bytes>(std::llround(value * mult));
}

std::optional<Config> Config::parse(std::string_view text, std::string* error) {
  Config cfg;
  std::string current_section;
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(pos, nl == std::string_view::npos
                                                 ? std::string_view::npos
                                                 : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    // Strip comments (# or ;), then whitespace.
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        set_error(error, line_no, "malformed section header");
        return std::nullopt;
      }
      current_section = std::string(trim(line.substr(1, line.size() - 2)));
      if (current_section.empty()) {
        set_error(error, line_no, "empty section name");
        return std::nullopt;
      }
      cfg.data_[current_section];  // allow empty sections
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      set_error(error, line_no, "expected 'key = value'");
      return std::nullopt;
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) {
      set_error(error, line_no, "empty key");
      return std::nullopt;
    }
    if (current_section.empty()) {
      set_error(error, line_no, "key outside any [section]");
      return std::nullopt;
    }
    cfg.data_[current_section][key] = value;
  }
  return cfg;
}

std::optional<Config> Config::load(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), error);
}

bool Config::has_section(std::string_view section) const {
  return data_.find(section) != data_.end();
}

bool Config::has(std::string_view section, std::string_view key) const {
  return get(section, key).has_value();
}

std::optional<std::string> Config::get(std::string_view section,
                                       std::string_view key) const {
  const auto sit = data_.find(section);
  if (sit == data_.end()) return std::nullopt;
  const auto kit = sit->second.find(std::string(key));
  if (kit == sit->second.end()) return std::nullopt;
  return kit->second;
}

std::string Config::get_string(std::string_view section, std::string_view key,
                               std::string fallback) const {
  auto v = get(section, key);
  return v ? *v : std::move(fallback);
}

double Config::get_double(std::string_view section, std::string_view key,
                          double fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  char* end = nullptr;
  const double d = std::strtod(v->c_str(), &end);
  return end != v->c_str() && trim(std::string_view(end)).empty() ? d : fallback;
}

int Config::get_int(std::string_view section, std::string_view key, int fallback) const {
  const double d = get_double(section, key, static_cast<double>(fallback));
  return static_cast<int>(std::llround(d));
}

bool Config::get_bool(std::string_view section, std::string_view key,
                      bool fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  const std::string s = lower(trim(*v));
  if (s == "true" || s == "yes" || s == "on" || s == "1") return true;
  if (s == "false" || s == "no" || s == "off" || s == "0") return false;
  return fallback;
}

Bytes Config::get_size(std::string_view section, std::string_view key,
                       Bytes fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  const auto parsed = parse_size(*v);
  return parsed ? *parsed : fallback;
}

std::vector<std::string> Config::get_list(std::string_view section,
                                          std::string_view key) const {
  std::vector<std::string> items;
  const auto v = get(section, key);
  if (!v) return items;
  std::size_t pos = 0;
  while (pos <= v->size()) {
    const std::size_t comma = v->find(',', pos);
    const std::string_view item =
        trim(std::string_view(*v).substr(pos, comma == std::string::npos
                                                  ? std::string::npos
                                                  : comma - pos));
    if (!item.empty()) items.emplace_back(item);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return items;
}

std::vector<std::string> Config::sections() const {
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [name, _] : data_) out.push_back(name);
  return out;
}

std::vector<std::string> Config::keys(std::string_view section) const {
  std::vector<std::string> out;
  const auto sit = data_.find(section);
  if (sit == data_.end()) return out;
  out.reserve(sit->second.size());
  for (const auto& [key, _] : sit->second) out.push_back(key);
  return out;
}

}  // namespace eadt
