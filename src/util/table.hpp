// Console table / CSV rendering for the figure-reproduction benches.
//
// Every bench prints the same rows the paper's figure plots, as a fixed-width
// table (human) and optionally CSV (machine). Keeping this in one place makes
// all bench output uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace eadt {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must match the header count (checked, throws
  /// std::invalid_argument on programmer error).
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 1);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Fixed-width rendering with a rule under the header.
  void render(std::ostream& os) const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void render_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eadt
