#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace eadt {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::optional<double> pearson_correlation(std::span<const double> x,
                                          std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return std::nullopt;
  RunningStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  if (sx.stddev() <= 0.0 || sy.stddev() <= 0.0) return std::nullopt;
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  return cov / (sx.stddev() * sy.stddev());
}

double RegressionResult::predict(std::span<const double> row) const {
  double y = 0.0;
  const std::size_t n = std::min(row.size(), coefficients.size());
  for (std::size_t i = 0; i < n; ++i) y += coefficients[i] * row[i];
  return y;
}

std::optional<RegressionResult> fit_linear(std::span<const std::vector<double>> rows,
                                           std::span<const double> targets) {
  if (rows.empty() || rows.size() != targets.size()) return std::nullopt;
  const std::size_t k = rows.front().size();
  if (k == 0 || rows.size() < k) return std::nullopt;
  for (const auto& r : rows) {
    if (r.size() != k) return std::nullopt;
  }

  // Normal equations: (X^T X) beta = X^T y.
  std::vector<std::vector<double>> a(k, std::vector<double>(k + 1, 0.0));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) a[i][j] += rows[r][i] * rows[r][j];
      a[i][k] += rows[r][i] * targets[r];
    }
  }

  // Gauss-Jordan with partial pivoting on the augmented matrix.
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return std::nullopt;  // singular
    std::swap(a[pivot], a[col]);
    const double inv = 1.0 / a[col][col];
    for (auto& v : a[col]) v *= inv;
    for (std::size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double f = a[r][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c <= k; ++c) a[r][c] -= f * a[col][c];
    }
  }

  RegressionResult res;
  res.coefficients.resize(k);
  for (std::size_t i = 0; i < k; ++i) res.coefficients[i] = a[i][k];

  RunningStats ty;
  for (double t : targets) ty.add(t);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const double e = targets[r] - res.predict(rows[r]);
    ss_res += e * e;
    const double d = targets[r] - ty.mean();
    ss_tot += d * d;
  }
  res.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return res;
}

std::optional<double> mape_percent(std::span<const double> predicted,
                                   std::span<const double> actual, double eps) {
  if (predicted.size() != actual.size()) return std::nullopt;
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (std::fabs(actual[i]) < eps) continue;
    sum += std::fabs((predicted[i] - actual[i]) / actual[i]);
    ++n;
  }
  if (n == 0) return std::nullopt;
  return 100.0 * sum / static_cast<double>(n);
}

}  // namespace eadt
