// JSON string escaping, shared by every exporter in the tree.
//
// The repo hand-writes its JSON (bench records, traces, metrics) instead of
// pulling in a serialization library, which means every writer must agree on
// one escaping rule. This is that rule: RFC 8259 — `"` and `\` escaped, the
// two-character forms for the common control characters, `\u00XX` for the
// rest. Output is plain ASCII-transparent: bytes >= 0x20 other than the two
// specials pass through untouched, so UTF-8 payloads survive unmodified.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace eadt {

/// Escape `s` for embedding inside a JSON string literal (no surrounding
/// quotes). Returns the input unchanged when nothing needs escaping.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Write `s` to `os` as a complete JSON string literal, quotes included.
void write_json_string(std::ostream& os, std::string_view s);

}  // namespace eadt
