// Streaming statistics and ordinary-least-squares regression.
//
// The regression is what the paper's power-model "model building phase" uses:
// component utilizations are swept, power is recorded, and linear regression
// derives the per-component coefficients (Section 2.2).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace eadt {

/// Welford running mean/variance, numerically stable.
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Pearson correlation of two equally sized series; nullopt if degenerate.
[[nodiscard]] std::optional<double> pearson_correlation(std::span<const double> x,
                                                        std::span<const double> y);

/// Result of a least-squares fit y ~ X * beta (no implicit intercept; append
/// a constant-1 column yourself if you want one).
struct RegressionResult {
  std::vector<double> coefficients;
  double r_squared = 0.0;
  [[nodiscard]] double predict(std::span<const double> row) const;
};

/// Ordinary least squares via normal equations + Gauss-Jordan.
/// Returns nullopt when the system is singular or inputs are malformed
/// (rows empty, ragged rows, fewer rows than features).
[[nodiscard]] std::optional<RegressionResult> fit_linear(
    std::span<const std::vector<double>> rows, std::span<const double> targets);

/// Mean absolute percentage error between prediction and truth, in percent.
/// Entries with |truth| < eps are skipped; nullopt if nothing remains.
[[nodiscard]] std::optional<double> mape_percent(std::span<const double> predicted,
                                                 std::span<const double> actual,
                                                 double eps = 1e-9);

}  // namespace eadt
