// Deterministic random number generation.
//
// Every stochastic element of a simulation draws from an Rng that was seeded
// explicitly, so a (seed, configuration) pair is bit-reproducible. Named
// sub-streams decorrelate components (workload vs. noise vs. jitter) without
// the order of construction mattering.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace eadt {

/// Snapshot of an Rng's internal state, for checkpoint/resume journals.
/// Opaque except to Rng; serialize as four 64-bit words.
using RngState = std::array<std::uint64_t, 4>;

/// xoshiro256** PRNG. Small, fast, and fully deterministic across platforms
/// (std::mt19937 would also be portable, but distributions are not; we ship
/// our own uniform/normal transforms below for that reason).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Derive an independent child stream; `tag` is hashed into the seed so the
  /// same tag always yields the same stream for a given parent seed.
  [[nodiscard]] Rng fork(std::string_view tag) const noexcept;

  /// Snapshot the generator mid-stream. Restoring the snapshot continues the
  /// exact draw sequence — the mechanism checkpoint/resume uses so a resumed
  /// run does not replay the fault history it already absorbed.
  [[nodiscard]] RngState state() const noexcept;
  /// Restore a snapshot taken with state(). An all-zero state (e.g. a
  /// default-constructed checkpoint) is unreachable by xoshiro and is
  /// replaced by the seed-0 state instead of wedging the generator.
  void restore(const RngState& state) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double uniform01() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Log-uniform in [lo, hi); requires 0 < lo <= hi. Used for file-size mixes
  /// ("3 MB - 20 GB") where every decade should be represented.
  double log_uniform(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

 private:
  std::uint64_t s_[4];
};

/// FNV-1a 64-bit hash, used for stream forking and config fingerprints.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) noexcept;

}  // namespace eadt
