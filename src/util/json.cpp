#include "util/json.hpp"

#include <array>
#include <cstdio>
#include <ostream>

namespace eadt {
namespace {

/// The two-character escape for `c`, or 0 when `c` needs no / a \u escape.
constexpr char short_escape(char c) noexcept {
  switch (c) {
    case '"': return '"';
    case '\\': return '\\';
    case '\b': return 'b';
    case '\f': return 'f';
    case '\n': return 'n';
    case '\r': return 'r';
    case '\t': return 't';
    default: return 0;
  }
}

constexpr bool needs_escape(char c) noexcept {
  return static_cast<unsigned char>(c) < 0x20 || c == '"' || c == '\\';
}

void append_escaped(std::string& out, char c) {
  if (const char e = short_escape(c)) {
    out += '\\';
    out += e;
  } else {
    std::array<char, 8> buf{};
    std::snprintf(buf.data(), buf.size(), "\\u%04x", static_cast<unsigned char>(c));
    out += buf.data();
  }
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::size_t clean = 0;
  while (clean < s.size() && !needs_escape(s[clean])) ++clean;
  if (clean == s.size()) return std::string(s);

  std::string out;
  out.reserve(s.size() + 8);
  out.append(s.substr(0, clean));
  for (std::size_t i = clean; i < s.size(); ++i) {
    if (needs_escape(s[i])) {
      append_escaped(out, s[i]);
    } else {
      out += s[i];
    }
  }
  return out;
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"' << json_escape(s) << '"';
}

}  // namespace eadt
