#include "core/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "obs/obs.hpp"

namespace eadt::core {
namespace {

__attribute__((format(printf, 1, 2))) std::string strf(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

/// The dataset partition every planner starts from, as one decision record.
void log_partition(obs::DecisionLog* log, const char* actor,
                   const proto::TransferPlan& plan) {
  if (log == nullptr) return;
  obs::Decision d;
  d.kind = obs::DecisionKind::kPlanPartition;
  d.actor = actor;
  d.subject = strf("partitioned dataset into %zu chunk(s)", plan.chunks.size());
  std::string detail;
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    const auto& c = plan.chunks[i];
    detail += strf("%s%s: %zu files, %.2f GB, pp=%d, p=%d", i ? "; " : "",
                   proto::to_string(c.cls), c.file_ids.size(), to_gb(c.total),
                   plan.params[i].pipelining, plan.params[i].parallelism);
  }
  d.detail = std::move(detail);
  log->record(std::move(d));
}

}  // namespace

proto::TransferPlan tuned_chunk_plan(const proto::Environment& env,
                                     const proto::Dataset& dataset,
                                     obs::DecisionLog* log) {
  const Bytes bdp = env.bdp();
  proto::TransferPlan plan;
  plan.chunks = proto::merge_chunks(proto::partition_files(dataset, bdp));
  plan.params.resize(plan.chunks.size());
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    const Bytes avg = plan.chunks[i].avg_file_size();
    plan.params[i].pipelining = pipelining_level(bdp, avg);
    plan.params[i].parallelism = parallelism_level(bdp, avg, env.path.tcp_buffer);
    plan.params[i].channels = 0;
    if (log != nullptr) {
      obs::Decision d;
      d.kind = obs::DecisionKind::kPlanTune;
      d.actor = "Tuner";
      d.level = plan.params[i].pipelining;
      d.chosen = plan.params[i].parallelism;
      d.subject = strf("%s chunk tuned: pp=%d, p=%d", proto::to_string(plan.chunks[i].cls),
                       plan.params[i].pipelining, plan.params[i].parallelism);
      d.detail = strf("avg file %.1f MB vs BDP %.1f MB: pipelining ceil(BDP/avg), "
                      "parallelism from BDP/buffer (tcp_buffer %.1f MB)",
                      to_mb(avg), to_mb(bdp), to_mb(env.path.tcp_buffer));
      log->record(std::move(d));
    }
  }
  return plan;
}

proto::TransferPlan plan_min_energy(const proto::Environment& env,
                                    const proto::Dataset& dataset, int max_channels,
                                    obs::DecisionLog* log) {
  proto::TransferPlan plan = tuned_chunk_plan(env, dataset, log);
  log_partition(log, "MinE", plan);
  const Bytes bdp = env.bdp();
  int avail = std::max(1, max_channels);
  // Algorithm 1's loop runs Small -> Large; partition_files already returns
  // chunks in that order. Small chunks grab ceil((avail+1)/2) first, the
  // Large chunk's ceil(BDP/avg) term pins it to one channel.
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    const int cc = concurrency_level(bdp, plan.chunks[i].avg_file_size(), avail);
    plan.params[i].channels = cc;
    avail -= cc;
    if (log != nullptr) {
      obs::Decision d;
      d.kind = obs::DecisionKind::kPlanChannelWalk;
      d.actor = "MinE";
      d.level = cc;
      d.chosen = cc;
      d.subject = strf("%s chunk gets %d channel(s)", proto::to_string(plan.chunks[i].cls), cc);
      d.detail = strf("channel walk Small->Large: avg file %.1f MB vs BDP %.1f MB, %d left",
                      to_mb(plan.chunks[i].avg_file_size()), to_mb(bdp), std::max(0, avail));
      log->record(std::move(d));
    }
  }
  plan.placement = proto::Placement::kPacked;
  plan.steal = proto::StealPolicy::kNonLargeOnly;
  plan.sequential_chunks = false;
  return plan;
}

proto::TransferPlan plan_htee(const proto::Environment& env,
                              const proto::Dataset& dataset, int max_channels,
                              obs::DecisionLog* log) {
  proto::TransferPlan plan = tuned_chunk_plan(env, dataset, log);
  log_partition(log, "HTEE", plan);
  const auto alloc =
      allocate_channels_by_weight(plan.chunks, std::max(1, max_channels),
                                  /*ensure_total=*/false);
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    plan.params[i].channels = alloc[i];
  }
  plan.placement = proto::Placement::kPacked;
  plan.steal = proto::StealPolicy::kAll;
  plan.sequential_chunks = false;
  return plan;
}

void HteeController::on_sample(proto::TransferSession& session,
                               const proto::SampleStats& stats) {
  if (!searching_) return;
  // A dead window — zero duration, or zero throughput during an injected
  // outage — carries no signal about the probe level. Evaluating it would
  // record a bogus 0 ratio and advance the search; hold the probe instead
  // and score the level on its next live window.
  if (stats.duration() <= 0.0 || stats.bytes == 0) return;
  // Evaluate the probe that just ran.
  const double ratio = stats.throughput_per_joule();
  if (!std::isfinite(ratio)) return;
  const bool best = ratio > best_ratio_;
  if (best) {
    best_ratio_ = ratio;
    chosen_level_ = probe_level_;
  }
  obs::ObsSinks* obs = session.observation();
  if (obs != nullptr) {
    const double mbps = to_mbps(stats.throughput());
    if (obs->metrics != nullptr) obs->metrics->counter("algo.htee.probes").add(1);
    if (obs->trace != nullptr) {
      // The probe span covers the sampling window that was just scored.
      const char* name =
          obs->trace->intern(strf("HTEE probe cc=%d", probe_level_));
      obs->trace->begin(stats.window_start, obs::kControlTid, name, "htee",
                        {"throughput_mbps", mbps}, {"ratio", ratio});
      obs->trace->end(stats.window_end, obs::kControlTid);
    }
    if (obs->decisions != nullptr) {
      obs::Decision d;
      d.at = stats.window_end;
      d.kind = obs::DecisionKind::kHteeProbe;
      d.actor = "HTEE";
      d.level = probe_level_;
      d.chosen = chosen_level_;
      d.measured_mbps = mbps;
      d.ratio = ratio;
      d.subject = strf("probe cc=%d", probe_level_);
      d.detail = best ? strf("%.1f Mbps, ratio %.4g bps/J — best so far", mbps, ratio)
                      : strf("%.1f Mbps, ratio %.4g bps/J — below cc=%d's %.4g", mbps,
                             ratio, chosen_level_, best_ratio_);
      obs->decisions->record(std::move(d));
    }
  }
  probe_level_ += stride_;  // paper stride 2 halves the search space: 1, 3, 5, ...
  if (probe_level_ > max_channels_) {
    searching_ = false;
    session.set_total_concurrency(chosen_level_);
    if (obs != nullptr) {
      if (obs->trace != nullptr) {
        obs->trace->instant(stats.window_end, obs::kControlTid, "HTEE chose level",
                            "htee", {"cc", static_cast<double>(chosen_level_)},
                            {"ratio", best_ratio_});
      }
      if (obs->decisions != nullptr) {
        obs::Decision d;
        d.at = stats.window_end;
        d.kind = obs::DecisionKind::kHteeChoose;
        d.actor = "HTEE";
        d.level = chosen_level_;
        d.chosen = chosen_level_;
        d.ratio = best_ratio_;
        d.subject = strf("search done: run at cc=%d", chosen_level_);
        d.detail = strf("best throughput/energy ratio %.4g bps/J across %d probe(s)",
                        best_ratio_, probe_count());
        obs->decisions->record(std::move(d));
      }
    }
  } else {
    session.set_total_concurrency(probe_level_);
  }
}

proto::TransferPlan plan_slaee(const proto::Environment& env,
                               const proto::Dataset& dataset, int max_channels,
                               obs::DecisionLog* log) {
  proto::TransferPlan plan = tuned_chunk_plan(env, dataset, log);
  log_partition(log, "SLAEE", plan);
  // Small chunks get channel priority (HTEE weights); the Large chunk's
  // one-channel restriction is enforced at runtime via the large-chunk cap so
  // reArrangeChannels can lift it.
  const auto alloc = allocate_channels_by_weight(plan.chunks, std::max(1, max_channels),
                                                 /*ensure_total=*/true);
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    plan.params[i].channels = alloc[i];
  }
  plan.placement = proto::Placement::kPacked;
  plan.steal = proto::StealPolicy::kAll;
  plan.sequential_chunks = false;
  return plan;
}

void SlaeeController::on_start(proto::TransferSession& session) {
  session.set_large_chunk_cap(1);
}

void SlaeeController::on_sample(proto::TransferSession& session,
                                const proto::SampleStats& stats) {
  if (!warmed_up_) {
    // The first window is cold (slow-start, channel setup); acting on it
    // would jump to a needlessly high level that then cannot be walked back.
    warmed_up_ = true;
    return;
  }
  const BitsPerSecond raw = stats.throughput();
  if (raw <= 0.0) return;
  // Exponentially smoothed throughput: a transfer's rate breathes as the
  // chunk mix shifts; reacting to a single window's dip walks the level all
  // the way to the maximum for targets that are actually satisfied.
  smoothed_ = smoothed_ > 0.0 ? 0.6 * smoothed_ + 0.4 * raw : raw;
  const BitsPerSecond act = smoothed_;
  // A whisker below target is within the SLA's own deviation allowance.
  if (act >= target_ * (1.0 - kDeficitTolerance)) {
    consecutive_deficits_ = 0;
    return;
  }
  // Drain guard: when less than a couple of windows' worth of data remains,
  // a low reading just means the transfer is finishing — don't escalate.
  const double window_bytes = target_ * stats.duration() / 8.0;
  if (static_cast<double>(session.bytes_remaining()) < 2.0 * window_bytes) return;
  // Hysteresis: act on a sustained deficit, not a single noisy window (file
  // boundaries can make one window read low); there is no way back down.
  if (++consecutive_deficits_ < 2) return;
  consecutive_deficits_ = 0;

  obs::ObsSinks* obs = session.observation();
  const double deficit_pct = 100.0 * (1.0 - act / target_);
  const auto note = [&](obs::DecisionKind kind, int from_level, std::string subject,
                        std::string detail) {
    if (obs == nullptr) return;
    if (obs->metrics != nullptr) {
      obs->metrics
          ->counter(kind == obs::DecisionKind::kSlaeeJump        ? "algo.slaee.jumps"
                    : kind == obs::DecisionKind::kSlaeeStep      ? "algo.slaee.steps"
                                                                 : "algo.slaee.rearranges")
          .add(1);
    }
    if (obs->trace != nullptr) {
      obs->trace->instant(stats.window_end, obs::kControlTid,
                          obs->trace->intern(subject), "slaee",
                          {"measured_mbps", to_mbps(act)},
                          {"target_mbps", to_mbps(target_)});
    }
    if (obs->decisions != nullptr) {
      obs::Decision d;
      d.at = stats.window_end;
      d.kind = kind;
      d.actor = "SLAEE";
      d.level = from_level;
      d.chosen = level_;
      d.measured_mbps = to_mbps(act);
      d.target_mbps = to_mbps(target_);
      d.subject = std::move(subject);
      d.detail = std::move(detail);
      obs->decisions->record(std::move(d));
    }
  };

  if (!first_adjustment_done_ && level_ < max_channels_) {
    // Line 11: estimate the needed level from the throughput deficit.
    first_adjustment_done_ = true;
    const int from = level_;
    const double jump = std::ceil(target_ / act * static_cast<double>(level_));
    level_ = std::clamp(static_cast<int>(jump), level_ + 1, max_channels_);
    session.set_total_concurrency(level_);
    smoothed_ = 0.0;  // the level changed: start a fresh estimate
    note(obs::DecisionKind::kSlaeeJump, from, strf("jump cc %d -> %d", from, level_),
         strf("%.1f%% below target for 2 windows; ceil(target/actual * %d) = %d", deficit_pct,
              from, static_cast<int>(jump)));
    return;
  }
  if (level_ < max_channels_) {
    const int from = level_;
    ++level_;
    session.set_total_concurrency(level_);
    smoothed_ = 0.0;
    note(obs::DecisionKind::kSlaeeStep, from, strf("step cc %d -> %d", from, level_),
         strf("still %.1f%% below target after the jump; single-step increment", deficit_pct));
  } else if (!rearranged_) {
    // Line 18: reArrangeChannels — let the Large chunk hold several channels.
    rearranged_ = true;
    session.set_large_chunk_cap(std::nullopt);
    note(obs::DecisionKind::kSlaeeRearrange, level_, strf("reArrangeChannels at cc=%d", level_),
         strf("%.1f%% below target at the channel cap; lifting the Large chunk's "
              "one-channel restriction", deficit_pct));
  }
}

}  // namespace eadt::core
