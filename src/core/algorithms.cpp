#include "core/algorithms.hpp"

#include <algorithm>
#include <cmath>

namespace eadt::core {

proto::TransferPlan tuned_chunk_plan(const proto::Environment& env,
                                     const proto::Dataset& dataset) {
  const Bytes bdp = env.bdp();
  proto::TransferPlan plan;
  plan.chunks = proto::merge_chunks(proto::partition_files(dataset, bdp));
  plan.params.resize(plan.chunks.size());
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    const Bytes avg = plan.chunks[i].avg_file_size();
    plan.params[i].pipelining = pipelining_level(bdp, avg);
    plan.params[i].parallelism = parallelism_level(bdp, avg, env.path.tcp_buffer);
    plan.params[i].channels = 0;
  }
  return plan;
}

proto::TransferPlan plan_min_energy(const proto::Environment& env,
                                    const proto::Dataset& dataset, int max_channels) {
  proto::TransferPlan plan = tuned_chunk_plan(env, dataset);
  const Bytes bdp = env.bdp();
  int avail = std::max(1, max_channels);
  // Algorithm 1's loop runs Small -> Large; partition_files already returns
  // chunks in that order. Small chunks grab ceil((avail+1)/2) first, the
  // Large chunk's ceil(BDP/avg) term pins it to one channel.
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    const int cc = concurrency_level(bdp, plan.chunks[i].avg_file_size(), avail);
    plan.params[i].channels = cc;
    avail -= cc;
  }
  plan.placement = proto::Placement::kPacked;
  plan.steal = proto::StealPolicy::kNonLargeOnly;
  plan.sequential_chunks = false;
  return plan;
}

proto::TransferPlan plan_htee(const proto::Environment& env,
                              const proto::Dataset& dataset, int max_channels) {
  proto::TransferPlan plan = tuned_chunk_plan(env, dataset);
  const auto alloc =
      allocate_channels_by_weight(plan.chunks, std::max(1, max_channels),
                                  /*ensure_total=*/false);
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    plan.params[i].channels = alloc[i];
  }
  plan.placement = proto::Placement::kPacked;
  plan.steal = proto::StealPolicy::kAll;
  plan.sequential_chunks = false;
  return plan;
}

void HteeController::on_sample(proto::TransferSession& session,
                               const proto::SampleStats& stats) {
  if (!searching_) return;
  // A dead window — zero duration, or zero throughput during an injected
  // outage — carries no signal about the probe level. Evaluating it would
  // record a bogus 0 ratio and advance the search; hold the probe instead
  // and score the level on its next live window.
  if (stats.duration() <= 0.0 || stats.bytes == 0) return;
  // Evaluate the probe that just ran.
  const double ratio = stats.throughput_per_joule();
  if (!std::isfinite(ratio)) return;
  if (ratio > best_ratio_) {
    best_ratio_ = ratio;
    chosen_level_ = probe_level_;
  }
  probe_level_ += stride_;  // paper stride 2 halves the search space: 1, 3, 5, ...
  if (probe_level_ > max_channels_) {
    searching_ = false;
    session.set_total_concurrency(chosen_level_);
  } else {
    session.set_total_concurrency(probe_level_);
  }
}

proto::TransferPlan plan_slaee(const proto::Environment& env,
                               const proto::Dataset& dataset, int max_channels) {
  proto::TransferPlan plan = tuned_chunk_plan(env, dataset);
  // Small chunks get channel priority (HTEE weights); the Large chunk's
  // one-channel restriction is enforced at runtime via the large-chunk cap so
  // reArrangeChannels can lift it.
  const auto alloc = allocate_channels_by_weight(plan.chunks, std::max(1, max_channels),
                                                 /*ensure_total=*/true);
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    plan.params[i].channels = alloc[i];
  }
  plan.placement = proto::Placement::kPacked;
  plan.steal = proto::StealPolicy::kAll;
  plan.sequential_chunks = false;
  return plan;
}

void SlaeeController::on_start(proto::TransferSession& session) {
  session.set_large_chunk_cap(1);
}

void SlaeeController::on_sample(proto::TransferSession& session,
                                const proto::SampleStats& stats) {
  if (!warmed_up_) {
    // The first window is cold (slow-start, channel setup); acting on it
    // would jump to a needlessly high level that then cannot be walked back.
    warmed_up_ = true;
    return;
  }
  const BitsPerSecond raw = stats.throughput();
  if (raw <= 0.0) return;
  // Exponentially smoothed throughput: a transfer's rate breathes as the
  // chunk mix shifts; reacting to a single window's dip walks the level all
  // the way to the maximum for targets that are actually satisfied.
  smoothed_ = smoothed_ > 0.0 ? 0.6 * smoothed_ + 0.4 * raw : raw;
  const BitsPerSecond act = smoothed_;
  // A whisker below target is within the SLA's own deviation allowance.
  if (act >= target_ * (1.0 - kDeficitTolerance)) {
    consecutive_deficits_ = 0;
    return;
  }
  // Drain guard: when less than a couple of windows' worth of data remains,
  // a low reading just means the transfer is finishing — don't escalate.
  const double window_bytes = target_ * stats.duration() / 8.0;
  if (static_cast<double>(session.bytes_remaining()) < 2.0 * window_bytes) return;
  // Hysteresis: act on a sustained deficit, not a single noisy window (file
  // boundaries can make one window read low); there is no way back down.
  if (++consecutive_deficits_ < 2) return;
  consecutive_deficits_ = 0;

  if (!first_adjustment_done_ && level_ < max_channels_) {
    // Line 11: estimate the needed level from the throughput deficit.
    first_adjustment_done_ = true;
    const double jump = std::ceil(target_ / act * static_cast<double>(level_));
    level_ = std::clamp(static_cast<int>(jump), level_ + 1, max_channels_);
    session.set_total_concurrency(level_);
    smoothed_ = 0.0;  // the level changed: start a fresh estimate
    return;
  }
  if (level_ < max_channels_) {
    ++level_;
    session.set_total_concurrency(level_);
    smoothed_ = 0.0;
  } else if (!rearranged_) {
    // Line 18: reArrangeChannels — let the Large chunk hold several channels.
    rearranged_ = true;
    session.set_large_chunk_cap(std::nullopt);
  }
}

}  // namespace eadt::core
