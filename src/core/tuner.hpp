// The application-layer parameter formulas shared by the paper's algorithms
// (Algorithm 1, lines 8-10):
//
//   pipelining  = ceil(BDP / avgFileSize)
//   parallelism = max(min(ceil(BDP / bufSize), ceil(avgFileSize / bufSize)), 1)
//   concurrency = min(ceil(BDP / avgFileSize), ceil((availChannel + 1) / 2))
//
// Small chunks get deep pipelining (many small commands in flight) and a
// single stream; Large chunks get parallelism sized to fill the pipe when the
// TCP buffer is below the BDP, and shallow pipelining.
#pragma once

#include <vector>

#include "proto/dataset.hpp"
#include "util/units.hpp"

namespace eadt::core {

/// Defensive ceiling on pipelining depth (the formula is unbounded as
/// avgFileSize -> 0; real control channels cap outstanding commands).
inline constexpr int kMaxPipelining = 512;

[[nodiscard]] int pipelining_level(Bytes bdp, Bytes avg_file_size);
[[nodiscard]] int parallelism_level(Bytes bdp, Bytes avg_file_size, Bytes buffer_size);
[[nodiscard]] int concurrency_level(Bytes bdp, Bytes avg_file_size, int avail_channels);

/// HTEE / ProMC chunk weights (Algorithm 2, lines 7-12):
///   weight_i = log(size_i) * log(fileCount_i), normalised;
///   channels_i = floor(maxChannel * weight_i).
/// `ensure_total` redistributes the flooring remainder (largest fractional
/// part first) so the counts sum to max_channels — ProMC uses the full budget,
/// HTEE's paper-faithful allocation (floor only) passes false.
[[nodiscard]] std::vector<double> chunk_weights(const std::vector<proto::Chunk>& chunks);
[[nodiscard]] std::vector<int> allocate_channels_by_weight(
    const std::vector<proto::Chunk>& chunks, int max_channels, bool ensure_total);

}  // namespace eadt::core
