// The paper's three energy-aware transfer algorithms.
//
//   MinE  (Algorithm 1) — static plan: BDP partitioning, per-chunk tuned
//          parameters, channel budget walked Small -> Large with the Large
//          chunk pinned to (at most) one channel; freed channels help only
//          the non-Large chunks.
//   HTEE  (Algorithm 2) — HTEE weights for channel allocation plus an online
//          concurrency search (1, 3, 5, ... <= maxChannel, one 5-second probe
//          each); the level with the best throughput/energy ratio runs the
//          remainder of the transfer.
//   SLAEE (Algorithm 3) — starts at concurrency 1, jump-estimates the level
//          needed to hit the SLA target throughput, then increments; at the
//          channel cap it "re-arranges" (releases the Large chunk's
//          single-channel restriction).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/tuner.hpp"
#include "proto/environment.hpp"
#include "proto/plan.hpp"
#include "proto/session.hpp"

namespace eadt::obs {
class DecisionLog;
}  // namespace eadt::obs

namespace eadt::core {

/// Chunk layout shared by every BDP-aware algorithm: partition by BDP, merge
/// undersized chunks, compute tuned pipelining/parallelism per chunk.
/// A non-null `log` records one kPlanTune decision per chunk explaining the
/// pipelining/parallelism choice (the BDP-vs-file-size rule it came from).
[[nodiscard]] proto::TransferPlan tuned_chunk_plan(const proto::Environment& env,
                                                   const proto::Dataset& dataset,
                                                   obs::DecisionLog* log = nullptr);

/// Algorithm 1. `max_channels` is the paper's maxChannel input. A non-null
/// `log` records the partition and the Small->Large channel walk (MODEL.md
/// §12); planning decisions are stamped at t = 0.
[[nodiscard]] proto::TransferPlan plan_min_energy(const proto::Environment& env,
                                                  const proto::Dataset& dataset,
                                                  int max_channels,
                                                  obs::DecisionLog* log = nullptr);

/// Algorithm 2 static part: weighted channel allocation at `max_channels`.
[[nodiscard]] proto::TransferPlan plan_htee(const proto::Environment& env,
                                            const proto::Dataset& dataset,
                                            int max_channels,
                                            obs::DecisionLog* log = nullptr);

/// Algorithm 2 dynamic part: the concurrency search.
class HteeController final : public proto::Controller {
 public:
  /// `stride` = 2 reproduces the paper (probe 1, 3, 5, ...): it halves the
  /// search space at the cost of possibly missing an even optimum. 1 probes
  /// every level (the ablation baseline).
  explicit HteeController(int max_channels, int stride = 2)
      : max_channels_(max_channels), stride_(std::max(1, stride)) {}

  std::optional<int> initial_concurrency() override { return 1; }
  void on_sample(proto::TransferSession& session, const proto::SampleStats& stats) override;

  /// The concurrency level the search settled on (meaningful once the search
  /// phase has finished; equals the running level before that).
  [[nodiscard]] int chosen_level() const noexcept { return chosen_level_; }
  [[nodiscard]] bool search_finished() const noexcept { return !searching_; }

  /// Number of probe windows the search will spend (for overhead ablations).
  [[nodiscard]] int probe_count() const noexcept {
    return (max_channels_ - 1) / stride_ + 1;
  }

 private:
  int max_channels_;
  int stride_;
  bool searching_ = true;
  int probe_level_ = 1;
  int chosen_level_ = 1;
  double best_ratio_ = -1.0;
};

/// Algorithm 3 static part: tuned parameters, Small-priority weights, Large
/// chunk restricted to one channel until re-arrangement.
[[nodiscard]] proto::TransferPlan plan_slaee(const proto::Environment& env,
                                             const proto::Dataset& dataset,
                                             int max_channels,
                                             obs::DecisionLog* log = nullptr);

class SlaeeController final : public proto::Controller {
 public:
  /// `target_throughput` = SLALevel * maxThroughput (paper line 6).
  SlaeeController(BitsPerSecond target_throughput, int max_channels)
      : target_(target_throughput), max_channels_(max_channels) {}

  std::optional<int> initial_concurrency() override { return 1; }
  void on_start(proto::TransferSession& session) override;
  void on_sample(proto::TransferSession& session, const proto::SampleStats& stats) override;

  [[nodiscard]] int final_level() const noexcept { return level_; }
  [[nodiscard]] bool rearranged() const noexcept { return rearranged_; }

 private:
  /// Shortfall fraction treated as "met" (within the SLA's own deviation).
  static constexpr double kDeficitTolerance = 0.02;

  BitsPerSecond target_;
  int max_channels_;
  BitsPerSecond smoothed_ = 0.0;
  int level_ = 1;
  bool warmed_up_ = false;
  bool first_adjustment_done_ = false;
  bool rearranged_ = false;
  int consecutive_deficits_ = 0;
};

}  // namespace eadt::core
