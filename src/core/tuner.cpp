#include "core/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace eadt::core {
namespace {

int ceil_div(Bytes a, Bytes b) {
  if (b == 0) return 1;
  return static_cast<int>((a + b - 1) / b);
}

}  // namespace

int pipelining_level(Bytes bdp, Bytes avg_file_size) {
  if (avg_file_size == 0) return kMaxPipelining;
  return std::clamp(ceil_div(bdp, avg_file_size), 1, kMaxPipelining);
}

int parallelism_level(Bytes bdp, Bytes avg_file_size, Bytes buffer_size) {
  if (buffer_size == 0) return 1;
  const int by_bdp = ceil_div(bdp, buffer_size);
  const int by_file = ceil_div(avg_file_size, buffer_size);
  return std::max(std::min(by_bdp, by_file), 1);
}

int concurrency_level(Bytes bdp, Bytes avg_file_size, int avail_channels) {
  const int by_size = avg_file_size == 0 ? avail_channels : ceil_div(bdp, avg_file_size);
  const int by_avail = (avail_channels + 1 + 1) / 2;  // ceil((avail + 1) / 2)
  return std::max(0, std::min(by_size, by_avail));
}

std::vector<double> chunk_weights(const std::vector<proto::Chunk>& chunks) {
  std::vector<double> w(chunks.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    // Guard the degenerate single-file / single-byte chunk: log() of <= 1
    // would zero or negate the weight.
    const double size = std::max<double>(2.0, static_cast<double>(chunks[i].total));
    const double count = std::max<double>(2.0, static_cast<double>(chunks[i].file_count()));
    w[i] = std::log(size) * std::log(count);
    total += w[i];
  }
  if (total > 0.0) {
    for (auto& v : w) v /= total;
  }
  return w;
}

std::vector<int> allocate_channels_by_weight(const std::vector<proto::Chunk>& chunks,
                                             int max_channels, bool ensure_total) {
  const auto weights = chunk_weights(chunks);
  std::vector<int> alloc(chunks.size(), 0);
  std::vector<std::pair<double, std::size_t>> fracs;
  int used = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const double share = static_cast<double>(max_channels) * weights[i];
    alloc[i] = static_cast<int>(std::floor(share));
    used += alloc[i];
    fracs.emplace_back(share - std::floor(share), i);
  }
  if (ensure_total) {
    std::sort(fracs.begin(), fracs.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    for (std::size_t k = 0; used < max_channels && k < fracs.size(); ++k, ++used) {
      ++alloc[fracs[k].second];
    }
  }
  return alloc;
}

}  // namespace eadt::core
