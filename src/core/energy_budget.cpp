#include "core/energy_budget.hpp"

#include <algorithm>

namespace eadt::core {

void EnergyBudgetController::on_sample(proto::TransferSession& session,
                                       const proto::SampleStats& stats) {
  spent_ += stats.end_system_energy;
  if (stats.bytes == 0) return;

  const double jpb = stats.end_system_energy / static_cast<double>(stats.bytes);
  smoothed_jpb_ = smoothed_jpb_ > 0.0 ? 0.6 * smoothed_jpb_ + 0.4 * jpb : jpb;
  projected_ =
      spent_ + smoothed_jpb_ * static_cast<double>(session.bytes_remaining());

  if (hold_ > 0) {
    // Give a fresh level a settle window before judging it: the first window
    // after a change mixes two operating points.
    --hold_;
    return;
  }

  auto move_to = [&](int level, bool saving_probe) {
    jpb_before_move_ = smoothed_jpb_;
    last_move_ = level - level_;
    probing_for_savings_ = saving_probe;
    level_ = std::clamp(level, 1, max_channels_);
    session.set_total_concurrency(level_);
    smoothed_jpb_ = 0.0;
    hold_ = 1;
  };

  // Energy per byte is U-shaped in the concurrency level (the Eq. 2 parabola
  // on multi-core DTNs; monotone on a thrashing single disk). A cost-cutting
  // probe that *raised* jpb gets reverted, and that direction is abandoned:
  // we are at the cheapest attainable operating point.
  if (probing_for_savings_ && jpb_before_move_ > 0.0) {
    probing_for_savings_ = false;
    if (smoothed_jpb_ > jpb_before_move_ * 1.02) {
      savings_blocked_ = true;
      move_to(level_ - last_move_, /*saving_probe=*/false);  // revert
      return;
    }
  }

  if (projected_ > budget_ * kHighWater) {
    if (savings_blocked_) return;  // cheapest point known; ride it out
    // Probe toward cheaper bytes: down in general, up out of the slow-and-
    // expensive level-1 corner.
    if (level_ > 1) {
      move_to(level_ - 1, /*saving_probe=*/true);
    } else if (level_ < max_channels_) {
      move_to(level_ + 1, /*saving_probe=*/true);
    }
  } else if (projected_ < budget_ * kLowWater && level_ < max_channels_) {
    move_to(level_ + 1, /*saving_probe=*/false);
  } else {
    last_move_ = 0;
  }
}

}  // namespace eadt::core
