#include "core/model_based.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace eadt::core {

std::optional<ThroughputCurve> fit_throughput_curve(
    std::span<const std::pair<int, double>> probes) {
  // Linearise: 1/T = 1/t_max + (k/t_max)*(1/c); fit y = a + b*x.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  int distinct = 0;
  int last_level = -1;
  for (const auto& [level, thr] : probes) {
    if (level <= 0 || thr <= 0.0) continue;
    rows.push_back({1.0, 1.0 / static_cast<double>(level)});
    y.push_back(1.0 / thr);
    if (level != last_level) {
      ++distinct;
      last_level = level;
    }
  }
  if (distinct < 2) return std::nullopt;
  const auto fit = fit_linear(rows, y);
  if (!fit) return std::nullopt;
  const double a = fit->coefficients[0];  // 1/t_max
  const double b = fit->coefficients[1];  // k/t_max
  if (a <= 0.0) return std::nullopt;      // non-saturating / decreasing data
  ThroughputCurve curve;
  curve.t_max = 1.0 / a;
  curve.k = std::max(0.0, b / a);
  return curve;
}

std::optional<PowerCurve> fit_power_curve(
    std::span<const std::pair<int, double>> probes) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  int distinct = 0;
  int last_level = -1;
  for (const auto& [level, power] : probes) {
    if (level <= 0 || power <= 0.0) continue;
    const double c = static_cast<double>(level);
    rows.push_back({1.0, c, c * c});
    y.push_back(power);
    if (level != last_level) {
      ++distinct;
      last_level = level;
    }
  }
  if (distinct < 3) {
    // Fall back to a line through the data (p2 = 0) with two levels.
    if (distinct < 2) return std::nullopt;
    for (auto& r : rows) r.pop_back();
    const auto fit = fit_linear(rows, y);
    if (!fit) return std::nullopt;
    return PowerCurve{fit->coefficients[0], fit->coefficients[1], 0.0};
  }
  const auto fit = fit_linear(rows, y);
  if (!fit) return std::nullopt;
  return PowerCurve{fit->coefficients[0], fit->coefficients[1], fit->coefficients[2]};
}

int best_ratio_level(const ThroughputCurve& throughput, const PowerCurve& power,
                     int max_level, int fallback) {
  int best = fallback;
  double best_ratio = -1.0;
  for (int c = 1; c <= std::max(1, max_level); ++c) {
    const double t = throughput.predict(c);
    const double p = power.predict(c);
    if (t <= 0.0 || p <= 0.0) continue;
    const double ratio = t / p;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = c;
    }
  }
  return best;
}

ModelBasedController::ModelBasedController(int max_channels)
    : max_channels_(std::max(1, max_channels)) {
  const int mid = std::clamp((max_channels_ + 1) / 2, 1, max_channels_);
  probes_ = {1};
  if (mid > 1) probes_.push_back(mid);
  if (max_channels_ > mid) probes_.push_back(max_channels_);
}

void ModelBasedController::on_sample(proto::TransferSession& session,
                                     const proto::SampleStats& stats) {
  if (!searching_) return;
  if (!warmed_up_) {
    // The very first window is cold (slow start, channel setup) and would
    // bias the level-1 probe low; measure from the second window.
    warmed_up_ = true;
    return;
  }
  const int level = probes_[next_probe_];
  if (stats.bytes > 0 && stats.duration() > 0.0) {
    throughput_samples_.emplace_back(level, stats.throughput());
    power_samples_.emplace_back(level, stats.end_system_energy / stats.duration());
  }
  ++next_probe_;
  if (next_probe_ < probes_.size()) {
    session.set_total_concurrency(probes_[next_probe_]);
    return;
  }

  searching_ = false;
  // The saturating law only models *rising* throughput. On a thrashing
  // single disk throughput falls with the level; fitting would flatten the
  // curve and erase exactly the information that matters, so detect the
  // inversion and score the probes directly instead.
  bool decreasing = false;
  if (throughput_samples_.size() >= 2) {
    decreasing = throughput_samples_.back().second <
                 throughput_samples_.front().second * 0.9;
  }
  const auto t_curve =
      decreasing ? std::nullopt : fit_throughput_curve(throughput_samples_);
  const auto p_curve = fit_power_curve(power_samples_);
  if (t_curve && p_curve) {
    chosen_level_ = best_ratio_level(*t_curve, *p_curve, max_channels_, probes_.back());
  } else {
    // Degenerate probes (e.g. a LAN where throughput *falls* with level):
    // pick the best probed ratio directly.
    double best = -1.0;
    chosen_level_ = 1;
    for (std::size_t i = 0; i < throughput_samples_.size(); ++i) {
      const double ratio = throughput_samples_[i].second /
                           std::max(1e-9, power_samples_[i].second);
      if (ratio > best) {
        best = ratio;
        chosen_level_ = throughput_samples_[i].first;
      }
    }
  }
  session.set_total_concurrency(chosen_level_);
}

}  // namespace eadt::core
