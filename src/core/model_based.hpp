// Model-based concurrency tuning — an extension of HTEE in the direction the
// paper's related work points (model the parameter/throughput relationship
// instead of searching it).
//
// HTEE probes every other concurrency level (1, 3, 5, ... <= max), spending
// ~max/2 sampling windows before committing. But both response curves have
// known shapes:
//
//   throughput:  T(c) ~= Tmax * c / (c + k)        (saturating growth)
//   power:       P(c) ~= p0 + p1*c + p2*c^2        (contention quadratic)
//
// Three probes (1, mid, max) pin both curves, and the best
// throughput/power ratio is found analytically over the integer levels.
// The ModelBasedController spends 3 windows instead of HTEE's ~max/2 and is
// compared head-to-head in bench/model_based_tuning.
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "proto/plan.hpp"
#include "proto/session.hpp"

namespace eadt::core {

/// Saturating throughput curve T(c) = t_max * c / (c + k).
struct ThroughputCurve {
  double t_max = 0.0;
  double k = 0.0;

  [[nodiscard]] double predict(double c) const {
    return c > 0.0 && c + k > 0.0 ? t_max * c / (c + k) : 0.0;
  }
};

/// Least-squares fit of the saturating curve from (level, throughput) probes
/// via the linearisation 1/T = 1/t_max + (k/t_max) * (1/c).
/// Needs >= 2 distinct levels with positive throughput; rejects degenerate
/// fits (non-positive t_max or k < 0 collapses to a flat line at max).
[[nodiscard]] std::optional<ThroughputCurve> fit_throughput_curve(
    std::span<const std::pair<int, double>> probes);

/// Quadratic power curve P(c) = p0 + p1*c + p2*c^2, least squares.
struct PowerCurve {
  double p0 = 0.0, p1 = 0.0, p2 = 0.0;
  [[nodiscard]] double predict(double c) const { return p0 + p1 * c + p2 * c * c; }
};

[[nodiscard]] std::optional<PowerCurve> fit_power_curve(
    std::span<const std::pair<int, double>> probes);

/// argmax over 1..max_level of T(c)/P(c); falls back to `fallback` when the
/// fits are unusable.
[[nodiscard]] int best_ratio_level(const ThroughputCurve& throughput,
                                   const PowerCurve& power, int max_level,
                                   int fallback = 1);

/// The runtime controller: probes {1, mid, max}, fits, commits.
class ModelBasedController final : public proto::Controller {
 public:
  explicit ModelBasedController(int max_channels);

  std::optional<int> initial_concurrency() override { return probes_[0]; }
  void on_sample(proto::TransferSession& session, const proto::SampleStats& stats) override;

  [[nodiscard]] int chosen_level() const noexcept { return chosen_level_; }
  [[nodiscard]] bool search_finished() const noexcept { return !searching_; }
  [[nodiscard]] int probe_count() const noexcept {
    return static_cast<int>(probes_.size());
  }

 private:
  int max_channels_;
  std::vector<int> probes_;
  std::size_t next_probe_ = 0;
  std::vector<std::pair<int, double>> throughput_samples_;
  std::vector<std::pair<int, double>> power_samples_;
  bool warmed_up_ = false;
  bool searching_ = true;
  int chosen_level_ = 1;
};

}  // namespace eadt::core
