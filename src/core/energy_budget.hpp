// Energy-budgeted transfers — an extension beyond the paper's three
// algorithms, in the spirit of its conclusion (providers selling transfer
// tiers priced in Joules rather than Mbps).
//
// EnergyBudgetController is the dual of SLAEE: instead of "hit this
// throughput with the least energy", it answers "move these bytes as fast as
// possible without the transfer costing more than B Joules". Every sampling
// window it projects the total end-system energy of finishing at the current
// concurrency level (spent + marginal-energy-per-byte x bytes left) and
// walks the level up while there is budget headroom, down when the
// projection overruns. Downshifts preempt channels mid-file, which the
// engine supports natively.
//
// Guarantees (asserted by tests):
//   * the transfer always completes (level never drops below 1, so an
//     infeasible budget degrades to the most frugal schedule instead of
//     starving);
//   * for feasible budgets the final spend stays within a small tolerance of
//     the cap;
//   * a larger budget never finishes (meaningfully) slower.
#pragma once

#include <optional>

#include "proto/plan.hpp"
#include "proto/session.hpp"

namespace eadt::core {

class EnergyBudgetController final : public proto::Controller {
 public:
  EnergyBudgetController(Joules budget, int max_channels)
      : budget_(budget), max_channels_(max_channels) {}

  std::optional<int> initial_concurrency() override { return 1; }
  void on_sample(proto::TransferSession& session, const proto::SampleStats& stats) override;

  [[nodiscard]] int final_level() const noexcept { return level_; }
  [[nodiscard]] Joules spent() const noexcept { return spent_; }
  /// Latest projection of the total energy at completion.
  [[nodiscard]] Joules projected_total() const noexcept { return projected_; }

 private:
  /// Headroom band: walk up below the lower edge, down above the upper edge.
  static constexpr double kLowWater = 0.85;
  static constexpr double kHighWater = 0.98;

  Joules budget_;
  int max_channels_;
  Joules spent_ = 0.0;
  Joules projected_ = 0.0;
  double smoothed_jpb_ = 0.0;  ///< marginal joules per byte, smoothed
  double jpb_before_move_ = 0.0;
  int level_ = 1;
  int hold_ = 0;        ///< settle windows after a level change
  int last_move_ = 0;   ///< -1/0/+1: direction of the last level change
  bool probing_for_savings_ = false;  ///< last move was a cost-cutting probe
  bool savings_blocked_ = false;      ///< probes failed: at the jpb minimum
};

}  // namespace eadt::core
