#include "proto/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

namespace eadt::proto {
namespace {

// Doubles round-trip bit-exactly through C99 hex-floats (%a / strtod);
// iostream's decimal formatting would lose the last ulp.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

struct Parser {
  std::istream& is;
  std::string* error;
  int line_no = 0;
  std::string line;
  std::istringstream fields;
  bool failed = false;
  bool held = false;  ///< current `line` was peeked by accept() and not consumed

  bool next_line() {
    if (held) {
      held = false;
      fields.clear();
      fields.str(line);
      return true;
    }
    while (std::getline(is, line)) {
      ++line_no;
      if (!line.empty() && line[0] != '#') {
        fields.clear();
        fields.str(line);
        return true;
      }
    }
    return false;
  }

  void fail(const std::string& reason) {
    if (!failed && error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + reason;
    }
    failed = true;
  }

  /// Advance to the next line and check its leading key.
  bool expect(const char* key) {
    if (failed) return false;
    if (!next_line()) {
      fail(std::string("expected '") + key + "', got end of input");
      return false;
    }
    std::string got;
    fields >> got;
    if (got != key) {
      fail(std::string("expected '") + key + "', got '" + got + "'");
      return false;
    }
    return true;
  }

  /// Consume the next line iff its leading key matches; otherwise hold the
  /// line for the following expect()/accept(). Lets readers skip optional
  /// keys so old journals (which omit them) still parse.
  bool accept(const char* key) {
    if (failed) return false;
    if (!next_line()) return false;
    std::string got;
    fields >> got;
    if (got != key) {
      held = true;
      return false;
    }
    return true;
  }

  double read_double() {
    std::string tok;
    fields >> tok;
    if (tok.empty()) {
      fail("missing numeric field");
      return 0.0;
    }
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number '" + tok + "'");
      return 0.0;
    }
    return v;
  }

  std::uint64_t read_u64() {
    std::uint64_t v = 0;
    if (!(fields >> v)) {
      fail("missing integer field");
      return 0;
    }
    return v;
  }

  std::int64_t read_i64() {
    std::int64_t v = 0;
    if (!(fields >> v)) {
      fail("missing integer field");
      return 0;
    }
    return v;
  }

  RngState read_rng() {
    RngState s{};
    for (auto& w : s) w = read_u64();
    return s;
  }
};

void write_rng(std::ostream& os, const char* key, const RngState& s) {
  os << key;
  for (const auto w : s) os << ' ' << w;
  os << '\n';
}

void write_ledgers(std::ostream& os, const char* key,
                   const std::vector<ServerLedgerEntry>& servers) {
  os << key << ' ' << servers.size() << '\n';
  for (const auto& s : servers) {
    // Names come from ServerSpec and contain no whitespace; written last so a
    // parser could tolerate spaces if that ever changes.
    os << "  " << fmt_double(s.joules) << ' ' << fmt_double(s.active_time) << ' '
       << s.name << '\n';
  }
}

std::vector<ServerLedgerEntry> read_ledgers(Parser& p, const char* key) {
  std::vector<ServerLedgerEntry> out;
  if (!p.expect(key)) return out;
  const std::uint64_t n = p.read_u64();
  for (std::uint64_t i = 0; i < n && !p.failed; ++i) {
    if (!p.next_line()) {
      p.fail("truncated server ledger");
      break;
    }
    ServerLedgerEntry e;
    e.joules = p.read_double();
    e.active_time = p.read_double();
    p.fields >> std::ws;
    std::getline(p.fields, e.name);
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace

Bytes TransferCheckpoint::delivered_bytes(const Dataset& dataset) const {
  Bytes total = 0;
  for (const std::uint32_t id : completed) {
    if (id < dataset.files.size()) total += dataset.files[id].size;
  }
  for (const auto& c : partial) total += c.delivered;
  return total;
}

std::uint64_t dataset_fingerprint(const Dataset& dataset) noexcept {
  // FNV-1a over the little-endian size stream, seeded with the file count so
  // e.g. {a+b} and {a, b} with a+b bytes do not collide trivially.
  std::uint64_t h = 0xCBF29CE484222325ULL ^ (dataset.files.size() * 0x9E3779B97F4A7C15ULL);
  for (const auto& f : dataset.files) {
    Bytes s = f.size;
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<unsigned char>(s & 0xFF);
      h *= 0x100000001B3ULL;
      s >>= 8;
    }
  }
  return h;
}

void write_checkpoint(std::ostream& os, const TransferCheckpoint& ckpt) {
  os << "eadt-checkpoint " << TransferCheckpoint::kFormatVersion << '\n'
     << "taken_at " << fmt_double(ckpt.taken_at) << '\n'
     << "dataset " << ckpt.dataset_fingerprint << '\n';
  // Optional: omitted when 0 so single-path journals keep the v1 byte layout.
  if (ckpt.path_id != 0) os << "path " << ckpt.path_id << '\n';
  os << "wire_bytes " << ckpt.wire_bytes << '\n'
     << "end_system_energy " << fmt_double(ckpt.end_system_energy) << '\n'
     << "network_energy " << fmt_double(ckpt.network_energy) << '\n';
  const auto& f = ckpt.faults;
  os << "faults " << f.retries << ' ' << f.channel_drops << ' ' << f.checksum_failures
     << ' ' << f.server_outages << ' ' << f.quarantined_channels << ' ' << f.wasted_bytes
     << ' ' << fmt_double(f.wasted_joules) << ' ' << fmt_double(f.channel_downtime)
     << ' ' << fmt_double(f.server_downtime) << '\n';
  os << "quarantined " << ckpt.quarantined_channels << '\n';
  os << "completed " << ckpt.completed.size();
  for (const auto id : ckpt.completed) os << ' ' << id;
  os << '\n';
  os << "partial " << ckpt.partial.size() << '\n';
  for (const auto& c : ckpt.partial) {
    os << "  " << c.file_id << ' ' << c.delivered << '\n';
  }
  os << "channels " << ckpt.channel_chunks.size();
  for (const auto c : ckpt.channel_chunks) os << ' ' << c;
  os << '\n';
  write_ledgers(os, "source_servers", ckpt.source_servers);
  write_ledgers(os, "destination_servers", ckpt.destination_servers);
  write_rng(os, "rng_jitter", ckpt.jitter_rng);
  write_rng(os, "rng_victim", ckpt.victim_rng);
  write_rng(os, "rng_backoff", ckpt.backoff_rng);
  write_rng(os, "rng_checksum", ckpt.checksum_rng);
}

std::optional<TransferCheckpoint> read_checkpoint(std::istream& is, std::string* error) {
  Parser p{is, error, 0, {}, {}, false};
  TransferCheckpoint c;
  if (!p.expect("eadt-checkpoint")) return std::nullopt;
  if (const auto v = p.read_i64(); v != TransferCheckpoint::kFormatVersion) {
    p.fail("unsupported checkpoint version " + std::to_string(v));
    return std::nullopt;
  }
  if (p.expect("taken_at")) c.taken_at = p.read_double();
  if (p.expect("dataset")) c.dataset_fingerprint = p.read_u64();
  if (p.accept("path")) c.path_id = static_cast<int>(p.read_i64());
  if (p.expect("wire_bytes")) c.wire_bytes = p.read_u64();
  if (p.expect("end_system_energy")) c.end_system_energy = p.read_double();
  if (p.expect("network_energy")) c.network_energy = p.read_double();
  if (p.expect("faults")) {
    auto& f = c.faults;
    f.retries = p.read_i64();
    f.channel_drops = p.read_i64();
    f.checksum_failures = p.read_i64();
    f.server_outages = p.read_i64();
    f.quarantined_channels = p.read_i64();
    f.wasted_bytes = p.read_u64();
    f.wasted_joules = p.read_double();
    f.channel_downtime = p.read_double();
    f.server_downtime = p.read_double();
  }
  if (p.expect("quarantined")) c.quarantined_channels = static_cast<int>(p.read_i64());
  if (p.expect("completed")) {
    const std::uint64_t n = p.read_u64();
    for (std::uint64_t i = 0; i < n && !p.failed; ++i) {
      c.completed.push_back(static_cast<std::uint32_t>(p.read_u64()));
    }
  }
  if (p.expect("partial")) {
    const std::uint64_t n = p.read_u64();
    for (std::uint64_t i = 0; i < n && !p.failed; ++i) {
      if (!p.next_line()) {
        p.fail("truncated partial-file list");
        break;
      }
      FileCursor cur;
      cur.file_id = static_cast<std::uint32_t>(p.read_u64());
      cur.delivered = p.read_u64();
      c.partial.push_back(cur);
    }
  }
  if (p.expect("channels")) {
    const std::uint64_t n = p.read_u64();
    for (std::uint64_t i = 0; i < n && !p.failed; ++i) {
      c.channel_chunks.push_back(static_cast<int>(p.read_i64()));
    }
  }
  c.source_servers = read_ledgers(p, "source_servers");
  c.destination_servers = read_ledgers(p, "destination_servers");
  if (p.expect("rng_jitter")) c.jitter_rng = p.read_rng();
  if (p.expect("rng_victim")) c.victim_rng = p.read_rng();
  if (p.expect("rng_backoff")) c.backoff_rng = p.read_rng();
  if (p.expect("rng_checksum")) c.checksum_rng = p.read_rng();
  if (p.failed) return std::nullopt;
  return c;
}

}  // namespace eadt::proto
