// Datasets, size classes and chunks.
//
// All of the paper's algorithms start by partitioning a mixed-size dataset
// into Small / Medium / Large chunks relative to the path's bandwidth-delay
// product, then merging chunks too small to be worth separate treatment
// (the mergeChunks subroutine of Algorithm 1).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace eadt::proto {

struct FileInfo {
  Bytes size = 0;
};

struct Dataset {
  std::vector<FileInfo> files;

  [[nodiscard]] Bytes total_bytes() const;
  [[nodiscard]] std::size_t count() const noexcept { return files.size(); }
};

/// One size band of a synthetic dataset recipe.
struct SizeBand {
  Bytes min_size = 0;
  Bytes max_size = 0;
  double byte_share = 0.0;  ///< fraction of the dataset's bytes in this band
};

/// Recipe for the engineered experiment datasets ("160 GB, 3 MB - 20 GB").
struct DatasetRecipe {
  std::string name;
  Bytes total_bytes = 0;
  std::vector<SizeBand> bands;  ///< byte_shares should sum to ~1
};

/// Draw file sizes log-uniformly inside each band until its byte share is
/// met. Deterministic for a given (recipe, rng).
[[nodiscard]] Dataset generate_dataset(const DatasetRecipe& recipe, Rng rng);

/// Load a dataset from a directory-listing-style text stream: one file per
/// line, `<size> [name...]`, where size accepts B/KB/MB/GB suffixes (see
/// parse_size). '#' comments and blank lines are skipped. Returns nullopt on
/// the first malformed line (reported via *error as "line N: ...").
[[nodiscard]] std::optional<Dataset> dataset_from_listing(std::istream& in,
                                                          std::string* error = nullptr);

enum class SizeClass { kSmall = 0, kMedium = 1, kLarge = 2 };
[[nodiscard]] const char* to_string(SizeClass c) noexcept;

/// BDP-relative class boundaries. Files under one BDP gain from pipelining;
/// files that dwarf it gain from parallel streams instead.
struct PartitionThresholds {
  double small_max_bdp = 1.0;   ///< size < small_max_bdp * BDP  -> Small
  double medium_max_bdp = 20.0; ///< size < medium_max_bdp * BDP -> Medium, else Large
};

struct Chunk {
  SizeClass cls = SizeClass::kSmall;
  std::vector<std::uint32_t> file_ids;  ///< indices into the Dataset
  Bytes total = 0;

  [[nodiscard]] Bytes avg_file_size() const {
    return file_ids.empty() ? 0 : total / file_ids.size();
  }
  [[nodiscard]] std::size_t file_count() const noexcept { return file_ids.size(); }
};

/// partitionFiles(files, BDP): classify every file; empty chunks are dropped.
/// Chunks come back ordered Small, Medium, Large (present ones only).
[[nodiscard]] std::vector<Chunk> partition_files(const Dataset& dataset, Bytes bdp,
                                                 const PartitionThresholds& thresholds = {});

/// mergeChunks: fold a chunk into its nearest surviving neighbour when it has
/// fewer than `min_files` files or under `min_byte_fraction` of total bytes.
/// The merged chunk keeps the neighbour's class. Never returns empty if the
/// input had any files.
[[nodiscard]] std::vector<Chunk> merge_chunks(std::vector<Chunk> chunks,
                                              std::size_t min_files = 2,
                                              double min_byte_fraction = 0.02);

}  // namespace eadt::proto
