#include "proto/session.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "net/fair_share.hpp"
#include "obs/obs.hpp"
#include "power/device.hpp"
#include "util/rng.hpp"

namespace eadt::proto {
namespace {

bool size_desc(const std::pair<Bytes, std::uint32_t>& a,
               const std::pair<Bytes, std::uint32_t>& b) {
  return a.first != b.first ? a.first > b.first : a.second < b.second;
}

}  // namespace

/// Per-run observability state: metric handles resolved once at run start
/// (so the tick-path publishes lock-free and allocation-free), plus the
/// trace bookkeeping for span lifetimes. Exists only while sinks are
/// attached — a plain session never constructs one.
struct TransferSession::ObsState {
  // Metric handles; null when no metrics sink is attached.
  obs::Counter* ticks = nullptr;
  obs::Counter* wire_bytes = nullptr;
  obs::Counter* goodput_bytes = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* checkpoint_writes = nullptr;
  obs::Counter* brownouts = nullptr;
  obs::Histogram* tick_goodput = nullptr;
  obs::Histogram* tick_power = nullptr;
  std::vector<obs::Counter*> chunk_bytes;  // per chunk, named by size class
  // Ledger baselines: a resumed leg restores cumulative totals, so run-level
  // metrics publish this leg's delta, not the whole transfer again.
  Bytes wire_at_start = 0;
  Bytes wasted_at_start = 0;
  std::int64_t retries_at_start = 0;
  // Trace bookkeeping.
  std::vector<const char*> lease_names;  // per chunk, interned once
  std::vector<char> chunk_open;          // chunk span currently open
  std::vector<char> chunk_busy;          // per-tick scratch
  std::vector<char> lane_used;           // channel-lease track allocator
  std::vector<double> chunk_energy;      // per-chunk energy share, this leg
  bool transfer_span_open = false;
  // Per-server power attribution: counter-track names (interned once) and
  // the joule ledger as of the previous sample, so each sample publishes the
  // window's average draw per server rather than the lifetime total.
  std::vector<const char*> src_power_names, dst_power_names;
  std::vector<double> src_joules_prev, dst_joules_prev;
};

TransferSession::~TransferSession() = default;

TransferSession::TransferSession(const Environment& env, const Dataset& dataset,
                                 TransferPlan plan, SessionConfig config)
    : TransferSession(nullptr, env, dataset, std::move(plan), config) {}

TransferSession::TransferSession(sim::Simulation& sim, const Environment& env,
                                 const Dataset& dataset, TransferPlan plan,
                                 SessionConfig config)
    : TransferSession(&sim, env, dataset, std::move(plan), config) {}

TransferSession::TransferSession(sim::Simulation* external, const Environment& env,
                                 const Dataset& dataset, TransferPlan plan,
                                 SessionConfig config)
    : env_(env), plan_(std::move(plan)), config_(config),
      owned_sim_(external != nullptr ? nullptr : std::make_unique<sim::Simulation>()),
      sim_(external != nullptr ? *external : *owned_sim_),
      jitter_rng_(env.jitter_seed),
      dataset_fingerprint_(proto::dataset_fingerprint(dataset)) {
  queues_.resize(plan_.chunks.size());
  chunk_remaining_.assign(plan_.chunks.size(), 0);
  for (std::size_t c = 0; c < plan_.chunks.size(); ++c) {
    std::vector<std::pair<Bytes, std::uint32_t>> order;
    order.reserve(plan_.chunks[c].file_ids.size());
    for (std::uint32_t id : plan_.chunks[c].file_ids) {
      order.emplace_back(dataset.files[id].size, id);
    }
    if (plan_.chunks[c].cls == SizeClass::kLarge) {
      // Largest-first: the bulk files that bound the makespan start first,
      // so no straggler begins near the end of the transfer.
      std::sort(order.begin(), order.end(), size_desc);
    } else {
      // Listing order is size-uncorrelated in practice; a deterministic
      // shuffle keeps per-window throughput homogeneous instead of
      // clustering all the tiniest files at the chunk's tail.
      Rng shuffle_rng(0xC0FFEEULL ^ static_cast<std::uint64_t>(c));
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[shuffle_rng.uniform_int(0, i - 1)]);
      }
    }
    for (const auto& [size, id] : order) {
      queues_[c].push_back({id, size, size});
      chunk_remaining_[c] += size;
      total_bytes_ += size;
    }
  }
  if (plan_.sequential_chunks) {
    // One chunk at a time: the concurrency in flight is the largest per-chunk
    // allocation, not the sum.
    int widest = 1;
    for (const auto& p : plan_.params) widest = std::max(widest, p.channels);
    target_concurrency_ = widest;
  } else {
    target_concurrency_ = std::max(1, plan_.total_channels());
  }
  for (const auto& s : env_.source.servers) src_energy_.push_back({s.name, 0.0, 0.0});
  for (const auto& s : env_.destination.servers) dst_energy_.push_back({s.name, 0.0, 0.0});
  src_srv_up_.assign(env_.source.servers.size(), 1);
  dst_srv_up_.assign(env_.destination.servers.size(), 1);
  src_srv_down_since_.assign(env_.source.servers.size(), 0.0);
  dst_srv_down_since_.assign(env_.destination.servers.size(), 0.0);
}

void TransferSession::set_fault_plan(FaultPlan plan) {
  faults_ = std::move(plan);
  const Rng root(faults_.seed);
  victim_rng_ = root.fork("victims");
  backoff_rng_ = root.fork("backoff");
  checksum_rng_ = root.fork("checksum");
}

TransferCheckpoint TransferSession::make_checkpoint() const {
  TransferCheckpoint c;
  // The run() guard can leave the event clock a fraction of a tick past the
  // deadline; clamp so resumed legs' time offsets chain consistently.
  c.taken_at = time_offset_ + std::min(local_now(), config_.max_sim_time);
  c.dataset_fingerprint = dataset_fingerprint_;
  c.path_id = config_.path_id;
  c.wire_bytes = bytes_moved_;
  c.end_system_energy = end_system_total_;
  c.network_energy = network_energy_;
  c.faults = fault_stats_;
  c.quarantined_channels = quarantined_;

  // Durable progress, keyed by file id: anything still queued or in flight is
  // pending; every other file of the plan has fully landed. The in-flight
  // prefix counts as delivered — the journal *is* the restart-marker store.
  std::unordered_map<std::uint32_t, const QueueEntry*> pending;
  for (const auto& q : queues_) {
    for (const auto& e : q) pending.emplace(e.file_id, &e);
  }
  for (const auto& ch : channels_) {
    if (ch.busy) pending.emplace(ch.work.file_id, &ch.work);
  }
  for (const auto& chunk : plan_.chunks) {
    for (const std::uint32_t id : chunk.file_ids) {
      const auto it = pending.find(id);
      if (it == pending.end()) {
        c.completed.push_back(id);
      } else if (it->second->remaining < it->second->size) {
        c.partial.push_back({id, it->second->size - it->second->remaining});
      }
    }
  }
  std::sort(c.completed.begin(), c.completed.end());
  std::sort(c.partial.begin(), c.partial.end(),
            [](const FileCursor& a, const FileCursor& b) { return a.file_id < b.file_id; });

  for (const auto& ch : channels_) c.channel_chunks.push_back(ch.chunk);
  for (const auto& s : src_energy_) c.source_servers.push_back({s.name, s.joules, s.active_time});
  for (const auto& s : dst_energy_) {
    c.destination_servers.push_back({s.name, s.joules, s.active_time});
  }
  c.jitter_rng = jitter_rng_.state();
  c.victim_rng = victim_rng_.state();
  c.backoff_rng = backoff_rng_.state();
  c.checksum_rng = checksum_rng_.state();
  return c;
}

bool TransferSession::resume_from(const TransferCheckpoint& checkpoint,
                                  std::string* error) {
  const auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  if (checkpoint.dataset_fingerprint != dataset_fingerprint_) {
    return fail("checkpoint was taken against a different dataset "
                "(fingerprint mismatch)");
  }
  if (checkpoint.source_servers.size() != src_energy_.size() ||
      checkpoint.destination_servers.size() != dst_energy_.size()) {
    return fail("checkpoint server ledgers do not match this environment");
  }

  std::unordered_set<std::uint32_t> completed(checkpoint.completed.begin(),
                                              checkpoint.completed.end());
  std::unordered_map<std::uint32_t, Bytes> delivered;
  for (const auto& cur : checkpoint.partial) delivered.emplace(cur.file_id, cur.delivered);

  // Rebuild the residual workload in place: landed files leave their queues,
  // partially delivered files shrink to their unlanded suffix. QueueEntry
  // keeps the full size, so per-file overheads and legacy full-retransmission
  // waste still see the real file.
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    std::deque<QueueEntry> residual;
    for (auto& e : queues_[c]) {
      if (completed.count(e.file_id) != 0) {
        chunk_remaining_[c] -= e.remaining;
        continue;
      }
      if (const auto it = delivered.find(e.file_id); it != delivered.end()) {
        const Bytes landed = std::min(it->second, e.remaining);
        e.remaining -= landed;
        chunk_remaining_[c] -= landed;
        if (e.remaining == 0) continue;  // cursor at EOF: effectively landed
      }
      residual.push_back(e);
    }
    queues_[c] = std::move(residual);
  }

  bytes_moved_ = checkpoint.wire_bytes;
  end_system_total_ = checkpoint.end_system_energy;
  network_energy_ = checkpoint.network_energy;
  fault_stats_ = checkpoint.faults;
  quarantined_ = checkpoint.quarantined_channels;
  for (std::size_t s = 0; s < src_energy_.size(); ++s) {
    src_energy_[s].joules = checkpoint.source_servers[s].joules;
    src_energy_[s].active_time = checkpoint.source_servers[s].active_time;
  }
  for (std::size_t s = 0; s < dst_energy_.size(); ++s) {
    dst_energy_[s].joules = checkpoint.destination_servers[s].joules;
    dst_energy_[s].active_time = checkpoint.destination_servers[s].active_time;
  }
  // Continue the stochastic history instead of replaying it (set_fault_plan
  // reseeded these; resume must run after it).
  jitter_rng_.restore(checkpoint.jitter_rng);
  victim_rng_.restore(checkpoint.victim_rng);
  backoff_rng_.restore(checkpoint.backoff_rng);
  checksum_rng_.restore(checkpoint.checksum_rng);
  time_offset_ = checkpoint.taken_at;
  return true;
}

Seconds TransferSession::now() const noexcept { return local_now(); }

Bytes TransferSession::bytes_remaining() const noexcept {
  // Clamped: wire bytes include fault retransmissions, so under heavy waste
  // (or after a resume restored a prior leg's wire total) moved can pass the
  // dataset size before the last unique byte lands.
  return bytes_moved_ >= total_bytes_ ? 0 : total_bytes_ - bytes_moved_;
}

void TransferSession::set_total_concurrency(int n) {
  target_concurrency_ = std::max(1, n);
}

void TransferSession::set_large_chunk_cap(std::optional<int> cap) { large_cap_ = cap; }

bool TransferSession::chunk_live(int chunk) const {
  if (chunk < 0 || static_cast<std::size_t>(chunk) >= queues_.size()) return false;
  if (!queues_[static_cast<std::size_t>(chunk)].empty()) return true;
  return std::any_of(channels_.begin(), channels_.end(), [chunk](const Channel& ch) {
    return ch.chunk == chunk && ch.busy;
  });
}

const std::vector<int>& TransferSession::desired_allocation() {
  const std::size_t n_chunks = plan_.chunks.size();
  auto& desired = scratch_.desired;
  desired.assign(n_chunks, 0);
  const int total = effective_concurrency();

  auto& busy_count = scratch_.busy_count;
  busy_count.assign(n_chunks, 0);
  for (const auto& ch : channels_) {
    if (ch.chunk >= 0 && ch.busy) ++busy_count[static_cast<std::size_t>(ch.chunk)];
  }
  // A chunk can never usefully hold more channels than work items.
  auto& capacity = scratch_.capacity;
  capacity.assign(n_chunks, 0);
  for (std::size_t i = 0; i < n_chunks; ++i) {
    capacity[i] = static_cast<int>(queues_[i].size()) + busy_count[i];
  }
  auto chunk_cap = [&](std::size_t i) {
    int cap = capacity[i];
    if (plan_.chunks[i].cls == SizeClass::kLarge && large_cap_) {
      cap = std::min(cap, std::max(0, *large_cap_));
    }
    return cap;
  };

  if (plan_.sequential_chunks) {
    // Divide-and-transfer (SC, GO): only the first unfinished chunk runs,
    // with *its own* planned channel count — per-chunk counts are not summed.
    for (std::size_t i = 0; i < n_chunks; ++i) {
      if (capacity[i] > 0) {
        desired[i] = std::min({total, plan_.params[i].channels, chunk_cap(i)});
        break;
      }
    }
    return desired;
  }

  if (plan_.steal == StealPolicy::kNone) {
    for (std::size_t i = 0; i < n_chunks; ++i) {
      desired[i] = std::min(plan_.params[i].channels, chunk_cap(i));
    }
    return desired;
  }

  int budget = total;
  auto& eligible = scratch_.eligible;
  eligible.clear();
  if (plan_.steal == StealPolicy::kNonLargeOnly) {
    // The Large chunk never grows past its planned channel count (MinE's
    // energy rule); everyone else shares the rest. If the Large chunk is all
    // that remains it still gets at least one channel — MinE "assigns a
    // single channel to the large chunk regardless of the channel count".
    bool any_nonlarge_live = false;
    for (std::size_t i = 0; i < n_chunks; ++i) {
      if (plan_.chunks[i].cls != SizeClass::kLarge && capacity[i] > 0) {
        any_nonlarge_live = true;
      }
    }
    for (std::size_t i = 0; i < n_chunks; ++i) {
      if (plan_.chunks[i].cls == SizeClass::kLarge && capacity[i] > 0) {
        int want = plan_.params[i].channels;
        if (!any_nonlarge_live) want = std::max(want, 1);
        desired[i] = std::min(want, chunk_cap(i));
        budget -= desired[i];
      }
    }
    for (std::size_t i = 0; i < n_chunks; ++i) {
      if (plan_.chunks[i].cls != SizeClass::kLarge && capacity[i] > 0) {
        eligible.push_back(i);
      }
    }
  } else {  // kAll
    for (std::size_t i = 0; i < n_chunks; ++i) {
      if (capacity[i] > 0) eligible.push_back(i);
    }
  }

  // D'Hondt divisor rounds: proportional to plan weights, capacity-capped,
  // deterministic. Falls back to remaining-bytes weights when the plan gave
  // every eligible chunk zero channels (can happen after floor() allocation).
  auto weight = [&](std::size_t i) {
    return static_cast<double>(plan_.params[i].channels);
  };
  auto bytes_weight = [&](std::size_t i) {
    return static_cast<double>(chunk_remaining_[i]) + 1.0;
  };
  while (budget > 0) {
    double best_q = -1.0;
    std::size_t best_i = n_chunks;
    bool use_bytes = true;
    for (std::size_t i : eligible) {
      if (desired[i] >= chunk_cap(i)) continue;
      if (weight(i) > 0.0) use_bytes = false;
    }
    for (std::size_t i : eligible) {
      if (desired[i] >= chunk_cap(i)) continue;
      const double w = use_bytes ? bytes_weight(i) : weight(i);
      const double q = w / static_cast<double>(desired[i] + 1);
      if (q > best_q) {
        best_q = q;
        best_i = i;
      }
    }
    if (best_i == n_chunks || best_q <= 0.0) break;
    ++desired[best_i];
    --budget;
  }
  return desired;
}

void TransferSession::assign_channel(Channel& ch, int chunk) {
  ch.chunk = chunk;
  ch.parallelism = std::max(1, plan_.params[static_cast<std::size_t>(chunk)].parallelism);
  ch.pipelining = std::max(1, plan_.params[static_cast<std::size_t>(chunk)].pipelining);
  ch.cold = true;  // a (re)assigned channel ramps its window from scratch
}

bool TransferSession::server_up(bool source_side, std::size_t server) const {
  const auto& ups = source_side ? src_srv_up_ : dst_srv_up_;
  return server < ups.size() ? ups[server] != 0 : true;
}

std::optional<std::size_t> TransferSession::pick_server(bool source_side) {
  const std::size_t n = source_side ? env_.source.servers.size()
                                    : env_.destination.servers.size();
  if (n == 0) return std::size_t{0};  // degenerate config; preserve old behaviour
  if (plan_.placement == Placement::kPacked) {
    for (std::size_t s = 0; s < n; ++s) {
      if (server_up(source_side, s)) return s;
    }
    return std::nullopt;
  }
  std::size_t& cursor = source_side ? rr_src_ : rr_dst_;
  for (std::size_t tries = 0; tries < n; ++tries) {
    const std::size_t s = cursor++ % n;
    if (server_up(source_side, s)) return s;
  }
  return std::nullopt;
}

void TransferSession::open_channel(int chunk) {
  Channel ch;
  assign_channel(ch, chunk);
  const auto src = pick_server(true);
  const auto dst = pick_server(false);
  ch.src_server = src.value_or(0);
  ch.dst_server = dst.value_or(0);
  if (!src || !dst) {
    // The whole side is down: the channel strands until a recovery event.
    ch.down = true;
    ch.stranded = true;
    ch.down_since = sim_.now();
  }
  channels_.push_back(ch);
  obs_lease_begin(channels_.back());
}

void TransferSession::close_channel(std::size_t idx) {
  Channel& ch = channels_[idx];
  obs_lease_end(ch, abs_now());
  if (ch.busy && ch.work.remaining > 0) {
    // chunk_remaining_ still includes these bytes (it is decremented only as
    // bytes move), so requeueing the remainder keeps accounting consistent.
    queues_[static_cast<std::size_t>(ch.chunk)].push_front(ch.work);
  }
  channels_.erase(channels_.begin() + static_cast<std::ptrdiff_t>(idx));
}

void TransferSession::charge_waste(Bytes lost) {
  if (lost == 0) return;
  fault_stats_.wasted_bytes += lost;
  window_wasted_ += lost;
  // Attribute energy at the run's average end-system cost per wire byte so
  // far — the marginal cost of the bytes that now have to move again.
  if (bytes_moved_ > 0 && end_system_total_ > 0.0) {
    fault_stats_.wasted_joules += static_cast<double>(lost) * end_system_total_ /
                                  static_cast<double>(bytes_moved_);
  }
}

void TransferSession::requeue_inflight(Channel& ch) {
  if (ch.busy && ch.work.remaining > 0) {
    auto& q = queues_[static_cast<std::size_t>(ch.chunk)];
    if (faults_.retry.restart_markers) {
      // Restart markers: the retry resumes from the last byte offset, so the
      // already-moved prefix stays delivered and nothing is wasted.
      q.push_front(ch.work);
    } else {
      // Legacy whole-file retransmission: the moved prefix is lost.
      const Bytes lost = ch.work.size - ch.work.remaining;
      charge_waste(lost);
      chunk_remaining_[static_cast<std::size_t>(ch.chunk)] += lost;
      q.push_front({ch.work.file_id, ch.work.size, ch.work.size});
    }
    ++fault_stats_.retries;
  }
  ch.busy = false;
  ch.work = {};
  ch.overhead_left = 0.0;
  ch.rate = 0.0;
}

Seconds TransferSession::backoff_delay(int failures) {
  return retry_backoff_delay(faults_.retry, failures, backoff_rng_);
}

void TransferSession::fault_drop_channel(int index) {
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (!channels_[i].down) live.push_back(i);
  }
  if (live.empty()) return;  // nothing to kill; the drop dissipates
  const std::size_t victim =
      index >= 0 ? live[static_cast<std::size_t>(index) % live.size()]
                 : live[victim_rng_.uniform_int(0, live.size() - 1)];
  Channel& ch = channels_[victim];
  ++fault_stats_.channel_drops;
  requeue_inflight(ch);
  ++ch.failures;
  if (ch.failures > faults_.retry.channel_retry_budget) {
    // Persistent failure: stop retrying this slot and run narrower. The
    // effective concurrency never drops below one, so a fresh slot replaces
    // the very last quarantined channel.
    ++quarantined_;
    ++fault_stats_.quarantined_channels;
    if (obs_ != nullptr && config_.obs->trace != nullptr && ch.obs_lane >= 0) {
      config_.obs->trace->instant(abs_now(), obs::kLaneTidBase + ch.obs_lane,
                                  "channel-quarantined", "fault",
                                  {"failures", static_cast<double>(ch.failures)});
    }
    obs_lease_end(ch, abs_now());
    channels_.erase(channels_.begin() + static_cast<std::ptrdiff_t>(victim));
    return;
  }
  ch.down = true;
  ch.cold = true;
  ch.down_since = sim_.now();
  ch.down_until = sim_.now() + backoff_delay(ch.failures);
  if (obs_ != nullptr && config_.obs->trace != nullptr && ch.obs_lane >= 0) {
    config_.obs->trace->instant(abs_now(), obs::kLaneTidBase + ch.obs_lane,
                                "channel-drop", "fault",
                                {"failures", static_cast<double>(ch.failures)},
                                {"backoff_s", ch.down_until - ch.down_since});
  }
}

void TransferSession::fault_server_state(bool source_side, std::size_t server, bool up) {
  auto& ups = source_side ? src_srv_up_ : dst_srv_up_;
  auto& since = source_side ? src_srv_down_since_ : dst_srv_down_since_;
  if (server >= ups.size()) return;
  if (obs_ != nullptr && config_.obs->trace != nullptr && server < ups.size() &&
      (ups[server] != 0) != up) {
    config_.obs->trace->instant(abs_now(), obs::kControlTid,
                                up ? "server-recovered" : "server-outage", "fault",
                                {"server", static_cast<double>(server)},
                                {"source_side", source_side ? 1.0 : 0.0});
  }
  if (!up) {
    if (ups[server] == 0) return;
    ups[server] = 0;
    since[server] = sim_.now();
    ++fault_stats_.server_outages;
    // Displace every channel on the dead server. Server loss does not count
    // against the channel's own retry budget — the slot did nothing wrong.
    for (auto& ch : channels_) {
      const std::size_t at = source_side ? ch.src_server : ch.dst_server;
      if (at != server) continue;
      requeue_inflight(ch);
      if (!ch.down) ch.down_since = sim_.now();
      ch.down = true;
      ch.cold = true;
      const auto repl = pick_server(source_side);
      if (repl) {
        (source_side ? ch.src_server : ch.dst_server) = *repl;
        ch.down_until = std::max(ch.down_until, sim_.now() + backoff_delay(1));
      } else {
        ch.stranded = true;  // whole side down: wait for a recovery event
      }
    }
  } else {
    if (ups[server] != 0) return;
    ups[server] = 1;
    fault_stats_.server_downtime += sim_.now() - since[server];
    // Re-admit stranded channels whose dead side just recovered.
    for (auto& ch : channels_) {
      if (!ch.stranded) continue;
      if (!server_up(true, ch.src_server)) {
        const auto s = pick_server(true);
        if (!s) continue;
        ch.src_server = *s;
      }
      if (!server_up(false, ch.dst_server)) {
        const auto s = pick_server(false);
        if (!s) continue;
        ch.dst_server = *s;
      }
      ch.stranded = false;
      ch.down_until = sim_.now() + backoff_delay(1);
    }
  }
}

void TransferSession::fault_path_factor(double factor) {
  path_factor_ = std::max(0.0, factor);
  if (obs_ == nullptr) return;
  const bool degraded = path_factor_ < 1.0;
  if (degraded && obs_->brownouts != nullptr) obs_->brownouts->add(1);
  if (auto* tb = config_.obs->trace) {
    tb->instant(abs_now(), obs::kControlTid, degraded ? "brownout" : "brownout-clear",
                "fault", {"path_capacity_factor", path_factor_});
    tb->counter(abs_now(), "path_capacity_factor", path_factor_);
  }
}

void TransferSession::revive_channels() {
  for (auto& ch : channels_) {
    if (ch.down && !ch.stranded && sim_.now() >= ch.down_until) {
      ch.down = false;
      fault_stats_.channel_downtime += sim_.now() - ch.down_since;
    }
  }
}

void TransferSession::obs_begin_run() {
  obs::ObsSinks* sinks = config_.obs;
  if (sinks == nullptr || !sinks->any()) return;
  obs_ = std::make_unique<ObsState>();
  ObsState& st = *obs_;
  const std::size_t n_chunks = plan_.chunks.size();
  st.chunk_energy.assign(n_chunks, 0.0);
  if (sinks->metrics != nullptr) {
    auto& m = *sinks->metrics;
    m.counter("session.runs").add(1);
    st.ticks = &m.counter("session.ticks");
    st.wire_bytes = &m.counter("session.wire_bytes");
    st.goodput_bytes = &m.counter("session.goodput_bytes");
    st.retries = &m.counter("session.retries");
    st.checkpoint_writes = &m.counter("session.checkpoint_writes");
    st.brownouts = &m.counter("session.path_brownouts");
    st.tick_goodput = &m.histogram(
        "session.tick_goodput_mbps",
        {1.0, 10.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0});
    st.tick_power = &m.histogram("session.tick_power_w",
                                 {50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0});
    st.chunk_bytes.reserve(n_chunks);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      st.chunk_bytes.push_back(&m.counter(std::string("session.chunk_bytes.") +
                                          to_string(plan_.chunks[c].cls)));
    }
    st.wire_at_start = bytes_moved_;
    st.wasted_at_start = fault_stats_.wasted_bytes;
    st.retries_at_start = fault_stats_.retries;
  }
  if (sinks->trace != nullptr) {
    auto* tb = sinks->trace;
    tb->set_thread_name(obs::kControlTid, "algorithm / control");
    st.chunk_open.assign(n_chunks, 0);
    st.chunk_busy.assign(n_chunks, 0);
    st.lease_names.reserve(n_chunks);
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const char* cls = to_string(plan_.chunks[c].cls);
      tb->set_thread_name(
          obs::kChunkTidBase + static_cast<int>(c),
          tb->intern("chunk " + std::to_string(c) + " (" + cls + ")"));
      st.lease_names.push_back(tb->intern(std::string("lease ") + cls));
    }
    st.src_power_names.reserve(src_energy_.size());
    st.src_joules_prev.reserve(src_energy_.size());
    for (const auto& s : src_energy_) {
      st.src_power_names.push_back(tb->intern("power.src." + s.name + "_w"));
      st.src_joules_prev.push_back(s.joules);  // resumed legs: delta from here
    }
    st.dst_power_names.reserve(dst_energy_.size());
    st.dst_joules_prev.reserve(dst_energy_.size());
    for (const auto& s : dst_energy_) {
      st.dst_power_names.push_back(tb->intern("power.dst." + s.name + "_w"));
      st.dst_joules_prev.push_back(s.joules);
    }
    tb->begin(abs_now(), obs::kControlTid, "transfer", "session",
              {"bytes", static_cast<double>(total_bytes_)},
              {"concurrency", static_cast<double>(target_concurrency_)});
    st.transfer_span_open = true;
  }
}

void TransferSession::obs_lease_begin(Channel& ch) {
  if (obs_ == nullptr || config_.obs->trace == nullptr || ch.chunk < 0) return;
  auto* tb = config_.obs->trace;
  ObsState& st = *obs_;
  // Lowest free lane: concurrent leases never share a track, and a closed
  // lane is recycled by the next open, keeping the track count bounded by
  // the peak concurrency rather than the channel-open count.
  std::size_t lane = 0;
  while (lane < st.lane_used.size() && st.lane_used[lane] != 0) ++lane;
  if (lane == st.lane_used.size()) {
    st.lane_used.push_back(1);
    tb->set_thread_name(obs::kLaneTidBase + static_cast<int>(lane),
                        tb->intern("channel lane " + std::to_string(lane)));
  } else {
    st.lane_used[lane] = 1;
  }
  ch.obs_lane = static_cast<int>(lane);
  tb->begin(abs_now(), obs::kLaneTidBase + ch.obs_lane,
            st.lease_names[static_cast<std::size_t>(ch.chunk)], "channel",
            {"chunk", static_cast<double>(ch.chunk)},
            {"parallelism", static_cast<double>(ch.parallelism)});
}

void TransferSession::obs_lease_end(Channel& ch, Seconds at) {
  if (obs_ == nullptr || config_.obs->trace == nullptr || ch.obs_lane < 0) return;
  config_.obs->trace->end(at, obs::kLaneTidBase + ch.obs_lane);
  obs_->lane_used[static_cast<std::size_t>(ch.obs_lane)] = 0;
  ch.obs_lane = -1;
}

void TransferSession::obs_tick(Joules tick_energy, Seconds dt) {
  ObsState& st = *obs_;
  Bytes moved = 0;
  std::fill(st.chunk_busy.begin(), st.chunk_busy.end(), 0);
  for (const auto& ch : channels_) {
    moved += ch.moved_this_tick;
    if (ch.chunk < 0) continue;
    const auto c = static_cast<std::size_t>(ch.chunk);
    if (ch.moved_this_tick > 0 && st.ticks != nullptr) {
      st.chunk_bytes[c]->add(ch.moved_this_tick);
    }
    if (c < st.chunk_busy.size() && ch.busy && !ch.down) st.chunk_busy[c] = 1;
  }
  if (moved > 0 && tick_energy > 0.0) {
    // Attribute this tick's end-system energy to chunks by byte share — the
    // per-chunk energy split the paper's per-class analysis needs.
    for (const auto& ch : channels_) {
      if (ch.chunk >= 0 && ch.moved_this_tick > 0) {
        st.chunk_energy[static_cast<std::size_t>(ch.chunk)] +=
            tick_energy * static_cast<double>(ch.moved_this_tick) /
            static_cast<double>(moved);
      }
    }
  }
  if (st.ticks != nullptr) {
    st.ticks->add(1);
    st.tick_goodput->observe(to_mbps(to_bits(moved) / dt));
    st.tick_power->observe(tick_energy / dt);
  }
  if (auto* tb = config_.obs->trace) {
    const Seconds t = abs_now();
    for (std::size_t c = 0; c < st.chunk_open.size(); ++c) {
      const int tid = obs::kChunkTidBase + static_cast<int>(c);
      if (st.chunk_open[c] == 0 && st.chunk_busy[c] != 0) {
        // The span opens at the start of the slice that first moved bytes.
        tb->begin(t - dt, tid, "chunk-active", "chunk",
                  {"remaining_bytes", static_cast<double>(chunk_remaining_[c])});
        st.chunk_open[c] = 1;
      } else if (st.chunk_open[c] != 0 && !chunk_live(static_cast<int>(c))) {
        tb->end(t, tid);
        st.chunk_open[c] = 0;
      }
    }
  }
}

void TransferSession::obs_sample(const SampleStats& s) {
  if (obs_ == nullptr || config_.obs->trace == nullptr) return;
  auto* tb = config_.obs->trace;
  ObsState& st = *obs_;
  const Seconds d = s.duration();
  tb->counter(s.window_end, "goodput_mbps", d > 0.0 ? to_mbps(s.throughput()) : 0.0);
  tb->counter(s.window_end, "power_w", d > 0.0 ? s.end_system_energy / d : 0.0);
  tb->counter(s.window_end, "active_channels", static_cast<double>(s.active_channels));
  tb->counter(s.window_end, "down_channels", static_cast<double>(s.down_channels));
  // Per-server attribution: one counter track per DTN, the window's average
  // draw from that server's joule ledger. The session aggregate above is the
  // sum of these tracks (plus nothing else), so a capacity question — which
  // server carries the watts when channels pack vs spread — reads straight
  // off the trace.
  for (std::size_t i = 0; i < st.src_power_names.size(); ++i) {
    const double delta = src_energy_[i].joules - st.src_joules_prev[i];
    st.src_joules_prev[i] = src_energy_[i].joules;
    tb->counter(s.window_end, st.src_power_names[i], d > 0.0 ? delta / d : 0.0);
  }
  for (std::size_t i = 0; i < st.dst_power_names.size(); ++i) {
    const double delta = dst_energy_[i].joules - st.dst_joules_prev[i];
    st.dst_joules_prev[i] = dst_energy_[i].joules;
    tb->counter(s.window_end, st.dst_power_names[i], d > 0.0 ? delta / d : 0.0);
  }
}

void TransferSession::obs_checkpoint_write() {
  if (obs_ == nullptr) return;
  if (obs_->checkpoint_writes != nullptr) obs_->checkpoint_writes->add(1);
  if (auto* tb = config_.obs->trace) {
    tb->instant(abs_now(), obs::kControlTid, "checkpoint", "session",
                {"bytes_moved", static_cast<double>(bytes_moved_)});
  }
}

void TransferSession::obs_end_run(Seconds local_end, const RunResult& res) {
  if (obs_ == nullptr) return;
  ObsState& st = *obs_;
  const Seconds t = time_offset_ + local_end;
  if (auto* tb = config_.obs->trace) {
    for (auto& ch : channels_) obs_lease_end(ch, t);
    for (std::size_t c = 0; c < st.chunk_open.size(); ++c) {
      if (st.chunk_open[c] != 0) tb->end(t, obs::kChunkTidBase + static_cast<int>(c));
    }
    if (st.transfer_span_open) {
      tb->end(t, obs::kControlTid);
      st.transfer_span_open = false;
    }
    tb->instant(t, obs::kControlTid, res.completed ? "run-complete" : "run-aborted",
                "session", {"bytes", static_cast<double>(res.bytes)},
                {"energy_j", res.end_system_energy});
  }
  if (st.ticks != nullptr) {
    auto& m = *config_.obs->metrics;
    const Bytes wire_delta = bytes_moved_ - st.wire_at_start;
    const Bytes wasted_delta = fault_stats_.wasted_bytes - st.wasted_at_start;
    st.wire_bytes->add(wire_delta);
    st.goodput_bytes->add(wire_delta >= wasted_delta ? wire_delta - wasted_delta : 0);
    st.retries->add(static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, fault_stats_.retries - st.retries_at_start)));
    m.histogram("session.run_duration_s", {10.0, 60.0, 300.0, 1800.0, 7200.0, 43200.0})
        .observe(local_end);
    m.histogram("session.run_energy_j", {1e2, 1e3, 1e4, 1e5, 1e6, 1e7})
        .observe(res.end_system_energy);
    for (std::size_t c = 0; c < st.chunk_energy.size(); ++c) {
      m.histogram(std::string("session.chunk_energy_j.") + to_string(plan_.chunks[c].cls),
                  {1e2, 1e3, 1e4, 1e5, 1e6, 1e7})
          .observe(st.chunk_energy[c]);
    }
    sim_.counters().publish(m);
  }
}

void TransferSession::rebalance() {
  const auto& desired = desired_allocation();
  const std::size_t n_chunks = plan_.chunks.size();

  auto& have = scratch_.have;
  have.assign(n_chunks, 0);
  for (const auto& ch : channels_) {
    if (ch.chunk >= 0) ++have[static_cast<std::size_t>(ch.chunk)];
  }

  // Release surplus channels, idle ones first, then preempt busy ones
  // (preempted remainders go back to the front of the queue).
  auto& free_slots = scratch_.free_slots;
  free_slots.clear();
  for (std::size_t c = 0; c < n_chunks; ++c) {
    int surplus = have[c] - desired[c];
    if (surplus <= 0) continue;
    for (int pass = 0; pass < 2 && surplus > 0; ++pass) {
      const bool want_busy = pass == 1;
      for (std::size_t i = 0; i < channels_.size() && surplus > 0; ++i) {
        auto& ch = channels_[i];
        // A down channel cannot be reassigned or closed: its connection is
        // being re-established; it keeps its slot until it revives.
        if (ch.down || ch.chunk != static_cast<int>(c) || ch.busy != want_busy) continue;
        if (std::find(free_slots.begin(), free_slots.end(), i) != free_slots.end()) continue;
        free_slots.push_back(i);
        --surplus;
      }
    }
  }

  // Reassign freed channels to deficits; close what is left over.
  auto& to_close = scratch_.to_close;
  to_close.clear();
  std::size_t cursor = 0;
  for (std::size_t c = 0; c < n_chunks; ++c) {
    int deficit = desired[c] - have[c];
    while (deficit > 0 && cursor < free_slots.size()) {
      auto& ch = channels_[free_slots[cursor++]];
      if (ch.busy && ch.work.remaining > 0) {
        queues_[static_cast<std::size_t>(ch.chunk)].push_front(ch.work);
        ch.busy = false;
        ch.work = {};
        ch.overhead_left = 0.0;
      }
      obs_lease_end(ch, abs_now());  // the lease moves chunks: close + reopen
      assign_channel(ch, static_cast<int>(c));
      obs_lease_begin(ch);
      --deficit;
    }
    while (deficit > 0) {
      open_channel(static_cast<int>(c));
      --deficit;
    }
  }
  for (; cursor < free_slots.size(); ++cursor) to_close.push_back(free_slots[cursor]);
  std::sort(to_close.rbegin(), to_close.rend());
  for (std::size_t idx : to_close) close_channel(idx);
}

bool TransferSession::pop_next_file(Channel& ch) {
  auto& q = queues_[static_cast<std::size_t>(ch.chunk)];
  if (q.empty()) return false;
  ch.work = q.front();
  q.pop_front();
  ch.busy = true;
  ch.overhead_left = per_file_overhead(ch, ch.work.remaining, ch.cold);
  ch.cold = false;
  return true;
}

Seconds TransferSession::per_file_overhead(const Channel& ch, Bytes size,
                                           bool cold) const {
  // Server-side per-file cost plus the control-channel stall, amortised by
  // pipelining. The congestion window ramps from scratch only on a cold
  // (new/reassigned) channel — GridFTP reuses data connections across files.
  // Between files of a warm channel: pipelined channels never go idle (no
  // decay); unpipelined ones sit a full RTT waiting for the next command,
  // losing part of the window.
  const double warm = cold ? 0.0 : (ch.pipelining > 1 ? 1.0 : env_.warm_fraction);
  Seconds overhead = env_.per_file_cost + plan_.service_overhead_per_file +
                     net::control_gap_per_file(env_.path, ch.pipelining) +
                     net::slow_start_penalty(env_.path, size, warm);
  if (plan_.checksum_rate > 0.0) {
    overhead += to_bits(size) / plan_.checksum_rate;  // post-landing verify pass
  }
  return overhead;
}

void TransferSession::collect_link_demands() {
  const auto& path = env_.path;
  const BitsPerSecond window_cap = net::stream_window_cap(path);

  // Per-server resident load (processes/threads), needed for CPU caps. All
  // working vectors live in scratch_ so a steady-state tick never allocates.
  const std::size_t ns = env_.source.servers.size();
  const std::size_t nd = env_.destination.servers.size();
  auto& src_procs = scratch_.src_procs;
  auto& src_threads = scratch_.src_threads;
  auto& dst_procs = scratch_.dst_procs;
  auto& dst_threads = scratch_.dst_threads;
  src_procs.assign(ns, 0);
  src_threads.assign(ns, 0);
  dst_procs.assign(nd, 0);
  dst_threads.assign(nd, 0);
  for (const auto& ch : channels_) {
    if (ch.down) continue;  // a dead connection holds no server processes
    ++src_procs[ch.src_server];
    src_threads[ch.src_server] += ch.parallelism;
    ++dst_procs[ch.dst_server];
    dst_threads[ch.dst_server] += ch.parallelism;
  }

  // Per-channel caps before disk: TCP windows and CPU shares on both ends.
  auto& caps = scratch_.caps;
  auto& duty = scratch_.duty;
  caps.assign(channels_.size(), 0.0);
  duty.assign(channels_.size(), 1.0);
  int total_streams = 0;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    auto& ch = channels_[i];
    ch.rate = 0.0;
    ch.moved_this_tick = 0;
    if (!ch.busy) continue;
    const auto& src = env_.source.servers[ch.src_server];
    const auto& dst = env_.destination.servers[ch.dst_server];
    const BitsPerSecond cpu_src = host::channel_cpu_cap(
        src, src_procs[ch.src_server], src_threads[ch.src_server], ch.parallelism);
    const BitsPerSecond cpu_dst = host::channel_cpu_cap(
        dst, dst_procs[ch.dst_server], dst_threads[ch.dst_server], ch.parallelism);
    caps[i] = std::min({static_cast<double>(ch.parallelism) * window_cap, cpu_src,
                        cpu_dst, host::channel_stream_cap(src, ch.parallelism),
                        host::channel_stream_cap(dst, ch.parallelism)});
    total_streams += ch.parallelism;

    // Duty cycle: the fraction of time this channel actually streams, given
    // its per-file overheads. A channel chewing through small files only
    // *consumes* bandwidth while transferring, so its fair-share demand is
    // duty-weighted; it bursts at rate/duty when it does send.
    const Bytes fsize = std::max<Bytes>(ch.work.remaining, 1);
    const Seconds overhead = per_file_overhead(ch, fsize, false);
    const Seconds tx = caps[i] > 0.0 ? to_bits(fsize) / caps[i] : 0.0;
    duty[i] = (overhead > 0.0 && tx > 0.0) ? tx / (tx + overhead) : 1.0;
    duty[i] = std::max(duty[i], 0.05);
    caps[i] *= duty[i];
  }

  // Disk pools are work-conserving: each server's aggregate disk bandwidth is
  // shared max-min across its channels, so a channel stalling on per-file
  // overheads donates its slack to streaming channels (this is what lets a
  // multi-chunk schedule beat sequential phases).
  auto apply_disk_pool = [&](const std::vector<host::ServerSpec>& servers,
                             bool source_side, const std::vector<int>& procs) {
    for (std::size_t s = 0; s < servers.size(); ++s) {
      if (procs[s] <= 0) continue;
      const BitsPerSecond pool = host::disk_aggregate_bandwidth(servers[s].disk, procs[s]);
      auto& d = scratch_.pool_demands;
      auto& idx = scratch_.pool_index;
      d.clear();
      idx.clear();
      for (std::size_t i = 0; i < channels_.size(); ++i) {
        const std::size_t at = source_side ? channels_[i].src_server
                                           : channels_[i].dst_server;
        if (at != s || !channels_[i].busy) continue;
        d.push_back({caps[i], 1.0});
        idx.push_back(i);
      }
      net::fair_share_into(pool, d, scratch_.pool_alloc, scratch_.fair_share);
      for (std::size_t k = 0; k < idx.size(); ++k) {
        caps[idx[k]] = std::min(caps[idx[k]], scratch_.pool_alloc[k]);
      }
    }
  };
  apply_disk_pool(env_.source.servers, true, src_procs);
  apply_disk_pool(env_.destination.servers, false, dst_procs);

  auto& demands = scratch_.link_demands;
  demands.assign(channels_.size(), net::Demand{});
  double aggregate_demand = 0.0;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (!channels_[i].busy) continue;
    demands[i] = {caps[i], static_cast<double>(channels_[i].parallelism)};
    aggregate_demand += caps[i];
  }
  agg_demand_ = aggregate_demand;
  agg_streams_ = total_streams;
}

std::span<const net::Demand> TransferSession::link_demands() const noexcept {
  return scratch_.link_demands;
}

std::span<const net::DemandGroup> TransferSession::link_demand_groups() {
  auto& groups = scratch_.link_groups;
  groups.clear();
  // Run-length collapse: adjacent channels with bitwise-equal (cap, weight)
  // merge — typically every idle channel ({0, 1}) and every same-shape busy
  // cluster. Expanding `groups` in order reproduces link_demands() exactly.
  for (const net::Demand& d : scratch_.link_demands) {
    if (!groups.empty() && groups.back().cap == d.cap &&
        groups.back().weight == d.weight) {
      ++groups.back().count;
    } else {
      groups.push_back({d.cap, d.weight, 1});
    }
  }
  return groups;
}

void TransferSession::apply_link_allocation(std::span<const BitsPerSecond> alloc,
                                            const double eff, const double burst_cap) {
  const auto& duty = scratch_.duty;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    double jitter = 1.0;
    if (env_.rate_jitter_sd > 0.0) {
      // Multiplicative noise, floored so a draw never stalls a channel.
      jitter = std::max(0.1, 1.0 + jitter_rng_.normal(0.0, env_.rate_jitter_sd));
    }
    channels_[i].rate =
        alloc[i] * eff * std::min(1.0 / duty[i], burst_cap) * jitter;
  }

  // NIC ceilings per server: proportional scale-down if the *average* load
  // (burst rate x duty) oversubscribes the card.
  auto nic_scale = [&](const std::vector<host::ServerSpec>& servers, bool source_side) {
    for (std::size_t s = 0; s < servers.size(); ++s) {
      if (servers[s].nic_speed <= 0.0) continue;
      double sum = 0.0;
      for (std::size_t i = 0; i < channels_.size(); ++i) {
        const std::size_t at =
            source_side ? channels_[i].src_server : channels_[i].dst_server;
        if (at == s) sum += channels_[i].rate * duty[i];
      }
      if (sum > servers[s].nic_speed) {
        const double f = servers[s].nic_speed / sum;
        for (std::size_t i = 0; i < channels_.size(); ++i) {
          const std::size_t at =
              source_side ? channels_[i].src_server : channels_[i].dst_server;
          if (at == s) channels_[i].rate *= f;
        }
      }
    }
  };
  nic_scale(env_.source.servers, true);
  nic_scale(env_.destination.servers, false);
}

void TransferSession::allocate_rates() {
  collect_link_demands();

  // Brownouts scale the shared link; 1.0 outside any fault window.
  const BitsPerSecond capacity = env_.path.available_bandwidth() * path_factor_;
  auto& link_alloc = scratch_.link_alloc;
  net::fair_share_into(capacity, scratch_.link_demands, link_alloc, scratch_.fair_share);
  const double eff = net::congestion_efficiency(env_.congestion, agg_demand_,
                                                capacity, agg_streams_);

  // The allocation is an *average* rate (duty-weighted demand); while a
  // channel is actually streaming it bursts above it — but the burst factor
  // is capped so that even simultaneous bursts cannot exceed the link.
  double total_avg = 0.0;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    total_avg += link_alloc[i] * eff;
  }
  const double burst_cap =
      total_avg > 0.0 ? std::max(1.0, capacity / total_avg) : 1.0;
  apply_link_allocation(link_alloc, eff, burst_cap);
}

void TransferSession::advance_channels(Seconds dt) {
  for (auto& ch : channels_) {
    if (!ch.busy) continue;
    Seconds budget = dt;
    while (budget > 1e-12 && ch.busy) {
      if (ch.overhead_left > 0.0) {
        const Seconds pay = std::min(ch.overhead_left, budget);
        ch.overhead_left -= pay;
        budget -= pay;
        continue;
      }
      if (ch.rate <= 0.0) break;
      const double can_move = ch.rate * budget / 8.0;
      if (can_move >= static_cast<double>(ch.work.remaining)) {
        const Bytes done = ch.work.remaining;
        budget -= static_cast<double>(done) * 8.0 / ch.rate;
        ch.moved_this_tick += done;
        bytes_moved_ += done;
        window_bytes_ += done;
        chunk_remaining_[static_cast<std::size_t>(ch.chunk)] -= done;
        const QueueEntry landed = ch.work;
        ch.work = {};
        ch.busy = false;
        ch.failures = 0;  // a landed file proves the slot healthy again
        if (faults_.stochastic.checksum_failure_prob > 0.0 &&
            checksum_rng_.uniform01() < faults_.stochastic.checksum_failure_prob) {
          // End-to-end verification rejected the file: every byte of it was
          // wasted and the whole file re-enters its queue.
          ++fault_stats_.checksum_failures;
          ++fault_stats_.retries;
          charge_waste(landed.size);
          chunk_remaining_[static_cast<std::size_t>(ch.chunk)] += landed.size;
          queues_[static_cast<std::size_t>(ch.chunk)].push_back(
              {landed.file_id, landed.size, landed.size});
        }
        if (!pop_next_file(ch)) break;  // queue dry: channel idles
      } else {
        const Bytes moved = static_cast<Bytes>(can_move);
        ch.work.remaining -= moved;
        ch.moved_this_tick += moved;
        bytes_moved_ += moved;
        window_bytes_ += moved;
        chunk_remaining_[static_cast<std::size_t>(ch.chunk)] -= moved;
        budget = 0.0;
      }
    }
  }
}

Joules TransferSession::account_energy(Seconds dt) {
  Bytes tick_bytes = 0;
  Joules tick_energy = 0.0;

  auto account_side = [&](const Endpoint& ep, std::vector<ServerEnergy>& store,
                          bool source_side) {
    for (std::size_t s = 0; s < ep.servers.size(); ++s) {
      host::HostLoad load;
      for (const auto& ch : channels_) {
        if (ch.down) continue;  // no process, no load, no power draw
        const std::size_t at = source_side ? ch.src_server : ch.dst_server;
        if (at != s) continue;
        ++load.processes;
        load.threads += ch.parallelism;
        load.goodput += static_cast<double>(ch.moved_this_tick) * 8.0 / dt;
        load.buffered += static_cast<Bytes>(ch.parallelism) * env_.path.tcp_buffer;
      }
      if (load.processes == 0) continue;
      load.disk_io = load.goodput;
      const auto u = host::utilization(ep.servers[s], load);
      const int n = host::active_cores(ep.servers[s], load);
      const Watts p = power::fine_grained_power(ep.power, n, u);
      store[s].joules += p * dt;
      store[s].active_time += dt;
      window_energy_ += p * dt;
      tick_energy += p * dt;
    }
  };
  account_side(env_.source, src_energy_, true);
  account_side(env_.destination, dst_energy_, false);

  for (const auto& ch : channels_) tick_bytes += ch.moved_this_tick;
  last_tick_bytes_ = tick_bytes;
  network_energy_ += power::route_transfer_energy(env_.route, tick_bytes, env_.path.mtu);
  return tick_energy;
}

bool TransferSession::finished() const {
  for (const auto& q : queues_) {
    if (!q.empty()) return false;
  }
  return std::none_of(channels_.begin(), channels_.end(),
                      [](const Channel& ch) { return ch.busy; });
}

void TransferSession::tick_prepare() {
  if (faults_.active()) revive_channels();

  // Feed idle channels; if any chunk ran dry, rebalance and feed again.
  // Down channels take no work until their backoff expires.
  bool dry = false;
  for (auto& ch : channels_) {
    if (ch.down) continue;
    if (!ch.busy && !pop_next_file(ch)) dry = true;
  }
  const int open_now = static_cast<int>(channels_.size());
  if (dry || open_now != effective_concurrency()) {
    rebalance();
    for (auto& ch : channels_) {
      if (!ch.busy && !ch.down) pop_next_file(ch);
    }
  }
}

void TransferSession::advance_compute() {
  const Seconds dt = config_.tick;
  advance_channels(dt);
  const Joules tick_energy = account_energy(dt);
  end_system_total_ += tick_energy;
  last_tick_power_ = tick_energy / dt;
  pending_tick_energy_ = tick_energy;
}

bool TransferSession::advance_commit() {
  const Seconds dt = config_.tick;
  const Joules tick_energy = pending_tick_energy_;

  if (checkpoint_sink_ && config_.checkpoint_interval > 0.0 &&
      sim_.now() - last_checkpoint_ >= config_.checkpoint_interval - 1e-9) {
    last_checkpoint_ = sim_.now();
    checkpoint_sink_(make_checkpoint());
    obs_checkpoint_write();
  }

  if (obs_ != nullptr) obs_tick(tick_energy, dt);

  if (observer_ != nullptr) {
    TickTrace trace;
    // Absolute transfer time: an observer re-attached on a resumed leg sees
    // the clock continue where the interrupted run stopped, matching the
    // sample windows (regression-tested in test_obs.cpp).
    trace.time = abs_now();
    trace.end_system_power = tick_energy / dt;
    trace.open_channels = static_cast<int>(channels_.size());
    trace.path_capacity_factor = path_factor_;
    Bytes moved = 0;
    trace.channels.reserve(channels_.size());
    for (const auto& ch : channels_) {
      trace.channels.push_back({ch.chunk, ch.parallelism, ch.busy, ch.rate,
                                ch.moved_this_tick, ch.down});
      moved += ch.moved_this_tick;
      trace.down_channels += ch.down ? 1 : 0;
    }
    trace.goodput = to_bits(moved) / dt;
    observer_->on_tick(trace);
  }

  // The ticker first fires at t = dt, so the firing at time t covers the
  // slice [t - dt, t]: "now" is the end of the slice just processed.
  const Seconds t_end = sim_.now();
  const bool done = finished();
  if (t_end - window_start_ >= config_.sample_interval - 1e-9 || done) {
    SampleStats s;
    // Windows are reported in absolute transfer time: a resumed leg's first
    // window starts where the interrupted run's checkpoint left off (and a
    // shared-simulation tenant's where its own begin() fell).
    s.window_start = time_offset_ + (window_start_ - start_time_);
    s.window_end = time_offset_ + (t_end - start_time_);
    s.bytes = window_bytes_;
    s.end_system_energy = window_energy_;
    s.wasted_bytes = window_wasted_;
    int active = 0, down = 0;
    for (const auto& ch : channels_) {
      active += ch.busy ? 1 : 0;
      down += ch.down ? 1 : 0;
    }
    s.active_channels = active;
    s.down_channels = down;
    samples_.push_back(s);
    obs_sample(s);
    window_start_ = t_end;
    window_bytes_ = 0;
    window_wasted_ = 0;
    window_energy_ = 0.0;
    if (controller_ != nullptr && !done) controller_->on_sample(*this, s);
  }
  return !done;
}

bool TransferSession::advance_tick() {
  advance_compute();
  return advance_commit();
}

bool TransferSession::tick() {
  tick_prepare();
  allocate_rates();
  return advance_tick();
}

std::optional<std::string> TransferSession::begin(Controller* controller) {
  if (auto bad = faults_.validate()) {
    return "invalid FaultPlan: " + *bad;
  }
  // The epoch: on an owned simulation this is 0.0 and every localisation
  // below degenerates to the exact arithmetic of the single-session engine.
  start_time_ = sim_.now();
  window_start_ = sim_.now();
  last_checkpoint_ = sim_.now();
  controller_ = controller;
  if (controller_ != nullptr) {
    if (const auto init = controller_->initial_concurrency(); init) {
      set_total_concurrency(*init);
    }
    controller_->on_start(*this);
  }
  obs_begin_run();  // before rebalance(), so the first leases are traced
  rebalance();

  if (faults_.active()) {
    injector_ = std::make_unique<FaultInjector>(sim_, faults_,
                                                *static_cast<FaultHost*>(this),
                                                start_time_);
    injector_->arm();
  }

  // Sampling windows land every sample_interval: reserving them up front
  // keeps steady-state ticks allocation-free (bounded so a week-long default
  // guard does not pre-commit megabytes).
  if (config_.sample_interval > 0.0) {
    const double windows = config_.max_sim_time / config_.sample_interval + 2.0;
    samples_.reserve(static_cast<std::size_t>(std::min(windows, 4096.0)));
  }
  return std::nullopt;
}

RunResult TransferSession::run(Controller* controller) {
  if (auto bad = begin(controller)) {
    RunResult refused;
    refused.completed = false;
    refused.error = std::move(*bad);
    return refused;
  }

  Seconds finish_time = config_.max_sim_time;
  bool completed = false;
  sim_.add_ticker(config_.tick, [this, &finish_time, &completed]() {
    if (sim_.now() > config_.max_sim_time) return false;
    const bool more = tick();
    if (!more) {
      // The guard above admits ticks at t <= max_sim_time only, but ticker
      // timestamps accumulate floating-point error; the clamp guarantees a
      // finish time can never land even a fraction of a tick past the
      // deadline (regression-tested in test_session.cpp).
      finish_time = std::min(sim_.now(), config_.max_sim_time);
      completed = true;
    }
    return more;
  });
  sim_.run_until(config_.max_sim_time + config_.tick);
  return finalize(completed, completed ? finish_time : config_.max_sim_time);
}

RunResult TransferSession::finalize(bool completed, Seconds end_raw) {
  // Down-since stamps are in the raw simulation clock; close the books
  // against it, then report durations relative to this session's epoch (plus
  // any resume offset). For an owned simulation the epoch is 0 and end_raw
  // is exactly the old local_end.
  const Seconds local_end = end_raw - start_time_;
  RunResult res;
  res.duration = time_offset_ + local_end;
  res.bytes = bytes_moved_;
  res.network_energy = network_energy_;
  res.final_concurrency = target_concurrency_;
  res.completed = completed;
  // Close the books on anything still down when the run ended.
  for (const auto& ch : channels_) {
    if (ch.down && end_raw > ch.down_since) {
      fault_stats_.channel_downtime += end_raw - ch.down_since;
    }
  }
  for (std::size_t s = 0; s < src_srv_up_.size(); ++s) {
    if (src_srv_up_[s] == 0 && end_raw > src_srv_down_since_[s]) {
      fault_stats_.server_downtime += end_raw - src_srv_down_since_[s];
    }
  }
  for (std::size_t s = 0; s < dst_srv_up_.size(); ++s) {
    if (dst_srv_up_[s] == 0 && end_raw > dst_srv_down_since_[s]) {
      fault_stats_.server_downtime += end_raw - dst_srv_down_since_[s];
    }
  }
  res.faults = fault_stats_;
  if (!completed) {
    // The abort checkpoint: the journal entry a supervisor resumes from.
    res.checkpoint = make_checkpoint();
    if (checkpoint_sink_) {
      checkpoint_sink_(*res.checkpoint);
      obs_checkpoint_write();
    }
  }
  res.sim_counters = sim_.counters();
  res.samples = std::move(samples_);
  res.source_servers = src_energy_;
  res.destination_servers = dst_energy_;
  for (const auto& s : src_energy_) res.end_system_energy += s.joules;
  for (const auto& s : dst_energy_) res.end_system_energy += s.joules;
  obs_end_run(local_end, res);
  return res;
}

}  // namespace eadt::proto
