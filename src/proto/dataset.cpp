#include "proto/dataset.hpp"

#include <algorithm>
#include <istream>
#include <numeric>

#include "util/config.hpp"

namespace eadt::proto {

Bytes Dataset::total_bytes() const {
  return std::accumulate(files.begin(), files.end(), Bytes{0},
                         [](Bytes acc, const FileInfo& f) { return acc + f.size; });
}

Dataset generate_dataset(const DatasetRecipe& recipe, Rng rng) {
  Dataset ds;
  for (const auto& band : recipe.bands) {
    const double target =
        static_cast<double>(recipe.total_bytes) * band.byte_share;
    double produced = 0.0;
    Rng band_rng = rng.fork(std::to_string(band.min_size));
    while (produced < target) {
      const double sz = band_rng.log_uniform(static_cast<double>(band.min_size),
                                             static_cast<double>(band.max_size));
      Bytes b = static_cast<Bytes>(sz);
      b = std::clamp(b, band.min_size, band.max_size);
      // Trim the final file so byte shares land on target (keeps recipes exact
      // and reproducible without rejection loops).
      if (produced + static_cast<double>(b) > target) {
        const double rest = target - produced;
        if (rest < static_cast<double>(band.min_size) / 2.0 && !ds.files.empty()) break;
        b = std::max<Bytes>(static_cast<Bytes>(rest), 1);
      }
      ds.files.push_back({b});
      produced += static_cast<double>(b);
    }
  }
  return ds;
}

std::optional<Dataset> dataset_from_listing(std::istream& in, std::string* error) {
  Dataset ds;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view v = trim(line);
    if (v.empty() || v.front() == '#') continue;
    // Size is the first whitespace-delimited token; the rest is the name
    // (ignored — the engine only needs sizes).
    const std::size_t ws = v.find_first_of(" \t");
    const std::string_view size_text = ws == std::string_view::npos ? v : v.substr(0, ws);
    const auto size = parse_size(size_text);
    if (!size || *size == 0) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": bad size '" +
                 std::string(size_text) + "'";
      }
      return std::nullopt;
    }
    ds.files.push_back({*size});
  }
  return ds;
}

const char* to_string(SizeClass c) noexcept {
  switch (c) {
    case SizeClass::kSmall: return "Small";
    case SizeClass::kMedium: return "Medium";
    case SizeClass::kLarge: return "Large";
  }
  return "?";
}

std::vector<Chunk> partition_files(const Dataset& dataset, Bytes bdp,
                                   const PartitionThresholds& thresholds) {
  Chunk small{SizeClass::kSmall, {}, 0};
  Chunk medium{SizeClass::kMedium, {}, 0};
  Chunk large{SizeClass::kLarge, {}, 0};
  const double bdp_d = static_cast<double>(std::max<Bytes>(bdp, 1));
  for (std::uint32_t i = 0; i < dataset.files.size(); ++i) {
    const double rel = static_cast<double>(dataset.files[i].size) / bdp_d;
    Chunk& target = rel < thresholds.small_max_bdp
                        ? small
                        : (rel < thresholds.medium_max_bdp ? medium : large);
    target.file_ids.push_back(i);
    target.total += dataset.files[i].size;
  }
  std::vector<Chunk> out;
  for (auto* c : {&small, &medium, &large}) {
    if (!c->file_ids.empty()) out.push_back(std::move(*c));
  }
  return out;
}

std::vector<Chunk> merge_chunks(std::vector<Chunk> chunks, std::size_t min_files,
                                double min_byte_fraction) {
  if (chunks.size() <= 1) return chunks;
  Bytes total = 0;
  for (const auto& c : chunks) total += c.total;
  const double min_bytes = static_cast<double>(total) * min_byte_fraction;

  bool merged = true;
  while (merged && chunks.size() > 1) {
    merged = false;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      const bool too_small = chunks[i].file_count() < min_files ||
                             static_cast<double>(chunks[i].total) < min_bytes;
      if (!too_small) continue;
      // Fold into the size-adjacent neighbour (prefer the previous chunk).
      const std::size_t dst = i > 0 ? i - 1 : i + 1;
      auto& target = chunks[dst];
      target.file_ids.insert(target.file_ids.end(), chunks[i].file_ids.begin(),
                             chunks[i].file_ids.end());
      target.total += chunks[i].total;
      chunks.erase(chunks.begin() + static_cast<std::ptrdiff_t>(i));
      merged = true;
      break;
    }
  }
  return chunks;
}

}  // namespace eadt::proto
