// Tick-level introspection of a running TransferSession.
//
// The sampling windows (SampleStats) are what the *algorithms* see; an
// observer sees what the *engine* does every tick — per-channel rates and
// assignments, aggregate goodput, instantaneous power. That is the right
// granularity for debugging a calibration ("why is the Large chunk's channel
// stuck at 0.7 Gbps at t=40?") and for exporting time series
// (exp::TickRecorder turns this into CSV).
//
// Observation is passive and allocation-light: the engine fills one TickTrace
// per tick only when an observer is attached.
#pragma once

#include <vector>

#include "util/units.hpp"

namespace eadt::proto {

struct ChannelTrace {
  int chunk = -1;
  int parallelism = 1;
  bool busy = false;
  BitsPerSecond rate = 0.0;  ///< allocated burst rate this tick
  Bytes moved = 0;           ///< bytes actually moved this tick
  bool down = false;         ///< failed; waiting out reconnect backoff
};

struct TickTrace {
  Seconds time = 0.0;             ///< end of the tick's slice
  BitsPerSecond goodput = 0.0;    ///< aggregate bytes moved / tick
  Watts end_system_power = 0.0;   ///< both endpoints, this tick
  int open_channels = 0;
  int down_channels = 0;            ///< channels in failure backoff this tick
  double path_capacity_factor = 1.0;  ///< < 1 during an injected brownout
  std::vector<ChannelTrace> channels;
};

class SessionObserver {
 public:
  virtual ~SessionObserver() = default;
  virtual void on_tick(const TickTrace& trace) = 0;
};

}  // namespace eadt::proto
