// The GridFTP-like transfer engine on top of the fluid-flow simulator.
//
// A TransferSession executes a TransferPlan over an Environment:
//   * each data channel is one process on a source DTN and one on a
//     destination DTN, moving one file at a time over `parallelism` TCP
//     streams with `pipelining` control commands in flight;
//   * every tick the engine computes per-channel rate caps (stream windows,
//     CPU share, disk share), a weighted max-min fair share of the bottleneck,
//     and a congestion efficiency, then advances file queues, resolving
//     per-file control gaps and slow-start penalties inside the tick;
//   * every tick it converts per-server load into utilization -> power ->
//     energy (Section 2.2 models) and packet counts -> network device energy
//     (Section 4, Eq. 5);
//   * every sampling window (5 s, like the paper) it reports SampleStats to
//     an optional Controller which may retarget the concurrency level — this
//     is the hook HTEE's search phase and SLAEE's SLA tracking use.
//
// Determinism: the engine is driven purely by the Simulation clock; repeated
// runs of the same (environment, dataset, plan) are bit-identical.
#pragma once

#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/fair_share.hpp"
#include "proto/checkpoint.hpp"
#include "proto/environment.hpp"
#include "proto/faults.hpp"
#include "proto/observer.hpp"
#include "proto/plan.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace eadt::obs {
struct ObsSinks;
}  // namespace eadt::obs

namespace eadt::proto {

struct ServerEnergy {
  std::string name;
  Joules joules = 0.0;
  Seconds active_time = 0.0;
};

struct RunResult {
  Seconds duration = 0.0;
  Bytes bytes = 0;  ///< wire bytes moved (includes fault retransmissions)
  Joules end_system_energy = 0.0;
  Joules network_energy = 0.0;
  int final_concurrency = 0;
  bool completed = false;  ///< false if the max-sim-time guard tripped
  /// Non-empty when the run refused to start (malformed FaultPlan, bad
  /// resume); such a result has completed == false and zero bytes.
  std::string error;
  /// Present whenever the run ended incomplete: the journal entry a caller
  /// (e.g. exp::Supervisor) resumes from without losing landed bytes.
  std::optional<TransferCheckpoint> checkpoint;
  FaultStats faults;       ///< robustness accounting (all zero without faults)
  /// Event-engine perf counters for this run (deterministic: a replay of the
  /// same scenario reports the same counts — only wall time may differ).
  sim::SimCounters sim_counters;
  std::vector<SampleStats> samples;
  std::vector<ServerEnergy> source_servers;
  std::vector<ServerEnergy> destination_servers;

  /// Unique file bytes durably delivered; equals the dataset size on a
  /// completed run even when faults forced retransmissions.
  [[nodiscard]] Bytes goodput_bytes() const {
    return bytes >= faults.wasted_bytes ? bytes - faults.wasted_bytes : 0;
  }
  [[nodiscard]] BitsPerSecond avg_throughput() const {
    return duration > 0.0 ? to_bits(bytes) / duration : 0.0;
  }
  /// Application-visible rate: wasted (re-sent) bytes excluded.
  [[nodiscard]] BitsPerSecond avg_goodput() const {
    return duration > 0.0 ? to_bits(goodput_bytes()) / duration : 0.0;
  }
  /// The paper's throughput/energy efficiency ratio. Guarded so degenerate
  /// runs (zero duration, zero energy during a total outage) report 0
  /// instead of NaN/inf.
  [[nodiscard]] double throughput_per_joule() const {
    if (duration <= 0.0 || end_system_energy <= 0.0) return 0.0;
    const double r = avg_throughput() / end_system_energy;
    return std::isfinite(r) ? r : 0.0;
  }
};

struct SessionConfig {
  Seconds tick = 0.1;
  Seconds sample_interval = 5.0;
  Seconds max_sim_time = 7.0 * 24 * 3600;  ///< hard stop; flags !completed
  /// Emit a TransferCheckpoint to the registered sink every this many
  /// simulated seconds (0 = only the final abort checkpoint).
  Seconds checkpoint_interval = 0.0;
  /// Which net::PathSet entry this session's environment was built from.
  /// Pure identity: stamped into every checkpoint so a resumed leg knows
  /// which route the capturing leg ran on. 0 = primary / single-path.
  int path_id = 0;
  /// Observability sinks (metrics / spans / decisions — MODEL.md §12). Null
  /// (the default) keeps the engine byte-identical and allocation-free: the
  /// only cost is one pointer compare at each guarded site. The sinks must
  /// outlive run(). Borrowed, so the config stays copyable — SweepRunner and
  /// Supervisor copy configs freely and every copy publishes into the same
  /// sinks.
  obs::ObsSinks* obs = nullptr;
};

class TransferSession : private FaultHost {
 public:
  TransferSession(const Environment& env, const Dataset& dataset, TransferPlan plan,
                  SessionConfig config = {});
  /// Multi-tenant form: run on an external, possibly shared Simulation
  /// instead of an owned one. The session records the clock at begin() as its
  /// epoch, so a tenant admitted mid-timeline still reports attempt-local
  /// times. The simulation must outlive the session. With a fresh simulation
  /// this is behaviourally identical to the owning constructor.
  TransferSession(sim::Simulation& sim, const Environment& env, const Dataset& dataset,
                  TransferPlan plan, SessionConfig config = {});
  ~TransferSession();  // out of line: ObsState is incomplete here

  /// Install a failure workload; call before run(). A default-constructed
  /// (inactive) plan — also the default — leaves the engine byte-identical
  /// to the failure-free behaviour.
  void set_fault_plan(FaultPlan plan);

  /// Run to completion (or the time guard). Controller may be null.
  [[nodiscard]] RunResult run(Controller* controller = nullptr);

  // --- shared-simulation phase API (multi-tenant; MODEL.md §13) ----------
  // exp::Scheduler drives several sessions on one Simulation by calling
  // these phases each master tick; link arbitration is lifted out of the
  // session so all tenants contend in one net::fair_share round. run() is
  // exactly begin + {tick_prepare, allocate_rates, advance_tick} per tick +
  // finalize, so the single-session path shares every line of this code.

  /// Start the session on its simulation: validates the fault plan, records
  /// the current clock as the session epoch, opens observability, builds the
  /// initial channel set, and arms the fault injector. Returns an error
  /// message instead when the run refuses to start.
  [[nodiscard]] std::optional<std::string> begin(Controller* controller = nullptr);
  /// Tick phase 1: revive backed-off channels, feed idle ones, rebalance.
  void tick_prepare();
  /// Tick phase 2a: compute this session's per-channel demand caps (CPU,
  /// windows, disk pools, duty cycles) and publish them as link demands.
  void collect_link_demands();
  [[nodiscard]] std::span<const net::Demand> link_demands() const noexcept;
  /// The same demands as link_demands(), run-length collapsed into
  /// (cap, weight, count) groups: adjacent channels with bitwise-identical
  /// caps and stream counts become one group. Expanding the groups in order
  /// reproduces link_demands() exactly, so submitting either to a
  /// net::LinkArbiter round yields the same joint allocation bit for bit —
  /// but a fleet of same-shape tenants costs the arbiter per-group.
  [[nodiscard]] std::span<const net::DemandGroup> link_demand_groups();
  /// The groups built by the last link_demand_groups() call, without
  /// recomputing them. Lets a serial arbitration loop submit what a parallel
  /// prepare phase already collapsed (exp::Scheduler's tick pipeline).
  [[nodiscard]] std::span<const net::DemandGroup> cached_link_demand_groups()
      const noexcept {
    return scratch_.link_groups;
  }
  /// Sum of this session's demand caps / parallel streams, inputs to the
  /// shared congestion-efficiency model.
  [[nodiscard]] double aggregate_demand() const noexcept { return agg_demand_; }
  [[nodiscard]] int aggregate_streams() const noexcept { return agg_streams_; }
  /// Tick phase 2b: turn an arbitration result (this session's slice of the
  /// joint allocation, plus the shared efficiency and burst factors) into
  /// per-channel rates. `alloc` must align with link_demands().
  void apply_link_allocation(std::span<const BitsPerSecond> alloc, double eff,
                             double burst_cap);
  /// Tick phase 3: move bytes, account energy, emit checkpoints/samples.
  /// Returns false once every queue is drained (the transfer is complete).
  /// Exactly advance_compute() followed by advance_commit(); a shared-
  /// simulation driver may call the halves itself to overlap many sessions'
  /// compute before committing them in admission order (MODEL.md §16).
  [[nodiscard]] bool advance_tick();
  /// Tick phase 3a — the parallel-safe half of advance_tick(): move bytes
  /// through the channels and account this tick's energy. Touches only this
  /// session's state (its channels, queues, ledgers and seeded RNG streams),
  /// never the shared Simulation, so disjoint sessions may run it
  /// concurrently with bit-identical results.
  void advance_compute();
  /// Tick phase 3b — the serial half: checkpoint emission, observability,
  /// sampling windows and controller callbacks for the tick that
  /// advance_compute() just produced. Must run on the driving thread, in a
  /// fixed session order. Returns false once every queue is drained.
  [[nodiscard]] bool advance_commit();
  /// Close the books at raw simulation clock `end_raw` and build the result
  /// (abort checkpoint included when `completed` is false). The session is
  /// spent afterwards.
  [[nodiscard]] RunResult finalize(bool completed, Seconds end_raw);
  /// Current path brownout factor (1.0 outside any fault window). Under a
  /// shared link, a brownout seen by any tenant is a property of the path.
  [[nodiscard]] double path_factor() const noexcept { return path_factor_; }
  /// End-system power drawn over the last advanced tick.
  [[nodiscard]] Watts last_tick_power() const noexcept { return last_tick_power_; }
  /// Goodput bytes moved in the most recent tick (health-monitor feed).
  [[nodiscard]] Bytes last_tick_bytes() const noexcept { return last_tick_bytes_; }
  /// Data channels currently open. Fleet telemetry sums this across running
  /// tenants for the active-channel series.
  [[nodiscard]] int open_channel_count() const noexcept {
    return static_cast<int>(channels_.size());
  }
  [[nodiscard]] Bytes dataset_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] const Environment& environment() const noexcept { return env_; }

  /// Attach a passive tick-level observer (may be null to detach). The
  /// observer must outlive run().
  void set_observer(SessionObserver* observer) noexcept { observer_ = observer; }

  // --- checkpoint / resume ----------------------------------------------

  /// Snapshot durable progress right now (also valid after run() returned, or
  /// before it started). The journal is keyed by file id, so it can seed a
  /// resume under a *different* plan over the same dataset.
  [[nodiscard]] TransferCheckpoint make_checkpoint() const;

  /// Receive the periodic journal entries (`SessionConfig::checkpoint_interval`)
  /// plus the final entry of an aborted run. The sink must outlive run().
  void set_checkpoint_sink(std::function<void(const TransferCheckpoint&)> sink) {
    checkpoint_sink_ = std::move(sink);
  }

  /// Continue an interrupted transfer: drop landed files from the queues,
  /// trim partially delivered files to their residual suffix, and restore the
  /// wire/energy/fault ledgers and RNG streams, so the resumed run reports
  /// cumulative totals and never re-pays delivered bytes. Call after
  /// set_fault_plan() (which reseeds the RNGs this restores) and before
  /// run(). Fails (false, *error filled) on a dataset-fingerprint mismatch or
  /// a server-count mismatch; the session is unusable after a failed resume.
  [[nodiscard]] bool resume_from(const TransferCheckpoint& checkpoint,
                                 std::string* error = nullptr);

  // --- Controller API (valid during run(), from on_sample) ---------------

  /// Retarget the total number of open data channels; takes effect next tick.
  void set_total_concurrency(int n);
  /// MinE/SLAEE rule: cap the Large chunk's channels (nullopt removes the
  /// cap — SLAEE's reArrangeChannels).
  void set_large_chunk_cap(std::optional<int> cap);
  [[nodiscard]] int total_concurrency_target() const noexcept { return target_concurrency_; }
  [[nodiscard]] Seconds now() const noexcept;
  [[nodiscard]] Bytes bytes_remaining() const noexcept;
  /// The observability sinks this session publishes into (null when off).
  /// Controllers use this to emit probe spans / decisions into the same
  /// buffers as the session's own telemetry.
  [[nodiscard]] obs::ObsSinks* observation() const noexcept { return config_.obs; }

 private:
  TransferSession(sim::Simulation* external, const Environment& env,
                  const Dataset& dataset, TransferPlan plan, SessionConfig config);

  struct QueueEntry {
    std::uint32_t file_id = 0;
    Bytes remaining = 0;
    Bytes size = 0;  ///< full file size (for whole-file retransmission)
  };
  struct Channel {
    int chunk = -1;
    int parallelism = 1;
    int pipelining = 1;
    bool cold = true;  ///< next file pays a full slow-start ramp
    std::size_t src_server = 0;
    std::size_t dst_server = 0;
    bool busy = false;
    QueueEntry work{};
    Seconds overhead_left = 0.0;
    BitsPerSecond rate = 0.0;
    Bytes moved_this_tick = 0;
    // --- failure state (inert without a fault plan) ---------------------
    bool down = false;      ///< connection lost; waiting out backoff
    bool stranded = false;  ///< down because a side has no live server
    Seconds down_since = 0.0;
    Seconds down_until = 0.0;
    int failures = 0;  ///< consecutive faults on this slot (reset on completion)
    /// Trace track this channel's lease span is open on (-1 = none).
    int obs_lane = -1;
  };

  /// Per-tick workspace for allocate_rates(). Same lifetime as the session,
  /// so every vector keeps its capacity between ticks and the steady-state
  /// rate pipeline performs zero heap allocations (MODEL.md §11; pinned by
  /// the alloc-guard test). Scratch only — never carries state across ticks.
  struct RateScratch {
    std::vector<int> src_procs, src_threads, dst_procs, dst_threads;
    std::vector<double> caps, duty;
    std::vector<net::Demand> pool_demands;      ///< one disk pool at a time
    std::vector<std::size_t> pool_index;
    std::vector<BitsPerSecond> pool_alloc;
    std::vector<net::Demand> link_demands;      ///< the shared-link round
    std::vector<net::DemandGroup> link_groups;  ///< collapsed view of the above
    std::vector<BitsPerSecond> link_alloc;
    net::FairShareScratch fair_share;
    // rebalance() workspace: a dry queue triggers a rebalance every tick, so
    // the channel-allocation round must be as allocation-free as the rates.
    std::vector<int> desired, busy_count, capacity, have;
    std::vector<std::size_t> eligible, free_slots, to_close;
  };

  void rebalance();
  void open_channel(int chunk);
  void close_channel(std::size_t idx);      // requeues any in-flight remainder
  void assign_channel(Channel& ch, int chunk);
  /// Returns scratch_.desired (stable until the next call).
  [[nodiscard]] const std::vector<int>& desired_allocation();
  [[nodiscard]] bool chunk_live(int chunk) const;
  /// Non-transfer time around one file on this channel (server-side per-file
  /// cost, control-channel gap, congestion-window ramp).
  [[nodiscard]] Seconds per_file_overhead(const Channel& ch, Bytes size,
                                          bool cold) const;
  bool pop_next_file(Channel& ch);          // false if the queue is empty
  void advance_channels(Seconds dt);
  /// Single-session tick phase 2: collect demands, run the link fair-share
  /// round locally, apply. The shared-simulation path replaces only the
  /// middle (the arbitration) — the collect/apply halves are the same code.
  void allocate_rates();
  /// Returns the end-system energy accrued this tick.
  Joules account_energy(Seconds dt);
  [[nodiscard]] bool finished() const;
  bool tick();                               // one dt step; false when done

  // --- failure-recovery machinery ---------------------------------------
  void fault_drop_channel(int index) override;
  void fault_server_state(bool source_side, std::size_t server, bool up) override;
  void fault_path_factor(double factor) override;
  /// Quarantine shrinks the channel pool; never below one.
  [[nodiscard]] int effective_concurrency() const {
    return std::max(1, target_concurrency_ - quarantined_);
  }
  [[nodiscard]] bool server_up(bool source_side, std::size_t server) const;
  /// First live server (packed) / next live server round-robin (spread);
  /// nullopt when the whole side is down.
  [[nodiscard]] std::optional<std::size_t> pick_server(bool source_side);
  /// Return a fault-interrupted in-flight file to its queue (resume offset
  /// with restart markers, full retransmission otherwise).
  void requeue_inflight(Channel& ch);
  /// Exponential backoff with seeded jitter for the n-th consecutive failure.
  [[nodiscard]] Seconds backoff_delay(int failures);
  void charge_waste(Bytes lost);
  void revive_channels();

  // --- observability ------------------------------------------------------
  // Every obs_* call is a no-op unless run() found sinks in config_.obs and
  // built an ObsState; the steady-state tick cost without sinks is a single
  // null compare (pinned, like the rate pipeline, by the alloc-guard test).
  /// This session's view of the clock: raw simulation time minus the epoch
  /// recorded at begin() (zero when the session owns its simulation, so the
  /// arithmetic is exact and the single-session path is byte-identical).
  [[nodiscard]] Seconds local_now() const noexcept { return sim_.now() - start_time_; }
  /// Absolute transfer time: resumed legs continue the prior legs' clock.
  [[nodiscard]] Seconds abs_now() const noexcept { return time_offset_ + local_now(); }
  void obs_begin_run();
  void obs_tick(Joules tick_energy, Seconds dt);
  void obs_sample(const SampleStats& s);
  void obs_checkpoint_write();
  void obs_lease_begin(Channel& ch);
  void obs_lease_end(Channel& ch, Seconds at);
  void obs_end_run(Seconds local_end, const RunResult& res);

  const Environment& env_;
  TransferPlan plan_;
  SessionConfig config_;
  std::vector<std::deque<QueueEntry>> queues_;  // per chunk
  std::vector<Bytes> chunk_remaining_;
  std::vector<Channel> channels_;
  int target_concurrency_ = 0;
  std::optional<int> large_cap_;
  std::size_t rr_src_ = 0, rr_dst_ = 0;  // round-robin placement cursors

  /// Owned unless the external-simulation constructor was used; declared
  /// before the reference so initialization order is safe.
  std::unique_ptr<sim::Simulation> owned_sim_;
  sim::Simulation& sim_;
  /// Raw simulation clock at begin(): the epoch of this session's local
  /// timeline (always 0.0 for an owned simulation).
  Seconds start_time_ = 0.0;
  RateScratch scratch_;
  // Aggregates of the last collect_link_demands() pass, inputs to the
  // (possibly shared) congestion model.
  double agg_demand_ = 0.0;
  int agg_streams_ = 0;
  Watts last_tick_power_ = 0.0;
  Bytes last_tick_bytes_ = 0;
  /// Energy accrued by the last advance_compute(), handed to the matching
  /// advance_commit() (obs + sampling read it on the driving thread).
  Joules pending_tick_energy_ = 0.0;
  struct ObsState;
  std::unique_ptr<ObsState> obs_;  ///< built by run() iff sinks are attached
  Rng jitter_rng_{1};  // reseeded from env.jitter_seed in the constructor
  Controller* controller_ = nullptr;
  SessionObserver* observer_ = nullptr;
  // --- checkpoint / resume state -----------------------------------------
  std::uint64_t dataset_fingerprint_ = 0;
  /// Absolute transfer time already consumed by the legs this session resumed
  /// from; added to every reported time (samples, checkpoints, duration).
  Seconds time_offset_ = 0.0;
  Seconds last_checkpoint_ = 0.0;  ///< local time of the last periodic emit
  std::function<void(const TransferCheckpoint&)> checkpoint_sink_;
  Bytes total_bytes_ = 0;
  Bytes bytes_moved_ = 0;  ///< wire bytes (retransmissions included)
  Joules network_energy_ = 0.0;
  Joules end_system_total_ = 0.0;  ///< running total, for waste attribution
  std::vector<ServerEnergy> src_energy_, dst_energy_;
  // sampling window accumulators
  Seconds window_start_ = 0.0;
  Bytes window_bytes_ = 0;
  Bytes window_wasted_ = 0;
  Joules window_energy_ = 0.0;
  std::vector<SampleStats> samples_;
  // fault state
  FaultPlan faults_;
  std::unique_ptr<FaultInjector> injector_;
  FaultStats fault_stats_;
  Rng victim_rng_{1}, backoff_rng_{1}, checksum_rng_{1};  // reseeded by set_fault_plan
  std::vector<char> src_srv_up_, dst_srv_up_;
  std::vector<Seconds> src_srv_down_since_, dst_srv_down_since_;
  double path_factor_ = 1.0;
  int quarantined_ = 0;
};

}  // namespace eadt::proto
