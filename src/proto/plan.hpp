// Transfer plans: what an algorithm decides before (and while) data moves.
//
// A plan fixes, per chunk, the three application-layer parameters the paper
// tunes — pipelining, parallelism, channel count (concurrency) — plus
// session-wide behaviour: whether chunks run sequentially (SC, GO) or
// simultaneously (ProMC, MinE, HTEE), how freed channels are re-used, and how
// channels are placed across a site's DTN servers.
#pragma once

#include <cmath>
#include <optional>
#include <vector>

#include "proto/dataset.hpp"

namespace eadt::proto {

struct ChunkParams {
  int pipelining = 1;
  int parallelism = 1;
  int channels = 0;  ///< concurrent data channels assigned to this chunk
};

/// How channels map to a site's DTN servers.
enum class Placement {
  kPacked,      ///< all channels on one server (the paper's custom client)
  kRoundRobin,  ///< spread across servers (Globus Online / globus-url-copy)
};

/// What an idle channel does when its own chunk runs dry.
enum class StealPolicy {
  kNone,          ///< close immediately
  kNonLargeOnly,  ///< help Small/Medium chunks, never grow the Large chunk's
                  ///< channel count (MinE's energy-saving rule)
  kAll,           ///< help whichever chunk has the most bytes left (ProMC)
};

struct TransferPlan {
  std::vector<Chunk> chunks;
  std::vector<ChunkParams> params;  ///< parallel to `chunks`
  Placement placement = Placement::kPacked;
  StealPolicy steal = StealPolicy::kAll;
  /// SC and GO transfer one chunk at a time; multi-chunk algorithms overlap.
  bool sequential_chunks = false;
  /// Extra per-file latency imposed by the transfer *service* itself, on top
  /// of the environment's server-side cost. Globus Online's cloud-hosted
  /// fire-and-forget pipeline books, audits and acknowledges every file
  /// through the hosted service; direct GridFTP clients pay nothing here.
  Seconds service_overhead_per_file = 0.0;
  /// End-to-end integrity verification: each file is re-read and hashed at
  /// this rate after landing (the feature the paper disabled in GO "to do
  /// fair comparison" because it "causes significant slowdowns"). 0 = off.
  BitsPerSecond checksum_rate = 0.0;

  [[nodiscard]] int total_channels() const {
    int n = 0;
    for (const auto& p : params) n += p.channels;
    return n;
  }
};

/// Live statistics handed to adaptive controllers every sampling window
/// (the paper's algorithms sample every five seconds).
struct SampleStats {
  Seconds window_start = 0.0;
  Seconds window_end = 0.0;
  Bytes bytes = 0;  ///< wire bytes this window (fault retransmissions included)
  Joules end_system_energy = 0.0;
  int active_channels = 0;
  Bytes wasted_bytes = 0;  ///< bytes charged to faults this window
  int down_channels = 0;   ///< channels in failure backoff at window end

  [[nodiscard]] Seconds duration() const { return window_end - window_start; }
  [[nodiscard]] BitsPerSecond throughput() const {
    const Seconds d = duration();
    return d > 0.0 ? to_bits(bytes) / d : 0.0;
  }
  /// The paper's energy-efficiency metric: throughput per unit energy.
  /// Guarded so a dead window (zero duration or zero energy during a total
  /// outage) reads 0 instead of NaN/inf.
  [[nodiscard]] double throughput_per_joule() const {
    if (end_system_energy <= 0.0) return 0.0;
    const double r = throughput() / end_system_energy;
    return std::isfinite(r) ? r : 0.0;
  }
};

class TransferSession;  // forward

/// Runtime hook for HTEE's search phase and SLAEE's SLA tracking.
class Controller {
 public:
  virtual ~Controller() = default;
  /// Override the plan's initial total concurrency (HTEE starts at 1).
  virtual std::optional<int> initial_concurrency() { return std::nullopt; }
  /// Called once before the first tick (e.g. to pin the Large chunk's cap).
  virtual void on_start(TransferSession& /*session*/) {}
  /// Called at the end of every sampling window.
  virtual void on_sample(TransferSession& session, const SampleStats& stats) = 0;
};

}  // namespace eadt::proto
