// A transfer environment: two endpoints (each a pool of data-transfer-node
// servers), the WAN/LAN path between them, and the device route the bytes
// cross. This is the simulator's stand-in for Figure 1's testbeds.
#pragma once

#include <string>
#include <vector>

#include "host/server.hpp"
#include "net/tcp_model.hpp"
#include "net/topology.hpp"
#include "power/end_system.hpp"
#include "util/units.hpp"

namespace eadt::proto {

/// One side of the transfer: a site with one or more DTN servers.
struct Endpoint {
  std::string site;
  std::vector<host::ServerSpec> servers;
  power::PowerCoefficients power;
};

struct Environment {
  std::string name;
  Endpoint source;
  Endpoint destination;
  net::PathSpec path;
  net::CongestionSpec congestion;
  net::Route route;
  /// Fraction of the congestion window an *unpipelined* channel retains
  /// across the RTT-long idle gap between files (pipelined channels never go
  /// idle and retain all of it); see net::slow_start_penalty.
  double warm_fraction = 0.7;
  /// Fixed server-side cost per file (metadata, open/close, checksum setup).
  /// Pipelining hides the *network* round trip but not this: it is why a
  /// dedicated small-file phase (SC, GO) drags while ProMC hides small files
  /// behind its bulk streams.
  Seconds per_file_cost = 0.025;
  /// Multiplicative per-tick rate noise (relative standard deviation) —
  /// cross-traffic burstiness, storage hiccups. 0 keeps the engine exactly
  /// deterministic; > 0 is still reproducible for a fixed `jitter_seed`
  /// (Monte-Carlo robustness studies vary the seed).
  double rate_jitter_sd = 0.0;
  std::uint64_t jitter_seed = 1;

  [[nodiscard]] Bytes bdp() const { return path.bdp(); }
};

}  // namespace eadt::proto
