#include "proto/faults.hpp"

#include <cmath>

namespace eadt::proto {

FaultInjector::FaultInjector(sim::Simulation& sim, const FaultPlan& plan,
                             FaultHost& host)
    : sim_(sim), plan_(plan), host_(host),
      arrival_rng_(Rng(plan.seed).fork("fault-arrivals")) {}

void FaultInjector::arm() {
  for (const auto& d : plan_.channel_drops) {
    sim_.schedule_at(d.time, [this, d] { host_.fault_drop_channel(d.channel); });
  }
  for (const auto& o : plan_.outages) {
    sim_.schedule_at(o.start, [this, o] {
      host_.fault_server_state(o.source_side, o.server, /*up=*/false);
    });
    sim_.schedule_at(o.start + o.duration, [this, o] {
      host_.fault_server_state(o.source_side, o.server, /*up=*/true);
    });
  }
  for (const auto& b : plan_.brownouts) {
    sim_.schedule_at(b.start, [this, b] { host_.fault_path_factor(b.capacity_factor); });
    sim_.schedule_at(b.start + b.duration, [this] { host_.fault_path_factor(1.0); });
  }
  if (plan_.stochastic.channel_drop_rate > 0.0) schedule_next_stochastic_drop();
}

void FaultInjector::schedule_next_stochastic_drop() {
  // Poisson arrivals: exponential inter-arrival times. The chain re-arms
  // itself after every firing, so the arrival process runs for the whole
  // simulation; drops that find no live channel are simply absorbed by the
  // host as no-ops.
  const double u = arrival_rng_.uniform01();
  const Seconds gap = -std::log(1.0 - u) / plan_.stochastic.channel_drop_rate;
  sim_.schedule_after(gap, [this] {
    host_.fault_drop_channel(-1);
    schedule_next_stochastic_drop();
  });
}

}  // namespace eadt::proto
