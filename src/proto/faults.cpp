#include "proto/faults.hpp"

#include <algorithm>
#include <cmath>

namespace eadt::proto {
namespace {

std::string at_index(const char* what, std::size_t i) {
  return std::string(what) + "[" + std::to_string(i) + "]: ";
}

}  // namespace

std::optional<std::string> FaultPlan::validate() const {
  for (std::size_t i = 0; i < channel_drops.size(); ++i) {
    if (channel_drops[i].time < 0.0) {
      return at_index("channel_drops", i) + "negative fire time";
    }
  }
  for (std::size_t i = 0; i < outages.size(); ++i) {
    if (outages[i].start < 0.0) return at_index("outages", i) + "negative start time";
    if (outages[i].duration < 0.0) return at_index("outages", i) + "negative duration";
  }
  // Brownout windows set an absolute path factor and their end events restore
  // 1.0, so overlap would silently clobber the earlier window's recovery.
  // Windows on *different* paths never meet the same session (for_path keeps
  // at most one target plus the untargeted ones), but an untargeted window
  // (-1) coexists with every target, so it must not overlap any of them.
  std::vector<PathBrownoutEvent> sorted = brownouts;
  std::sort(sorted.begin(), sorted.end(),
            [](const PathBrownoutEvent& a, const PathBrownoutEvent& b) {
              return a.start < b.start;
            });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].start < 0.0) return at_index("brownouts", i) + "negative start time";
    if (sorted[i].duration < 0.0) return at_index("brownouts", i) + "negative duration";
    if (sorted[i].capacity_factor < 0.0 || sorted[i].capacity_factor > 1.0) {
      return at_index("brownouts", i) + "capacity_factor outside [0, 1]";
    }
    if (sorted[i].path < -1) return at_index("brownouts", i) + "path below -1";
    for (std::size_t j = i; j-- > 0;) {
      const bool same_session = sorted[i].path == sorted[j].path ||
                                sorted[i].path == -1 || sorted[j].path == -1;
      if (same_session && sorted[i].start < sorted[j].start + sorted[j].duration) {
        return "brownouts: windows overlap (second starts at " +
               std::to_string(sorted[i].start) + " s, inside the window ending at " +
               std::to_string(sorted[j].start + sorted[j].duration) + " s)";
      }
    }
  }
  if (stochastic.channel_drop_rate < 0.0) {
    return "stochastic.channel_drop_rate: negative drop rate";
  }
  if (stochastic.checksum_failure_prob < 0.0 || stochastic.checksum_failure_prob > 1.0) {
    return "stochastic.checksum_failure_prob: probability outside [0, 1]";
  }
  if (retry.backoff_initial < 0.0) return "retry.backoff_initial: negative delay";
  if (retry.backoff_multiplier <= 0.0) {
    return "retry.backoff_multiplier: must be positive";
  }
  if (retry.backoff_max < 0.0) return "retry.backoff_max: negative ceiling";
  if (retry.backoff_jitter < 0.0 || retry.backoff_jitter > 1.0) {
    return "retry.backoff_jitter: fraction outside [0, 1]";
  }
  if (retry.channel_retry_budget < 0) {
    return "retry.channel_retry_budget: negative budget";
  }
  return std::nullopt;
}

FaultPlan FaultPlan::for_path(int path_id) const {
  FaultPlan out = *this;
  std::erase_if(out.brownouts, [path_id](const PathBrownoutEvent& b) {
    return b.path != -1 && b.path != path_id;
  });
  return out;
}

Seconds retry_backoff_delay(const RetryPolicy& retry, int failures, Rng& rng) {
  Seconds d = retry.backoff_initial *
              std::pow(retry.backoff_multiplier,
                       static_cast<double>(std::max(0, failures - 1)));
  d = std::min(d, retry.backoff_max);
  if (retry.backoff_jitter > 0.0) {
    d *= 1.0 + retry.backoff_jitter * rng.uniform(-1.0, 1.0);
  }
  return std::max(d, 0.0);
}

FaultInjector::FaultInjector(sim::Simulation& sim, const FaultPlan& plan,
                             FaultHost& host, Seconds origin)
    : sim_(sim), plan_(plan), host_(host), origin_(origin),
      arrival_rng_(Rng(plan.seed).fork("fault-arrivals")) {}

FaultInjector::~FaultInjector() {
  // Cancelling fired or already-cancelled events is a no-op, so this is
  // exactly "whatever of mine is still pending, take it off the queue".
  for (const auto& id : pending_) sim_.cancel(id);
  sim_.cancel(stochastic_);
}

void FaultInjector::arm() {
  for (const auto& d : plan_.channel_drops) {
    pending_.push_back(sim_.schedule_at(
        origin_ + d.time, [this, d] { host_.fault_drop_channel(d.channel); }));
  }
  for (const auto& o : plan_.outages) {
    pending_.push_back(sim_.schedule_at(origin_ + o.start, [this, o] {
      host_.fault_server_state(o.source_side, o.server, /*up=*/false);
    }));
    pending_.push_back(
        sim_.schedule_at(origin_ + (o.start + o.duration), [this, o] {
          host_.fault_server_state(o.source_side, o.server, /*up=*/true);
        }));
  }
  for (const auto& b : plan_.brownouts) {
    pending_.push_back(sim_.schedule_at(
        origin_ + b.start, [this, b] { host_.fault_path_factor(b.capacity_factor); }));
    pending_.push_back(sim_.schedule_at(origin_ + (b.start + b.duration),
                                        [this] { host_.fault_path_factor(1.0); }));
  }
  if (plan_.stochastic.channel_drop_rate > 0.0) schedule_next_stochastic_drop();
}

void FaultInjector::schedule_next_stochastic_drop() {
  // Poisson arrivals: exponential inter-arrival times. The chain re-arms
  // itself after every firing, so the arrival process runs for the whole
  // simulation; drops that find no live channel are simply absorbed by the
  // host as no-ops.
  const double u = arrival_rng_.uniform01();
  const Seconds gap = -std::log(1.0 - u) / plan_.stochastic.channel_drop_rate;
  stochastic_ = sim_.schedule_after(gap, [this] {
    host_.fault_drop_channel(-1);
    schedule_next_stochastic_drop();
  });
}

}  // namespace eadt::proto
