// Deterministic fault injection for the transfer engine.
//
// Real DTN-to-DTN transfers on XSEDE/FutureGrid-class links are not
// failure-free: data channels stall and die, whole DTN servers drop out for
// maintenance or crash, paths brown out under cross-traffic, and end-to-end
// checksums occasionally reject a landed file. A FaultPlan describes such a
// failure workload — scheduled events plus seeded-stochastic ones — and a
// FaultInjector replays it off the sim::Simulation event queue, calling back
// into the engine through the narrow FaultHost interface.
//
// Determinism: every stochastic element (Poisson drop arrivals, victim
// selection, backoff jitter, checksum verdicts) draws from named forks of a
// single Rng seeded from FaultPlan::seed, so a (environment, dataset, plan,
// fault plan) tuple is bit-reproducible. A default-constructed FaultPlan is
// inert: the engine takes exactly the code paths it took before this
// subsystem existed and produces byte-identical results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace eadt::proto {

/// Kill one open data channel at an absolute simulated time. The channel's
/// in-flight file is requeued (see RetryPolicy) and the channel re-opens
/// after backoff.
struct ChannelDropEvent {
  Seconds time = 0.0;
  /// Index into the list of live channels at fire time (taken modulo the
  /// live count); -1 picks a seeded-uniform victim.
  int channel = -1;
};

/// Take one DTN server out of service for a window. Channels placed on it
/// are re-placed onto surviving servers of the same side; if none survive
/// they strand until a server recovers.
struct ServerOutageEvent {
  bool source_side = true;
  std::size_t server = 0;
  Seconds start = 0.0;
  Seconds duration = 0.0;
};

/// Path brownout: the shared link's capacity drops to `capacity_factor` of
/// nominal for the window (windows on the same path should not overlap).
struct PathBrownoutEvent {
  Seconds start = 0.0;
  Seconds duration = 0.0;
  double capacity_factor = 0.5;
  /// Which PathSet entry the brownout hits: -1 (default) hits whatever path
  /// the session runs on — the single-path behaviour — while >= 0 targets one
  /// alternate route, so a failover scenario can flap the primary and leave
  /// the backup clean. Sessions filter with FaultPlan::for_path.
  int path = -1;
};

/// Seeded-stochastic background failures.
struct StochasticFaults {
  /// Poisson arrival rate of channel kills, in drops per simulated second
  /// across the whole session (victims are picked seeded-uniform).
  double channel_drop_rate = 0.0;
  /// Probability that a fully landed file fails its end-to-end checksum and
  /// must be retransmitted from scratch.
  double checksum_failure_prob = 0.0;
};

/// How the engine recovers a failed channel.
struct RetryPolicy {
  /// GridFTP restart markers: a requeued file resumes from its last byte
  /// offset. false = legacy whole-file retransmission (the already-moved
  /// prefix is wasted and re-sent).
  bool restart_markers = true;
  Seconds backoff_initial = 1.0;      ///< first reconnect delay
  double backoff_multiplier = 2.0;    ///< exponential growth per consecutive failure
  Seconds backoff_max = 30.0;         ///< backoff ceiling
  double backoff_jitter = 0.1;        ///< +/- fraction of seeded jitter per delay
  /// Consecutive failures (without an intervening completed file) a channel
  /// slot may absorb before it is quarantined — closed for good, shrinking
  /// the effective concurrency by one (never below one).
  int channel_retry_budget = 6;
};

struct FaultPlan {
  std::vector<ChannelDropEvent> channel_drops;
  std::vector<ServerOutageEvent> outages;
  std::vector<PathBrownoutEvent> brownouts;
  StochasticFaults stochastic;
  RetryPolicy retry;
  std::uint64_t seed = 1;

  /// An inactive plan injects nothing and leaves the engine byte-identical
  /// to a run without a fault plan at all.
  [[nodiscard]] bool active() const noexcept {
    return !channel_drops.empty() || !outages.empty() || !brownouts.empty() ||
           stochastic.channel_drop_rate > 0.0 ||
           stochastic.checksum_failure_prob > 0.0;
  }

  /// Sanity-check the plan: rejects negative rates/durations/times,
  /// out-of-range probabilities and capacity factors, overlapping brownout
  /// windows, and degenerate retry parameters (non-positive backoff
  /// multiplier, jitter outside [0,1], negative retry budget). Returns a
  /// human-readable reason, or nullopt when the plan is usable.
  /// TransferSession::run() calls this before the first tick and refuses to
  /// start on a malformed plan (RunResult::error carries the reason).
  [[nodiscard]] std::optional<std::string> validate() const;

  /// The plan as seen by a session running on PathSet entry `path_id`:
  /// brownouts targeting a *different* path are dropped, everything else is
  /// kept verbatim. With no targeted brownouts the result equals the input,
  /// so single-path callers can pass their plan through unconditionally.
  [[nodiscard]] FaultPlan for_path(int path_id) const;
};

/// The n-th consecutive failure's reconnect delay: exponential growth from
/// `backoff_initial`, capped at `backoff_max`, with seeded +/- jitter drawn
/// from `rng`. Exposed as a free function so the schedule is unit-testable
/// apart from a full session run.
[[nodiscard]] Seconds retry_backoff_delay(const RetryPolicy& retry, int failures,
                                          Rng& rng);

/// Robustness accounting accumulated over a run (RunResult::faults).
struct FaultStats {
  std::int64_t retries = 0;             ///< files resumed or retransmitted after a fault
  std::int64_t channel_drops = 0;       ///< channel-kill events absorbed
  std::int64_t checksum_failures = 0;   ///< landed files rejected by verification
  std::int64_t server_outages = 0;      ///< outage windows that hit the run
  std::int64_t quarantined_channels = 0;
  Bytes wasted_bytes = 0;     ///< bytes moved more than once (lost prefixes, re-sent files)
  Joules wasted_joules = 0.0; ///< end-system energy attributed to wasted bytes
  Seconds channel_downtime = 0.0;  ///< channel-slot seconds spent in backoff / stranded
  Seconds server_downtime = 0.0;   ///< server seconds out of service during the run
};

/// The engine half of the injection contract; TransferSession implements it.
class FaultHost {
 public:
  virtual ~FaultHost() = default;
  /// Kill a live channel (`index` as in ChannelDropEvent::channel).
  virtual void fault_drop_channel(int index) = 0;
  /// Mark one server down/up and displace / re-admit its channels.
  virtual void fault_server_state(bool source_side, std::size_t server, bool up) = 0;
  /// Scale the shared path capacity (1.0 = nominal).
  virtual void fault_path_factor(double factor) = 0;
};

/// Replays a FaultPlan onto a FaultHost via the simulation event queue.
/// Construct once per run, then arm() before the first tick. Plan event
/// times are attempt-local; `origin` shifts them onto the simulation clock,
/// so a session admitted mid-timeline on a shared simulation
/// (exp::Scheduler) still sees the plan relative to its own start. The
/// default origin of 0 is the owned-simulation case and adds exactly
/// nothing. The destructor cancels every still-pending plan event, so a
/// session can be destroyed (preempted, completed) while the shared
/// simulation keeps running — its fault callbacks must not outlive it.
class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, const FaultPlan& plan, FaultHost& host,
                Seconds origin = 0.0);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every plan event (and the first stochastic arrival).
  void arm();

 private:
  void schedule_next_stochastic_drop();

  sim::Simulation& sim_;
  const FaultPlan& plan_;
  FaultHost& host_;
  Seconds origin_ = 0.0;
  Rng arrival_rng_;
  std::vector<sim::EventId> pending_;  ///< arm()'s one-shot plan events
  sim::EventId stochastic_;            ///< the chain's single in-flight arrival
};

}  // namespace eadt::proto
