// Checkpoint/resume journal for the transfer engine.
//
// A TransferCheckpoint is a durable snapshot of everything a transfer needs
// to continue after an interruption: which files landed completely, the
// durable byte offset of every partially moved file (the journal doubles as
// a GridFTP restart-marker store), the wire/energy/fault ledgers so far, and
// the mid-stream state of every RNG so a resumed run continues its stochastic
// history instead of replaying it.
//
// The snapshot is deliberately *plan-agnostic*: progress is keyed by file id,
// not by chunk or channel, so a resumed session may run a different plan —
// fewer channels, or a different algorithm's chunking — over the residual
// dataset. That is what lets the exp::Supervisor's degradation ladder step a
// struggling job down to a safer operating point without losing landed bytes.
// (Channel/chunk assignments at capture time are recorded for observability,
// but a resume re-opens connections from scratch, as a real client would.)
//
// Serialization is a line-based `key value...` text format; doubles are
// written as C99 hex-floats so a write/read round trip is bit-exact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "proto/dataset.hpp"
#include "proto/faults.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace eadt::proto {

/// Durable progress of one partially transferred file.
struct FileCursor {
  std::uint32_t file_id = 0;
  Bytes delivered = 0;  ///< bytes durably landed (the restart-marker offset)
};

/// One server's energy ledger at capture time.
struct ServerLedgerEntry {
  std::string name;
  Joules joules = 0.0;
  Seconds active_time = 0.0;
};

struct TransferCheckpoint {
  /// Bumped when the serialized layout changes; readers reject other versions.
  static constexpr int kFormatVersion = 1;

  Seconds taken_at = 0.0;  ///< absolute transfer time (prior resumed legs included)
  /// Fingerprint of the dataset (file count + sizes); resume_from refuses a
  /// checkpoint taken against different data.
  std::uint64_t dataset_fingerprint = 0;
  /// Which PathSet entry the capturing leg ran on (0 = primary). Identity
  /// only: resume_from does not check it, because cross-path resume between
  /// the same endpoints is exactly what failover does. Serialized as an
  /// optional `path` line, omitted when 0, so single-path journals are
  /// byte-identical to format v1 readers and goldens.
  int path_id = 0;
  Bytes wire_bytes = 0;  ///< wire bytes moved so far (retransmissions included)
  Joules end_system_energy = 0.0;
  Joules network_energy = 0.0;
  FaultStats faults;
  int quarantined_channels = 0;
  std::vector<std::uint32_t> completed;  ///< fully landed file ids, ascending
  std::vector<FileCursor> partial;       ///< ascending by file_id
  /// Chunk assignment of each open channel at capture time (observability
  /// only; a resume re-opens channels from the active plan).
  std::vector<int> channel_chunks;
  std::vector<ServerLedgerEntry> source_servers, destination_servers;
  RngState jitter_rng{}, victim_rng{}, backoff_rng{}, checksum_rng{};

  /// Unique bytes durably delivered at capture time (needs the dataset for
  /// completed files' sizes).
  [[nodiscard]] Bytes delivered_bytes(const Dataset& dataset) const;
};

/// Order-sensitive hash of the dataset's file sizes.
[[nodiscard]] std::uint64_t dataset_fingerprint(const Dataset& dataset) noexcept;

/// Serialize to the journal text format (deterministic, bit-exact doubles).
void write_checkpoint(std::ostream& os, const TransferCheckpoint& ckpt);

/// Parse a journal written by write_checkpoint. Returns nullopt on malformed
/// or version-mismatched input, with a "line N: reason" message in *error.
[[nodiscard]] std::optional<TransferCheckpoint> read_checkpoint(
    std::istream& is, std::string* error = nullptr);

}  // namespace eadt::proto
