#include "exp/tick_pool.hpp"

#include <algorithm>

namespace eadt::exp {

TickPool::TickPool(int jobs) {
  const int extra = std::max(jobs, 1) - 1;
  threads_.reserve(static_cast<std::size_t>(extra));
  ops_ = std::vector<std::atomic<std::uint64_t>>(static_cast<std::size_t>(extra) + 1);
  for (int w = 0; w < extra; ++w) {
    threads_.emplace_back([this, w] {
      std::uint64_t seen = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(mutex_);
          start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
          if (stop_) return;
          seen = generation_;
        }
        drain(static_cast<std::size_t>(w));
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          if (--pending_ == 0) done_cv_.notify_all();
        }
      }
    });
  }
}

TickPool::~TickPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void TickPool::drain(std::size_t worker) noexcept {
  std::uint64_t executed = 0;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) break;
    ++executed;
    try {
      fn_(ctx_, i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
  // One relaxed add per phase, not per index: occupancy accounting must stay
  // invisible next to the work it measures.
  if (executed > 0) ops_[worker].fetch_add(executed, std::memory_order_relaxed);
}

void TickPool::run(std::size_t count, void (*fn)(void*, std::size_t), void* ctx) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    // Inline path: index order, exceptions propagate directly. A count of 1
    // also skips the handshake — waking the pool for one index buys nothing.
    for (std::size_t i = 0; i < count; ++i) fn(ctx, i);
    ops_.back().fetch_add(count, std::memory_order_relaxed);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fn_ = fn;
    ctx_ = ctx;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    pending_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  drain(threads_.size());  // the calling thread is a worker too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace eadt::exp
