#include "exp/tick_pool.hpp"

#include <algorithm>

namespace eadt::exp {

TickPool::TickPool(int jobs) {
  const int extra = std::max(jobs, 1) - 1;
  threads_.reserve(static_cast<std::size_t>(extra));
  for (int w = 0; w < extra; ++w) {
    threads_.emplace_back([this] {
      std::uint64_t seen = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(mutex_);
          start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
          if (stop_) return;
          seen = generation_;
        }
        drain();
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          if (--pending_ == 0) done_cv_.notify_all();
        }
      }
    });
  }
}

TickPool::~TickPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void TickPool::drain() noexcept {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) return;
    try {
      fn_(ctx_, i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void TickPool::run(std::size_t count, void (*fn)(void*, std::size_t), void* ctx) {
  if (count == 0) return;
  if (threads_.empty() || count == 1) {
    // Inline path: index order, exceptions propagate directly. A count of 1
    // also skips the handshake — waking the pool for one index buys nothing.
    for (std::size_t i = 0; i < count; ++i) fn(ctx, i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fn_ = fn;
    ctx_ = ctx;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    pending_ = static_cast<int>(threads_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  drain();  // the calling thread is a worker too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace eadt::exp
