// Result export: CSV time series and gnuplot scripts for the figure benches.
//
// Every RunResult carries 5-second samples; these helpers turn them (and
// whole concurrency sweeps) into machine-readable artefacts so the paper's
// plots can be regenerated outside the terminal tables.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace eadt::exp {

/// One run's sampling windows: t_start,t_end,mbps,joule,active_channels.
void write_samples_csv(std::ostream& os, const proto::RunResult& result);

/// A figure-2-style sweep: one row per concurrency level, one column group
/// per algorithm (throughput_mbps, energy_j, ratio).
struct SweepTable {
  std::vector<int> levels;
  /// outcome[algorithm][level]
  std::map<Algorithm, std::map<int, RunOutcome>> outcomes;
};

void write_sweep_csv(std::ostream& os, const SweepTable& sweep);

/// Gnuplot script that renders the three panels (throughput, energy,
/// efficiency) from a CSV produced by write_sweep_csv. `csv_path` is baked
/// into the script; output is `<stem>_{a,b,c}.png`.
void write_sweep_gnuplot(std::ostream& os, const SweepTable& sweep,
                         const std::string& csv_path, const std::string& stem);

/// Short human summary of one run ("4819 Mbps, 21.6 kJ, 223 b/J, 12 ch").
[[nodiscard]] std::string summarize(const proto::RunResult& result);

}  // namespace eadt::exp
