// Parallel deterministic sweep execution.
//
// Every figure in the paper is a grid sweep — algorithm x testbed x
// concurrency — and the follow-up literature (GreenDataFlow's historical-log
// searches, frequency/core/concurrency grids) runs the same shape at scale.
// SweepRunner fans a declarative grid of such tasks across a thread pool
// while keeping the output *bit-identical* to a sequential run:
//
//   * each task is self-contained (its own Testbed copy, its own Simulation
//     inside the TransferSession) — workers share nothing mutable;
//   * stochastic elements are seeded from a stable hash of
//     (algorithm, testbed, concurrency, base seed), never from worker
//     identity, scheduling order or the wall clock;
//   * results are collected by task index, never by completion order.
//
// The contract pinned by tests/test_sweep_runner.cpp: `--jobs N` output is
// byte-identical to `--jobs 1` for every N.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "exp/runner.hpp"
#include "obs/metrics.hpp"

namespace eadt::obs {
class ObsCollector;
class TelemetryHub;
class TickFlightRecorder;
}  // namespace eadt::obs

namespace eadt::exp {

/// Stable seed for one grid point: FNV-1a over the identifying coordinates
/// plus an avalanche mix of `base_seed`. Pure function of its arguments —
/// independent of submission order, worker count, platform or process — and
/// collision-free in practice (tests/test_properties.cpp checks 10k-point
/// grids). Never returns 0, so the result is always usable as an Rng seed.
[[nodiscard]] std::uint64_t derive_task_seed(std::string_view algorithm,
                                             std::string_view testbed, int concurrency,
                                             std::uint64_t base_seed) noexcept;

/// Worker-count policy: `requested` > 0 wins; otherwise the EADT_JOBS
/// environment variable; otherwise hardware_concurrency. Always >= 1.
[[nodiscard]] int resolve_jobs(int requested) noexcept;

/// One grid point. Tasks own their inputs by value so a worker never touches
/// caller state; the dataset is built by the caller (once per testbed,
/// deterministically) and shared read-only across tasks.
struct SweepTask {
  enum class Kind { kRun, kSla };
  Kind kind = Kind::kRun;

  testbeds::Testbed testbed;
  proto::Dataset dataset;
  Algorithm algorithm = Algorithm::kSc;  ///< ignored for kSla (always SLAEE)
  int concurrency = 1;                   ///< user maxChannel budget
  proto::SessionConfig config{};
  proto::FaultPlan faults{};

  // kSla only:
  double target_percent = 0.0;
  BitsPerSecond max_throughput = 0.0;

  /// Base seed folded into derive_task_seed(). When non-zero the derived
  /// seed replaces env.jitter_seed (and, if the fault plan is active, its
  /// seed), decorrelating grid points by construction. 0 = run the testbed
  /// and fault plan exactly as configured (figure-parity mode).
  std::uint64_t seed = 0;

  /// Optional per-task checkpoint journal receiver. Called from the worker
  /// executing this task; a sink shared across tasks must be thread-safe.
  CheckpointSink checkpoints{};

  /// Slot sentinel: "use this task's submission index as the obs slot".
  static constexpr std::size_t kAutoSlot = static_cast<std::size_t>(-1);

  /// Optional observability collector. When non-null, the worker acquires
  /// slot `obs_slot` (kAutoSlot = the task's submission index) and wires the
  /// slot's sinks into the session config, so traces/decisions land in a
  /// per-task buffer and metrics in the shared registry. Benches that call
  /// SweepRunner::run() more than once must assign explicit non-overlapping
  /// slots — indices restart at 0 on every run() call.
  obs::ObsCollector* obs = nullptr;
  std::size_t obs_slot = kAutoSlot;
};

/// The outcome of one task, back at its submission index.
struct SweepTaskResult {
  std::size_t index = 0;
  SweepTask::Kind kind = SweepTask::Kind::kRun;
  std::string testbed;      ///< env.name of the task's testbed
  std::uint64_t derived_seed = 0;
  RunOutcome run{};         ///< valid when kind == kRun
  SlaOutcome sla{};         ///< valid when kind == kSla
  double wall_ms = 0.0;     ///< wall-clock execution time (not deterministic)

  [[nodiscard]] const proto::RunResult& result() const noexcept {
    return kind == SweepTask::Kind::kRun ? run.result : sla.result;
  }
};

/// Canonical text dump of everything deterministic in the results (hex-float
/// doubles, wall times excluded). Two sweeps agree iff their payloads are
/// byte-identical — this is what the determinism tests and the CI golden
/// diff compare.
[[nodiscard]] std::string sweep_payload(const std::vector<SweepTaskResult>& results);

class SweepRunner {
 public:
  /// `jobs` <= 0 defers to resolve_jobs() (EADT_JOBS, then hardware).
  explicit SweepRunner(int jobs = 0) : jobs_(resolve_jobs(jobs)) {}

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Execute the grid. Results are indexed 1:1 with `tasks`; with jobs() == 1
  /// execution is inline on the calling thread (no pool), and any worker
  /// exception is rethrown here after the pool drains.
  [[nodiscard]] std::vector<SweepTaskResult> run(const std::vector<SweepTask>& tasks) const;

  /// The deterministic fan-out primitive run() is built on, for sweeps whose
  /// cells are not plain algorithm runs (supervisor grids, service queues):
  /// calls `fn(i)` for every i in [0, count) across `jobs` workers. `fn`
  /// must write its result into a caller-owned slot addressed by i only.
  static void parallel_indexed(int jobs, std::size_t count,
                               const std::function<void(std::size_t)>& fn);

 private:
  int jobs_ = 1;
};

// --- perf records ----------------------------------------------------------

/// One microbenchmark series inside a BenchRecord: `ops` operations timed at
/// `wall_ms`. `baseline_ops_per_sec` is non-zero when the series was raced
/// against a reference implementation (e.g. the event queue vs a std::map
/// queue), in which case `speedup` = ops_per_sec / baseline_ops_per_sec.
/// Everything here is wall-clock derived, i.e. the non-deterministic side of
/// the schema — the perf trajectory, not a correctness payload.
struct MicroSample {
  std::string name;       ///< e.g. "event_queue_sched_fire_cancel"
  std::uint64_t ops = 0;  ///< operations performed
  double wall_ms = 0.0;
  double ops_per_sec = 0.0;
  double baseline_ops_per_sec = 0.0;  ///< 0 when the series has no baseline
  double speedup = 0.0;               ///< 0 when the series has no baseline
};

/// One multi-tenant scheduler scenario's deterministic outcome, as recorded
/// by bench/service_multitenant: the admission/preemption/power accounting an
/// exp::SchedulerReport aggregates, flattened for the JSON record. Everything
/// except `wall_ms` is bit-reproducible for a fixed scenario.
struct ServiceScenarioRecord {
  std::string name;  ///< scenario label, e.g. "overload_ramp"
  int submitted = 0;
  int accepted = 0;
  int rejected = 0;
  int completed = 0;
  int failed = 0;
  int preemptions = 0;
  int deferrals = 0;
  int max_concurrent = 0;          ///< highest simultaneous running sessions
  int power_cap_violations = 0;    ///< must stay 0 under any cap
  int sla_interactive_met = 0;     ///< over completed interactive jobs
  int sla_interactive_completed = 0;
  double makespan_s = 0.0;
  std::uint64_t bytes = 0;
  double energy_j = 0.0;
  double cost_usd = 0.0;
  double peak_power_w = 0.0;       ///< measured per-tick maximum
  double peak_power_bound_w = 0.0; ///< provable bound the cap gates on
  double power_cap_w = 0.0;        ///< 0 = scenario ran uncapped
  double wall_ms = 0.0;            ///< non-deterministic; stripped in CI diffs
};

/// One path-resilience scenario's deterministic outcome, as recorded by
/// bench/robustness_failover: migration/hedging accounting on top of the
/// byte/energy conservation every scenario asserts. Everything except
/// `wall_ms` is bit-reproducible for a fixed scenario.
struct FailoverScenarioRecord {
  std::string name;  ///< scenario label, e.g. "path_outage"
  int jobs = 0;                 ///< jobs run in the scenario
  int completed = 0;
  int failed = 0;
  int attempts = 0;             ///< legs across all jobs (first runs included)
  int migrations = 0;           ///< cross-path resumes; <= attempts always
  int hedge_legs = 0;           ///< raced tail legs (0 or 2 per hedged job)
  int power_cap_violations = 0; ///< must stay 0 under any per-site cap
  double makespan_s = 0.0;
  std::uint64_t bytes = 0;      ///< wire bytes landed across all legs
  double energy_j = 0.0;
  double hedge_energy_j = 0.0;  ///< losing legs' double-spend; >= 0 always
  double wall_ms = 0.0;         ///< non-deterministic; stripped in CI diffs
};

/// One bench invocation's machine-readable perf record: the grid, each
/// task's deterministic result payload and simulation counters, and the
/// (non-deterministic) wall times. Serialized to BENCH_<name>.json by the
/// bench binaries — the repo's perf-trajectory file. The `micro` section is
/// emitted only when non-empty, so sweep records (and their goldens) are
/// unchanged by its existence.
struct BenchRecord {
  std::string name;          ///< bench binary stem, e.g. "fig2_xsede"
  std::string commit;        ///< git commit stamp (EADT_COMMIT overrides)
  int jobs = 1;
  unsigned scale = 1;
  double total_wall_ms = 0.0;
  std::vector<SweepTaskResult> tasks;
  std::vector<MicroSample> micro;  ///< core_micro's series (empty for sweeps)
  /// Merged MetricsRegistry snapshot when the bench ran with observability
  /// attached. Like `micro`, the section is emitted only when non-empty, so
  /// records (and their goldens) from unobserved runs are unchanged.
  std::vector<obs::MetricSnapshot> metrics;
  /// Multi-tenant scheduler scenarios (service_multitenant only). Emitted
  /// only when non-empty, like `micro` — schema-additive.
  std::vector<ServiceScenarioRecord> service;
  /// Path-resilience scenarios (robustness_failover only). Emitted only when
  /// non-empty, like `micro` — schema-additive.
  std::vector<FailoverScenarioRecord> failover;
  /// Deterministic sim-time series from a telemetry-enabled run, rendered as
  /// the nested `eadt-telemetry-v1` object. Borrowed for the duration of
  /// write_bench_json; emitted only when non-null — schema-additive like the
  /// sections above. Byte-identical at any --jobs N (the fleet bench races
  /// this bitwise).
  const obs::TelemetryHub* telemetry = nullptr;
  /// Flight-recorder dumps (`eadt-flightrec-v1`), emitted only when the
  /// recorder was attached AND actually triggered — a clean run's record is
  /// unchanged by carrying a recorder.
  const obs::TickFlightRecorder* flightrec = nullptr;
};

/// The commit stamp recorded in BenchRecords: $EADT_COMMIT if set, else the
/// compile-time stamp (-DEADT_GIT_COMMIT), else "unknown".
[[nodiscard]] std::string bench_commit_stamp();

/// Serialize as schema "eadt-bench-v1" JSON (schema documented in
/// results/README.md). Doubles are printed with max_digits10 precision, so
/// equal values serialize identically; only wall_ms/commit fields vary
/// between runs of the same grid.
void write_bench_json(std::ostream& os, const BenchRecord& record);

}  // namespace eadt::exp
