#include "exp/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "baselines/baselines.hpp"
#include "core/algorithms.hpp"
#include "core/energy_budget.hpp"
#include "exp/service.hpp"
#include "obs/obs.hpp"

namespace eadt::exp {

obs::DecisionKind recovery_decision_kind(RecoveryAction action) noexcept {
  switch (action) {
    case RecoveryAction::kResume: return obs::DecisionKind::kSupervisorRetry;
    case RecoveryAction::kDeadlineAbort: return obs::DecisionKind::kSupervisorAbort;
    case RecoveryAction::kReduceChannels:
    case RecoveryAction::kPolicyFallback: return obs::DecisionKind::kSupervisorDegrade;
    case RecoveryAction::kGiveUp: return obs::DecisionKind::kSupervisorGiveUp;
    case RecoveryAction::kPreempt: return obs::DecisionKind::kSchedulerPreempt;
    case RecoveryAction::kShed: return obs::DecisionKind::kSchedulerShed;
    case RecoveryAction::kDefer: return obs::DecisionKind::kSchedulerDefer;
    case RecoveryAction::kMigrate: return obs::DecisionKind::kPathFailover;
    case RecoveryAction::kHedge: return obs::DecisionKind::kHedgeLaunch;
  }
  return obs::DecisionKind::kSupervisorGiveUp;
}

const char* recovery_metric(RecoveryAction action) noexcept {
  switch (action) {
    case RecoveryAction::kResume: return "supervisor.resumes";
    case RecoveryAction::kDeadlineAbort: return "supervisor.deadline_aborts";
    case RecoveryAction::kReduceChannels: return "supervisor.channel_reductions";
    case RecoveryAction::kPolicyFallback: return "supervisor.policy_fallbacks";
    case RecoveryAction::kGiveUp: return "supervisor.give_ups";
    case RecoveryAction::kPreempt: return "scheduler.preemptions";
    case RecoveryAction::kShed: return "scheduler.shed_jobs";
    case RecoveryAction::kDefer: return "scheduler.deferrals";
    case RecoveryAction::kMigrate: return "supervisor.migrations";
    case RecoveryAction::kHedge: return "supervisor.hedges";
  }
  return "supervisor.unknown";
}

const char* to_string(RecoveryAction action) noexcept {
  switch (action) {
    case RecoveryAction::kResume: return "resume";
    case RecoveryAction::kDeadlineAbort: return "deadline-abort";
    case RecoveryAction::kReduceChannels: return "reduce-channels";
    case RecoveryAction::kPolicyFallback: return "policy-fallback";
    case RecoveryAction::kGiveUp: return "give-up";
    case RecoveryAction::kPreempt: return "preempt";
    case RecoveryAction::kShed: return "shed";
    case RecoveryAction::kDefer: return "defer";
    case RecoveryAction::kMigrate: return "migrate";
    case RecoveryAction::kHedge: return "hedge";
  }
  return "?";
}

int RecoveryLog::count(RecoveryAction action) const noexcept {
  int n = 0;
  for (const auto& e : events) n += e.action == action ? 1 : 0;
  return n;
}

bool RecoveryLog::degraded() const noexcept {
  return count(RecoveryAction::kReduceChannels) > 0 ||
         count(RecoveryAction::kPolicyFallback) > 0;
}

OperatingPoint make_operating_point(const proto::Environment& env,
                                    const proto::Dataset& dataset, JobPolicy policy,
                                    int max_channels, double sla_percent,
                                    Joules energy_budget, BitsPerSecond reference_rate,
                                    obs::DecisionLog* decisions) {
  OperatingPoint op;
  const int cc = std::max(1, max_channels);
  switch (policy) {
    case JobPolicy::kDeadline:
      op.plan = baselines::plan_promc(env, dataset, cc);
      break;
    case JobPolicy::kGreen:
      op.plan = core::plan_min_energy(env, dataset, cc, decisions);
      break;
    case JobPolicy::kBalanced:
      op.plan = core::plan_htee(env, dataset, cc, decisions);
      op.controller = std::make_unique<core::HteeController>(cc);
      break;
    case JobPolicy::kSla: {
      const BitsPerSecond target = reference_rate * sla_percent / 100.0;
      op.plan = core::plan_slaee(env, dataset, cc, decisions);
      op.controller = std::make_unique<core::SlaeeController>(target, cc);
      break;
    }
    case JobPolicy::kEnergyBudget:
      op.plan = baselines::plan_promc(env, dataset, cc);
      op.controller = std::make_unique<core::EnergyBudgetController>(energy_budget, cc);
      break;
  }
  return op;
}

std::optional<RecoveryAction> LadderState::on_abort(const SupervisorPolicy& p) {
  ++aborts_at_point;
  if (aborts_at_point < p.degrade_after) return std::nullopt;
  if (channels > p.min_channels) {
    const int next = std::max(p.min_channels,
                              static_cast<int>(std::floor(channels * p.channel_step)));
    channels = next < channels ? next : channels - 1;
    aborts_at_point = 0;
    return RecoveryAction::kReduceChannels;
  }
  if (p.policy_fallback && policy != JobPolicy::kGreen) {
    policy = JobPolicy::kGreen;
    aborts_at_point = 0;
    return RecoveryAction::kPolicyFallback;
  }
  return std::nullopt;
}

proto::Environment environment_for_path(const proto::Environment& base,
                                        const net::PathOption& option) {
  proto::Environment env = base;
  env.path = option.path;
  env.route = option.route;
  env.name = base.name + " via " + option.name;
  return env;
}

Supervisor::Supervisor(const testbeds::Testbed& testbed, BitsPerSecond reference_rate,
                       proto::FaultPlan faults, SupervisorPolicy policy,
                       proto::SessionConfig base_config)
    : testbed_(testbed), reference_rate_(reference_rate), faults_(std::move(faults)),
      policy_(policy), base_config_(base_config) {}

proto::RunResult Supervisor::attempt(const TransferJob& job, JobPolicy policy,
                                     int max_channels,
                                     const proto::SessionConfig& config,
                                     const proto::TransferCheckpoint* resume,
                                     const proto::Environment& env, int path_id) const {
  obs::DecisionLog* decisions = config.obs != nullptr ? config.obs->decisions : nullptr;
  // Re-planning against `env` is what adapts a failed-over leg to its new
  // path: the tuner sees the alternate's BDP and buffer, not the primary's.
  OperatingPoint op =
      make_operating_point(env, job.dataset, policy, max_channels,
                           job.sla_percent, job.energy_budget, reference_rate_, decisions);
  proto::SessionConfig cfg = config;
  cfg.path_id = path_id;
  proto::TransferSession s(env, job.dataset, std::move(op.plan), cfg);
  s.set_fault_plan(policy_.paths.empty() ? faults_ : faults_.for_path(path_id));
  if (resume != nullptr) {
    std::string err;
    if (!s.resume_from(*resume, &err)) {
      proto::RunResult refused;
      refused.error = "resume failed: " + err;
      return refused;
    }
  }
  return s.run(op.controller.get());
}

JobOutcome Supervisor::run(const TransferJob& job) const {
  JobOutcome out;
  out.name = job.name;
  out.policy = job.policy;

  LadderState ladder{job.policy, std::max(1, job.max_channels)};
  std::optional<proto::TransferCheckpoint> journal;

  // Path-resilience state. With an empty PathSet everything below is inert:
  // env_for() always answers the testbed's own environment and no monitor
  // observation, migration, or hedge branch is ever taken.
  const bool multipath = !policy_.paths.empty();
  std::vector<proto::Environment> path_envs;
  if (multipath) {
    path_envs.reserve(static_cast<std::size_t>(policy_.paths.size()));
    for (const auto& opt : policy_.paths.options()) {
      path_envs.push_back(environment_for_path(testbed_.env, opt));
    }
  }
  HealthMonitor monitor(multipath ? policy_.paths.size() : 0, policy_.health);
  int current_path = 0;
  const auto env_for = [&](int p) -> const proto::Environment& {
    return multipath ? path_envs[static_cast<std::size_t>(p)] : testbed_.env;
  };
  const auto path_name = [&](int p) -> const std::string& {
    return policy_.paths.option(p).name;
  };
  // FaultStats accumulate across resumed legs (the checkpoint carries them),
  // so the monitor is fed per-attempt deltas, not running totals.
  std::int64_t seen_fault_events = 0;
  const auto feed_monitor = [&](int p, const proto::RunResult& r) {
    if (!multipath) return;
    const BitsPerSecond expect = env_for(p).path.available_bandwidth();
    for (const auto& smp : r.samples) {
      const double frac = expect > 0.0 ? smp.throughput() / expect : 1.0;
      monitor.observe_goodput(p, smp.window_end, frac);
    }
    const std::int64_t events =
        r.faults.channel_drops + r.faults.server_outages + r.faults.checksum_failures;
    if (events > seen_fault_events) {
      monitor.observe_fault(p, r.duration,
                            static_cast<double>(events - seen_fault_events));
    }
    seen_fault_events = std::max(seen_fault_events, events);
  };
  bool hedged = false;      ///< at most one hedge race per job
  bool hedge_next = false;  ///< next loop iteration races the tail on two paths
  int hedge_secondary = -1;

  obs::ObsSinks* obs = base_config_.obs;
  const auto log = [&](RecoveryAction action, int attempt_no, Seconds at,
                       std::string detail) {
    out.recovery.events.push_back(
        {at, attempt_no, action, to_string(ladder.policy), ladder.channels, detail});
    // Mirror every audited supervision decision into the observability layer,
    // so traces and RecoveryLog never disagree about what the ladder did.
    if (obs == nullptr) return;
    if (obs->metrics != nullptr) obs->metrics->counter(recovery_metric(action)).add(1);
    if (obs->decisions != nullptr) {
      obs::Decision d;
      d.at = at;
      d.kind = recovery_decision_kind(action);
      d.actor = "Supervisor";
      d.level = ladder.channels;
      d.chosen = ladder.channels;
      d.subject = std::string(to_string(action)) + " (attempt " +
                  std::to_string(attempt_no) + ", " + to_string(ladder.policy) + ")";
      d.detail = std::move(detail);
      obs->decisions->record(std::move(d));
    }
  };

  for (int attempt_no = 1;; ++attempt_no) {
    out.attempts = attempt_no;
    proto::SessionConfig config = base_config_;
    if (policy_.attempt_deadline > 0.0) config.max_sim_time = policy_.attempt_deadline;
    const Seconds attempt_start = journal ? journal->taken_at : 0.0;
    if (obs != nullptr && obs->metrics != nullptr) {
      obs->metrics->counter("supervisor.attempts").add(1);
    }
    if (obs != nullptr && obs->trace != nullptr) {
      // Opened before the session's own transfer span so the two nest
      // attempt > transfer on the control track.
      obs->trace->begin(attempt_start, obs::kControlTid,
                        obs->trace->intern("supervisor attempt " +
                                           std::to_string(attempt_no) + " (" +
                                           to_string(ladder.policy) + ")"),
                        "supervisor",
                        {"channels", static_cast<double>(ladder.channels)},
                        {"attempt", static_cast<double>(attempt_no)});
    }
    if (hedge_next) {
      // Race the remaining tail from the same journal entry on the current
      // path and the hedge secondary. Both legs resume from identical state,
      // so landed bytes are never re-paid on either; the losing leg is
      // "cancelled" at the winner's finish and only the energy it burned
      // until then is charged, as hedge double-spend.
      hedge_next = false;
      hedged = true;
      proto::RunResult primary_leg =
          attempt(job, ladder.policy, ladder.channels, config, &*journal,
                  env_for(current_path), current_path);
      proto::RunResult secondary_leg =
          attempt(job, ladder.policy, ladder.channels, config, &*journal,
                  env_for(hedge_secondary), hedge_secondary);
      feed_monitor(current_path, primary_leg);
      const bool secondary_wins =
          (secondary_leg.completed && !primary_leg.completed) ||
          (secondary_leg.completed == primary_leg.completed &&
           secondary_leg.duration < primary_leg.duration);
      const proto::RunResult& loser = secondary_wins ? primary_leg : secondary_leg;
      const proto::RunResult& winner = secondary_wins ? secondary_leg : primary_leg;
      // The loser burned energy from the hedge fork until the winner crossed
      // the line; sum its sample windows up to that instant (sample times are
      // absolute, so they compare directly against the winner's duration).
      Joules double_spend = 0.0;
      for (const auto& smp : loser.samples) {
        if (smp.window_end <= winner.duration) {
          double_spend += smp.end_system_energy;
        } else if (smp.window_start < winner.duration && smp.duration() > 0.0) {
          double_spend += smp.end_system_energy *
                          (winner.duration - smp.window_start) / smp.duration();
        }
      }
      out.hedge_legs += 2;
      out.hedge_energy += double_spend;
      const int winner_path = secondary_wins ? hedge_secondary : current_path;
      if (obs != nullptr && obs->decisions != nullptr) {
        obs::Decision d;
        d.at = winner.duration;
        d.kind = obs::DecisionKind::kHedgeWin;
        d.actor = "Supervisor";
        d.subject = "hedge won by '" + path_name(winner_path) + "'";
        d.detail = "loser cancelled at " + std::to_string(winner.duration) +
                   " s after " + std::to_string(double_spend) + " J double-spend";
        obs->decisions->record(std::move(d));
      }
      current_path = winner_path;
      out.result = secondary_wins ? std::move(secondary_leg) : std::move(primary_leg);
    } else {
      out.result = attempt(job, ladder.policy, ladder.channels, config,
                           journal ? &*journal : nullptr, env_for(current_path),
                           current_path);
      feed_monitor(current_path, out.result);
    }
    if (obs != nullptr && obs->trace != nullptr) {
      obs->trace->end(std::max(attempt_start, out.result.duration), obs::kControlTid);
    }

    if (!out.result.error.empty()) {
      out.failed = true;
      log(RecoveryAction::kGiveUp, attempt_no, out.result.duration, out.result.error);
      break;
    }
    if (out.result.completed) {
      if (obs != nullptr && obs->decisions != nullptr) {
        obs::Decision d;
        d.at = out.result.duration;
        d.kind = obs::DecisionKind::kSupervisorDone;
        d.actor = "Supervisor";
        d.level = ladder.channels;
        d.chosen = ladder.channels;
        d.subject = "job completed (attempt " + std::to_string(attempt_no) + ")";
        d.detail = std::string("finished under the ") + to_string(ladder.policy) +
                   " policy at " + std::to_string(ladder.channels) + " channels";
        obs->decisions->record(std::move(d));
      }
      break;
    }

    log(RecoveryAction::kDeadlineAbort, attempt_no, out.result.duration,
        "attempt hit its " + std::to_string(config.max_sim_time) +
            " s deadline; checkpoint taken");
    if (attempt_no >= policy_.max_attempts) {
      out.failed = true;
      log(RecoveryAction::kGiveUp, attempt_no, out.result.duration,
          "retry budget (" + std::to_string(policy_.max_attempts) + " attempts) spent");
      break;
    }
    if (!out.result.checkpoint) {
      // Unreachable with the current engine (an aborted run always carries
      // its journal entry), but a supervisor must not retry blind.
      out.failed = true;
      log(RecoveryAction::kGiveUp, attempt_no, out.result.duration,
          "aborted run left no checkpoint");
      break;
    }
    journal = out.result.checkpoint;

    if (const auto step = ladder.on_abort(policy_)) {
      log(*step, attempt_no, out.result.duration,
          *step == RecoveryAction::kReduceChannels
              ? "stepping down to " + std::to_string(ladder.channels) + " channels"
              : "channel floor reached; falling back to the minimum-energy plan");
    }

    // Failover rungs, above the ladder: hedge the tail when an interactive
    // deadline is projected to slip, otherwise migrate off a suspect path.
    if (policy_.hedge && policy_.job_deadline > 0.0 && multipath && !hedged) {
      const Bytes remaining =
          job.dataset.total_bytes() - journal->delivered_bytes(job.dataset);
      const BitsPerSecond recent = out.result.avg_goodput();
      const Seconds projected =
          recent > 0.0 ? journal->taken_at + to_bits(remaining) / recent
                       : std::numeric_limits<Seconds>::infinity();
      const int secondary = monitor.healthiest(current_path);
      if (projected > policy_.job_deadline && secondary >= 0 &&
          secondary != current_path) {
        hedge_next = true;
        hedge_secondary = secondary;
        log(RecoveryAction::kHedge, attempt_no + 1, journal->taken_at,
            "projected finish " + std::to_string(projected) + " s > deadline " +
                std::to_string(policy_.job_deadline) + " s; racing the tail on '" +
                path_name(current_path) + "' and '" + path_name(secondary) + "'");
      }
    }
    if (multipath && !hedge_next && monitor.suspect(current_path)) {
      if (obs != nullptr && obs->decisions != nullptr) {
        obs::Decision d;
        d.at = out.result.duration;
        d.kind = obs::DecisionKind::kPathSuspect;
        d.actor = "Supervisor";
        d.subject = "path '" + path_name(current_path) + "' suspect";
        d.detail = "phi " + std::to_string(monitor.phi(current_path)) +
                   " crossed the suspicion threshold " +
                   std::to_string(policy_.health.suspect_phi);
        obs->decisions->record(std::move(d));
      }
      const int next_path = monitor.healthiest(current_path);
      if (next_path >= 0 && monitor.phi(next_path) < monitor.phi(current_path)) {
        log(RecoveryAction::kMigrate, attempt_no + 1, journal->taken_at,
            "path '" + path_name(current_path) + "' phi " +
                std::to_string(monitor.phi(current_path)) + "; migrating to '" +
                path_name(next_path) + "' phi " +
                std::to_string(monitor.phi(next_path)) +
                " (landed bytes carry over via the journal)");
        current_path = next_path;
      }
    }
    log(RecoveryAction::kResume, attempt_no + 1, journal->taken_at,
        "resuming from the checkpoint journal (" +
            std::to_string(journal->completed.size()) + " files landed)");
  }

  out.migrations = out.recovery.count(RecoveryAction::kMigrate);
  out.final_path = current_path;

  if (job.policy == JobPolicy::kSla) {
    const BitsPerSecond target = reference_rate_ * job.sla_percent / 100.0;
    // Scored on the original promise even if the ladder fell back; an
    // incomplete transfer never met its SLA. 0.93 is the paper's ~7 % band.
    out.sla_met = !out.failed && out.result.avg_throughput() >= target * 0.93;
  } else {
    out.sla_met = !out.failed;
  }
  return out;
}

}  // namespace eadt::exp
