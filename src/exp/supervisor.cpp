#include "exp/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "baselines/baselines.hpp"
#include "core/algorithms.hpp"
#include "core/energy_budget.hpp"
#include "exp/service.hpp"
#include "obs/obs.hpp"

namespace eadt::exp {
namespace {

obs::DecisionKind decision_kind(RecoveryAction action) noexcept {
  switch (action) {
    case RecoveryAction::kResume: return obs::DecisionKind::kSupervisorRetry;
    case RecoveryAction::kDeadlineAbort: return obs::DecisionKind::kSupervisorAbort;
    case RecoveryAction::kReduceChannels:
    case RecoveryAction::kPolicyFallback: return obs::DecisionKind::kSupervisorDegrade;
    case RecoveryAction::kGiveUp: return obs::DecisionKind::kSupervisorGiveUp;
  }
  return obs::DecisionKind::kSupervisorGiveUp;
}

const char* action_metric(RecoveryAction action) noexcept {
  switch (action) {
    case RecoveryAction::kResume: return "supervisor.resumes";
    case RecoveryAction::kDeadlineAbort: return "supervisor.deadline_aborts";
    case RecoveryAction::kReduceChannels: return "supervisor.channel_reductions";
    case RecoveryAction::kPolicyFallback: return "supervisor.policy_fallbacks";
    case RecoveryAction::kGiveUp: return "supervisor.give_ups";
  }
  return "supervisor.unknown";
}

}  // namespace

const char* to_string(RecoveryAction action) noexcept {
  switch (action) {
    case RecoveryAction::kResume: return "resume";
    case RecoveryAction::kDeadlineAbort: return "deadline-abort";
    case RecoveryAction::kReduceChannels: return "reduce-channels";
    case RecoveryAction::kPolicyFallback: return "policy-fallback";
    case RecoveryAction::kGiveUp: return "give-up";
  }
  return "?";
}

int RecoveryLog::count(RecoveryAction action) const noexcept {
  int n = 0;
  for (const auto& e : events) n += e.action == action ? 1 : 0;
  return n;
}

bool RecoveryLog::degraded() const noexcept {
  return count(RecoveryAction::kReduceChannels) > 0 ||
         count(RecoveryAction::kPolicyFallback) > 0;
}

Supervisor::Supervisor(const testbeds::Testbed& testbed, BitsPerSecond reference_rate,
                       proto::FaultPlan faults, SupervisorPolicy policy,
                       proto::SessionConfig base_config)
    : testbed_(testbed), reference_rate_(reference_rate), faults_(std::move(faults)),
      policy_(policy), base_config_(base_config) {}

proto::RunResult Supervisor::attempt(const TransferJob& job, JobPolicy policy,
                                     int max_channels,
                                     const proto::SessionConfig& config,
                                     const proto::TransferCheckpoint* resume) const {
  const auto& env = testbed_.env;
  const int cc = std::max(1, max_channels);
  const auto execute = [&](proto::TransferPlan plan,
                           proto::Controller* controller = nullptr) {
    proto::TransferSession s(env, job.dataset, std::move(plan), config);
    s.set_fault_plan(faults_);
    if (resume != nullptr) {
      std::string err;
      if (!s.resume_from(*resume, &err)) {
        proto::RunResult refused;
        refused.error = "resume failed: " + err;
        return refused;
      }
    }
    return s.run(controller);
  };

  obs::DecisionLog* decisions = config.obs != nullptr ? config.obs->decisions : nullptr;
  switch (policy) {
    case JobPolicy::kDeadline:
      return execute(baselines::plan_promc(env, job.dataset, cc));
    case JobPolicy::kGreen:
      return execute(core::plan_min_energy(env, job.dataset, cc, decisions));
    case JobPolicy::kBalanced: {
      core::HteeController ctl(cc);
      return execute(core::plan_htee(env, job.dataset, cc, decisions), &ctl);
    }
    case JobPolicy::kSla: {
      const BitsPerSecond target = reference_rate_ * job.sla_percent / 100.0;
      core::SlaeeController ctl(target, cc);
      return execute(core::plan_slaee(env, job.dataset, cc, decisions), &ctl);
    }
    case JobPolicy::kEnergyBudget: {
      core::EnergyBudgetController ctl(job.energy_budget, cc);
      return execute(baselines::plan_promc(env, job.dataset, cc), &ctl);
    }
  }
  return {};
}

JobOutcome Supervisor::run(const TransferJob& job) const {
  JobOutcome out;
  out.name = job.name;
  out.policy = job.policy;

  JobPolicy policy = job.policy;
  int channels = std::max(1, job.max_channels);
  int aborts_at_point = 0;
  std::optional<proto::TransferCheckpoint> journal;

  obs::ObsSinks* obs = base_config_.obs;
  const auto log = [&](RecoveryAction action, int attempt_no, Seconds at,
                       std::string detail) {
    out.recovery.events.push_back(
        {at, attempt_no, action, to_string(policy), channels, detail});
    // Mirror every audited supervision decision into the observability layer,
    // so traces and RecoveryLog never disagree about what the ladder did.
    if (obs == nullptr) return;
    if (obs->metrics != nullptr) obs->metrics->counter(action_metric(action)).add(1);
    if (obs->decisions != nullptr) {
      obs::Decision d;
      d.at = at;
      d.kind = decision_kind(action);
      d.actor = "Supervisor";
      d.level = channels;
      d.chosen = channels;
      d.subject = std::string(to_string(action)) + " (attempt " +
                  std::to_string(attempt_no) + ", " + to_string(policy) + ")";
      d.detail = std::move(detail);
      obs->decisions->record(std::move(d));
    }
  };

  for (int attempt_no = 1;; ++attempt_no) {
    out.attempts = attempt_no;
    proto::SessionConfig config = base_config_;
    if (policy_.attempt_deadline > 0.0) config.max_sim_time = policy_.attempt_deadline;
    const Seconds attempt_start = journal ? journal->taken_at : 0.0;
    if (obs != nullptr && obs->metrics != nullptr) {
      obs->metrics->counter("supervisor.attempts").add(1);
    }
    if (obs != nullptr && obs->trace != nullptr) {
      // Opened before the session's own transfer span so the two nest
      // attempt > transfer on the control track.
      obs->trace->begin(attempt_start, obs::kControlTid,
                        obs->trace->intern("supervisor attempt " +
                                           std::to_string(attempt_no) + " (" +
                                           to_string(policy) + ")"),
                        "supervisor", {"channels", static_cast<double>(channels)},
                        {"attempt", static_cast<double>(attempt_no)});
    }
    out.result = attempt(job, policy, channels, config, journal ? &*journal : nullptr);
    if (obs != nullptr && obs->trace != nullptr) {
      obs->trace->end(std::max(attempt_start, out.result.duration), obs::kControlTid);
    }

    if (!out.result.error.empty()) {
      out.failed = true;
      log(RecoveryAction::kGiveUp, attempt_no, out.result.duration, out.result.error);
      break;
    }
    if (out.result.completed) {
      if (obs != nullptr && obs->decisions != nullptr) {
        obs::Decision d;
        d.at = out.result.duration;
        d.kind = obs::DecisionKind::kSupervisorDone;
        d.actor = "Supervisor";
        d.level = channels;
        d.chosen = channels;
        d.subject = "job completed (attempt " + std::to_string(attempt_no) + ")";
        d.detail = std::string("finished under the ") + to_string(policy) +
                   " policy at " + std::to_string(channels) + " channels";
        obs->decisions->record(std::move(d));
      }
      break;
    }

    ++aborts_at_point;
    log(RecoveryAction::kDeadlineAbort, attempt_no, out.result.duration,
        "attempt hit its " + std::to_string(config.max_sim_time) +
            " s deadline; checkpoint taken");
    if (attempt_no >= policy_.max_attempts) {
      out.failed = true;
      log(RecoveryAction::kGiveUp, attempt_no, out.result.duration,
          "retry budget (" + std::to_string(policy_.max_attempts) + " attempts) spent");
      break;
    }
    if (!out.result.checkpoint) {
      // Unreachable with the current engine (an aborted run always carries
      // its journal entry), but a supervisor must not retry blind.
      out.failed = true;
      log(RecoveryAction::kGiveUp, attempt_no, out.result.duration,
          "aborted run left no checkpoint");
      break;
    }
    journal = out.result.checkpoint;

    if (aborts_at_point >= policy_.degrade_after) {
      if (channels > policy_.min_channels) {
        const int next = std::max(
            policy_.min_channels,
            static_cast<int>(std::floor(channels * policy_.channel_step)));
        channels = next < channels ? next : channels - 1;
        aborts_at_point = 0;
        log(RecoveryAction::kReduceChannels, attempt_no, out.result.duration,
            "stepping down to " + std::to_string(channels) + " channels");
      } else if (policy_.policy_fallback && policy != JobPolicy::kGreen) {
        policy = JobPolicy::kGreen;
        aborts_at_point = 0;
        log(RecoveryAction::kPolicyFallback, attempt_no, out.result.duration,
            "channel floor reached; falling back to the minimum-energy plan");
      }
    }
    log(RecoveryAction::kResume, attempt_no + 1, journal->taken_at,
        "resuming from the checkpoint journal (" +
            std::to_string(journal->completed.size()) + " files landed)");
  }

  if (job.policy == JobPolicy::kSla) {
    const BitsPerSecond target = reference_rate_ * job.sla_percent / 100.0;
    // Scored on the original promise even if the ladder fell back; an
    // incomplete transfer never met its SLA. 0.93 is the paper's ~7 % band.
    out.sla_met = !out.failed && out.result.avg_throughput() >= target * 0.93;
  } else {
    out.sla_met = !out.failed;
  }
  return out;
}

}  // namespace eadt::exp
