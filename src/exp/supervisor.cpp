#include "exp/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "baselines/baselines.hpp"
#include "core/algorithms.hpp"
#include "core/energy_budget.hpp"
#include "exp/service.hpp"
#include "obs/obs.hpp"

namespace eadt::exp {

obs::DecisionKind recovery_decision_kind(RecoveryAction action) noexcept {
  switch (action) {
    case RecoveryAction::kResume: return obs::DecisionKind::kSupervisorRetry;
    case RecoveryAction::kDeadlineAbort: return obs::DecisionKind::kSupervisorAbort;
    case RecoveryAction::kReduceChannels:
    case RecoveryAction::kPolicyFallback: return obs::DecisionKind::kSupervisorDegrade;
    case RecoveryAction::kGiveUp: return obs::DecisionKind::kSupervisorGiveUp;
    case RecoveryAction::kPreempt: return obs::DecisionKind::kSchedulerPreempt;
    case RecoveryAction::kShed: return obs::DecisionKind::kSchedulerShed;
    case RecoveryAction::kDefer: return obs::DecisionKind::kSchedulerDefer;
  }
  return obs::DecisionKind::kSupervisorGiveUp;
}

const char* recovery_metric(RecoveryAction action) noexcept {
  switch (action) {
    case RecoveryAction::kResume: return "supervisor.resumes";
    case RecoveryAction::kDeadlineAbort: return "supervisor.deadline_aborts";
    case RecoveryAction::kReduceChannels: return "supervisor.channel_reductions";
    case RecoveryAction::kPolicyFallback: return "supervisor.policy_fallbacks";
    case RecoveryAction::kGiveUp: return "supervisor.give_ups";
    case RecoveryAction::kPreempt: return "scheduler.preemptions";
    case RecoveryAction::kShed: return "scheduler.shed_jobs";
    case RecoveryAction::kDefer: return "scheduler.deferrals";
  }
  return "supervisor.unknown";
}

const char* to_string(RecoveryAction action) noexcept {
  switch (action) {
    case RecoveryAction::kResume: return "resume";
    case RecoveryAction::kDeadlineAbort: return "deadline-abort";
    case RecoveryAction::kReduceChannels: return "reduce-channels";
    case RecoveryAction::kPolicyFallback: return "policy-fallback";
    case RecoveryAction::kGiveUp: return "give-up";
    case RecoveryAction::kPreempt: return "preempt";
    case RecoveryAction::kShed: return "shed";
    case RecoveryAction::kDefer: return "defer";
  }
  return "?";
}

int RecoveryLog::count(RecoveryAction action) const noexcept {
  int n = 0;
  for (const auto& e : events) n += e.action == action ? 1 : 0;
  return n;
}

bool RecoveryLog::degraded() const noexcept {
  return count(RecoveryAction::kReduceChannels) > 0 ||
         count(RecoveryAction::kPolicyFallback) > 0;
}

OperatingPoint make_operating_point(const proto::Environment& env,
                                    const proto::Dataset& dataset, JobPolicy policy,
                                    int max_channels, double sla_percent,
                                    Joules energy_budget, BitsPerSecond reference_rate,
                                    obs::DecisionLog* decisions) {
  OperatingPoint op;
  const int cc = std::max(1, max_channels);
  switch (policy) {
    case JobPolicy::kDeadline:
      op.plan = baselines::plan_promc(env, dataset, cc);
      break;
    case JobPolicy::kGreen:
      op.plan = core::plan_min_energy(env, dataset, cc, decisions);
      break;
    case JobPolicy::kBalanced:
      op.plan = core::plan_htee(env, dataset, cc, decisions);
      op.controller = std::make_unique<core::HteeController>(cc);
      break;
    case JobPolicy::kSla: {
      const BitsPerSecond target = reference_rate * sla_percent / 100.0;
      op.plan = core::plan_slaee(env, dataset, cc, decisions);
      op.controller = std::make_unique<core::SlaeeController>(target, cc);
      break;
    }
    case JobPolicy::kEnergyBudget:
      op.plan = baselines::plan_promc(env, dataset, cc);
      op.controller = std::make_unique<core::EnergyBudgetController>(energy_budget, cc);
      break;
  }
  return op;
}

std::optional<RecoveryAction> LadderState::on_abort(const SupervisorPolicy& p) {
  ++aborts_at_point;
  if (aborts_at_point < p.degrade_after) return std::nullopt;
  if (channels > p.min_channels) {
    const int next = std::max(p.min_channels,
                              static_cast<int>(std::floor(channels * p.channel_step)));
    channels = next < channels ? next : channels - 1;
    aborts_at_point = 0;
    return RecoveryAction::kReduceChannels;
  }
  if (p.policy_fallback && policy != JobPolicy::kGreen) {
    policy = JobPolicy::kGreen;
    aborts_at_point = 0;
    return RecoveryAction::kPolicyFallback;
  }
  return std::nullopt;
}

Supervisor::Supervisor(const testbeds::Testbed& testbed, BitsPerSecond reference_rate,
                       proto::FaultPlan faults, SupervisorPolicy policy,
                       proto::SessionConfig base_config)
    : testbed_(testbed), reference_rate_(reference_rate), faults_(std::move(faults)),
      policy_(policy), base_config_(base_config) {}

proto::RunResult Supervisor::attempt(const TransferJob& job, JobPolicy policy,
                                     int max_channels,
                                     const proto::SessionConfig& config,
                                     const proto::TransferCheckpoint* resume) const {
  obs::DecisionLog* decisions = config.obs != nullptr ? config.obs->decisions : nullptr;
  OperatingPoint op =
      make_operating_point(testbed_.env, job.dataset, policy, max_channels,
                           job.sla_percent, job.energy_budget, reference_rate_, decisions);
  proto::TransferSession s(testbed_.env, job.dataset, std::move(op.plan), config);
  s.set_fault_plan(faults_);
  if (resume != nullptr) {
    std::string err;
    if (!s.resume_from(*resume, &err)) {
      proto::RunResult refused;
      refused.error = "resume failed: " + err;
      return refused;
    }
  }
  return s.run(op.controller.get());
}

JobOutcome Supervisor::run(const TransferJob& job) const {
  JobOutcome out;
  out.name = job.name;
  out.policy = job.policy;

  LadderState ladder{job.policy, std::max(1, job.max_channels)};
  std::optional<proto::TransferCheckpoint> journal;

  obs::ObsSinks* obs = base_config_.obs;
  const auto log = [&](RecoveryAction action, int attempt_no, Seconds at,
                       std::string detail) {
    out.recovery.events.push_back(
        {at, attempt_no, action, to_string(ladder.policy), ladder.channels, detail});
    // Mirror every audited supervision decision into the observability layer,
    // so traces and RecoveryLog never disagree about what the ladder did.
    if (obs == nullptr) return;
    if (obs->metrics != nullptr) obs->metrics->counter(recovery_metric(action)).add(1);
    if (obs->decisions != nullptr) {
      obs::Decision d;
      d.at = at;
      d.kind = recovery_decision_kind(action);
      d.actor = "Supervisor";
      d.level = ladder.channels;
      d.chosen = ladder.channels;
      d.subject = std::string(to_string(action)) + " (attempt " +
                  std::to_string(attempt_no) + ", " + to_string(ladder.policy) + ")";
      d.detail = std::move(detail);
      obs->decisions->record(std::move(d));
    }
  };

  for (int attempt_no = 1;; ++attempt_no) {
    out.attempts = attempt_no;
    proto::SessionConfig config = base_config_;
    if (policy_.attempt_deadline > 0.0) config.max_sim_time = policy_.attempt_deadline;
    const Seconds attempt_start = journal ? journal->taken_at : 0.0;
    if (obs != nullptr && obs->metrics != nullptr) {
      obs->metrics->counter("supervisor.attempts").add(1);
    }
    if (obs != nullptr && obs->trace != nullptr) {
      // Opened before the session's own transfer span so the two nest
      // attempt > transfer on the control track.
      obs->trace->begin(attempt_start, obs::kControlTid,
                        obs->trace->intern("supervisor attempt " +
                                           std::to_string(attempt_no) + " (" +
                                           to_string(ladder.policy) + ")"),
                        "supervisor",
                        {"channels", static_cast<double>(ladder.channels)},
                        {"attempt", static_cast<double>(attempt_no)});
    }
    out.result = attempt(job, ladder.policy, ladder.channels, config,
                         journal ? &*journal : nullptr);
    if (obs != nullptr && obs->trace != nullptr) {
      obs->trace->end(std::max(attempt_start, out.result.duration), obs::kControlTid);
    }

    if (!out.result.error.empty()) {
      out.failed = true;
      log(RecoveryAction::kGiveUp, attempt_no, out.result.duration, out.result.error);
      break;
    }
    if (out.result.completed) {
      if (obs != nullptr && obs->decisions != nullptr) {
        obs::Decision d;
        d.at = out.result.duration;
        d.kind = obs::DecisionKind::kSupervisorDone;
        d.actor = "Supervisor";
        d.level = ladder.channels;
        d.chosen = ladder.channels;
        d.subject = "job completed (attempt " + std::to_string(attempt_no) + ")";
        d.detail = std::string("finished under the ") + to_string(ladder.policy) +
                   " policy at " + std::to_string(ladder.channels) + " channels";
        obs->decisions->record(std::move(d));
      }
      break;
    }

    log(RecoveryAction::kDeadlineAbort, attempt_no, out.result.duration,
        "attempt hit its " + std::to_string(config.max_sim_time) +
            " s deadline; checkpoint taken");
    if (attempt_no >= policy_.max_attempts) {
      out.failed = true;
      log(RecoveryAction::kGiveUp, attempt_no, out.result.duration,
          "retry budget (" + std::to_string(policy_.max_attempts) + " attempts) spent");
      break;
    }
    if (!out.result.checkpoint) {
      // Unreachable with the current engine (an aborted run always carries
      // its journal entry), but a supervisor must not retry blind.
      out.failed = true;
      log(RecoveryAction::kGiveUp, attempt_no, out.result.duration,
          "aborted run left no checkpoint");
      break;
    }
    journal = out.result.checkpoint;

    if (const auto step = ladder.on_abort(policy_)) {
      log(*step, attempt_no, out.result.duration,
          *step == RecoveryAction::kReduceChannels
              ? "stepping down to " + std::to_string(ladder.channels) + " channels"
              : "channel floor reached; falling back to the minimum-energy plan");
    }
    log(RecoveryAction::kResume, attempt_no + 1, journal->taken_at,
        "resuming from the checkpoint journal (" +
            std::to_string(journal->completed.size()) + " files landed)");
  }

  if (job.policy == JobPolicy::kSla) {
    const BitsPerSecond target = reference_rate_ * job.sla_percent / 100.0;
    // Scored on the original promise even if the ladder fell back; an
    // incomplete transfer never met its SLA. 0.93 is the paper's ~7 % band.
    out.sla_met = !out.failed && out.result.avg_throughput() >= target * 0.93;
  } else {
    out.sla_met = !out.failed;
  }
  return out;
}

}  // namespace eadt::exp
