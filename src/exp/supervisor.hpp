// Job supervision: watchdogs, checkpointed retries, and a degradation ladder.
//
// The TransferService's original contract treated every run as a success —
// a job that tripped the engine's max-sim-time guard lost everything it had
// moved and was still folded into the aggregate rates. The Supervisor gives
// the service real failure semantics: each attempt runs under a deadline
// watchdog; an aborted attempt leaves a TransferCheckpoint journal entry and
// is resumed from it (landed bytes are never re-paid); repeated aborts step
// the job down a degradation ladder — first lower `max_channels`, then a
// policy fallback to kGreen (MinE's single-channel-biased minimum-energy
// plan) — until the job completes or its retry budget is spent. Every
// decision is recorded in a RecoveryLog attached to the JobOutcome, so a
// provider can audit exactly how a transfer survived (or why it did not).
//
// This mirrors the online re-tuning loops of the paper's SLA discussion and
// the GreenDataFlow-style re-optimisation under changing conditions: the
// operating point is not fixed at submission, it is revised whenever the
// observed conditions prove it untenable.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/health.hpp"
#include "net/path_set.hpp"
#include "proto/checkpoint.hpp"
#include "proto/faults.hpp"
#include "proto/session.hpp"
#include "testbeds/testbeds.hpp"
#include "util/units.hpp"

namespace eadt::obs {
class DecisionLog;
enum class DecisionKind;
}  // namespace eadt::obs

namespace eadt::exp {

struct TransferJob;        // service.hpp
struct JobOutcome;         // service.hpp
enum class JobPolicy;      // service.hpp

/// One kind of supervision decision. The first five are the sequential
/// Supervisor's; the last three are scheduler-level decisions (exp::Scheduler)
/// audited through the same RecoveryLog so a tenant's history reads as one
/// ladder regardless of which layer acted.
enum class RecoveryAction {
  kResume,          ///< a new attempt started from the last checkpoint
  kDeadlineAbort,   ///< the watchdog cut an attempt short; checkpoint taken
  kReduceChannels,  ///< ladder step: lower concurrency
  kPolicyFallback,  ///< ladder step: fall back to the kGreen operating point
  kGiveUp,          ///< retry budget spent (or unrecoverable error): job failed
  kPreempt,         ///< scheduler checkpointed a running job to free capacity
  kShed,            ///< admission control rejected the job outright
  kDefer,           ///< tariff-aware deferral moved the start off-peak
  kMigrate,         ///< failover: resumed on a healthier alternate path
  kHedge,           ///< deadline projection missed; tail ran on two paths at once
};

[[nodiscard]] const char* to_string(RecoveryAction action) noexcept;
/// The obs::DecisionKind a recovery action is mirrored as.
[[nodiscard]] obs::DecisionKind recovery_decision_kind(RecoveryAction action) noexcept;
/// The obs metrics counter a recovery action increments.
[[nodiscard]] const char* recovery_metric(RecoveryAction action) noexcept;

/// One audited supervision decision.
struct RecoveryEvent {
  Seconds at = 0.0;  ///< cumulative transfer seconds when the decision fell
  int attempt = 0;   ///< 1-based attempt the decision belongs to
  RecoveryAction action = RecoveryAction::kResume;
  std::string policy;    ///< operating-point policy name after the decision
  int max_channels = 0;  ///< operating-point channel cap after the decision
  std::string detail;    ///< human-readable reason
};

struct RecoveryLog {
  std::vector<RecoveryEvent> events;

  [[nodiscard]] int count(RecoveryAction action) const noexcept;
  /// True when the ladder stepped the job below its requested operating point.
  [[nodiscard]] bool degraded() const noexcept;
};

/// A ready-to-run operating point: the plan and (optional) controller a
/// JobPolicy maps to. Built by make_operating_point for both the sequential
/// Supervisor and the concurrent exp::Scheduler, so the two layers can never
/// disagree about what a policy means.
struct OperatingPoint {
  proto::TransferPlan plan;
  /// Null for the non-adaptive policies (kDeadline's ProMC, kGreen's MinE).
  std::unique_ptr<proto::Controller> controller;
};

/// Map a job policy to its algorithmic operating point at `max_channels`
/// (clamped to >= 1). `reference_rate`/`sla_percent` feed kSla's target,
/// `energy_budget` feeds kEnergyBudget; `decisions` (may be null) receives
/// the planning decisions exactly as in a supervised run.
[[nodiscard]] OperatingPoint make_operating_point(
    const proto::Environment& env, const proto::Dataset& dataset, JobPolicy policy,
    int max_channels, double sla_percent, Joules energy_budget,
    BitsPerSecond reference_rate, obs::DecisionLog* decisions);

/// Knobs of the supervision loop.
struct SupervisorPolicy {
  /// Watchdog: simulated seconds one attempt may run before it is aborted
  /// and checkpointed. 0 leaves the session's own max_sim_time guard.
  Seconds attempt_deadline = 0.0;
  int max_attempts = 4;  ///< total attempts (first run included)
  /// Aborts tolerated at one operating point before the ladder steps down.
  int degrade_after = 1;
  /// Channel-cap multiplier per kReduceChannels step (floored, min below).
  double channel_step = 0.5;
  int min_channels = 1;
  /// Allow the final rung: fall back to kGreen once channels bottom out.
  bool policy_fallback = true;

  // --- Path resilience (appended so positional aggregate initializers of the
  // pre-resilience fields keep compiling). An empty `paths` disables the
  // whole layer: the supervisor is then bit-identical to its single-path
  // self, including in what it feeds the checkpoint journal.
  /// Alternate routes for this testbed's endpoint pair (index 0 = primary).
  net::PathSet paths;
  /// Health scoring for the failover decision (suspect/fail thresholds).
  HealthMonitorConfig health;
  /// Interactive finish deadline (absolute transfer seconds). When > 0,
  /// `hedge` is set, and an abort's projected finish overshoots it, the
  /// remaining tail is raced on the current path and the healthiest
  /// alternate; the loser is cancelled at the winner's finish and its energy
  /// reported as JobOutcome::hedge_energy.
  Seconds job_deadline = 0.0;
  bool hedge = false;
};

/// Fraction of an attempt's watchdog budget already burned: (now - started) /
/// deadline, clamped at >= 0. A value past 1 means the watchdog is due. Used
/// by the Scheduler's SLA burn-rate telemetry and by watchdog diagnostics;
/// returns 0 when no deadline is set.
[[nodiscard]] inline double deadline_burn(Seconds started, Seconds now,
                                          Seconds deadline) noexcept {
  if (deadline <= 0.0) return 0.0;
  const double burn = (now - started) / deadline;
  return burn > 0.0 ? burn : 0.0;
}

/// `base` re-bound to one PathSet option: same endpoints, datasets, and power
/// models, but the option's link characteristics and device chain. The
/// returned environment is what a failed-over session runs against — its BDP
/// drives the re-planned channel allocation in make_operating_point.
[[nodiscard]] proto::Environment environment_for_path(const proto::Environment& base,
                                                      const net::PathOption& option);

/// Degradation-ladder cursor: the stepping rule shared by the sequential
/// Supervisor and the concurrent Scheduler. Holds a job's current operating
/// point (policy + channel cap) and the aborts seen at it.
struct LadderState {
  JobPolicy policy;
  int channels = 1;
  int aborts_at_point = 0;

  /// Register one abort at the current operating point. When the policy's
  /// tolerance is spent, steps down one rung — first lower channels, then
  /// the kGreen fallback — and reports which rung was taken; nullopt when
  /// the ladder held position (tolerance remaining, or already at bottom).
  std::optional<RecoveryAction> on_abort(const SupervisorPolicy& p);
};

/// Runs one job to completion (or retry exhaustion) under the policy above.
/// With `max_attempts = 1` and `attempt_deadline = 0` this is exactly the
/// service's legacy single-shot execution, plus honest failure accounting.
class Supervisor {
 public:
  Supervisor(const testbeds::Testbed& testbed, BitsPerSecond reference_rate,
             proto::FaultPlan faults, SupervisorPolicy policy,
             proto::SessionConfig base_config);

  [[nodiscard]] JobOutcome run(const TransferJob& job) const;

 private:
  [[nodiscard]] proto::RunResult attempt(
      const TransferJob& job, JobPolicy policy, int max_channels,
      const proto::SessionConfig& config, const proto::TransferCheckpoint* resume,
      const proto::Environment& env, int path_id) const;

  const testbeds::Testbed& testbed_;
  BitsPerSecond reference_rate_ = 0.0;
  proto::FaultPlan faults_;
  SupervisorPolicy policy_;
  proto::SessionConfig base_config_;
};

}  // namespace eadt::exp
