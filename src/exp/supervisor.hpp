// Job supervision: watchdogs, checkpointed retries, and a degradation ladder.
//
// The TransferService's original contract treated every run as a success —
// a job that tripped the engine's max-sim-time guard lost everything it had
// moved and was still folded into the aggregate rates. The Supervisor gives
// the service real failure semantics: each attempt runs under a deadline
// watchdog; an aborted attempt leaves a TransferCheckpoint journal entry and
// is resumed from it (landed bytes are never re-paid); repeated aborts step
// the job down a degradation ladder — first lower `max_channels`, then a
// policy fallback to kGreen (MinE's single-channel-biased minimum-energy
// plan) — until the job completes or its retry budget is spent. Every
// decision is recorded in a RecoveryLog attached to the JobOutcome, so a
// provider can audit exactly how a transfer survived (or why it did not).
//
// This mirrors the online re-tuning loops of the paper's SLA discussion and
// the GreenDataFlow-style re-optimisation under changing conditions: the
// operating point is not fixed at submission, it is revised whenever the
// observed conditions prove it untenable.
#pragma once

#include <string>
#include <vector>

#include "proto/checkpoint.hpp"
#include "proto/faults.hpp"
#include "proto/session.hpp"
#include "testbeds/testbeds.hpp"
#include "util/units.hpp"

namespace eadt::exp {

struct TransferJob;        // service.hpp
struct JobOutcome;         // service.hpp
enum class JobPolicy;      // service.hpp

/// One kind of supervision decision.
enum class RecoveryAction {
  kResume,          ///< a new attempt started from the last checkpoint
  kDeadlineAbort,   ///< the watchdog cut an attempt short; checkpoint taken
  kReduceChannels,  ///< ladder step: lower concurrency
  kPolicyFallback,  ///< ladder step: fall back to the kGreen operating point
  kGiveUp,          ///< retry budget spent (or unrecoverable error): job failed
};

[[nodiscard]] const char* to_string(RecoveryAction action) noexcept;

/// One audited supervision decision.
struct RecoveryEvent {
  Seconds at = 0.0;  ///< cumulative transfer seconds when the decision fell
  int attempt = 0;   ///< 1-based attempt the decision belongs to
  RecoveryAction action = RecoveryAction::kResume;
  std::string policy;    ///< operating-point policy name after the decision
  int max_channels = 0;  ///< operating-point channel cap after the decision
  std::string detail;    ///< human-readable reason
};

struct RecoveryLog {
  std::vector<RecoveryEvent> events;

  [[nodiscard]] int count(RecoveryAction action) const noexcept;
  /// True when the ladder stepped the job below its requested operating point.
  [[nodiscard]] bool degraded() const noexcept;
};

/// Knobs of the supervision loop.
struct SupervisorPolicy {
  /// Watchdog: simulated seconds one attempt may run before it is aborted
  /// and checkpointed. 0 leaves the session's own max_sim_time guard.
  Seconds attempt_deadline = 0.0;
  int max_attempts = 4;  ///< total attempts (first run included)
  /// Aborts tolerated at one operating point before the ladder steps down.
  int degrade_after = 1;
  /// Channel-cap multiplier per kReduceChannels step (floored, min below).
  double channel_step = 0.5;
  int min_channels = 1;
  /// Allow the final rung: fall back to kGreen once channels bottom out.
  bool policy_fallback = true;
};

/// Runs one job to completion (or retry exhaustion) under the policy above.
/// With `max_attempts = 1` and `attempt_deadline = 0` this is exactly the
/// service's legacy single-shot execution, plus honest failure accounting.
class Supervisor {
 public:
  Supervisor(const testbeds::Testbed& testbed, BitsPerSecond reference_rate,
             proto::FaultPlan faults, SupervisorPolicy policy,
             proto::SessionConfig base_config);

  [[nodiscard]] JobOutcome run(const TransferJob& job) const;

 private:
  [[nodiscard]] proto::RunResult attempt(
      const TransferJob& job, JobPolicy policy, int max_channels,
      const proto::SessionConfig& config,
      const proto::TransferCheckpoint* resume) const;

  const testbeds::Testbed& testbed_;
  BitsPerSecond reference_rate_ = 0.0;
  proto::FaultPlan faults_;
  SupervisorPolicy policy_;
  proto::SessionConfig base_config_;
};

}  // namespace eadt::exp
