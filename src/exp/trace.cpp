#include "exp/trace.hpp"

#include <ostream>

#include "util/table.hpp"

namespace eadt::exp {

void TickRecorder::on_tick(const proto::TickTrace& trace) {
  if (seen_++ % static_cast<std::size_t>(stride_) == 0) {
    traces_.push_back(trace);
  }
}

void TickRecorder::write_csv(std::ostream& os) const {
  Table t({"time_s", "goodput_mbps", "power_w", "open_channels", "busy_channels",
           "down_channels", "path_factor"});
  for (const auto& trace : traces_) {
    int busy = 0;
    for (const auto& ch : trace.channels) busy += ch.busy ? 1 : 0;
    t.add_row({Table::num(trace.time, 2), Table::num(to_mbps(trace.goodput), 1),
               Table::num(trace.end_system_power, 1),
               std::to_string(trace.open_channels), std::to_string(busy),
               std::to_string(trace.down_channels),
               Table::num(trace.path_capacity_factor, 2)});
  }
  t.render_csv(os);
}

}  // namespace eadt::exp
