#include "exp/trace.hpp"

#include <ostream>

#include "util/table.hpp"

namespace eadt::exp {

void TickRecorder::on_tick(const proto::TickTrace& trace) {
  if (seen_++ % static_cast<std::size_t>(stride_) == 0) {
    traces_.push_back(trace);
  }
}

Seconds TickRecorder::measured_tick() const noexcept {
  if (traces_.size() < 2) return 0.0;
  return (traces_[1].time - traces_[0].time) / stride_;
}

void TickRecorder::write_csv(std::ostream& os) const {
  os << "# tick stride: " << stride_ << " (one row per " << stride_
     << " engine tick" << (stride_ == 1 ? "" : "s") << ")\n";
  if (const Seconds tick = measured_tick(); tick > 0.0) {
    os << "# tick length: " << Table::num(tick, 3) << " s (measured); sampling period: "
       << Table::num(tick * stride_, 3) << " s\n";
  }
  Table t({"time_s", "goodput_mbps", "power_w", "open_channels", "busy_channels",
           "down_channels", "path_factor"});
  for (const auto& trace : traces_) {
    int busy = 0;
    for (const auto& ch : trace.channels) busy += ch.busy ? 1 : 0;
    t.add_row({Table::num(trace.time, 2), Table::num(to_mbps(trace.goodput), 1),
               Table::num(trace.end_system_power, 1),
               std::to_string(trace.open_channels), std::to_string(busy),
               std::to_string(trace.down_channels),
               Table::num(trace.path_capacity_factor, 2)});
  }
  t.render_csv(os);
}

}  // namespace eadt::exp
