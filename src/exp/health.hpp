// Per-path health scoring for the resilience layer (phi-accrual style).
//
// Classic phi-accrual failure detection (Hayashibara et al.) turns a stream
// of heartbeat observations into a continuous suspicion level phi, so policy
// can pick its own threshold instead of a binary alive/dead verdict. Our
// "heartbeats" are transfer observations: each tick (or sample window) a path
// reports the fraction of its expected goodput it actually delivered, and
// fault events (channel drops, outages, brownout onsets) land as discrete
// demerits. The monitor folds both into one phi per path:
//
//   phi(path) = -log10(EWMA of goodput fraction) + decaying fault demerits
//
// A path delivering its expected goodput sits at phi ~ 0; one delivering 10%
// scores ~1; a hard outage pushes phi past any sane fail threshold within a
// few windows. Fault demerits decay with a configurable half-life of
// *simulated* time, so a path that flapped a minute ago looks better than one
// flapping now.
//
// Determinism: the monitor is pure arithmetic over the observation sequence —
// no wall clock, no randomness, no shared state. Feed it the same
// observations in the same order and phi is bit-identical, which is what lets
// failover decisions live inside byte-reproducible benches. One monitor
// belongs to one supervisor/scheduler and is used single-threaded.
#pragma once

#include <vector>

#include "util/units.hpp"

namespace eadt::exp {

struct HealthMonitorConfig {
  /// phi at or above which a path is suspect (failover candidates preferred).
  double suspect_phi = 1.0;
  /// phi at or above which a path is treated as failed for placement.
  double fail_phi = 3.0;
  /// EWMA weight of the newest goodput window (higher = faster reaction).
  double ewma_alpha = 0.2;
  /// Goodput fractions are clamped up to this floor before the log, bounding
  /// phi's goodput term at -log10(floor) even through a total outage.
  double min_fraction = 1e-4;
  /// phi added per unit of fault weight.
  double fault_weight = 0.5;
  /// Simulated-time half-life of accumulated fault demerits.
  Seconds fault_halflife = 30.0;
};

/// Suspicion scores for a fixed set of paths (index-aligned with the job's
/// net::PathSet). See file comment for the model.
class HealthMonitor {
 public:
  HealthMonitor(int n_paths, HealthMonitorConfig cfg = {});

  /// One goodput window on `path` ending at simulated time `at`:
  /// `fraction` = achieved / expected goodput, clamped to [0, 1].
  void observe_goodput(int path, Seconds at, double fraction);

  /// A discrete fault on `path` at simulated time `at` (weight 1.0 = one
  /// channel drop; heavier events pass more).
  void observe_fault(int path, Seconds at, double weight = 1.0);

  [[nodiscard]] int paths() const noexcept { return static_cast<int>(state_.size()); }
  [[nodiscard]] double phi(int path) const;
  [[nodiscard]] bool suspect(int path) const { return phi(path) >= cfg_.suspect_phi; }
  [[nodiscard]] bool failed(int path) const { return phi(path) >= cfg_.fail_phi; }

  /// Lowest-phi path, excluding `exclude` (pass -1 to exclude none); ties go
  /// to the lowest index so the choice is deterministic. Returns -1 when no
  /// candidate exists.
  [[nodiscard]] int healthiest(int exclude = -1) const;

  [[nodiscard]] const HealthMonitorConfig& config() const noexcept { return cfg_; }

 private:
  struct PathState {
    double ewma_fraction = 1.0;  ///< optimistic start: a path is healthy until observed
    double fault_phi = 0.0;      ///< decaying demerit accumulator
    Seconds fault_at = 0.0;      ///< sim time fault_phi was last brought current
  };

  [[nodiscard]] double fault_phi_at(const PathState& s, Seconds at) const;

  HealthMonitorConfig cfg_;
  std::vector<PathState> state_;
  Seconds now_ = 0.0;  ///< latest observation time, for phi() queries
};

}  // namespace eadt::exp
