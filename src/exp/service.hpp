// A transfer service: the provider-side layer the paper's SLA discussion
// implies. Jobs (dataset + policy) queue on a testbed whose DTNs run one
// transfer at a time; each job picks its algorithm from its policy:
//
//   kDeadline     — ProMC at full concurrency (fastest finish)
//   kGreen        — MinE (least energy, no performance promise)
//   kBalanced     — HTEE (best throughput/energy operating point)
//   kSla          — SLAEE against a fraction of the service's reference rate
//   kEnergyBudget — EnergyBudgetController under a per-job Joule cap
//
// The service reports per-job and aggregate outcomes (makespan, energy,
// achieved rates) plus queue ordering support (FIFO / shortest-bytes-first /
// green-jobs-first), which is what a provider tunes against its power bill.
#pragma once

#include <string>
#include <vector>

#include <optional>

#include "exp/supervisor.hpp"
#include "power/tariff.hpp"
#include "proto/faults.hpp"
#include "proto/session.hpp"
#include "testbeds/testbeds.hpp"

namespace eadt::obs {
class ObsCollector;
class StreamingTraceWriter;
class TelemetryHub;
class TickFlightRecorder;
class TickProfiler;
}  // namespace eadt::obs

namespace eadt::exp {

enum class JobPolicy { kDeadline, kGreen, kBalanced, kSla, kEnergyBudget };

[[nodiscard]] const char* to_string(JobPolicy policy) noexcept;

struct TransferJob {
  std::string name;
  proto::Dataset dataset;
  JobPolicy policy = JobPolicy::kBalanced;
  /// kSla: required fraction (percent) of the service's reference rate.
  double sla_percent = 90.0;
  /// kEnergyBudget: end-system Joule cap for this job.
  Joules energy_budget = 0.0;
  int max_channels = 12;
};

struct JobOutcome {
  std::string name;
  JobPolicy policy = JobPolicy::kBalanced;
  Seconds queued_at = 0.0;   ///< service-timeline start
  Seconds finished_at = 0.0;
  proto::RunResult result;
  /// True when the job never completed — its last attempt aborted (time
  /// guard / watchdog) or refused to start. A failed job's rates are excluded
  /// from the report's aggregate reference-rate math.
  bool failed = false;
  int attempts = 1;          ///< legs run (1 = no supervisor retry was needed)
  RecoveryLog recovery;      ///< every supervision decision, in order
  bool sla_met = true;       ///< kSla only (and only if completed); true otherwise
  double cost_usd = 0.0;     ///< 0 unless the service has a tariff
  // Path resilience (all zero without a PathSet on the supervisor policy).
  int migrations = 0;        ///< failovers to an alternate path (not retries)
  int final_path = 0;        ///< PathSet index the job finished (or died) on
  int hedge_legs = 0;        ///< tail legs raced for the deadline (0 or 2)
  Joules hedge_energy = 0.0; ///< losing leg's double-spend up to cancellation

  [[nodiscard]] double throughput_mbps() const {
    return to_mbps(result.avg_throughput());
  }
};

struct ServiceReport {
  std::vector<JobOutcome> jobs;
  Seconds makespan = 0.0;
  Bytes total_bytes = 0;
  Joules total_energy = 0.0;
  double total_cost_usd = 0.0;         ///< 0 unless the service has a tariff
  BitsPerSecond reference_rate = 0.0;  ///< the ProMC max SLA jobs are scored against
  int failed_jobs = 0;                 ///< jobs whose last attempt still aborted
  /// Mean achieved rate as a fraction of the reference, over *completed* jobs
  /// only — an aborted run's clock-limited "rate" says nothing about the
  /// service and would poison the aggregate.
  double mean_rate_fraction = 0.0;
};

enum class QueueOrder {
  kFifo,
  kShortestFirst,  ///< fewest bytes first (classic makespan heuristic)
  kGreenFirst,     ///< energy-minimising jobs first (off-peak shaping)
};

struct SchedulerJob;     // scheduler.hpp
struct SchedulerPolicy;  // scheduler.hpp
struct SchedulerReport;  // scheduler.hpp

class TransferService {
 public:
  /// `reference_rate` = 0 measures it (one ProMC run at default channels).
  explicit TransferService(testbeds::Testbed testbed,
                           BitsPerSecond reference_rate = 0.0,
                           proto::SessionConfig config = {});

  /// Run all jobs back to back in the given order. Deterministic.
  [[nodiscard]] ServiceReport run_queue(std::vector<TransferJob> jobs,
                                        QueueOrder order = QueueOrder::kFifo);

  /// Multi-tenant mode: all jobs on one shared simulation under admission
  /// control, a site power cap, and joint link arbitration (exp::Scheduler).
  /// The service's tariff, fault plan, and reference rate carry over;
  /// `collector` (may be null) receives per-tenant observability slots.
  [[nodiscard]] SchedulerReport run_concurrent(std::vector<SchedulerJob> jobs,
                                               const SchedulerPolicy& policy,
                                               obs::ObsCollector* collector = nullptr);

  [[nodiscard]] BitsPerSecond reference_rate() const noexcept { return reference_rate_; }

  /// Attach an electricity tariff; job costs are integrated over their slot
  /// in the service timeline, which starts at `queue_start_time` (seconds
  /// since midnight — a 22:00 start puts the queue into the off-peak window).
  void set_tariff(power::Tariff tariff, Seconds queue_start_time = 0.0) {
    tariff_ = std::move(tariff);
    queue_start_time_ = queue_start_time;
  }

  /// Subject every job to this failure workload (default: none). The plan is
  /// replayed per attempt — its event times are attempt-local.
  void set_fault_plan(proto::FaultPlan faults) { faults_ = std::move(faults); }

  /// Enable supervision: per-attempt deadline watchdogs, checkpointed
  /// retries, and the degradation ladder (see exp::Supervisor). Without this
  /// the service runs each job once and merely reports failures honestly.
  void set_supervisor(SupervisorPolicy policy) { supervisor_ = policy; }

  /// Stream the concurrent scheduler's trace incrementally (drained every
  /// master tick, finish()ed at run end) instead of one-shot at exit. The
  /// writer must outlive run_concurrent(). See Scheduler::set_stream.
  void set_stream(obs::StreamingTraceWriter* stream) noexcept { stream_ = stream; }

  /// Serve GET /metrics (OpenMetrics exposition of the collector's registry)
  /// and GET /healthz on 127.0.0.1:`port` for the duration of
  /// run_concurrent(). 0 binds an ephemeral port; negative (the default)
  /// disables the listener. Requires a collector on run_concurrent() — there
  /// is no registry to scrape otherwise. A bind failure is reported on
  /// stderr and the run proceeds unscraped rather than dying.
  void set_metrics_listen(int port) noexcept { metrics_listen_ = port; }

  /// Forwarded to the concurrent scheduler (see exp::Scheduler for the
  /// determinism and lifetime contracts): the sim-time telemetry sampler,
  /// the last-K-ticks flight recorder, and the wall-clock tick profiler.
  void set_telemetry(obs::TelemetryHub* hub) noexcept { telemetry_ = hub; }
  void set_flight_recorder(obs::TickFlightRecorder* rec) noexcept { flightrec_ = rec; }
  void set_tick_profiler(obs::TickProfiler* profiler) noexcept { profiler_ = profiler; }

 private:
  [[nodiscard]] JobOutcome run_job(const TransferJob& job) const;

  testbeds::Testbed testbed_;
  BitsPerSecond reference_rate_ = 0.0;
  proto::SessionConfig config_;
  std::optional<power::Tariff> tariff_;
  Seconds queue_start_time_ = 0.0;
  proto::FaultPlan faults_;
  std::optional<SupervisorPolicy> supervisor_;
  obs::StreamingTraceWriter* stream_ = nullptr;
  obs::TelemetryHub* telemetry_ = nullptr;
  obs::TickFlightRecorder* flightrec_ = nullptr;
  obs::TickProfiler* profiler_ = nullptr;
  int metrics_listen_ = -1;  ///< negative = no scrape listener
};

}  // namespace eadt::exp
