#include "exp/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <span>
#include <type_traits>
#include <utility>

#include "baselines/baselines.hpp"
#include "exp/tick_pool.hpp"
#include "net/tcp_model.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "power/end_system.hpp"

namespace eadt::exp {

const char* to_string(SlaClass cls) noexcept {
  switch (cls) {
    case SlaClass::kInteractive: return "interactive";
    case SlaClass::kStandard: return "standard";
    case SlaClass::kScavenger: return "scavenger";
  }
  return "?";
}

SlaClass sla_class_of(JobPolicy policy) noexcept {
  switch (policy) {
    case JobPolicy::kDeadline:
    case JobPolicy::kSla: return SlaClass::kInteractive;
    case JobPolicy::kBalanced:
    case JobPolicy::kEnergyBudget: return SlaClass::kStandard;
    case JobPolicy::kGreen: return SlaClass::kScavenger;
  }
  return SlaClass::kStandard;
}

Watts session_peak_power_bound(const proto::Environment& env) {
  // Eq. 1 with every utilization at its clamp (1.0) and Eq. 2 at its worst
  // admissible core count: the polynomial is convex, so its maximum over
  // 1..cores is at an endpoint. One session can at most activate every
  // server of both endpoints, each drawing its activation base on top.
  const auto side = [](const proto::Endpoint& ep) {
    Watts w = 0.0;
    for (const auto& s : ep.servers) {
      const double coef = std::max(power::cpu_coefficient(1),
                                   power::cpu_coefficient(std::max(1, s.cores)));
      w += ep.power.active_base + ep.power.cpu_scale * coef + ep.power.mem +
           ep.power.disk + ep.power.nic;
    }
    return w;
  };
  return side(env.source) + side(env.destination);
}

std::string scheduler_report_payload(const SchedulerReport& report) {
  std::string out;
  out.reserve(256 + report.jobs.size() * 512);
  const auto hexf = [&out](const char* key, double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s=%a\n", key, v);
    out += buf;
  };
  const auto intf = [&out](const char* key, long long v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s=%lld\n", key, v);
    out += buf;
  };
  for (const TenantOutcome& t : report.jobs) {
    out += "job ";
    out += t.name;
    out += '\n';
    out += "policy=";
    out += to_string(t.policy);
    out += '\n';
    out += "class=";
    out += to_string(t.sla_class);
    out += '\n';
    hexf("submitted_at", t.submitted_at);
    hexf("started_at", t.started_at);
    hexf("finished_at", t.finished_at);
    intf("rejected", t.rejected ? 1 : 0);
    intf("failed", t.failed ? 1 : 0);
    intf("sla_met", t.sla_met ? 1 : 0);
    intf("attempts", t.attempts);
    intf("preemptions", t.preemptions);
    intf("deferrals", t.deferrals);
    intf("migrations", t.migrations);
    intf("path", t.path);
    hexf("cost_usd", t.cost_usd);
    const proto::RunResult& r = t.result;
    hexf("duration", r.duration);
    intf("bytes", static_cast<long long>(r.bytes));
    hexf("end_system_energy", r.end_system_energy);
    hexf("network_energy", r.network_energy);
    intf("final_concurrency", r.final_concurrency);
    intf("completed", r.completed ? 1 : 0);
    intf("retries", r.faults.retries);
    intf("channel_drops", r.faults.channel_drops);
    intf("checksum_failures", r.faults.checksum_failures);
    intf("server_outages", r.faults.server_outages);
    intf("wasted_bytes", static_cast<long long>(r.faults.wasted_bytes));
    hexf("wasted_joules", r.faults.wasted_joules);
    hexf("channel_downtime", r.faults.channel_downtime);
    for (const proto::SampleStats& s : r.samples) {
      hexf("s.start", s.window_start);
      hexf("s.end", s.window_end);
      intf("s.bytes", static_cast<long long>(s.bytes));
      hexf("s.energy", s.end_system_energy);
      intf("s.channels", s.active_channels);
      intf("s.down", s.down_channels);
    }
    for (const RecoveryEvent& e : t.recovery.events) {
      hexf("r.at", e.at);
      intf("r.attempt", e.attempt);
      out += "r.action=";
      out += to_string(e.action);
      out += '\n';
      out += "r.policy=";
      out += e.policy;
      out += '\n';
      intf("r.max_channels", e.max_channels);
    }
  }
  out += "aggregate\n";
  intf("submitted", report.submitted);
  intf("accepted", report.accepted);
  intf("rejected", report.rejected);
  intf("completed", report.completed);
  intf("failed", report.failed);
  intf("preemptions", report.preemptions);
  intf("deferrals", report.deferrals);
  intf("migrations", report.migrations);
  hexf("makespan", report.makespan);
  intf("total_bytes", static_cast<long long>(report.total_bytes));
  hexf("total_energy", report.total_energy);
  hexf("total_cost_usd", report.total_cost_usd);
  hexf("peak_power", report.peak_power);
  hexf("peak_power_bound", report.peak_power_bound);
  intf("power_cap_violations", report.power_cap_violations);
  intf("max_concurrent", report.max_concurrent_observed);
  for (const SlaClassStats* c :
       {&report.interactive, &report.standard, &report.scavenger}) {
    intf("c.submitted", c->submitted);
    intf("c.rejected", c->rejected);
    intf("c.completed", c->completed);
    intf("c.failed", c->failed);
    intf("c.sla_met", c->sla_met);
  }
  return out;
}

namespace {

[[nodiscard]] int class_rank(SlaClass cls) noexcept {
  switch (cls) {
    case SlaClass::kInteractive: return 0;
    case SlaClass::kStandard: return 1;
    case SlaClass::kScavenger: return 2;
  }
  return 1;
}

/// Below this many running tenants the pool handshake costs more than the
/// phases it would shard, so the tick stays serial. Purely a wall-clock
/// cutoff: the output is byte-identical either way.
constexpr std::size_t kMinParallelTenants = 16;

/// One tick phase over [0, count): sharded across the pool when one is
/// engaged, inline in index order otherwise. The lambda is passed by address
/// as the pool's context — no std::function, no allocation on the tick path.
/// Wall-clock lap timer for the tick pipeline's phases. Inert (never reads
/// the clock) without a profiler, so the deterministic path costs nothing.
struct PhaseTimer {
  explicit PhaseTimer(obs::TickProfiler* profiler) : prof(profiler) {
    if (prof != nullptr) last = std::chrono::steady_clock::now();
  }
  void lap(obs::TickProfiler::Phase phase) {
    if (prof == nullptr) return;
    const auto now = std::chrono::steady_clock::now();
    prof->observe(phase, std::chrono::duration<double, std::micro>(now - last).count());
    last = now;
  }
  obs::TickProfiler* prof;
  std::chrono::steady_clock::time_point last;
};

template <typename Fn>
void run_phase(TickPool* pool, std::size_t count, Fn&& fn) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->run(
      count,
      [](void* ctx, std::size_t i) {
        (*static_cast<std::remove_reference_t<Fn>*>(ctx))(i);
      },
      &fn);
}

}  // namespace

/// One tenant's live state. `out` accumulates the reportable fate; the rest
/// is the machinery of the current leg.
struct Scheduler::Tenant {
  std::size_t index = 0;
  SchedulerJob spec;
  LadderState ladder{JobPolicy::kBalanced, 1};
  std::optional<proto::TransferCheckpoint> journal;
  std::unique_ptr<proto::TransferSession> session;
  std::unique_ptr<proto::Controller> controller;
  obs::ObsSinks* sinks = nullptr;
  Seconds attempt_started = 0.0;   ///< raw clock at the current leg's begin()
  Seconds attempt_deadline = 0.0;  ///< watchdog for the current leg (0 = none)
  int deadline_aborts = 0;  ///< watchdog aborts only; preemptions don't count
  int path = 0;             ///< current PathSet placement (0 in single-path mode)
  std::size_t tick_index = 0;  ///< position in running_ this tick (staging key)
  enum class State { kPending, kQueued, kDeferred, kRunning, kDone } state = State::kPending;
  TenantOutcome out;
};

Scheduler::Scheduler(testbeds::Testbed testbed, BitsPerSecond reference_rate,
                     SchedulerPolicy policy, proto::SessionConfig base_config)
    : testbed_(std::move(testbed)), reference_rate_(reference_rate), policy_(policy),
      base_config_(base_config) {
  policy_.max_concurrent = std::max(1, policy_.max_concurrent);
  policy_.max_queue_depth = std::max(1, policy_.max_queue_depth);
  if (reference_rate_ <= 0.0) {
    // Same probe the TransferService runs: the site's ProMC best case.
    const auto probe = testbed_.make_dataset();
    proto::TransferSession session(
        testbed_.env, probe,
        baselines::plan_promc(testbed_.env, probe, testbed_.default_max_channels),
        base_config_);
    reference_rate_ = session.run().avg_throughput();
  }
}

Scheduler::~Scheduler() = default;

void Scheduler::record(Tenant& t, RecoveryAction action, Seconds at,
                       std::string detail) {
  t.out.recovery.events.push_back({at, std::max(1, t.out.attempts), action,
                                   to_string(t.ladder.policy), t.ladder.channels,
                                   detail});
  obs::ObsSinks* s = t.sinks;
  if (s == nullptr) return;
  if (s->metrics != nullptr) s->metrics->counter(recovery_metric(action)).add(1);
  if (s->decisions != nullptr) {
    obs::Decision d;
    d.at = at;
    d.kind = recovery_decision_kind(action);
    d.actor = "Scheduler";
    d.level = t.ladder.channels;
    d.chosen = t.ladder.channels;
    d.subject = std::string(to_string(action)) + " " + t.out.name + " (" +
                to_string(t.ladder.policy) + ")";
    d.detail = std::move(detail);
    s->decisions->record(std::move(d));
  }
}

void Scheduler::decide(Tenant& t, obs::DecisionKind kind, std::string subject,
                       std::string detail) {
  obs::ObsSinks* s = t.sinks;
  if (s == nullptr || s->decisions == nullptr) return;
  obs::Decision d;
  d.at = sim_.now();
  d.kind = kind;
  d.actor = "Scheduler";
  d.level = t.ladder.channels;
  d.chosen = static_cast<int>(running_.size());
  d.subject = std::move(subject);
  d.detail = std::move(detail);
  s->decisions->record(std::move(d));
}

Seconds Scheduler::defer_delay(const Tenant& t) const {
  if (!tariff_ || policy_.max_defer <= 0.0) return 0.0;
  if (t.out.sla_class != SlaClass::kScavenger) return 0.0;
  const Seconds abs = tariff_start_ + sim_.now();
  const double now_price = tariff_->price_at(abs);
  const Seconds target = tariff_->cheapest_hour() * 3600.0;
  Seconds tod = std::fmod(abs, power::kSecondsPerDay);
  Seconds delay = target - tod;
  if (delay < 0.0) delay += power::kSecondsPerDay;
  if (delay <= 0.0 || delay > policy_.max_defer) return 0.0;
  if (tariff_->price_at(abs + delay) >= now_price) return 0.0;  // already cheap
  return delay;
}

void Scheduler::on_submit(Tenant& t) {
  ++report_.submitted;
  // Bounded admission: the waiting room (queued + deferred) is finite and
  // overflow is an explicit, accounted rejection — never a silent drop.
  int waiting = static_cast<int>(queue_.size());
  for (const auto& other : tenants_) {
    waiting += other->state == Tenant::State::kDeferred ? 1 : 0;
  }
  bool over_cap = policy_.power_cap > 0.0 && session_peak_ > policy_.power_cap;
  if (multipath()) {
    // Shed only when no site could ever host one session under its cap.
    over_cap = true;
    for (int p = 0; p < static_cast<int>(path_session_peak_.size()); ++p) {
      const Watts cap = path_cap(p);
      if (cap <= 0.0 || path_session_peak_[p] <= cap) over_cap = false;
    }
  }
  if (waiting >= policy_.max_queue_depth || over_cap) {
    t.out.rejected = true;
    t.out.finished_at = sim_.now();
    ++report_.rejected;
    record(t, RecoveryAction::kShed, sim_.now(),
           over_cap ? "one session's peak draw cannot fit under the site power cap"
                    : "waiting queue full (" + std::to_string(waiting) + "/" +
                          std::to_string(policy_.max_queue_depth) + ")");
    retire(t);
    return;
  }
  ++report_.accepted;
  decide(t, obs::DecisionKind::kSchedulerAdmit, "admit " + t.out.name,
         std::string("class ") + to_string(t.out.sla_class) + ", queue depth " +
             std::to_string(waiting));
  if (const Seconds delay = defer_delay(t); delay > 0.0) {
    t.state = Tenant::State::kDeferred;
    ++t.out.deferrals;
    ++report_.deferrals;
    ++deferred_;
    record(t, RecoveryAction::kDefer, sim_.now(),
           "shifting the start " + std::to_string(delay) +
               " s into the tariff's cheapest band");
    Tenant* tp = &t;
    sim_.schedule_after(delay, [this, tp] {
      if (tp->state != Tenant::State::kDeferred) return;
      --deferred_;
      enqueue(*tp);
      try_dispatch();
    });
    return;
  }
  enqueue(t);
  try_dispatch();
}

void Scheduler::enqueue(Tenant& t) {
  t.state = Tenant::State::kQueued;
  // Class-priority insertion, stable within a class: interactive jobs pass
  // waiting batch work, scavengers go last.
  const int rank = class_rank(t.out.sla_class);
  auto it = queue_.begin();
  while (it != queue_.end() && class_rank((*it)->out.sla_class) <= rank) ++it;
  queue_.insert(it, &t);
}

bool Scheduler::can_dispatch(const Tenant&) const {
  if (static_cast<int>(running_.size()) >= policy_.max_concurrent) return false;
  if (multipath()) return pick_path() >= 0;
  if (policy_.power_cap > 0.0 &&
      running_peak_sum_ + session_peak_ > policy_.power_cap + 1e-9) {
    return false;
  }
  return true;
}

Watts Scheduler::path_cap(int p) const noexcept {
  if (p >= 0 && p < static_cast<int>(policy_.path_power_caps.size()) &&
      policy_.path_power_caps[p] > 0.0) {
    return policy_.path_power_caps[p];
  }
  return policy_.power_cap;
}

int Scheduler::pick_path(bool allow_failed) const {
  int best = -1;
  double best_phi = 0.0;
  for (int p = 0; p < static_cast<int>(path_envs_.size()); ++p) {
    if (!allow_failed && health_->failed(p)) continue;
    const Watts cap = path_cap(p);
    if (cap > 0.0 && path_running_peak_[p] + path_session_peak_[p] > cap + 1e-9) {
      continue;  // this site has no power headroom for one more session
    }
    if (policy_.power_cap > 0.0 &&
        running_peak_sum_ + path_session_peak_[p] > policy_.power_cap + 1e-9) {
      continue;  // the cross-site sum is capped too
    }
    const double phi = health_->phi(p);
    if (best == -1 || phi < best_phi) {  // strict <: lowest index wins ties
      best = p;
      best_phi = phi;
    }
  }
  return best;
}

int Scheduler::pick_path() const {
  // Prefer healthy sites; when every path has failed health, a capped-but-alive
  // placement still beats refusing service, so retry ignoring the verdict.
  const int p = pick_path(/*allow_failed=*/false);
  return p >= 0 ? p : pick_path(/*allow_failed=*/true);
}

void Scheduler::release_capacity(const Tenant& t) {
  const Watts peak = multipath() ? path_session_peak_[t.path] : session_peak_;
  running_peak_sum_ -= peak;
  if (multipath()) path_running_peak_[t.path] -= peak;
}

TickPool* Scheduler::tick_pool() const noexcept {
  if (pool_ == nullptr) return nullptr;
  if (running_.size() < kMinParallelTenants) return nullptr;
  // Without a collector every tenant shares base_config_.obs, and trace /
  // decision slots are single-writer — sharded prepare phases would race on
  // them. A collector gives each tenant its own slot, so the gate opens.
  if (collector_ == nullptr && base_config_.obs != nullptr) return nullptr;
  return pool_.get();
}

void Scheduler::stage_allocations(const std::vector<Tenant*>& group, const double eff,
                                  const double burst_cap) {
  for (std::size_t i = 0; i < group.size(); ++i) {
    const auto slice = arbiter_.slice(i);
    StagedSlice& staged = tick_slices_[group[i]->tick_index];
    staged.offset = tick_alloc_.size();
    staged.count = slice.size();
    staged.eff = eff;
    staged.burst_cap = burst_cap;
    tick_alloc_.insert(tick_alloc_.end(), slice.begin(), slice.end());
  }
}

void Scheduler::try_dispatch() {
  while (!queue_.empty()) {
    Tenant& head = *queue_.front();
    if (can_dispatch(head)) {
      queue_.erase(queue_.begin());
      dispatch(head);
      continue;
    }
    // An interactive tenant blocked on capacity may evict background work:
    // the most recently dispatched scavenger is checkpointed and re-queued.
    if (head.out.sla_class == SlaClass::kInteractive) {
      Tenant* victim = nullptr;
      for (auto it = running_.rbegin(); it != running_.rend(); ++it) {
        if ((*it)->out.sla_class == SlaClass::kScavenger) {
          victim = *it;
          break;
        }
      }
      if (victim != nullptr) {
        preempt(*victim);
        continue;  // re-check the head against the freed capacity
      }
    }
    break;
  }
}

void Scheduler::dispatch(Tenant& t) {
  const TransferJob& job = t.spec.job;
  obs::DecisionLog* decisions = t.sinks != nullptr ? t.sinks->decisions : nullptr;
  if (multipath()) {
    // Placement IS migration: every dispatch (first leg, resume after an
    // abort, re-dispatch after a preemption) lands on the healthiest path
    // with power headroom. A journal taken on a different path than the one
    // chosen makes this leg a failover, never a plain retry — which is what
    // keeps `migrations <= attempts` an invariant rather than a hope.
    const int chosen = pick_path();
    if (chosen >= 0) {
      if (t.journal && t.journal->path_id != chosen) {
        ++t.out.migrations;
        ++report_.migrations;
        record(t, RecoveryAction::kMigrate, sim_.now(),
               "resuming on " + policy_.paths.option(chosen).name + " (phi " +
                   std::to_string(health_->phi(chosen)) + ") instead of " +
                   policy_.paths.option(t.journal->path_id).name + " (phi " +
                   std::to_string(health_->phi(t.journal->path_id)) + ")");
      }
      t.path = chosen;
    }
    t.out.path = t.path;
  }
  const proto::Environment& env = multipath() ? path_envs_[t.path] : testbed_.env;
  OperatingPoint op = make_operating_point(
      env, job.dataset, t.ladder.policy, t.ladder.channels,
      job.sla_percent, job.energy_budget, reference_rate_, decisions);

  proto::SessionConfig config = base_config_;
  config.obs = t.sinks;
  config.path_id = t.path;
  if (policy_.supervision.attempt_deadline > 0.0) {
    config.max_sim_time = policy_.supervision.attempt_deadline;
  }
  t.session = std::make_unique<proto::TransferSession>(
      sim_, env, job.dataset, std::move(op.plan), config);
  t.controller = std::move(op.controller);
  t.session->set_fault_plan(multipath() ? faults_.for_path(t.path) : faults_);
  if (t.journal) {
    std::string err;
    if (!t.session->resume_from(*t.journal, &err)) {
      fail(t, "resume failed: " + err);
      return;
    }
  }
  if (auto bad = t.session->begin(t.controller.get())) {
    fail(t, std::move(*bad));
    return;
  }
  t.attempt_started = sim_.now();
  t.attempt_deadline = policy_.supervision.attempt_deadline;
  ++t.out.attempts;
  if (t.out.attempts == 1) t.out.started_at = sim_.now();
  t.state = Tenant::State::kRunning;
  running_.push_back(&t);
  const Watts peak = multipath() ? path_session_peak_[t.path] : session_peak_;
  running_peak_sum_ += peak;
  if (multipath()) path_running_peak_[t.path] += peak;
  report_.peak_power_bound = std::max(report_.peak_power_bound, running_peak_sum_);
  report_.max_concurrent_observed =
      std::max(report_.max_concurrent_observed, static_cast<int>(running_.size()));
  if (t.journal) {
    record(t, RecoveryAction::kResume, t.journal->taken_at,
           "resuming from the checkpoint journal (" +
               std::to_string(t.journal->completed.size()) + " files landed)");
  }
  decide(t, obs::DecisionKind::kSchedulerDispatch,
         "dispatch " + t.out.name + " (attempt " + std::to_string(t.out.attempts) + ")",
         std::to_string(running_.size()) + " running, peak bound " +
             std::to_string(running_peak_sum_) + " W");
}

void Scheduler::preempt(Tenant& t) {
  proto::RunResult res = t.session->finalize(false, sim_.now());
  t.out.result = std::move(res);
  t.journal = t.out.result.checkpoint;
  t.session.reset();
  t.controller.reset();
  running_.erase(std::find(running_.begin(), running_.end(), &t));
  release_capacity(t);
  ++t.out.preemptions;
  ++report_.preemptions;
  record(t, RecoveryAction::kPreempt, sim_.now(),
         "checkpointed to free capacity for an interactive tenant (" +
             std::to_string(t.out.result.goodput_bytes()) + " B landed)");
  enqueue(t);  // scavenger rank puts it behind all foreground work
}

void Scheduler::abort_attempt(Tenant& t, Seconds end_raw) {
  proto::RunResult res = t.session->finalize(false, end_raw);
  t.out.result = std::move(res);
  t.journal = t.out.result.checkpoint;
  t.session.reset();
  t.controller.reset();
  running_.erase(std::find(running_.begin(), running_.end(), &t));
  release_capacity(t);
  ++t.deadline_aborts;
  ++watchdog_aborts_;
  if (flightrec_ != nullptr) {
    flightrec_->trigger("watchdog abort: " + t.out.name, sim_.now());
  }
  if (multipath()) {
    // A watchdog abort is evidence against the path the leg ran on; the
    // demerit decays with sim-time, so one flap does not exile a site.
    health_->observe_fault(t.path, sim_.now());
  }
  record(t, RecoveryAction::kDeadlineAbort, sim_.now(),
         "attempt hit its " + std::to_string(t.attempt_deadline) +
             " s deadline; checkpoint taken");
  if (t.deadline_aborts >= policy_.supervision.max_attempts) {
    fail(t, "retry budget (" + std::to_string(policy_.supervision.max_attempts) +
                " attempts) spent");
    return;
  }
  if (!t.journal) {
    fail(t, "aborted run left no checkpoint");
    return;
  }
  if (const auto step = t.ladder.on_abort(policy_.supervision)) {
    record(t, *step, sim_.now(),
           *step == RecoveryAction::kReduceChannels
               ? "stepping down to " + std::to_string(t.ladder.channels) + " channels"
               : "channel floor reached; falling back to the minimum-energy plan");
  }
  // An aborted job keeps its place at the head of its class: it has already
  // burned site time and should finish before fresh arrivals of equal rank.
  t.state = Tenant::State::kQueued;
  const int rank = class_rank(t.out.sla_class);
  auto it = queue_.begin();
  while (it != queue_.end() && class_rank((*it)->out.sla_class) < rank) ++it;
  queue_.insert(it, &t);
}

void Scheduler::complete(Tenant& t) {
  Seconds end_raw = sim_.now();
  if (t.attempt_deadline > 0.0) {
    // Same clamp as the single-session run loop: ticker float error must not
    // push a finish past the watchdog deadline it was admitted under.
    end_raw = std::min(end_raw, t.attempt_started + t.attempt_deadline);
  }
  t.out.result = t.session->finalize(true, end_raw);
  t.session.reset();
  t.controller.reset();
  running_.erase(std::find(running_.begin(), running_.end(), &t));
  release_capacity(t);
  t.out.finished_at = sim_.now();
  ++report_.completed;
  if (t.spec.job.policy == JobPolicy::kSla) {
    const BitsPerSecond target = reference_rate_ * t.spec.job.sla_percent / 100.0;
    t.out.sla_met = t.out.result.avg_throughput() >= target * 0.93;
  } else {
    t.out.sla_met = true;
  }
  decide(t, obs::DecisionKind::kSchedulerDone, "done " + t.out.name,
         "completed in " + std::to_string(t.out.attempts) + " attempt(s), " +
             std::to_string(t.out.preemptions) + " preemption(s)");
  retire(t);
}

void Scheduler::fail(Tenant& t, std::string reason) {
  t.out.failed = true;
  t.out.sla_met = false;
  t.out.finished_at = sim_.now();
  ++report_.failed;
  record(t, RecoveryAction::kGiveUp, sim_.now(), reason);
  decide(t, obs::DecisionKind::kSchedulerDone, "failed " + t.out.name,
         std::move(reason));
  retire(t);
}

void Scheduler::retire(Tenant& t) {
  t.state = Tenant::State::kDone;
  if (t.out.finished_at <= 0.0) t.out.finished_at = sim_.now();
  --unfinished_;
  if (t.sinks != nullptr && t.sinks->metrics != nullptr) {
    auto& m = *t.sinks->metrics;
    const std::string prefix = "tenant." + t.out.name + ".";
    m.counter(prefix + "attempts").add(static_cast<std::uint64_t>(t.out.attempts));
    if (t.out.preemptions > 0) {
      m.counter(prefix + "preemptions")
          .add(static_cast<std::uint64_t>(t.out.preemptions));
    }
    if (t.out.deferrals > 0) {
      m.counter(prefix + "deferrals").add(static_cast<std::uint64_t>(t.out.deferrals));
    }
    if (t.out.migrations > 0) {
      m.counter(prefix + "migrations").add(static_cast<std::uint64_t>(t.out.migrations));
    }
    const char* fate = t.out.rejected ? "rejected" : t.out.failed ? "failed" : "completed";
    m.counter(prefix + fate).add(1);
  }
}

bool Scheduler::master_tick() {
  if (sim_.now() > policy_.horizon) return false;

  // Watchdogs first, mirroring the single-session guard: a leg whose local
  // clock has passed its deadline is aborted before this tick's work.
  if (policy_.supervision.attempt_deadline > 0.0 && !running_.empty()) {
    overdue_.clear();
    for (Tenant* t : running_) {
      if (sim_.now() - t->attempt_started > t->attempt_deadline) overdue_.push_back(t);
    }
    for (Tenant* t : overdue_) {
      abort_attempt(*t, t->attempt_started + t->attempt_deadline);
    }
    if (!overdue_.empty()) try_dispatch();
  }

  if (!running_.empty() && multipath()) {
    master_tick_multipath();
  } else if (!running_.empty()) {
    const std::size_t n_run = running_.size();
    TickPool* pool = tick_pool();
    PhaseTimer timer(profiler_);

    // Phase 1 (parallel-safe): per-session prepare + demand collection +
    // group collapse. Each tenant touches only its own session state and its
    // own single-writer obs slot, so sharding cannot reorder anything a
    // tenant observes — the joint round below reads the results in
    // admission order regardless of which worker produced them.
    run_phase(pool, n_run, [&](std::size_t i) {
      Tenant& t = *running_[i];
      t.tick_index = i;
      t.session->tick_prepare();
      t.session->collect_link_demands();
      (void)t.session->link_demand_groups();
    });
    timer.lap(obs::TickProfiler::kPrepare);

    // The shared path: site-level brownouts scale it for everyone, and a
    // per-session fault brownout is a property of the path too — the most
    // degraded view wins. With one tenant and no site events this is exactly
    // the session's own `bandwidth * path_factor`.
    double min_path = running_.front()->session->path_factor();
    for (const Tenant* t : running_) {
      min_path = std::min(min_path, t->session->path_factor());
    }
    const BitsPerSecond capacity =
        testbed_.env.path.available_bandwidth() * link_factor_ * min_path;

    // Phase 2 (serial): ONE joint fair-share round over every tenant's
    // demands, submitted in admission order — the order, not the worker
    // schedule, is what the allocation depends on.
    arbiter_.begin_round(capacity);
    // Grouped submission: each tenant's demand list is run-length collapsed,
    // which the arbiter expands back verbatim — the joint round is bitwise
    // the same as per-flow submit(), and fleets of same-shape tenants let
    // the waterfill path solve at group cost.
    for (Tenant* t : running_) {
      arbiter_.submit_groups(t->session->cached_link_demand_groups());
    }
    arbiter_.allocate();

    double agg_demand = 0.0;
    int agg_streams = 0;
    for (const Tenant* t : running_) {
      agg_demand += t->session->aggregate_demand();
      agg_streams += t->session->aggregate_streams();
    }
    const double eff = net::congestion_efficiency(testbed_.env.congestion, agg_demand,
                                                  capacity, agg_streams);
    double total_avg = 0.0;
    for (std::size_t i = 0; i < running_.size(); ++i) {
      for (const BitsPerSecond a : arbiter_.slice(i)) total_avg += a * eff;
    }
    const double burst_cap =
        total_avg > 0.0 ? std::max(1.0, capacity / total_avg) : 1.0;
    tick_alloc_.clear();
    tick_slices_.resize(n_run);
    stage_allocations(running_, eff, burst_cap);
    timer.lap(obs::TickProfiler::kArbiter);

    // Phase 3a (parallel-safe): rate application and byte/energy compute.
    // Rates, channel movement and the energy ledgers are pure per-session
    // math over the staged slice (the per-session jitter RNG included), so
    // tenants shard freely.
    run_phase(pool, n_run, [&](std::size_t i) {
      const StagedSlice& staged = tick_slices_[i];
      proto::TransferSession& s = *running_[i]->session;
      s.apply_link_allocation(
          std::span<const BitsPerSecond>(tick_alloc_.data() + staged.offset,
                                         staged.count),
          staged.eff, staged.burst_cap);
      s.advance_compute();
    });
    timer.lap(obs::TickProfiler::kApply);

    // Phase 3b (serial commit, admission order): everything that touches the
    // shared simulation or cross-tenant books — checkpoint emission, obs,
    // sampling/controller callbacks, the power sum (kept in admission order
    // so the floating-point reduction is bitwise the sequential one), and
    // completion collection.
    finished_.clear();
    Watts measured = 0.0;
    for (Tenant* t : running_) {
      const bool more = t->session->advance_commit();
      measured += t->session->last_tick_power();
      if (!more) finished_.push_back(t);
    }
    report_.peak_power = std::max(report_.peak_power, measured);
    const bool cap_exceeded =
        policy_.power_cap > 0.0 && measured > policy_.power_cap * (1.0 + 1e-9);
    if (cap_exceeded) ++report_.power_cap_violations;
    if (!running_.empty() && collector_ != nullptr) {
      collector_->metrics().gauge("scheduler.peak_power_w").set_max(measured);
    }
    flight_note(measured);
    if (cap_exceeded && flightrec_ != nullptr) {
      flightrec_->trigger("site power cap measured above bound", sim_.now());
    }
    sample_telemetry(measured);
    for (Tenant* t : finished_) complete(*t);
    timer.lap(obs::TickProfiler::kCommit);
  }

  try_dispatch();
  emit_sched_tracks();
  // Incremental trace export: drain the streamed buffer every master tick so
  // a week-long schedule never hits the buffer cap. Cheap when empty.
  if (stream_ != nullptr) stream_->flush();
  return unfinished_ > 0;
}

void Scheduler::master_tick_multipath() {
  // The multipath tick: each path is its own link, so each gets its own
  // joint fair-share round over the tenants placed there. Phases 1 and 3
  // still run over `running_` in admission order — only the arbitration in
  // phase 2 is grouped — so a PathSet with one option reproduces the
  // single-path tick exactly.
  const int n = static_cast<int>(path_envs_.size());
  const std::size_t n_run = running_.size();
  TickPool* pool = tick_pool();
  PhaseTimer timer(profiler_);

  // Phase 1 (parallel-safe): per-session prepare + demand collection +
  // group collapse, exactly as in the single-path tick.
  run_phase(pool, n_run, [&](std::size_t i) {
    Tenant& t = *running_[i];
    t.tick_index = i;
    t.session->tick_prepare();
    t.session->collect_link_demands();
    (void)t.session->link_demand_groups();
  });
  timer.lap(obs::TickProfiler::kPrepare);

  // Phase 2 (serial): one fair-share round per path. -1 marks paths with no
  // running tenants this tick: they carry no goodput signal (an idle path is
  // not an unhealthy path) and are skipped by the health feed below. The
  // arbiter is reused round by round, so each round's slices are staged
  // before the next begin_round invalidates them — which is also what lets
  // the rate application run sharded after the loop.
  path_capacity_.assign(n, -1.0);
  tick_alloc_.clear();
  tick_slices_.resize(n_run);
  for (int p = 0; p < n; ++p) {
    path_group_.clear();
    for (Tenant* t : running_) {
      if (t->path == p) path_group_.push_back(t);
    }
    if (path_group_.empty()) continue;
    double min_path = path_group_.front()->session->path_factor();
    for (const Tenant* t : path_group_) {
      min_path = std::min(min_path, t->session->path_factor());
    }
    const BitsPerSecond capacity =
        path_envs_[p].path.available_bandwidth() * path_link_factor_[p] * min_path;
    path_capacity_[p] = capacity;

    arbiter_.begin_round(capacity);
    for (Tenant* t : path_group_) {
      arbiter_.submit_groups(t->session->cached_link_demand_groups());
    }
    arbiter_.allocate();

    double agg_demand = 0.0;
    int agg_streams = 0;
    for (const Tenant* t : path_group_) {
      agg_demand += t->session->aggregate_demand();
      agg_streams += t->session->aggregate_streams();
    }
    const double eff = net::congestion_efficiency(path_envs_[p].congestion,
                                                  agg_demand, capacity, agg_streams);
    double total_avg = 0.0;
    for (std::size_t i = 0; i < path_group_.size(); ++i) {
      for (const BitsPerSecond a : arbiter_.slice(i)) total_avg += a * eff;
    }
    const double burst_cap =
        total_avg > 0.0 ? std::max(1.0, capacity / total_avg) : 1.0;
    stage_allocations(path_group_, eff, burst_cap);
  }
  timer.lap(obs::TickProfiler::kArbiter);

  // Phase 3a (parallel-safe): rate application + byte/energy compute from
  // the staged slices. Every running tenant is placed on exactly one path,
  // so every slot of tick_slices_ was staged above.
  run_phase(pool, n_run, [&](std::size_t i) {
    const StagedSlice& staged = tick_slices_[i];
    proto::TransferSession& s = *running_[i]->session;
    s.apply_link_allocation(
        std::span<const BitsPerSecond>(tick_alloc_.data() + staged.offset,
                                       staged.count),
        staged.eff, staged.burst_cap);
    s.advance_compute();
  });
  timer.lap(obs::TickProfiler::kApply);

  // Phase 3b (serial commit, admission order): close the power books
  // globally AND per site, and feed the health monitor each path's
  // achieved-vs-offered goodput for the slice.
  finished_.clear();
  Watts measured = 0.0;
  path_measured_.assign(n, 0.0);
  path_bytes_.assign(n, 0.0);
  for (Tenant* t : running_) {
    const bool more = t->session->advance_commit();
    measured += t->session->last_tick_power();
    path_measured_[t->path] += t->session->last_tick_power();
    path_bytes_[t->path] += static_cast<double>(t->session->last_tick_bytes());
    if (!more) finished_.push_back(t);
  }
  report_.peak_power = std::max(report_.peak_power, measured);
  const bool cap_exceeded =
      policy_.power_cap > 0.0 && measured > policy_.power_cap * (1.0 + 1e-9);
  if (cap_exceeded) ++report_.power_cap_violations;
  for (int p = 0; p < n; ++p) {
    const Watts cap = path_cap(p);
    if (cap > 0.0 && path_measured_[p] > cap * (1.0 + 1e-9)) {
      ++report_.power_cap_violations;
    }
  }
  flight_note(measured);
  if (flightrec_ != nullptr) {
    if (cap_exceeded) {
      flightrec_->trigger("site power cap measured above bound", sim_.now());
    }
    for (int p = 0; p < n; ++p) {
      const Watts cap = path_cap(p);
      if (cap > 0.0 && path_measured_[p] > cap * (1.0 + 1e-9)) {
        flightrec_->trigger(
            "per-site power cap measured above bound: " + policy_.paths.option(p).name,
            sim_.now());
      }
    }
  }
  for (int p = 0; p < n; ++p) {
    if (path_capacity_[p] < 0.0) continue;  // no tenants placed here this tick
    // Scored against the path's *nominal* bandwidth, not the browned-out
    // arbitration capacity: a brownout must read as lost goodput, otherwise
    // a path delivering 10% of itself would look perfectly healthy.
    const double expected =
        path_envs_[p].path.available_bandwidth() * base_config_.tick / 8.0;
    const double frac = expected > 0.0 ? path_bytes_[p] / expected : 1.0;
    health_->observe_goodput(p, sim_.now(), std::min(1.0, frac));
  }
  if (collector_ != nullptr) {
    collector_->metrics().gauge("scheduler.peak_power_w").set_max(measured);
    for (int p = 0; p < n; ++p) {
      collector_->metrics()
          .gauge("scheduler.path." + policy_.paths.option(p).name + ".phi")
          .set_max(health_->phi(p));
    }
  }
  if (sched_sinks_ != nullptr && sched_sinks_->trace != nullptr &&
      !path_phi_track_.empty()) {
    for (int p = 0; p < n; ++p) {
      sched_sinks_->trace->counter(sim_.now(), path_phi_track_[p], health_->phi(p));
    }
  }
  sample_telemetry(measured);
  for (Tenant* t : finished_) complete(*t);
  timer.lap(obs::TickProfiler::kCommit);
}

void Scheduler::sample_telemetry(Watts measured) {
  if (telemetry_ == nullptr || !telemetry_->due(sim_.now())) return;
  // Runs in the serial commit section, before completions are retired, and
  // reads only deterministic sim-state — which is the whole determinism
  // argument for the eadt-telemetry-v1 export. Allocation-free: the scratch
  // sample's vectors are pre-sized by the hub.
  obs::TelemetrySample& s = telemetry_->scratch();
  s.running = static_cast<int>(running_.size());
  s.queued = static_cast<int>(queue_.size());
  s.deferred = deferred_;
  int channels = 0;
  for (const Tenant* t : running_) channels += t->session->open_channel_count();
  s.channels = channels;
  s.shed = static_cast<std::uint64_t>(report_.rejected);
  s.preempted = static_cast<std::uint64_t>(report_.preemptions);
  s.migrated = static_cast<std::uint64_t>(report_.migrations);
  s.completed = static_cast<std::uint64_t>(report_.completed);
  s.failed = static_cast<std::uint64_t>(report_.failed);
  s.power_w = measured;
  s.cap_w = policy_.power_cap;
  s.class_running.fill(0);
  s.class_burn.fill(0.0);
  std::array<double, obs::kTelemetryClasses> burn_sum{};
  std::array<int, obs::kTelemetryClasses> burn_n{};
  for (const Tenant* t : running_) {
    const auto c = static_cast<std::size_t>(class_rank(t->out.sla_class));
    ++s.class_running[c];
    if (t->attempt_deadline > 0.0) {
      burn_sum[c] += deadline_burn(t->attempt_started, sim_.now(), t->attempt_deadline);
      ++burn_n[c];
    }
  }
  for (std::size_t c = 0; c < obs::kTelemetryClasses; ++c) {
    if (burn_n[c] > 0) s.class_burn[c] = burn_sum[c] / burn_n[c];
  }
  const std::size_t sites = telemetry_->site_count();
  if (multipath()) {
    const std::size_t m = std::min(sites, path_measured_.size());
    for (std::size_t p = 0; p < m; ++p) {
      s.site_power_w[p] = path_measured_[p];
      s.site_cap_w[p] = path_cap(static_cast<int>(p));
      s.site_phi[p] = health_->phi(static_cast<int>(p));
    }
  } else if (sites >= 1) {
    s.site_power_w[0] = measured;
    s.site_cap_w[0] = policy_.power_cap;
    s.site_phi[0] = 0.0;
  }
  telemetry_->record(sim_.now());
}

void Scheduler::flight_note(Watts measured) {
  if (flightrec_ == nullptr) return;
  obs::FlightTick ft;
  ft.t = sim_.now();
  ft.running = static_cast<int>(running_.size());
  ft.queued = static_cast<int>(queue_.size());
  ft.deferred = deferred_;
  ft.power_w = measured;
  ft.cap_w = policy_.power_cap;
  ft.watchdog_aborts = watchdog_aborts_;
  ft.cap_violations = static_cast<std::uint64_t>(report_.power_cap_violations);
  flightrec_->note(ft);
}

void Scheduler::emit_sched_tracks() {
  if (sched_sinks_ == nullptr || sched_sinks_->trace == nullptr ||
      sched_running_track_ == nullptr) {
    return;
  }
  // Change-gated: a 200k-tick fleet run emits a point only when the fleet
  // state moved, which keeps long traces bounded by events, not by ticks.
  const int running = static_cast<int>(running_.size());
  const int queued = static_cast<int>(queue_.size());
  const int shed = report_.rejected;
  if (running == last_track_running_ && queued == last_track_queued_ &&
      shed == last_track_shed_) {
    return;
  }
  last_track_running_ = running;
  last_track_queued_ = queued;
  last_track_shed_ = shed;
  sched_sinks_->trace->counter(sim_.now(), sched_running_track_, running);
  sched_sinks_->trace->counter(sim_.now(), sched_queued_track_, queued);
  sched_sinks_->trace->counter(sim_.now(), sched_shed_track_, shed);
}

SchedulerReport Scheduler::run(std::vector<SchedulerJob> jobs) {
  report_ = {};
  session_peak_ = session_peak_power_bound(testbed_.env);
  // The tick pool lives for the whole schedule: workers park between phases
  // (and between ticks), so a dispatch is a notify, not a thread spawn.
  if (policy_.jobs > 1) pool_ = std::make_unique<TickPool>(policy_.jobs);
  if (multipath()) {
    const int n = static_cast<int>(policy_.paths.size());
    path_envs_.clear();
    path_envs_.reserve(n);  // stable from here on: sessions hold references
    path_session_peak_.clear();
    for (const auto& option : policy_.paths.options()) {
      path_envs_.push_back(environment_for_path(testbed_.env, option));
      path_session_peak_.push_back(session_peak_power_bound(path_envs_.back()));
    }
    path_running_peak_.assign(n, 0.0);
    path_link_factor_.assign(n, 1.0);
    health_ = std::make_unique<HealthMonitor>(n, policy_.health);
  }
  tenants_.clear();
  tenants_.reserve(jobs.size());
  unfinished_ = static_cast<int>(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto t = std::make_unique<Tenant>();
    t->index = i;
    t->spec = std::move(jobs[i]);
    t->ladder = LadderState{t->spec.job.policy, std::max(1, t->spec.job.max_channels)};
    t->out.name = t->spec.job.name;
    t->out.policy = t->spec.job.policy;
    t->out.sla_class = sla_class_of(t->spec.job.policy);
    t->out.submitted_at = t->spec.submit_at;
    if (collector_ != nullptr) {
      t->sinks = collector_->slot(slot_base_ + i, t->spec.job.name);
    } else {
      t->sinks = base_config_.obs;
    }
    tenants_.push_back(std::move(t));
  }
  if (collector_ != nullptr) {
    // Scheduler-level slot, placed after the per-tenant slots. Fleet-level
    // counter tracks (running/queued/shed) land here so a trace is readable
    // without per-tenant drilldown; multipath runs add per-path phi tracks
    // showing the health the placement decisions actually saw.
    sched_sinks_ = collector_->slot(slot_base_ + tenants_.size(), "scheduler");
    path_phi_track_.clear();
    if (sched_sinks_->trace != nullptr) {
      sched_running_track_ = sched_sinks_->trace->intern("sched.running");
      sched_queued_track_ = sched_sinks_->trace->intern("sched.queued");
      sched_shed_track_ = sched_sinks_->trace->intern("sched.shed");
      if (multipath()) {
        for (const auto& option : policy_.paths.options()) {
          path_phi_track_.push_back(
              sched_sinks_->trace->intern("path." + option.name + ".phi"));
        }
      }
    }
  }

  for (const auto& t : tenants_) {
    Tenant* tp = t.get();
    sim_.schedule_at(tp->spec.submit_at, [this, tp] { on_submit(*tp); });
  }
  for (const auto& b : policy_.link_brownouts) {
    if (!multipath()) {
      sim_.schedule_at(b.start, [this, f = b.capacity_factor] {
        link_factor_ = std::max(0.0, f);
      });
      sim_.schedule_at(b.start + b.duration, [this] { link_factor_ = 1.0; });
      continue;
    }
    // Multipath: a brownout hits its target path only (path -1 hits every
    // site). Onset is also a health demerit — the monitor should suspect a
    // browning path before a tick's goodput shortfall confirms it.
    sim_.schedule_at(b.start, [this, b] {
      const double f = std::max(0.0, b.capacity_factor);
      for (int p = 0; p < static_cast<int>(path_link_factor_.size()); ++p) {
        if (b.path != -1 && b.path != p) continue;
        path_link_factor_[p] = f;
        health_->observe_fault(p, sim_.now());
      }
    });
    sim_.schedule_at(b.start + b.duration, [this, b] {
      for (int p = 0; p < static_cast<int>(path_link_factor_.size()); ++p) {
        if (b.path != -1 && b.path != p) continue;
        path_link_factor_[p] = 1.0;
      }
    });
  }
  sim_.add_ticker(base_config_.tick, [this] { return master_tick(); });
  sim_.run_until(policy_.horizon + base_config_.tick);
  if (profiler_ != nullptr && pool_ != nullptr) {
    // Occupancy is wall-clock diagnostics: how evenly the atomic cursor
    // spread tick phases over the pool, read once before the workers join.
    for (int w = 0; w < pool_->jobs(); ++w) {
      profiler_->record_worker_ops(static_cast<std::size_t>(w), pool_->worker_ops(w));
    }
  }
  pool_.reset();  // join the workers before the single-threaded close-out

  // The horizon: anything still in flight is closed out honestly.
  for (const auto& tp : tenants_) {
    Tenant& t = *tp;
    switch (t.state) {
      case Tenant::State::kRunning: {
        t.out.result = t.session->finalize(false, sim_.now());
        t.session.reset();
        t.controller.reset();
        running_.erase(std::find(running_.begin(), running_.end(), &t));
        release_capacity(t);
        fail(t, "still running at the scheduler horizon");
        break;
      }
      case Tenant::State::kDeferred:
        --deferred_;
        [[fallthrough]];
      case Tenant::State::kQueued:
        fail(t, "horizon reached while waiting for capacity");
        break;
      case Tenant::State::kPending:
      case Tenant::State::kDone:
        break;
    }
  }
  queue_.clear();

  for (const auto& tp : tenants_) {
    Tenant& t = *tp;
    if (t.state != Tenant::State::kDone) continue;  // never submitted
    report_.total_bytes += t.out.result.bytes;
    report_.total_energy += t.out.result.end_system_energy;
    if (tariff_ && t.out.attempts > 0 && t.out.finished_at > t.out.started_at) {
      t.out.cost_usd = tariff_->cost(t.out.result.end_system_energy,
                                     tariff_start_ + t.out.started_at,
                                     t.out.finished_at - t.out.started_at);
      report_.total_cost_usd += t.out.cost_usd;
    }
    report_.makespan = std::max(report_.makespan, t.out.finished_at);
    SlaClassStats& cls = t.out.sla_class == SlaClass::kInteractive ? report_.interactive
                         : t.out.sla_class == SlaClass::kStandard  ? report_.standard
                                                                   : report_.scavenger;
    ++cls.submitted;
    if (t.out.rejected) {
      ++cls.rejected;
    } else if (t.out.failed) {
      ++cls.failed;
    } else {
      ++cls.completed;
      cls.sla_met += t.out.sla_met ? 1 : 0;
    }
    report_.jobs.push_back(std::move(t.out));
  }
  if (flightrec_ != nullptr && !report_.accounting_consistent()) {
    flightrec_->trigger("accounting invariant violated", sim_.now());
  }
  if (stream_ != nullptr) stream_->finish();
  return report_;
}

}  // namespace eadt::exp
