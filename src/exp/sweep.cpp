#include "exp/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "exp/tick_pool.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "util/json.hpp"

namespace eadt::exp {

namespace {

/// splitmix64 finalizer: avalanches the base seed so that consecutive user
/// seeds (1, 2, 3...) land far apart before they meet the coordinate hash.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

const char* task_algorithm_name(const SweepTask& task) noexcept {
  return task.kind == SweepTask::Kind::kSla ? "SLAEE" : to_string(task.algorithm);
}

}  // namespace

std::uint64_t derive_task_seed(std::string_view algorithm, std::string_view testbed,
                               int concurrency, std::uint64_t base_seed) noexcept {
  // Coordinates are joined with an unambiguous separator so ("a","bc") and
  // ("ab","c") hash differently, then the avalanched base seed is folded in.
  std::string key;
  key.reserve(algorithm.size() + testbed.size() + 16);
  key.append(algorithm).push_back('\x1f');
  key.append(testbed).push_back('\x1f');
  key.append(std::to_string(concurrency));
  std::uint64_t h = fnv1a64(key) ^ mix64(base_seed);
  h = mix64(h);
  return h != 0 ? h : 0x9e3779b97f4a7c15ULL;  // keep the seed usable for Rng
}

int resolve_jobs(int requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("EADT_JOBS"); env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void SweepRunner::parallel_indexed(int jobs, std::size_t count,
                                   const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(jobs, 1)), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // One transient pool per call: sweep cells run for seconds, so the spawn
  // cost is noise here — the pool exists so the scheduler's tick pipeline
  // (which dispatches thousands of times per run) shares this exact fan-out
  // and its tests.
  TickPool pool(static_cast<int>(workers));
  pool.run(count, [](void* ctx, std::size_t i) {
    (*static_cast<const std::function<void(std::size_t)>*>(ctx))(i);
  }, const_cast<std::function<void(std::size_t)>*>(&fn));
}

namespace {

SweepTaskResult execute_task(const SweepTask& task, std::size_t index) {
  SweepTaskResult out;
  out.index = index;
  out.kind = task.kind;
  out.testbed = task.testbed.env.name;
  out.derived_seed = derive_task_seed(task_algorithm_name(task), task.testbed.env.name,
                                      task.concurrency, task.seed);

  // The task's private copies: the derived seed re-keys every stochastic
  // element, so two grid points never share a jitter or fault stream.
  testbeds::Testbed testbed = task.testbed;
  proto::FaultPlan faults = task.faults;
  if (task.seed != 0) {
    testbed.env.jitter_seed = out.derived_seed;
    if (faults.active()) faults.seed = mix64(out.derived_seed);
  }

  proto::SessionConfig config = task.config;
  if (task.obs != nullptr) {
    // The slot label is a pure function of the task's coordinates, so merged
    // exports name every process identically regardless of worker count.
    const std::size_t slot =
        task.obs_slot == SweepTask::kAutoSlot ? index : task.obs_slot;
    char suffix[48];
    if (task.kind == SweepTask::Kind::kSla) {
      std::snprintf(suffix, sizeof suffix, " target=%g%%", task.target_percent);
    } else {
      std::snprintf(suffix, sizeof suffix, " cc=%d", task.concurrency);
    }
    std::string label = "#";
    label += std::to_string(slot);
    label += ' ';
    label += task_algorithm_name(task);
    label += ' ';
    label += task.testbed.env.name;
    label += suffix;
    config.obs = task.obs->slot(slot, std::move(label));
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (task.kind == SweepTask::Kind::kRun) {
    out.run = run_algorithm(task.algorithm, testbed, task.dataset, task.concurrency,
                            config, std::move(faults), task.checkpoints);
  } else {
    out.sla = run_slaee(testbed, task.dataset, task.target_percent, task.max_throughput,
                        task.concurrency, config, std::move(faults),
                        task.checkpoints);
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

}  // namespace

std::vector<SweepTaskResult> SweepRunner::run(const std::vector<SweepTask>& tasks) const {
  std::vector<SweepTaskResult> results(tasks.size());
  parallel_indexed(jobs_, tasks.size(),
                   [&](std::size_t i) { results[i] = execute_task(tasks[i], i); });
  return results;
}

// --- payload / JSON serialization ------------------------------------------

namespace {

/// C99 hex-float: bit-exact and locale-independent, the same trick the
/// checkpoint journal uses.
std::string hexf(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

void payload_result_fields(std::ostream& os, const proto::RunResult& r) {
  os << " completed=" << (r.completed ? 1 : 0) << " duration=" << hexf(r.duration)
     << " bytes=" << r.bytes << " goodput=" << r.goodput_bytes()
     << " end_j=" << hexf(r.end_system_energy) << " net_j=" << hexf(r.network_energy)
     << " final_cc=" << r.final_concurrency << " samples=" << r.samples.size()
     << " retries=" << r.faults.retries << " drops=" << r.faults.channel_drops
     << " wasted=" << r.faults.wasted_bytes;
  const auto& c = r.sim_counters;
  os << " sched=" << c.scheduled << " fired=" << c.fired << " cancelled=" << c.cancelled
     << " ticks=" << c.ticks << " peakq=" << c.peak_queue;
}

}  // namespace

std::string sweep_payload(const std::vector<SweepTaskResult>& results) {
  std::ostringstream os;
  for (const auto& t : results) {
    os << t.index << ' '
       << (t.kind == SweepTask::Kind::kRun ? to_string(t.run.algorithm) : "SLAEE")
       << " tb=" << t.testbed << " seed=" << t.derived_seed;
    if (t.kind == SweepTask::Kind::kRun) {
      os << " cc=" << t.run.concurrency << " chosen=" << t.run.chosen_concurrency;
    } else {
      os << " target%=" << hexf(t.sla.target_percent)
         << " target_bps=" << hexf(t.sla.target_throughput)
         << " final_cc=" << t.sla.final_concurrency
         << " rearranged=" << (t.sla.rearranged ? 1 : 0);
    }
    payload_result_fields(os, t.result());
    os << '\n';
  }
  return os.str();
}

std::string bench_commit_stamp() {
  if (const char* env = std::getenv("EADT_COMMIT"); env != nullptr && *env != '\0') {
    return env;
  }
#ifdef EADT_GIT_COMMIT
  return EADT_GIT_COMMIT;
#else
  return "unknown";
#endif
}

namespace {

/// Round-trip-exact decimal (17 significant digits): equal doubles always
/// print identically, so the JSON payload inherits the engine's determinism.
std::string jnum(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

void json_task(std::ostream& os, const SweepTaskResult& t) {
  const auto& r = t.result();
  os << "    {\"index\":" << t.index << ",\"kind\":\""
     << (t.kind == SweepTask::Kind::kRun ? "run" : "sla") << "\",\"algorithm\":\""
     << (t.kind == SweepTask::Kind::kRun ? to_string(t.run.algorithm) : "SLAEE")
     << "\",\"testbed\":";
  write_json_string(os, t.testbed);
  os << ",\"concurrency\":"
     << (t.kind == SweepTask::Kind::kRun ? t.run.concurrency : t.sla.final_concurrency)
     << ",\"derived_seed\":" << t.derived_seed;
  if (t.kind == SweepTask::Kind::kRun) {
    os << ",\"chosen_concurrency\":" << t.run.chosen_concurrency;
  } else {
    os << ",\"target_percent\":" << jnum(t.sla.target_percent)
       << ",\"target_mbps\":" << jnum(to_mbps(t.sla.target_throughput))
       << ",\"deviation_percent\":" << jnum(t.sla.deviation_percent())
       << ",\"rearranged\":" << (t.sla.rearranged ? "true" : "false");
  }
  os << ",\"result\":{\"completed\":" << (r.completed ? "true" : "false")
     << ",\"duration_s\":" << jnum(r.duration) << ",\"bytes\":" << r.bytes
     << ",\"goodput_bytes\":" << r.goodput_bytes()
     << ",\"throughput_mbps\":" << jnum(to_mbps(r.avg_throughput()))
     << ",\"energy_j\":" << jnum(r.end_system_energy)
     << ",\"network_j\":" << jnum(r.network_energy)
     << ",\"ratio\":" << jnum(r.throughput_per_joule())
     << ",\"final_concurrency\":" << r.final_concurrency
     << ",\"retries\":" << r.faults.retries
     << ",\"wasted_bytes\":" << r.faults.wasted_bytes << "}";
  const auto& c = r.sim_counters;
  os << ",\"sim\":{\"scheduled\":" << c.scheduled << ",\"fired\":" << c.fired
     << ",\"cancelled\":" << c.cancelled << ",\"ticks\":" << c.ticks
     << ",\"peak_queue\":" << c.peak_queue << "}"
     << ",\"wall_ms\":" << jnum(t.wall_ms) << "}";
}

}  // namespace

void write_bench_json(std::ostream& os, const BenchRecord& record) {
  os << "{\n  \"schema\": \"eadt-bench-v1\",\n  \"name\": ";
  write_json_string(os, record.name);
  os << ",\n  \"commit\": ";
  write_json_string(os, record.commit);
  os << ",\n  \"jobs\": " << record.jobs << ",\n  \"scale\": " << record.scale
     << ",\n  \"total_wall_ms\": " << jnum(record.total_wall_ms)
     << ",\n  \"tasks\": [\n";
  for (std::size_t i = 0; i < record.tasks.size(); ++i) {
    json_task(os, record.tasks[i]);
    os << (i + 1 < record.tasks.size() ? ",\n" : "\n");
  }
  os << "  ]";
  if (!record.micro.empty()) {
    os << ",\n  \"micro\": [\n";
    for (std::size_t i = 0; i < record.micro.size(); ++i) {
      const MicroSample& m = record.micro[i];
      os << "    {\"name\":";
      write_json_string(os, m.name);
      os << ",\"ops\":" << m.ops << ",\"wall_ms\":" << jnum(m.wall_ms)
         << ",\"ops_per_sec\":" << jnum(m.ops_per_sec)
         << ",\"baseline_ops_per_sec\":" << jnum(m.baseline_ops_per_sec)
         << ",\"speedup\":" << jnum(m.speedup) << "}";
      os << (i + 1 < record.micro.size() ? ",\n" : "\n");
    }
    os << "  ]";
  }
  if (!record.service.empty()) {
    os << ",\n  \"service\": [\n";
    for (std::size_t i = 0; i < record.service.size(); ++i) {
      const ServiceScenarioRecord& s = record.service[i];
      os << "    {\"name\":";
      write_json_string(os, s.name);
      os << ",\"submitted\":" << s.submitted << ",\"accepted\":" << s.accepted
         << ",\"rejected\":" << s.rejected << ",\"completed\":" << s.completed
         << ",\"failed\":" << s.failed << ",\"preemptions\":" << s.preemptions
         << ",\"deferrals\":" << s.deferrals
         << ",\"max_concurrent\":" << s.max_concurrent
         << ",\"power_cap_violations\":" << s.power_cap_violations
         << ",\"sla_interactive_met\":" << s.sla_interactive_met
         << ",\"sla_interactive_completed\":" << s.sla_interactive_completed
         << ",\"makespan_s\":" << jnum(s.makespan_s) << ",\"bytes\":" << s.bytes
         << ",\"energy_j\":" << jnum(s.energy_j)
         << ",\"cost_usd\":" << jnum(s.cost_usd)
         << ",\"peak_power_w\":" << jnum(s.peak_power_w)
         << ",\"peak_power_bound_w\":" << jnum(s.peak_power_bound_w)
         << ",\"power_cap_w\":" << jnum(s.power_cap_w)
         << ",\"wall_ms\":" << jnum(s.wall_ms) << "}";
      os << (i + 1 < record.service.size() ? ",\n" : "\n");
    }
    os << "  ]";
  }
  if (!record.failover.empty()) {
    os << ",\n  \"failover\": [\n";
    for (std::size_t i = 0; i < record.failover.size(); ++i) {
      const FailoverScenarioRecord& f = record.failover[i];
      os << "    {\"name\":";
      write_json_string(os, f.name);
      os << ",\"jobs\":" << f.jobs << ",\"completed\":" << f.completed
         << ",\"failed\":" << f.failed << ",\"attempts\":" << f.attempts
         << ",\"migrations\":" << f.migrations
         << ",\"hedge_legs\":" << f.hedge_legs
         << ",\"power_cap_violations\":" << f.power_cap_violations
         << ",\"makespan_s\":" << jnum(f.makespan_s) << ",\"bytes\":" << f.bytes
         << ",\"energy_j\":" << jnum(f.energy_j)
         << ",\"hedge_energy_j\":" << jnum(f.hedge_energy_j)
         << ",\"wall_ms\":" << jnum(f.wall_ms) << "}";
      os << (i + 1 < record.failover.size() ? ",\n" : "\n");
    }
    os << "  ]";
  }
  if (record.telemetry != nullptr) {
    os << ",\n  \"telemetry\": ";
    record.telemetry->write_json(os, 2);
  }
  if (record.flightrec != nullptr && record.flightrec->triggers() > 0) {
    os << ",\n  \"flightrec\": ";
    record.flightrec->write_json(os, 2);
  }
  if (!record.metrics.empty()) {
    os << ",\n  \"metrics\": ";
    obs::write_metrics_object(os, record.metrics, 2);
  }
  os << "\n}\n";
}

}  // namespace eadt::exp
