// TickRecorder: collects a session's tick-level trace and exports it as CSV
// (time, goodput, power, channel count, per-chunk busy counts) — the raw
// material behind the debugging narratives in docs/MODEL.md.
#pragma once

#include <iosfwd>
#include <vector>

#include "proto/observer.hpp"

namespace eadt::exp {

class TickRecorder final : public proto::SessionObserver {
 public:
  /// Record every `stride`-th tick (1 = all; 10 with the default 100 ms tick
  /// records once per second).
  explicit TickRecorder(int stride = 1) : stride_(stride < 1 ? 1 : stride) {}

  void on_tick(const proto::TickTrace& trace) override;

  [[nodiscard]] const std::vector<proto::TickTrace>& traces() const noexcept {
    return traces_;
  }
  [[nodiscard]] std::size_t ticks_seen() const noexcept { return seen_; }

  /// time_s,goodput_mbps,power_w,open_channels,busy_channels,down_channels,path_factor
  void write_csv(std::ostream& os) const;

 private:
  int stride_;
  std::size_t seen_ = 0;
  std::vector<proto::TickTrace> traces_;
};

}  // namespace eadt::exp
