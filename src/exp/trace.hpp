// TickRecorder: collects a session's tick-level trace and exports it as CSV
// (time, goodput, power, channel count, per-chunk busy counts) — the raw
// material behind the debugging narratives in docs/MODEL.md.
#pragma once

#include <iosfwd>
#include <vector>

#include "proto/observer.hpp"

namespace eadt::exp {

class TickRecorder final : public proto::SessionObserver {
 public:
  /// Record the first tick and every `stride`-th after it (1 = all). With
  /// SessionConfig's default 100 ms tick, stride 10 records once per second —
  /// write_csv() prints the stride and the tick length it actually measured,
  /// so an exported CSV documents its own sampling period.
  explicit TickRecorder(int stride = 1) : stride_(stride < 1 ? 1 : stride) {}

  void on_tick(const proto::TickTrace& trace) override;

  [[nodiscard]] const std::vector<proto::TickTrace>& traces() const noexcept {
    return traces_;
  }
  [[nodiscard]] std::size_t ticks_seen() const noexcept { return seen_; }

  [[nodiscard]] int stride() const noexcept { return stride_; }

  /// Engine tick length inferred from the first two recorded rows (their
  /// spacing is stride ticks). 0 when fewer than two rows were recorded.
  [[nodiscard]] Seconds measured_tick() const noexcept;

  /// `#`-comment header lines (stride, tick length, sampling period), then
  /// time_s,goodput_mbps,power_w,open_channels,busy_channels,down_channels,path_factor
  void write_csv(std::ostream& os) const;

 private:
  int stride_;
  std::size_t seen_ = 0;
  std::vector<proto::TickTrace> traces_;
};

}  // namespace eadt::exp
