#include "exp/health.hpp"

#include <algorithm>
#include <cmath>

namespace eadt::exp {

HealthMonitor::HealthMonitor(int n_paths, HealthMonitorConfig cfg)
    : cfg_(cfg), state_(static_cast<std::size_t>(std::max(0, n_paths))) {}

double HealthMonitor::fault_phi_at(const PathState& s, Seconds at) const {
  if (s.fault_phi <= 0.0) return 0.0;
  const Seconds dt = std::max(0.0, at - s.fault_at);
  if (cfg_.fault_halflife <= 0.0) return 0.0;
  return s.fault_phi * std::exp2(-dt / cfg_.fault_halflife);
}

void HealthMonitor::observe_goodput(int path, Seconds at, double fraction) {
  if (path < 0 || path >= paths()) return;
  auto& s = state_[static_cast<std::size_t>(path)];
  fraction = std::min(1.0, std::max(0.0, fraction));
  s.ewma_fraction += cfg_.ewma_alpha * (fraction - s.ewma_fraction);
  now_ = std::max(now_, at);
}

void HealthMonitor::observe_fault(int path, Seconds at, double weight) {
  if (path < 0 || path >= paths()) return;
  auto& s = state_[static_cast<std::size_t>(path)];
  // Bring the decaying accumulator current, then add the new demerit.
  s.fault_phi = fault_phi_at(s, at) + cfg_.fault_weight * std::max(0.0, weight);
  s.fault_at = std::max(s.fault_at, at);
  now_ = std::max(now_, at);
}

double HealthMonitor::phi(int path) const {
  if (path < 0 || path >= paths()) return cfg_.fail_phi;
  const auto& s = state_[static_cast<std::size_t>(path)];
  const double frac = std::max(cfg_.min_fraction, s.ewma_fraction);
  return -std::log10(frac) + fault_phi_at(s, now_);
}

int HealthMonitor::healthiest(int exclude) const {
  int best = -1;
  double best_phi = 0.0;
  for (int p = 0; p < paths(); ++p) {
    if (p == exclude) continue;
    const double v = phi(p);
    if (best == -1 || v < best_phi) {
      best = p;
      best_phi = v;
    }
  }
  return best;
}

}  // namespace eadt::exp
