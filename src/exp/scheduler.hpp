// Multi-tenant admission control and overload resilience on one simulation.
//
// The TransferService runs jobs back to back: one DTN pair, one transfer at a
// time. A real provider runs many tenants at once — their sessions contend
// for the shared path — and must stay upright when the offered load exceeds
// what the site can carry. The Scheduler is that layer:
//
//   * several proto::TransferSessions co-exist on ONE sim::Simulation; every
//     master tick the scheduler collects each session's link demands and runs
//     a single joint net::fair_share round (net::LinkArbiter), so channels of
//     different tenants contend exactly like channels of one session;
//   * admission control: the waiting queue is bounded; jobs past the bound
//     are shed (rejected) with honest accounting, never silently dropped;
//   * a site-wide power cap: a job is dispatched only when the sum of the
//     running sessions' provable peak draws plus its own fits under the cap,
//     so the measured power can never exceed the cap between ticks;
//   * SLA classes mapped from JobPolicy: interactive (kDeadline, kSla) may
//     preempt, standard (kBalanced, kEnergyBudget) queues, scavenger
//     (kGreen) is preemptible and tariff-deferrable;
//   * preemption reuses the checkpoint journal: a preempted scavenger is
//     checkpointed, finalized, and re-queued; it later *resumes* — landed
//     bytes are never re-paid (same machinery as the Supervisor ladder);
//   * per-tenant deadline watchdogs and the degradation ladder
//     (exp::LadderState) apply to every running session, so the
//     supervised-retry semantics of the sequential service carry over;
//   * a tariff-aware deferral window shifts scavenger starts into the
//     cheapest price band when one is attached.
//
// Determinism: everything is driven by the shared Simulation clock —
// submissions are events, arbitration happens in admission order, and the
// report is bit-reproducible for a fixed (testbed, jobs, policy, faults).
// With a single tenant and no site events the tick pipeline degenerates to
// exactly the single-session engine (same operations, same order), which is
// what keeps the existing goldens byte-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/service.hpp"
#include "exp/supervisor.hpp"
#include "net/fair_share.hpp"
#include "power/tariff.hpp"
#include "proto/faults.hpp"
#include "proto/session.hpp"
#include "sim/simulation.hpp"
#include "testbeds/testbeds.hpp"

namespace eadt::obs {
class ObsCollector;
class StreamingTraceWriter;
class TelemetryHub;
class TickFlightRecorder;
class TickProfiler;
}  // namespace eadt::obs

namespace eadt::exp {

class TickPool;

/// Per-tenant service class, mapped from the job's policy. The class decides
/// how a job behaves under pressure, not which algorithm it runs.
enum class SlaClass {
  kInteractive,  ///< kDeadline / kSla: latency promises; may trigger preemption
  kStandard,     ///< kBalanced / kEnergyBudget: queues, never preempts
  kScavenger,    ///< kGreen: preemptible, tariff-deferrable background work
};

[[nodiscard]] const char* to_string(SlaClass cls) noexcept;
[[nodiscard]] SlaClass sla_class_of(JobPolicy policy) noexcept;

/// One tenant submission: a service job plus its arrival on the shared
/// timeline (simulated seconds from the scheduler's start).
struct SchedulerJob {
  TransferJob job;
  Seconds submit_at = 0.0;
};

struct SchedulerPolicy {
  /// Running sessions allowed at once (the DTN slice count).
  int max_concurrent = 4;
  /// Waiting jobs held (deferred ones included); arrivals past this are shed.
  int max_queue_depth = 16;
  /// Site-wide cap on the summed end-system draw of running sessions, in
  /// watts. 0 = uncapped. Enforced against each session's provable peak at
  /// dispatch time, so the measured sum can never exceed it between ticks.
  Watts power_cap = 0.0;
  /// Per-attempt watchdogs + degradation ladder, as in the sequential
  /// Supervisor. attempt_deadline 0 leaves only the horizon guard.
  SupervisorPolicy supervision;
  /// Longest a scavenger start may be shifted toward the tariff's cheapest
  /// band (simulated seconds). 0 disables deferral.
  Seconds max_defer = 0.0;
  /// Site-level capacity events (maintenance, cross-traffic storms) applied
  /// to the shared link on top of any per-session fault plan: every tenant
  /// sees them, which is what makes a brownout a property of the path.
  std::vector<proto::PathBrownoutEvent> link_brownouts;
  /// Hard stop for the whole schedule; jobs still running are failed.
  Seconds horizon = 7.0 * 24 * 3600;

  // --- Path resilience (appended so positional initializers of the fields
  // above keep compiling). An empty `paths` disables placement entirely: the
  // scheduler is then bit-identical to its single-path self.
  /// Alternate site routes (index 0 = primary). With paths, each tenant is
  /// placed at dispatch on the healthiest path with power headroom, each path
  /// runs its own joint fair-share round per master tick, and a tenant whose
  /// journal was taken on a now-suspect path resumes on a better one
  /// (counted as a migration, not a retry).
  net::PathSet paths;
  /// Health scoring for placement and migration.
  HealthMonitorConfig health;
  /// Per-path (per-site) power caps in watts, index-aligned with `paths`;
  /// a missing or zero entry falls back to `power_cap`. When `power_cap` is
  /// also set it additionally bounds the *sum* across all paths.
  std::vector<Watts> path_power_caps;

  // --- Tick parallelism (appended for the same positional-initializer
  // reason as the path fields above).
  /// Workers for the per-tenant phases of the master tick (exp::TickPool).
  /// <= 1 keeps the tick single-threaded. The report, traces and metrics are
  /// byte-identical at any value — parallel-safe phases run sharded with
  /// per-session state, everything touching the shared Simulation commits
  /// serially in admission order (MODEL.md §16) — so `jobs` is purely a
  /// wall-clock knob. Callers wire exp::resolve_jobs() through here to honor
  /// --jobs / EADT_JOBS.
  int jobs = 1;
};

/// Per-class aggregate accounting.
struct SlaClassStats {
  int submitted = 0;
  int rejected = 0;
  int completed = 0;
  int failed = 0;
  int sla_met = 0;  ///< over completed jobs
};

/// One tenant's fate, in submission order.
struct TenantOutcome {
  std::string name;
  JobPolicy policy = JobPolicy::kBalanced;
  SlaClass sla_class = SlaClass::kStandard;
  Seconds submitted_at = 0.0;
  Seconds started_at = 0.0;    ///< first dispatch (0 if never started)
  Seconds finished_at = 0.0;   ///< completion / failure / rejection time
  bool rejected = false;       ///< shed at admission; never ran
  bool failed = false;
  bool sla_met = true;         ///< kSla scoring as in the Supervisor
  int attempts = 0;            ///< dispatched legs (resumes included)
  int preemptions = 0;
  int deferrals = 0;
  int migrations = 0;          ///< re-dispatches onto a different path than the journal's
  int path = 0;                ///< PathSet index of the final placement (0 = primary)
  /// Cumulative over all legs (a resumed session reports running totals).
  proto::RunResult result;
  RecoveryLog recovery;        ///< every scheduler/ladder decision, in order
  double cost_usd = 0.0;       ///< 0 unless a tariff is attached

  [[nodiscard]] double throughput_mbps() const {
    return to_mbps(result.avg_throughput());
  }
};

struct SchedulerReport {
  std::vector<TenantOutcome> jobs;  ///< submission order
  int submitted = 0;
  int accepted = 0;   ///< submitted - rejected
  int rejected = 0;
  int completed = 0;
  int failed = 0;     ///< accepted jobs that never completed
  int preemptions = 0;
  int deferrals = 0;
  int migrations = 0;  ///< cross-path resumes, counted apart from retries
  Seconds makespan = 0.0;
  Bytes total_bytes = 0;
  Joules total_energy = 0.0;
  double total_cost_usd = 0.0;
  /// Highest summed per-tick end-system draw actually measured.
  Watts peak_power = 0.0;
  /// Highest summed *provable* peak of concurrently running sessions — the
  /// quantity the cap is enforced against; peak_power <= this <= power_cap.
  Watts peak_power_bound = 0.0;
  /// Ticks whose measured sum exceeded the cap. The dispatch rule makes this
  /// impossible; the fuzz battery asserts it stays 0.
  int power_cap_violations = 0;
  int max_concurrent_observed = 0;
  SlaClassStats interactive, standard, scavenger;

  /// accepted == submitted - rejected and completed + failed == accepted
  /// once the run has ended; the fuzz battery asserts this conservation.
  [[nodiscard]] bool accounting_consistent() const noexcept {
    return accepted == submitted - rejected && completed + failed == accepted;
  }
};

/// Canonical text dump of everything deterministic in a SchedulerReport:
/// per-job outcomes with hex-float doubles (bit-exact, locale-independent),
/// every sample window, every recovery event, and the aggregate books. Two
/// runs agree iff their payloads are byte-identical — this is what the
/// parallel-tick determinism tests and bench/service_fleet's bitwise race
/// compare across worker counts.
[[nodiscard]] std::string scheduler_report_payload(const SchedulerReport& report);

/// Provable upper bound on one session's end-system draw: every server of
/// both endpoints at full component utilization, Eq. 2 evaluated at its
/// worst admissible core count. Monotone-safe: the measured per-tick power
/// of any session on this environment is <= this bound.
[[nodiscard]] Watts session_peak_power_bound(const proto::Environment& env);

class Scheduler {
 public:
  /// Takes the testbed by value (like TransferService): tenant sessions hold
  /// references into it for the scheduler's whole lifetime, so a caller-owned
  /// reference would make `Scheduler(make_testbed(), ...)` a dangling-read
  /// trap.
  Scheduler(testbeds::Testbed testbed, BitsPerSecond reference_rate,
            SchedulerPolicy policy, proto::SessionConfig base_config = {});
  ~Scheduler();  // out of line: Tenant is incomplete here

  /// Subject every tenant session to this failure workload (attempt-local
  /// times, like the Supervisor's).
  void set_fault_plan(proto::FaultPlan faults) { faults_ = std::move(faults); }

  /// Attach an electricity tariff; `start_time` is seconds since midnight at
  /// scheduler time 0. Enables scavenger deferral (SchedulerPolicy::max_defer)
  /// and per-job cost accounting.
  void set_tariff(power::Tariff tariff, Seconds start_time = 0.0) {
    tariff_ = std::move(tariff);
    tariff_start_ = start_time;
  }

  /// Per-tenant observability: tenant i publishes into
  /// `collector->slot(slot_base + i, job name)` (trace + decisions per slot,
  /// one shared metrics registry). Null detaches. A bench running several
  /// Scheduler scenarios against one collector must give each a
  /// non-overlapping slot_base — slots are single-writer. The collector must
  /// outlive run().
  void set_collector(obs::ObsCollector* collector, std::size_t slot_base = 0) noexcept {
    collector_ = collector;
    slot_base_ = slot_base;
  }

  /// Stream the trace incrementally: the writer's buffer is drained at the
  /// end of every master tick and finish()ed when run() returns, so a
  /// long-running schedule records indefinitely instead of hitting the
  /// buffer cap at exit-time export. The writer (and its stream) must
  /// outlive run(); null detaches. The streamed JSON is byte-identical to a
  /// one-shot write_chrome_trace() of the same buffer.
  void set_stream(obs::StreamingTraceWriter* stream) noexcept { stream_ = stream; }

  /// Attach the deterministic sim-time sampler. Sampling happens in the
  /// serial commit section of the master tick and reads only deterministic
  /// scheduler state, so the hub's export is byte-identical at any `jobs`.
  /// The hub must outlive run(); null detaches. A hub constructed with
  /// stride 0 is treated as absent (the tick path never touches it).
  void set_telemetry(obs::TelemetryHub* hub) noexcept { telemetry_ = hub; }

  /// Attach the flight recorder: every active master tick is noted into its
  /// ring, and a watchdog abort, a measured site cap excursion, or a broken
  /// accounting invariant freezes the window into a dump. Must outlive
  /// run(); null detaches.
  void set_flight_recorder(obs::TickFlightRecorder* rec) noexcept { flightrec_ = rec; }

  /// Attach the wall-clock tick-pipeline profiler (per-phase latency
  /// histograms + tick-pool worker occupancy). Wall-clock only — never part
  /// of the deterministic output. Must outlive run(); null detaches.
  void set_tick_profiler(obs::TickProfiler* profiler) noexcept { profiler_ = profiler; }

  /// Run the whole schedule to quiescence (or the horizon). Deterministic;
  /// one call per Scheduler instance.
  [[nodiscard]] SchedulerReport run(std::vector<SchedulerJob> jobs);

  [[nodiscard]] BitsPerSecond reference_rate() const noexcept { return reference_rate_; }

 private:
  struct Tenant;

  void on_submit(Tenant& t);
  void enqueue(Tenant& t);
  void try_dispatch();
  [[nodiscard]] bool can_dispatch(const Tenant& t) const;
  void dispatch(Tenant& t);
  void preempt(Tenant& t);
  void abort_attempt(Tenant& t, Seconds end_raw);
  void complete(Tenant& t);
  void fail(Tenant& t, std::string reason);
  void retire(Tenant& t);
  bool master_tick();
  void record(Tenant& t, RecoveryAction action, Seconds at, std::string detail);
  void decide(Tenant& t, obs::DecisionKind kind, std::string subject,
              std::string detail);
  [[nodiscard]] Seconds defer_delay(const Tenant& t) const;
  [[nodiscard]] bool multipath() const noexcept { return !policy_.paths.empty(); }
  [[nodiscard]] Watts path_cap(int p) const noexcept;
  /// Healthiest path with power headroom for one more session, or -1.
  [[nodiscard]] int pick_path() const;
  [[nodiscard]] int pick_path(bool allow_failed) const;
  void release_capacity(const Tenant& t);
  void master_tick_multipath();
  /// The pool when this tick should fan out, else null (serial). Parallel
  /// mode needs enough tenants to amortize the dispatch handshake, and every
  /// tenant on its own obs slot (slots are single-writer; without a collector
  /// all tenants share base_config_.obs, so the tick stays serial).
  [[nodiscard]] TickPool* tick_pool() const noexcept;
  /// Copy each running tenant's slice of the arbiter's current round into
  /// the staged scratch (tick_alloc_ / tick_slices_), tagged with the
  /// round's efficiency and burst factors. Staging is what lets the rate
  /// application run after the arbiter's buffers are reused (multipath runs
  /// one round per path) and off-thread (slices index caller-owned storage).
  void stage_allocations(const std::vector<Tenant*>& group, double eff,
                         double burst_cap);
  /// Serial-commit telemetry hooks. sample_telemetry() fills the hub's
  /// scratch from deterministic state when a sample is due; flight_note()
  /// records this tick into the recorder's ring; emit_sched_tracks() writes
  /// the scheduler-level running/queued/shed counter tracks when they
  /// changed. All three are no-ops when their sink is absent.
  void sample_telemetry(Watts measured);
  void flight_note(Watts measured);
  void emit_sched_tracks();

  const testbeds::Testbed testbed_;
  BitsPerSecond reference_rate_ = 0.0;
  SchedulerPolicy policy_;
  proto::SessionConfig base_config_;
  proto::FaultPlan faults_;
  std::optional<power::Tariff> tariff_;
  Seconds tariff_start_ = 0.0;
  obs::ObsCollector* collector_ = nullptr;
  std::size_t slot_base_ = 0;
  obs::StreamingTraceWriter* stream_ = nullptr;
  obs::TelemetryHub* telemetry_ = nullptr;
  obs::TickFlightRecorder* flightrec_ = nullptr;
  obs::TickProfiler* profiler_ = nullptr;

  // --- run() state -------------------------------------------------------
  sim::Simulation sim_;
  net::LinkArbiter arbiter_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<Tenant*> queue_;    ///< waiting, in priority order
  std::vector<Tenant*> running_;  ///< dispatch order (preemption scans back)
  Watts running_peak_sum_ = 0.0;  ///< sum of running sessions' peak bounds (all paths)
  Watts session_peak_ = 0.0;      ///< per-session bound (one shared env)
  double link_factor_ = 1.0;      ///< site-level brownout factor
  int unfinished_ = 0;            ///< tenants not yet terminal
  int deferred_ = 0;              ///< tenants parked in a tariff deferral
  std::uint64_t watchdog_aborts_ = 0;  ///< cumulative, fed to the flight ring
  SchedulerReport report_;

  // --- per-tick scratch (hoisted so a steady-state master tick performs no
  // heap allocations; scratch only — never carries state across ticks) ------
  /// One tenant's staged share of a tick's arbitration: a window into
  /// tick_alloc_ plus the round factors apply_link_allocation() needs.
  struct StagedSlice {
    std::size_t offset = 0;
    std::size_t count = 0;
    double eff = 1.0;
    double burst_cap = 1.0;
  };
  std::vector<Tenant*> overdue_;        ///< watchdog sweep
  std::vector<Tenant*> finished_;       ///< tenants completing this tick
  std::vector<Tenant*> path_group_;     ///< multipath: one path's tenants
  std::vector<Watts> path_measured_;    ///< multipath per-site power books
  std::vector<double> path_bytes_;      ///< multipath health feed
  std::vector<BitsPerSecond> tick_alloc_;  ///< staged slices, concatenated
  std::vector<StagedSlice> tick_slices_;   ///< indexed like running_
  std::unique_ptr<TickPool> pool_;      ///< live while run() executes (jobs > 1)

  // --- multipath state (empty / unused in single-path mode) ---------------
  std::vector<proto::Environment> path_envs_;  ///< stable: sessions hold refs
  std::vector<Watts> path_session_peak_;       ///< per-path session bound
  std::vector<Watts> path_running_peak_;       ///< per-path running peak sums
  std::vector<double> path_link_factor_;       ///< per-path brownout factors
  std::vector<BitsPerSecond> path_capacity_;   ///< this tick's offered capacity
  std::vector<const char*> path_phi_track_;    ///< interned health-track names
  std::unique_ptr<HealthMonitor> health_;
  obs::ObsSinks* sched_sinks_ = nullptr;       ///< scheduler-level obs slot

  // --- scheduler-level counter tracks (collector runs only) ---------------
  const char* sched_running_track_ = nullptr;
  const char* sched_queued_track_ = nullptr;
  const char* sched_shed_track_ = nullptr;
  int last_track_running_ = -1;  ///< change gates keep long traces bounded
  int last_track_queued_ = -1;
  int last_track_shed_ = -1;
};

}  // namespace eadt::exp
