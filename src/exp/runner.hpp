// Experiment driver: runs one named algorithm over a testbed and dataset and
// returns the numbers the paper's figures plot. Used by every bench binary
// and by the integration tests that assert the paper's qualitative claims.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "core/algorithms.hpp"
#include "proto/session.hpp"
#include "testbeds/testbeds.hpp"

namespace eadt::exp {

enum class Algorithm { kGuc, kGo, kSc, kMinE, kProMc, kHtee, kBf };

[[nodiscard]] const char* to_string(Algorithm a) noexcept;

/// The six concurrency-sweep algorithms in the paper's plotting order.
[[nodiscard]] std::vector<Algorithm> figure_algorithms();

struct RunOutcome {
  Algorithm algorithm = Algorithm::kGuc;
  int concurrency = 0;         ///< the x-axis value (user maxChannel)
  proto::RunResult result;
  int chosen_concurrency = 0;  ///< HTEE's selected level (== concurrency otherwise)

  [[nodiscard]] double throughput_mbps() const { return to_mbps(result.avg_throughput()); }
  [[nodiscard]] Joules energy() const { return result.end_system_energy; }
  [[nodiscard]] double ratio() const { return result.throughput_per_joule(); }
};

/// Receives the periodic/abort checkpoints of a run (see
/// TransferSession::set_checkpoint_sink). Empty = no journal.
using CheckpointSink = std::function<void(const proto::TransferCheckpoint&)>;

/// Run `algorithm` at user concurrency `max_channels`.
/// GUC and GO ignore `max_channels` (untunable), as in the paper.
/// `faults` injects a failure workload; the default plan is inert.
[[nodiscard]] RunOutcome run_algorithm(Algorithm algorithm,
                                       const testbeds::Testbed& testbed,
                                       const proto::Dataset& dataset, int max_channels,
                                       proto::SessionConfig config = {},
                                       proto::FaultPlan faults = {},
                                       const CheckpointSink& checkpoints = {});

struct SlaOutcome {
  double target_percent = 0.0;         ///< requested % of max throughput
  BitsPerSecond target_throughput = 0.0;
  proto::RunResult result;
  int final_concurrency = 0;
  bool rearranged = false;

  [[nodiscard]] double achieved_mbps() const { return to_mbps(result.avg_throughput()); }
  [[nodiscard]] Joules energy() const { return result.end_system_energy; }
  /// |achieved - target| / target, in percent (the paper's deviation ratio;
  /// both shortfall and overshoot count).
  [[nodiscard]] double deviation_percent() const;
  /// Signed shortfall: positive = under target.
  [[nodiscard]] double shortfall_percent() const;
};

/// Run SLAEE for a target expressed as a percent of `max_throughput`
/// (the ProMC maximum, per Section 3).
[[nodiscard]] SlaOutcome run_slaee(const testbeds::Testbed& testbed,
                                   const proto::Dataset& dataset, double target_percent,
                                   BitsPerSecond max_throughput, int max_channels,
                                   proto::SessionConfig config = {},
                                   proto::FaultPlan faults = {},
                                   const CheckpointSink& checkpoints = {});

/// The concurrency levels the figures sweep.
[[nodiscard]] std::vector<int> figure_concurrency_levels();  // {1,2,4,6,8,10,12}
[[nodiscard]] std::vector<int> bf_concurrency_levels();      // {1..20}
[[nodiscard]] std::vector<double> sla_target_percents();     // {95,90,80,70,50}

}  // namespace eadt::exp
