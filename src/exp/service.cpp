#include "exp/service.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "baselines/baselines.hpp"
#include "exp/scheduler.hpp"
#include "obs/obs.hpp"
#include "obs/openmetrics.hpp"

namespace eadt::exp {

const char* to_string(JobPolicy policy) noexcept {
  switch (policy) {
    case JobPolicy::kDeadline: return "deadline";
    case JobPolicy::kGreen: return "green";
    case JobPolicy::kBalanced: return "balanced";
    case JobPolicy::kSla: return "sla";
    case JobPolicy::kEnergyBudget: return "energy-budget";
  }
  return "?";
}

TransferService::TransferService(testbeds::Testbed testbed, BitsPerSecond reference_rate,
                                 proto::SessionConfig config)
    : testbed_(std::move(testbed)), reference_rate_(reference_rate), config_(config) {
  if (reference_rate_ <= 0.0) {
    // Measure the site's best case once, on its own dataset recipe.
    const auto probe = testbed_.make_dataset();
    proto::TransferSession session(
        testbed_.env, probe,
        baselines::plan_promc(testbed_.env, probe, testbed_.default_max_channels),
        config_);
    reference_rate_ = session.run().avg_throughput();
  }
}

JobOutcome TransferService::run_job(const TransferJob& job) const {
  // Unsupervised services still run through the Supervisor with a single-shot
  // policy: one attempt, no watchdog. That path is behaviourally identical to
  // the legacy switch (same plans, same configs) but reports aborts honestly.
  SupervisorPolicy single_shot;
  single_shot.attempt_deadline = 0.0;
  single_shot.max_attempts = 1;
  SupervisorPolicy policy = supervisor_ ? *supervisor_ : single_shot;
  Supervisor supervisor(testbed_, reference_rate_, faults_, policy, config_);
  return supervisor.run(job);
}

SchedulerReport TransferService::run_concurrent(std::vector<SchedulerJob> jobs,
                                                const SchedulerPolicy& policy,
                                                obs::ObsCollector* collector) {
  Scheduler scheduler(testbed_, reference_rate_, policy, config_);
  scheduler.set_fault_plan(faults_);
  if (tariff_) scheduler.set_tariff(*tariff_, queue_start_time_);
  scheduler.set_collector(collector);
  scheduler.set_stream(stream_);
  scheduler.set_telemetry(telemetry_);
  scheduler.set_flight_recorder(flightrec_);
  scheduler.set_tick_profiler(profiler_);
  // The scrape listener lives exactly as long as the schedule runs: it binds
  // before the first tick (so the port is known and announced up front) and
  // stops when run() returns. Scrapes read the registry via its snapshot
  // mutex; the engine's writers stay lock-free on pre-resolved handles.
  std::unique_ptr<obs::MetricsHttpServer> server;
  if (metrics_listen_ >= 0 && collector != nullptr) {
    obs::MetricsRegistry& registry = collector->metrics();
    server = std::make_unique<obs::MetricsHttpServer>(
        metrics_listen_, [&registry] { return registry.snapshot(); });
    if (server->running()) {
      std::fprintf(stderr, "eadt: serving /metrics on 127.0.0.1:%d\n", server->port());
    } else {
      std::fprintf(stderr, "eadt: metrics listener failed (%s); run proceeds unscraped\n",
                   server->error().c_str());
    }
  }
  return scheduler.run(std::move(jobs));
}

ServiceReport TransferService::run_queue(std::vector<TransferJob> jobs,
                                         QueueOrder order) {
  switch (order) {
    case QueueOrder::kFifo:
      break;
    case QueueOrder::kShortestFirst:
      std::stable_sort(jobs.begin(), jobs.end(),
                       [](const TransferJob& a, const TransferJob& b) {
                         return a.dataset.total_bytes() < b.dataset.total_bytes();
                       });
      break;
    case QueueOrder::kGreenFirst:
      std::stable_sort(jobs.begin(), jobs.end(),
                       [](const TransferJob& a, const TransferJob& b) {
                         const auto rank = [](JobPolicy p) {
                           return p == JobPolicy::kGreen ? 0 : 1;
                         };
                         return rank(a.policy) < rank(b.policy);
                       });
      break;
  }

  ServiceReport report;
  report.reference_rate = reference_rate_;
  Seconds clock = 0.0;
  double rate_fraction_sum = 0.0;
  int completed_jobs = 0;
  for (const auto& job : jobs) {
    JobOutcome out = run_job(job);
    out.queued_at = clock;
    clock += out.result.duration;
    out.finished_at = clock;
    if (tariff_) {
      out.cost_usd = tariff_->cost(out.result.end_system_energy,
                                   queue_start_time_ + out.queued_at,
                                   out.result.duration);
      report.total_cost_usd += out.cost_usd;
    }
    report.total_bytes += out.result.bytes;
    report.total_energy += out.result.end_system_energy;
    if (out.failed) {
      ++report.failed_jobs;
    } else if (reference_rate_ > 0.0) {
      rate_fraction_sum += out.result.avg_throughput() / reference_rate_;
      ++completed_jobs;
    }
    report.jobs.push_back(std::move(out));
  }
  report.makespan = clock;
  if (completed_jobs > 0) report.mean_rate_fraction = rate_fraction_sum / completed_jobs;
  if (config_.obs != nullptr && config_.obs->metrics != nullptr) {
    auto& m = *config_.obs->metrics;
    m.counter("service.jobs").add(report.jobs.size());
    m.counter("service.jobs_failed").add(static_cast<std::uint64_t>(report.failed_jobs));
    for (const auto& out : report.jobs) {
      if (out.policy == JobPolicy::kSla && !out.sla_met) {
        m.counter("service.sla_misses").add(1);
      }
      if (out.attempts > 1) m.counter("service.jobs_retried").add(1);
    }
    m.gauge("service.makespan_s").set_max(report.makespan);
  }
  return report;
}

}  // namespace eadt::exp
