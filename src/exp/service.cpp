#include "exp/service.hpp"

#include <algorithm>

#include "baselines/baselines.hpp"
#include "core/algorithms.hpp"
#include "core/energy_budget.hpp"

namespace eadt::exp {

const char* to_string(JobPolicy policy) noexcept {
  switch (policy) {
    case JobPolicy::kDeadline: return "deadline";
    case JobPolicy::kGreen: return "green";
    case JobPolicy::kBalanced: return "balanced";
    case JobPolicy::kSla: return "sla";
    case JobPolicy::kEnergyBudget: return "energy-budget";
  }
  return "?";
}

TransferService::TransferService(testbeds::Testbed testbed, BitsPerSecond reference_rate,
                                 proto::SessionConfig config)
    : testbed_(std::move(testbed)), reference_rate_(reference_rate), config_(config) {
  if (reference_rate_ <= 0.0) {
    // Measure the site's best case once, on its own dataset recipe.
    const auto probe = testbed_.make_dataset();
    proto::TransferSession session(
        testbed_.env, probe,
        baselines::plan_promc(testbed_.env, probe, testbed_.default_max_channels),
        config_);
    reference_rate_ = session.run().avg_throughput();
  }
}

JobOutcome TransferService::run_job(const TransferJob& job) const {
  JobOutcome out;
  out.name = job.name;
  out.policy = job.policy;
  const auto& env = testbed_.env;
  const int cc = std::max(1, job.max_channels);

  switch (job.policy) {
    case JobPolicy::kDeadline: {
      proto::TransferSession s(env, job.dataset,
                               baselines::plan_promc(env, job.dataset, cc), config_);
      out.result = s.run();
      break;
    }
    case JobPolicy::kGreen: {
      proto::TransferSession s(env, job.dataset,
                               core::plan_min_energy(env, job.dataset, cc), config_);
      out.result = s.run();
      break;
    }
    case JobPolicy::kBalanced: {
      core::HteeController ctl(cc);
      proto::TransferSession s(env, job.dataset, core::plan_htee(env, job.dataset, cc),
                               config_);
      out.result = s.run(&ctl);
      break;
    }
    case JobPolicy::kSla: {
      const BitsPerSecond target = reference_rate_ * job.sla_percent / 100.0;
      core::SlaeeController ctl(target, cc);
      proto::TransferSession s(env, job.dataset, core::plan_slaee(env, job.dataset, cc),
                               config_);
      out.result = s.run(&ctl);
      out.sla_met = out.result.avg_throughput() >= target * 0.93;  // paper's ~7 % band
      break;
    }
    case JobPolicy::kEnergyBudget: {
      core::EnergyBudgetController ctl(job.energy_budget, cc);
      proto::TransferSession s(env, job.dataset,
                               baselines::plan_promc(env, job.dataset, cc), config_);
      out.result = s.run(&ctl);
      break;
    }
  }
  return out;
}

ServiceReport TransferService::run_queue(std::vector<TransferJob> jobs,
                                         QueueOrder order) {
  switch (order) {
    case QueueOrder::kFifo:
      break;
    case QueueOrder::kShortestFirst:
      std::stable_sort(jobs.begin(), jobs.end(),
                       [](const TransferJob& a, const TransferJob& b) {
                         return a.dataset.total_bytes() < b.dataset.total_bytes();
                       });
      break;
    case QueueOrder::kGreenFirst:
      std::stable_sort(jobs.begin(), jobs.end(),
                       [](const TransferJob& a, const TransferJob& b) {
                         const auto rank = [](JobPolicy p) {
                           return p == JobPolicy::kGreen ? 0 : 1;
                         };
                         return rank(a.policy) < rank(b.policy);
                       });
      break;
  }

  ServiceReport report;
  report.reference_rate = reference_rate_;
  Seconds clock = 0.0;
  for (const auto& job : jobs) {
    JobOutcome out = run_job(job);
    out.queued_at = clock;
    clock += out.result.duration;
    out.finished_at = clock;
    if (tariff_) {
      out.cost_usd = tariff_->cost(out.result.end_system_energy,
                                   queue_start_time_ + out.queued_at,
                                   out.result.duration);
      report.total_cost_usd += out.cost_usd;
    }
    report.total_bytes += out.result.bytes;
    report.total_energy += out.result.end_system_energy;
    report.jobs.push_back(std::move(out));
  }
  report.makespan = clock;
  return report;
}

}  // namespace eadt::exp
