// A persistent worker pool for deterministic index-sharded fan-out.
//
// SweepRunner::parallel_indexed spawned a fresh thread set per call, which is
// fine for a handful of multi-second sweep cells but hopeless for a scheduler
// master tick that fans out thousands of sub-millisecond session phases ten
// times per simulated second. TickPool keeps its workers parked on a
// condition variable between dispatches, so issuing one parallel phase costs
// a notify + two counter handshakes instead of N thread spawns.
//
// The determinism contract is the caller's, and the pool is built to make it
// easy to keep: work is addressed by index only (an atomic cursor hands each
// worker the next unclaimed index), the pool never reorders or batches, and
// `run` returns only after every index in [0, count) has executed. A caller
// whose fn(i) touches slot i of caller-owned storage and nothing shared gets
// byte-identical results at any worker count — the same bar SweepRunner and
// the exp::Scheduler tick pipeline are tested against.
//
// Dispatch is allocation-free after construction (the alloc-guard bar for
// everything on the master-tick path): the work item is a raw function
// pointer plus a context pointer, and the handshake is mutex/condvar state
// owned by the pool. Exceptions thrown by fn are captured (first one wins,
// matching parallel_indexed), the remaining indices still execute, and the
// winner is rethrown on the calling thread after the phase drains.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace eadt::exp {

class TickPool {
 public:
  /// A pool of `jobs` workers total: `jobs - 1` parked threads plus the
  /// calling thread, which always participates in run(). jobs <= 1 spawns no
  /// threads at all — run() then executes inline, in index order.
  explicit TickPool(int jobs);
  ~TickPool();

  TickPool(const TickPool&) = delete;
  TickPool& operator=(const TickPool&) = delete;

  /// Worker count including the caller (always >= 1).
  [[nodiscard]] int jobs() const noexcept {
    return static_cast<int>(threads_.size()) + 1;
  }

  /// Execute fn(ctx, i) for every i in [0, count), sharded across the pool
  /// and the calling thread; blocks until all indices have run. fn must
  /// confine its writes to per-index state. Not reentrant: one run() at a
  /// time per pool.
  void run(std::size_t count, void (*fn)(void* ctx, std::size_t index), void* ctx);

  /// Indices executed by worker `w` (in [0, jobs())) across every run() so
  /// far; slot jobs() - 1 is the calling thread (inline executions count
  /// there too). Wall-clock occupancy diagnostics for the tick profiler —
  /// never part of deterministic output.
  [[nodiscard]] std::uint64_t worker_ops(int w) const noexcept {
    return w >= 0 && w < jobs()
               ? ops_[static_cast<std::size_t>(w)].load(std::memory_order_relaxed)
               : 0;
  }

 private:
  void drain(std::size_t worker) noexcept;

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  // Current phase (guarded by mutex_ for the handshake; read lock-free by
  // workers only between the start and done signals of the same generation).
  void (*fn_)(void*, std::size_t) = nullptr;
  void* ctx_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::vector<std::atomic<std::uint64_t>> ops_;  ///< executed indices per worker
  std::uint64_t generation_ = 0;
  int pending_ = 0;  ///< workers still draining the current generation
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace eadt::exp
