#include "exp/runner.hpp"

#include <cmath>

#include "obs/obs.hpp"

namespace eadt::exp {
namespace {

/// Planner decision sink for this run: the decisions member of the config's
/// sinks, when observability is on.
obs::DecisionLog* decision_log(const proto::SessionConfig& config) {
  return config.obs != nullptr ? config.obs->decisions : nullptr;
}

}  // namespace

const char* to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kGuc: return "GUC";
    case Algorithm::kGo: return "GO";
    case Algorithm::kSc: return "SC";
    case Algorithm::kMinE: return "MinE";
    case Algorithm::kProMc: return "ProMC";
    case Algorithm::kHtee: return "HTEE";
    case Algorithm::kBf: return "BF";
  }
  return "?";
}

std::vector<Algorithm> figure_algorithms() {
  return {Algorithm::kGuc, Algorithm::kGo,    Algorithm::kSc,
          Algorithm::kMinE, Algorithm::kProMc, Algorithm::kHtee};
}

RunOutcome run_algorithm(Algorithm algorithm, const testbeds::Testbed& testbed,
                         const proto::Dataset& dataset, int max_channels,
                         proto::SessionConfig config, proto::FaultPlan faults,
                         const CheckpointSink& checkpoints) {
  RunOutcome out;
  out.algorithm = algorithm;
  out.concurrency = max_channels;
  out.chosen_concurrency = max_channels;

  const auto& env = testbed.env;
  const auto execute = [&](proto::TransferPlan plan,
                           proto::Controller* controller = nullptr) {
    proto::TransferSession s(env, dataset, std::move(plan), config);
    s.set_fault_plan(faults);
    if (checkpoints) s.set_checkpoint_sink(checkpoints);
    return s.run(controller);
  };
  switch (algorithm) {
    case Algorithm::kGuc:
      out.result = execute(baselines::plan_guc(env, dataset));
      out.chosen_concurrency = 1;
      break;
    case Algorithm::kGo:
      out.result = execute(baselines::plan_go(env, dataset));
      out.chosen_concurrency = 2;
      break;
    case Algorithm::kSc:
      out.result = execute(baselines::plan_single_chunk(env, dataset, max_channels));
      break;
    case Algorithm::kMinE:
      out.result =
          execute(core::plan_min_energy(env, dataset, max_channels, decision_log(config)));
      break;
    case Algorithm::kProMc:
      out.result = execute(baselines::plan_promc(env, dataset, max_channels));
      break;
    case Algorithm::kHtee: {
      core::HteeController controller(max_channels);
      out.result = execute(core::plan_htee(env, dataset, max_channels, decision_log(config)),
                           &controller);
      out.chosen_concurrency = controller.chosen_level();
      break;
    }
    case Algorithm::kBf:
      out.result = execute(baselines::plan_brute_force(env, dataset, max_channels));
      break;
  }
  return out;
}

double SlaOutcome::deviation_percent() const {
  if (target_throughput <= 0.0) return 0.0;
  return 100.0 * std::fabs(result.avg_throughput() - target_throughput) /
         target_throughput;
}

double SlaOutcome::shortfall_percent() const {
  if (target_throughput <= 0.0) return 0.0;
  return 100.0 * (target_throughput - result.avg_throughput()) / target_throughput;
}

SlaOutcome run_slaee(const testbeds::Testbed& testbed, const proto::Dataset& dataset,
                     double target_percent, BitsPerSecond max_throughput,
                     int max_channels, proto::SessionConfig config,
                     proto::FaultPlan faults, const CheckpointSink& checkpoints) {
  SlaOutcome out;
  out.target_percent = target_percent;
  out.target_throughput = max_throughput * target_percent / 100.0;

  core::SlaeeController controller(out.target_throughput, max_channels);
  proto::TransferSession session(
      testbed.env, dataset,
      core::plan_slaee(testbed.env, dataset, max_channels, decision_log(config)), config);
  session.set_fault_plan(std::move(faults));
  if (checkpoints) session.set_checkpoint_sink(checkpoints);
  out.result = session.run(&controller);
  out.final_concurrency = controller.final_level();
  out.rearranged = controller.rearranged();
  return out;
}

std::vector<int> figure_concurrency_levels() { return {1, 2, 4, 6, 8, 10, 12}; }

std::vector<int> bf_concurrency_levels() {
  std::vector<int> v;
  for (int i = 1; i <= 20; ++i) v.push_back(i);
  return v;
}

std::vector<double> sla_target_percents() { return {95.0, 90.0, 80.0, 70.0, 50.0}; }

}  // namespace eadt::exp
