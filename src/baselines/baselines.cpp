#include "baselines/baselines.hpp"

#include <algorithm>

#include "core/algorithms.hpp"
#include "core/tuner.hpp"

namespace eadt::baselines {

proto::TransferPlan plan_guc(const proto::Environment& env, const proto::Dataset& dataset,
                             int concurrency, int parallelism, int pipelining) {
  (void)env;
  proto::TransferPlan plan;
  proto::Chunk all;
  all.cls = proto::SizeClass::kLarge;
  for (std::uint32_t i = 0; i < dataset.files.size(); ++i) {
    all.file_ids.push_back(i);
    all.total += dataset.files[i].size;
  }
  plan.chunks.push_back(std::move(all));
  plan.params.push_back({std::max(1, pipelining), std::max(1, parallelism),
                         std::max(1, concurrency)});
  plan.placement = proto::Placement::kRoundRobin;
  plan.steal = proto::StealPolicy::kAll;
  plan.sequential_chunks = false;
  return plan;
}

proto::TransferPlan plan_go(const proto::Environment& env, const proto::Dataset& dataset,
                            bool verify_checksums) {
  (void)env;
  // Globus Online's fixed partitioning: < 50 MB, 50-250 MB, > 250 MB.
  constexpr Bytes kSmallMax = 50 * kMB;
  constexpr Bytes kLargeMin = 250 * kMB;
  proto::Chunk small{proto::SizeClass::kSmall, {}, 0};
  proto::Chunk medium{proto::SizeClass::kMedium, {}, 0};
  proto::Chunk large{proto::SizeClass::kLarge, {}, 0};
  for (std::uint32_t i = 0; i < dataset.files.size(); ++i) {
    const Bytes sz = dataset.files[i].size;
    proto::Chunk& c = sz < kSmallMax ? small : (sz < kLargeMin ? medium : large);
    c.file_ids.push_back(i);
    c.total += sz;
  }
  proto::TransferPlan plan;
  // Fixed per-class parameters (e.g. "pipelining 20 and parallelism 2 for
  // small files"); fixed concurrency of 2 regardless of user input.
  struct Fixed {
    proto::Chunk* chunk;
    int pp;
  };
  for (const Fixed f : {Fixed{&small, 20}, Fixed{&medium, 5}, Fixed{&large, 1}}) {
    if (f.chunk->file_ids.empty()) continue;
    plan.chunks.push_back(std::move(*f.chunk));
    plan.params.push_back({f.pp, 2, 2});
  }
  plan.placement = proto::Placement::kRoundRobin;
  plan.steal = proto::StealPolicy::kAll;
  plan.sequential_chunks = true;  // divide-and-transfer, one group at a time
  // The hosted service pipelines every file through its cloud bookkeeping.
  plan.service_overhead_per_file = 0.12;
  if (verify_checksums) plan.checksum_rate = gbps(3.0);  // MD5 re-read pass
  return plan;
}

proto::TransferPlan plan_single_chunk(const proto::Environment& env,
                                      const proto::Dataset& dataset, int concurrency) {
  proto::TransferPlan plan = core::tuned_chunk_plan(env, dataset);
  for (auto& p : plan.params) p.channels = std::max(1, concurrency);
  plan.placement = proto::Placement::kPacked;
  plan.steal = proto::StealPolicy::kAll;
  plan.sequential_chunks = true;
  return plan;
}

proto::TransferPlan plan_promc(const proto::Environment& env,
                               const proto::Dataset& dataset, int concurrency) {
  proto::TransferPlan plan = core::tuned_chunk_plan(env, dataset);
  const auto alloc = core::allocate_channels_by_weight(
      plan.chunks, std::max(1, concurrency), /*ensure_total=*/true);
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    plan.params[i].channels = alloc[i];
  }
  plan.placement = proto::Placement::kPacked;
  plan.steal = proto::StealPolicy::kAll;
  plan.sequential_chunks = false;
  return plan;
}

proto::TransferPlan plan_brute_force(const proto::Environment& env,
                                     const proto::Dataset& dataset, int concurrency) {
  // "a revised version of HTEE that skips the search phase and runs the
  // transfer with pre-defined concurrency levels".
  return plan_promc(env, dataset, concurrency);
}

}  // namespace eadt::baselines
