// Energy-agnostic comparison algorithms from the paper's evaluation:
//
//   GUC   — globus-url-copy without tuning: the whole dataset as one chunk,
//           pipelining = parallelism = concurrency = 1, channels spread over
//           a site's DTN servers (the paper's base case).
//   GO    — Globus Online: fixed size classes (< 50 MB, 50-250 MB, > 250 MB),
//           fixed per-class parameters (pipelining 20/5/1, parallelism 2),
//           fixed concurrency 2, chunks transferred one by one, channels
//           spread over multiple DTN servers.
//   SC    — Single Chunk: BDP partitioning + tuned parameters, but chunks are
//           transferred sequentially, each with the user's full concurrency.
//   ProMC — Pro-active Multi-Chunk: BDP partitioning + tuned parameters,
//           all chunks in flight at once, channels weighted by chunk
//           size/count, full user concurrency (throughput-greedy).
//   BF    — brute force: a ProMC/HTEE-style plan run at one fixed concurrency
//           level; sweeping it 1..20 gives the paper's ideal reference for
//           the throughput/energy ratio.
#pragma once

#include "proto/environment.hpp"
#include "proto/plan.hpp"

namespace eadt::baselines {

[[nodiscard]] proto::TransferPlan plan_guc(const proto::Environment& env,
                                           const proto::Dataset& dataset,
                                           int concurrency = 1, int parallelism = 1,
                                           int pipelining = 1);

/// `verify_checksums` re-enables GO's integrity verification (the paper
/// disabled it for the comparison because of its "significant slowdowns").
[[nodiscard]] proto::TransferPlan plan_go(const proto::Environment& env,
                                          const proto::Dataset& dataset,
                                          bool verify_checksums = false);

[[nodiscard]] proto::TransferPlan plan_single_chunk(const proto::Environment& env,
                                                    const proto::Dataset& dataset,
                                                    int concurrency);

[[nodiscard]] proto::TransferPlan plan_promc(const proto::Environment& env,
                                             const proto::Dataset& dataset,
                                             int concurrency);

[[nodiscard]] proto::TransferPlan plan_brute_force(const proto::Environment& env,
                                                   const proto::Dataset& dataset,
                                                   int concurrency);

}  // namespace eadt::baselines
