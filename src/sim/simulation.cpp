#include "sim/simulation.hpp"

#include <algorithm>
#include <memory>

namespace eadt::sim {

EventId Simulation::schedule_at(Seconds t, std::function<void()> fn) {
  const Seconds when = std::max(t, now_);
  const EventId id{when, next_seq_++};
  queue_.emplace(Key{id.time, id.seq}, std::move(fn));
  ++counters_.scheduled;
  counters_.peak_queue = std::max<std::uint64_t>(counters_.peak_queue, queue_.size());
  return id;
}

EventId Simulation::schedule_after(Seconds dt, std::function<void()> fn) {
  return schedule_at(now_ + std::max(dt, 0.0), std::move(fn));
}

struct Simulation::TickerState {
  EventId current;
  std::function<bool()> fn;
  std::function<void()> rearm;
};

bool Simulation::cancel(EventId id) {
  if (!id.valid()) return false;
  // A ticker id resolves to its *current* occurrence, so cancelling works
  // even after the ticker has re-armed itself any number of times.
  if (auto it = tickers_.find(id.seq); it != tickers_.end()) {
    const EventId current = it->second->current;
    tickers_.erase(it);
    counters_.cancelled += queue_.erase(Key{current.time, current.seq});
    return true;
  }
  const bool erased = queue_.erase(Key{id.time, id.seq}) > 0;
  counters_.cancelled += erased ? 1 : 0;
  return erased;
}

EventId Simulation::add_ticker(Seconds interval, std::function<bool()> fn) {
  // The re-arming closure captures only the registry key, never the state:
  // ownership stays with tickers_, so cancel() can drop the whole ticker and
  // any already-queued occurrence simply finds no entry and does nothing.
  const std::uint64_t key = next_seq_;  // seq the first occurrence will get
  auto state = std::make_shared<TickerState>();
  state->fn = std::move(fn);
  state->rearm = [this, interval, key]() {
    const auto it = tickers_.find(key);
    if (it == tickers_.end()) return;  // cancelled while this firing was queued
    ++counters_.ticks;
    const auto st = it->second;
    if (!st->fn()) {
      tickers_.erase(key);
      return;
    }
    if (tickers_.count(key) != 0) {  // fn may have cancelled its own ticker
      st->current = schedule_after(interval, st->rearm);
    }
  };
  tickers_.emplace(key, state);
  state->current = schedule_after(interval, state->rearm);
  return state->current;
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  now_ = it->first.first;
  auto fn = std::move(it->second);
  queue_.erase(it);
  ++counters_.fired;
  fn();
  return true;
}

std::uint64_t Simulation::run_until(Seconds deadline) {
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.begin()->first.first <= deadline) {
    step();
    ++fired;
  }
  if (queue_.empty() && now_ < deadline && deadline < std::numeric_limits<double>::infinity()) {
    now_ = deadline;
  }
  return fired;
}

}  // namespace eadt::sim
