#include "sim/simulation.hpp"

#include <algorithm>
#include <memory>

namespace eadt::sim {

EventId Simulation::schedule_at(Seconds t, std::function<void()> fn) {
  const Seconds when = std::max(t, now_);
  const EventId id{when, next_seq_++};
  queue_.emplace(Key{id.time, id.seq}, std::move(fn));
  return id;
}

EventId Simulation::schedule_after(Seconds dt, std::function<void()> fn) {
  return schedule_at(now_ + std::max(dt, 0.0), std::move(fn));
}

bool Simulation::cancel(EventId id) {
  if (!id.valid()) return false;
  return queue_.erase(Key{id.time, id.seq}) > 0;
}

EventId Simulation::add_ticker(Seconds interval, std::function<bool()> fn) {
  // Self-rescheduling closure; the shared_ptr lets the lambda re-arm itself.
  auto shared_fn = std::make_shared<std::function<bool()>>(std::move(fn));
  std::function<void()> tick = [this, interval, shared_fn]() {
    if ((*shared_fn)()) {
      add_ticker(interval, *shared_fn);
    }
  };
  return schedule_after(interval, std::move(tick));
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  now_ = it->first.first;
  auto fn = std::move(it->second);
  queue_.erase(it);
  fn();
  return true;
}

std::uint64_t Simulation::run_until(Seconds deadline) {
  std::uint64_t fired = 0;
  while (!queue_.empty() && queue_.begin()->first.first <= deadline) {
    step();
    ++fired;
  }
  if (queue_.empty() && now_ < deadline && deadline < std::numeric_limits<double>::infinity()) {
    now_ = deadline;
  }
  return fired;
}

}  // namespace eadt::sim
