#include "sim/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/metrics.hpp"

namespace eadt::sim {

void SimCounters::publish(obs::MetricsRegistry& metrics) const {
  metrics.counter("sim.events_scheduled").add(scheduled);
  metrics.counter("sim.events_fired").add(fired);
  metrics.counter("sim.events_cancelled").add(cancelled);
  metrics.counter("sim.ticker_ticks").add(ticks);
  metrics.gauge("sim.peak_queue").set_max(static_cast<double>(peak_queue));
}

Simulation::Simulation() {
  // A session's steady queue is tiny (the ticker plus a handful of control
  // events), but reserving up front keeps even the warm-up ticks off the
  // allocator once the pool has grown.
  heap_.reserve(64);
  slab_.reserve(64);
}

std::uint32_t Simulation::alloc_slot() {
  if (free_head_ != kNoIndex) {
    const std::uint32_t s = free_head_;
    free_head_ = slab_[s].next_free;
    return s;
  }
  assert(slab_.size() < kSlotMask);
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Simulation::release_slot(std::uint32_t slot) {
  // Deliberately minimal — this runs once per fired event. seq = 0 turns
  // every heap entry still pointing here into a tombstone; the generation
  // bump invalidates outstanding EventIds. The callable is NOT cleared here:
  // fire paths have already moved it out, and cancel() clears it explicitly
  // (the next tenant's move-assignment would destroy any leftover anyway).
  Node& n = slab_[slot];
  ++n.gen;
  n.seq = 0;
  n.next_free = free_head_;
  free_head_ = slot;
}

std::uint32_t Simulation::alloc_ticker() {
  if (ticker_free_head_ != kNoIndex) {
    const std::uint32_t t = ticker_free_head_;
    ticker_free_head_ = tickers_[t].next_free;
    return t;
  }
  tickers_.emplace_back();
  return static_cast<std::uint32_t>(tickers_.size() - 1);
}

void Simulation::release_ticker(std::uint32_t t) {
  TickerBody& b = tickers_[t];
  b.fn = nullptr;  // release captured state now, as the old eager erase did
  b.firing = false;
  b.dead_after_fire = false;
  b.next_free = ticker_free_head_;
  ticker_free_head_ = t;
}

void Simulation::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!entry_less(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulation::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (entry_less(heap_[c], heap_[best])) best = c;
    }
    if (!entry_less(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulation::push_entry(const Entry& e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

void Simulation::pop_root() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

bool Simulation::prune_top() {
  while (!heap_.empty()) {
    if (entry_live(heap_.front())) return true;
    pop_root();
    --tombstones_;
  }
  return false;
}

void Simulation::maybe_compact() {
  // Lazy cancellation must not let dead entries dominate: once tombstones
  // exceed half the heap, filter them out in one O(n) rebuild.
  if (heap_.size() < 32 || tombstones_ * 2 <= heap_.size()) return;
  std::size_t w = 0;
  for (const Entry& e : heap_) {
    if (entry_live(e)) heap_[w++] = e;
  }
  heap_.resize(w);
  if (w > 1) {
    for (std::size_t i = (w - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
  tombstones_ = 0;
}

namespace {

/// Canonical bit pattern for a fire time: +0.0 is added so a negative zero
/// (possible when scheduling exactly at t = -0.0) maps onto +0.0, keeping
/// the unsigned-bit ordering consistent with numeric ordering.
std::uint64_t time_bits(Seconds t) noexcept {
  return std::bit_cast<std::uint64_t>(t + 0.0);
}

}  // namespace

EventId Simulation::schedule_at(Seconds t, std::function<void()> fn) {
  const Seconds when = std::max(t, now_);
  assert(!(when < 0.0));
  const std::uint32_t slot = alloc_slot();
  Node& n = slab_[slot];
  assert(next_seq_ >> (64 - kSlotBits) == 0);
  n.seq = next_seq_++;
  n.ticker = kNoIndex;
  n.fn = std::move(fn);
  push_entry(Entry{time_bits(when), n.seq << kSlotBits | slot});
  ++counters_.scheduled;
  ++live_;
  if (live_ > counters_.peak_queue) counters_.peak_queue = live_;
  return EventId{when, n.seq, slot + 1, n.gen};
}

EventId Simulation::schedule_after(Seconds dt, std::function<void()> fn) {
  return schedule_at(now_ + std::max(dt, 0.0), std::move(fn));
}

EventId Simulation::add_ticker(Seconds interval, std::function<bool()> fn) {
  const Seconds when = now_ + std::max(interval, 0.0);
  const std::uint32_t slot = alloc_slot();
  const std::uint32_t t = alloc_ticker();
  TickerBody& b = tickers_[t];
  b.interval = interval;
  b.fn = std::move(fn);
  Node& n = slab_[slot];
  n.seq = next_seq_++;
  n.ticker = t;
  push_entry(Entry{time_bits(when), n.seq << kSlotBits | slot});
  ++counters_.scheduled;
  ++live_;
  if (live_ > counters_.peak_queue) counters_.peak_queue = live_;
  return EventId{when, n.seq, slot + 1, n.gen};
}

bool Simulation::cancel(EventId id) {
  if (!id.valid() || id.slot == 0 || id.slot > slab_.size()) return false;
  const std::uint32_t slot = id.slot - 1;
  Node& n = slab_[slot];
  // The generation ties the id to one slab tenancy: it survives a ticker's
  // re-arms (same tenancy) and goes stale the moment the slot is released.
  if (n.gen != id.gen) return false;
  if (n.ticker != kNoIndex) {
    TickerBody& b = tickers_[n.ticker];
    if (b.firing) {
      // Cancelled from inside its own callback: the occurrence already left
      // the heap, so there is nothing to tombstone — fire_top() drops the
      // node once the callback returns, whatever it returns.
      if (b.dead_after_fire) return false;
      b.dead_after_fire = true;
      return true;
    }
    release_ticker(n.ticker);
  } else {
    if (n.seq != id.seq) return false;
    n.fn = nullptr;  // release captured state now, as the old eager erase did
  }
  ++counters_.cancelled;
  ++tombstones_;
  --live_;
  release_slot(slot);
  maybe_compact();
  return true;
}

void Simulation::fire_top() {
  const Entry e = heap_.front();
  pop_root();
  now_ = e.time();
  --live_;
  ++counters_.fired;
  const auto slot = static_cast<std::uint32_t>(e.key & kSlotMask);
  Node& n = slab_[slot];

  if (n.ticker == kNoIndex) {
    // Release the slot before running the payload (mirroring the old
    // erase-then-fire order), so the callback can schedule fresh events that
    // recycle it immediately.
    auto fn = std::move(n.fn);
    release_slot(slot);
    fn();
    return;
  }

  // Ticker occurrence. The callable is moved to the stack for the call:
  // callbacks may add tickers, growing the side slab under our feet, and a
  // vector reallocation must not relocate a std::function mid-execution.
  const std::uint32_t t = n.ticker;
  ++counters_.ticks;
  tickers_[t].firing = true;
  auto fn = std::move(tickers_[t].fn);
  const bool keep = fn();
  TickerBody& b = tickers_[t];  // re-fetch: the side slab may have reallocated
  b.firing = false;
  if (!keep || b.dead_after_fire) {
    release_ticker(t);
    release_slot(slot);
    return;
  }
  // Re-arm fast path: the fired node is re-pushed in place — fresh seq, same
  // slot and generation, zero allocation.
  b.fn = std::move(fn);
  Node& n2 = slab_[slot];  // re-fetch: the callback may have grown the slab
  n2.seq = next_seq_++;
  const Seconds when = now_ + std::max(b.interval, 0.0);
  push_entry(Entry{time_bits(when), n2.seq << kSlotBits | slot});
  ++counters_.scheduled;
  ++live_;
  if (live_ > counters_.peak_queue) counters_.peak_queue = live_;
}

bool Simulation::step() {
  if (!prune_top()) return false;
  fire_top();
  return true;
}

std::uint64_t Simulation::run_until(Seconds deadline) {
  std::uint64_t fired = 0;
  while (prune_top() && heap_.front().time() <= deadline) {
    fire_top();
    ++fired;
  }
  if (live_ == 0 && now_ < deadline && deadline < std::numeric_limits<double>::infinity()) {
    now_ = deadline;
  }
  return fired;
}

}  // namespace eadt::sim
