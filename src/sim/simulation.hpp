// Discrete-event simulation core.
//
// The transfer engine is a fluid-flow model driven by a fixed-interval ticker
// (rates are recomputed each tick; per-file completions are resolved inside
// the tick), while adaptive controllers (HTEE's 5-second probes, SLAEE's
// adjustments) hang off scheduled events. Both live on this queue.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotonically increasing sequence number breaks ties), and the engine never
// consults the wall clock.
//
// Implementation (the single hottest path in the codebase — see MODEL.md
// §11): an indexed 4-ary min-heap over (time, seq) keys on top of a
// slab-recycled node pool. Heap entries are 16 bytes — the time plus seq and
// slab slot packed into one word — so a 4-ary child group spans at most two
// cache lines. cancel() is lazy: it kills the node and leaves a tombstone
// entry in the heap, which pop detects by the slot's sequence number no
// longer matching (seq values are never reused); the heap compacts when
// tombstones outnumber live entries. Tickers re-arm by re-pushing their own
// node (fresh seq, same slot), so the steady tick loop performs no
// allocation at all.
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "util/units.hpp"

namespace eadt::obs {
class MetricsRegistry;
}  // namespace eadt::obs

namespace eadt::sim {

/// Handle for a scheduled event; valid until the event fires or is cancelled.
/// `slot`/`gen` locate the event's node in the engine's slab (slot is the
/// index + 1, so a default-constructed id points nowhere); `time`/`seq` remain
/// the public identity and the deterministic ordering key.
struct EventId {
  Seconds time = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
  [[nodiscard]] bool valid() const noexcept { return seq != 0; }
};

/// Cheap lifetime counters of one Simulation, for perf records. They are
/// bookkeeping only — reading them never perturbs event order — so two runs
/// of the same scenario report identical counters.
struct SimCounters {
  std::uint64_t scheduled = 0;   ///< schedule_at/schedule_after calls (ticker re-arms included)
  std::uint64_t fired = 0;       ///< events that actually executed
  std::uint64_t cancelled = 0;   ///< events removed before firing
  std::uint64_t ticks = 0;       ///< ticker occurrences fired
  std::uint64_t peak_queue = 0;  ///< high-water mark of pending_events()

  /// Add these counts into a metrics registry under the `sim.*` names
  /// (MODEL.md §12). peak_queue merges as a max gauge, the rest as counters.
  void publish(obs::MetricsRegistry& metrics) const;
};

class Simulation {
 public:
  Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Seconds now() const noexcept { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (>= now, clamped to now).
  EventId schedule_at(Seconds t, std::function<void()> fn);

  /// Schedule `fn` after `dt` simulated seconds (dt < 0 is clamped to 0).
  EventId schedule_after(Seconds dt, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired / was
  /// cancelled / the id is empty.
  bool cancel(EventId id);

  /// Repeating event every `interval`. The repetition stops when `fn`
  /// returns false. The returned id tracks the ticker across re-arms, so
  /// cancel() stops it at any point — before the first firing, from outside,
  /// or from inside the callback itself.
  EventId add_ticker(Seconds interval, std::function<bool()> fn);

  /// Fire the next pending event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue empties or simulated time would pass `deadline`.
  /// Returns the number of events fired.
  std::uint64_t run_until(Seconds deadline = std::numeric_limits<double>::infinity());

  /// Live (not cancelled) pending events; tombstones are invisible here.
  [[nodiscard]] std::size_t pending_events() const noexcept { return live_; }

  [[nodiscard]] const SimCounters& counters() const noexcept { return counters_; }

 private:
  static constexpr std::uint32_t kNoIndex = 0xFFFFFFFFu;
  /// Entry keys pack (seq << kSlotBits) | slot: seq in the high bits keeps
  /// key order == seq order among equal times, 24 slot bits cap the pool at
  /// ~16.7M concurrent events and 40 seq bits at ~10^12 per Simulation —
  /// both far beyond any session (asserted in the allocation paths).
  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

  /// One slab slot, sized to a cache line. `seq` is the liveness test: a
  /// heap entry is current iff its packed seq still matches (seq values are
  /// globally unique, and a released slot has seq == 0). `gen` increments on
  /// release and ties an EventId to one tenancy — it survives a ticker's
  /// re-arms (which refresh seq) and goes stale when the slot is recycled.
  /// Ticker slots put their payload in a side slab (`TickerBody`) so the
  /// common one-shot node stays small.
  struct Node {
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoIndex;
    std::uint32_t ticker = kNoIndex;  ///< index into tickers_; kNoIndex = one-shot
    std::function<void()> fn;         ///< one-shot payload
  };

  /// Repeating-event state, off the hot one-shot slab.
  struct TickerBody {
    Seconds interval = 0.0;
    std::uint32_t next_free = kNoIndex;
    bool firing = false;           ///< callback currently executing
    bool dead_after_fire = false;  ///< cancelled from inside its own callback
    std::function<bool()> fn;
  };

  /// Heap element: ordering key only; liveness is validated against the
  /// slab. The time is stored as its IEEE-754 bit pattern: simulated time is
  /// non-negative by construction (schedule clamps to now, and now only
  /// advances), and for non-negative doubles the bit pattern as an unsigned
  /// integer preserves numeric order — so one wide branchless integer
  /// comparison orders (time, seq) without float-compare mispredicts.
  struct Entry {
    std::uint64_t tbits = 0;  ///< bit_cast of the (non-negative) fire time
    std::uint64_t key = 0;    ///< (seq << kSlotBits) | slot

    [[nodiscard]] Seconds time() const noexcept { return std::bit_cast<Seconds>(tbits); }
  };

  static bool entry_less(const Entry& a, const Entry& b) noexcept {
    __extension__ using u128 = unsigned __int128;  // GCC/Clang both have it
    const auto ka = static_cast<u128>(a.tbits) << 64 | a.key;
    const auto kb = static_cast<u128>(b.tbits) << 64 | b.key;
    return ka < kb;
  }

  [[nodiscard]] bool entry_live(const Entry& e) const noexcept {
    return slab_[e.key & kSlotMask].seq == e.key >> kSlotBits;
  }

  std::uint32_t alloc_slot();
  void release_slot(std::uint32_t slot);
  std::uint32_t alloc_ticker();
  void release_ticker(std::uint32_t t);
  void push_entry(const Entry& e);
  void pop_root();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Drop tombstones off the root; false when no live event remains.
  bool prune_top();
  /// Fire the root entry; caller guarantees it is live (prune_top() == true).
  void fire_top();
  void maybe_compact();

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;        ///< live queued events (heap minus tombstones)
  std::size_t tombstones_ = 0;  ///< stale heap entries awaiting skip/compaction
  SimCounters counters_;
  std::vector<Entry> heap_;
  std::vector<Node> slab_;
  std::vector<TickerBody> tickers_;
  std::uint32_t free_head_ = kNoIndex;
  std::uint32_t ticker_free_head_ = kNoIndex;
};

}  // namespace eadt::sim
