// Discrete-event simulation core.
//
// The transfer engine is a fluid-flow model driven by a fixed-interval ticker
// (rates are recomputed each tick; per-file completions are resolved inside
// the tick), while adaptive controllers (HTEE's 5-second probes, SLAEE's
// adjustments) hang off scheduled events. Both live on this queue.
//
// Determinism: events at equal timestamps fire in scheduling order (a
// monotonically increasing sequence number breaks ties), and the engine never
// consults the wall clock.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "util/units.hpp"

namespace eadt::sim {

/// Handle for a scheduled event; valid until the event fires or is cancelled.
struct EventId {
  Seconds time = 0.0;
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const noexcept { return seq != 0; }
};

/// Cheap lifetime counters of one Simulation, for perf records. They are
/// bookkeeping only — reading them never perturbs event order — so two runs
/// of the same scenario report identical counters.
struct SimCounters {
  std::uint64_t scheduled = 0;   ///< schedule_at/schedule_after calls (ticker re-arms included)
  std::uint64_t fired = 0;       ///< events that actually executed
  std::uint64_t cancelled = 0;   ///< events removed before firing
  std::uint64_t ticks = 0;       ///< ticker occurrences fired
  std::uint64_t peak_queue = 0;  ///< high-water mark of pending_events()
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Seconds now() const noexcept { return now_; }

  /// Schedule `fn` at absolute simulated time `t` (>= now, clamped to now).
  EventId schedule_at(Seconds t, std::function<void()> fn);

  /// Schedule `fn` after `dt` simulated seconds (dt < 0 is clamped to 0).
  EventId schedule_after(Seconds dt, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired / was
  /// cancelled / the id is empty.
  bool cancel(EventId id);

  /// Repeating event every `interval`. The repetition stops when `fn`
  /// returns false. The returned id tracks the *current* occurrence, so
  /// cancel() stops the ticker at any point — before the first firing, from
  /// outside, or from inside the callback itself.
  EventId add_ticker(Seconds interval, std::function<bool()> fn);

  /// Fire the next pending event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue empties or simulated time would pass `deadline`.
  /// Returns the number of events fired.
  std::uint64_t run_until(Seconds deadline = std::numeric_limits<double>::infinity());

  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }

  [[nodiscard]] const SimCounters& counters() const noexcept { return counters_; }

 private:
  using Key = std::pair<Seconds, std::uint64_t>;
  struct TickerState;

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  SimCounters counters_;
  std::map<Key, std::function<void()>> queue_;
  /// Live tickers, keyed by the seq of their first occurrence (the id
  /// add_ticker returned); the value tracks the currently queued occurrence.
  std::map<std::uint64_t, std::shared_ptr<TickerState>> tickers_;
};

}  // namespace eadt::sim
