#include "net/topology.hpp"

#include <algorithm>

namespace eadt::net {

const char* to_string(DeviceKind kind) noexcept {
  switch (kind) {
    case DeviceKind::kEnterpriseSwitch: return "enterprise-switch";
    case DeviceKind::kEdgeSwitch: return "edge-switch";
    case DeviceKind::kMetroRouter: return "metro-router";
    case DeviceKind::kEdgeRouter: return "edge-router";
  }
  return "unknown";
}

std::size_t Route::count(DeviceKind kind) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(devices_.begin(), devices_.end(),
                    [kind](const NetworkDevice& d) { return d.kind == kind; }));
}

Route xsede_route() {
  return Route({
      {DeviceKind::kEdgeSwitch, "stampede-edge"},
      {DeviceKind::kEnterpriseSwitch, "tacc-enterprise"},
      {DeviceKind::kEdgeRouter, "tacc-edge-router"},
      {DeviceKind::kEdgeRouter, "sdsc-edge-router"},
      {DeviceKind::kEnterpriseSwitch, "sdsc-enterprise"},
      {DeviceKind::kEdgeSwitch, "gordon-edge"},
  });
}

Route futuregrid_route() {
  return Route({
      {DeviceKind::kEdgeSwitch, "hotel-edge"},
      {DeviceKind::kMetroRouter, "internet2-chicago"},
      {DeviceKind::kMetroRouter, "internet2-kansas"},
      {DeviceKind::kMetroRouter, "internet2-houston"},
      {DeviceKind::kEdgeSwitch, "alamo-edge"},
  });
}

Route didclab_route() {
  return Route({
      {DeviceKind::kEdgeSwitch, "didclab-lan"},
  });
}

}  // namespace eadt::net
