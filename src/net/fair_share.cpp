#include "net/fair_share.hpp"

#include <algorithm>
#include <numeric>

namespace eadt::net {

FairShareResult fair_share(BitsPerSecond capacity, std::span<const Demand> demands) {
  FairShareResult out;
  out.allocation.assign(demands.size(), 0.0);
  if (demands.empty() || capacity <= 0.0) return out;

  std::vector<std::size_t> active;
  active.reserve(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].cap > 0.0 && demands[i].weight > 0.0) active.push_back(i);
  }

  BitsPerSecond remaining = capacity;
  // Progressive filling: each round gives every active channel its weighted
  // share; channels that hit their cap leave, freeing capacity for the rest.
  // Terminates in <= |demands| rounds because each round removes >= 1 channel
  // or stops.
  while (!active.empty() && remaining > 1e-9) {
    double weight_sum = 0.0;
    for (std::size_t i : active) weight_sum += demands[i].weight;
    if (weight_sum <= 0.0) break;

    bool someone_capped = false;
    std::vector<std::size_t> still_active;
    still_active.reserve(active.size());
    const BitsPerSecond per_weight = remaining / weight_sum;
    for (std::size_t i : active) {
      const BitsPerSecond share = per_weight * demands[i].weight;
      const BitsPerSecond headroom = demands[i].cap - out.allocation[i];
      if (headroom <= share) {
        out.allocation[i] = demands[i].cap;
        remaining -= headroom;
        someone_capped = true;
      } else {
        still_active.push_back(i);
      }
    }
    if (!someone_capped) {
      // Nobody capped: everyone takes the fair share and we are done.
      for (std::size_t i : still_active) {
        out.allocation[i] += per_weight * demands[i].weight;
      }
      remaining = 0.0;
      break;
    }
    active = std::move(still_active);
  }

  out.total = std::accumulate(out.allocation.begin(), out.allocation.end(), 0.0);
  return out;
}

}  // namespace eadt::net
