#include "net/fair_share.hpp"

#include <numeric>

namespace eadt::net {

BitsPerSecond fair_share_reference_into(BitsPerSecond capacity,
                                        std::span<const Demand> demands,
                                        std::vector<BitsPerSecond>& allocation,
                                        FairShareScratch& scratch) {
  allocation.assign(demands.size(), 0.0);
  if (demands.empty() || capacity <= 0.0) return 0.0;

  auto& active = scratch.active;
  active.clear();
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].cap > 0.0 && demands[i].weight > 0.0) active.push_back(i);
  }

  BitsPerSecond remaining = capacity;
  // Progressive filling: each round gives every active channel its weighted
  // share; channels that hit their cap leave, freeing capacity for the rest.
  // Terminates in <= |demands| rounds because each round removes >= 1 channel
  // or stops. Survivors are compacted toward the front of `active` in place
  // (index order preserved), so a round costs O(|active|) with no copies.
  while (!active.empty() && remaining > 1e-9) {
    double weight_sum = 0.0;
    for (std::size_t i : active) weight_sum += demands[i].weight;
    if (weight_sum <= 0.0) break;

    bool someone_capped = false;
    std::size_t survivors = 0;
    const BitsPerSecond per_weight = remaining / weight_sum;
    for (std::size_t k = 0; k < active.size(); ++k) {
      const std::size_t i = active[k];
      const BitsPerSecond share = per_weight * demands[i].weight;
      const BitsPerSecond headroom = demands[i].cap - allocation[i];
      if (headroom <= share) {
        allocation[i] = demands[i].cap;
        remaining -= headroom;
        someone_capped = true;
      } else {
        active[survivors++] = i;
      }
    }
    active.resize(survivors);
    if (!someone_capped) {
      // Nobody capped: everyone takes the fair share and we are done.
      for (std::size_t i : active) {
        allocation[i] += per_weight * demands[i].weight;
      }
      remaining = 0.0;
      break;
    }
  }

  return std::accumulate(allocation.begin(), allocation.end(), 0.0);
}

BitsPerSecond fair_share_into(BitsPerSecond capacity, std::span<const Demand> demands,
                              std::vector<BitsPerSecond>& allocation,
                              FairShareScratch& scratch) {
  if (demands.size() < kWaterfillThreshold) {
    return fair_share_reference_into(capacity, demands, allocation, scratch);
  }
  return scratch.solver.solve(capacity, demands, allocation);
}

FairShareResult fair_share(BitsPerSecond capacity, std::span<const Demand> demands) {
  FairShareResult out;
  FairShareScratch scratch;
  out.total = fair_share_into(capacity, demands, out.allocation, scratch);
  return out;
}

void LinkArbiter::begin_round(BitsPerSecond capacity) {
  capacity_ = capacity;
  total_ = 0.0;
  demands_.clear();
  ranges_.clear();
}

std::size_t LinkArbiter::submit(std::span<const Demand> demands) {
  ranges_.push_back({demands_.size(), demands.size()});
  demands_.insert(demands_.end(), demands.begin(), demands.end());
  return ranges_.size() - 1;
}

std::size_t LinkArbiter::submit_groups(std::span<const DemandGroup> groups) {
  const std::size_t offset = demands_.size();
  std::size_t members = 0;
  for (const auto& g : groups) {
    demands_.insert(demands_.end(), static_cast<std::size_t>(g.count),
                    Demand{g.cap, g.weight});
    members += static_cast<std::size_t>(g.count);
  }
  ranges_.push_back({offset, members});
  return ranges_.size() - 1;
}

void LinkArbiter::allocate() {
  total_ = fair_share_into(capacity_, demands_, allocation_, scratch_);
}

std::span<const BitsPerSecond> LinkArbiter::slice(std::size_t i) const {
  const Range& r = ranges_[i];
  return {allocation_.data() + r.offset, r.count};
}

}  // namespace eadt::net
