// Network topology: the chain of devices a transfer crosses (paper Fig. 9).
//
// Only the device *kinds* matter for the Section 4 analysis: each kind has
// per-packet processing / store-and-forward energy coefficients (Table 1),
// and the route determines how much network energy a transfer induces.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace eadt::net {

enum class DeviceKind {
  kEnterpriseSwitch,
  kEdgeSwitch,
  kMetroRouter,
  kEdgeRouter,
};

[[nodiscard]] const char* to_string(DeviceKind kind) noexcept;

struct NetworkDevice {
  DeviceKind kind;
  std::string name;
};

/// An ordered device chain between two end systems.
class Route {
 public:
  Route() = default;
  explicit Route(std::vector<NetworkDevice> devices) : devices_(std::move(devices)) {}

  [[nodiscard]] std::span<const NetworkDevice> devices() const noexcept { return devices_; }
  [[nodiscard]] std::size_t size() const noexcept { return devices_.size(); }
  [[nodiscard]] std::size_t count(DeviceKind kind) const noexcept;

 private:
  std::vector<NetworkDevice> devices_;
};

/// The three testbed routes of Figure 9.
/// XSEDE: edge switch - enterprise switch - edge router - Internet2 -
///        edge router - enterprise switch - edge switch.
[[nodiscard]] Route xsede_route();
/// FutureGrid: edge switch - metro router x3 (Internet2 core) - edge switch.
[[nodiscard]] Route futuregrid_route();
/// DIDCLAB LAN: a single edge switch.
[[nodiscard]] Route didclab_route();

}  // namespace eadt::net
