// Weighted max-min fair bandwidth allocation.
//
// Each data channel offers a demand (its own CPU/disk/window cap) and a weight
// (its parallel stream count); the bottleneck capacity is divided by
// progressive filling: channels that cannot use their fair share are capped
// and the residue is redistributed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace eadt::net {

struct Demand {
  BitsPerSecond cap = 0.0;  ///< most this channel could use
  double weight = 1.0;      ///< share weight (parallel stream count)
};

struct FairShareResult {
  std::vector<BitsPerSecond> allocation;  ///< per-demand rate, same order
  BitsPerSecond total = 0.0;              ///< sum of allocations
};

/// Reusable workspace for fair_share_into. The allocator runs every tick for
/// every disk pool and the shared link; holding the round-robin active set
/// here (capacity preserved across calls) makes steady-state allocation
/// heap-free. A scratch is cheap state, not a cache: results are identical
/// whether it is fresh or reused.
struct FairShareScratch {
  std::vector<std::size_t> active;
};

/// Weighted max-min fair allocation of `capacity` across `demands`, written
/// into `allocation` (resized to demands.size(); previous contents ignored).
/// Returns the total. Bitwise-identical to fair_share() — same operations in
/// the same order — but allocation-free once `allocation` and `scratch` have
/// warmed to capacity.
BitsPerSecond fair_share_into(BitsPerSecond capacity, std::span<const Demand> demands,
                              std::vector<BitsPerSecond>& allocation,
                              FairShareScratch& scratch);

/// Weighted max-min fair allocation of `capacity` across `demands`.
/// Properties (asserted by tests):
///   * allocation[i] <= demands[i].cap
///   * total <= capacity (+ epsilon)
///   * work-conserving: total == min(capacity, sum of caps)
///   * unconstrained channels receive rate proportional to weight
[[nodiscard]] FairShareResult fair_share(BitsPerSecond capacity,
                                         std::span<const Demand> demands);

}  // namespace eadt::net
