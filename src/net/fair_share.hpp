// Weighted max-min fair bandwidth allocation.
//
// Each data channel offers a demand (its own CPU/disk/window cap) and a weight
// (its parallel stream count); the bottleneck capacity is divided by
// progressive filling: channels that cannot use their fair share are capped
// and the residue is redistributed.
#pragma once

#include <span>
#include <vector>

#include "util/units.hpp"

namespace eadt::net {

struct Demand {
  BitsPerSecond cap = 0.0;  ///< most this channel could use
  double weight = 1.0;      ///< share weight (parallel stream count)
};

struct FairShareResult {
  std::vector<BitsPerSecond> allocation;  ///< per-demand rate, same order
  BitsPerSecond total = 0.0;              ///< sum of allocations
};

/// Weighted max-min fair allocation of `capacity` across `demands`.
/// Properties (asserted by tests):
///   * allocation[i] <= demands[i].cap
///   * total <= capacity (+ epsilon)
///   * work-conserving: total == min(capacity, sum of caps)
///   * unconstrained channels receive rate proportional to weight
[[nodiscard]] FairShareResult fair_share(BitsPerSecond capacity,
                                         std::span<const Demand> demands);

}  // namespace eadt::net
