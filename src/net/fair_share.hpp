// Weighted max-min fair bandwidth allocation.
//
// Each data channel offers a demand (its own CPU/disk/window cap) and a weight
// (its parallel stream count); the bottleneck capacity is divided by
// progressive filling: channels that cannot use their fair share are capped
// and the residue is redistributed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/waterfill.hpp"
#include "util/units.hpp"

namespace eadt::net {

// Demand and DemandGroup live in waterfill.hpp (the solver is the base
// layer); this header re-exports them to the existing call sites.

struct FairShareResult {
  std::vector<BitsPerSecond> allocation;  ///< per-demand rate, same order
  BitsPerSecond total = 0.0;              ///< sum of allocations
};

/// Reusable workspace for fair_share_into. The allocator runs every tick for
/// every disk pool and the shared link; holding the round-robin active set
/// (and, for large rounds, the waterfill solver's buffers) here — capacity
/// preserved across calls — makes steady-state allocation heap-free. A
/// scratch is cheap state, not a cache: results are identical whether it is
/// fresh or reused.
struct FairShareScratch {
  std::vector<std::size_t> active;
  WaterfillSolver solver;
};

/// The pinned per-flow progressive-filling loop — the semantics every golden
/// in the repo was recorded against, kept verbatim. fair_share_into routes
/// small rounds here directly; WaterfillSolver is bitwise-equivalent to this
/// on every input (enforced by tests/test_waterfill.cpp), and the core_micro
/// bench races the solver against it at 10^5-10^6 flows.
BitsPerSecond fair_share_reference_into(BitsPerSecond capacity,
                                        std::span<const Demand> demands,
                                        std::vector<BitsPerSecond>& allocation,
                                        FairShareScratch& scratch);

/// Weighted max-min fair allocation of `capacity` across `demands`, written
/// into `allocation` (resized to demands.size(); previous contents ignored).
/// Returns the total. Bitwise-identical to fair_share() — same values out,
/// whatever the path — and allocation-free once `allocation` and `scratch`
/// have warmed to capacity. Small rounds run the reference loop; rounds of
/// kWaterfillThreshold or more demands run the ratio-sorted waterfill solver
/// (bitwise-identical by contract, and far cheaper when demands repeat).
BitsPerSecond fair_share_into(BitsPerSecond capacity, std::span<const Demand> demands,
                              std::vector<BitsPerSecond>& allocation,
                              FairShareScratch& scratch);

/// Demand count at which fair_share_into switches from the reference loop to
/// the waterfill solver. Session-sized rounds (dozens of channels) stay on
/// the sweep — sorting them would cost more than it saves; fleet-sized
/// arbiter rounds cross the threshold and solve at group cost.
inline constexpr std::size_t kWaterfillThreshold = 512;

/// Weighted max-min fair allocation of `capacity` across `demands`.
/// Properties (asserted by tests):
///   * allocation[i] <= demands[i].cap
///   * total <= capacity (+ epsilon)
///   * work-conserving: total == min(capacity, sum of caps)
///   * unconstrained channels receive rate proportional to weight
[[nodiscard]] FairShareResult fair_share(BitsPerSecond capacity,
                                         std::span<const Demand> demands);

/// Joint arbitration of one shared link across several demand sets (the
/// multi-tenant round of exp::Scheduler): each tenant session submits its
/// per-channel demands, then allocate() runs ONE weighted max-min round over
/// the concatenation, so channels of different tenants contend exactly like
/// channels of one session — stream-count weighted, work-conserving, with no
/// per-tenant reservations. slice(i) returns tenant i's view of the result
/// in submission order. Buffers are reused across rounds (allocation-free
/// once warm, like FairShareScratch). Rounds above kWaterfillThreshold solve
/// through the waterfill path automatically — bitwise-identical, but a fleet
/// of same-shape tenants costs per-group, not per-flow.
class LinkArbiter {
 public:
  /// Start a round. Earlier submissions are discarded.
  void begin_round(BitsPerSecond capacity);
  /// Add one tenant's demands; returns the tenant's slice index.
  std::size_t submit(std::span<const Demand> demands);
  /// Add one tenant's demands as (cap, weight, count) groups — each group
  /// contributes `count` contiguous identical flows to the round, exactly as
  /// if submit() had been called with the expansion. The slice stays
  /// per-flow (member-aligned with the expansion).
  std::size_t submit_groups(std::span<const DemandGroup> groups);
  /// Run the joint fair-share round. Call once per round, after all submits.
  void allocate();
  /// Tenant `i`'s slice of the joint allocation (valid until the next
  /// begin_round). Aligned with the demands it submitted.
  [[nodiscard]] std::span<const BitsPerSecond> slice(std::size_t i) const;
  [[nodiscard]] BitsPerSecond capacity() const noexcept { return capacity_; }
  [[nodiscard]] BitsPerSecond total() const noexcept { return total_; }

 private:
  struct Range {
    std::size_t offset = 0;
    std::size_t count = 0;
  };
  BitsPerSecond capacity_ = 0.0;
  BitsPerSecond total_ = 0.0;
  std::vector<Demand> demands_;
  std::vector<Range> ranges_;
  std::vector<BitsPerSecond> allocation_;
  FairShareScratch scratch_;
};

}  // namespace eadt::net
