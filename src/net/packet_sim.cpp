#include "net/packet_sim.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace eadt::net {
namespace {

struct Flow {
  double cwnd = 1.0;      // segments
  double ssthresh = 0.0;  // segments
  double delivered = 0.0;
  double losses = 0.0;
};

}  // namespace

PacketSimResult simulate_tcp_rounds(const PacketSimConfig& config, int rounds) {
  PacketSimResult result;
  if (rounds <= 0 || config.flows <= 0 || config.mss == 0 ||
      config.path.bandwidth <= 0.0 || config.path.rtt <= 0.0) {
    return result;
  }

  const double seg_bits = to_bits(config.mss);
  // Pipe capacity per round in segments, and the drop-tail queue behind it.
  const double pipe = config.path.bandwidth * config.path.rtt / seg_bits;
  const double queue = std::max(1.0, pipe * config.queue_bdp_fraction);
  const double wnd_max =
      std::max(1.0, static_cast<double>(config.path.tcp_buffer) /
                        static_cast<double>(config.mss));

  std::vector<Flow> flows(static_cast<std::size_t>(config.flows));
  for (auto& f : flows) {
    f.cwnd = std::min(static_cast<double>(config.initial_window), wnd_max);
    f.ssthresh = wnd_max;  // first loss will set the real threshold
  }

  std::vector<double> per_round(static_cast<std::size_t>(rounds), 0.0);
  for (int r = 0; r < rounds; ++r) {
    double offered = 0.0;
    for (const auto& f : flows) offered += std::min(f.cwnd, wnd_max);
    if (offered <= 0.0) break;

    // The link drains at most `pipe` segments per RTT; beyond pipe + queue
    // the tail drops, spread across flows in proportion to their windows.
    const double drain_share = std::min(1.0, pipe / offered);
    const double overflow = std::max(0.0, offered - (pipe + queue));

    double round_delivered = 0.0;
    for (auto& f : flows) {
      const double sent = std::min(f.cwnd, wnd_max);
      const double delivered = sent * drain_share;
      f.delivered += delivered;
      round_delivered += delivered;

      if (overflow > 0.0) {
        // Loss round: multiplicative decrease.
        f.losses += overflow * (sent / offered);
        f.ssthresh = std::max(2.0, f.cwnd / 2.0);
        f.cwnd = f.ssthresh;
      } else if (f.cwnd < f.ssthresh) {
        f.cwnd = std::min({f.cwnd * 2.0, f.ssthresh, wnd_max});  // slow start
      } else {
        f.cwnd = std::min(f.cwnd + 1.0, wnd_max);  // congestion avoidance
      }
    }
    per_round[static_cast<std::size_t>(r)] = round_delivered;
  }

  result.rounds = rounds;
  result.simulated_time = static_cast<double>(rounds) * config.path.rtt;
  result.flows.reserve(flows.size());
  double total_segments = 0.0;
  for (const auto& f : flows) {
    FlowStats stats;
    stats.segments_delivered = f.delivered;
    stats.losses = f.losses;
    stats.final_cwnd = f.cwnd;
    stats.goodput = f.delivered * seg_bits / result.simulated_time;
    total_segments += f.delivered;
    result.flows.push_back(stats);
  }
  result.aggregate_goodput = total_segments * seg_bits / result.simulated_time;

  // Ramp detection: first round at >= 90 % of the steady per-round rate
  // (measured over the last half of the run).
  const std::size_t half = per_round.size() / 2;
  double steady = 0.0;
  if (half > 0) {
    steady = std::accumulate(per_round.begin() + static_cast<std::ptrdiff_t>(half),
                             per_round.end(), 0.0) /
             static_cast<double>(per_round.size() - half);
  }
  result.ramp_rounds = rounds;
  for (std::size_t r = 0; r < per_round.size(); ++r) {
    if (steady > 0.0 && per_round[r] >= 0.9 * steady) {
      result.ramp_rounds = static_cast<int>(r);
      break;
    }
  }
  return result;
}

BitsPerSecond packet_sim_steady_goodput(const PathSpec& path, int flows) {
  PacketSimConfig config;
  config.path = path;
  config.flows = flows;
  const int warmup = 200;
  const int measured = 400;
  const auto full = simulate_tcp_rounds(config, warmup + measured);
  const auto head = simulate_tcp_rounds(config, warmup);
  if (full.simulated_time <= head.simulated_time) return 0.0;
  double full_segments = 0.0, head_segments = 0.0;
  for (const auto& f : full.flows) full_segments += f.segments_delivered;
  for (const auto& f : head.flows) head_segments += f.segments_delivered;
  const double bits = (full_segments - head_segments) * to_bits(config.mss);
  return bits / (full.simulated_time - head.simulated_time);
}

}  // namespace eadt::net
