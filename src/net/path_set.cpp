#include "net/path_set.hpp"

namespace eadt::net {

int PathSet::index_of(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < options_.size(); ++i) {
    if (options_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace eadt::net
