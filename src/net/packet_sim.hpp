// Round-based packet-level TCP simulator — the validation substrate for the
// fluid-flow model.
//
// The transfer engine (src/proto) treats a TCP stream as a fluid capped at
// buffer/RTT with a logarithmic slow-start penalty. Those are *assumptions*;
// this module checks them against a finer-grained model: NewReno-style flows
// (slow start, congestion avoidance, multiplicative decrease) sharing a
// drop-tail bottleneck queue, advanced in RTT rounds — the standard
// "round model" of TCP analysis.
//
// Within each round every flow sends its congestion window; if the aggregate
// exceeds the pipe (BDP + queue), the overflow is dropped across flows in
// proportion to their windows and affected flows halve. Otherwise windows
// grow: exponentially below ssthresh, by one segment per RTT above it.
//
// Caveats (documented, inherent to round models): losses are synchronised
// within a round, timeouts and SACK dynamics are not modelled, and RTT is
// constant. That is exactly the fidelity needed to validate steady-state
// throughput and ramp duration — not burst microdynamics.
//
// bench/validation_tcp_model compares this against net::stream_window_cap()
// and net::slow_start_penalty(); tests pin the agreement.
#pragma once

#include <vector>

#include "net/tcp_model.hpp"
#include "util/units.hpp"

namespace eadt::net {

struct PacketSimConfig {
  PathSpec path;                 ///< capacity, RTT, per-stream window cap
  Bytes mss = 1460;              ///< segment payload size
  double queue_bdp_fraction = 1.0;  ///< drop-tail queue size as a fraction of BDP
  int flows = 1;
  /// Initial congestion window in segments (RFC 6928-ish default).
  int initial_window = 10;
};

struct FlowStats {
  double segments_delivered = 0.0;
  double losses = 0.0;
  double final_cwnd = 0.0;      ///< segments
  BitsPerSecond goodput = 0.0;  ///< delivered payload over the simulated time
};

struct PacketSimResult {
  Seconds simulated_time = 0.0;
  int rounds = 0;
  std::vector<FlowStats> flows;
  BitsPerSecond aggregate_goodput = 0.0;
  /// Rounds until the aggregate first reached 90 % of its steady rate.
  int ramp_rounds = 0;

  [[nodiscard]] Seconds ramp_time(const PathSpec& path) const {
    return static_cast<double>(ramp_rounds) * path.rtt;
  }
};

/// Run `rounds` RTT rounds of the round model.
[[nodiscard]] PacketSimResult simulate_tcp_rounds(const PacketSimConfig& config,
                                                  int rounds);

/// Convenience: steady-state goodput of one flow on `path` (long run,
/// ramp excluded) — the quantity stream_window_cap() approximates.
[[nodiscard]] BitsPerSecond packet_sim_steady_goodput(const PathSpec& path,
                                                      int flows = 1);

}  // namespace eadt::net
