// Scalable weighted max-min waterfill solver.
//
// The progressive-filling loop in fair_share.cpp sweeps every surviving flow
// once per round, which is O(N * rounds) — fine for a session's dozens of
// channels, a bottleneck for a fleet of millions of per-request flows. This
// solver computes the same allocation two ways faster:
//
//   * a waterlevel path over ratio-sorted demands: each round caps a sorted
//     prefix instead of re-scanning every survivor, so the whole fill is
//     O(N log N) for the sort plus O(N) of prefix advancement;
//   * a "dist" entry point taking (demand, weight, count) groups, so a
//     tenant's k identical parallel streams cost one entry instead of k
//     (the heyp-agents ValCount idea) — per-round work drops from the flow
//     count to the group count.
//
// The contract is strict: allocations are BITWISE identical to the per-flow
// reference loop (fair_share_reference_into) on every input, dist mode
// included (a group behaves exactly like `count` contiguous copies of its
// demand). That matters because the reference feeds every golden in the
// repo. Floating-point addition is not associative, so the solver cannot
// simply sum in a different order; instead it
//
//   1. keeps the capacity residue exact by replaying the reference's
//      subtractions in (round, submission-index) order — cheap, because each
//      flow is subtracted at most once and k identical subtractions are a
//      k-fold scalar replay with no memory traffic;
//   2. tracks the reference's per-round weight resum with a certified error
//      interval: when every cap/no-cap decision is provably identical under
//      both interval endpoints, the round is resolved from the sorted prefix
//      alone; when any demand lands inside the uncertainty band (or any
//      input is non-finite), the round falls back to an exact index-order
//      replay of the reference sweep — identical by construction;
//   3. computes the terminal waterlevel (the only weight sum whose bits are
//      observable in the output) by exact replay.
//
// tests/test_waterfill.cpp is the differential battery enforcing bitwise
// equality on randomized grids; docs/MODEL.md §15 has the full argument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace eadt::net {

/// One flow's offer into a max-min round (defined here so the solver is the
/// base layer; fair_share.hpp re-exports it to existing callers).
struct Demand {
  BitsPerSecond cap = 0.0;  ///< most this channel could use
  double weight = 1.0;      ///< share weight (parallel stream count)
};

/// `count` flows with identical (cap, weight), collapsed into one entry.
/// Semantically exactly `count` contiguous copies of the Demand — the dist
/// solver produces the allocation each of those copies would have received
/// from the per-flow reference, bit for bit.
struct DemandGroup {
  BitsPerSecond cap = 0.0;
  double weight = 1.0;
  std::uint64_t count = 1;
};

/// Reusable waterfill workspace + entry points. Like FairShareScratch, the
/// solver is cheap state, not a cache: results are identical whether it is
/// fresh or reused, and buffers keep their capacity across calls so
/// steady-state solving is allocation-free once warm.
class WaterfillSolver {
 public:
  /// Per-flow entry: allocation[i] for demands[i], bitwise identical to
  /// fair_share_reference_into on the same inputs. Internally collapses
  /// adjacent identical demands into groups, so duplicate-demand clusters
  /// (per-channel parallel streams, same-shape tenants) cost one entry.
  BitsPerSecond solve(BitsPerSecond capacity, std::span<const Demand> demands,
                      std::vector<BitsPerSecond>& allocation);

  /// Dist entry: allocation[g] is the per-member rate of groups[g] — the
  /// value each of its `count` flows would receive from the per-flow
  /// reference run on the expanded demand list (groups in order, members
  /// contiguous). Returns the reference's total, bit for bit.
  BitsPerSecond solve_dist(BitsPerSecond capacity,
                           std::span<const DemandGroup> groups,
                           std::vector<BitsPerSecond>& allocation);

  /// Introspection for tests and benches: how the last solve resolved.
  struct Stats {
    std::uint64_t rounds = 0;           ///< filling rounds executed
    std::uint64_t certified_rounds = 0; ///< resolved from the sorted prefix
    std::uint64_t exact_rounds = 0;     ///< fell back to index-order replay
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Group {
    double cap = 0.0;
    double weight = 0.0;
    std::uint64_t count = 0;
    double key = 0.0;  ///< fl(cap / weight), the sort ratio
    bool capped = false;
  };

  /// Shared core over groups_; writes per-group member rates into `out`
  /// (pre-sized, zeroed) and returns the replayed total.
  BitsPerSecond run(BitsPerSecond capacity, std::vector<BitsPerSecond>& out);

  /// Exact replay of the reference's per-round weight resum: index-ordered,
  /// k-fold per group, over the surviving active set.
  [[nodiscard]] double replay_weight_sum() const;

  std::vector<Group> groups_;
  std::vector<std::size_t> active_;        ///< surviving ids, index order
  std::vector<std::size_t> order_;         ///< active ids, (key, index) order
  std::vector<std::size_t> round_capped_;  ///< this round's certified prefix
  std::vector<BitsPerSecond> group_out_;   ///< per-group rates before expansion
  bool force_exact_ = false;               ///< non-finite input: replay only
  Stats stats_;
};

}  // namespace eadt::net
