#include "net/waterfill.hpp"

#include <algorithm>
#include <cmath>

namespace eadt::net {
namespace {

// Certification margins. kSlop is the multiplicative guard band around the
// waterlevel interval — orders of magnitude wider than the few-ulp rounding
// it must absorb (2^-52 ~ 2.2e-16) and orders of magnitude narrower than
// real demand gaps, so certified rounds are the overwhelmingly common case.
// kEps scales the tracked weight-resum error bound.
constexpr double kSlop = 1e-12;
constexpr double kEps = 2.3e-16;

// k-fold sequential `s += v`, bitwise identical to the loop the reference
// runs over k contiguous identical flows. Early out: once fl(s + v) == s the
// addition is absorbed and every further repetition is a no-op with the
// same result.
inline double repeat_add(double s, double v, std::uint64_t k) {
  for (; k > 0; --k) {
    const double next = s + v;
    if (next == s) return s;
    s = next;
  }
  return s;
}

inline double repeat_sub(double s, double v, std::uint64_t k) {
  for (; k > 0; --k) {
    const double next = s - v;
    if (next == s) return s;
    s = next;
  }
  return s;
}

}  // namespace

double WaterfillSolver::replay_weight_sum() const {
  double w = 0.0;
  for (const std::size_t g : active_) {
    if (groups_[g].capped) continue;
    w = repeat_add(w, groups_[g].weight, groups_[g].count);
  }
  return w;
}

BitsPerSecond WaterfillSolver::run(BitsPerSecond capacity,
                                   std::vector<BitsPerSecond>& out) {
  stats_ = {};
  // Mirrors the reference's early return: no demands or no capacity leaves
  // the zeroed allocation untouched and skips the final accumulate.
  if (groups_.empty() || capacity <= 0.0) return 0.0;

  active_.clear();
  bool finite = std::isfinite(capacity);
  double member_total = 0.0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    auto& grp = groups_[g];
    grp.capped = false;
    if (!(grp.cap > 0.0 && grp.weight > 0.0) || grp.count == 0) continue;
    active_.push_back(g);
    grp.key = grp.cap / grp.weight;
    member_total += static_cast<double>(grp.count);
    finite = finite && std::isfinite(grp.cap) && std::isfinite(grp.weight);
  }
  force_exact_ = !finite;

  std::size_t start = 0;
  if (!force_exact_) {
    order_.assign(active_.begin(), active_.end());
    std::sort(order_.begin(), order_.end(),
              [this](std::size_t a, std::size_t b) {
                if (groups_[a].key != groups_[b].key)
                  return groups_[a].key < groups_[b].key;
                return a < b;
              });
  } else {
    order_.clear();
  }

  double remaining = capacity;  // exact at all times: replayed subtractions
  // w_tilde tracks the reference's per-round index-ordered weight resum. It
  // is never exact — seeded from per-group products (O(groups), not the
  // O(members) replay) — only bounded: the kEps * ops * scale budget covers
  // both the reference's member-by-member rounding and ours (ops counts the
  // resum additions on each side, doubled for headroom). Rounds whose
  // decisions need better than this bound replay the resum exactly.
  double w_tilde = 0.0;
  for (const std::size_t g : active_) {
    w_tilde += groups_[g].weight * static_cast<double>(groups_[g].count);
  }
  const double scale = 2.0 * w_tilde;
  double ops = 2.0 * member_total + 16.0;

  std::size_t live = active_.size();
  while (live > 0 && remaining > 1e-9) {
    ++stats_.rounds;
    const double err = kEps * ops * scale;
    bool exact = force_exact_ || !(w_tilde - err > 0.0);
    if (!exact) {
      // The reference's waterlevel this round lies in [pw_lo, pw_hi]; any
      // demand whose cap/no-cap decision is identical at both endpoints is
      // certified without replaying the resum.
      const double pw_lo = remaining / (w_tilde + err) * (1.0 - kSlop);
      const double pw_hi = remaining / (w_tilde - err) * (1.0 + kSlop);
      const double stop_key = pw_hi * (1.0 + kSlop);
      round_capped_.clear();
      std::size_t p = start;
      bool uncertain = false;
      while (p < order_.size()) {
        const std::size_t g = order_[p];
        if (groups_[g].capped) {  // stale entry left behind by an exact round
          ++p;
          continue;
        }
        // Keys ascend, so the first one past the band clears the whole tail.
        if (groups_[g].key > stop_key) break;
        if (groups_[g].cap <= pw_lo * groups_[g].weight * (1.0 - kSlop)) {
          round_capped_.push_back(g);
          ++p;
          continue;
        }
        uncertain = true;
        break;
      }
      if (!uncertain) {
        ++stats_.certified_rounds;
        if (round_capped_.empty()) {
          // Certified: nobody caps. This is the reference's terminal round —
          // the one weight resum whose bits reach the output — so replay it
          // exactly and give each survivor its weighted waterlevel.
          const double w_exact = replay_weight_sum();
          if (w_exact <= 0.0) break;  // the reference's division guard
          const double pw = remaining / w_exact;
          for (const std::size_t g : active_) {
            if (!groups_[g].capped) out[g] = pw * groups_[g].weight;
          }
          break;
        }
        // Certified capped prefix: replay the reference's capacity
        // subtractions in submission-index order (ids are positions, so a
        // plain sort restores it), k-fold per group.
        std::sort(round_capped_.begin(), round_capped_.end());
        double removed = 0.0;
        for (const std::size_t g : round_capped_) {
          out[g] = groups_[g].cap;
          groups_[g].capped = true;
          remaining = repeat_sub(remaining, groups_[g].cap, groups_[g].count);
          removed += groups_[g].weight * static_cast<double>(groups_[g].count);
        }
        live -= round_capped_.size();
        start = p;
        w_tilde -= removed;
        ops += 4.0 + static_cast<double>(round_capped_.size());
        continue;
      }
      exact = true;
    }
    if (exact) {
      // Exact round: index-order replay of the reference sweep, op for op.
      // Also the only path non-finite inputs ever take.
      ++stats_.exact_rounds;
      const double w_exact = replay_weight_sum();
      if (w_exact <= 0.0) break;  // all-zero-weight guard, as the reference
      const double pw = remaining / w_exact;
      bool someone_capped = false;
      double removed = 0.0;
      for (const std::size_t g : active_) {
        auto& grp = groups_[g];
        if (grp.capped) continue;
        const double share = pw * grp.weight;
        if (grp.cap <= share) {  // headroom is cap - 0.0 == cap, bitwise
          out[g] = grp.cap;
          grp.capped = true;
          remaining = repeat_sub(remaining, grp.cap, grp.count);
          removed += grp.weight * static_cast<double>(grp.count);
          someone_capped = true;
          --live;
        }
      }
      if (!someone_capped) {
        for (const std::size_t g : active_) {
          if (!groups_[g].capped) out[g] = pw * groups_[g].weight;
        }
        break;
      }
      // Resync the tracked resum from this round's exact value.
      w_tilde = w_exact - removed;
      ops += 4.0 + static_cast<double>(active_.size());
    }
  }

  // The reference's final std::accumulate over the expanded allocation,
  // replayed k-fold in index order. All values are >= +0.0, so adding the
  // zeros of inactive or starved members never changes a bit — skip them.
  double total = 0.0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (out[g] != 0.0) total = repeat_add(total, out[g], groups_[g].count);
  }
  return total;
}

BitsPerSecond WaterfillSolver::solve(BitsPerSecond capacity,
                                     std::span<const Demand> demands,
                                     std::vector<BitsPerSecond>& allocation) {
  allocation.assign(demands.size(), 0.0);
  if (demands.empty() || capacity <= 0.0) return 0.0;
  // Run-length collapse: adjacent bitwise-identical demands form one group,
  // so duplicate-heavy flow lists (per-channel parallel streams, same-shape
  // tenants) solve at group cost. NaNs never compare equal, so they never
  // merge and take the exact-replay path untouched.
  groups_.clear();
  for (const Demand& d : demands) {
    if (!groups_.empty() && groups_.back().cap == d.cap &&
        groups_.back().weight == d.weight) {
      ++groups_.back().count;
    } else {
      groups_.push_back({d.cap, d.weight, 1});
    }
  }
  group_out_.assign(groups_.size(), 0.0);
  const BitsPerSecond total = run(capacity, group_out_);
  std::size_t i = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (std::uint64_t k = 0; k < groups_[g].count; ++k) {
      allocation[i++] = group_out_[g];
    }
  }
  return total;
}

BitsPerSecond WaterfillSolver::solve_dist(BitsPerSecond capacity,
                                          std::span<const DemandGroup> groups,
                                          std::vector<BitsPerSecond>& allocation) {
  allocation.assign(groups.size(), 0.0);
  if (groups.empty() || capacity <= 0.0) return 0.0;
  groups_.clear();
  groups_.reserve(groups.size());
  for (const auto& g : groups) groups_.push_back({g.cap, g.weight, g.count});
  return run(capacity, allocation);
}

}  // namespace eadt::net
