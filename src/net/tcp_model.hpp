// Steady-state TCP stream model used by the fluid-flow simulator.
//
// The paper's tuning formulas reason about exactly these quantities:
//   * per-stream window cap  = tcp_buffer / RTT  (why parallelism helps when
//     buffer < BDP),
//   * per-file control-channel gaps amortised by pipelining (why pipelining
//     rescues small-file transfers),
//   * slow-start ramp for cold connections (why unpipelined small files over
//     long RTT collapse),
//   * congestion-loss degradation when the offered load oversubscribes the
//     bottleneck (why "too many streams" hurt).
#pragma once

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace eadt::net {

/// End-to-end path characteristics (the bottleneck view of Figure 1).
struct PathSpec {
  BitsPerSecond bandwidth = 0.0;  ///< bottleneck capacity
  Seconds rtt = 0.0;              ///< round-trip time
  Bytes tcp_buffer = 0;           ///< max TCP buffer (window) per stream
  Bytes mtu = 1500;               ///< for packet-count-based device energy
  /// Standing cross-traffic on the bottleneck (other tenants); the transfer
  /// competes for what is left.
  BitsPerSecond background_traffic = 0.0;

  /// Bandwidth-delay product in bytes (of the full link, as the tuner sees it).
  [[nodiscard]] Bytes bdp() const { return bdp_bytes(bandwidth, rtt); }
  /// Capacity actually available to this transfer.
  [[nodiscard]] BitsPerSecond available_bandwidth() const {
    return bandwidth > background_traffic ? bandwidth - background_traffic : 0.0;
  }
};

/// Congestion behaviour knobs for a path.
struct CongestionSpec {
  /// Goodput degradation strength once aggregate demand exceeds capacity
  /// (retransmissions, queue overflow). 0 disables.
  double loss_beta = 0.25;
  /// Stream count past which per-stream bookkeeping starts to bite.
  int stream_knee = 48;
  /// Strength of the per-stream overhead past the knee.
  double stream_beta = 0.05;
};

/// Maximum steady-state rate of one TCP stream on `path`:
/// window-limited (buffer/RTT) and never above link capacity.
[[nodiscard]] inline BitsPerSecond stream_window_cap(const PathSpec& path) {
  if (path.rtt <= 0.0) return path.bandwidth;
  const BitsPerSecond window_limit = to_bits(path.tcp_buffer) / path.rtt;
  return std::min(window_limit, path.bandwidth);
}

/// Extra latency a *cold* connection pays ramping its congestion window for a
/// file of `file_size` (doublings from the initial window, one RTT each).
/// Warm (pipelined, back-to-back) channels skip this — that is precisely the
/// "keeps the transfer channel active" benefit the paper ascribes to
/// pipelining. `warm_fraction` models data-channel caching: GridFTP reuses
/// data connections, so even "cold" files keep part of the window.
[[nodiscard]] inline Seconds slow_start_penalty(const PathSpec& path, Bytes file_size,
                                                double warm_fraction = 0.5) {
  constexpr Bytes kInitialWindow = 64 * kKB;
  if (path.rtt <= 0.0 || file_size <= kInitialWindow) return 0.0;
  const Bytes target = std::min(file_size, std::max<Bytes>(path.bdp(), kInitialWindow));
  const double doublings = std::log2(static_cast<double>(target) /
                                     static_cast<double>(kInitialWindow));
  return path.rtt * std::max(0.0, doublings) * (1.0 - std::clamp(warm_fraction, 0.0, 1.0));
}

/// Control-channel gap per file on a channel running pipelining depth `pp`:
/// with no pipelining each file waits a full RTT for its command/ack exchange;
/// depth pp keeps pp commands in flight, dividing the stall.
[[nodiscard]] inline Seconds control_gap_per_file(const PathSpec& path, int pipelining) {
  const int pp = std::max(1, pipelining);
  return path.rtt / static_cast<double>(pp);
}

/// Multiplicative goodput efficiency in (0, 1] given the aggregate demand the
/// streams would offer and how many streams are open.
[[nodiscard]] inline double congestion_efficiency(const CongestionSpec& c,
                                                  BitsPerSecond aggregate_demand,
                                                  BitsPerSecond capacity, int streams) {
  double eff = 1.0;
  if (capacity > 0.0 && aggregate_demand > capacity && c.loss_beta > 0.0) {
    const double over = (aggregate_demand - capacity) / capacity;
    eff /= 1.0 + c.loss_beta * over * over / (1.0 + over);  // saturating quadratic
  }
  if (streams > c.stream_knee && c.stream_beta > 0.0 && c.stream_knee > 0) {
    const double extra = static_cast<double>(streams - c.stream_knee) /
                         static_cast<double>(c.stream_knee);
    eff /= 1.0 + c.stream_beta * extra;
  }
  return eff;
}

}  // namespace eadt::net
