// Alternate-route catalogues for path-resilient transfers.
//
// A transfer job is normally pinned to one DTN pair on one route. A PathSet
// lists the routes that *could* carry the same endpoints: the primary the
// testbed was built with, plus backups with their own link characteristics
// (PathSpec), device chain (Route), and tariff zone. The resilience layer
// (exp::HealthMonitor + supervisor/scheduler failover) picks among them;
// this header only describes them.
//
// net/ sits below proto/, so a PathOption holds pure network identity — the
// environment re-binding (swapping a proto::Environment's path and route)
// lives with the code that owns environments.
#pragma once

#include <string>
#include <vector>

#include "net/tcp_model.hpp"
#include "net/topology.hpp"

namespace eadt::net {

/// One candidate route between a fixed pair of end systems.
struct PathOption {
  std::string name;     ///< stable label, used in traces and decisions
  PathSpec path;        ///< link characteristics of this route
  Route route;          ///< device chain, drives network-device energy
  int tariff_zone = 0;  ///< which tariff schedule bills energy on this route
};

/// An ordered catalogue of alternate routes. Index 0 is the primary — the
/// path the job would use if resilience were disabled. An empty PathSet
/// means "single-path, no failover", and every consumer must behave exactly
/// as if the feature did not exist.
class PathSet {
 public:
  PathSet() = default;
  explicit PathSet(std::vector<PathOption> options) : options_(std::move(options)) {}

  [[nodiscard]] bool empty() const noexcept { return options_.empty(); }
  [[nodiscard]] int size() const noexcept { return static_cast<int>(options_.size()); }
  [[nodiscard]] const PathOption& option(int index) const { return options_.at(static_cast<std::size_t>(index)); }
  [[nodiscard]] const std::vector<PathOption>& options() const noexcept { return options_; }

  void add(PathOption option) { options_.push_back(std::move(option)); }

  /// Index of the option with the given name, or -1.
  [[nodiscard]] int index_of(const std::string& name) const noexcept;

 private:
  std::vector<PathOption> options_;
};

}  // namespace eadt::net
