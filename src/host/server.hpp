// End-system (data transfer node) model.
//
// Maps what a transfer *does* on a server — resident processes (one per data
// channel), threads (parallel streams), pushed throughput, buffered memory —
// to component utilizations (CPU / memory / disk / NIC) and to throughput
// caps. The power models in src/power consume these utilizations exactly as
// the paper's models consume OS-reported utilization (Section 2.2).
#pragma once

#include <string>

#include "util/units.hpp"

namespace eadt::host {

enum class DiskKind {
  kParallelArray,  ///< striped/parallel storage: aggregate IO grows with concurrency
  kSingleDisk,     ///< one spindle: concurrent access causes seek thrash
};

struct DiskSpec {
  DiskKind kind = DiskKind::kParallelArray;
  BitsPerSecond max_bandwidth = 0.0;
  /// kParallelArray: concurrency ramp constant; aggregate = max * k / (k + ramp).
  double ramp = 4.0;
  /// kSingleDisk: thrash slope; aggregate = max / (1 + alpha * (k - 1)).
  double thrash_alpha = 0.12;
};

struct ServerSpec {
  std::string name;
  int cores = 4;
  Watts cpu_tdp = 115.0;
  BitsPerSecond nic_speed = 0.0;
  Bytes mem_total = 32ULL * 1024 * 1024 * 1024;
  DiskSpec disk;

  /// Protocol-processing throughput one fully-loaded core can sustain.
  BitsPerSecond per_core_goodput = 0.0;
  /// Single-stream storage ceiling: one stream reads/writes one file region
  /// at this rate at most (striped file systems included). A channel with p
  /// streams tops out at p times this, no matter how idle the server is.
  /// 0 disables the ceiling.
  BitsPerSecond per_stream_disk = 0.0;
  /// CPU utilization (whole machine, 0-1) per resident transfer process.
  double proc_base_util = 0.015;
  /// CPU utilization per Gbps of goodput pushed (single resident process).
  double util_per_gbps = 0.08;
  /// Contention growth of the per-Gbps cost: with k resident transfer
  /// processes the effective cost is util_per_gbps * (1 + util_contention *
  /// (k - 1)) — cache thrash, interrupt spreading and scheduler churn make a
  /// byte moved by a crowded server dearer than one moved by a lone channel.
  /// This is what lets MinE's single-channel Large chunk move most of the
  /// bytes cheaply while a 12-channel ProMC run pays a premium per byte.
  double util_contention = 0.05;
  /// Context-switch throughput penalty slope once threads exceed cores.
  double cs_alpha = 0.05;
  /// Extra CPU utilization per oversubscribed thread (scheduling overhead).
  double cs_util_per_thread = 0.01;
  double mem_base_util = 0.05;
  double mem_util_per_gbps = 0.01;
};

/// What a transfer currently imposes on one server (one fluid tick's view).
struct HostLoad {
  int processes = 0;         ///< resident data channels
  int threads = 0;           ///< total parallel streams
  BitsPerSecond goodput = 0.0;
  BitsPerSecond disk_io = 0.0;
  Bytes buffered = 0;        ///< TCP buffers pinned by the channels
};

/// Component utilizations, each clamped to [0, 1].
struct Utilization {
  double cpu = 0.0;
  double mem = 0.0;
  double disk = 0.0;
  double nic = 0.0;
};

/// Aggregate disk bandwidth available when `k` channels access storage.
[[nodiscard]] BitsPerSecond disk_aggregate_bandwidth(const DiskSpec& disk, int k);

/// Context-switch slowdown factor (>= 1) for `threads` on `cores`.
[[nodiscard]] double context_switch_factor(const ServerSpec& spec, int threads);

/// CPU-side goodput cap for ONE channel running `parallelism` streams while
/// the server hosts `processes` channels / `threads` streams in total.
/// A channel's streams can spread over multiple cores, but all channels share
/// the core pool and pay the oversubscription penalty.
[[nodiscard]] BitsPerSecond channel_cpu_cap(const ServerSpec& spec, int processes,
                                            int threads, int parallelism);

/// Storage-side ceiling for one channel of `parallelism` streams
/// (+infinity when the spec disables it).
[[nodiscard]] BitsPerSecond channel_stream_cap(const ServerSpec& spec, int parallelism);

/// Number of "active cores" n used by the Eq. 2 CPU power coefficient.
[[nodiscard]] int active_cores(const ServerSpec& spec, const HostLoad& load);

/// Map a load to component utilizations.
[[nodiscard]] Utilization utilization(const ServerSpec& spec, const HostLoad& load);

}  // namespace eadt::host
