#include "host/server.hpp"

#include <algorithm>
#include <limits>

namespace eadt::host {

BitsPerSecond disk_aggregate_bandwidth(const DiskSpec& disk, int k) {
  if (k <= 0 || disk.max_bandwidth <= 0.0) return 0.0;
  switch (disk.kind) {
    case DiskKind::kParallelArray: {
      const double kk = static_cast<double>(k);
      return disk.max_bandwidth * kk / (kk + disk.ramp);
    }
    case DiskKind::kSingleDisk: {
      const double kk = static_cast<double>(k);
      return disk.max_bandwidth / (1.0 + disk.thrash_alpha * (kk - 1.0));
    }
  }
  return 0.0;
}

double context_switch_factor(const ServerSpec& spec, int threads) {
  if (threads <= spec.cores || spec.cores <= 0) return 1.0;
  const double over = static_cast<double>(threads - spec.cores) /
                      static_cast<double>(spec.cores);
  return 1.0 + spec.cs_alpha * over;
}

BitsPerSecond channel_cpu_cap(const ServerSpec& spec, int processes, int threads,
                              int parallelism) {
  if (processes <= 0 || spec.per_core_goodput <= 0.0) return 0.0;
  const int p = std::max(1, parallelism);
  const int total_threads = std::max(threads, p);
  // Core share available to this channel's streams: each stream can occupy at
  // most one core, and the core pool is divided across all streams.
  const double core_share = std::min(
      static_cast<double>(p),
      static_cast<double>(p) * static_cast<double>(spec.cores) /
          static_cast<double>(std::max(total_threads, spec.cores)));
  return spec.per_core_goodput * core_share / context_switch_factor(spec, total_threads);
}

BitsPerSecond channel_stream_cap(const ServerSpec& spec, int parallelism) {
  if (spec.per_stream_disk <= 0.0) return std::numeric_limits<double>::infinity();
  return spec.per_stream_disk * static_cast<double>(std::max(1, parallelism));
}

int active_cores(const ServerSpec& spec, const HostLoad& load) {
  if (load.processes <= 0) return 0;
  const int busy = std::max(load.processes, load.threads > 0 ? load.threads : 1);
  return std::clamp(busy, 1, spec.cores);
}

Utilization utilization(const ServerSpec& spec, const HostLoad& load) {
  Utilization u;
  if (load.processes <= 0) return u;

  const double gbps = to_gbps(load.goodput);
  const double contention =
      1.0 + spec.util_contention * static_cast<double>(load.processes - 1);
  double cpu = static_cast<double>(load.processes) * spec.proc_base_util +
               gbps * spec.util_per_gbps * contention;
  if (load.threads > spec.cores) {
    cpu += static_cast<double>(load.threads - spec.cores) * spec.cs_util_per_thread;
  }
  u.cpu = std::clamp(cpu, 0.0, 1.0);

  double mem = spec.mem_base_util + gbps * spec.mem_util_per_gbps;
  if (spec.mem_total > 0) {
    mem += static_cast<double>(load.buffered) / static_cast<double>(spec.mem_total);
  }
  u.mem = std::clamp(mem, 0.0, 1.0);

  const BitsPerSecond disk_max = disk_aggregate_bandwidth(spec.disk, 1) > 0.0
                                     ? spec.disk.max_bandwidth
                                     : 0.0;
  u.disk = disk_max > 0.0 ? std::clamp(load.disk_io / disk_max, 0.0, 1.0) : 0.0;
  u.nic = spec.nic_speed > 0.0 ? std::clamp(load.goodput / spec.nic_speed, 0.0, 1.0) : 0.0;
  return u;
}

}  // namespace eadt::host
