// Transfer service: a provider runs tonight's replication queue — a physics
// archive on a deadline, two green bulk mirrors, an SLA customer, and a
// budget-capped backup — and compares queue orderings against its power bill.
#include <iostream>

#include "exp/service.hpp"
#include "util/table.hpp"

int main() {
  using namespace eadt;

  auto testbed = testbeds::xsede();
  testbed.recipe.total_bytes = 10ULL * kGB;  // demo-sized jobs
  for (auto& band : testbed.recipe.bands) {
    band.max_size = std::max(band.max_size / 8, band.min_size * 2);
  }

  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  exp::TransferService service(testbed, 0.0, cfg);
  std::cout << "service reference rate: "
            << Table::num(to_mbps(service.reference_rate()), 0) << " Mbps\n\n";

  // Time-of-use tariff: evening peak at $0.32/kWh, night at $0.06, else $0.12.
  // The nightly queue kicks off at 20:30 — the first jobs land in the peak.
  const auto tariff = power::Tariff::time_of_use(
      0.12, {{17.0, 21.0, 0.32}, {22.0, 6.0, 0.06}});
  service.set_tariff(tariff, 20.5 * 3600.0);

  auto dataset_of = [&](std::uint64_t seed) {
    auto t = testbed;
    t.dataset_seed = seed;
    return t.make_dataset();
  };

  std::vector<exp::TransferJob> jobs;
  jobs.push_back({"physics-archive", dataset_of(1), exp::JobPolicy::kDeadline, 0, 0, 12});
  jobs.push_back({"mirror-a", dataset_of(2), exp::JobPolicy::kGreen, 0, 0, 12});
  jobs.push_back({"sla-customer", dataset_of(3), exp::JobPolicy::kSla, 75.0, 0, 12});
  jobs.push_back({"mirror-b", dataset_of(4), exp::JobPolicy::kGreen, 0, 0, 12});
  exp::TransferJob backup{"capped-backup", dataset_of(5),
                          exp::JobPolicy::kEnergyBudget, 0, 2100.0, 12};
  jobs.push_back(std::move(backup));

  struct OrderCase {
    const char* name;
    exp::QueueOrder order;
  };
  for (const OrderCase oc : {OrderCase{"FIFO", exp::QueueOrder::kFifo},
                             OrderCase{"shortest-first", exp::QueueOrder::kShortestFirst},
                             OrderCase{"green-first", exp::QueueOrder::kGreenFirst}}) {
    const auto report = service.run_queue(jobs, oc.order);
    std::cout << "queue order: " << oc.name << "\n";
    Table table({"job", "policy", "start s", "end s", "Mbps", "Joule", "cost",
                 "note"});
    for (const auto& j : report.jobs) {
      std::string note;
      if (j.policy == exp::JobPolicy::kSla) note = j.sla_met ? "SLA met" : "SLA MISSED";
      table.add_row({j.name, exp::to_string(j.policy), Table::num(j.queued_at, 1),
                     Table::num(j.finished_at, 1), Table::num(j.throughput_mbps(), 0),
                     Table::num(j.result.end_system_energy, 0),
                     "$" + Table::num(j.cost_usd * 1000.0, 2) + "m", note});
    }
    table.render(std::cout);
    std::cout << "  makespan " << Table::num(report.makespan, 1) << " s, total energy "
              << Table::num(report.total_energy / 1000.0, 2) << " kJ, bill $"
              << Table::num(report.total_cost_usd * 1000.0, 2) << "m\n\n";
  }

  std::cout << "Ordering does not change each job's Joules here (one transfer\n"
               "at a time), but it decides *when* each job lands against the\n"
               "tariff: jobs that slip past 21:00 escape the evening peak.\n"
               "(costs in milli-dollars: these are demo-sized jobs.)\n";
  return 0;
}
