// Fault drill: rehearse a bad day on the wide-area link.
//
// An operator about to commit to MinE for overnight bulk transfers wants to
// know what happens when things break: channels die mid-file, a DTN server
// reboots, the path browns out, and the occasional file fails its checksum.
// This example runs the same MinE transfer clean and through a fault storm,
// once with GridFTP restart markers and once without, and reports the
// robustness ledger — goodput vs wire throughput, retries, wasted joules,
// downtime — that decides whether restart markers are worth enabling.
#include <iostream>

#include "exp/runner.hpp"
#include "proto/faults.hpp"
#include "util/table.hpp"

int main() {
  using namespace eadt;

  auto testbed = testbeds::xsede();
  testbed.recipe.total_bytes = 8ULL * kGB;
  const proto::Dataset dataset = testbed.make_dataset();
  const int max_channels = 12;

  // The storm: steady channel churn, one server reboot, a brownout window,
  // and a small rate of integrity failures. Same seed for both drills so the
  // only difference is the recovery policy.
  proto::FaultPlan storm;
  storm.stochastic.channel_drop_rate = 0.05;
  storm.stochastic.checksum_failure_prob = 0.003;
  storm.outages.push_back({/*source_side=*/true, /*server=*/0,
                           /*start=*/15.0, /*duration=*/20.0});
  storm.brownouts.push_back({/*start=*/45.0, /*duration=*/15.0,
                             /*capacity_factor=*/0.4});
  storm.seed = 42;

  const auto run_mine = [&](const proto::FaultPlan& plan) {
    return exp::run_algorithm(exp::Algorithm::kMinE, testbed, dataset,
                              max_channels, {}, plan)
        .result;
  };

  const auto clean = run_mine({});
  auto with_markers = storm;
  with_markers.retry.restart_markers = true;
  auto legacy = storm;
  legacy.retry.restart_markers = false;
  const auto marked = run_mine(with_markers);
  const auto full = run_mine(legacy);

  std::cout << "Fault drill: MinE on " << testbed.env.name << ", cc="
            << max_channels << "\n\n";

  Table report({"run", "goodput Mbps", "wire Mbps", "Joules", "retries",
                "wasted MB", "wasted J", "downtime s"});
  const auto row = [&](const char* name, const proto::RunResult& r) {
    const auto& f = r.faults;
    report.add_row({name, Table::num(to_mbps(r.avg_goodput()), 0),
                    Table::num(to_mbps(r.avg_throughput()), 0),
                    Table::num(r.end_system_energy, 0),
                    Table::num(double(f.retries), 0),
                    Table::num(double(f.wasted_bytes) / double(kMB), 1),
                    Table::num(f.wasted_joules, 0),
                    Table::num(f.channel_downtime + f.server_downtime, 1)});
  };
  row("clean", clean);
  row("storm + restart markers", marked);
  row("storm, full retransmit", full);
  report.render(std::cout);

  const double marker_overhead =
      (marked.end_system_energy - clean.end_system_energy) /
      clean.end_system_energy * 100.0;
  const double legacy_overhead =
      (full.end_system_energy - clean.end_system_energy) /
      clean.end_system_energy * 100.0;
  std::cout << "\nEnergy overhead of the storm: "
            << Table::num(marker_overhead, 1) << "% with restart markers, "
            << Table::num(legacy_overhead, 1) << "% without.\n"
            << "Restart markers resume interrupted files from their last "
               "offset, so almost\nnothing is re-sent; legacy full-file "
               "retransmission pays for every lost prefix\ntwice — in time "
               "and in joules.\n";
  return 0;
}
