// Quickstart: move a mixed dataset over a 10 Gbps WAN with the
// energy-efficient HTEE algorithm and inspect throughput and energy.
//
// This is the 60-second tour of the public API:
//   1. describe (or pick) an Environment — endpoints, path, device route;
//   2. build a Dataset;
//   3. ask an algorithm for a TransferPlan (and optionally a Controller);
//   4. execute it on a TransferSession and read the RunResult.
#include <iostream>

#include "core/algorithms.hpp"
#include "testbeds/testbeds.hpp"
#include "util/table.hpp"

int main() {
  using namespace eadt;

  // 1-2. The XSEDE testbed ships ready-made; shrink the dataset for a demo.
  auto testbed = testbeds::xsede();
  testbed.recipe.total_bytes = 8ULL * kGB;
  const proto::Dataset dataset = testbed.make_dataset();

  std::cout << "Transferring " << to_gb(dataset.total_bytes()) << " GB ("
            << dataset.count() << " files) over " << testbed.env.name << "\n\n";

  // 3. HTEE: tuned chunk plan + online concurrency search.
  const int max_channels = 12;
  const proto::TransferPlan plan = core::plan_htee(testbed.env, dataset, max_channels);
  core::HteeController controller(max_channels);

  std::cout << "chunk plan (BDP = " << to_mb(testbed.env.bdp()) << " MB):\n";
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    std::cout << "  " << proto::to_string(plan.chunks[i].cls) << ": "
              << plan.chunks[i].file_count() << " files, "
              << Table::num(to_gb(plan.chunks[i].total), 2) << " GB"
              << ", pipelining " << plan.params[i].pipelining << ", parallelism "
              << plan.params[i].parallelism << "\n";
  }

  // 4. Run it.
  proto::TransferSession session(testbed.env, dataset, plan);
  const proto::RunResult result = session.run(&controller);

  std::cout << "\nresults:\n"
            << "  duration:        " << Table::num(result.duration, 1) << " s\n"
            << "  avg throughput:  " << Table::num(to_mbps(result.avg_throughput()), 0)
            << " Mbps\n"
            << "  end-system:      " << Table::num(result.end_system_energy, 0) << " J\n"
            << "  network devices: " << Table::num(result.network_energy, 1) << " J\n"
            << "  HTEE settled on concurrency " << controller.chosen_level() << "\n";
  return 0;
}
