// Campaign planner: a nightly bulk-replication job must pick a transfer
// algorithm per route. This example benchmarks the candidates on each route
// (WAN 10G, WAN 1G, LAN) and recommends one by policy:
//   * "deadline"  — highest throughput wins,
//   * "green"     — lowest energy wins,
//   * "balanced"  — best throughput/energy ratio wins.
#include <iostream>
#include <vector>

#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace eadt;

  struct Candidate {
    exp::Algorithm algorithm;
    int concurrency;
  };
  const std::vector<Candidate> candidates = {
      {exp::Algorithm::kSc, 8},   {exp::Algorithm::kMinE, 8},
      {exp::Algorithm::kProMc, 8}, {exp::Algorithm::kHtee, 8},
  };

  for (auto testbed : testbeds::all_testbeds()) {
    testbed.recipe.total_bytes /= 16;  // demo-sized nightly batch
    const auto dataset = testbed.make_dataset();
    std::cout << "route: " << testbed.env.name << " ("
              << Table::num(to_gb(dataset.total_bytes()), 1) << " GB)\n";

    Table table({"algorithm", "Mbps", "Joule", "ratio"});
    const exp::RunOutcome* fastest = nullptr;
    const exp::RunOutcome* greenest = nullptr;
    const exp::RunOutcome* balanced = nullptr;
    std::vector<exp::RunOutcome> outcomes;
    outcomes.reserve(candidates.size());
    for (const auto& c : candidates) {
      outcomes.push_back(exp::run_algorithm(c.algorithm, testbed, dataset, c.concurrency));
    }
    for (const auto& out : outcomes) {
      table.add_row({exp::to_string(out.algorithm), Table::num(out.throughput_mbps(), 0),
                     Table::num(out.energy(), 0), Table::num(out.ratio(), 3)});
      if (fastest == nullptr || out.throughput_mbps() > fastest->throughput_mbps()) {
        fastest = &out;
      }
      if (greenest == nullptr || out.energy() < greenest->energy()) greenest = &out;
      if (balanced == nullptr || out.ratio() > balanced->ratio()) balanced = &out;
    }
    table.render(std::cout);
    std::cout << "  deadline policy -> " << exp::to_string(fastest->algorithm)
              << "\n  green policy    -> " << exp::to_string(greenest->algorithm)
              << "\n  balanced policy -> " << exp::to_string(balanced->algorithm)
              << "\n\n";
  }
  return 0;
}
