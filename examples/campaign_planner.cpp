// Campaign planner: a nightly bulk-replication job must pick a transfer
// algorithm per route. This example benchmarks the candidates on each route
// (WAN 10G, WAN 1G, LAN) with a parallel deterministic sweep — the whole
// (route x algorithm) grid fans out across cores, and the recommendations
// are identical whatever the worker count — then picks one by policy:
//   * "deadline"  — highest throughput wins,
//   * "green"     — lowest energy wins,
//   * "balanced"  — best throughput/energy ratio wins.
//
// Takes the standard bench flags: --jobs/--scale, and the observability
// trio (--trace-out/--metrics-out/--decisions) attaches a collector to the
// sweep so every (route, algorithm) run lands in its own trace track.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "exp/sweep.hpp"
#include "obs/obs.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace eadt;
  auto opt = bench::parse_options(argc, argv);
  opt.json = false;  // a planner demo, not a perf-record producer

  const std::vector<exp::Algorithm> candidates = {
      exp::Algorithm::kSc, exp::Algorithm::kMinE,
      exp::Algorithm::kProMc, exp::Algorithm::kHtee,
  };

  const auto collector = bench::make_collector(opt);

  // The full campaign grid, one task per (route, candidate).
  std::vector<exp::SweepTask> tasks;
  for (auto testbed : testbeds::all_testbeds()) {
    testbed.recipe.total_bytes /= 16 * opt.scale;  // demo-sized nightly batch
    const auto dataset = testbed.make_dataset();
    for (const auto algorithm : candidates) {
      exp::SweepTask task;
      task.testbed = testbed;
      task.dataset = dataset;
      task.algorithm = algorithm;
      task.concurrency = 8;
      task.obs = collector.get();  // slot = submission index
      tasks.push_back(std::move(task));
    }
  }
  const exp::SweepRunner runner(opt.jobs);
  const auto results = runner.run(tasks);

  for (std::size_t route = 0; route * candidates.size() < results.size(); ++route) {
    const auto& first_task = tasks[route * candidates.size()];
    std::cout << "route: " << first_task.testbed.env.name << " ("
              << Table::num(to_gb(first_task.dataset.total_bytes()), 1) << " GB)\n";

    Table table({"algorithm", "Mbps", "Joule", "ratio"});
    const exp::RunOutcome* fastest = nullptr;
    const exp::RunOutcome* greenest = nullptr;
    const exp::RunOutcome* balanced = nullptr;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const auto& out = results[route * candidates.size() + c].run;
      table.add_row({exp::to_string(out.algorithm), Table::num(out.throughput_mbps(), 0),
                     Table::num(out.energy(), 0), Table::num(out.ratio(), 3)});
      if (fastest == nullptr || out.throughput_mbps() > fastest->throughput_mbps()) {
        fastest = &out;
      }
      if (greenest == nullptr || out.energy() < greenest->energy()) greenest = &out;
      if (balanced == nullptr || out.ratio() > balanced->ratio()) balanced = &out;
    }
    table.render(std::cout);
    std::cout << "  deadline policy -> " << exp::to_string(fastest->algorithm)
              << "\n  green policy    -> " << exp::to_string(greenest->algorithm)
              << "\n  balanced policy -> " << exp::to_string(balanced->algorithm)
              << "\n\n";
  }
  if (collector) bench::write_obs_outputs(opt, *collector);
  return 0;
}
