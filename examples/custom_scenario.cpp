// Custom scenario runner: define your own testbed in an INI file, benchmark
// every algorithm on it, and export the sweep as CSV plus a gnuplot script.
//
//   ./custom_scenario                  # print a commented reference config
//   ./custom_scenario my_link.ini      # run it
//   ./custom_scenario my_link.ini out  # also write out.csv and out.gp
//
// This is the workflow for answering "which transfer algorithm should *my*
// site use, and at what concurrency?" without touching C++.
#include <fstream>
#include <iostream>

#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "testbeds/config_testbed.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace eadt;

  if (argc < 2) {
    std::cout << "usage: custom_scenario <config.ini> [output-stem]\n\n"
                 "No config given — here is a commented reference you can save\n"
                 "and edit (defaults reproduce the paper's XSEDE testbed):\n\n"
              << testbeds::testbed_config_reference();
    return 0;
  }

  std::string error;
  auto testbed = testbeds::testbed_from_file(argv[1], &error);
  if (!testbed) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }

  const auto dataset = testbed->make_dataset();
  std::cout << "testbed: " << testbed->env.name << "\n"
            << "dataset: " << Table::num(to_gb(dataset.total_bytes()), 1) << " GB, "
            << dataset.count() << " files, BDP "
            << Table::num(static_cast<double>(testbed->env.bdp()) / 1e6, 1) << " MB\n\n";

  exp::SweepTable sweep;
  sweep.levels = {1, 2, 4, 6, 8, testbed->default_max_channels};
  Table summary({"algorithm", "best level", "Mbps", "Joule", "ratio"});
  for (const auto alg : exp::figure_algorithms()) {
    const exp::RunOutcome* best = nullptr;
    for (const int level : sweep.levels) {
      auto out = exp::run_algorithm(alg, *testbed, dataset, level);
      const auto [it, _] = sweep.outcomes[alg].emplace(level, std::move(out));
      if (best == nullptr || it->second.ratio() > best->ratio()) best = &it->second;
    }
    summary.add_row({exp::to_string(alg), std::to_string(best->concurrency),
                     Table::num(best->throughput_mbps(), 0),
                     Table::num(best->energy(), 0), Table::num(best->ratio(), 0)});
  }
  std::cout << "best throughput/energy operating point per algorithm:\n";
  summary.render(std::cout);

  if (argc >= 3) {
    const std::string stem = argv[2];
    {
      std::ofstream csv(stem + ".csv");
      exp::write_sweep_csv(csv, sweep);
    }
    {
      std::ofstream gp(stem + ".gp");
      exp::write_sweep_gnuplot(gp, sweep, stem + ".csv", stem);
    }
    std::cout << "\nwrote " << stem << ".csv and " << stem
              << ".gp (render with: gnuplot " << stem << ".gp)\n";
  }
  return 0;
}
