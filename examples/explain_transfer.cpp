// explain_transfer: render the "why did the algorithm do that" narrative.
//
// Runs the paper's three energy-aware algorithms — MinE, HTEE, SLAEE — on one
// testbed with the observability decision log attached, then prints every
// recorded decision with the measurements that drove it: how MinE partitioned
// the dataset and walked channels across chunks, which concurrency levels
// HTEE probed and why it kept or abandoned each, and when SLAEE jumped,
// stepped, or re-arranged channels to track its SLA.
//
//   usage: explain_transfer [testbed]   (xsede | futuregrid | didclab)
#include <cstring>
#include <iostream>

#include "baselines/baselines.hpp"
#include "core/algorithms.hpp"
#include "obs/obs.hpp"
#include "testbeds/testbeds.hpp"
#include "util/table.hpp"

namespace {

eadt::testbeds::Testbed pick_testbed(int argc, char** argv) {
  using namespace eadt::testbeds;
  if (argc > 1) {
    if (std::strcmp(argv[1], "futuregrid") == 0) return futuregrid();
    if (std::strcmp(argv[1], "didclab") == 0) return didclab();
    if (std::strcmp(argv[1], "xsede") != 0) {
      std::cerr << "unknown testbed '" << argv[1]
                << "' (expected xsede | futuregrid | didclab); using xsede\n";
    }
  }
  return xsede();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eadt;

  auto testbed = pick_testbed(argc, argv);
  testbed.recipe.total_bytes /= 32;  // demo scale: seconds, not hours
  const proto::Dataset dataset = testbed.make_dataset();
  const int max_channels = 12;

  std::cout << "explaining " << Table::num(to_gb(dataset.total_bytes()), 2) << " GB ("
            << dataset.count() << " files) over " << testbed.env.name << "\n";

  obs::ObsCollector collector;

  const auto run = [&](std::size_t slot, const std::string& label,
                       auto make_plan_and_controller) {
    proto::SessionConfig config;
    config.obs = collector.slot(slot, label);
    make_plan_and_controller(config);
  };

  run(0, "MinE", [&](proto::SessionConfig& config) {
    proto::TransferSession s(
        testbed.env, dataset,
        core::plan_min_energy(testbed.env, dataset, max_channels, config.obs->decisions),
        config);
    (void)s.run();
  });

  run(1, "HTEE", [&](proto::SessionConfig& config) {
    core::HteeController controller(max_channels);
    proto::TransferSession s(
        testbed.env, dataset,
        core::plan_htee(testbed.env, dataset, max_channels, config.obs->decisions),
        config);
    (void)s.run(&controller);
  });

  run(2, "SLAEE (90% of link)", [&](proto::SessionConfig& config) {
    const BitsPerSecond target = testbed.env.path.bandwidth * 0.9;
    core::SlaeeController controller(target, max_channels);
    proto::TransferSession s(
        testbed.env, dataset,
        core::plan_slaee(testbed.env, dataset, max_channels, config.obs->decisions),
        config);
    (void)s.run(&controller);
  });

  std::cout << "\n";
  collector.write_narrative(std::cout);
  return 0;
}
