// Resume drill: interrupt a transfer, read back its journal, finish the job.
//
// Part 1 rehearses the client-side story: a bulk transfer is cut off mid-run
// (a deadline, a crashed client, a maintenance window), its checkpoint is
// serialized to a journal, and a fresh session resumes from the parsed
// journal — landing exactly the bytes an uninterrupted run would have landed,
// without re-paying what's already on disk.
//
// Part 2 rehearses the provider-side story: the same job runs under a
// supervised transfer service with a per-attempt watchdog while a fault storm
// rages. Repeated aborts walk the degradation ladder — fewer channels, then
// the minimum-energy plan — and the printed RecoveryLog is the audit trail of
// how the job survived.
#include <iostream>
#include <sstream>

#include "baselines/baselines.hpp"
#include "exp/service.hpp"
#include "proto/checkpoint.hpp"
#include "util/table.hpp"

int main() {
  using namespace eadt;

  auto testbed = testbeds::xsede();
  testbed.recipe.total_bytes = 8ULL * kGB;
  const proto::Dataset dataset = testbed.make_dataset();
  const auto& env = testbed.env;
  const int max_channels = 12;
  const auto plan = baselines::plan_promc(env, dataset, max_channels);

  // --- Part 1: interrupt, journal, resume -------------------------------
  proto::TransferSession whole(env, dataset, plan, {});
  const auto uninterrupted = whole.run();

  proto::SessionConfig cut;
  cut.max_sim_time = uninterrupted.duration * 0.4;  // pull the plug at 40 %
  proto::TransferSession doomed(env, dataset, plan, cut);
  const auto aborted = doomed.run();

  std::stringstream journal;  // stands in for the on-disk journal file
  proto::write_checkpoint(journal, *aborted.checkpoint);
  const auto entry = proto::read_checkpoint(journal);

  proto::TransferSession second(env, dataset, plan, {});
  std::string err;
  if (!second.resume_from(*entry, &err)) {
    std::cerr << "resume failed: " << err << "\n";
    return 1;
  }
  const auto resumed = second.run();

  std::cout << "Resume drill: ProMC on " << env.name << ", cc=" << max_channels
            << ", dataset " << dataset.total_bytes() / kGB << " GB\n\n";
  Table part1({"run", "duration s", "unique GB", "wire GB", "done"});
  const auto gb = [](Bytes b) { return Table::num(double(b) / double(kGB), 3); };
  part1.add_row({"uninterrupted", Table::num(uninterrupted.duration, 1),
                 gb(uninterrupted.goodput_bytes()), gb(uninterrupted.bytes),
                 uninterrupted.completed ? "yes" : "no"});
  part1.add_row({"interrupted at 40%", Table::num(aborted.duration, 1),
                 gb(aborted.checkpoint->delivered_bytes(dataset)), gb(aborted.bytes),
                 "no"});
  part1.add_row({"resumed from journal", Table::num(resumed.duration, 1),
                 gb(resumed.goodput_bytes()), gb(resumed.bytes),
                 resumed.completed ? "yes" : "no"});
  part1.render(std::cout);
  std::cout << "\nThe resumed run's unique bytes match the uninterrupted run "
               "exactly; only the\nunlanded remainder crossed the wire after "
               "the interruption.\n\n";

  // --- Part 2: a supervised job rides out a storm -----------------------
  proto::FaultPlan storm;
  storm.stochastic.channel_drop_rate = 0.25;
  storm.stochastic.checksum_failure_prob = 0.01;
  storm.brownouts.push_back({/*start=*/5.0, /*duration=*/10.0,
                             /*capacity_factor=*/0.35});
  storm.seed = 42;

  exp::TransferService service(testbed, 0.0, {});
  service.set_fault_plan(storm);
  exp::SupervisorPolicy watchdog;
  watchdog.attempt_deadline = uninterrupted.duration * 0.5;
  watchdog.max_attempts = 12;
  watchdog.degrade_after = 2;
  service.set_supervisor(watchdog);

  std::vector<exp::TransferJob> jobs;
  jobs.push_back({"storm-job", dataset, exp::JobPolicy::kDeadline, 0, 0, max_channels});
  const auto report = service.run_queue(jobs);
  const auto& job = report.jobs[0];

  std::cout << "Supervised run under the storm (watchdog "
            << Table::num(watchdog.attempt_deadline, 1) << " s/attempt):\n"
            << "  attempts: " << job.attempts << ", failed: "
            << (job.failed ? "yes" : "no") << ", unique GB: "
            << Table::num(double(job.result.goodput_bytes()) / double(kGB), 3)
            << ", degraded: " << (job.recovery.degraded() ? "yes" : "no") << "\n";
  if (!job.recovery.events.empty()) {
    std::cout << "  recovery log:\n";
    for (const auto& e : job.recovery.events) {
      std::cout << "    t=" << Table::num(e.at, 1) << "s attempt " << e.attempt
                << " [" << to_string(e.action) << "] policy=" << e.policy
                << " cc=" << e.max_channels << " — " << e.detail << "\n";
    }
  }
  return 0;
}
