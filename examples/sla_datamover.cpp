// SLA data mover: a cloud transfer service offering tiered service levels.
//
// The provider promises each customer a fraction of the link's best-case
// throughput. Gold customers get 90 %, silver 70 %, bronze 50 %. For every
// tier this example runs SLAEE, verifies the promise was met, and reports
// how much energy the provider saves compared to always running flat out —
// the paper's "low-cost data transfer options in return for delayed
// transfers" business case.
#include <iostream>

#include "baselines/baselines.hpp"
#include "core/algorithms.hpp"
#include "testbeds/testbeds.hpp"
#include "util/table.hpp"

int main() {
  using namespace eadt;

  auto testbed = testbeds::xsede();
  testbed.recipe.total_bytes = 8ULL * kGB;
  const proto::Dataset dataset = testbed.make_dataset();
  const int max_channels = 12;

  // Establish the best case: ProMC at full concurrency.
  proto::TransferSession promc_session(
      testbed.env, dataset, baselines::plan_promc(testbed.env, dataset, max_channels));
  const auto promc = promc_session.run();
  const BitsPerSecond max_throughput = promc.avg_throughput();

  std::cout << "SLA data mover on " << testbed.env.name << "\n"
            << "best-case (ProMC): " << Table::num(to_mbps(max_throughput), 0)
            << " Mbps at " << Table::num(promc.end_system_energy, 0) << " J\n\n";

  struct Tier {
    const char* name;
    double percent;
  };
  Table report({"tier", "promised Mbps", "delivered Mbps", "met?", "energy J",
                "energy saved %", "concurrency"});
  for (const Tier tier : {Tier{"gold", 90.0}, Tier{"silver", 70.0}, Tier{"bronze", 50.0}}) {
    const BitsPerSecond target = max_throughput * tier.percent / 100.0;
    core::SlaeeController controller(target, max_channels);
    proto::TransferSession session(
        testbed.env, dataset, core::plan_slaee(testbed.env, dataset, max_channels));
    const auto r = session.run(&controller);
    const bool met = r.avg_throughput() >= target * 0.93;  // 7% tolerance (paper)
    report.add_row({tier.name, Table::num(to_mbps(target), 0),
                    Table::num(to_mbps(r.avg_throughput()), 0), met ? "yes" : "no",
                    Table::num(r.end_system_energy, 0),
                    Table::num(100.0 - 100.0 * r.end_system_energy /
                                           promc.end_system_energy,
                               1),
                    std::to_string(controller.final_level())});
  }
  report.render(std::cout);
  std::cout << "\nLower tiers finish later but cut the provider's energy bill;\n"
               "that margin funds the discount.\n";
  return 0;
}
