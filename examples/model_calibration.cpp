// Power-model calibration walkthrough (Section 2.2's "model building phase").
//
// You rack a new server, hook up a power meter once, sweep each component
// through load levels, and fit the Eq. 1 coefficients. Afterwards the meter
// goes back in the drawer: the fitted model predicts transfer power from OS
// utilization counters, and the TDP-scaled variant (Eq. 3) extends it to
// remote machines you can never meter.
#include <iostream>

#include "power/calibrator.hpp"
#include "util/table.hpp"

int main() {
  using namespace eadt;

  // The machine under the meter: "true" behaviour unknown to the model.
  power::GroundTruthServer local({230.0, 26.0, 25.0, 19.0, 12.0}, /*cores=*/4,
                                 /*tdp=*/115.0, /*curvature=*/0.05,
                                 /*noise=*/0.02, Rng(99));
  // A remote server (different vendor, 8 cores, 220 W TDP) we cannot meter.
  // Its true CPU response tracks its TDP (~1.9x the local server's) — the
  // assumption Eq. 3 rides on.
  power::GroundTruthServer remote({475.0, 43.5, 53.2, 32.1, 27.0}, 8, 220.0, 0.05,
                                  0.02, Rng(100));

  std::cout << "calibrating against the metered server...\n";
  const auto cal = power::calibrate(local, Rng(1));

  Table coeffs({"coefficient", "true W", "fitted W"});
  coeffs.add_row({"CPU scale", Table::num(local.true_coefficients().cpu_scale, 1),
                  Table::num(cal.fitted.cpu_scale, 1)});
  coeffs.add_row({"memory", Table::num(local.true_coefficients().mem, 1),
                  Table::num(cal.fitted.mem, 1)});
  coeffs.add_row({"disk", Table::num(local.true_coefficients().disk, 1),
                  Table::num(cal.fitted.disk, 1)});
  coeffs.add_row({"NIC", Table::num(local.true_coefficients().nic, 1),
                  Table::num(cal.fitted.nic, 1)});
  coeffs.add_row({"active base", Table::num(local.true_coefficients().active_base, 1),
                  Table::num(cal.fitted.active_base, 1)});
  coeffs.render(std::cout);

  std::cout << "\nR^2 = " << Table::num(cal.fine_grained_r2, 4)
            << ", CPU-power correlation = "
            << Table::num(100.0 * cal.cpu_power_correlation, 1) << "%\n\n";

  std::cout << "validating on transfer-tool load shapes:\n";
  Table acc({"tool", "fine-grained %err", "CPU-only %err", "TDP-extended %err"});
  for (const auto& row : power::evaluate_models(cal, local, remote, Rng(2))) {
    acc.add_row({row.tool, Table::num(row.fine_grained_mape, 2),
                 Table::num(row.cpu_only_mape, 2), Table::num(row.tdp_extended_mape, 2)});
  }
  acc.render(std::cout);
  std::cout << "\nThe fitted model is what MinE/HTEE/SLAEE consult when they\n"
               "estimate the energy cost of a parameter choice at runtime.\n";
  return 0;
}
