#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

#include "test_env.hpp"

namespace eadt::baselines {
namespace {

using testutil::mixed_dataset;
using testutil::small_env;

TEST(Guc, UntunedSingleChunk) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = plan_guc(env, ds);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].file_count(), ds.count());
  EXPECT_EQ(plan.params[0].pipelining, 1);
  EXPECT_EQ(plan.params[0].parallelism, 1);
  EXPECT_EQ(plan.params[0].channels, 1);
  EXPECT_EQ(plan.placement, proto::Placement::kRoundRobin);
}

TEST(Guc, ManualParametersPassThrough) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = plan_guc(env, ds, 4, 2, 8);
  EXPECT_EQ(plan.params[0].channels, 4);
  EXPECT_EQ(plan.params[0].parallelism, 2);
  EXPECT_EQ(plan.params[0].pipelining, 8);
  // Degenerate values clamp to 1.
  const auto clamped = plan_guc(env, ds, 0, -1, 0);
  EXPECT_EQ(clamped.params[0].channels, 1);
  EXPECT_EQ(clamped.params[0].parallelism, 1);
}

TEST(Go, FixedSizeClassesAndParameters) {
  const auto env = small_env();
  proto::Dataset ds;
  ds.files = {{10 * kMB}, {49 * kMB},            // small: < 50 MB
              {60 * kMB}, {200 * kMB},           // medium: 50-250 MB
              {300 * kMB}, {1 * kGB}};           // large: > 250 MB
  const auto plan = plan_go(env, ds);
  ASSERT_EQ(plan.chunks.size(), 3u);
  EXPECT_EQ(plan.chunks[0].file_count(), 2u);
  EXPECT_EQ(plan.chunks[1].file_count(), 2u);
  EXPECT_EQ(plan.chunks[2].file_count(), 2u);
  // Fixed parameter table: pipelining 20/5/1, parallelism 2, concurrency 2.
  EXPECT_EQ(plan.params[0].pipelining, 20);
  EXPECT_EQ(plan.params[1].pipelining, 5);
  EXPECT_EQ(plan.params[2].pipelining, 1);
  for (const auto& p : plan.params) {
    EXPECT_EQ(p.parallelism, 2);
    EXPECT_EQ(p.channels, 2);
  }
  EXPECT_TRUE(plan.sequential_chunks);
  EXPECT_EQ(plan.placement, proto::Placement::kRoundRobin);
}

TEST(Go, SkipsEmptyClasses) {
  const auto env = small_env();
  proto::Dataset ds;
  ds.files = {{1 * kGB}, {2 * kGB}};
  const auto plan = plan_go(env, ds);
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.params[0].pipelining, 1);  // the large-class parameters
}

TEST(Sc, SequentialWithFullConcurrencyPerChunk) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = plan_single_chunk(env, ds, 6);
  EXPECT_TRUE(plan.sequential_chunks);
  for (const auto& p : plan.params) EXPECT_EQ(p.channels, 6);
  EXPECT_EQ(plan.placement, proto::Placement::kPacked);
}

TEST(ProMc, SimultaneousWeightedChunks) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = plan_promc(env, ds, 8);
  EXPECT_FALSE(plan.sequential_chunks);
  EXPECT_EQ(plan.total_channels(), 8);  // uses the full budget
  EXPECT_EQ(plan.steal, proto::StealPolicy::kAll);
}

TEST(BruteForce, MatchesProMcShape) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto bf = plan_brute_force(env, ds, 5);
  const auto pm = plan_promc(env, ds, 5);
  ASSERT_EQ(bf.chunks.size(), pm.chunks.size());
  EXPECT_EQ(bf.total_channels(), pm.total_channels());
}

}  // namespace
}  // namespace eadt::baselines
