// Randomized fault-plan fuzz battery over the Supervisor and the Scheduler.
//
// Each case draws a job mix, a fault workload, and a policy from a seeded Rng
// and asserts the invariants the robustness layer promises regardless of what
// the draw produced:
//   * completed jobs lose no acknowledged byte across any preempt/abort/resume
//     chain (cumulative goodput == dataset bytes, exactly);
//   * accounting is conservative: accepted == submitted - rejected and
//     completed + failed == accepted, per class and in total;
//   * the measured site power never exceeds the cap between ticks;
//   * the same seed reproduces the same report bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include <thread>

#include "exp/scheduler.hpp"
#include "exp/service.hpp"
#include "exp/supervisor.hpp"
#include "net/fair_share.hpp"
#include "net/path_set.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

#include <sstream>

namespace eadt::exp {
namespace {

testbeds::Testbed tiny_xsede() {
  auto t = testbeds::xsede();
  t.recipe.total_bytes /= 64;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / 64, band.min_size * 2);
  }
  return t;
}

proto::SessionConfig fast_cfg() {
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  return cfg;
}

proto::Dataset fuzz_dataset(Rng& rng) {
  proto::Dataset ds;
  const int files = static_cast<int>(rng.uniform_int(3, 10));
  for (int i = 0; i < files; ++i) {
    ds.files.push_back({static_cast<Bytes>(rng.uniform_int(20, 160)) * kMB});
  }
  return ds;
}

proto::FaultPlan fuzz_faults(Rng& rng) {
  proto::FaultPlan plan;
  plan.seed = rng.next_u64();
  plan.stochastic.channel_drop_rate = rng.uniform(0.0, 0.02);
  if (rng.uniform01() < 0.5) {
    plan.stochastic.checksum_failure_prob = rng.uniform(0.0, 0.05);
  }
  const int drops = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < drops; ++i) {
    plan.channel_drops.push_back({rng.uniform(1.0, 60.0), -1});
  }
  if (rng.uniform01() < 0.5) {
    // Non-overlapping brownout windows, as validate() requires.
    Seconds at = rng.uniform(2.0, 10.0);
    const int windows = static_cast<int>(rng.uniform_int(1, 2));
    for (int i = 0; i < windows; ++i) {
      const Seconds dur = rng.uniform(2.0, 15.0);
      plan.brownouts.push_back({at, dur, rng.uniform(0.2, 0.8)});
      at += dur + rng.uniform(1.0, 5.0);
    }
  }
  if (rng.uniform01() < 0.3) {
    plan.outages.push_back({rng.uniform01() < 0.5, 0, rng.uniform(2.0, 20.0),
                            rng.uniform(1.0, 8.0)});
  }
  EXPECT_EQ(plan.validate(), std::nullopt);
  return plan;
}

JobPolicy fuzz_policy(Rng& rng) {
  switch (rng.uniform_int(0, 4)) {
    case 0: return JobPolicy::kDeadline;
    case 1: return JobPolicy::kGreen;
    case 2: return JobPolicy::kBalanced;
    case 3: return JobPolicy::kSla;
    default: return JobPolicy::kEnergyBudget;
  }
}

TransferJob fuzz_job(Rng& rng, int index) {
  TransferJob job;
  job.name = "fuzz-" + std::to_string(index);
  job.dataset = fuzz_dataset(rng);
  job.policy = fuzz_policy(rng);
  job.sla_percent = rng.uniform(5.0, 40.0);
  job.energy_budget = rng.uniform(5e4, 5e5);
  job.max_channels = static_cast<int>(rng.uniform_int(2, 8));
  return job;
}

/// The per-job invariants shared by both batteries.
void check_outcome_invariants(const std::string& label, const TenantOutcome& out,
                              Bytes dataset_bytes) {
  SCOPED_TRACE(label + " job " + out.name);
  if (out.rejected) {
    EXPECT_EQ(out.attempts, 0);
    EXPECT_EQ(out.result.bytes, 0u);
    return;
  }
  if (out.result.completed) {
    EXPECT_FALSE(out.failed);
    // No acknowledged byte lost OR double-counted across preempt/abort/resume:
    // cumulative goodput equals the dataset exactly.
    EXPECT_EQ(out.result.goodput_bytes(), dataset_bytes);
  }
  // Every preemption must have produced a matching resume or ended in
  // failure/horizon cleanup — a preempted job never vanishes silently.
  const int resumes = out.recovery.count(RecoveryAction::kResume);
  if (out.preemptions > 0 && !out.failed) {
    EXPECT_GE(resumes, out.preemptions);
  }
  EXPECT_GE(out.attempts, out.result.completed ? 1 : 0);
}

struct FuzzRun {
  SchedulerReport report;
  std::vector<Bytes> dataset_bytes;  ///< per job, submission order
};

FuzzRun run_fuzz_schedule(std::uint64_t seed) {
  Rng rng(seed);
  const auto tb = tiny_xsede();

  SchedulerPolicy policy;
  policy.max_concurrent = static_cast<int>(rng.uniform_int(1, 4));
  policy.max_queue_depth = static_cast<int>(rng.uniform_int(1, 6));
  policy.supervision.attempt_deadline = rng.uniform(30.0, 400.0);
  policy.supervision.max_attempts = static_cast<int>(rng.uniform_int(2, 5));
  policy.supervision.degrade_after = 1;
  policy.horizon = 24.0 * 3600;
  if (rng.uniform01() < 0.5) {
    policy.power_cap =
        session_peak_power_bound(tb.env) * rng.uniform(1.0, 3.5);
  }
  if (rng.uniform01() < 0.5) {
    policy.link_brownouts.push_back(
        {rng.uniform(5.0, 60.0), rng.uniform(5.0, 60.0), rng.uniform(0.2, 0.7)});
  }
  const bool tariffed = rng.uniform01() < 0.4;
  if (tariffed) policy.max_defer = 12.0 * 3600;

  Scheduler scheduler(tb, gbps(7.0), policy, fast_cfg());
  scheduler.set_fault_plan(fuzz_faults(rng));
  if (tariffed) {
    scheduler.set_tariff(power::Tariff::time_of_use(0.05, {{8.0, 20.0, 0.30}}),
                         rng.uniform(0.0, 24.0) * 3600);
  }

  std::vector<SchedulerJob> jobs;
  FuzzRun run;
  const int n = static_cast<int>(rng.uniform_int(4, 10));
  Seconds at = 0.0;
  for (int i = 0; i < n; ++i) {
    auto job = fuzz_job(rng, i);
    run.dataset_bytes.push_back(job.dataset.total_bytes());
    jobs.push_back({std::move(job), at});
    at += rng.uniform(0.0, 30.0);
  }
  run.report = scheduler.run(std::move(jobs));
  return run;
}

TEST(FuzzRobustness, SchedulerInvariantsHoldAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto run = run_fuzz_schedule(seed);
    const auto& report = run.report;

    // Accounting conservation, in total and per class.
    EXPECT_TRUE(report.accounting_consistent());
    EXPECT_EQ(static_cast<int>(report.jobs.size()), report.submitted);
    for (const auto* cls :
         {&report.interactive, &report.standard, &report.scavenger}) {
      EXPECT_EQ(cls->completed + cls->failed, cls->submitted - cls->rejected);
    }
    EXPECT_EQ(report.interactive.submitted + report.standard.submitted +
                  report.scavenger.submitted,
              report.submitted);

    // The cap is a hard invariant, not a target.
    EXPECT_EQ(report.power_cap_violations, 0);
    EXPECT_LE(report.peak_power, report.peak_power_bound + 1e-9);

    ASSERT_EQ(report.jobs.size(), run.dataset_bytes.size());
    int preemptions = 0;
    int deferrals = 0;
    for (std::size_t i = 0; i < report.jobs.size(); ++i) {
      const auto& out = report.jobs[i];
      check_outcome_invariants("scheduler", out, run.dataset_bytes[i]);
      preemptions += out.preemptions;
      deferrals += out.deferrals;
    }
    EXPECT_EQ(report.preemptions, preemptions);
    EXPECT_EQ(report.deferrals, deferrals);
  }
}

TEST(FuzzRobustness, SchedulerGoodputMatchesDatasetsExactly) {
  // A tighter variant of the invariant above: build the jobs outside the
  // helper so the dataset sizes are known, then check byte conservation.
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const auto tb = tiny_xsede();
    SchedulerPolicy policy;
    policy.max_concurrent = 1;  // force queueing and preemption pressure
    policy.max_queue_depth = 8;
    policy.supervision.attempt_deadline = rng.uniform(60.0, 240.0);
    policy.supervision.max_attempts = 5;
    policy.horizon = 24.0 * 3600;

    Scheduler scheduler(tb, gbps(7.0), policy, fast_cfg());
    scheduler.set_fault_plan(fuzz_faults(rng));

    std::vector<SchedulerJob> jobs;
    std::vector<Bytes> sizes;
    for (int i = 0; i < 5; ++i) {
      auto job = fuzz_job(rng, i);
      job.policy = (i % 2 == 0) ? JobPolicy::kGreen : JobPolicy::kDeadline;
      sizes.push_back(job.dataset.total_bytes());
      jobs.push_back({std::move(job), rng.uniform(0.0, 10.0)});
    }
    const auto report = scheduler.run(std::move(jobs));

    ASSERT_EQ(report.jobs.size(), sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      check_outcome_invariants("conservation", report.jobs[i], sizes[i]);
      if (report.jobs[i].result.completed) {
        EXPECT_EQ(report.jobs[i].result.goodput_bytes(), sizes[i]);
      }
    }
    EXPECT_TRUE(report.accounting_consistent());
    EXPECT_EQ(report.power_cap_violations, 0);
  }
}

TEST(FuzzRobustness, SameSeedIsBitReproducible) {
  for (std::uint64_t seed : {3ull, 7ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto a = run_fuzz_schedule(seed).report;
    const auto b = run_fuzz_schedule(seed).report;
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.deferrals, b.deferrals);
    EXPECT_EQ(a.total_bytes, b.total_bytes);
    // Bitwise, not approximate: the whole pipeline is deterministic.
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.total_energy, b.total_energy);
    EXPECT_EQ(a.peak_power, b.peak_power);
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
      EXPECT_EQ(a.jobs[i].result.bytes, b.jobs[i].result.bytes);
      EXPECT_EQ(a.jobs[i].result.duration, b.jobs[i].result.duration);
      EXPECT_EQ(a.jobs[i].result.end_system_energy,
                b.jobs[i].result.end_system_energy);
      EXPECT_EQ(a.jobs[i].attempts, b.jobs[i].attempts);
      EXPECT_EQ(a.jobs[i].recovery.events.size(), b.jobs[i].recovery.events.size());
    }
  }
}

// --- failover battery -------------------------------------------------------
// Random flap schedules over a multipath scheduler: alternate routes, per-site
// power caps, and path-targeted brownout windows drawn from the seed. The
// invariants must hold no matter where the storm lands or how often tenants
// migrate.

FuzzRun run_fuzz_failover(std::uint64_t seed) {
  Rng rng(seed);
  const auto tb = tiny_xsede();

  SchedulerPolicy policy;
  policy.max_concurrent = static_cast<int>(rng.uniform_int(2, 6));
  policy.max_queue_depth = static_cast<int>(rng.uniform_int(2, 8));
  policy.supervision.attempt_deadline = rng.uniform(20.0, 150.0);
  policy.supervision.max_attempts = static_cast<int>(rng.uniform_int(3, 8));
  policy.supervision.degrade_after = 1;
  policy.horizon = 24.0 * 3600;

  const int n_paths = static_cast<int>(rng.uniform_int(2, 3));
  policy.paths.add({"p0", tb.env.path, tb.env.route, 0});
  for (int p = 1; p < n_paths; ++p) {
    net::PathSpec alt = tb.env.path;
    alt.rtt *= rng.uniform(1.2, 2.0);
    policy.paths.add({"p" + std::to_string(p), alt, net::futuregrid_route(), p});
  }
  const Watts peak = session_peak_power_bound(tb.env);
  for (int p = 0; p < n_paths; ++p) {
    policy.path_power_caps.push_back(peak * rng.uniform(1.2, 3.0));
  }
  if (rng.uniform01() < 0.5) policy.power_cap = peak * rng.uniform(2.0, 5.0);

  // The flap schedule: per-path brownout windows, non-overlapping per path
  // (windows of different paths may overlap freely — that is a real storm).
  for (int p = 0; p < n_paths; ++p) {
    Seconds at = rng.uniform(2.0, 30.0);
    const int windows = static_cast<int>(rng.uniform_int(0, 3));
    for (int w = 0; w < windows; ++w) {
      const Seconds dur = rng.uniform(5.0, 40.0);
      policy.link_brownouts.push_back({at, dur, rng.uniform(0.0, 0.5), p});
      at += dur + rng.uniform(1.0, 10.0);
    }
  }

  Scheduler scheduler(tb, gbps(7.0), policy, fast_cfg());
  scheduler.set_fault_plan(fuzz_faults(rng));

  std::vector<SchedulerJob> jobs;
  FuzzRun run;
  const int n = static_cast<int>(rng.uniform_int(4, 10));
  Seconds at = 0.0;
  for (int i = 0; i < n; ++i) {
    auto job = fuzz_job(rng, i);
    run.dataset_bytes.push_back(job.dataset.total_bytes());
    jobs.push_back({std::move(job), at});
    at += rng.uniform(0.0, 20.0);
  }
  run.report = scheduler.run(std::move(jobs));
  return run;
}

TEST(FuzzRobustness, FailoverInvariantsHoldAcrossFlapSchedules) {
  for (std::uint64_t seed = 61; seed <= 68; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto run = run_fuzz_failover(seed);
    const auto& report = run.report;

    EXPECT_TRUE(report.accounting_consistent());
    // Per-site caps are hard invariants under any flap schedule.
    EXPECT_EQ(report.power_cap_violations, 0);

    ASSERT_EQ(report.jobs.size(), run.dataset_bytes.size());
    int migrations = 0;
    for (std::size_t i = 0; i < report.jobs.size(); ++i) {
      const auto& out = report.jobs[i];
      check_outcome_invariants("failover", out, run.dataset_bytes[i]);
      // A migration is a re-dispatch, so it can never outnumber attempts,
      // and a placement index is always a real PathSet entry.
      EXPECT_LE(out.migrations, out.attempts);
      EXPECT_GE(out.migrations, 0);
      EXPECT_GE(out.path, 0);
      migrations += out.migrations;
    }
    EXPECT_EQ(report.migrations, migrations);
  }
}

TEST(FuzzRobustness, FailoverSameSeedIsBitReproducible) {
  for (std::uint64_t seed : {62ull, 66ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto a = run_fuzz_failover(seed).report;
    const auto b = run_fuzz_failover(seed).report;
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.total_bytes, b.total_bytes);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.total_energy, b.total_energy);
    EXPECT_EQ(a.peak_power, b.peak_power);
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
      EXPECT_EQ(a.jobs[i].result.bytes, b.jobs[i].result.bytes);
      EXPECT_EQ(a.jobs[i].result.duration, b.jobs[i].result.duration);
      EXPECT_EQ(a.jobs[i].result.end_system_energy,
                b.jobs[i].result.end_system_energy);
      EXPECT_EQ(a.jobs[i].migrations, b.jobs[i].migrations);
      EXPECT_EQ(a.jobs[i].path, b.jobs[i].path);
      EXPECT_EQ(a.jobs[i].recovery.events.size(), b.jobs[i].recovery.events.size());
    }
  }
}

TEST(FuzzRobustness, SupervisorInvariantsHoldAcrossSeeds) {
  const auto tb = tiny_xsede();
  for (std::uint64_t seed = 41; seed <= 46; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);

    SupervisorPolicy policy;
    policy.attempt_deadline = rng.uniform(20.0, 200.0);
    policy.max_attempts = static_cast<int>(rng.uniform_int(2, 6));
    policy.degrade_after = static_cast<int>(rng.uniform_int(1, 2));

    Supervisor supervisor(tb, gbps(7.0), fuzz_faults(rng), policy, fast_cfg());
    const auto job = fuzz_job(rng, static_cast<int>(seed));
    const auto outcome = supervisor.run(job);

    EXPECT_LE(outcome.attempts, policy.max_attempts);
    EXPECT_GE(outcome.attempts, 1);
    if (!outcome.failed) {
      EXPECT_TRUE(outcome.result.completed);
      // Byte conservation across every checkpointed retry leg.
      EXPECT_EQ(outcome.result.goodput_bytes(), job.dataset.total_bytes());
    } else {
      EXPECT_EQ(outcome.recovery.count(RecoveryAction::kGiveUp), 1);
    }
    // Every resume beyond the first attempt is audited.
    EXPECT_EQ(outcome.recovery.count(RecoveryAction::kResume),
              outcome.attempts - 1);
  }
}

// --- link arbiter at fleet scale ------------------------------------------
// The arbiter auto-routes big rounds through the waterfill solver; these
// fuzz rounds push it to 10^4-10^5 submitted demands (many tenant slices,
// heavy duplicate clusters, a dose of degenerate entries) and require the
// joint allocation to stay bitwise equal to the pinned reference loop run
// on the plain concatenation.

struct ArbiterFuzzRound {
  double capacity = 0.0;
  std::vector<std::vector<net::DemandGroup>> tenants;
};

ArbiterFuzzRound make_arbiter_round(std::uint64_t seed, std::uint64_t scale) {
  Rng rng(seed);
  ArbiterFuzzRound round;
  const auto tenants = rng.uniform_int(3, 24);
  double agg = 0.0;
  for (std::uint64_t t = 0; t < tenants; ++t) {
    std::vector<net::DemandGroup> groups;
    const auto ng = rng.uniform_int(1, 12);
    for (std::uint64_t g = 0; g < ng; ++g) {
      const double cap = rng.uniform01() < 0.06 ? 0.0 : rng.uniform(1e5, 1e9);
      const double weight =
          rng.uniform01() < 0.06 ? 0.0 : static_cast<double>(rng.uniform_int(1, 8));
      const auto count = rng.uniform_int(1, scale);
      groups.push_back({cap, weight, count});
      agg += cap * static_cast<double>(count);
    }
    round.tenants.push_back(std::move(groups));
  }
  round.capacity = std::max(1e6, agg * rng.uniform(0.05, 1.3));
  return round;
}

/// Run one round through an arbiter (grouped submission) and return the
/// concatenated allocation + total.
std::pair<std::vector<BitsPerSecond>, double> run_arbiter_round(
    const ArbiterFuzzRound& round, net::LinkArbiter& arbiter) {
  arbiter.begin_round(round.capacity);
  for (const auto& groups : round.tenants) arbiter.submit_groups(groups);
  arbiter.allocate();
  std::vector<BitsPerSecond> flat;
  for (std::size_t t = 0; t < round.tenants.size(); ++t) {
    const auto s = arbiter.slice(t);
    flat.insert(flat.end(), s.begin(), s.end());
  }
  return {std::move(flat), arbiter.total()};
}

TEST(FuzzRobustness, ArbiterAtScaleMatchesReferenceBitwise) {
  for (std::uint64_t seed : {71ull, 72ull, 73ull, 74ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    // Counts up to 4000 per group: rounds land in the 10^4-10^5 range.
    const auto round = make_arbiter_round(seed, 4000);
    net::LinkArbiter arbiter;
    const auto [flat, total] = run_arbiter_round(round, arbiter);
    ASSERT_GE(flat.size(), 10000u) << "fuzz shape too small to mean anything";

    std::vector<net::Demand> concat;
    for (const auto& groups : round.tenants) {
      for (const auto& g : groups) {
        concat.insert(concat.end(), static_cast<std::size_t>(g.count),
                      net::Demand{g.cap, g.weight});
      }
    }
    net::FairShareScratch scratch;
    std::vector<BitsPerSecond> ref;
    const double ref_total =
        net::fair_share_reference_into(round.capacity, concat, ref, scratch);
    ASSERT_EQ(flat.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(flat[i], ref[i]) << "flow " << i;
    }
    EXPECT_EQ(total, ref_total);
  }
}

TEST(FuzzRobustness, ArbiterSameSeedIsBitReproducibleAcrossJobCounts) {
  // The solver is deterministic scalar code, so the worker count of the
  // process around it must be invisible: run the same seeded rounds
  // sequentially and on 4 threads (one arbiter per thread, disjoint rounds
  // — the arbiter is shared-nothing by design) and require bitwise equality.
  static constexpr std::uint64_t kSeeds[] = {81, 82, 83, 84};
  std::vector<std::vector<BitsPerSecond>> sequential(4);
  std::vector<double> sequential_totals(4);
  for (int i = 0; i < 4; ++i) {
    net::LinkArbiter arbiter;
    auto [flat, total] = run_arbiter_round(make_arbiter_round(kSeeds[i], 1500), arbiter);
    sequential[static_cast<std::size_t>(i)] = std::move(flat);
    sequential_totals[static_cast<std::size_t>(i)] = total;
  }

  std::vector<std::vector<BitsPerSecond>> threaded(4);
  std::vector<double> threaded_totals(4);
  {
    std::vector<std::thread> workers;
    for (int i = 0; i < 4; ++i) {
      workers.emplace_back([i, &threaded, &threaded_totals] {
        net::LinkArbiter arbiter;
        auto [flat, total] =
            run_arbiter_round(make_arbiter_round(kSeeds[i], 1500), arbiter);
        threaded[static_cast<std::size_t>(i)] = std::move(flat);
        threaded_totals[static_cast<std::size_t>(i)] = total;
      });
    }
    for (auto& w : workers) w.join();
  }

  for (std::size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE("round " + std::to_string(kSeeds[i]));
    ASSERT_EQ(threaded[i].size(), sequential[i].size());
    EXPECT_EQ(threaded_totals[i], sequential_totals[i]);
    for (std::size_t j = 0; j < sequential[i].size(); ++j) {
      ASSERT_EQ(threaded[i][j], sequential[i][j]) << "flow " << j;
    }
  }

  // And plain same-seed runs agree with themselves, worker count aside.
  for (const std::uint64_t seed : kSeeds) {
    net::LinkArbiter a, b;
    const auto ra = run_arbiter_round(make_arbiter_round(seed, 1500), a);
    const auto rb = run_arbiter_round(make_arbiter_round(seed, 1500), b);
    ASSERT_EQ(ra.first, rb.first);
    EXPECT_EQ(ra.second, rb.second);
  }
}

// --- parallel tick pipeline at fleet scale ---------------------------------
// The master tick's per-tenant phases shard across an exp::TickPool when
// SchedulerPolicy::jobs > 1. The contract is bitwise: at ANY worker count the
// report — every double, every sample window, every recovery event — must be
// byte-identical to the sequential loop. These cases draw 10^2-10^3-tenant
// schedules with faults, preemption pressure and (in the multipath battery)
// per-path brownout storms, and compare scheduler_report_payload strings.

/// One randomized fleet schedule, run at `tick_jobs` pipeline workers. The
/// whole draw happens before the run, from the seed alone, so two calls with
/// different `tick_jobs` schedule byte-identical inputs.
FuzzRun run_parallel_fleet(std::uint64_t seed, int n, int tick_jobs,
                           bool multipath = false,
                           obs::ObsCollector* collector = nullptr) {
  Rng rng(seed);
  const auto tb = tiny_xsede();

  SchedulerPolicy policy;
  // Half the fleet runs at once (well past the pool's serial cutoff); the
  // rest queues behind it, so interactive arrivals must preempt their way in.
  policy.max_concurrent = n / 2;
  policy.max_queue_depth = n;
  policy.supervision.attempt_deadline = rng.uniform(120.0, 400.0);
  policy.supervision.max_attempts = 4;
  policy.supervision.degrade_after = 1;
  policy.horizon = 24.0 * 3600;
  policy.jobs = tick_jobs;
  if (rng.uniform01() < 0.5) {
    policy.link_brownouts.push_back({rng.uniform(5.0, 40.0),
                                     rng.uniform(5.0, 30.0),
                                     rng.uniform(0.3, 0.8)});
  }
  if (multipath) {
    const int n_paths = static_cast<int>(rng.uniform_int(2, 3));
    policy.paths.add({"p0", tb.env.path, tb.env.route, 0});
    for (int p = 1; p < n_paths; ++p) {
      net::PathSpec alt = tb.env.path;
      alt.rtt *= rng.uniform(1.2, 2.0);
      policy.paths.add({"p" + std::to_string(p), alt, net::futuregrid_route(), p});
    }
    const Watts peak = session_peak_power_bound(tb.env);
    for (int p = 0; p < n_paths; ++p) {
      policy.path_power_caps.push_back(peak * rng.uniform(4.0, 12.0));
      policy.link_brownouts.push_back({rng.uniform(2.0, 20.0),
                                       rng.uniform(3.0, 15.0),
                                       rng.uniform(0.2, 0.6), p});
    }
  }

  Scheduler scheduler(tb, gbps(7.0), policy, fast_cfg());
  scheduler.set_fault_plan(fuzz_faults(rng));
  if (collector != nullptr) scheduler.set_collector(collector);

  std::vector<SchedulerJob> jobs;
  FuzzRun run;
  Seconds at = 0.0;
  for (int i = 0; i < n; ++i) {
    TransferJob job;
    job.name = "f" + std::to_string(i);
    const int files = static_cast<int>(rng.uniform_int(2, 4));
    for (int f = 0; f < files; ++f) {
      job.dataset.files.push_back(
          {static_cast<Bytes>(rng.uniform_int(16, 64)) * kMB});
    }
    job.policy = fuzz_policy(rng);
    job.sla_percent = rng.uniform(5.0, 40.0);
    job.energy_budget = rng.uniform(5e4, 5e5);
    job.max_channels = 2;
    run.dataset_bytes.push_back(job.dataset.total_bytes());
    jobs.push_back({std::move(job), at});
    // Arrivals far faster than the shared link drains: the fleet piles up
    // to max_concurrent instead of trickling through a handful of slots.
    at += rng.uniform(0.0, 0.05);
  }
  run.report = scheduler.run(std::move(jobs));
  return run;
}

/// ASSERT_EQ on two multi-megabyte payloads prints both in full on failure;
/// this prints the first divergent byte with context instead.
void expect_payloads_equal(const std::string& a, const std::string& b) {
  if (a == b) return;
  std::size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  const std::size_t lo = i > 120 ? i - 120 : 0;
  ADD_FAILURE() << "payloads diverge at byte " << i << " (sizes " << a.size()
                << " vs " << b.size() << ")\n  a: ..." << a.substr(lo, 240)
                << "\n  b: ..." << b.substr(lo, 240);
}

TEST(FuzzRobustness, ParallelFleetTickIsBitIdenticalToSequential) {
  // (seed, tenants): two 10^2-scale draws and one pushing toward 10^3.
  const std::pair<std::uint64_t, int> cases[] = {{91, 100}, {92, 100}, {93, 300}};
  for (const auto& [seed, n] : cases) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " n " + std::to_string(n));
    const auto seq = run_parallel_fleet(seed, n, 1);
    const auto par = run_parallel_fleet(seed, n, 4);
    expect_payloads_equal(scheduler_report_payload(seq.report),
                          scheduler_report_payload(par.report));
    // The schedule must actually exercise the machinery it claims to test.
    EXPECT_GE(par.report.max_concurrent_observed, 16);
    EXPECT_TRUE(par.report.accounting_consistent());
    ASSERT_EQ(par.report.jobs.size(), par.dataset_bytes.size());
    for (std::size_t i = 0; i < par.report.jobs.size(); ++i) {
      check_outcome_invariants("parallel fleet", par.report.jobs[i],
                               par.dataset_bytes[i]);
    }
  }
}

TEST(FuzzRobustness, ParallelFleetMultipathIsBitIdenticalToSequential) {
  for (const std::uint64_t seed : {101ull, 102ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto seq = run_parallel_fleet(seed, 120, 1, /*multipath=*/true);
    const auto par = run_parallel_fleet(seed, 120, 4, /*multipath=*/true);
    expect_payloads_equal(scheduler_report_payload(seq.report),
                          scheduler_report_payload(par.report));
    EXPECT_GE(par.report.max_concurrent_observed, 16);
    EXPECT_EQ(par.report.power_cap_violations, 0);
  }
}

TEST(FuzzRobustness, ParallelFleetSameSeedIsBitReproducible) {
  // Two parallel runs of the same draw: the pool's nondeterministic shard
  // interleaving must never reach the report.
  const auto a = run_parallel_fleet(111, 150, 4);
  const auto b = run_parallel_fleet(111, 150, 4);
  expect_payloads_equal(scheduler_report_payload(a.report),
                        scheduler_report_payload(b.report));
}

TEST(FuzzRobustness, ParallelFleetObsExportsMatchSequential) {
  // With a collector attached, every tenant publishes trace counters and
  // decisions into its own slot from inside the (parallel) tick phases. The
  // merged exports — trace, metrics snapshot, decision log — must still be
  // byte-identical to the sequential run's.
  obs::ObsCollector seq_obs;
  obs::ObsCollector par_obs;
  const auto seq = run_parallel_fleet(121, 100, 1, false, &seq_obs);
  const auto par = run_parallel_fleet(121, 100, 4, false, &par_obs);
  expect_payloads_equal(scheduler_report_payload(seq.report),
                        scheduler_report_payload(par.report));

  const auto dump = [](const obs::ObsCollector& c) {
    std::ostringstream trace, metrics, decisions;
    c.write_chrome_trace(trace);
    c.write_metrics_json(metrics);
    c.write_decisions_json(decisions);
    return trace.str() + "\n" + metrics.str() + "\n" + decisions.str();
  };
  const std::string a = dump(seq_obs);
  const std::string b = dump(par_obs);
  EXPECT_GT(a.size(), 2u);
  expect_payloads_equal(a, b);
}

}  // namespace
}  // namespace eadt::exp
