#include "core/model_based.hpp"

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/algorithms.hpp"
#include "exp/runner.hpp"

namespace eadt::core {
namespace {

TEST(ThroughputCurve, RecoversASaturatingLaw) {
  // Synthesize T(c) = 8000 * c / (c + 3) and fit it back.
  std::vector<std::pair<int, double>> probes;
  for (int c : {1, 4, 8, 12}) {
    probes.emplace_back(c, 8000.0 * c / (c + 3.0));
  }
  const auto curve = fit_throughput_curve(probes);
  ASSERT_TRUE(curve.has_value());
  EXPECT_NEAR(curve->t_max, 8000.0, 80.0);
  EXPECT_NEAR(curve->k, 3.0, 0.1);
  EXPECT_NEAR(curve->predict(6), 8000.0 * 6 / 9.0, 60.0);
}

TEST(ThroughputCurve, RejectsDegenerateInput) {
  std::vector<std::pair<int, double>> one{{4, 500.0}};
  EXPECT_FALSE(fit_throughput_curve(one).has_value());
  std::vector<std::pair<int, double>> zeros{{1, 0.0}, {2, 0.0}};
  EXPECT_FALSE(fit_throughput_curve(zeros).has_value());
  // Decreasing data (LAN thrash) linearises to a non-positive intercept.
  std::vector<std::pair<int, double>> falling{{1, 800.0}, {6, 400.0}, {12, 250.0}};
  const auto curve = fit_throughput_curve(falling);
  if (curve) {
    EXPECT_GT(curve->t_max, 0.0);  // if it fits at all, it is sane
  }
}

TEST(PowerCurve, RecoversAQuadratic) {
  std::vector<std::pair<int, double>> probes;
  for (int c : {1, 6, 12}) {
    probes.emplace_back(c, 40.0 + 5.0 * c + 0.4 * c * c);
  }
  const auto curve = fit_power_curve(probes);
  ASSERT_TRUE(curve.has_value());
  EXPECT_NEAR(curve->p0, 40.0, 1e-6);
  EXPECT_NEAR(curve->p1, 5.0, 1e-6);
  EXPECT_NEAR(curve->p2, 0.4, 1e-6);
}

TEST(PowerCurve, TwoLevelsFallBackToALine) {
  std::vector<std::pair<int, double>> probes{{1, 50.0}, {1, 52.0}, {8, 120.0}};
  const auto curve = fit_power_curve(probes);
  ASSERT_TRUE(curve.has_value());
  EXPECT_DOUBLE_EQ(curve->p2, 0.0);
  EXPECT_GT(curve->p1, 0.0);
}

TEST(BestRatioLevel, FindsTheAnalyticOptimum) {
  // T(c) saturating with k=3, P(c) quadratic: ratio peaks in the interior.
  ThroughputCurve t{8000.0, 3.0};
  PowerCurve p{40.0, 2.0, 0.8};
  const int best = best_ratio_level(t, p, 20);
  EXPECT_GT(best, 1);
  EXPECT_LT(best, 20);
  // Verify against brute force.
  double best_ratio = -1;
  int brute = 1;
  for (int c = 1; c <= 20; ++c) {
    const double r = t.predict(c) / p.predict(c);
    if (r > best_ratio) {
      best_ratio = r;
      brute = c;
    }
  }
  EXPECT_EQ(best, brute);
}

// End-to-end: model-based tuning vs HTEE on a scaled XSEDE testbed.
class ModelBasedEndToEnd : public ::testing::Test {
 protected:
  static testbeds::Testbed scaled_xsede() {
    auto t = testbeds::xsede();
    t.recipe.total_bytes /= 4;
    for (auto& band : t.recipe.bands) {
      band.max_size = std::max(band.max_size / 4, band.min_size * 2);
    }
    return t;
  }
};

TEST_F(ModelBasedEndToEnd, ThreeProbesLandNearTheBruteForceOptimum) {
  const auto t = scaled_xsede();
  const auto ds = t.make_dataset();
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;

  ModelBasedController ctl(12);
  EXPECT_EQ(ctl.probe_count(), 3);
  proto::TransferSession session(t.env, ds, plan_htee(t.env, ds, 12), cfg);
  const auto r = session.run(&ctl);
  ASSERT_TRUE(r.completed);
  ASSERT_TRUE(ctl.search_finished());

  // Compare the chosen level's standalone efficiency to the brute force best.
  double best_bf = 0.0;
  double chosen_bf = 0.0;
  for (int level = 1; level <= 12; ++level) {
    const auto out = exp::run_algorithm(exp::Algorithm::kBf, t, ds, level, cfg);
    best_bf = std::max(best_bf, out.ratio());
    if (level == ctl.chosen_level()) chosen_bf = out.ratio();
  }
  EXPECT_GT(chosen_bf, best_bf * 0.75)
      << "chose " << ctl.chosen_level();
}

TEST_F(ModelBasedEndToEnd, HandlesTheLanWhereCurvesInvert) {
  auto t = testbeds::didclab();
  t.recipe.total_bytes /= 8;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / 8, band.min_size * 2);
  }
  const auto ds = t.make_dataset();
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  ModelBasedController ctl(12);
  proto::TransferSession session(t.env, ds, baselines::plan_promc(t.env, ds, 12), cfg);
  const auto r = session.run(&ctl);
  EXPECT_TRUE(r.completed);
  // On the thrashing single disk the best level is low.
  EXPECT_LE(ctl.chosen_level(), 4);
}

TEST_F(ModelBasedEndToEnd, DeterministicChoice) {
  const auto t = scaled_xsede();
  const auto ds = t.make_dataset();
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  ModelBasedController c1(12), c2(12);
  proto::TransferSession s1(t.env, ds, plan_htee(t.env, ds, 12), cfg);
  proto::TransferSession s2(t.env, ds, plan_htee(t.env, ds, 12), cfg);
  (void)s1.run(&c1);
  (void)s2.run(&c2);
  EXPECT_EQ(c1.chosen_level(), c2.chosen_level());
}

}  // namespace
}  // namespace eadt::core
