#include "bench_common.hpp"

#include <gtest/gtest.h>

namespace eadt::bench {
namespace {

std::optional<Options> try_parse(std::vector<const char*> args,
                                 std::string* error = nullptr) {
  args.insert(args.begin(), "bench");  // argv[0]
  return try_parse_options(static_cast<int>(args.size()),
                           const_cast<char**>(args.data()), error);
}

Options parse(std::vector<const char*> args) {
  const auto opt = try_parse(std::move(args));
  EXPECT_TRUE(opt.has_value());
  return opt.value_or(Options{});
}

TEST(BenchOptions, Defaults) {
  const auto opt = parse({});
  EXPECT_EQ(opt.bench_name, "bench");
  EXPECT_EQ(opt.scale, 1u);
  EXPECT_FALSE(opt.csv);
  EXPECT_TRUE(opt.plot_stem.empty());
  EXPECT_EQ(opt.jobs, 0);  // 0 = defer to EADT_JOBS / hardware
  EXPECT_FALSE(opt.quick);
  EXPECT_TRUE(opt.json);
  EXPECT_TRUE(opt.json_path.empty());
  EXPECT_FALSE(opt.help);
}

TEST(BenchOptions, ScaleForms) {
  EXPECT_EQ(parse({"--scale", "8"}).scale, 8u);
  EXPECT_EQ(parse({"--scale=16"}).scale, 16u);
  // Nonsense clamps to 1, never 0 (a divisor).
  EXPECT_EQ(parse({"--scale", "0"}).scale, 1u);
  EXPECT_EQ(parse({"--scale", "-3"}).scale, 1u);
  EXPECT_EQ(parse({"--scale=junk"}).scale, 1u);
}

TEST(BenchOptions, CsvAndPlot) {
  const auto opt = parse({"--csv", "--plot", "out/fig2"});
  EXPECT_TRUE(opt.csv);
  EXPECT_EQ(opt.plot_stem, "out/fig2");
  EXPECT_EQ(parse({"--plot=stem"}).plot_stem, "stem");
}

TEST(BenchOptions, JobsForms) {
  EXPECT_EQ(parse({"--jobs", "4"}).jobs, 4);
  EXPECT_EQ(parse({"--jobs=2"}).jobs, 2);
  // Negative never reaches the runner; clamps to "auto".
  EXPECT_EQ(parse({"--jobs", "-7"}).jobs, 0);
}

TEST(BenchOptions, QuickRaisesScaleToSmokeSize) {
  EXPECT_EQ(parse({"--quick"}).scale, 32u);
  EXPECT_TRUE(parse({"--quick"}).quick);
  // --quick is a floor, not an override: a bigger explicit scale survives.
  EXPECT_EQ(parse({"--quick", "--scale", "64"}).scale, 64u);
  EXPECT_EQ(parse({"--scale", "4", "--quick"}).scale, 32u);
}

TEST(BenchOptions, JsonControls) {
  EXPECT_EQ(parse({"--json", "/tmp/out.json"}).json_path, "/tmp/out.json");
  EXPECT_EQ(parse({"--json=rec.json"}).json_path, "rec.json");
  EXPECT_FALSE(parse({"--no-json"}).json);
  EXPECT_TRUE(parse({}).json);
}

TEST(BenchOptions, ObservabilityFlags) {
  EXPECT_FALSE(parse({}).observing());
  const auto opt =
      parse({"--trace-out", "t.json", "--metrics-out=m.json", "--decisions", "d.json"});
  EXPECT_EQ(opt.trace_out, "t.json");
  EXPECT_EQ(opt.metrics_out, "m.json");
  EXPECT_EQ(opt.decisions_out, "d.json");
  EXPECT_TRUE(opt.observing());
  // Any one flag alone turns observation on.
  EXPECT_TRUE(parse({"--trace-out=t.json"}).observing());
  EXPECT_TRUE(parse({"--metrics-out", "m.json"}).observing());
  EXPECT_TRUE(parse({"--decisions=d.json"}).observing());
}

TEST(BenchOptions, ObservabilityFlagsRequireValues) {
  for (const char* flag : {"--trace-out", "--metrics-out", "--decisions"}) {
    std::string error;
    EXPECT_FALSE(try_parse({flag}, &error).has_value()) << flag;
    EXPECT_NE(error.find("requires a value"), std::string::npos) << flag;
  }
}

TEST(BenchOptions, HelpIsFlagged) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"-h"}).help);
}

TEST(BenchOptions, UnknownFlagsAreRejected) {
  std::string error;
  EXPECT_FALSE(try_parse({"--frobnicate", "--csv"}, &error).has_value());
  EXPECT_NE(error.find("--frobnicate"), std::string::npos);
  EXPECT_NE(error.find("unknown option"), std::string::npos);
}

TEST(BenchOptions, PositionalArgumentsAreRejected) {
  std::string error;
  EXPECT_FALSE(try_parse({"extra"}, &error).has_value());
  EXPECT_NE(error.find("unexpected argument"), std::string::npos);
}

TEST(BenchOptions, TrailingValuelessFlagsAreErrors) {
  // "--scale" etc. with no following value must not read past argv — and,
  // unlike the old lenient parser, must say so instead of guessing.
  for (const char* flag : {"--scale", "--plot", "--jobs", "--json"}) {
    std::string error;
    EXPECT_FALSE(try_parse({flag}, &error).has_value()) << flag;
    EXPECT_NE(error.find("requires a value"), std::string::npos) << flag;
  }
}

TEST(BenchOptions, BenchNameComesFromArgvBasename) {
  std::vector<const char*> args = {"/build/bench/fig2_xsede", "--csv"};
  const auto opt = try_parse_options(static_cast<int>(args.size()),
                                     const_cast<char**>(args.data()), nullptr);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(opt->bench_name, "fig2_xsede");
}

}  // namespace
}  // namespace eadt::bench
