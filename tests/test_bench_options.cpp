#include "bench_common.hpp"

#include <gtest/gtest.h>

namespace eadt::bench {
namespace {

Options parse(std::vector<const char*> args) {
  args.insert(args.begin(), "bench");  // argv[0]
  return parse_options(static_cast<int>(args.size()),
                       const_cast<char**>(args.data()));
}

TEST(BenchOptions, Defaults) {
  const auto opt = parse({});
  EXPECT_EQ(opt.scale, 1u);
  EXPECT_FALSE(opt.csv);
  EXPECT_TRUE(opt.plot_stem.empty());
}

TEST(BenchOptions, ScaleForms) {
  EXPECT_EQ(parse({"--scale", "8"}).scale, 8u);
  EXPECT_EQ(parse({"--scale=16"}).scale, 16u);
  // Nonsense clamps to 1, never 0 (a divisor).
  EXPECT_EQ(parse({"--scale", "0"}).scale, 1u);
  EXPECT_EQ(parse({"--scale", "-3"}).scale, 1u);
  EXPECT_EQ(parse({"--scale=junk"}).scale, 1u);
}

TEST(BenchOptions, CsvAndPlot) {
  const auto opt = parse({"--csv", "--plot", "out/fig2"});
  EXPECT_TRUE(opt.csv);
  EXPECT_EQ(opt.plot_stem, "out/fig2");
  EXPECT_EQ(parse({"--plot=stem"}).plot_stem, "stem");
}

TEST(BenchOptions, UnknownFlagsAreIgnored) {
  const auto opt = parse({"--frobnicate", "--csv"});
  EXPECT_TRUE(opt.csv);
}

TEST(BenchOptions, TrailingValuelessFlagsAreSafe) {
  // "--scale" and "--plot" with no following value must not read past argv.
  const auto a = parse({"--scale"});
  EXPECT_EQ(a.scale, 1u);
  const auto b = parse({"--plot"});
  EXPECT_TRUE(b.plot_stem.empty());
}

}  // namespace
}  // namespace eadt::bench
