#include "bench_common.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace eadt::bench {
namespace {

std::optional<Options> try_parse(std::vector<const char*> args,
                                 std::string* error = nullptr) {
  args.insert(args.begin(), "bench");  // argv[0]
  return try_parse_options(static_cast<int>(args.size()),
                           const_cast<char**>(args.data()), error);
}

Options parse(std::vector<const char*> args) {
  const auto opt = try_parse(std::move(args));
  EXPECT_TRUE(opt.has_value());
  return opt.value_or(Options{});
}

TEST(BenchOptions, Defaults) {
  const auto opt = parse({});
  EXPECT_EQ(opt.bench_name, "bench");
  EXPECT_EQ(opt.scale, 1u);
  EXPECT_FALSE(opt.csv);
  EXPECT_TRUE(opt.plot_stem.empty());
  EXPECT_EQ(opt.jobs, 0);  // 0 = defer to EADT_JOBS / hardware
  EXPECT_FALSE(opt.quick);
  EXPECT_TRUE(opt.json);
  EXPECT_TRUE(opt.json_path.empty());
  EXPECT_FALSE(opt.help);
}

TEST(BenchOptions, ScaleForms) {
  EXPECT_EQ(parse({"--scale", "8"}).scale, 8u);
  EXPECT_EQ(parse({"--scale=16"}).scale, 16u);
  // Nonsense clamps to 1, never 0 (a divisor).
  EXPECT_EQ(parse({"--scale", "0"}).scale, 1u);
  EXPECT_EQ(parse({"--scale", "-3"}).scale, 1u);
  EXPECT_EQ(parse({"--scale=junk"}).scale, 1u);
}

TEST(BenchOptions, CsvAndPlot) {
  const auto opt = parse({"--csv", "--plot", "out/fig2"});
  EXPECT_TRUE(opt.csv);
  EXPECT_EQ(opt.plot_stem, "out/fig2");
  EXPECT_EQ(parse({"--plot=stem"}).plot_stem, "stem");
}

TEST(BenchOptions, JobsForms) {
  EXPECT_EQ(parse({"--jobs", "4"}).jobs, 4);
  EXPECT_EQ(parse({"--jobs=2"}).jobs, 2);
  // Negative never reaches the runner; clamps to "auto".
  EXPECT_EQ(parse({"--jobs", "-7"}).jobs, 0);
}

TEST(BenchOptions, QuickRaisesScaleToSmokeSize) {
  EXPECT_EQ(parse({"--quick"}).scale, 32u);
  EXPECT_TRUE(parse({"--quick"}).quick);
  // --quick is a floor, not an override: a bigger explicit scale survives.
  EXPECT_EQ(parse({"--quick", "--scale", "64"}).scale, 64u);
  EXPECT_EQ(parse({"--scale", "4", "--quick"}).scale, 32u);
}

TEST(BenchOptions, JsonControls) {
  EXPECT_EQ(parse({"--json", "/tmp/out.json"}).json_path, "/tmp/out.json");
  EXPECT_EQ(parse({"--json=rec.json"}).json_path, "rec.json");
  EXPECT_FALSE(parse({"--no-json"}).json);
  EXPECT_TRUE(parse({}).json);
}

TEST(BenchOptions, ObservabilityFlags) {
  EXPECT_FALSE(parse({}).observing());
  const auto opt =
      parse({"--trace-out", "t.json", "--metrics-out=m.json", "--decisions", "d.json"});
  EXPECT_EQ(opt.trace_out, "t.json");
  EXPECT_EQ(opt.metrics_out, "m.json");
  EXPECT_EQ(opt.decisions_out, "d.json");
  EXPECT_TRUE(opt.observing());
  // Any one flag alone turns observation on.
  EXPECT_TRUE(parse({"--trace-out=t.json"}).observing());
  EXPECT_TRUE(parse({"--metrics-out", "m.json"}).observing());
  EXPECT_TRUE(parse({"--decisions=d.json"}).observing());
}

TEST(BenchOptions, ObservabilityFlagsRequireValues) {
  for (const char* flag : {"--trace-out", "--metrics-out", "--decisions"}) {
    std::string error;
    EXPECT_FALSE(try_parse({flag}, &error).has_value()) << flag;
    EXPECT_NE(error.find("requires a value"), std::string::npos) << flag;
  }
}

TEST(BenchOptions, MetricsListenForms) {
  EXPECT_EQ(parse({}).metrics_listen, -1);  // default: no listener
  EXPECT_EQ(parse({"--metrics-listen", "9109"}).metrics_listen, 9109);
  EXPECT_EQ(parse({"--metrics-listen=0"}).metrics_listen, 0);  // ephemeral
  std::string error;
  EXPECT_FALSE(try_parse({"--metrics-listen", "70000"}, &error).has_value());
  EXPECT_NE(error.find("--metrics-listen"), std::string::npos);
  EXPECT_FALSE(try_parse({"--metrics-listen"}, &error).has_value());
}

TEST(BenchOptions, ForceFlag) {
  EXPECT_FALSE(parse({}).force);
  EXPECT_TRUE(parse({"--force"}).force);
}

TEST(BenchOptions, OverwriteRefusalGuardsExistingOutputs) {
  // A path that exists is refused without --force; --force and fresh paths
  // pass. The BENCH json is exempt — it is rewritten every run by design.
  const std::string existing = ::testing::TempDir() + "bench_options_existing.json";
  { std::ofstream touch(existing); }

  Options opt;
  EXPECT_FALSE(overwrite_refusal(opt).has_value());
  opt.trace_out = existing;
  const auto refusal = overwrite_refusal(opt);
  ASSERT_TRUE(refusal.has_value());
  EXPECT_NE(refusal->find(existing), std::string::npos);
  EXPECT_NE(refusal->find("--force"), std::string::npos);
  opt.force = true;
  EXPECT_FALSE(overwrite_refusal(opt).has_value());

  Options fresh;
  fresh.metrics_out = ::testing::TempDir() + "bench_options_never_written.json";
  EXPECT_FALSE(overwrite_refusal(fresh).has_value());

  Options json_only;
  json_only.json_path = existing;  // exempt on purpose
  EXPECT_FALSE(overwrite_refusal(json_only).has_value());

  std::remove(existing.c_str());
}

TEST(BenchOptions, HelpIsFlagged) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"-h"}).help);
}

TEST(BenchOptions, UnknownFlagsAreRejected) {
  std::string error;
  EXPECT_FALSE(try_parse({"--frobnicate", "--csv"}, &error).has_value());
  EXPECT_NE(error.find("--frobnicate"), std::string::npos);
  EXPECT_NE(error.find("unknown option"), std::string::npos);
}

TEST(BenchOptions, PositionalArgumentsAreRejected) {
  std::string error;
  EXPECT_FALSE(try_parse({"extra"}, &error).has_value());
  EXPECT_NE(error.find("unexpected argument"), std::string::npos);
}

TEST(BenchOptions, TrailingValuelessFlagsAreErrors) {
  // "--scale" etc. with no following value must not read past argv — and,
  // unlike the old lenient parser, must say so instead of guessing.
  for (const char* flag : {"--scale", "--plot", "--jobs", "--json"}) {
    std::string error;
    EXPECT_FALSE(try_parse({flag}, &error).has_value()) << flag;
    EXPECT_NE(error.find("requires a value"), std::string::npos) << flag;
  }
}

TEST(BenchOptions, BenchNameComesFromArgvBasename) {
  std::vector<const char*> args = {"/build/bench/fig2_xsede", "--csv"};
  const auto opt = try_parse_options(static_cast<int>(args.size()),
                                     const_cast<char**>(args.data()), nullptr);
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(opt->bench_name, "fig2_xsede");
}

}  // namespace
}  // namespace eadt::bench
