// The parallel sweep executor's contract: output is bit-identical whatever
// the worker count, repeated sweeps in one process agree byte-for-byte (no
// hidden static state), the fan-out primitive visits every index exactly
// once, and a big faulted sweep with checkpoint sinks is race-free (the TSan
// CI job runs this file under -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

#include "exp/sweep.hpp"

namespace eadt::exp {
namespace {

testbeds::Testbed tiny(testbeds::Testbed t, unsigned div = 64) {
  t.recipe.total_bytes /= div;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / div, band.min_size * 2);
  }
  return t;
}

std::vector<testbeds::Testbed> tiny_testbeds(unsigned div = 64) {
  return {tiny(testbeds::xsede(), div), tiny(testbeds::futuregrid(), div),
          tiny(testbeds::didclab(), div)};
}

/// The golden grid of the issue: 3 testbeds x 6 algorithms x 5 concurrency
/// levels = 90 tasks.
std::vector<SweepTask> golden_grid() {
  std::vector<SweepTask> tasks;
  for (const auto& t : tiny_testbeds()) {
    const auto dataset = t.make_dataset();
    for (const auto a : figure_algorithms()) {
      for (const int cc : {1, 2, 4, 8, 12}) {
        SweepTask task;
        task.testbed = t;
        task.dataset = dataset;
        task.algorithm = a;
        task.concurrency = cc;
        task.config.sample_interval = 1.0;
        tasks.push_back(std::move(task));
      }
    }
  }
  return tasks;
}

TEST(SweepRunner, ParallelOutputIsByteIdenticalToSequential) {
  const auto tasks = golden_grid();
  ASSERT_EQ(tasks.size(), 90u);

  const auto seq = SweepRunner(1).run(tasks);
  const std::string golden = sweep_payload(seq);
  ASSERT_FALSE(golden.empty());

  for (const int jobs : {4, 8}) {
    const auto par = SweepRunner(jobs).run(tasks);
    EXPECT_EQ(sweep_payload(par), golden) << "jobs=" << jobs;
  }

  // Spot-check the payload is substantive: every task completed and moved
  // the whole dataset.
  for (const auto& r : seq) {
    EXPECT_TRUE(r.result().completed);
    EXPECT_GT(r.result().bytes, 0u);
    EXPECT_GT(r.result().sim_counters.fired, 0u);
    EXPECT_GE(r.result().sim_counters.scheduled, r.result().sim_counters.fired);
  }
}

TEST(SweepRunner, RepeatedSweepInOneProcessIsByteIdentical) {
  // No hidden static state: the same runner, run twice back to back in this
  // process, must reproduce the payload byte-for-byte.
  std::vector<SweepTask> tasks;
  const auto t = tiny(testbeds::xsede());
  const auto dataset = t.make_dataset();
  for (const auto a : figure_algorithms()) {
    for (const int cc : {1, 4, 12}) {
      SweepTask task;
      task.testbed = t;
      task.dataset = dataset;
      task.algorithm = a;
      task.concurrency = cc;
      task.config.sample_interval = 1.0;
      tasks.push_back(std::move(task));
    }
  }
  const SweepRunner runner(4);
  const auto first = runner.run(tasks);
  const auto second = runner.run(tasks);
  EXPECT_EQ(sweep_payload(first), sweep_payload(second));
}

TEST(SweepRunner, SlaTasksAreDeterministicToo) {
  const auto t = tiny(testbeds::xsede());
  const auto dataset = t.make_dataset();

  // Calibrate the target off one ProMC run, as the SLA figures do.
  std::vector<SweepTask> promc(1);
  promc[0].testbed = t;
  promc[0].dataset = dataset;
  promc[0].algorithm = Algorithm::kProMc;
  promc[0].concurrency = 12;
  const auto max_thr = SweepRunner(1).run(promc)[0].result().avg_throughput();
  ASSERT_GT(max_thr, 0.0);

  std::vector<SweepTask> tasks;
  for (const double pct : sla_target_percents()) {
    SweepTask task;
    task.kind = SweepTask::Kind::kSla;
    task.testbed = t;
    task.dataset = dataset;
    task.concurrency = 12;
    task.target_percent = pct;
    task.max_throughput = max_thr;
    tasks.push_back(std::move(task));
  }
  const auto seq = SweepRunner(1).run(tasks);
  const auto par = SweepRunner(8).run(tasks);
  EXPECT_EQ(sweep_payload(seq), sweep_payload(par));
  for (const auto& r : seq) {
    EXPECT_EQ(r.kind, SweepTask::Kind::kSla);
    EXPECT_TRUE(r.result().completed);
  }
}

TEST(SweepRunner, StressFaultedSweepWithCheckpointSinksIsRaceFree) {
  // 200 tasks under an active fault plan, each with a checkpoint sink. The
  // shared counter is atomic and the per-task tallies are index-addressed,
  // so TSan passing over this test certifies the executor adds no races.
  constexpr std::size_t kTasks = 200;
  const auto t = tiny(testbeds::xsede(), 256);
  const auto dataset = t.make_dataset();

  proto::FaultPlan faults;
  faults.stochastic.channel_drop_rate = 0.05;
  faults.stochastic.checksum_failure_prob = 0.002;

  std::vector<int> checkpoints_per_task(kTasks, 0);
  std::atomic<int> total_checkpoints{0};

  const Algorithm algorithms[] = {Algorithm::kSc, Algorithm::kMinE,
                                  Algorithm::kProMc, Algorithm::kHtee};
  std::vector<SweepTask> tasks;
  for (std::size_t i = 0; i < kTasks; ++i) {
    SweepTask task;
    task.testbed = t;
    task.dataset = dataset;
    task.algorithm = algorithms[i % std::size(algorithms)];
    task.concurrency = 1 + static_cast<int>(i % 12);
    task.faults = faults;
    task.seed = i + 1;  // decorrelate the fault histories per grid point
    task.config.sample_interval = 1.0;
    task.config.checkpoint_interval = 1.0;
    task.checkpoints = [&checkpoints_per_task, &total_checkpoints,
                        i](const proto::TransferCheckpoint&) {
      ++checkpoints_per_task[i];
      total_checkpoints.fetch_add(1, std::memory_order_relaxed);
    };
    tasks.push_back(std::move(task));
  }

  const auto par = SweepRunner(8).run(tasks);
  ASSERT_EQ(par.size(), kTasks);
  int sum = 0;
  for (const auto& n : checkpoints_per_task) sum += n;
  EXPECT_EQ(sum, total_checkpoints.load());
  for (const auto& r : par) {
    EXPECT_TRUE(r.result().completed) << "task " << r.index;
    EXPECT_EQ(r.result().goodput_bytes(), dataset.total_bytes()) << "task " << r.index;
    EXPECT_NE(r.derived_seed, 0u);
  }

  // And the faulted parallel sweep replays bit-identically in sequence.
  std::vector<SweepTask> no_sink = tasks;
  for (auto& task : no_sink) task.checkpoints = {};
  const auto seq = SweepRunner(1).run(no_sink);
  EXPECT_EQ(sweep_payload(seq), sweep_payload(par));
}

TEST(SweepRunner, ParallelIndexedVisitsEveryIndexOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  SweepRunner::parallel_indexed(8, kCount, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
  // Zero tasks is a no-op, not a hang.
  SweepRunner::parallel_indexed(4, 0, [&](std::size_t) { FAIL(); });
}

TEST(SweepRunner, WorkerExceptionsPropagate) {
  EXPECT_THROW(
      SweepRunner::parallel_indexed(4, 100,
                                    [&](std::size_t i) {
                                      if (i == 57) throw std::runtime_error("boom");
                                    }),
      std::runtime_error);
}

TEST(SweepRunner, ResolveJobsPolicy) {
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_EQ(resolve_jobs(1), 1);

  ::setenv("EADT_JOBS", "5", 1);
  EXPECT_EQ(resolve_jobs(0), 5);
  EXPECT_EQ(resolve_jobs(2), 2);  // explicit wins over the environment
  ::setenv("EADT_JOBS", "junk", 1);
  EXPECT_GE(resolve_jobs(0), 1);  // falls through to hardware_concurrency
  ::unsetenv("EADT_JOBS");
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-4), 1);
}

TEST(SweepRunner, DerivedSeedReKeysStochasticStreams) {
  // With a non-zero base seed, two grid points that differ only in
  // concurrency get different jitter streams — their derived seeds differ —
  // while the same point replays identically.
  auto t = tiny(testbeds::xsede());
  t.env.rate_jitter_sd = 0.10;
  const auto dataset = t.make_dataset();
  auto make = [&](int cc, std::uint64_t seed) {
    SweepTask task;
    task.testbed = t;
    task.dataset = dataset;
    task.algorithm = Algorithm::kProMc;
    task.concurrency = cc;
    task.seed = seed;
    return task;
  };
  const auto r = SweepRunner(1).run({make(4, 7), make(8, 7), make(4, 7), make(4, 9)});
  EXPECT_NE(r[0].derived_seed, r[1].derived_seed);
  EXPECT_EQ(r[0].derived_seed, r[2].derived_seed);
  EXPECT_NE(r[0].derived_seed, r[3].derived_seed);
  EXPECT_DOUBLE_EQ(r[0].result().duration, r[2].result().duration);
  // Different base seed, same point: different jitter history.
  EXPECT_NE(r[0].result().duration, r[3].result().duration);
}

}  // namespace
}  // namespace eadt::exp
