#include "power/tariff.hpp"

#include <gtest/gtest.h>

#include "exp/service.hpp"

namespace eadt::power {
namespace {

TEST(Tariff, FlatRateIsJustKwhTimesPrice) {
  const auto t = Tariff::flat(0.20);
  // 1 kWh = 3.6 MJ at $0.20.
  EXPECT_NEAR(t.cost(3.6e6, 0.0, 3600.0), 0.20, 1e-9);
  EXPECT_DOUBLE_EQ(t.price_at(0.0), 0.20);
  EXPECT_DOUBLE_EQ(t.price_at(13.5 * 3600.0), 0.20);
}

TEST(Tariff, UsdPerJouleConversion) {
  EXPECT_NEAR(usd_per_joule(0.36), 1e-7, 1e-15);
}

TEST(Tariff, TimeOfUsePricesByHour) {
  // Peak 17-21h at $0.30, off-peak 0-6h at $0.05, base $0.12.
  const auto t = Tariff::time_of_use(
      0.12, {{17.0, 21.0, 0.30}, {0.0, 6.0, 0.05}});
  EXPECT_DOUBLE_EQ(t.price_at(3.0 * 3600.0), 0.05);
  EXPECT_DOUBLE_EQ(t.price_at(12.0 * 3600.0), 0.12);
  EXPECT_DOUBLE_EQ(t.price_at(18.0 * 3600.0), 0.30);
  EXPECT_DOUBLE_EQ(t.price_at(21.0 * 3600.0), 0.12);  // end is exclusive
  // The schedule repeats daily.
  EXPECT_DOUBLE_EQ(t.price_at(kSecondsPerDay + 3.0 * 3600.0), 0.05);
  EXPECT_DOUBLE_EQ(t.cheapest_hour(), 0.0);
}

TEST(Tariff, MidnightWrappingBand) {
  const auto t = Tariff::time_of_use(0.12, {{22.0, 6.0, 0.04}});
  EXPECT_DOUBLE_EQ(t.price_at(23.0 * 3600.0), 0.04);
  EXPECT_DOUBLE_EQ(t.price_at(2.0 * 3600.0), 0.04);
  EXPECT_DOUBLE_EQ(t.price_at(12.0 * 3600.0), 0.12);
}

TEST(Tariff, CostIntegratesAcrossBandBoundaries) {
  // 16:00-18:00 at constant 1 kW: one hour at base, one at peak.
  const auto t = Tariff::time_of_use(0.10, {{17.0, 21.0, 0.30}});
  const Joules two_hours_at_1kw = 1000.0 * 2.0 * 3600.0;
  const double usd = t.cost(two_hours_at_1kw, 16.0 * 3600.0, 2.0 * 3600.0);
  EXPECT_NEAR(usd, 0.10 + 0.30, 1e-9);
}

TEST(Tariff, CostIntegratesAcrossMidnight) {
  const auto t = Tariff::time_of_use(0.10, {{0.0, 6.0, 0.02}});
  // 23:00 to 01:00 at 1 kW: one hour base, one hour off-peak.
  const Joules e = 1000.0 * 2.0 * 3600.0;
  EXPECT_NEAR(t.cost(e, 23.0 * 3600.0, 2.0 * 3600.0), 0.10 + 0.02, 1e-9);
}

TEST(Tariff, DegenerateInputs) {
  const auto t = Tariff::flat(0.10);
  EXPECT_DOUBLE_EQ(t.cost(0.0, 0.0, 100.0), 0.0);
  // Zero duration: charged at the instant's price.
  EXPECT_NEAR(t.cost(3.6e6, 0.0, 0.0), 0.10, 1e-9);
  // Empty bands collapse to the base rate.
  const auto empty = Tariff::time_of_use(0.07, {{5.0, 5.0, 0.99}});
  EXPECT_DOUBLE_EQ(empty.price_at(5.0 * 3600.0), 0.07);
}

TEST(TariffService, QueueCostsDependOnStartTime) {
  auto testbed = testbeds::xsede();
  testbed.recipe.total_bytes /= 64;
  for (auto& band : testbed.recipe.bands) {
    band.max_size = std::max(band.max_size / 64, band.min_size * 2);
  }
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  exp::TransferService service(testbed, gbps(7.0), cfg);

  std::vector<exp::TransferJob> jobs;
  jobs.push_back({"j", testbed.make_dataset(), exp::JobPolicy::kDeadline, 0, 0, 8});

  const auto tou = Tariff::time_of_use(0.10, {{17.0, 21.0, 0.40}});
  service.set_tariff(tou, 18.0 * 3600.0);  // starts mid-peak
  const auto peak = service.run_queue(jobs);
  service.set_tariff(tou, 2.0 * 3600.0);  // small hours
  const auto night = service.run_queue(jobs);

  ASSERT_GT(peak.total_cost_usd, 0.0);
  EXPECT_NEAR(peak.total_cost_usd / night.total_cost_usd, 4.0, 0.05);
  EXPECT_NEAR(peak.jobs[0].cost_usd, peak.total_cost_usd, 1e-12);
}

}  // namespace
}  // namespace eadt::power
