// The bench drivers' observability contract: --trace-out/--metrics-out/
// --decisions must attach a real collector and write real files. Guards the
// regression where a bench accepted the flags, ran unobserved, and silently
// wrote nothing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "baselines/baselines.hpp"
#include "bench_common.hpp"
#include "obs/obs.hpp"
#include "proto/session.hpp"
#include "testbeds/testbeds.hpp"

namespace eadt::bench {
namespace {

/// A writable scratch path that is removed on scope exit.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) {
    path = ::testing::TempDir() + "/" + name;
  }
  ~TempFile() { std::remove(path.c_str()); }
  [[nodiscard]] std::string slurp() const {
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }
};

TEST(BenchObs, NoFlagsMeansNoCollector) {
  Options opt;
  EXPECT_FALSE(opt.observing());
  EXPECT_EQ(make_collector(opt), nullptr);
}

TEST(BenchObs, AnySingleFlagMakesACollector) {
  for (auto field : {&Options::trace_out, &Options::metrics_out,
                     &Options::decisions_out}) {
    Options opt;
    opt.*field = "somewhere.json";
    EXPECT_TRUE(opt.observing());
    EXPECT_NE(make_collector(opt), nullptr);
  }
}

TEST(BenchObs, ObservedRunProducesNonEmptyExports) {
  TempFile trace("bench_obs_trace.json");
  TempFile metrics("bench_obs_metrics.json");
  TempFile decisions("bench_obs_decisions.json");
  Options opt;
  opt.trace_out = trace.path;
  opt.metrics_out = metrics.path;
  opt.decisions_out = decisions.path;

  const auto collector = make_collector(opt);
  ASSERT_NE(collector, nullptr);

  // Drive one tiny observed session through the collector, exactly as a
  // bench attaches it (config.obs = one slot).
  auto tb = testbeds::xsede();
  tb.recipe.total_bytes /= 256;
  for (auto& band : tb.recipe.bands) {
    band.max_size = std::max(band.max_size / 256, band.min_size * 2);
  }
  const auto ds = tb.make_dataset();
  proto::SessionConfig config;
  config.sample_interval = 1.0;
  config.obs = collector->slot(0, "observed-run");
  proto::TransferSession session(tb.env, ds, baselines::plan_promc(tb.env, ds, 4),
                                 config);
  const auto result = session.run();
  ASSERT_TRUE(result.completed);

  write_obs_outputs(opt, *collector);

  const auto trace_json = trace.slurp();
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("observed-run"), std::string::npos);
  // The engine opened real spans, not just the envelope.
  EXPECT_NE(trace_json.find("\"ph\": \"B\""), std::string::npos);

  const auto metrics_json = metrics.slurp();
  EXPECT_NE(metrics_json.find("\"counters\""), std::string::npos);

  const auto decisions_json = decisions.slurp();
  EXPECT_NE(decisions_json.find("eadt-decisions-v1"), std::string::npos);
}

TEST(BenchObs, UnrequestedExportsAreNotWritten) {
  TempFile metrics("bench_obs_only_metrics.json");
  Options opt;
  opt.metrics_out = metrics.path;
  const auto collector = make_collector(opt);
  ASSERT_NE(collector, nullptr);
  collector->metrics().counter("x").add(1);
  write_obs_outputs(opt, *collector);
  EXPECT_FALSE(metrics.slurp().empty());
  // No trace/decisions paths were configured, so nothing else appears in the
  // scratch directory for this test (nothing to assert beyond "no crash").
}

}  // namespace
}  // namespace eadt::bench
