// Path-resilience layer: checkpoint path identity, targeted fault filtering,
// phi-accrual health scoring, and the supervisor/scheduler failover loops
// (migration off a dead primary, hedged finish legs, per-site power caps).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "exp/health.hpp"
#include "exp/scheduler.hpp"
#include "exp/service.hpp"
#include "exp/supervisor.hpp"
#include "net/path_set.hpp"
#include "proto/checkpoint.hpp"
#include "proto/faults.hpp"

namespace eadt::exp {
namespace {

testbeds::Testbed small_xsede() {
  auto t = testbeds::xsede();
  t.recipe.total_bytes /= 64;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / 64, band.min_size * 2);
  }
  return t;
}

proto::SessionConfig dense_cfg() {
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;  // dense windows so the health monitor sees stalls
  return cfg;
}

/// Primary = the testbed's own route; backup = a longer detour of the same
/// trunk class with its own device chain and tariff zone.
net::PathSet two_paths(const testbeds::Testbed& tb) {
  net::PathSet paths;
  paths.add({"primary", tb.env.path, tb.env.route, 0});
  net::PathSpec alt = tb.env.path;
  alt.rtt *= 1.5;
  paths.add({"backup", alt, net::futuregrid_route(), 1});
  return paths;
}

/// Duration of one clean unsupervised run of `job` — the unit the failover
/// deadlines are expressed in.
Seconds clean_duration(const testbeds::Testbed& tb, const TransferJob& job) {
  Supervisor supervisor(tb, gbps(7.0), {}, SupervisorPolicy{}, dense_cfg());
  const auto outcome = supervisor.run(job);
  EXPECT_FALSE(outcome.failed);
  return outcome.result.duration;
}

TransferJob deadline_job(const testbeds::Testbed& tb, const std::string& name) {
  TransferJob job;
  job.name = name;
  job.dataset = tb.make_dataset();
  job.policy = JobPolicy::kDeadline;
  job.max_channels = 8;
  return job;
}

// --- checkpoint path identity ----------------------------------------------

TEST(FailoverCheckpoint, PathIdRoundTrips) {
  proto::TransferCheckpoint ckpt;
  ckpt.taken_at = 12.5;
  ckpt.dataset_fingerprint = 77;
  ckpt.path_id = 3;
  std::stringstream ss;
  proto::write_checkpoint(ss, ckpt);
  std::string error;
  const auto back = proto::read_checkpoint(ss, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->path_id, 3);
  EXPECT_EQ(back->taken_at, 12.5);
}

TEST(FailoverCheckpoint, PrimaryPathLineIsOmitted) {
  // Single-path journals must serialize exactly as they did before the path
  // field existed, so existing goldens and readers are untouched.
  proto::TransferCheckpoint ckpt;
  ckpt.path_id = 0;
  std::stringstream ss;
  proto::write_checkpoint(ss, ckpt);
  EXPECT_EQ(ss.str().find("\npath "), std::string::npos);

  // And a journal written without the line parses back to the primary.
  std::stringstream in(ss.str());
  const auto back = proto::read_checkpoint(in);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->path_id, 0);
}

// --- targeted fault filtering ----------------------------------------------

TEST(FailoverFaults, ForPathKeepsOwnAndUntargetedBrownouts) {
  proto::FaultPlan plan;
  plan.brownouts.push_back({1.0, 2.0, 0.5, /*path=*/-1});
  plan.brownouts.push_back({5.0, 2.0, 0.1, /*path=*/0});
  plan.brownouts.push_back({9.0, 2.0, 0.2, /*path=*/1});
  plan.channel_drops.push_back({3.0, -1});

  const auto p0 = plan.for_path(0);
  ASSERT_EQ(p0.brownouts.size(), 2u);
  EXPECT_EQ(p0.brownouts[0].path, -1);
  EXPECT_EQ(p0.brownouts[1].path, 0);
  EXPECT_EQ(p0.channel_drops.size(), 1u);  // non-brownouts pass through

  const auto p1 = plan.for_path(1);
  ASSERT_EQ(p1.brownouts.size(), 2u);
  EXPECT_EQ(p1.brownouts[1].path, 1);

  const auto p2 = plan.for_path(2);
  ASSERT_EQ(p2.brownouts.size(), 1u);  // only the untargeted one remains
}

// --- health monitor ---------------------------------------------------------

TEST(FailoverHealth, StartsOptimisticAndTieBreaksLowestIndex) {
  HealthMonitor monitor(3);
  for (int p = 0; p < 3; ++p) EXPECT_EQ(monitor.phi(p), 0.0);
  EXPECT_EQ(monitor.healthiest(), 0);
  EXPECT_EQ(monitor.healthiest(/*exclude=*/0), 1);
}

TEST(FailoverHealth, StalledGoodputCrossesSuspicionThenFailure) {
  HealthMonitor monitor(2);
  double last = 0.0;
  bool suspected = false;
  for (int w = 1; w <= 60; ++w) {
    monitor.observe_goodput(0, static_cast<Seconds>(w), 0.0);
    const double phi = monitor.phi(0);
    EXPECT_GE(phi, last);  // monotone while the stall persists
    last = phi;
    if (monitor.suspect(0)) suspected = true;
  }
  EXPECT_TRUE(suspected);
  EXPECT_TRUE(monitor.failed(0));
  // The untouched path is unaffected and wins the failover pick.
  EXPECT_EQ(monitor.phi(1), 0.0);
  EXPECT_EQ(monitor.healthiest(/*exclude=*/0), 1);
}

TEST(FailoverHealth, RecoveredGoodputDrivesPhiBackDown) {
  HealthMonitor monitor(1);
  for (int w = 1; w <= 20; ++w) {
    monitor.observe_goodput(0, static_cast<Seconds>(w), 0.0);
  }
  const double stalled = monitor.phi(0);
  for (int w = 21; w <= 80; ++w) {
    monitor.observe_goodput(0, static_cast<Seconds>(w), 1.0);
  }
  EXPECT_LT(monitor.phi(0), stalled);
  EXPECT_FALSE(monitor.suspect(0));
}

TEST(FailoverHealth, FaultDemeritsDecayWithSimulatedTime) {
  HealthMonitorConfig cfg;
  cfg.fault_weight = 0.5;
  cfg.fault_halflife = 30.0;
  HealthMonitor monitor(1, cfg);
  monitor.observe_fault(0, 0.0, /*weight=*/2.0);
  const double fresh = monitor.phi(0);
  EXPECT_NEAR(fresh, 1.0, 1e-9);  // 2.0 * fault_weight
  // Advance simulated time with healthy goodput; one half-life halves the
  // demerit term while the ewma term stays ~0.
  monitor.observe_goodput(0, 30.0, 1.0);
  EXPECT_NEAR(monitor.phi(0), 0.5, 0.05);
  monitor.observe_goodput(0, 300.0, 1.0);
  EXPECT_LT(monitor.phi(0), 0.01);
}

// --- environment re-binding -------------------------------------------------

TEST(FailoverEnvironment, RebindsPathAndRouteOnly) {
  const auto tb = small_xsede();
  net::PathSpec alt = tb.env.path;
  alt.rtt = 0.123;
  const net::PathOption option{"detour", alt, net::didclab_route(), 2};
  const auto env = environment_for_path(tb.env, option);
  EXPECT_EQ(env.path.rtt, 0.123);
  EXPECT_EQ(env.path.bandwidth, tb.env.path.bandwidth);
  EXPECT_NE(env.name, tb.env.name);
  // End systems are untouched: same endpoints, different wire between them.
  EXPECT_EQ(env.source.servers.size(), tb.env.source.servers.size());
  EXPECT_EQ(env.destination.servers.size(), tb.env.destination.servers.size());
}

// --- supervisor failover ----------------------------------------------------

TEST(FailoverSupervisor, MigratesOffDeadPrimaryAndConservesBytes) {
  const auto tb = small_xsede();
  const auto job = deadline_job(tb, "outage");
  const Seconds T = clean_duration(tb, job);
  ASSERT_GT(T, 0.0);

  SupervisorPolicy policy;
  policy.attempt_deadline = 0.9 * T;
  policy.max_attempts = 6;
  policy.degrade_after = 4;
  policy.paths = two_paths(tb);
  policy.health.suspect_phi = 0.45;

  proto::FaultPlan faults;
  faults.brownouts.push_back({0.35 * T, 1e6, 0.0, /*path=*/0});

  Supervisor supervisor(tb, gbps(7.0), faults, policy, dense_cfg());
  const auto outcome = supervisor.run(job);

  EXPECT_FALSE(outcome.failed);
  EXPECT_TRUE(outcome.result.completed);
  EXPECT_GE(outcome.migrations, 1);
  EXPECT_LE(outcome.migrations, outcome.attempts);
  EXPECT_EQ(outcome.final_path, 1);
  EXPECT_EQ(outcome.recovery.count(RecoveryAction::kMigrate), outcome.migrations);
  // Landed bytes are never re-paid and never lost across the failover.
  EXPECT_EQ(outcome.result.goodput_bytes(), job.dataset.total_bytes());
}

TEST(FailoverSupervisor, EmptyPathSetNeverMigratesOrHedges) {
  const auto tb = small_xsede();
  const auto job = deadline_job(tb, "single");
  const Seconds T = clean_duration(tb, job);

  SupervisorPolicy policy;
  policy.attempt_deadline = 0.5 * T;
  policy.max_attempts = 6;
  policy.job_deadline = 0.8 * T;  // inert without paths
  policy.hedge = true;

  Supervisor supervisor(tb, gbps(7.0), {}, policy, dense_cfg());
  const auto outcome = supervisor.run(job);
  EXPECT_FALSE(outcome.failed);
  EXPECT_EQ(outcome.migrations, 0);
  EXPECT_EQ(outcome.hedge_legs, 0);
  EXPECT_EQ(outcome.hedge_energy, 0.0);
  EXPECT_EQ(outcome.final_path, 0);
}

TEST(FailoverSupervisor, HedgesTailWhenDeadlineProjectionSlips) {
  const auto tb = small_xsede();
  const auto job = deadline_job(tb, "hedged");
  const Seconds T = clean_duration(tb, job);

  SupervisorPolicy policy;
  policy.attempt_deadline = 0.6 * T;
  policy.max_attempts = 6;
  policy.degrade_after = 4;
  policy.paths = two_paths(tb);
  policy.job_deadline = 0.85 * T;
  policy.hedge = true;

  Supervisor supervisor(tb, gbps(7.0), {}, policy, dense_cfg());
  const auto outcome = supervisor.run(job);

  EXPECT_FALSE(outcome.failed);
  EXPECT_EQ(outcome.hedge_legs, 2);  // exactly one race, two legs
  EXPECT_GE(outcome.hedge_energy, 0.0);
  EXPECT_EQ(outcome.recovery.count(RecoveryAction::kHedge), 1);
  EXPECT_EQ(outcome.result.goodput_bytes(), job.dataset.total_bytes());
}

// --- scheduler failover -----------------------------------------------------

TEST(FailoverScheduler, PartitionDrainsTenantsOntoSurvivingSite) {
  const auto tb = small_xsede();
  const auto probe = deadline_job(tb, "probe");
  TransferJob balanced = probe;
  balanced.policy = JobPolicy::kBalanced;
  balanced.max_channels = 4;
  const Seconds T = clean_duration(tb, balanced);

  SchedulerPolicy policy;
  policy.max_concurrent = 4;
  policy.max_queue_depth = 8;
  policy.paths = two_paths(tb);
  const Watts peak = session_peak_power_bound(tb.env);
  policy.path_power_caps = {peak * 2.5, peak * 2.5};
  policy.supervision.attempt_deadline = 2.5 * T;
  policy.supervision.max_attempts = 12;
  policy.supervision.degrade_after = 3;
  policy.horizon = 500.0 * T;
  policy.link_brownouts.push_back({0.5 * T, 100.0 * T, 0.0, /*path=*/0});

  std::vector<SchedulerJob> jobs;
  std::vector<Bytes> sizes;
  for (int i = 0; i < 4; ++i) {
    auto tenant = tb;
    tenant.dataset_seed = 7 + static_cast<std::uint64_t>(i);
    TransferJob job;
    job.name = "part" + std::to_string(i);
    job.dataset = tenant.make_dataset();
    job.policy = JobPolicy::kBalanced;
    job.max_channels = 4;
    sizes.push_back(job.dataset.total_bytes());
    jobs.push_back({std::move(job), 0.1 * T * i});
  }

  Scheduler scheduler(tb, gbps(7.0), policy, dense_cfg());
  const auto report = scheduler.run(std::move(jobs));

  EXPECT_TRUE(report.accounting_consistent());
  EXPECT_EQ(report.completed, report.accepted);
  EXPECT_EQ(report.failed, 0);
  EXPECT_GE(report.migrations, 1);
  EXPECT_EQ(report.power_cap_violations, 0);
  int migrations = 0;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const auto& out = report.jobs[i];
    EXPECT_EQ(out.result.goodput_bytes(), sizes[i]);
    EXPECT_LE(out.migrations, out.attempts);
    migrations += out.migrations;
    // Everyone finishes on the surviving site.
    EXPECT_EQ(out.path, 1);
  }
  EXPECT_EQ(report.migrations, migrations);
}

TEST(FailoverScheduler, PerSiteCapsBoundConcurrencyPerPath) {
  const auto tb = small_xsede();
  SchedulerPolicy policy;
  policy.max_concurrent = 8;
  policy.max_queue_depth = 16;
  policy.paths = two_paths(tb);
  const Watts peak = session_peak_power_bound(tb.env);
  // Each site has room for exactly one session; the pair bounds the whole
  // schedule at two concurrent regardless of max_concurrent.
  policy.path_power_caps = {peak * 1.2, peak * 1.2};
  policy.horizon = 24.0 * 3600;

  std::vector<SchedulerJob> jobs;
  for (int i = 0; i < 5; ++i) {
    auto tenant = tb;
    tenant.dataset_seed = 31 + static_cast<std::uint64_t>(i);
    TransferJob job;
    job.name = "cap" + std::to_string(i);
    job.dataset = tenant.make_dataset();
    job.policy = JobPolicy::kBalanced;
    job.max_channels = 4;
    jobs.push_back({std::move(job), 2.0 * i});
  }

  Scheduler scheduler(tb, gbps(7.0), policy, dense_cfg());
  const auto report = scheduler.run(std::move(jobs));

  EXPECT_TRUE(report.accounting_consistent());
  EXPECT_EQ(report.completed, report.accepted);
  EXPECT_LE(report.max_concurrent_observed, 2);
  EXPECT_EQ(report.power_cap_violations, 0);
}

}  // namespace
}  // namespace eadt::exp
