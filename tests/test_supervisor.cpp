// Supervision: deadline watchdogs, checkpointed retries, the degradation
// ladder, and honest failure accounting in the service report.
#include <gtest/gtest.h>

#include "exp/service.hpp"
#include "exp/supervisor.hpp"
#include "testbeds/testbeds.hpp"

namespace eadt::exp {
namespace {

testbeds::Testbed tiny_xsede() {
  auto t = testbeds::xsede();
  t.recipe.total_bytes /= 64;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / 64, band.min_size * 2);
  }
  return t;
}

proto::Dataset job_dataset(Bytes file, int count) {
  proto::Dataset ds;
  for (int i = 0; i < count; ++i) ds.files.push_back({file});
  return ds;
}

proto::SessionConfig fast_cfg() {
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  return cfg;
}

TEST(Supervisor, RecoveryActionNames) {
  EXPECT_STREQ(to_string(RecoveryAction::kResume), "resume");
  EXPECT_STREQ(to_string(RecoveryAction::kDeadlineAbort), "deadline-abort");
  EXPECT_STREQ(to_string(RecoveryAction::kReduceChannels), "reduce-channels");
  EXPECT_STREQ(to_string(RecoveryAction::kPolicyFallback), "policy-fallback");
  EXPECT_STREQ(to_string(RecoveryAction::kGiveUp), "give-up");
}

TEST(Supervisor, CompletesInOneAttemptWhenNothingGoesWrong) {
  const auto t = tiny_xsede();
  SupervisorPolicy policy;
  policy.attempt_deadline = 30.0;  // generous: never trips
  const Supervisor sup(t, gbps(7.0), {}, policy, fast_cfg());
  const auto out = sup.run({"ok", job_dataset(100 * kMB, 8), JobPolicy::kDeadline, 0, 0, 8});

  EXPECT_FALSE(out.failed);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_TRUE(out.result.completed);
  EXPECT_TRUE(out.recovery.events.empty());
  EXPECT_FALSE(out.recovery.degraded());
}

TEST(Supervisor, DeadlineAbortsThenResumesToCompletion) {
  // The whole job needs ~2 s (per-file overheads are re-paid on the cold
  // channels of every leg); a 0.8 s watchdog forces several abort/resume
  // legs, each continuing from the journal instead of starting over.
  const auto t = tiny_xsede();
  const auto ds = job_dataset(100 * kMB, 16);
  SupervisorPolicy policy;
  policy.attempt_deadline = 0.8;
  policy.max_attempts = 16;
  policy.degrade_after = 100;  // keep the ladder out of this test
  const Supervisor sup(t, gbps(7.0), {}, policy, fast_cfg());
  const auto out = sup.run({"chunky", ds, JobPolicy::kDeadline, 0, 0, 8});

  EXPECT_FALSE(out.failed);
  ASSERT_TRUE(out.result.completed);
  EXPECT_GE(out.attempts, 3);
  EXPECT_EQ(out.result.goodput_bytes(), ds.total_bytes());
  EXPECT_EQ(out.recovery.count(RecoveryAction::kDeadlineAbort), out.attempts - 1);
  EXPECT_EQ(out.recovery.count(RecoveryAction::kResume), out.attempts - 1);
  EXPECT_FALSE(out.recovery.degraded());
  // Legs chain on the absolute transfer clock: the finished run reports the
  // cumulative duration, not the last leg's slice.
  EXPECT_GT(out.result.duration, policy.attempt_deadline * (out.attempts - 1) - 1e-9);
}

TEST(Supervisor, LadderStepsDownChannelsThenFallsBackToGreen) {
  const auto t = tiny_xsede();
  const auto ds = job_dataset(100 * kMB, 24);  // ~2.4 GB: every rung aborts once
  SupervisorPolicy policy;
  policy.attempt_deadline = 1.0;
  policy.max_attempts = 40;
  policy.degrade_after = 1;
  const Supervisor sup(t, gbps(7.0), {}, policy, fast_cfg());
  const auto out = sup.run({"doomed-fast", ds, JobPolicy::kDeadline, 0, 0, 8});

  EXPECT_FALSE(out.failed);
  ASSERT_TRUE(out.result.completed);
  EXPECT_EQ(out.result.goodput_bytes(), ds.total_bytes());
  EXPECT_TRUE(out.recovery.degraded());
  // 8 -> 4 -> 2 -> 1 channels, then the policy rung.
  EXPECT_EQ(out.recovery.count(RecoveryAction::kReduceChannels), 3);
  EXPECT_EQ(out.recovery.count(RecoveryAction::kPolicyFallback), 1);
  // After the fallback every further decision ran at the green operating point.
  bool fell_back = false;
  for (const auto& e : out.recovery.events) {
    if (e.action == RecoveryAction::kPolicyFallback) fell_back = true;
    if (fell_back) {
      EXPECT_EQ(e.policy, "green");
      EXPECT_EQ(e.max_channels, 1);
    }
  }
}

TEST(Supervisor, GivesUpOnceTheRetryBudgetIsSpent) {
  const auto t = tiny_xsede();
  const auto ds = job_dataset(100 * kMB, 16);
  SupervisorPolicy policy;
  policy.attempt_deadline = 0.8;
  policy.max_attempts = 2;
  const Supervisor sup(t, gbps(7.0), {}, policy, fast_cfg());
  const auto out = sup.run({"hopeless", ds, JobPolicy::kDeadline, 0, 0, 8});

  EXPECT_TRUE(out.failed);
  EXPECT_FALSE(out.result.completed);
  EXPECT_FALSE(out.sla_met);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_EQ(out.recovery.count(RecoveryAction::kGiveUp), 1);
  // Even a failed job keeps its journal: landed bytes are reported honestly.
  ASSERT_TRUE(out.result.checkpoint.has_value());
  EXPECT_GT(out.result.checkpoint->delivered_bytes(ds), 0u);
}

TEST(Supervisor, RunIsDeterministic) {
  const auto t = tiny_xsede();
  proto::FaultPlan faults;
  faults.stochastic.channel_drop_rate = 0.8;
  faults.seed = 21;
  SupervisorPolicy policy;
  policy.attempt_deadline = 0.5;
  policy.max_attempts = 20;
  const Supervisor sup(t, gbps(7.0), faults, policy, fast_cfg());
  const TransferJob job{"det", job_dataset(100 * kMB, 8), JobPolicy::kBalanced, 0, 0, 8};
  const auto a = sup.run(job);
  const auto b = sup.run(job);

  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.result.duration, b.result.duration);
  EXPECT_EQ(a.result.bytes, b.result.bytes);
  EXPECT_EQ(a.result.end_system_energy, b.result.end_system_energy);
  ASSERT_EQ(a.recovery.events.size(), b.recovery.events.size());
  for (std::size_t i = 0; i < a.recovery.events.size(); ++i) {
    EXPECT_EQ(a.recovery.events[i].action, b.recovery.events[i].action);
    EXPECT_EQ(a.recovery.events[i].at, b.recovery.events[i].at);
  }
}

TEST(SupervisedService, QueueUnderSevereFaultsFinishesEveryJob) {
  // The acceptance scenario: a queue under a severe failure workload, per-job
  // deadlines tighter than any fault-free run, still delivers every job via
  // supervised checkpoint-resume — with the recovery story in the report.
  const auto t = tiny_xsede();
  TransferService service(t, gbps(7.0), fast_cfg());
  proto::FaultPlan severe;
  severe.stochastic.channel_drop_rate = 1.0;
  severe.stochastic.checksum_failure_prob = 0.05;
  severe.brownouts.push_back({0.5, 1.0, 0.4});
  severe.retry.backoff_initial = 0.2;
  severe.seed = 4242;
  service.set_fault_plan(severe);
  SupervisorPolicy policy;
  policy.attempt_deadline = 0.8;
  policy.max_attempts = 30;
  policy.degrade_after = 4;
  service.set_supervisor(policy);

  std::vector<TransferJob> jobs;
  jobs.push_back({"fast", job_dataset(100 * kMB, 8), JobPolicy::kDeadline, 0, 0, 8});
  jobs.push_back({"balanced", job_dataset(100 * kMB, 8), JobPolicy::kBalanced, 0, 0, 8});
  jobs.push_back({"green", job_dataset(50 * kMB, 8), JobPolicy::kGreen, 0, 0, 8});
  const auto report = service.run_queue(jobs);

  EXPECT_EQ(report.failed_jobs, 0);
  int total_resumes = 0;
  for (const auto& job : report.jobs) {
    EXPECT_FALSE(job.failed) << job.name;
    EXPECT_TRUE(job.result.completed) << job.name;
    total_resumes += job.recovery.count(RecoveryAction::kResume);
  }
  EXPECT_EQ(report.jobs[0].result.goodput_bytes(), 8u * 100 * kMB);
  EXPECT_EQ(report.jobs[1].result.goodput_bytes(), 8u * 100 * kMB);
  EXPECT_EQ(report.jobs[2].result.goodput_bytes(), 8u * 50 * kMB);
  EXPECT_GT(total_resumes, 0);  // the deadline bit at least once
  EXPECT_GT(report.mean_rate_fraction, 0.0);
}

TEST(SupervisedService, UnsupervisedServiceStillReportsFailuresHonestly) {
  // Without set_supervisor the service runs each job once — but a job that
  // trips the engine's time guard is now a *failure*, not a fake success.
  const auto t = tiny_xsede();
  auto cfg = fast_cfg();
  cfg.max_sim_time = 0.4;  // the 800 MB job needs ~1.2 s
  TransferService service(t, gbps(7.0), cfg);
  std::vector<TransferJob> jobs;
  jobs.push_back({"truncated", job_dataset(100 * kMB, 8), JobPolicy::kDeadline, 0, 0, 8});
  const auto report = service.run_queue(jobs);

  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_TRUE(report.jobs[0].failed);
  EXPECT_EQ(report.jobs[0].attempts, 1);
  EXPECT_EQ(report.failed_jobs, 1);
  EXPECT_DOUBLE_EQ(report.mean_rate_fraction, 0.0);
  EXPECT_FALSE(report.jobs[0].sla_met);
  EXPECT_EQ(report.jobs[0].recovery.count(RecoveryAction::kGiveUp), 1);
}

}  // namespace
}  // namespace eadt::exp
