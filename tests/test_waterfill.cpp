// Differential battery for net::WaterfillSolver.
//
// The solver's contract is BITWISE equality with the pinned per-flow
// progressive-filling loop (fair_share_reference_into) on every input — that
// loop's bits are baked into every golden in the repo, so "close" is not
// good enough. Every comparison here is ASSERT_EQ on doubles, never
// EXPECT_NEAR: randomized grids, duplicate-demand clusters, degenerate and
// adversarial near-boundary inputs, dist mode against the expanded demand
// list, and the LinkArbiter grouped-submission path. docs/MODEL.md §15 has
// the equivalence argument these tests enforce.
#include "net/waterfill.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "net/fair_share.hpp"
#include "util/rng.hpp"

namespace eadt::net {
namespace {

/// Bit-pattern representation: the equality the solver promises is on the
/// stored bits, which operator== cannot express for NaN (NaN != NaN even
/// when the payloads match). -0.0 and +0.0 are distinct here on purpose.
std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

std::vector<Demand> expand(const std::vector<DemandGroup>& groups) {
  std::vector<Demand> flat;
  for (const auto& g : groups) {
    flat.insert(flat.end(), static_cast<std::size_t>(g.count),
                Demand{g.cap, g.weight});
  }
  return flat;
}

/// Assert solver.solve() == reference on `demands`, bit for bit.
void check_scalar(BitsPerSecond capacity, const std::vector<Demand>& demands,
                  WaterfillSolver& solver, const char* what) {
  FairShareScratch scratch;
  std::vector<BitsPerSecond> ref;
  const BitsPerSecond ref_total =
      fair_share_reference_into(capacity, demands, ref, scratch);
  std::vector<BitsPerSecond> got;
  const BitsPerSecond got_total = solver.solve(capacity, demands, got);
  ASSERT_EQ(got.size(), ref.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(bits(got[i]), bits(ref[i]))
        << what << ": flow " << i << " of " << ref.size() << " got " << got[i]
        << " want " << ref[i] << " cap=" << demands[i].cap
        << " w=" << demands[i].weight;
  }
  ASSERT_EQ(bits(got_total), bits(ref_total))
      << what << ": total " << got_total << " want " << ref_total;
}

/// Assert solve_dist() per-member rates and total match the reference run on
/// the expanded list, bit for bit.
void check_dist(BitsPerSecond capacity, const std::vector<DemandGroup>& groups,
                WaterfillSolver& solver, const char* what) {
  const auto flat = expand(groups);
  FairShareScratch scratch;
  std::vector<BitsPerSecond> ref;
  const BitsPerSecond ref_total =
      fair_share_reference_into(capacity, flat, ref, scratch);
  std::vector<BitsPerSecond> rates;
  const BitsPerSecond got_total = solver.solve_dist(capacity, groups, rates);
  ASSERT_EQ(rates.size(), groups.size()) << what;
  std::size_t at = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (std::uint64_t k = 0; k < groups[g].count; ++k, ++at) {
      ASSERT_EQ(bits(rates[g]), bits(ref[at]))
          << what << ": group " << g << " member " << k << " got " << rates[g]
          << " want " << ref[at] << " cap=" << groups[g].cap
          << " w=" << groups[g].weight;
    }
  }
  ASSERT_EQ(bits(got_total), bits(ref_total))
      << what << ": total " << got_total << " want " << ref_total;
}

// --- randomized differential grids --------------------------------------

class WaterfillDifferential : public ::testing::TestWithParam<int> {};

// Mixed random demands: caps and weights spread over decades, with a dose of
// degenerate entries (zero cap, zero weight) so the active-set filter and
// the reference's survivor compaction both engage.
TEST_P(WaterfillDifferential, RandomScalarGridMatchesReferenceBitwise) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003ULL + 17);
  WaterfillSolver solver;
  for (int round = 0; round < 40; ++round) {
    const int n = static_cast<int>(rng.uniform_int(0, 400));
    std::vector<Demand> d;
    for (int i = 0; i < n; ++i) {
      const double cap =
          rng.uniform01() < 0.08 ? 0.0 : rng.uniform(1e4, 5e9);
      const double weight =
          rng.uniform01() < 0.08 ? 0.0 : rng.uniform(0.1, 8.0);
      d.push_back({cap, weight});
    }
    const double capacity = rng.uniform01() < 0.05 ? 0.0 : rng.uniform(1e5, 2e12);
    check_scalar(capacity, d, solver, "random scalar grid");
  }
}

// Duplicate-demand clusters: the dominant real shape (k parallel streams of
// one channel, fleets of same-shape tenants). The run-length collapse inside
// solve() must reproduce the per-flow bits, absorption effects included.
TEST_P(WaterfillDifferential, DuplicateClusterGridMatchesReferenceBitwise) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919ULL + 101);
  WaterfillSolver solver;
  for (int round = 0; round < 20; ++round) {
    std::vector<Demand> d;
    const int clusters = static_cast<int>(rng.uniform_int(1, 24));
    double cap_sum = 0.0;
    for (int c = 0; c < clusters; ++c) {
      const Demand proto{rng.uniform(1e5, 1e9),
                         static_cast<double>(rng.uniform_int(1, 6))};
      const auto k = rng.uniform_int(1, 300);
      d.insert(d.end(), static_cast<std::size_t>(k), proto);
      cap_sum += proto.cap * static_cast<double>(k);
    }
    // Capacity spanning under- to over-subscription around the aggregate.
    const double capacity = cap_sum * rng.uniform(0.05, 1.5);
    check_scalar(capacity, d, solver, "duplicate cluster grid");
  }
}

TEST_P(WaterfillDifferential, RandomDistGroupsMatchReferenceBitwise) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 524287ULL + 3);
  WaterfillSolver solver;
  for (int round = 0; round < 20; ++round) {
    const int ng = static_cast<int>(rng.uniform_int(0, 32));
    std::vector<DemandGroup> groups;
    double cap_sum = 0.0;
    for (int g = 0; g < ng; ++g) {
      DemandGroup grp{rng.uniform01() < 0.08 ? 0.0 : rng.uniform(1e5, 1e9),
                      rng.uniform01() < 0.08 ? 0.0
                                             : static_cast<double>(rng.uniform_int(1, 8)),
                      rng.uniform_int(0, 200)};  // count 0 must be a no-op
      groups.push_back(grp);
      cap_sum += grp.cap * static_cast<double>(grp.count);
    }
    const double capacity = std::max(1e6, cap_sum * rng.uniform(0.05, 1.5));
    check_dist(capacity, groups, solver, "random dist groups");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaterfillDifferential, ::testing::Range(0, 12));

// --- adversarial and degenerate inputs ----------------------------------

// Demands packed within a few ulps of each other around the waterlevel: the
// certified interval cannot separate them, so the solver must detect the
// ambiguity and fall back to exact replay rounds — and still match bitwise.
TEST(Waterfill, NearBoundaryTiesForceExactRoundsAndStillMatch) {
  Rng rng(0xBEEF);
  WaterfillSolver solver;
  for (int round = 0; round < 200; ++round) {
    const double base = rng.uniform(1e6, 1e9);
    const int n = static_cast<int>(rng.uniform_int(2, 64));
    std::vector<Demand> d;
    for (int i = 0; i < n; ++i) {
      // Caps differing by 0..4 ulps; weights exactly 1 so the waterlevel
      // lands on top of the whole cluster.
      double cap = base;
      for (int u = static_cast<int>(rng.uniform_int(0, 4)); u > 0; --u) {
        cap = std::nextafter(cap, 2.0 * base);
      }
      d.push_back({cap, 1.0});
    }
    // Capacity chosen so per-weight share ~ base: maximal ambiguity.
    const double capacity = base * static_cast<double>(n) * rng.uniform(0.999, 1.001);
    check_scalar(capacity, d, solver, "near-boundary ties");
  }
}

TEST(Waterfill, DegenerateInputsMatchReference) {
  WaterfillSolver solver;
  check_scalar(gbps(1.0), {}, solver, "empty");
  check_scalar(0.0, {{gbps(1.0), 1.0}}, solver, "zero capacity");
  check_scalar(-5.0, {{gbps(1.0), 1.0}}, solver, "negative capacity");
  check_scalar(gbps(1.0), {{0.0, 1.0}, {0.0, 2.0}}, solver, "all caps zero");
  check_scalar(gbps(1.0), {{gbps(1.0), 0.0}, {gbps(2.0), 0.0}}, solver,
               "all weights zero");
  check_scalar(gbps(1.0), {{-gbps(1.0), 1.0}, {gbps(2.0), 1.0}}, solver,
               "negative cap");
  check_scalar(gbps(1.0), {{gbps(1.0), -2.0}, {gbps(2.0), 1.0}}, solver,
               "negative weight");
  check_dist(gbps(1.0), {}, solver, "dist empty");
  check_dist(gbps(1.0), {{gbps(2.0), 1.0, 0}}, solver, "dist count zero");
  check_dist(0.0, {{gbps(2.0), 1.0, 4}}, solver, "dist zero capacity");
}

// The division-by-zero guard: every active demand has zero weight, so the
// round's weight sum is zero. The reference breaks out (allocating nothing)
// instead of dividing; the solver must do exactly the same — no NaNs, no
// infinities, zero total. Checked well above the fair_share_into threshold
// so the waterfill path (not the reference) is what's exercised.
TEST(Waterfill, AllZeroWeightsAtScaleAllocateNothing) {
  std::vector<Demand> d(2000, Demand{gbps(1.0), 0.0});
  WaterfillSolver solver;
  std::vector<BitsPerSecond> alloc;
  const BitsPerSecond total = solver.solve(gbps(100.0), d, alloc);
  EXPECT_EQ(total, 0.0);
  for (double a : alloc) ASSERT_EQ(a, 0.0);

  FairShareScratch scratch;
  const BitsPerSecond via_into = fair_share_into(gbps(100.0), d, alloc, scratch);
  EXPECT_EQ(via_into, 0.0);
  for (double a : alloc) ASSERT_EQ(a, 0.0);
  check_scalar(gbps(100.0), d, solver, "all-zero weights at scale");
}

// Non-finite demands must take the exact-replay path and still match the
// reference bit for bit (infinite caps propagate; NaNs poison comparisons in
// well-defined reference ways the solver may not reorder).
TEST(Waterfill, NonFiniteInputsMatchReference) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  WaterfillSolver solver;
  check_scalar(gbps(10.0), {{inf, 1.0}, {gbps(1.0), 1.0}}, solver, "inf cap");
  check_scalar(gbps(10.0), {{gbps(1.0), inf}, {gbps(1.0), 1.0}}, solver,
               "inf weight");
  check_scalar(inf, {{gbps(1.0), 1.0}, {gbps(2.0), 3.0}}, solver,
               "inf capacity");
  check_scalar(gbps(10.0), {{nan, 1.0}, {gbps(1.0), 1.0}}, solver, "nan cap");
  check_scalar(gbps(10.0), {{gbps(1.0), nan}, {gbps(2.0), 1.0}}, solver,
               "nan weight");
  check_dist(gbps(10.0), {{inf, 1.0, 3}, {gbps(1.0), 2.0, 5}}, solver,
             "dist inf cap");
}

// Huge counts ride the absorption early-out in the k-fold replay: once an
// addition stops changing the accumulator, the remaining repetitions are
// provably no-ops and are skipped. With the micro group's weight and cap far
// below one ulp of the running sums, 10^15 members cost one iteration each
// replay — the call must return promptly with the values the (infeasible)
// expansion would produce: both groups capped at their own demand.
TEST(Waterfill, HugeCountsAbsorbAndTerminate) {
  WaterfillSolver solver;
  std::vector<DemandGroup> groups{{gbps(5.0), 2.0, 3},
                                  {1e-18, 1e-18, 1000000000000000ULL}};
  std::vector<BitsPerSecond> rates;
  const BitsPerSecond total = solver.solve_dist(gbps(20.0), groups, rates);
  EXPECT_TRUE(std::isfinite(total));
  EXPECT_EQ(rates[0], gbps(5.0));
  EXPECT_EQ(rates[1], 1e-18);
  EXPECT_EQ(total, 3.0 * gbps(5.0));  // the micro group's bits all absorb
}

// --- fast-path engagement ------------------------------------------------

// On a well-separated large grid the certified path must actually engage:
// bitwise equality via 100% exact-replay rounds would be vacuous. Round
// count must also be group-bounded, not flow-bounded.
TEST(Waterfill, CertifiedPathEngagesOnSeparatedGrids) {
  Rng rng(0x5EED);
  std::vector<DemandGroup> groups;
  double cap_sum = 0.0;
  for (int g = 0; g < 40; ++g) {
    // Caps a decade apart in [1e5, 1e9]: no near-ties anywhere.
    DemandGroup grp{rng.uniform(1e5, 1e9), static_cast<double>(rng.uniform_int(1, 4)),
                    rng.uniform_int(100, 5000)};
    groups.push_back(grp);
    cap_sum += grp.cap * static_cast<double>(grp.count);
  }
  WaterfillSolver solver;
  std::vector<BitsPerSecond> rates;
  solver.solve_dist(0.35 * cap_sum, groups, rates);
  const auto& st = solver.stats();
  EXPECT_GT(st.rounds, 0u);
  EXPECT_GT(st.certified_rounds, 0u);
  EXPECT_EQ(st.exact_rounds, 0u) << "separated grid should never need replay";
  EXPECT_LE(st.rounds, groups.size() + 1);
  check_dist(0.35 * cap_sum, groups, solver, "separated grid");
}

// --- integration with fair_share_into and the arbiter --------------------

// fair_share_into dispatches by size: below the threshold it runs the
// reference loop, at/above it the solver. Both sides of the seam must agree
// bitwise with fair_share() on the same input.
TEST(Waterfill, FairShareIntoDispatchIsSeamlessAcrossThreshold) {
  Rng rng(0xD15B);
  FairShareScratch scratch;
  std::vector<BitsPerSecond> alloc;
  for (const std::size_t n :
       {kWaterfillThreshold - 1, kWaterfillThreshold, kWaterfillThreshold + 137}) {
    std::vector<Demand> d;
    for (std::size_t i = 0; i < n; ++i) {
      d.push_back({rng.uniform(1e5, 1e9), static_cast<double>(rng.uniform_int(1, 4))});
    }
    const double capacity = rng.uniform(1e8, 1e12);
    const auto ref = fair_share(capacity, d);
    const double total = fair_share_into(capacity, d, alloc, scratch);
    ASSERT_EQ(total, ref.total) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(alloc[i], ref.allocation[i]) << "n=" << n << " flow " << i;
    }
  }
}

// Grouped submission is a drop-in for per-flow submission: same joint
// allocation, same slices, same total, bit for bit.
TEST(Waterfill, ArbiterGroupedSubmissionMatchesFlatSubmission) {
  Rng rng(0xA5B1);
  for (int round = 0; round < 10; ++round) {
    const int tenants = static_cast<int>(rng.uniform_int(1, 6));
    std::vector<std::vector<DemandGroup>> per_tenant;
    for (int t = 0; t < tenants; ++t) {
      std::vector<DemandGroup> groups;
      const int ng = static_cast<int>(rng.uniform_int(1, 8));
      for (int g = 0; g < ng; ++g) {
        groups.push_back({rng.uniform(1e5, 1e9),
                          static_cast<double>(rng.uniform_int(1, 4)),
                          rng.uniform_int(1, 400)});
      }
      per_tenant.push_back(std::move(groups));
    }
    const double capacity = rng.uniform(1e8, 1e12);

    LinkArbiter flat;
    flat.begin_round(capacity);
    std::vector<std::vector<Demand>> expansions;
    for (const auto& groups : per_tenant) expansions.push_back(expand(groups));
    for (const auto& e : expansions) flat.submit(e);
    flat.allocate();

    LinkArbiter grouped;
    grouped.begin_round(capacity);
    for (const auto& groups : per_tenant) grouped.submit_groups(groups);
    grouped.allocate();

    ASSERT_EQ(grouped.total(), flat.total()) << "round " << round;
    for (int t = 0; t < tenants; ++t) {
      const auto a = flat.slice(static_cast<std::size_t>(t));
      const auto b = grouped.slice(static_cast<std::size_t>(t));
      ASSERT_EQ(a.size(), b.size());
      ASSERT_EQ(a.size(), expansions[static_cast<std::size_t>(t)].size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(b[i], a[i]) << "round " << round << " tenant " << t
                              << " flow " << i;
      }
    }
  }
}

// Solver reuse across differently-shaped calls must not leak state: a
// scratch is cheap state, not a cache (same rule FairShareScratch pins).
TEST(Waterfill, SolverReuseIsBitwiseIdentical) {
  Rng rng(0xF00D);
  WaterfillSolver reused;
  for (int round = 0; round < 60; ++round) {
    const int n = static_cast<int>(rng.uniform_int(0, 600));
    std::vector<Demand> d;
    for (int i = 0; i < n; ++i) {
      d.push_back({rng.uniform(1e5, 1e9), static_cast<double>(rng.uniform_int(1, 4))});
    }
    const double capacity = rng.uniform(1e6, 1e12);
    WaterfillSolver fresh;
    std::vector<BitsPerSecond> a, b;
    const double ta = reused.solve(capacity, d, a);
    const double tb = fresh.solve(capacity, d, b);
    ASSERT_EQ(ta, tb) << "round " << round;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "round " << round << " flow " << i;
    }
  }
}

}  // namespace
}  // namespace eadt::net
