#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace eadt::exp {
namespace {

proto::RunResult fake_result() {
  proto::RunResult r;
  r.duration = 10.0;
  r.bytes = 1'000'000'000;  // 800 Mbps over 10 s
  r.end_system_energy = 500.0;
  r.network_energy = 12.0;
  r.completed = true;
  proto::SampleStats s1;
  s1.window_start = 0.0;
  s1.window_end = 5.0;
  s1.bytes = 600'000'000;
  s1.end_system_energy = 300.0;
  s1.active_channels = 4;
  proto::SampleStats s2 = s1;
  s2.window_start = 5.0;
  s2.window_end = 10.0;
  s2.bytes = 400'000'000;
  s2.end_system_energy = 200.0;
  s2.active_channels = 2;
  r.samples = {s1, s2};
  return r;
}

SweepTable fake_sweep() {
  SweepTable sweep;
  sweep.levels = {1, 2};
  for (const auto alg : {Algorithm::kMinE, Algorithm::kProMc}) {
    for (const int level : sweep.levels) {
      RunOutcome out;
      out.algorithm = alg;
      out.concurrency = level;
      out.result.duration = 10.0;
      out.result.bytes = static_cast<Bytes>(1e9) * static_cast<Bytes>(level);
      out.result.end_system_energy = 100.0 * level;
      sweep.outcomes[alg][level] = out;
    }
  }
  return sweep;
}

TEST(Report, SamplesCsvShape) {
  std::ostringstream os;
  write_samples_csv(os, fake_result());
  const std::string csv = os.str();
  EXPECT_NE(csv.find("t_start_s,t_end_s,throughput_mbps,energy_j,active_channels"),
            std::string::npos);
  // 600 MB over 5 s = 960 Mbps.
  EXPECT_NE(csv.find("0.00,5.00,960.0,300.00,4"), std::string::npos);
  EXPECT_NE(csv.find("5.00,10.00,640.0,200.00,2"), std::string::npos);
  // Header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Report, SweepCsvShape) {
  std::ostringstream os;
  write_sweep_csv(os, fake_sweep());
  const std::string csv = os.str();
  EXPECT_NE(csv.find("concurrency,MinE_mbps,MinE_joule,MinE_ratio,ProMC_mbps"),
            std::string::npos);
  // Level 1: 1e9 bytes / 10 s = 800 Mbps, 100 J.
  EXPECT_NE(csv.find("1,800.0,100.0"), std::string::npos);
  EXPECT_NE(csv.find("2,1600.0,200.0"), std::string::npos);
}

TEST(Report, SweepCsvHandlesMissingCells) {
  auto sweep = fake_sweep();
  sweep.levels.push_back(4);  // no outcome recorded at level 4
  std::ostringstream os;
  write_sweep_csv(os, sweep);
  EXPECT_NE(os.str().find("4,,,,,,"), std::string::npos);
}

TEST(Report, GnuplotScriptReferencesAllSeries) {
  std::ostringstream os;
  write_sweep_gnuplot(os, fake_sweep(), "sweep.csv", "fig2");
  const std::string script = os.str();
  EXPECT_NE(script.find("set output 'fig2_a.png'"), std::string::npos);
  EXPECT_NE(script.find("set output 'fig2_b.png'"), std::string::npos);
  EXPECT_NE(script.find("set output 'fig2_c.png'"), std::string::npos);
  EXPECT_NE(script.find("title 'MinE'"), std::string::npos);
  EXPECT_NE(script.find("title 'ProMC'"), std::string::npos);
  // Panel (a) plots column 2 (first algorithm's Mbps), panel (b) column 3.
  EXPECT_NE(script.find("using 1:2"), std::string::npos);
  EXPECT_NE(script.find("using 1:3"), std::string::npos);
  EXPECT_NE(script.find("'sweep.csv'"), std::string::npos);
}

TEST(Report, SummarizeReadsWell) {
  const std::string s = summarize(fake_result());
  EXPECT_NE(s.find("Mbps"), std::string::npos);
  EXPECT_NE(s.find("kJ end-system"), std::string::npos);
  EXPECT_EQ(s.find("INCOMPLETE"), std::string::npos);

  auto r = fake_result();
  r.completed = false;
  EXPECT_NE(summarize(r).find("INCOMPLETE"), std::string::npos);
}

}  // namespace
}  // namespace eadt::exp
