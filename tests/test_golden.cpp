// Golden regression pins: the full-scale Figure 2 headline numbers, frozen
// after calibration. These are deliberately tighter than the qualitative
// integration tests — their job is to catch *accidental* drift in the model
// (a changed knob, a refactor that shifts rates), not to assert the paper.
// If you change the model on purpose, re-run bench/fig2_xsede and update the
// constants together with EXPERIMENTS.md.
#include <gtest/gtest.h>

#include "exp/runner.hpp"

namespace eadt::exp {
namespace {

struct Golden {
  Algorithm algorithm;
  int concurrency;
  double mbps;
  double joule;
};

// bench/fig2_xsede at paper scale (160 GB), recorded 2026-07-06.
constexpr Golden kFigure2[] = {
    {Algorithm::kGuc, 1, 761, 56188},
    {Algorithm::kGo, 2, 2337, 37436},
    {Algorithm::kSc, 2, 2579, 23277},
    {Algorithm::kSc, 12, 7972, 30283},
    {Algorithm::kMinE, 4, 4819, 21601},
    {Algorithm::kMinE, 12, 4819, 21601},
    {Algorithm::kProMc, 1, 1309, 35059},
    {Algorithm::kProMc, 4, 4921, 20310},
    {Algorithm::kProMc, 12, 7967, 31116},
};

class GoldenFigure2 : public ::testing::TestWithParam<Golden> {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new testbeds::Testbed(testbeds::xsede());
    dataset_ = new proto::Dataset(testbed_->make_dataset());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete testbed_;
    dataset_ = nullptr;
    testbed_ = nullptr;
  }
  static testbeds::Testbed* testbed_;
  static proto::Dataset* dataset_;
};
testbeds::Testbed* GoldenFigure2::testbed_ = nullptr;
proto::Dataset* GoldenFigure2::dataset_ = nullptr;

TEST_P(GoldenFigure2, MatchesRecordedRun) {
  const Golden g = GetParam();
  const auto out = run_algorithm(g.algorithm, *testbed_, *dataset_, g.concurrency);
  // The engine is deterministic, so 2 % headroom is pure future-proofing
  // against innocuous refactors (tick boundary shifts etc.).
  EXPECT_NEAR(out.throughput_mbps(), g.mbps, g.mbps * 0.02)
      << to_string(g.algorithm) << " cc=" << g.concurrency;
  EXPECT_NEAR(out.energy(), g.joule, g.joule * 0.02)
      << to_string(g.algorithm) << " cc=" << g.concurrency;
}

INSTANTIATE_TEST_SUITE_P(PaperScaleXsede, GoldenFigure2, ::testing::ValuesIn(kFigure2),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           return std::string(to_string(info.param.algorithm)) + "Cc" +
                                  std::to_string(info.param.concurrency);
                         });


// The same pins for the 1 Gbps testbeds (bench/fig3_futuregrid,
// bench/fig4_didclab at paper scale, recorded 2026-07-06).
constexpr Golden kFigure3[] = {
    {Algorithm::kGuc, 1, 614, 24962},
    {Algorithm::kGo, 2, 842, 24168},
    {Algorithm::kMinE, 4, 872, 21600},
    {Algorithm::kProMc, 4, 933, 21099},
};

constexpr Golden kFigure4[] = {
    {Algorithm::kProMc, 1, 764, 27090},
    {Algorithm::kProMc, 4, 526, 32096},
    {Algorithm::kMinE, 4, 764, 27090},
    {Algorithm::kGo, 2, 705, 25221},
};

class GoldenFigure3 : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenFigure3, MatchesRecordedRun) {
  static const testbeds::Testbed testbed = testbeds::futuregrid();
  static const proto::Dataset dataset = testbed.make_dataset();
  const Golden g = GetParam();
  const auto out = run_algorithm(g.algorithm, testbed, dataset, g.concurrency);
  EXPECT_NEAR(out.throughput_mbps(), g.mbps, g.mbps * 0.02);
  EXPECT_NEAR(out.energy(), g.joule, g.joule * 0.02);
}

INSTANTIATE_TEST_SUITE_P(PaperScaleFuturegrid, GoldenFigure3,
                         ::testing::ValuesIn(kFigure3),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           return std::string(to_string(info.param.algorithm)) + "Cc" +
                                  std::to_string(info.param.concurrency);
                         });

class GoldenFigure4 : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenFigure4, MatchesRecordedRun) {
  static const testbeds::Testbed testbed = testbeds::didclab();
  static const proto::Dataset dataset = testbed.make_dataset();
  const Golden g = GetParam();
  const auto out = run_algorithm(g.algorithm, testbed, dataset, g.concurrency);
  EXPECT_NEAR(out.throughput_mbps(), g.mbps, g.mbps * 0.02);
  EXPECT_NEAR(out.energy(), g.joule, g.joule * 0.02);
}

INSTANTIATE_TEST_SUITE_P(PaperScaleDidclab, GoldenFigure4,
                         ::testing::ValuesIn(kFigure4),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           return std::string(to_string(info.param.algorithm)) + "Cc" +
                                  std::to_string(info.param.concurrency);
                         });

}  // namespace
}  // namespace eadt::exp
