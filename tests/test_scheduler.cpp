#include "exp/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "exp/service.hpp"

namespace eadt::exp {
namespace {

testbeds::Testbed tiny_xsede() {
  auto t = testbeds::xsede();
  t.recipe.total_bytes /= 64;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / 64, band.min_size * 2);
  }
  return t;
}

proto::Dataset job_dataset(Bytes file, int count) {
  proto::Dataset ds;
  for (int i = 0; i < count; ++i) ds.files.push_back({file});
  return ds;
}

proto::SessionConfig fast_cfg() {
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  return cfg;
}

int count_action(const TenantOutcome& out, RecoveryAction action) {
  return out.recovery.count(action);
}

TEST(Scheduler, SlaClassMapping) {
  EXPECT_EQ(sla_class_of(JobPolicy::kDeadline), SlaClass::kInteractive);
  EXPECT_EQ(sla_class_of(JobPolicy::kSla), SlaClass::kInteractive);
  EXPECT_EQ(sla_class_of(JobPolicy::kBalanced), SlaClass::kStandard);
  EXPECT_EQ(sla_class_of(JobPolicy::kEnergyBudget), SlaClass::kStandard);
  EXPECT_EQ(sla_class_of(JobPolicy::kGreen), SlaClass::kScavenger);
  EXPECT_STREQ(to_string(SlaClass::kInteractive), "interactive");
  EXPECT_STREQ(to_string(SlaClass::kStandard), "standard");
  EXPECT_STREQ(to_string(SlaClass::kScavenger), "scavenger");
}

TEST(Scheduler, SingleTenantMatchesTheSequentialServiceBitForBit) {
  const auto tb = tiny_xsede();
  const auto ds = job_dataset(100 * kMB, 10);

  // The sequential path: one job through the single-shot Supervisor.
  TransferService service(tb, gbps(7.0), fast_cfg());
  std::vector<TransferJob> seq_jobs;
  seq_jobs.push_back({"solo", ds, JobPolicy::kBalanced, 0, 0, 6});
  const auto seq = service.run_queue(seq_jobs).jobs[0];

  // The same job as the only tenant of a Scheduler.
  SchedulerPolicy policy;
  Scheduler scheduler(tb, gbps(7.0), policy, fast_cfg());
  std::vector<SchedulerJob> jobs;
  jobs.push_back({{"solo", ds, JobPolicy::kBalanced, 0, 0, 6}, 0.0});
  const auto report = scheduler.run(std::move(jobs));

  ASSERT_EQ(report.jobs.size(), 1u);
  const auto& out = report.jobs[0];
  EXPECT_FALSE(out.failed);
  EXPECT_TRUE(out.result.completed);
  // Byte-identical engine outcome: the joint arbitration with one tenant
  // degenerates to exactly the single-session tick pipeline.
  EXPECT_EQ(out.result.bytes, seq.result.bytes);
  EXPECT_DOUBLE_EQ(out.result.duration, seq.result.duration);
  EXPECT_DOUBLE_EQ(out.result.end_system_energy, seq.result.end_system_energy);
  EXPECT_DOUBLE_EQ(out.result.network_energy, seq.result.network_energy);
  EXPECT_TRUE(report.accounting_consistent());
  EXPECT_EQ(report.max_concurrent_observed, 1);
}

TEST(Scheduler, ConcurrentTenantsContendForTheSharedPath) {
  const auto tb = tiny_xsede();
  const auto ds = job_dataset(100 * kMB, 10);

  SchedulerPolicy policy;
  policy.max_concurrent = 2;
  Scheduler solo(tb, gbps(7.0), policy, fast_cfg());
  std::vector<SchedulerJob> one;
  one.push_back({{"a", ds, JobPolicy::kBalanced, 0, 0, 6}, 0.0});
  const auto solo_report = solo.run(std::move(one));

  Scheduler pair(tb, gbps(7.0), policy, fast_cfg());
  std::vector<SchedulerJob> two;
  two.push_back({{"a", ds, JobPolicy::kBalanced, 0, 0, 6}, 0.0});
  two.push_back({{"b", ds, JobPolicy::kBalanced, 0, 0, 6}, 0.0});
  const auto pair_report = pair.run(std::move(two));

  ASSERT_EQ(pair_report.jobs.size(), 2u);
  EXPECT_EQ(pair_report.max_concurrent_observed, 2);
  EXPECT_EQ(pair_report.completed, 2);
  // Fair-shared link: each of the two takes longer than the uncontended run,
  // and the pair's makespan is clearly below back-to-back execution (they
  // genuinely overlapped rather than serializing).
  const Seconds solo_t = solo_report.jobs[0].result.duration;
  EXPECT_GT(pair_report.jobs[0].result.duration, solo_t * 1.2);
  EXPECT_GT(pair_report.jobs[1].result.duration, solo_t * 1.2);
  EXPECT_LT(pair_report.makespan, 2.0 * solo_t * 0.98);
  EXPECT_TRUE(pair_report.accounting_consistent());
}

TEST(Scheduler, PowerCapGatesDispatchAndIsNeverExceeded) {
  const auto tb = tiny_xsede();
  const auto ds = job_dataset(100 * kMB, 8);
  const Watts bound = session_peak_power_bound(tb.env);
  ASSERT_GT(bound, 0.0);

  SchedulerPolicy policy;
  policy.max_concurrent = 4;
  policy.power_cap = bound * 1.5;  // room for one session, not two
  Scheduler scheduler(tb, gbps(7.0), policy, fast_cfg());
  std::vector<SchedulerJob> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back({{"j" + std::to_string(i), ds, JobPolicy::kBalanced, 0, 0, 4}, 0.0});
  }
  const auto report = scheduler.run(std::move(jobs));

  EXPECT_EQ(report.completed, 3);
  EXPECT_EQ(report.max_concurrent_observed, 1);
  EXPECT_EQ(report.power_cap_violations, 0);
  EXPECT_LE(report.peak_power, policy.power_cap);
  EXPECT_LE(report.peak_power_bound, policy.power_cap);
  EXPECT_TRUE(report.accounting_consistent());
}

TEST(Scheduler, ImpossiblePowerCapShedsInsteadOfWedging) {
  const auto tb = tiny_xsede();
  SchedulerPolicy policy;
  policy.power_cap = 1.0;  // below any session's provable bound
  Scheduler scheduler(tb, gbps(7.0), policy, fast_cfg());
  std::vector<SchedulerJob> jobs;
  jobs.push_back({{"doomed", job_dataset(50 * kMB, 4), JobPolicy::kBalanced, 0, 0, 4},
                  0.0});
  const auto report = scheduler.run(std::move(jobs));
  EXPECT_EQ(report.rejected, 1);
  EXPECT_EQ(report.completed, 0);
  EXPECT_TRUE(report.jobs[0].rejected);
  EXPECT_TRUE(report.accounting_consistent());
}

TEST(Scheduler, BoundedQueueShedsTheOverflowWithHonestAccounting) {
  const auto tb = tiny_xsede();
  const auto ds = job_dataset(100 * kMB, 8);
  SchedulerPolicy policy;
  policy.max_concurrent = 1;
  policy.max_queue_depth = 1;
  Scheduler scheduler(tb, gbps(7.0), policy, fast_cfg());
  std::vector<SchedulerJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back({{"j" + std::to_string(i), ds, JobPolicy::kBalanced, 0, 0, 4}, 0.0});
  }
  const auto report = scheduler.run(std::move(jobs));

  // One runs, one waits, two are shed at admission.
  EXPECT_EQ(report.submitted, 4);
  EXPECT_EQ(report.rejected, 2);
  EXPECT_EQ(report.completed, 2);
  EXPECT_TRUE(report.accounting_consistent());
  int shed_records = 0;
  for (const auto& out : report.jobs) {
    if (out.rejected) {
      EXPECT_EQ(out.attempts, 0);
      EXPECT_EQ(count_action(out, RecoveryAction::kShed), 1);
      ++shed_records;
    }
  }
  EXPECT_EQ(shed_records, 2);
}

TEST(Scheduler, InteractiveArrivalPreemptsAScavengerWhichResumesAndLosesNothing) {
  const auto tb = tiny_xsede();
  const auto green_ds = job_dataset(100 * kMB, 12);
  const auto urgent_ds = job_dataset(100 * kMB, 4);

  SchedulerPolicy policy;
  policy.max_concurrent = 1;  // the scavenger occupies the only slot
  Scheduler scheduler(tb, gbps(7.0), policy, fast_cfg());
  std::vector<SchedulerJob> jobs;
  jobs.push_back({{"bg", green_ds, JobPolicy::kGreen, 0, 0, 4}, 0.0});
  jobs.push_back({{"urgent", urgent_ds, JobPolicy::kDeadline, 0, 0, 4}, 0.5});
  const auto report = scheduler.run(std::move(jobs));

  ASSERT_EQ(report.jobs.size(), 2u);
  const auto& bg = report.jobs[0];
  const auto& urgent = report.jobs[1];
  EXPECT_EQ(report.preemptions, 1);
  EXPECT_EQ(bg.preemptions, 1);
  EXPECT_EQ(count_action(bg, RecoveryAction::kPreempt), 1);
  EXPECT_EQ(count_action(bg, RecoveryAction::kResume), 1);
  EXPECT_GE(bg.attempts, 2);  // original leg + resumed leg

  // Both completed, and no acknowledged byte was lost or re-paid: the
  // scavenger's cumulative goodput equals its dataset exactly.
  EXPECT_TRUE(bg.result.completed);
  EXPECT_TRUE(urgent.result.completed);
  EXPECT_EQ(bg.result.goodput_bytes(), green_ds.total_bytes());
  EXPECT_EQ(urgent.result.goodput_bytes(), urgent_ds.total_bytes());
  // The urgent job ran while the scavenger was parked: it finished before
  // the scavenger did.
  EXPECT_LT(urgent.finished_at, bg.finished_at);
  EXPECT_TRUE(report.accounting_consistent());
}

TEST(Scheduler, TariffDefersScavengersIntoTheCheapBand) {
  const auto tb = tiny_xsede();
  SchedulerPolicy policy;
  policy.max_defer = 24.0 * 3600;
  Scheduler scheduler(tb, gbps(7.0), policy, fast_cfg());
  // Peak band 8:00-20:00 at 6x the night price; the schedule starts at 10:00.
  scheduler.set_tariff(power::Tariff::time_of_use(0.05, {{8.0, 20.0, 0.30}}),
                       10.0 * 3600);
  std::vector<SchedulerJob> jobs;
  jobs.push_back({{"night", job_dataset(50 * kMB, 4), JobPolicy::kGreen, 0, 0, 4}, 0.0});
  const auto report = scheduler.run(std::move(jobs));

  ASSERT_EQ(report.jobs.size(), 1u);
  const auto& out = report.jobs[0];
  EXPECT_EQ(report.deferrals, 1);
  EXPECT_EQ(count_action(out, RecoveryAction::kDefer), 1);
  EXPECT_TRUE(out.result.completed);
  // Deferred out of the peak band: it started at least ten simulated hours
  // after submission (20:00 is the earliest cheap second).
  EXPECT_GE(out.started_at, 10.0 * 3600);
  EXPECT_GT(out.cost_usd, 0.0);
  EXPECT_TRUE(report.accounting_consistent());
}

TEST(Scheduler, SiteBrownoutSlowsEveryTenant) {
  const auto tb = tiny_xsede();
  // Big files so the duration is bandwidth-bound — a capacity brownout can
  // only stretch the part of the run that is actually waiting on the link.
  const auto ds = job_dataset(500 * kMB, 8);
  SchedulerPolicy calm;
  Scheduler clean(tb, gbps(7.0), calm, fast_cfg());
  std::vector<SchedulerJob> jobs;
  jobs.push_back({{"a", ds, JobPolicy::kBalanced, 0, 0, 4}, 0.0});
  const Seconds clean_t = clean.run(jobs).jobs[0].result.duration;

  SchedulerPolicy stormy = calm;
  stormy.link_brownouts.push_back({0.0, clean_t * 2.0, 0.25});
  Scheduler storm(tb, gbps(7.0), stormy, fast_cfg());
  const auto report = storm.run(jobs);
  EXPECT_TRUE(report.jobs[0].result.completed);
  EXPECT_GT(report.jobs[0].result.duration, clean_t * 1.5);
}

TEST(Scheduler, ServiceFacadeRunsConcurrentJobs) {
  TransferService service(tiny_xsede(), gbps(7.0), fast_cfg());
  SchedulerPolicy policy;
  policy.max_concurrent = 2;
  std::vector<SchedulerJob> jobs;
  jobs.push_back({{"a", job_dataset(50 * kMB, 4), JobPolicy::kBalanced, 0, 0, 4}, 0.0});
  jobs.push_back({{"b", job_dataset(50 * kMB, 4), JobPolicy::kGreen, 0, 0, 4}, 0.0});
  const auto report = service.run_concurrent(std::move(jobs), policy);
  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.standard.completed, 1);
  EXPECT_EQ(report.scavenger.completed, 1);
  EXPECT_TRUE(report.accounting_consistent());
}

}  // namespace
}  // namespace eadt::exp
