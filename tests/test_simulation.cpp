#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace eadt::sim {
namespace {

TEST(Simulation, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, EqualTimesFireInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_after(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run_until();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulation, PastTimesClampToNow) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_at(1.0, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run_until();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run_until();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelInvalidIdIsFalse) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(EventId{}));
}

TEST(Simulation, CountersTrackScheduleFireCancelAndPeak) {
  Simulation sim;
  const auto id = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.schedule_at(3.0, [] {});
  EXPECT_EQ(sim.counters().scheduled, 3u);
  EXPECT_EQ(sim.counters().peak_queue, 3u);
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until();
  EXPECT_EQ(sim.counters().scheduled, 3u);
  EXPECT_EQ(sim.counters().fired, 2u);
  EXPECT_EQ(sim.counters().cancelled, 1u);
  EXPECT_EQ(sim.counters().ticks, 0u);
  EXPECT_EQ(sim.counters().peak_queue, 3u);  // high-water mark sticks
}

TEST(Simulation, CountersTrackTickerOccurrences) {
  Simulation sim;
  int seen = 0;
  sim.add_ticker(1.0, [&] { return ++seen < 4; });  // fires at t=1..4
  sim.run_until();
  EXPECT_EQ(seen, 4);
  EXPECT_EQ(sim.counters().ticks, 4u);
  EXPECT_EQ(sim.counters().fired, 4u);
  // Each occurrence is scheduled individually (the initial arm + re-arms).
  EXPECT_EQ(sim.counters().scheduled, 4u);
}

TEST(Simulation, RunUntilDeadlineStopsAndAdvancesClock) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(10.0, [&] { ++count; });
  const auto fired = sim.run_until(5.0);
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, EmptyRunAdvancesToFiniteDeadline) {
  Simulation sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulation, TickerRepeatsUntilFalse) {
  Simulation sim;
  int ticks = 0;
  sim.add_ticker(1.0, [&] {
    ++ticks;
    return ticks < 4;
  });
  sim.run_until(100.0);
  EXPECT_EQ(ticks, 4);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulation, TickerIntervalIsRespected) {
  Simulation sim;
  std::vector<double> times;
  sim.add_ticker(0.5, [&] {
    times.push_back(sim.now());
    return times.size() < 3;
  });
  sim.run_until();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
  EXPECT_DOUBLE_EQ(times[2], 1.5);
}

TEST(Simulation, TickerCancelWorksMidFlight) {
  // The id returned by add_ticker must stay valid across re-arms: cancelling
  // after several firings stops the repetition (the old implementation only
  // honoured a cancel issued before the first firing).
  Simulation sim;
  int ticks = 0;
  const auto id = sim.add_ticker(1.0, [&] {
    ++ticks;
    return true;
  });
  sim.schedule_at(3.5, [&] { EXPECT_TRUE(sim.cancel(id)); });
  sim.run_until(10.0);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.cancel(id));  // already cancelled
}

TEST(Simulation, TickerCancelFromInsideItsOwnCallback) {
  Simulation sim;
  EventId id{};
  int ticks = 0;
  id = sim.add_ticker(1.0, [&] {
    if (++ticks == 2) EXPECT_TRUE(sim.cancel(id));
    return true;  // the cancel must win over the "keep going" return value
  });
  sim.run_until(10.0);
  EXPECT_EQ(ticks, 2);
}

TEST(Simulation, TickerCancelAfterSelfStopReturnsFalse) {
  Simulation sim;
  int ticks = 0;
  const auto id = sim.add_ticker(1.0, [&] {
    ++ticks;
    return ticks < 2;
  });
  sim.run_until(10.0);
  EXPECT_EQ(ticks, 2);
  EXPECT_FALSE(sim.cancel(id));  // the series already ended on its own
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

}  // namespace
}  // namespace eadt::sim
