#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace eadt::sim {
namespace {

TEST(Simulation, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, EqualTimesFireInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_after(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run_until();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulation, PastTimesClampToNow) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_at(1.0, [&] { fired_at = sim.now(); });  // in the past
  });
  sim.run_until();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run_until();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelInvalidIdIsFalse) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(EventId{}));
}

TEST(Simulation, CountersTrackScheduleFireCancelAndPeak) {
  Simulation sim;
  const auto id = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.schedule_at(3.0, [] {});
  EXPECT_EQ(sim.counters().scheduled, 3u);
  EXPECT_EQ(sim.counters().peak_queue, 3u);
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until();
  EXPECT_EQ(sim.counters().scheduled, 3u);
  EXPECT_EQ(sim.counters().fired, 2u);
  EXPECT_EQ(sim.counters().cancelled, 1u);
  EXPECT_EQ(sim.counters().ticks, 0u);
  EXPECT_EQ(sim.counters().peak_queue, 3u);  // high-water mark sticks
}

TEST(Simulation, CountersTrackTickerOccurrences) {
  Simulation sim;
  int seen = 0;
  sim.add_ticker(1.0, [&] { return ++seen < 4; });  // fires at t=1..4
  sim.run_until();
  EXPECT_EQ(seen, 4);
  EXPECT_EQ(sim.counters().ticks, 4u);
  EXPECT_EQ(sim.counters().fired, 4u);
  // Each occurrence is scheduled individually (the initial arm + re-arms).
  EXPECT_EQ(sim.counters().scheduled, 4u);
}

TEST(Simulation, RunUntilDeadlineStopsAndAdvancesClock) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(10.0, [&] { ++count; });
  const auto fired = sim.run_until(5.0);
  EXPECT_EQ(fired, 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until();
  EXPECT_EQ(count, 2);
}

TEST(Simulation, EmptyRunAdvancesToFiniteDeadline) {
  Simulation sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulation, TickerRepeatsUntilFalse) {
  Simulation sim;
  int ticks = 0;
  sim.add_ticker(1.0, [&] {
    ++ticks;
    return ticks < 4;
  });
  sim.run_until(100.0);
  EXPECT_EQ(ticks, 4);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulation, TickerIntervalIsRespected) {
  Simulation sim;
  std::vector<double> times;
  sim.add_ticker(0.5, [&] {
    times.push_back(sim.now());
    return times.size() < 3;
  });
  sim.run_until();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
  EXPECT_DOUBLE_EQ(times[2], 1.5);
}

TEST(Simulation, TickerCancelWorksMidFlight) {
  // The id returned by add_ticker must stay valid across re-arms: cancelling
  // after several firings stops the repetition (the old implementation only
  // honoured a cancel issued before the first firing).
  Simulation sim;
  int ticks = 0;
  const auto id = sim.add_ticker(1.0, [&] {
    ++ticks;
    return true;
  });
  sim.schedule_at(3.5, [&] { EXPECT_TRUE(sim.cancel(id)); });
  sim.run_until(10.0);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.cancel(id));  // already cancelled
}

TEST(Simulation, TickerCancelFromInsideItsOwnCallback) {
  Simulation sim;
  EventId id{};
  int ticks = 0;
  id = sim.add_ticker(1.0, [&] {
    if (++ticks == 2) EXPECT_TRUE(sim.cancel(id));
    return true;  // the cancel must win over the "keep going" return value
  });
  sim.run_until(10.0);
  EXPECT_EQ(ticks, 2);
}

TEST(Simulation, TickerCancelAfterSelfStopReturnsFalse) {
  Simulation sim;
  int ticks = 0;
  const auto id = sim.add_ticker(1.0, [&] {
    ++ticks;
    return ticks < 2;
  });
  sim.run_until(10.0);
  EXPECT_EQ(ticks, 2);
  EXPECT_FALSE(sim.cancel(id));  // the series already ended on its own
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

// --- differential stress: heap engine vs the std::map reference ------------

/// The engine this PR replaced, verbatim (std::map queue, eager cancel,
/// self-re-scheduling ticker closures in a shared_ptr registry), including
/// its counter discipline. The heap engine must be observationally
/// indistinguishable from this under arbitrary op sequences — that is what
/// keeps every golden BENCH payload byte-identical.
class RefSim {
 public:
  [[nodiscard]] Seconds now() const noexcept { return now_; }

  EventId schedule_at(Seconds t, std::function<void()> fn) {
    const Seconds when = std::max(t, now_);
    const EventId id{when, next_seq_++};
    queue_.emplace(Key{id.time, id.seq}, std::move(fn));
    ++counters_.scheduled;
    counters_.peak_queue = std::max<std::uint64_t>(counters_.peak_queue, queue_.size());
    return id;
  }

  EventId schedule_after(Seconds dt, std::function<void()> fn) {
    return schedule_at(now_ + std::max(dt, 0.0), std::move(fn));
  }

  bool cancel(EventId id) {
    if (!id.valid()) return false;
    if (auto it = tickers_.find(id.seq); it != tickers_.end()) {
      const EventId current = it->second->current;
      tickers_.erase(it);
      counters_.cancelled += queue_.erase(Key{current.time, current.seq});
      return true;
    }
    const bool erased = queue_.erase(Key{id.time, id.seq}) > 0;
    counters_.cancelled += erased ? 1 : 0;
    return erased;
  }

  EventId add_ticker(Seconds interval, std::function<bool()> fn) {
    const std::uint64_t key = next_seq_;  // seq the first occurrence will get
    auto state = std::make_shared<TickerState>();
    state->fn = std::move(fn);
    state->rearm = [this, interval, key]() {
      const auto it = tickers_.find(key);
      if (it == tickers_.end()) return;
      ++counters_.ticks;
      const auto st = it->second;
      if (!st->fn()) {
        tickers_.erase(key);
        return;
      }
      if (tickers_.count(key) != 0) {
        st->current = schedule_after(interval, st->rearm);
      }
    };
    tickers_.emplace(key, state);
    state->current = schedule_after(interval, state->rearm);
    return state->current;
  }

  bool step() {
    if (queue_.empty()) return false;
    auto it = queue_.begin();
    now_ = it->first.first;
    auto fn = std::move(it->second);
    queue_.erase(it);
    ++counters_.fired;
    fn();
    return true;
  }

  std::uint64_t run_until(Seconds deadline = std::numeric_limits<double>::infinity()) {
    std::uint64_t fired = 0;
    while (!queue_.empty() && queue_.begin()->first.first <= deadline) {
      step();
      ++fired;
    }
    if (queue_.empty() && now_ < deadline &&
        deadline < std::numeric_limits<double>::infinity()) {
      now_ = deadline;
    }
    return fired;
  }

  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] const SimCounters& counters() const noexcept { return counters_; }

 private:
  using Key = std::pair<Seconds, std::uint64_t>;
  struct TickerState {
    EventId current;
    std::function<bool()> fn;
    std::function<void()> rearm;
  };

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  SimCounters counters_;
  std::map<Key, std::function<void()>> queue_;
  std::map<std::uint64_t, std::shared_ptr<TickerState>> tickers_;
};

/// One observable moment: which payload ran (or what an operation returned)
/// and the simulated clock when it happened.
struct TraceEvent {
  int tag = 0;
  Seconds at = 0.0;
  bool operator==(const TraceEvent&) const = default;
};

/// Replays a seed-derived op script against an engine and records everything
/// observable. The script's decisions depend only on the Rng stream and op
/// index — never on engine internals — so both engines receive an identical
/// sequence of calls, and any behavioural difference shows up in the trace.
template <typename Engine>
std::vector<TraceEvent> replay_script(Engine& eng, std::uint64_t seed, int ops) {
  Rng rng(seed);
  std::vector<TraceEvent> trace;
  std::vector<EventId> ids;
  int next_tag = 1;
  for (int op = 0; op < ops; ++op) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.40) {
      // One-shot. Half the times are quantized to 0.5 s steps so distinct
      // schedules collide on the same timestamp and exercise the seq
      // tie-break.
      double t = eng.now() + rng.uniform(0.0, 10.0);
      if (rng.uniform(0.0, 1.0) < 0.5) t = 0.5 * static_cast<int>(t * 2.0);
      const int tag = next_tag++;
      ids.push_back(eng.schedule_at(
          t, [tag, &trace, &eng] { trace.push_back({tag, eng.now()}); }));
    } else if (roll < 0.50) {
      const double interval = rng.uniform(0.1, 2.0);
      auto left = static_cast<int>(rng.uniform_int(1, 8));
      const int tag = next_tag++;
      ids.push_back(eng.add_ticker(interval, [tag, left, &trace, &eng]() mutable {
        trace.push_back({tag, eng.now()});
        return --left > 0;
      }));
    } else if (roll < 0.70 && !ids.empty()) {
      const std::size_t pick = rng.uniform_int(0, ids.size() - 1);
      const bool ok = eng.cancel(ids[pick]);
      trace.push_back({ok ? -1 : -2, eng.now()});
      ids[pick] = ids.back();
      ids.pop_back();
    } else {
      const auto fired = eng.run_until(eng.now() + rng.uniform(0.0, 5.0));
      trace.push_back({-3 - static_cast<int>(fired), eng.now()});
    }
  }
  eng.run_until(eng.now() + 1e6);  // drain (tickers all self-stop)
  trace.push_back({0, eng.now()});
  return trace;
}

class SimulationDifferential : public ::testing::TestWithParam<int> {};

TEST_P(SimulationDifferential, HeapMatchesMapReferenceOpForOp) {
  const auto seed = static_cast<std::uint64_t>(0x5EED0000 + GetParam());
  // 4 script instances x 25k ops = 100k randomized schedule/cancel/ticker ops.
  constexpr int kOps = 25000;

  Simulation heap_eng;
  const auto heap_trace = replay_script(heap_eng, seed, kOps);
  RefSim map_eng;
  const auto map_trace = replay_script(map_eng, seed, kOps);

  ASSERT_EQ(heap_trace.size(), map_trace.size());
  for (std::size_t i = 0; i < heap_trace.size(); ++i) {
    ASSERT_EQ(heap_trace[i], map_trace[i]) << "first divergence at trace index " << i;
  }
  EXPECT_DOUBLE_EQ(heap_eng.now(), map_eng.now());
  EXPECT_EQ(heap_eng.pending_events(), map_eng.pending_events());
  EXPECT_EQ(heap_eng.counters().scheduled, map_eng.counters().scheduled);
  EXPECT_EQ(heap_eng.counters().fired, map_eng.counters().fired);
  EXPECT_EQ(heap_eng.counters().cancelled, map_eng.counters().cancelled);
  EXPECT_EQ(heap_eng.counters().ticks, map_eng.counters().ticks);
  EXPECT_EQ(heap_eng.counters().peak_queue, map_eng.counters().peak_queue);
}

INSTANTIATE_TEST_SUITE_P(RandomScripts, SimulationDifferential, ::testing::Range(0, 4));

// Heavy lazy-cancellation pressure: most scheduled events die before firing,
// so the heap crosses its tombstone-compaction threshold many times. The
// survivors must still fire in exact (time, seq) order.
TEST(Simulation, CompactionPreservesOrderUnderMassCancel) {
  Simulation sim;
  Rng rng(99);
  std::vector<EventId> doomed;
  std::vector<int> fired;
  std::vector<int> expected;
  std::vector<std::pair<double, int>> survivors;
  for (int i = 0; i < 2000; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    if (i % 5 == 0) {
      survivors.push_back({t, i});
      sim.schedule_at(t, [i, &fired] { fired.push_back(i); });
    } else {
      doomed.push_back(sim.schedule_at(t, [] { FAIL() << "cancelled event fired"; }));
    }
  }
  for (const auto& id : doomed) EXPECT_TRUE(sim.cancel(id));
  std::stable_sort(survivors.begin(), survivors.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [t, i] : survivors) expected.push_back(i);
  sim.run_until();
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(sim.counters().cancelled, doomed.size());
  EXPECT_EQ(sim.counters().fired, survivors.size());
}

// The slab recycles released slots: ids from a dead tenancy must never
// cancel the slot's next tenant.
TEST(Simulation, StaleIdDoesNotCancelRecycledSlot) {
  Simulation sim;
  bool fired = false;
  const auto old_id = sim.schedule_at(1.0, [] {});
  ASSERT_TRUE(sim.cancel(old_id));
  sim.schedule_at(2.0, [&] { fired = true; });  // reuses the released slot
  EXPECT_FALSE(sim.cancel(old_id));             // stale generation
  sim.run_until();
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace eadt::sim
