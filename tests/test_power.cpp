#include "power/end_system.hpp"

#include <gtest/gtest.h>

namespace eadt::power {
namespace {

TEST(Eq2, MatchesPaperPolynomial) {
  // C_cpu,n = 0.011 n^2 - 0.082 n + 0.344
  EXPECT_NEAR(cpu_coefficient(1), 0.273, 1e-9);
  EXPECT_NEAR(cpu_coefficient(2), 0.224, 1e-9);
  EXPECT_NEAR(cpu_coefficient(4), 0.192, 1e-9);
  EXPECT_NEAR(cpu_coefficient(8), 0.392, 1e-9);
}

TEST(Eq2, ParabolaBottomsNearFourCores) {
  // The paper: "energy consumption per core decreases as the number of
  // active cores increases" up to the 4-core count of the XSEDE DTNs,
  // then rises. Analytically the vertex is at n = 0.082 / 0.022 ~ 3.7.
  EXPECT_LT(cpu_coefficient(4), cpu_coefficient(1));
  EXPECT_LT(cpu_coefficient(4), cpu_coefficient(2));
  EXPECT_LT(cpu_coefficient(4), cpu_coefficient(3));
  EXPECT_LT(cpu_coefficient(4), cpu_coefficient(5));
  EXPECT_LT(cpu_coefficient(4), cpu_coefficient(6));
}

TEST(FineGrained, Eq1LinearInUtilizations) {
  PowerCoefficients c{100.0, 30.0, 25.0, 20.0, 10.0};
  host::Utilization u{0.5, 0.2, 0.4, 0.3};
  const Watts expect = 10.0 + cpu_coefficient(4) * 100.0 * 0.5 + 30.0 * 0.2 +
                       25.0 * 0.4 + 20.0 * 0.3;
  EXPECT_NEAR(fine_grained_power(c, 4, u), expect, 1e-9);
}

TEST(FineGrained, InactiveServerDrawsNothing) {
  PowerCoefficients c;
  EXPECT_DOUBLE_EQ(fine_grained_power(c, 0, {1, 1, 1, 1}), 0.0);
}

TEST(FineGrained, MonotoneInEachComponent) {
  PowerCoefficients c;
  host::Utilization base{0.3, 0.3, 0.3, 0.3};
  const Watts p0 = fine_grained_power(c, 4, base);
  for (int comp = 0; comp < 4; ++comp) {
    host::Utilization u = base;
    (comp == 0 ? u.cpu : comp == 1 ? u.mem : comp == 2 ? u.disk : u.nic) = 0.8;
    EXPECT_GT(fine_grained_power(c, 4, u), p0);
  }
}

TEST(CpuOnly, TracksCpuUtilization) {
  PowerCoefficients c;
  const Watts low = cpu_only_power(c, 4, 0.2);
  const Watts high = cpu_only_power(c, 4, 0.9);
  EXPECT_GT(high, low);
  EXPECT_DOUBLE_EQ(cpu_only_power(c, 0, 0.5), 0.0);
  // Utilization clamps.
  EXPECT_DOUBLE_EQ(cpu_only_power(c, 4, 1.5), cpu_only_power(c, 4, 1.0));
}

TEST(CpuOnly, FullSystemFactorStretches) {
  PowerCoefficients c;
  const Watts f1 = cpu_only_power(c, 4, 0.5, 1.0);
  const Watts f2 = cpu_only_power(c, 4, 0.5, 2.0);
  EXPECT_GT(f2, f1);
  EXPECT_NEAR(f2 - c.active_base, 2.0 * (f1 - c.active_base), 1e-9);
}

TEST(TdpScaled, Eq3RatioOfTdps) {
  PowerCoefficients c;
  // Intel E5 local at 115 W, AMD remote at 230 W: remote predicts 2x CPU-only.
  const Watts local = cpu_only_power(c, 4, 0.6);
  const Watts remote = tdp_scaled_power(c, 115.0, 230.0, 4, 0.6);
  EXPECT_NEAR(remote, local * 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(tdp_scaled_power(c, 0.0, 230.0, 4, 0.6), 0.0);
}

TEST(EnergyAccumulator, IntegratesPiecewiseConstantPower) {
  EnergyAccumulator acc;
  acc.add(100.0, 2.0);
  acc.add(50.0, 4.0);
  EXPECT_DOUBLE_EQ(acc.total(), 400.0);
  acc.add(-5.0, 1.0);  // ignored: no negative power
  acc.add(5.0, -1.0);  // ignored: no negative time
  EXPECT_DOUBLE_EQ(acc.total(), 400.0);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.total(), 0.0);
}

}  // namespace
}  // namespace eadt::power
