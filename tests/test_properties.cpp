// Cross-cutting invariants, swept over (testbed x algorithm x concurrency)
// with parameterized gtest. These are the contracts every schedule must
// satisfy regardless of tuning: byte conservation, energy accounting,
// physical bounds, determinism, and graceful behaviour under preemption.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "exp/sweep.hpp"

namespace eadt::exp {
namespace {

testbeds::Testbed tiny(testbeds::Testbed t) {
  // Small datasets keep the sweep fast; band maxima scale along.
  const unsigned div = 64;
  t.recipe.total_bytes /= div;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / div, band.min_size * 2);
  }
  return t;
}

testbeds::Testbed testbed_by_index(int i) {
  switch (i) {
    case 0: return tiny(testbeds::xsede());
    case 1: return tiny(testbeds::futuregrid());
    default: return tiny(testbeds::didclab());
  }
}

class RunInvariants
    : public ::testing::TestWithParam<std::tuple<int, Algorithm, int>> {};

TEST_P(RunInvariants, HoldEverywhere) {
  const auto [tb_index, algorithm, concurrency] = GetParam();
  const auto testbed = testbed_by_index(tb_index);
  const auto dataset = testbed.make_dataset();
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;

  const auto out = run_algorithm(algorithm, testbed, dataset, concurrency, cfg);
  const auto& r = out.result;

  // 1. Completion and byte conservation.
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, dataset.total_bytes());

  // 2. Physical bounds.
  EXPECT_GT(r.duration, 0.0);
  EXPECT_LE(r.avg_throughput(), testbed.env.path.bandwidth * 1.001);
  EXPECT_GT(r.end_system_energy, 0.0);
  EXPECT_GT(r.network_energy, 0.0);

  // 3. Per-server energy sums to the total; active times within duration.
  Joules sum = 0.0;
  for (const auto& side : {r.source_servers, r.destination_servers}) {
    for (const auto& s : side) {
      EXPECT_GE(s.joules, 0.0);
      EXPECT_GE(s.active_time, 0.0);
      EXPECT_LE(s.active_time, r.duration + cfg.tick + 1e-6);
      sum += s.joules;
    }
  }
  EXPECT_NEAR(sum, r.end_system_energy, r.end_system_energy * 1e-9);

  // 4. Samples tile the run: bytes and energy add up, windows are ordered.
  Bytes sample_bytes = 0;
  Joules sample_energy = 0.0;
  Seconds prev_end = 0.0;
  for (const auto& s : r.samples) {
    EXPECT_NEAR(s.window_start, prev_end, 1e-6);
    EXPECT_GE(s.window_end, s.window_start);
    EXPECT_GE(s.active_channels, 0);
    sample_bytes += s.bytes;
    sample_energy += s.end_system_energy;
    prev_end = s.window_end;
  }
  EXPECT_EQ(sample_bytes, r.bytes);
  EXPECT_NEAR(sample_energy, r.end_system_energy, r.end_system_energy * 1e-9);

  // 5. Determinism: the identical run reproduces bit-identical results.
  const auto again = run_algorithm(algorithm, testbed, dataset, concurrency, cfg);
  EXPECT_DOUBLE_EQ(again.result.duration, r.duration);
  EXPECT_DOUBLE_EQ(again.result.end_system_energy, r.end_system_energy);
  EXPECT_EQ(again.result.bytes, r.bytes);
  EXPECT_EQ(again.chosen_concurrency, out.chosen_concurrency);
}

std::string invariant_case_name(
    const ::testing::TestParamInfo<std::tuple<int, Algorithm, int>>& info) {
  static constexpr const char* kTb[] = {"Xsede", "Futuregrid", "Didclab"};
  return std::string(kTb[std::get<0>(info.param)]) +
         to_string(std::get<1>(info.param)) + "Cc" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RunInvariants,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(Algorithm::kGuc, Algorithm::kGo,
                                         Algorithm::kSc, Algorithm::kMinE,
                                         Algorithm::kProMc, Algorithm::kHtee),
                       ::testing::Values(1, 5, 12)),
    invariant_case_name);

// A hostile controller that yanks concurrency around every window; bytes
// must still be conserved through all the preemption/requeue churn.
class Thrasher final : public proto::Controller {
 public:
  void on_sample(proto::TransferSession& session, const proto::SampleStats&) override {
    ++calls_;
    session.set_total_concurrency(calls_ % 2 == 0 ? 1 : 12);
  }

 private:
  int calls_ = 0;
};

class PreemptionChurn : public ::testing::TestWithParam<int> {};

TEST_P(PreemptionChurn, ConservesBytes) {
  const auto testbed = testbed_by_index(GetParam());
  const auto dataset = testbed.make_dataset();
  proto::SessionConfig cfg;
  cfg.sample_interval = 0.5;  // thrash hard
  Thrasher thrasher;
  proto::TransferSession session(
      testbed.env, dataset,
      baselines::plan_promc(testbed.env, dataset, 12), cfg);
  const auto r = session.run(&thrasher);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, dataset.total_bytes());
  EXPECT_LE(r.avg_throughput(), testbed.env.path.bandwidth * 1.001);
}

INSTANTIATE_TEST_SUITE_P(AllTestbeds, PreemptionChurn, ::testing::Values(0, 1, 2));

// Dataset-mix robustness: whatever the size distribution, the tuned
// algorithms complete and respect the link on the XSEDE path.
class MixRobustness : public ::testing::TestWithParam<int> {};

TEST_P(MixRobustness, TunedAlgorithmsHandleAnyMix) {
  auto testbed = tiny(testbeds::xsede());
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  // Random recipe: 1-3 bands with random bounds and shares.
  proto::DatasetRecipe recipe;
  recipe.name = "fuzz";
  recipe.total_bytes = 1 * kGB + rng.uniform_int(0, 2 * kGB);
  const int n_bands = static_cast<int>(rng.uniform_int(1, 3));
  std::vector<double> shares;
  double sum = 0.0;
  for (int b = 0; b < n_bands; ++b) {
    shares.push_back(rng.uniform(0.1, 1.0));
    sum += shares.back();
  }
  for (int b = 0; b < n_bands; ++b) {
    const Bytes lo = 1 * kMB + rng.uniform_int(0, 30 * kMB);
    const Bytes hi = lo * 2 + rng.uniform_int(0, 300 * kMB);
    recipe.bands.push_back({lo, hi, shares[static_cast<std::size_t>(b)] / sum});
  }
  testbed.recipe = recipe;
  const auto dataset = testbed.make_dataset();
  ASSERT_GT(dataset.count(), 0u);

  for (const auto a : {Algorithm::kMinE, Algorithm::kProMc, Algorithm::kHtee}) {
    proto::SessionConfig cfg;
    cfg.sample_interval = 1.0;
    const auto out = run_algorithm(a, testbed, dataset, 8, cfg);
    EXPECT_TRUE(out.result.completed) << to_string(a) << " seed " << GetParam();
    EXPECT_EQ(out.result.bytes, dataset.total_bytes()) << to_string(a);
    EXPECT_LE(out.result.avg_throughput(), testbed.env.path.bandwidth * 1.001);
  }
}

INSTANTIATE_TEST_SUITE_P(FuzzedRecipes, MixRobustness, ::testing::Range(0, 8));

// --- sweep-seed properties -------------------------------------------------
// The sweep runner decorrelates grid points by hashing their coordinates
// (exp/sweep.hpp). Two properties make that trustworthy: distinct points
// never collide on derived seeds, and the hash is a pure function of the
// coordinates — so permuting the submission order permutes nothing.

TEST(SweepSeedProperties, DistinctGridPointsNeverCollide) {
  // 7 algorithms x 3 testbeds x 32 concurrency levels x 16 base seeds =
  // 10752 grid points, comfortably past the 10k the issue asks for.
  const char* testbed_names[] = {"xsede", "futuregrid", "didclab"};
  std::set<std::uint64_t> seeds;
  std::size_t points = 0;
  for (const auto a : {Algorithm::kGuc, Algorithm::kGo, Algorithm::kSc,
                       Algorithm::kMinE, Algorithm::kProMc, Algorithm::kHtee,
                       Algorithm::kBf}) {
    for (const char* tb : testbed_names) {
      for (int cc = 1; cc <= 32; ++cc) {
        for (std::uint64_t base = 0; base < 16; ++base) {
          const auto seed = derive_task_seed(to_string(a), tb, cc, base);
          EXPECT_NE(seed, 0u);
          seeds.insert(seed);
          ++points;
        }
      }
    }
  }
  EXPECT_GE(points, 10000u);
  EXPECT_EQ(seeds.size(), points) << "derived-seed collision in the grid";
}

TEST(SweepSeedProperties, SeedIsInsensitiveToFieldConcatenation) {
  // The coordinate fields are joined with a separator, so moving characters
  // across a field boundary must change the hash ("ab"+"c" != "a"+"bc").
  EXPECT_NE(derive_task_seed("ab", "c", 1, 0), derive_task_seed("a", "bc", 1, 0));
  EXPECT_NE(derive_task_seed("SC", "xsede1", 2, 0),
            derive_task_seed("SC", "xsede", 12, 0));
}

TEST(SweepSeedProperties, SubmissionOrderDoesNotChangeResults) {
  // Build a 12-task grid, then submit it in a scrambled order: each task's
  // result (matched by grid coordinates, index stripped) must be identical.
  const auto t = tiny(testbeds::xsede());
  const auto dataset = t.make_dataset();
  std::vector<SweepTask> tasks;
  for (const auto a : {Algorithm::kSc, Algorithm::kMinE, Algorithm::kProMc,
                       Algorithm::kHtee}) {
    for (const int cc : {1, 4, 12}) {
      SweepTask task;
      task.testbed = t;
      task.dataset = dataset;
      task.algorithm = a;
      task.concurrency = cc;
      task.seed = 99;  // exercise the derived-seed path too
      tasks.push_back(std::move(task));
    }
  }
  std::vector<SweepTask> shuffled = tasks;
  std::reverse(shuffled.begin(), shuffled.end());
  std::rotate(shuffled.begin(), shuffled.begin() + 5, shuffled.end());

  const auto original = SweepRunner(4).run(tasks);
  const auto permuted = SweepRunner(4).run(shuffled);

  // Key one result by its grid coordinates; the payload line minus the
  // leading submission index is the order-free fingerprint.
  const auto fingerprint = [](const SweepTaskResult& r) {
    const std::string line = sweep_payload({r});
    return line.substr(line.find(' ') + 1);
  };
  std::map<std::pair<Algorithm, int>, std::string> by_point;
  for (std::size_t i = 0; i < original.size(); ++i) {
    by_point[{tasks[i].algorithm, tasks[i].concurrency}] = fingerprint(original[i]);
  }
  ASSERT_EQ(by_point.size(), original.size());
  for (std::size_t i = 0; i < permuted.size(); ++i) {
    EXPECT_EQ(by_point.at({shuffled[i].algorithm, shuffled[i].concurrency}),
              fingerprint(permuted[i]))
        << to_string(shuffled[i].algorithm) << " cc=" << shuffled[i].concurrency;
  }
}

}  // namespace
}  // namespace eadt::exp
