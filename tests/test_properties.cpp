// Cross-cutting invariants, swept over (testbed x algorithm x concurrency)
// with parameterized gtest. These are the contracts every schedule must
// satisfy regardless of tuning: byte conservation, energy accounting,
// physical bounds, determinism, and graceful behaviour under preemption.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "exp/sweep.hpp"
#include "net/fair_share.hpp"
#include "util/rng.hpp"

namespace eadt::exp {
namespace {

testbeds::Testbed tiny(testbeds::Testbed t) {
  // Small datasets keep the sweep fast; band maxima scale along.
  const unsigned div = 64;
  t.recipe.total_bytes /= div;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / div, band.min_size * 2);
  }
  return t;
}

testbeds::Testbed testbed_by_index(int i) {
  switch (i) {
    case 0: return tiny(testbeds::xsede());
    case 1: return tiny(testbeds::futuregrid());
    default: return tiny(testbeds::didclab());
  }
}

class RunInvariants
    : public ::testing::TestWithParam<std::tuple<int, Algorithm, int>> {};

TEST_P(RunInvariants, HoldEverywhere) {
  const auto [tb_index, algorithm, concurrency] = GetParam();
  const auto testbed = testbed_by_index(tb_index);
  const auto dataset = testbed.make_dataset();
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;

  const auto out = run_algorithm(algorithm, testbed, dataset, concurrency, cfg);
  const auto& r = out.result;

  // 1. Completion and byte conservation.
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, dataset.total_bytes());

  // 2. Physical bounds.
  EXPECT_GT(r.duration, 0.0);
  EXPECT_LE(r.avg_throughput(), testbed.env.path.bandwidth * 1.001);
  EXPECT_GT(r.end_system_energy, 0.0);
  EXPECT_GT(r.network_energy, 0.0);

  // 3. Per-server energy sums to the total; active times within duration.
  Joules sum = 0.0;
  for (const auto& side : {r.source_servers, r.destination_servers}) {
    for (const auto& s : side) {
      EXPECT_GE(s.joules, 0.0);
      EXPECT_GE(s.active_time, 0.0);
      EXPECT_LE(s.active_time, r.duration + cfg.tick + 1e-6);
      sum += s.joules;
    }
  }
  EXPECT_NEAR(sum, r.end_system_energy, r.end_system_energy * 1e-9);

  // 4. Samples tile the run: bytes and energy add up, windows are ordered.
  Bytes sample_bytes = 0;
  Joules sample_energy = 0.0;
  Seconds prev_end = 0.0;
  for (const auto& s : r.samples) {
    EXPECT_NEAR(s.window_start, prev_end, 1e-6);
    EXPECT_GE(s.window_end, s.window_start);
    EXPECT_GE(s.active_channels, 0);
    sample_bytes += s.bytes;
    sample_energy += s.end_system_energy;
    prev_end = s.window_end;
  }
  EXPECT_EQ(sample_bytes, r.bytes);
  EXPECT_NEAR(sample_energy, r.end_system_energy, r.end_system_energy * 1e-9);

  // 5. Determinism: the identical run reproduces bit-identical results.
  const auto again = run_algorithm(algorithm, testbed, dataset, concurrency, cfg);
  EXPECT_DOUBLE_EQ(again.result.duration, r.duration);
  EXPECT_DOUBLE_EQ(again.result.end_system_energy, r.end_system_energy);
  EXPECT_EQ(again.result.bytes, r.bytes);
  EXPECT_EQ(again.chosen_concurrency, out.chosen_concurrency);
}

std::string invariant_case_name(
    const ::testing::TestParamInfo<std::tuple<int, Algorithm, int>>& info) {
  static constexpr const char* kTb[] = {"Xsede", "Futuregrid", "Didclab"};
  return std::string(kTb[std::get<0>(info.param)]) +
         to_string(std::get<1>(info.param)) + "Cc" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RunInvariants,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(Algorithm::kGuc, Algorithm::kGo,
                                         Algorithm::kSc, Algorithm::kMinE,
                                         Algorithm::kProMc, Algorithm::kHtee),
                       ::testing::Values(1, 5, 12)),
    invariant_case_name);

// A hostile controller that yanks concurrency around every window; bytes
// must still be conserved through all the preemption/requeue churn.
class Thrasher final : public proto::Controller {
 public:
  void on_sample(proto::TransferSession& session, const proto::SampleStats&) override {
    ++calls_;
    session.set_total_concurrency(calls_ % 2 == 0 ? 1 : 12);
  }

 private:
  int calls_ = 0;
};

class PreemptionChurn : public ::testing::TestWithParam<int> {};

TEST_P(PreemptionChurn, ConservesBytes) {
  const auto testbed = testbed_by_index(GetParam());
  const auto dataset = testbed.make_dataset();
  proto::SessionConfig cfg;
  cfg.sample_interval = 0.5;  // thrash hard
  Thrasher thrasher;
  proto::TransferSession session(
      testbed.env, dataset,
      baselines::plan_promc(testbed.env, dataset, 12), cfg);
  const auto r = session.run(&thrasher);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, dataset.total_bytes());
  EXPECT_LE(r.avg_throughput(), testbed.env.path.bandwidth * 1.001);
}

INSTANTIATE_TEST_SUITE_P(AllTestbeds, PreemptionChurn, ::testing::Values(0, 1, 2));

// Dataset-mix robustness: whatever the size distribution, the tuned
// algorithms complete and respect the link on the XSEDE path.
class MixRobustness : public ::testing::TestWithParam<int> {};

TEST_P(MixRobustness, TunedAlgorithmsHandleAnyMix) {
  auto testbed = tiny(testbeds::xsede());
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  // Random recipe: 1-3 bands with random bounds and shares.
  proto::DatasetRecipe recipe;
  recipe.name = "fuzz";
  recipe.total_bytes = 1 * kGB + rng.uniform_int(0, 2 * kGB);
  const int n_bands = static_cast<int>(rng.uniform_int(1, 3));
  std::vector<double> shares;
  double sum = 0.0;
  for (int b = 0; b < n_bands; ++b) {
    shares.push_back(rng.uniform(0.1, 1.0));
    sum += shares.back();
  }
  for (int b = 0; b < n_bands; ++b) {
    const Bytes lo = 1 * kMB + rng.uniform_int(0, 30 * kMB);
    const Bytes hi = lo * 2 + rng.uniform_int(0, 300 * kMB);
    recipe.bands.push_back({lo, hi, shares[static_cast<std::size_t>(b)] / sum});
  }
  testbed.recipe = recipe;
  const auto dataset = testbed.make_dataset();
  ASSERT_GT(dataset.count(), 0u);

  for (const auto a : {Algorithm::kMinE, Algorithm::kProMc, Algorithm::kHtee}) {
    proto::SessionConfig cfg;
    cfg.sample_interval = 1.0;
    const auto out = run_algorithm(a, testbed, dataset, 8, cfg);
    EXPECT_TRUE(out.result.completed) << to_string(a) << " seed " << GetParam();
    EXPECT_EQ(out.result.bytes, dataset.total_bytes()) << to_string(a);
    EXPECT_LE(out.result.avg_throughput(), testbed.env.path.bandwidth * 1.001);
  }
}

INSTANTIATE_TEST_SUITE_P(FuzzedRecipes, MixRobustness, ::testing::Range(0, 8));

// --- sweep-seed properties -------------------------------------------------
// The sweep runner decorrelates grid points by hashing their coordinates
// (exp/sweep.hpp). Two properties make that trustworthy: distinct points
// never collide on derived seeds, and the hash is a pure function of the
// coordinates — so permuting the submission order permutes nothing.

TEST(SweepSeedProperties, DistinctGridPointsNeverCollide) {
  // 7 algorithms x 3 testbeds x 32 concurrency levels x 16 base seeds =
  // 10752 grid points, comfortably past the 10k the issue asks for.
  const char* testbed_names[] = {"xsede", "futuregrid", "didclab"};
  std::set<std::uint64_t> seeds;
  std::size_t points = 0;
  for (const auto a : {Algorithm::kGuc, Algorithm::kGo, Algorithm::kSc,
                       Algorithm::kMinE, Algorithm::kProMc, Algorithm::kHtee,
                       Algorithm::kBf}) {
    for (const char* tb : testbed_names) {
      for (int cc = 1; cc <= 32; ++cc) {
        for (std::uint64_t base = 0; base < 16; ++base) {
          const auto seed = derive_task_seed(to_string(a), tb, cc, base);
          EXPECT_NE(seed, 0u);
          seeds.insert(seed);
          ++points;
        }
      }
    }
  }
  EXPECT_GE(points, 10000u);
  EXPECT_EQ(seeds.size(), points) << "derived-seed collision in the grid";
}

TEST(SweepSeedProperties, SeedIsInsensitiveToFieldConcatenation) {
  // The coordinate fields are joined with a separator, so moving characters
  // across a field boundary must change the hash ("ab"+"c" != "a"+"bc").
  EXPECT_NE(derive_task_seed("ab", "c", 1, 0), derive_task_seed("a", "bc", 1, 0));
  EXPECT_NE(derive_task_seed("SC", "xsede1", 2, 0),
            derive_task_seed("SC", "xsede", 12, 0));
}

TEST(SweepSeedProperties, SubmissionOrderDoesNotChangeResults) {
  // Build a 12-task grid, then submit it in a scrambled order: each task's
  // result (matched by grid coordinates, index stripped) must be identical.
  const auto t = tiny(testbeds::xsede());
  const auto dataset = t.make_dataset();
  std::vector<SweepTask> tasks;
  for (const auto a : {Algorithm::kSc, Algorithm::kMinE, Algorithm::kProMc,
                       Algorithm::kHtee}) {
    for (const int cc : {1, 4, 12}) {
      SweepTask task;
      task.testbed = t;
      task.dataset = dataset;
      task.algorithm = a;
      task.concurrency = cc;
      task.seed = 99;  // exercise the derived-seed path too
      tasks.push_back(std::move(task));
    }
  }
  std::vector<SweepTask> shuffled = tasks;
  std::reverse(shuffled.begin(), shuffled.end());
  std::rotate(shuffled.begin(), shuffled.begin() + 5, shuffled.end());

  const auto original = SweepRunner(4).run(tasks);
  const auto permuted = SweepRunner(4).run(shuffled);

  // Key one result by its grid coordinates; the payload line minus the
  // leading submission index is the order-free fingerprint.
  const auto fingerprint = [](const SweepTaskResult& r) {
    const std::string line = sweep_payload({r});
    return line.substr(line.find(' ') + 1);
  };
  std::map<std::pair<Algorithm, int>, std::string> by_point;
  for (std::size_t i = 0; i < original.size(); ++i) {
    by_point[{tasks[i].algorithm, tasks[i].concurrency}] = fingerprint(original[i]);
  }
  ASSERT_EQ(by_point.size(), original.size());
  for (std::size_t i = 0; i < permuted.size(); ++i) {
    EXPECT_EQ(by_point.at({shuffled[i].algorithm, shuffled[i].concurrency}),
              fingerprint(permuted[i]))
        << to_string(shuffled[i].algorithm) << " cc=" << shuffled[i].concurrency;
  }
}

// --- waterfill solver properties -----------------------------------------
// The differential battery (test_waterfill.cpp) pins the solver to the
// reference loop bit for bit; these tests state what the allocation itself
// must look like, independent of any implementation: the max-min contract
// the paper's shared-link model is built on.

std::vector<net::DemandGroup> random_groups(Rng& rng, int max_groups) {
  std::vector<net::DemandGroup> groups;
  const int ng = static_cast<int>(rng.uniform_int(1, max_groups));
  for (int g = 0; g < ng; ++g) {
    groups.push_back({rng.uniform(1e5, 1e9),
                      static_cast<double>(rng.uniform_int(1, 6)),
                      rng.uniform_int(1, 500)});
  }
  return groups;
}

class WaterfillProperty : public ::testing::TestWithParam<int> {};

// Work conservation and cap respect: the fill places min(capacity, demand)
// in aggregate, and no member ever exceeds its own cap — exactly, not
// approximately, because a cap is assigned by copy, never recomputed.
TEST_P(WaterfillProperty, WorkConservingAndCapRespecting) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151ULL + 29);
  net::WaterfillSolver solver;
  std::vector<BitsPerSecond> rates;
  for (int round = 0; round < 20; ++round) {
    const auto groups = random_groups(rng, 24);
    double agg = 0.0;
    for (const auto& g : groups) agg += g.cap * static_cast<double>(g.count);
    const double capacity = agg * rng.uniform(0.05, 1.5);
    const double total = solver.solve_dist(capacity, groups, rates);

    double member_sum = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      EXPECT_GE(rates[g], 0.0);
      EXPECT_LE(rates[g], groups[g].cap);  // exact: caps are copied, not derived
      member_sum += rates[g] * static_cast<double>(groups[g].count);
    }
    const double expect = std::min(capacity, agg);
    EXPECT_NEAR(total, expect, std::max(1.0, expect * 1e-9));
    EXPECT_NEAR(member_sum, total, std::max(1.0, total * 1e-9));
  }
}

// Raising one group's weight never lowers its own per-member rate and never
// raises anyone else's — max-min fairness is monotone in weight.
TEST_P(WaterfillProperty, WeightMonotonicity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2749ULL + 7);
  net::WaterfillSolver solver;
  std::vector<BitsPerSecond> base, bumped;
  for (int round = 0; round < 10; ++round) {
    auto groups = random_groups(rng, 16);
    double agg = 0.0;
    for (const auto& g : groups) agg += g.cap * static_cast<double>(g.count);
    const double capacity = agg * rng.uniform(0.2, 0.9);
    solver.solve_dist(capacity, groups, base);

    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, groups.size() - 1));
    groups[pick].weight *= rng.uniform(1.5, 4.0);
    solver.solve_dist(capacity, groups, bumped);

    // Monotone up to rounding: a changed weight reshuffles every round's
    // weight sum, so equality holds only to last-ulp noise at rate scale.
    const auto tol = [](double v) { return std::max(1e-6, v * 1e-9); };
    EXPECT_GE(bumped[pick], base[pick] - tol(base[pick]));
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (g == pick) continue;
      EXPECT_LE(bumped[g], base[g] + tol(base[g]));
    }
  }
}

// Permuting the groups permutes the rates: submission order is bookkeeping,
// not policy. Order can shift last-ulp rounding, so this is a near-equality
// (the bitwise contract applies to a FIXED order; see test_waterfill.cpp).
TEST_P(WaterfillProperty, PermutationInvariance) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 911ULL + 5);
  net::WaterfillSolver solver;
  std::vector<BitsPerSecond> a, b;
  for (int round = 0; round < 10; ++round) {
    const auto groups = random_groups(rng, 16);
    double agg = 0.0;
    for (const auto& g : groups) agg += g.cap * static_cast<double>(g.count);
    const double capacity = agg * rng.uniform(0.1, 1.2);
    solver.solve_dist(capacity, groups, a);

    std::vector<std::size_t> perm(groups.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.uniform_int(0, i - 1)]);
    }
    std::vector<net::DemandGroup> shuffled;
    for (const std::size_t i : perm) shuffled.push_back(groups[i]);
    solver.solve_dist(capacity, shuffled, b);

    for (std::size_t i = 0; i < perm.size(); ++i) {
      const double tol = std::max(1e-6, a[perm[i]] * 1e-9);
      EXPECT_NEAR(b[i], a[perm[i]], tol) << "round " << round << " slot " << i;
    }
  }
}

// Collapse invariance, the dist-mode contract: k adjacent count-1 groups
// with identical (cap, weight) are BITWISE the same round as one
// (cap, weight, k) group — and the same as k duplicate scalar demands. This
// is what lets proto sessions and the bench submit collapsed rounds without
// perturbing a single golden.
TEST_P(WaterfillProperty, CollapseInvarianceIsBitwise) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 409ULL + 11);
  net::WaterfillSolver solver;
  for (int round = 0; round < 10; ++round) {
    const double cap = rng.uniform(1e6, 1e9);
    const double weight = static_cast<double>(rng.uniform_int(1, 4));
    const auto k = rng.uniform_int(2, 200);
    // A bystander group on each side so the cluster is interior.
    const net::DemandGroup before{rng.uniform(1e6, 1e9), 1.0, 3};
    const net::DemandGroup after{rng.uniform(1e6, 1e9), 2.0, 5};
    const double capacity =
        (before.cap * 3 + cap * static_cast<double>(k) + after.cap * 5) *
        rng.uniform(0.1, 1.2);

    std::vector<net::DemandGroup> collapsed{before, {cap, weight, k}, after};
    std::vector<net::DemandGroup> split{before};
    for (std::uint64_t i = 0; i < k; ++i) split.push_back({cap, weight, 1});
    split.push_back(after);

    std::vector<BitsPerSecond> cr, sr;
    const double ct = solver.solve_dist(capacity, collapsed, cr);
    const double st = solver.solve_dist(capacity, split, sr);
    ASSERT_EQ(ct, st) << "round " << round;
    ASSERT_EQ(sr.front(), cr.front());
    ASSERT_EQ(sr.back(), cr.back());
    for (std::uint64_t i = 0; i < k; ++i) {
      ASSERT_EQ(sr[1 + i], cr[1]) << "round " << round << " member " << i;
    }

    // Scalar duplicates route through the same collapse.
    std::vector<net::Demand> flat(static_cast<std::size_t>(k),
                                  net::Demand{cap, weight});
    flat.insert(flat.begin(), net::Demand{before.cap, before.weight});
    // (bystanders trimmed: the scalar list covers just the cluster edge case)
    std::vector<BitsPerSecond> fr;
    net::WaterfillSolver scalar_solver;
    scalar_solver.solve(capacity, flat, fr);
    for (std::size_t i = 2; i < fr.size(); ++i) {
      ASSERT_EQ(fr[i], fr[1]) << "duplicate members diverged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaterfillProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace eadt::exp
