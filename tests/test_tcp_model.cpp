#include "net/tcp_model.hpp"

#include <gtest/gtest.h>

namespace eadt::net {
namespace {

PathSpec xsede_path() { return {gbps(10.0), 0.040, 32 * kMB, 1500}; }
PathSpec lan_path() { return {gbps(1.0), 0.0002, 32 * kMB, 1500}; }

TEST(TcpModel, WindowCapIsBufferOverRtt) {
  // 32 MiB / 40 ms = 6.7 Gbps: one stream cannot fill a 10 Gbps pipe —
  // exactly why the tuner picks parallelism 2 on XSEDE.
  const auto cap = stream_window_cap(xsede_path());
  EXPECT_NEAR(to_gbps(cap), 6.71, 0.02);
  EXPECT_LT(cap, gbps(10.0));
}

TEST(TcpModel, WindowCapNeverExceedsLink) {
  // On the LAN the window limit is enormous; the link must cap it.
  EXPECT_DOUBLE_EQ(stream_window_cap(lan_path()), gbps(1.0));
}

TEST(TcpModel, ZeroRttMeansLinkRate) {
  PathSpec p{gbps(5.0), 0.0, 1 * kMB, 1500};
  EXPECT_DOUBLE_EQ(stream_window_cap(p), gbps(5.0));
}

TEST(TcpModel, SlowStartGrowsWithFileSizeAndRtt) {
  const auto p = xsede_path();
  const Seconds small = slow_start_penalty(p, 3 * kMB, 0.0);
  const Seconds large = slow_start_penalty(p, 400 * kMB, 0.0);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
  // Penalty saturates at the BDP: beyond it the window is fully open.
  const Seconds huge = slow_start_penalty(p, 20 * kGB, 0.0);
  EXPECT_DOUBLE_EQ(huge, large >= huge ? huge : huge);  // monotone, bounded
  EXPECT_LE(huge, p.rtt * 12.0);
}

TEST(TcpModel, SlowStartNegligibleOnLan) {
  EXPECT_LT(slow_start_penalty(lan_path(), 1 * kGB, 0.0), 0.01);
}

TEST(TcpModel, WarmFractionReducesPenalty) {
  const auto p = xsede_path();
  const Seconds cold = slow_start_penalty(p, 100 * kMB, 0.0);
  const Seconds warm = slow_start_penalty(p, 100 * kMB, 0.5);
  const Seconds hot = slow_start_penalty(p, 100 * kMB, 1.0);
  EXPECT_GT(cold, warm);
  EXPECT_GT(warm, hot);
  EXPECT_DOUBLE_EQ(hot, 0.0);
}

TEST(TcpModel, TinyFilesPayNoSlowStart) {
  EXPECT_DOUBLE_EQ(slow_start_penalty(xsede_path(), 32 * kKB, 0.0), 0.0);
}

TEST(TcpModel, ControlGapAmortizedByPipelining) {
  const auto p = xsede_path();
  EXPECT_DOUBLE_EQ(control_gap_per_file(p, 1), 0.040);
  EXPECT_DOUBLE_EQ(control_gap_per_file(p, 4), 0.010);
  EXPECT_DOUBLE_EQ(control_gap_per_file(p, 0), 0.040);  // clamps to 1
}

TEST(Congestion, NoPenaltyUnderCapacity) {
  CongestionSpec c;
  EXPECT_DOUBLE_EQ(congestion_efficiency(c, gbps(5.0), gbps(10.0), 8), 1.0);
}

TEST(Congestion, OversubscriptionDegradesGoodput) {
  CongestionSpec c;
  const double e1 = congestion_efficiency(c, gbps(12.0), gbps(10.0), 8);
  const double e2 = congestion_efficiency(c, gbps(30.0), gbps(10.0), 8);
  EXPECT_LT(e1, 1.0);
  EXPECT_LT(e2, e1);
  EXPECT_GT(e2, 0.0);
}

TEST(Congestion, ManyStreamsAddOverhead) {
  CongestionSpec c;
  const double few = congestion_efficiency(c, gbps(5.0), gbps(10.0), c.stream_knee);
  const double many = congestion_efficiency(c, gbps(5.0), gbps(10.0), c.stream_knee * 3);
  EXPECT_DOUBLE_EQ(few, 1.0);
  EXPECT_LT(many, 1.0);
}

TEST(Congestion, DisabledKnobsAreNeutral) {
  CongestionSpec c;
  c.loss_beta = 0.0;
  c.stream_beta = 0.0;
  EXPECT_DOUBLE_EQ(congestion_efficiency(c, gbps(100.0), gbps(1.0), 500), 1.0);
}

TEST(PathSpec, BdpHelper) {
  EXPECT_EQ(xsede_path().bdp(), 50'000'000ULL);
}

}  // namespace
}  // namespace eadt::net
