#include "host/server.hpp"

#include <gtest/gtest.h>

namespace eadt::host {
namespace {

ServerSpec dtn() {
  ServerSpec s;
  s.name = "dtn";
  s.cores = 4;
  s.nic_speed = gbps(10.0);
  s.mem_total = 64ULL * 1024 * 1024 * 1024;
  s.disk = {DiskKind::kParallelArray, gbps(12.0), 6.0, 0.0};
  s.per_core_goodput = gbps(2.2);
  return s;
}

ServerSpec workstation() {
  ServerSpec s = dtn();
  s.disk = {DiskKind::kSingleDisk, mbps(780.0), 0.0, 0.12};
  return s;
}

TEST(DiskModel, ParallelArrayGrowsWithConcurrency) {
  const auto d = dtn().disk;
  const auto b1 = disk_aggregate_bandwidth(d, 1);
  const auto b4 = disk_aggregate_bandwidth(d, 4);
  const auto b12 = disk_aggregate_bandwidth(d, 12);
  EXPECT_LT(b1, b4);
  EXPECT_LT(b4, b12);
  EXPECT_LT(b12, d.max_bandwidth);  // asymptotic, never exceeds
  EXPECT_NEAR(to_gbps(b12), 8.0, 0.01);  // 12 * 12/(12+6)
}

TEST(DiskModel, SingleDiskThrashesWithConcurrency) {
  const auto d = workstation().disk;
  const auto b1 = disk_aggregate_bandwidth(d, 1);
  const auto b4 = disk_aggregate_bandwidth(d, 4);
  const auto b12 = disk_aggregate_bandwidth(d, 12);
  EXPECT_DOUBLE_EQ(b1, d.max_bandwidth);
  EXPECT_GT(b1, b4);
  EXPECT_GT(b4, b12);
  // 12 concurrent readers cut a spindle to less than half.
  EXPECT_LT(b12, b1 * 0.5);
}

TEST(DiskModel, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(disk_aggregate_bandwidth(dtn().disk, 0), 0.0);
  DiskSpec none{DiskKind::kParallelArray, 0.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(disk_aggregate_bandwidth(none, 3), 0.0);
}

TEST(ContextSwitch, NoPenaltyWithinCoreCount) {
  const auto s = dtn();
  EXPECT_DOUBLE_EQ(context_switch_factor(s, 1), 1.0);
  EXPECT_DOUBLE_EQ(context_switch_factor(s, 4), 1.0);
}

TEST(ContextSwitch, PenaltyGrowsPastCores) {
  const auto s = dtn();
  const double f8 = context_switch_factor(s, 8);
  const double f24 = context_switch_factor(s, 24);
  EXPECT_GT(f8, 1.0);
  EXPECT_GT(f24, f8);
}

TEST(CpuCap, SingleChannelUsesItsStreams) {
  const auto s = dtn();
  // One channel, 2 streams, nothing else: 2 cores' worth of goodput.
  const auto cap = channel_cpu_cap(s, 1, 2, 2);
  EXPECT_NEAR(to_gbps(cap), 4.4, 0.01);
}

TEST(CpuCap, SharedCoresDiluteEachChannel) {
  const auto s = dtn();
  const auto alone = channel_cpu_cap(s, 1, 1, 1);
  const auto crowded = channel_cpu_cap(s, 12, 12, 1);
  EXPECT_NEAR(to_gbps(alone), 2.2, 0.01);
  EXPECT_LT(crowded, alone);
  // 12 single-stream channels on 4 cores: about a third of a core each,
  // shaved further by the context-switch factor.
  EXPECT_NEAR(to_gbps(crowded), 2.2 / 3.0 / context_switch_factor(s, 12), 0.02);
}

TEST(CpuCap, AggregateIsBoundedByCorePool) {
  const auto s = dtn();
  // N channels of p streams can never exceed cores * per_core in aggregate.
  for (int n : {2, 4, 8, 16}) {
    const auto per = channel_cpu_cap(s, n, 2 * n, 2);
    EXPECT_LE(per * n, s.per_core_goodput * s.cores * 1.001);
  }
}

TEST(CpuCap, ZeroProcessesIsZero) {
  EXPECT_DOUBLE_EQ(channel_cpu_cap(dtn(), 0, 0, 1), 0.0);
}

TEST(ActiveCores, ClampedToCoreCount) {
  const auto s = dtn();
  EXPECT_EQ(active_cores(s, {0, 0, 0.0, 0.0, 0}), 0);
  EXPECT_EQ(active_cores(s, {1, 1, 0.0, 0.0, 0}), 1);
  EXPECT_EQ(active_cores(s, {3, 6, 0.0, 0.0, 0}), 4);   // threads dominate
  EXPECT_EQ(active_cores(s, {12, 24, 0.0, 0.0, 0}), 4); // clamped
}

TEST(Utilization, ZeroLoadIsZero) {
  const auto u = utilization(dtn(), {0, 0, 0.0, 0.0, 0});
  EXPECT_DOUBLE_EQ(u.cpu, 0.0);
  EXPECT_DOUBLE_EQ(u.mem, 0.0);
  EXPECT_DOUBLE_EQ(u.disk, 0.0);
  EXPECT_DOUBLE_EQ(u.nic, 0.0);
}

TEST(Utilization, ComponentsScaleWithLoad) {
  const auto s = dtn();
  HostLoad light{1, 1, gbps(1.0), gbps(1.0), 32 * kMB};
  HostLoad heavy{8, 16, gbps(7.0), gbps(7.0), 16ULL * 32 * kMB};
  const auto ul = utilization(s, light);
  const auto uh = utilization(s, heavy);
  EXPECT_LT(ul.cpu, uh.cpu);
  EXPECT_LT(ul.nic, uh.nic);
  EXPECT_LT(ul.disk, uh.disk);
  EXPECT_LT(ul.mem, uh.mem);
  EXPECT_NEAR(uh.nic, 0.7, 1e-9);
}

TEST(Utilization, AlwaysClampedToUnitInterval) {
  const auto s = dtn();
  HostLoad absurd{100, 400, gbps(100.0), gbps(100.0), 1ULL << 40};
  const auto u = utilization(s, absurd);
  EXPECT_LE(u.cpu, 1.0);
  EXPECT_LE(u.mem, 1.0);
  EXPECT_LE(u.disk, 1.0);
  EXPECT_LE(u.nic, 1.0);
}

TEST(Utilization, OversubscribedThreadsAddCpu) {
  const auto s = dtn();
  HostLoad within{4, 4, gbps(2.0), gbps(2.0), 0};
  HostLoad over{4, 16, gbps(2.0), gbps(2.0), 0};
  EXPECT_GT(utilization(s, over).cpu, utilization(s, within).cpu);
}

}  // namespace
}  // namespace eadt::host
