#include "testbeds/config_testbed.hpp"

#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace eadt::testbeds {
namespace {

Config parse_or_die(std::string_view text) {
  std::string err;
  auto cfg = Config::parse(text, &err);
  EXPECT_TRUE(cfg.has_value()) << err;
  return *cfg;
}

TEST(ConfigTestbed, EmptyConfigYieldsXsedeDefaults) {
  const auto t = testbed_from_config(parse_or_die(""));
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->env.path.bandwidth, gbps(10.0));
  EXPECT_EQ(t->env.source.servers.size(), 4u);
  EXPECT_EQ(t->env.name, "custom-testbed");
}

TEST(ConfigTestbed, MinimalOverrides) {
  const auto t = testbed_from_config(parse_or_die(
      "[testbed]\nname = lab-link\nmax_channels = 6\n"
      "[path]\nbandwidth_gbps = 1\nrtt_ms = 10\nbuffer = 8MB\n"
      "[endpoint]\nservers = 2\ncores = 8\n"));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->env.name, "lab-link");
  EXPECT_EQ(t->default_max_channels, 6);
  EXPECT_DOUBLE_EQ(t->env.path.bandwidth, gbps(1.0));
  EXPECT_DOUBLE_EQ(t->env.path.rtt, 0.010);
  EXPECT_EQ(t->env.path.tcp_buffer, 8 * kMB);
  EXPECT_EQ(t->env.source.servers.size(), 2u);
  EXPECT_EQ(t->env.destination.servers.size(), 2u);
  EXPECT_EQ(t->env.source.servers[0].cores, 8);
}

TEST(ConfigTestbed, PerSideOverridesBeatShared) {
  const auto t = testbed_from_config(parse_or_die(
      "[endpoint]\nservers = 2\ncores = 4\n"
      "[source]\nsite = left\nservers = 1\n"
      "[destination]\nsite = right\ncores = 16\n"));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->env.source.servers.size(), 1u);       // per-side override
  EXPECT_EQ(t->env.destination.servers.size(), 2u);  // shared value
  EXPECT_EQ(t->env.source.servers[0].cores, 4);
  EXPECT_EQ(t->env.destination.servers[0].cores, 16);
  EXPECT_EQ(t->env.source.site, "left");
  EXPECT_NE(t->env.destination.servers[0].name.find("right"), std::string::npos);
}

TEST(ConfigTestbed, SingleDiskKind) {
  const auto t = testbed_from_config(parse_or_die(
      "[endpoint]\ndisk = single\ndisk_gbps = 0.8\ndisk_thrash = 0.3\n"));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->env.source.servers[0].disk.kind, host::DiskKind::kSingleDisk);
  EXPECT_NEAR(to_gbps(t->env.source.servers[0].disk.max_bandwidth), 0.8, 1e-9);
  EXPECT_DOUBLE_EQ(t->env.source.servers[0].disk.thrash_alpha, 0.3);
}

TEST(ConfigTestbed, UnknownDiskKindFails) {
  std::string err;
  EXPECT_FALSE(
      testbed_from_config(parse_or_die("[endpoint]\ndisk = quantum\n"), &err)
          .has_value());
  EXPECT_NE(err.find("disk kind"), std::string::npos);
}

TEST(ConfigTestbed, RouteFromDeviceList) {
  const auto t = testbed_from_config(parse_or_die(
      "[route]\ndevices = edge-switch, metro-router, edge-switch\n"));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->env.route.size(), 3u);
  EXPECT_EQ(t->env.route.count(net::DeviceKind::kMetroRouter), 1u);
}

TEST(ConfigTestbed, UnknownDeviceFails) {
  std::string err;
  EXPECT_FALSE(testbed_from_config(
                   parse_or_die("[route]\ndevices = quantum-repeater\n"), &err)
                   .has_value());
  EXPECT_NE(err.find("device kind"), std::string::npos);
}

TEST(ConfigTestbed, DatasetBands) {
  const auto t = testbed_from_config(parse_or_die(
      "[dataset]\ntotal = 4GB\nbands = 1MB:10MB:0.5, 10MB:100MB:0.5\n"));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->recipe.total_bytes, 4 * kGB);
  ASSERT_EQ(t->recipe.bands.size(), 2u);
  EXPECT_EQ(t->recipe.bands[0].min_size, 1 * kMB);
  EXPECT_EQ(t->recipe.bands[1].max_size, 100 * kMB);
  // The recipe is generatable and hits its byte target.
  const auto ds = t->make_dataset();
  EXPECT_NEAR(static_cast<double>(ds.total_bytes()), static_cast<double>(4 * kGB),
              static_cast<double>(4 * kGB) * 0.02);
}

TEST(ConfigTestbed, BadBandsFail) {
  std::string err;
  EXPECT_FALSE(testbed_from_config(
                   parse_or_die("[dataset]\nbands = 1MB:10MB\n"), &err)
                   .has_value());  // missing share
  EXPECT_FALSE(testbed_from_config(
                   parse_or_die("[dataset]\nbands = 10MB:1MB:1.0\n"), &err)
                   .has_value());  // max < min
  EXPECT_FALSE(testbed_from_config(
                   parse_or_die("[dataset]\nbands = 1MB:10MB:0.3\n"), &err)
                   .has_value());  // shares don't sum to 1
  EXPECT_NE(err.find("sum to 1"), std::string::npos);
}

TEST(ConfigTestbed, InvalidPathFails) {
  std::string err;
  EXPECT_FALSE(testbed_from_config(
                   parse_or_die("[path]\nbandwidth_gbps = 0\n"), &err)
                   .has_value());
}

TEST(ConfigTestbed, ServerCountBounds) {
  std::string err;
  EXPECT_FALSE(testbed_from_config(parse_or_die("[endpoint]\nservers = 0\n"), &err)
                   .has_value());
  EXPECT_FALSE(testbed_from_config(parse_or_die("[endpoint]\nservers = 100\n"), &err)
                   .has_value());
}

TEST(ConfigTestbed, PowerSections) {
  const auto t = testbed_from_config(parse_or_die(
      "[power]\ncpu_scale = 111\nactive_base_watts = 3\n"
      "[power.destination]\ncpu_scale = 222\n"));
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->env.source.power.cpu_scale, 111.0);
  EXPECT_DOUBLE_EQ(t->env.destination.power.cpu_scale, 222.0);  // per-side wins
  EXPECT_DOUBLE_EQ(t->env.destination.power.active_base, 3.0);  // shared fallback
}

TEST(ConfigTestbed, ReferenceConfigRoundTrips) {
  std::string err;
  const auto cfg = Config::parse(testbed_config_reference(), &err);
  ASSERT_TRUE(cfg.has_value()) << err;
  const auto t = testbed_from_config(*cfg, &err);
  ASSERT_TRUE(t.has_value()) << err;
  const auto reference = xsede();
  EXPECT_DOUBLE_EQ(t->env.path.bandwidth, reference.env.path.bandwidth);
  EXPECT_DOUBLE_EQ(t->env.path.rtt, reference.env.path.rtt);
  EXPECT_EQ(t->env.source.servers.size(), reference.env.source.servers.size());
  EXPECT_EQ(t->env.source.servers[0].cores, reference.env.source.servers[0].cores);
  EXPECT_DOUBLE_EQ(t->env.source.power.cpu_scale, reference.env.source.power.cpu_scale);
  EXPECT_EQ(t->env.route.size(), reference.env.route.size());
  EXPECT_EQ(t->recipe.total_bytes, reference.recipe.total_bytes);
}


TEST(ConfigTestbed, DatasetListingFileWinsOverRecipe) {
  const std::string listing = ::testing::TempDir() + "/eadt_listing.txt";
  {
    std::ofstream out(listing);
    out << "# three files\n10MB a\n20MB b\n30MB c\n";
  }
  const auto t = testbed_from_config(parse_or_die(
      "[dataset]\ntotal = 99GB\nlisting = " + listing + "\n"));
  ASSERT_TRUE(t.has_value());
  const auto ds = t->make_dataset();
  ASSERT_EQ(ds.count(), 3u);
  EXPECT_EQ(ds.total_bytes(), 60 * kMB);
}

TEST(ConfigTestbed, MissingListingFileThrowsAtUse) {
  auto t = testbed_from_config(
      parse_or_die("[dataset]\nlisting = /no/such/listing.txt\n"));
  ASSERT_TRUE(t.has_value());  // configuration parses...
  EXPECT_THROW((void)t->make_dataset(), std::runtime_error);  // ...use fails loudly
}

TEST(ConfigTestbed, ConfiguredTestbedRunsEndToEnd) {
  auto t = testbed_from_config(parse_or_die(
      "[path]\nbandwidth_gbps = 1\nrtt_ms = 5\nbuffer = 8MB\n"
      "[endpoint]\nservers = 1\nper_core_gbps = 0.8\ndisk_gbps = 2\n"
      "[dataset]\ntotal = 512MB\nbands = 1MB:32MB:1.0\n"));
  ASSERT_TRUE(t.has_value());
  const auto ds = t->make_dataset();
  const auto out =
      eadt::exp::run_algorithm(eadt::exp::Algorithm::kProMc, *t, ds, 4);
  EXPECT_TRUE(out.result.completed);
  EXPECT_EQ(out.result.bytes, ds.total_bytes());
}

}  // namespace
}  // namespace eadt::testbeds
