#include "net/fair_share.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace eadt::net {
namespace {

TEST(FairShare, EqualWeightsSplitEvenly) {
  std::vector<Demand> d(4, Demand{gbps(10.0), 1.0});
  const auto r = fair_share(gbps(8.0), d);
  for (double a : r.allocation) EXPECT_NEAR(a, gbps(2.0), 1.0);
  EXPECT_NEAR(r.total, gbps(8.0), 1.0);
}

TEST(FairShare, WeightsAreProportional) {
  std::vector<Demand> d{{gbps(10.0), 1.0}, {gbps(10.0), 3.0}};
  const auto r = fair_share(gbps(8.0), d);
  EXPECT_NEAR(r.allocation[0], gbps(2.0), 1.0);
  EXPECT_NEAR(r.allocation[1], gbps(6.0), 1.0);
}

TEST(FairShare, CapsAreRespectedAndRedistributed) {
  // Channel 0 can only take 1 Gbps; the leftover goes to the others.
  std::vector<Demand> d{{gbps(1.0), 1.0}, {gbps(10.0), 1.0}, {gbps(10.0), 1.0}};
  const auto r = fair_share(gbps(9.0), d);
  EXPECT_NEAR(r.allocation[0], gbps(1.0), 1.0);
  EXPECT_NEAR(r.allocation[1], gbps(4.0), 1.0);
  EXPECT_NEAR(r.allocation[2], gbps(4.0), 1.0);
}

TEST(FairShare, WorkConservingUnderCapacity) {
  std::vector<Demand> d{{gbps(1.0), 1.0}, {gbps(2.0), 1.0}};
  const auto r = fair_share(gbps(10.0), d);
  EXPECT_NEAR(r.allocation[0], gbps(1.0), 1.0);
  EXPECT_NEAR(r.allocation[1], gbps(2.0), 1.0);
  EXPECT_NEAR(r.total, gbps(3.0), 1.0);
}

TEST(FairShare, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(fair_share(gbps(1.0), {}).allocation.empty());
  std::vector<Demand> d{{gbps(1.0), 1.0}};
  EXPECT_DOUBLE_EQ(fair_share(0.0, d).total, 0.0);
  std::vector<Demand> zero_cap{{0.0, 1.0}, {gbps(2.0), 1.0}};
  const auto r = fair_share(gbps(1.0), zero_cap);
  EXPECT_DOUBLE_EQ(r.allocation[0], 0.0);
  EXPECT_NEAR(r.allocation[1], gbps(1.0), 1.0);
}

TEST(FairShare, ZeroWeightGetsNothing) {
  std::vector<Demand> d{{gbps(5.0), 0.0}, {gbps(5.0), 1.0}};
  const auto r = fair_share(gbps(4.0), d);
  EXPECT_DOUBLE_EQ(r.allocation[0], 0.0);
  EXPECT_NEAR(r.allocation[1], gbps(4.0), 1.0);
}

// Property sweep: invariants hold for random demand sets.
class FairShareProperty : public ::testing::TestWithParam<int> {};

TEST_P(FairShareProperty, Invariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.uniform_int(1, 24));
  std::vector<Demand> d;
  for (int i = 0; i < n; ++i) {
    d.push_back({rng.uniform(0.0, 5e9), rng.uniform(0.5, 4.0)});
  }
  const double capacity = rng.uniform(1e8, 2e10);
  const auto r = fair_share(capacity, d);

  ASSERT_EQ(r.allocation.size(), d.size());
  double sum = 0.0, cap_sum = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(r.allocation[i], -1e-6);
    EXPECT_LE(r.allocation[i], d[i].cap + 1e-3);
    sum += r.allocation[i];
    cap_sum += d[i].cap;
  }
  EXPECT_LE(sum, capacity + 1e-3);
  // Work conservation: total equals min(capacity, sum of caps).
  EXPECT_NEAR(sum, std::min(capacity, cap_sum), std::max(1.0, sum * 1e-9));
  EXPECT_NEAR(sum, r.total, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(RandomDemands, FairShareProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace eadt::net
