#include "net/fair_share.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "util/rng.hpp"

namespace eadt::net {
namespace {

TEST(FairShare, EqualWeightsSplitEvenly) {
  std::vector<Demand> d(4, Demand{gbps(10.0), 1.0});
  const auto r = fair_share(gbps(8.0), d);
  for (double a : r.allocation) EXPECT_NEAR(a, gbps(2.0), 1.0);
  EXPECT_NEAR(r.total, gbps(8.0), 1.0);
}

TEST(FairShare, WeightsAreProportional) {
  std::vector<Demand> d{{gbps(10.0), 1.0}, {gbps(10.0), 3.0}};
  const auto r = fair_share(gbps(8.0), d);
  EXPECT_NEAR(r.allocation[0], gbps(2.0), 1.0);
  EXPECT_NEAR(r.allocation[1], gbps(6.0), 1.0);
}

TEST(FairShare, CapsAreRespectedAndRedistributed) {
  // Channel 0 can only take 1 Gbps; the leftover goes to the others.
  std::vector<Demand> d{{gbps(1.0), 1.0}, {gbps(10.0), 1.0}, {gbps(10.0), 1.0}};
  const auto r = fair_share(gbps(9.0), d);
  EXPECT_NEAR(r.allocation[0], gbps(1.0), 1.0);
  EXPECT_NEAR(r.allocation[1], gbps(4.0), 1.0);
  EXPECT_NEAR(r.allocation[2], gbps(4.0), 1.0);
}

TEST(FairShare, WorkConservingUnderCapacity) {
  std::vector<Demand> d{{gbps(1.0), 1.0}, {gbps(2.0), 1.0}};
  const auto r = fair_share(gbps(10.0), d);
  EXPECT_NEAR(r.allocation[0], gbps(1.0), 1.0);
  EXPECT_NEAR(r.allocation[1], gbps(2.0), 1.0);
  EXPECT_NEAR(r.total, gbps(3.0), 1.0);
}

TEST(FairShare, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(fair_share(gbps(1.0), {}).allocation.empty());
  std::vector<Demand> d{{gbps(1.0), 1.0}};
  EXPECT_DOUBLE_EQ(fair_share(0.0, d).total, 0.0);
  std::vector<Demand> zero_cap{{0.0, 1.0}, {gbps(2.0), 1.0}};
  const auto r = fair_share(gbps(1.0), zero_cap);
  EXPECT_DOUBLE_EQ(r.allocation[0], 0.0);
  EXPECT_NEAR(r.allocation[1], gbps(1.0), 1.0);
}

TEST(FairShare, ZeroWeightGetsNothing) {
  std::vector<Demand> d{{gbps(5.0), 0.0}, {gbps(5.0), 1.0}};
  const auto r = fair_share(gbps(4.0), d);
  EXPECT_DOUBLE_EQ(r.allocation[0], 0.0);
  EXPECT_NEAR(r.allocation[1], gbps(4.0), 1.0);
}

// Property sweep: invariants hold for random demand sets.
class FairShareProperty : public ::testing::TestWithParam<int> {};

TEST_P(FairShareProperty, Invariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.uniform_int(1, 24));
  std::vector<Demand> d;
  for (int i = 0; i < n; ++i) {
    d.push_back({rng.uniform(0.0, 5e9), rng.uniform(0.5, 4.0)});
  }
  const double capacity = rng.uniform(1e8, 2e10);
  const auto r = fair_share(capacity, d);

  ASSERT_EQ(r.allocation.size(), d.size());
  double sum = 0.0, cap_sum = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(r.allocation[i], -1e-6);
    EXPECT_LE(r.allocation[i], d[i].cap + 1e-3);
    sum += r.allocation[i];
    cap_sum += d[i].cap;
  }
  EXPECT_LE(sum, capacity + 1e-3);
  // Work conservation: total equals min(capacity, sum of caps).
  EXPECT_NEAR(sum, std::min(capacity, cap_sum), std::max(1.0, sum * 1e-9));
  EXPECT_NEAR(sum, r.total, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(RandomDemands, FairShareProperty, ::testing::Range(0, 25));

// Raising one channel's weight (everything else fixed) must never reduce its
// allocation, and must never increase anyone else's.
TEST_P(FairShareProperty, WeightMonotonicity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n = static_cast<int>(rng.uniform_int(2, 16));
  std::vector<Demand> d;
  for (int i = 0; i < n; ++i) {
    d.push_back({rng.uniform(1e8, 5e9), rng.uniform(0.5, 4.0)});
  }
  const double capacity = rng.uniform(1e8, 1e10);
  const auto base = fair_share(capacity, d);

  const auto bumped_idx = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
  d[bumped_idx].weight *= rng.uniform(1.5, 4.0);
  const auto bumped = fair_share(capacity, d);

  EXPECT_GE(bumped.allocation[bumped_idx], base.allocation[bumped_idx] - 1e-6);
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i == bumped_idx) continue;
    EXPECT_LE(bumped.allocation[i], base.allocation[i] + 1e-6);
  }
}

TEST(FairShare, AllZeroWeightsAllocateNothing) {
  std::vector<Demand> d{{gbps(5.0), 0.0}, {gbps(3.0), 0.0}};
  const auto r = fair_share(gbps(4.0), d);
  EXPECT_DOUBLE_EQ(r.total, 0.0);
  for (double a : r.allocation) EXPECT_DOUBLE_EQ(a, 0.0);
}

// Pin the all-zero-weight contract on BOTH dispatch paths: above the
// waterfill threshold the active set is non-empty but its weight sum is
// zero, so the waterlevel division must be guarded — the round allocates
// nothing (no NaNs, no infinities) instead of dividing by zero. Routed
// through fair_share_into and a full LinkArbiter round so the guard is
// checked where production traffic actually flows.
TEST(FairShare, AllZeroWeightsAboveThresholdAllocateNothing) {
  std::vector<Demand> d(kWaterfillThreshold * 3, Demand{gbps(2.0), 0.0});
  FairShareScratch scratch;
  std::vector<BitsPerSecond> alloc;
  const BitsPerSecond total = fair_share_into(gbps(40.0), d, alloc, scratch);
  EXPECT_DOUBLE_EQ(total, 0.0);
  for (double a : alloc) ASSERT_DOUBLE_EQ(a, 0.0);

  LinkArbiter arbiter;
  arbiter.begin_round(gbps(40.0));
  const std::vector<DemandGroup> groups{{gbps(2.0), 0.0, kWaterfillThreshold * 3}};
  const std::size_t slot = arbiter.submit_groups(groups);
  arbiter.allocate();
  EXPECT_DOUBLE_EQ(arbiter.total(), 0.0);
  for (double a : arbiter.slice(slot)) ASSERT_DOUBLE_EQ(a, 0.0);
}

TEST(FairShare, AllZeroCapsAllocateNothing) {
  std::vector<Demand> d{{0.0, 1.0}, {0.0, 2.0}};
  const auto r = fair_share(gbps(4.0), d);
  EXPECT_DOUBLE_EQ(r.total, 0.0);
  for (double a : r.allocation) EXPECT_DOUBLE_EQ(a, 0.0);
}

// The scratch-reusing entry point is the allocating one's hot twin: whatever
// state the scratch and output vectors carry over from previous (differently
// sized) calls, the result must be bit-for-bit what fair_share computes.
TEST(FairShare, ScratchReuseIsBitwiseIdentical) {
  Rng rng(4242);
  FairShareScratch scratch;
  std::vector<BitsPerSecond> alloc;
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.uniform_int(0, 32));
    std::vector<Demand> d;
    for (int i = 0; i < n; ++i) {
      // Include degenerate channels so the in-place survivor compaction runs.
      const double cap = rng.uniform(0.0, 1.0) < 0.1 ? 0.0 : rng.uniform(1e7, 5e9);
      const double weight = rng.uniform(0.0, 1.0) < 0.1 ? 0.0 : rng.uniform(0.1, 4.0);
      d.push_back({cap, weight});
    }
    const double capacity = rng.uniform(0.0, 1e10);
    const auto reference = fair_share(capacity, d);
    const double total = fair_share_into(capacity, d, alloc, scratch);
    ASSERT_EQ(alloc.size(), reference.allocation.size());
    for (std::size_t i = 0; i < alloc.size(); ++i) {
      ASSERT_EQ(alloc[i], reference.allocation[i]) << "round " << round << " ch " << i;
    }
    ASSERT_EQ(total, reference.total) << "round " << round;
  }
}

}  // namespace
}  // namespace eadt::net
