// Telemetry instruments (src/obs/telemetry.*) and their scheduler wiring.
//
// The determinism contract under test: TelemetryHub samples are taken in the
// scheduler's serial commit section from deterministic sim state only, so the
// `eadt-telemetry-v1` export is byte-identical at any tick-pipeline worker
// count. The bounding contract: the ring retains the newest `capacity`
// samples and counts what it dropped; the flight recorder stores at most
// max_dumps windows and counts the rest. Stride 0 disables the hub outright.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "exp/scheduler.hpp"
#include "exp/service.hpp"
#include "obs/metrics.hpp"

namespace eadt::obs {
namespace {

TelemetrySample sample_at(double t, int running) {
  TelemetrySample s;
  s.t = t;
  s.running = running;
  return s;
}

TEST(TelemetryHub, StrideZeroDisablesEverything) {
  TelemetryHub hub(0.0, 128, 2);
  EXPECT_FALSE(hub.enabled());
  EXPECT_FALSE(hub.due(0.0));
  EXPECT_FALSE(hub.due(1e9));
  hub.record(5.0);  // must be a no-op, not a crash
  EXPECT_EQ(hub.size(), 0u);
  EXPECT_EQ(hub.samples_seen(), 0u);
}

TEST(TelemetryHub, StrideClockAdvancesPastNow) {
  TelemetryHub hub(1.0, 16, 0);
  EXPECT_TRUE(hub.due(0.0));  // first sample lands at t = 0
  hub.record(0.0);
  EXPECT_FALSE(hub.due(0.5));
  EXPECT_TRUE(hub.due(1.0));
  // A coarse tick that jumps several strides yields one sample, not a burst:
  // the clock advances past `now`.
  hub.record(7.3);
  EXPECT_FALSE(hub.due(7.9));
  EXPECT_TRUE(hub.due(8.0));
}

TEST(TelemetryHub, RingKeepsNewestAndCountsDrops) {
  TelemetryHub hub(1.0, 4, 0);
  for (int i = 0; i < 10; ++i) {
    hub.scratch() = sample_at(static_cast<double>(i), i);
    hub.record(static_cast<double>(i));
  }
  EXPECT_EQ(hub.size(), 4u);
  EXPECT_EQ(hub.samples_seen(), 10u);
  // Oldest-first iteration over the retained window: t = 6, 7, 8, 9.
  for (std::size_t i = 0; i < hub.size(); ++i) {
    EXPECT_DOUBLE_EQ(hub.sample(i).t, 6.0 + static_cast<double>(i));
    EXPECT_EQ(hub.sample(i).running, 6 + static_cast<int>(i));
  }
  const std::string json = hub.to_json();
  EXPECT_NE(json.find("\"schema\": \"eadt-telemetry-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"samples_seen\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"samples_dropped\": 6"), std::string::npos);
}

TEST(TelemetryHub, ExportIsSchemaVersionedAndSized) {
  TelemetryHub hub(2.0, 8, 3);
  auto& s = hub.scratch();
  s.t = 0.0;
  s.running = 2;
  s.power_w = 120.0;
  s.cap_w = 200.0;
  ASSERT_EQ(s.site_power_w.size(), 3u);
  s.site_power_w[1] = 60.0;
  s.site_cap_w[1] = 100.0;
  hub.record(0.0);

  const std::string json = hub.to_json();
  EXPECT_NE(json.find("\"stride_s\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sites\": 3"), std::string::npos);
  // Doubles use the shortest-round-trip convention (exact tens render as
  // e-notation), matching every other exporter in the tree.
  EXPECT_NE(json.find("\"headroom_w\": 8e+01"), std::string::npos);
  EXPECT_NE(json.find("\"site_power_w\": [0, 6e+01, 0]"), std::string::npos);
  EXPECT_NE(json.find("\"site_cap_w\": [0, 1e+02, 0]"), std::string::npos);
}

TEST(TickFlightRecorder, DumpFreezesTheLastKTicksOldestFirst) {
  TickFlightRecorder rec(/*ring_ticks=*/8, /*max_dumps=*/4);
  for (int i = 0; i < 20; ++i) {
    FlightTick tick;
    tick.t = static_cast<double>(i);
    tick.running = i;
    rec.note(tick);
  }
  rec.trigger("test anomaly", 19.0);
  ASSERT_EQ(rec.dumps().size(), 1u);
  const auto& dump = rec.dumps()[0];
  EXPECT_EQ(dump.reason, "test anomaly");
  EXPECT_DOUBLE_EQ(dump.t, 19.0);
  ASSERT_EQ(dump.ticks.size(), 8u);
  for (std::size_t i = 0; i < dump.ticks.size(); ++i) {
    EXPECT_DOUBLE_EQ(dump.ticks[i].t, 12.0 + static_cast<double>(i));
  }
}

TEST(TickFlightRecorder, DumpCountIsBoundedAndOverflowIsCounted) {
  TickFlightRecorder rec(4, /*max_dumps=*/2);
  FlightTick tick;
  rec.note(tick);
  for (int i = 0; i < 5; ++i) {
    rec.trigger("anomaly " + std::to_string(i), static_cast<double>(i));
  }
  EXPECT_EQ(rec.dumps().size(), 2u);
  EXPECT_EQ(rec.suppressed(), 3u);
  EXPECT_EQ(rec.triggers(), 5u);
  std::ostringstream os;
  rec.write_json(os, 0);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"eadt-flightrec-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"anomaly 0\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"anomaly 1\""), std::string::npos);
  EXPECT_EQ(json.find("\"reason\": \"anomaly 2\""), std::string::npos);
}

TEST(TickProfiler, RegistersFamiliesAndObservesPhases) {
  MetricsRegistry registry;
  TickProfiler profiler(registry);
  profiler.observe(TickProfiler::kPrepare, 12.0);
  profiler.observe(TickProfiler::kCommit, 3.0);
  profiler.record_worker_ops(0, 41);
  profiler.record_worker_ops(TickProfiler::kMaxWorkers + 5, 99);  // ignored

  const auto metrics = registry.snapshot();
  bool prepare_seen = false;
  bool worker0_seen = false;
  for (const auto& m : metrics) {
    if (m.name == "tickpipe.prepare_us") {
      prepare_seen = true;
      EXPECT_EQ(m.kind, MetricSnapshot::Kind::kHistogram);
      EXPECT_EQ(m.count, 1u);
    }
    if (m.name == "tickpipe.worker0.ops") {
      worker0_seen = true;
      EXPECT_DOUBLE_EQ(m.value, 41.0);
    }
  }
  EXPECT_TRUE(prepare_seen);
  EXPECT_TRUE(worker0_seen);
}

}  // namespace
}  // namespace eadt::obs

namespace eadt::exp {
namespace {

testbeds::Testbed tiny_xsede() {
  auto t = testbeds::xsede();
  t.recipe.total_bytes /= 64;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / 64, band.min_size * 2);
  }
  return t;
}

proto::Dataset job_dataset(Bytes file, int count) {
  proto::Dataset ds;
  for (int i = 0; i < count; ++i) ds.files.push_back({file});
  return ds;
}

proto::SessionConfig fast_cfg() {
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  return cfg;
}

std::vector<SchedulerJob> small_fleet(int n) {
  std::vector<SchedulerJob> jobs;
  for (int i = 0; i < n; ++i) {
    TransferJob job;
    job.name = "t" + std::to_string(i);
    job.dataset = job_dataset(20 * kMB, 2);
    job.policy = i % 2 == 0 ? JobPolicy::kBalanced : JobPolicy::kGreen;
    job.max_channels = 2;
    jobs.push_back({std::move(job), 0.05 * i});
  }
  return jobs;
}

std::string run_with_telemetry(int pipeline_jobs, obs::TelemetryHub& hub) {
  SchedulerPolicy policy;
  policy.max_concurrent = 24;
  policy.max_queue_depth = 24;
  policy.jobs = pipeline_jobs;
  Scheduler scheduler(tiny_xsede(), gbps(7.0), policy, fast_cfg());
  scheduler.set_telemetry(&hub);
  const auto report = scheduler.run(small_fleet(24));
  EXPECT_EQ(report.completed, 24);
  return hub.to_json();
}

TEST(SchedulerTelemetry, ExportIsByteIdenticalAcrossPipelineWorkerCounts) {
  obs::TelemetryHub seq_hub(2.0, 1024, 1);
  obs::TelemetryHub par_hub(2.0, 1024, 1);
  const std::string seq = run_with_telemetry(1, seq_hub);
  const std::string par = run_with_telemetry(4, par_hub);
  EXPECT_GT(seq_hub.size(), 0u);
  EXPECT_EQ(seq, par);
}

TEST(SchedulerTelemetry, SamplesTrackFleetStateAndCompletionCounters) {
  obs::TelemetryHub hub(2.0, 1024, 1);
  run_with_telemetry(1, hub);
  ASSERT_GT(hub.size(), 0u);
  // The first sample fires on the first master tick — one session tick
  // after the t = 0 arrivals — and sees a fleet where nothing has finished.
  const auto& first = hub.sample(0);
  EXPECT_LE(first.t, 0.2);
  EXPECT_GT(first.running, 0);
  EXPECT_EQ(first.completed, 0u);
  // Cumulative counters are monotonic across the series, and by the last
  // sample some tenants have completed while others still run.
  for (std::size_t i = 1; i < hub.size(); ++i) {
    EXPECT_GE(hub.sample(i).completed, hub.sample(i - 1).completed);
    EXPECT_GE(hub.sample(i).t, hub.sample(i - 1).t);
  }
  const auto& last = hub.sample(hub.size() - 1);
  EXPECT_GT(last.completed, 0u);
  // The single-site fleet reports its power on site 0 of the per-site lane.
  ASSERT_EQ(last.site_power_w.size(), 1u);
  EXPECT_DOUBLE_EQ(last.site_power_w[0], last.power_w);
}

TEST(SchedulerTelemetry, WatchdogAbortTriggersTheFlightRecorder) {
  SchedulerPolicy policy;
  policy.max_concurrent = 4;
  policy.max_queue_depth = 8;
  // A deadline no transfer can meet: every attempt aborts, and each abort
  // must freeze a flight-recorder window naming the tenant.
  policy.supervision.attempt_deadline = 0.5;
  policy.supervision.max_attempts = 1;
  policy.horizon = 600.0;
  obs::TickFlightRecorder rec(32, 2);
  Scheduler scheduler(tiny_xsede(), gbps(7.0), policy, fast_cfg());
  scheduler.set_flight_recorder(&rec);
  std::vector<SchedulerJob> jobs;
  for (int i = 0; i < 4; ++i) {
    TransferJob job;
    job.name = "slow" + std::to_string(i);
    job.dataset = job_dataset(2 * kGB, 1);  // far more than 0.5 s of bytes
    job.policy = JobPolicy::kBalanced;
    job.max_channels = 2;
    jobs.push_back({std::move(job), 0.0});
  }
  const auto report = scheduler.run(std::move(jobs));
  EXPECT_EQ(report.completed, 0);
  EXPECT_GT(rec.triggers(), 0u);
  ASSERT_FALSE(rec.dumps().empty());
  EXPECT_NE(rec.dumps()[0].reason.find("watchdog abort"), std::string::npos);
  // The frozen window carries the ticks leading up to the abort.
  EXPECT_FALSE(rec.dumps()[0].ticks.empty());
}

TEST(SchedulerTelemetry, CleanRunLeavesTheFlightRecorderQuiet) {
  obs::TickFlightRecorder rec;
  SchedulerPolicy policy;
  policy.max_concurrent = 8;
  policy.max_queue_depth = 8;
  Scheduler scheduler(tiny_xsede(), gbps(7.0), policy, fast_cfg());
  scheduler.set_flight_recorder(&rec);
  const auto report = scheduler.run(small_fleet(8));
  EXPECT_EQ(report.completed, 8);
  EXPECT_EQ(rec.triggers(), 0u);
}

}  // namespace
}  // namespace eadt::exp
