// SLAEE end-to-end behaviour (Figures 5-7) on byte-scaled datasets.
#include <gtest/gtest.h>

#include <algorithm>

#include "exp/runner.hpp"

namespace eadt::exp {
namespace {

testbeds::Testbed scaled(testbeds::Testbed t, unsigned divisor) {
  // Shrink total bytes AND the band maxima so the size *mix* is preserved —
  // otherwise a lone near-20 GB file floors every algorithm's duration and
  // masks the differences the paper measures.
  t.recipe.total_bytes /= divisor;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / divisor, band.min_size * 2);
  }
  return t;
}

// Datasets are byte-scaled, so the adaptive algorithms' probe windows are
// scaled to match (5 s at paper scale ~ 1 s here); otherwise HTEE's search
// phase would dominate the shortened transfers.
proto::SessionConfig fast_cfg() {
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  return cfg;
}

// The FutureGrid/DIDCLAB SLA cases start already satisfied (no ramp to
// amortise), so they use the paper's true 5-second windows — short scaled
// windows would react to sub-window lulls (e.g. a chunk's small-file tail)
// that 5-second smoothing hides.
proto::SessionConfig paper_cfg() { return proto::SessionConfig{}; }

class SlaXsede : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new testbeds::Testbed(scaled(testbeds::xsede(), 8));
    dataset_ = new proto::Dataset(testbed_->make_dataset());
    const auto promc = run_algorithm(Algorithm::kProMc, *testbed_, *dataset_, 12, fast_cfg());
    max_throughput_ = promc.result.avg_throughput();
    promc_energy_ = promc.energy();
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete testbed_;
    dataset_ = nullptr;
    testbed_ = nullptr;
  }
  static testbeds::Testbed* testbed_;
  static proto::Dataset* dataset_;
  static BitsPerSecond max_throughput_;
  static Joules promc_energy_;
};
testbeds::Testbed* SlaXsede::testbed_ = nullptr;
proto::Dataset* SlaXsede::dataset_ = nullptr;
BitsPerSecond SlaXsede::max_throughput_ = 0.0;
Joules SlaXsede::promc_energy_ = 0.0;

TEST_F(SlaXsede, ModerateTargetsAreDeliveredClosely) {
  // "SLAEE is able to achieve all SLA expectations within 7 % deviation"
  // (except the 95 % corner). We allow a slightly wider band on the
  // simulator but keep the structure: shortfall must stay small.
  for (double target : {80.0, 70.0, 50.0}) {
    const auto out =
        run_slaee(*testbed_, *dataset_, target, max_throughput_, 12, fast_cfg());
    EXPECT_TRUE(out.result.completed) << target;
    EXPECT_LT(out.shortfall_percent(), 12.0) << "target " << target << "%";
  }
}

TEST_F(SlaXsede, LowerTargetsUseLessEnergyThanProMcMax) {
  // Figure 5b: SLAEE cuts energy versus the ProMC maximum-throughput run,
  // by up to ~30 % at relaxed targets.
  const auto relaxed = run_slaee(*testbed_, *dataset_, 50.0, max_throughput_, 12, fast_cfg());
  EXPECT_LT(relaxed.energy(), promc_energy_);
}

TEST_F(SlaXsede, TighterTargetsNeedMoreConcurrency) {
  const auto t50 = run_slaee(*testbed_, *dataset_, 50.0, max_throughput_, 12, fast_cfg());
  const auto t90 = run_slaee(*testbed_, *dataset_, 90.0, max_throughput_, 12, fast_cfg());
  EXPECT_LE(t50.final_concurrency, t90.final_concurrency);
}

TEST_F(SlaXsede, NinetyFivePercentIsTheHardCorner) {
  // The paper could not deliver the 95 % target on XSEDE even at the
  // maximum concurrency; the run must still terminate.
  const auto out = run_slaee(*testbed_, *dataset_, 95.0, max_throughput_, 12, fast_cfg());
  EXPECT_TRUE(out.result.completed);
}

TEST(SlaFuturegrid, OvershootAtFiftyPercentTarget) {
  // Figure 6c: concurrency 1 already beats 50 % of max, so SLAEE overshoots
  // (deviation ~25 %) — it cannot go below one channel.
  auto t = scaled(testbeds::futuregrid(), 4);
  const auto ds = t.make_dataset();
  const auto promc = run_algorithm(Algorithm::kProMc, t, ds, 12, paper_cfg());
  const auto out = run_slaee(t, ds, 50.0, promc.result.avg_throughput(), 12, paper_cfg());
  EXPECT_TRUE(out.result.completed);
  // SLAEE cannot go below its throughput floor: it parks at a minimal level
  // and overshoots the relaxed target by a wide margin (paper: ~25 %).
  EXPECT_LE(out.final_concurrency, 2);
  EXPECT_LT(out.shortfall_percent(), -10.0);  // well above target
}

TEST(SlaFuturegrid, EnergySavingsVersusProMc) {
  auto t = scaled(testbeds::futuregrid(), 4);
  const auto ds = t.make_dataset();
  const auto promc = run_algorithm(Algorithm::kProMc, t, ds, 12, paper_cfg());
  const auto out = run_slaee(t, ds, 70.0, promc.result.avg_throughput(), 12, paper_cfg());
  EXPECT_LT(out.energy(), promc.energy() * 1.05);
}

TEST(SlaDidclab, LanTargetsOvershootMassively) {
  // Figure 7c: on the LAN concurrency 1 is optimal for everything, so low
  // targets are overshot by up to ~100 %.
  auto t = scaled(testbeds::didclab(), 4);
  const auto ds = t.make_dataset();
  const auto promc = run_algorithm(Algorithm::kProMc, t, ds, 1, paper_cfg());
  const auto out = run_slaee(t, ds, 50.0, promc.result.avg_throughput(), 12, paper_cfg());
  EXPECT_TRUE(out.result.completed);
  EXPECT_EQ(out.final_concurrency, 1);
  EXPECT_GT(out.deviation_percent(), 30.0);
}

TEST(SlaOutcome, DeviationMath) {
  SlaOutcome o;
  o.target_throughput = mbps(1000.0);
  o.result.duration = 8.0;
  o.result.bytes = static_cast<Bytes>(900.0 * 1e6);  // 900 Mbps achieved
  o.result.completed = true;
  EXPECT_NEAR(o.deviation_percent(), 10.0, 1e-9);
  EXPECT_NEAR(o.shortfall_percent(), 10.0, 1e-9);
  o.result.bytes = static_cast<Bytes>(1200.0 * 1e6);  // 1200 Mbps: overshoot
  EXPECT_NEAR(o.deviation_percent(), 20.0, 1e-9);
  EXPECT_NEAR(o.shortfall_percent(), -20.0, 1e-9);
}

}  // namespace
}  // namespace eadt::exp
