#include "power/calibrator.hpp"

#include <gtest/gtest.h>

namespace eadt::power {
namespace {

GroundTruthServer intel_like(double curvature = 0.04, double noise = 0.02) {
  return GroundTruthServer({240.0, 28.0, 24.0, 18.0, 11.0}, 4, 115.0, curvature,
                           noise, Rng(1001));
}

GroundTruthServer amd_like() {
  // Eq. 3's premise — the paper's empirical regularity — is that a server's
  // whole power response scales roughly with its CPU TDP. The AMD box
  // (220 W TDP vs the Intel's 115 W) therefore draws ~1.91x across the
  // board; curvature and meter noise still make the prediction imperfect.
  // ...roughly: vendor differences leave each component 10-20 % off the
  // exact ratio, which is where the extra 2-3 % error comes from.
  return GroundTruthServer({486.0, 48.6, 50.3, 31.7, 23.9}, 8, 220.0, 0.05, 0.02,
                           Rng(2002));
}

TEST(Calibrator, RecoversCoefficientsOnCleanLinearTruth) {
  GroundTruthServer clean({200.0, 30.0, 25.0, 20.0, 10.0}, 4, 115.0,
                          /*curvature=*/0.0, /*noise=*/0.0, Rng(3));
  const auto cal = calibrate(clean, Rng(4));
  EXPECT_NEAR(cal.fitted.cpu_scale, 200.0, 1.0);
  EXPECT_NEAR(cal.fitted.mem, 30.0, 0.5);
  EXPECT_NEAR(cal.fitted.disk, 25.0, 0.5);
  EXPECT_NEAR(cal.fitted.nic, 20.0, 0.5);
  EXPECT_NEAR(cal.fitted.active_base, 10.0, 0.5);
  EXPECT_GT(cal.fine_grained_r2, 0.999);
}

TEST(Calibrator, RealisticTruthStillFitsWell) {
  auto server = intel_like();
  const auto cal = calibrate(server, Rng(5));
  EXPECT_GT(cal.fine_grained_r2, 0.95);
  EXPECT_GT(cal.fitted.cpu_scale, 0.0);
  EXPECT_GT(cal.fitted.nic, 0.0);
}

TEST(Calibrator, CpuPowerCorrelationIsHighButImperfect) {
  // The paper reports 89.71 % correlation between CPU utilization and power.
  auto server = intel_like();
  const auto cal = calibrate(server, Rng(6));
  EXPECT_GT(cal.cpu_power_correlation, 0.70);
  EXPECT_LT(cal.cpu_power_correlation, 0.999);
}

TEST(Calibrator, ToolProfilesCoverThePaperTools) {
  const auto tools = standard_tool_profiles();
  ASSERT_EQ(tools.size(), 5u);
  EXPECT_EQ(tools[0].name, "scp");
  EXPECT_EQ(tools[4].name, "gridftp");
  for (const auto& t : tools) {
    EXPECT_GT(t.cpu_level, 0.0);
    EXPECT_LE(t.cpu_level, 1.0);
  }
}

TEST(Calibrator, ErrorRatesMatchPaperBands) {
  // Section 2.2: fine-grained < 6 %; CPU-only worse than fine-grained but
  // < 8 %; TDP-extension adds error on the foreign machine.
  auto local = intel_like();
  auto remote = amd_like();
  const auto cal = calibrate(local, Rng(7));
  const auto table = evaluate_models(cal, local, remote, Rng(8));
  ASSERT_EQ(table.size(), 5u);
  for (const auto& row : table) {
    EXPECT_LT(row.fine_grained_mape, 6.0) << row.tool;
    EXPECT_LT(row.cpu_only_mape, 12.0) << row.tool;
    EXPECT_GE(row.cpu_only_mape, row.fine_grained_mape * 0.8) << row.tool;
    EXPECT_GT(row.tdp_extended_mape, 0.0) << row.tool;
    // Moving the CPU-only model across machines costs a few extra percent,
    // but it stays usable (paper: below 8 %, "error increases by 2-3 %").
    EXPECT_LT(row.tdp_extended_mape, 15.0) << row.tool;
  }
}

TEST(Calibrator, MeasurementIsNoisyButUnbiased) {
  auto server = intel_like(0.0, 0.05);
  const host::Utilization u{0.5, 0.3, 0.4, 0.4};
  const Watts truth = server.truth(4, u);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) sum += server.measure(4, u);
  EXPECT_NEAR(sum / 2000.0, truth, truth * 0.01);
}

}  // namespace
}  // namespace eadt::power
