// Shared fixtures: a small, fast synthetic environment and datasets for the
// engine-level tests (integration tests use the real testbeds instead).
#pragma once

#include "proto/dataset.hpp"
#include "proto/environment.hpp"

namespace eadt::testutil {

/// A 1 Gbps WAN-ish path (20 ms RTT) between two single-server sites.
/// Small numbers keep each simulated run in the low milliseconds.
inline proto::Environment small_env(int servers_per_site = 1) {
  proto::Environment env;
  env.name = "test-env";
  env.source.site = "src";
  env.destination.site = "dst";
  for (int i = 0; i < servers_per_site; ++i) {
    host::ServerSpec s;
    s.name = (i == 0 ? "srv" : "srv" + std::to_string(i));
    s.cores = 4;
    s.cpu_tdp = 100.0;
    s.nic_speed = gbps(1.0);
    s.mem_total = 16ULL * kGB;
    s.disk = {host::DiskKind::kParallelArray, gbps(2.0), 2.0, 0.0};
    s.per_core_goodput = mbps(600.0);
    env.source.servers.push_back(s);
    env.destination.servers.push_back(s);
  }
  env.source.power = {150.0, 20.0, 20.0, 10.0, 8.0};
  env.destination.power = env.source.power;
  env.path = {gbps(1.0), 0.020, 8 * kMB, 1500};
  env.route = net::didclab_route();
  return env;
}

/// files: explicit sizes.
inline proto::Dataset dataset_of(std::initializer_list<Bytes> sizes) {
  proto::Dataset ds;
  for (Bytes s : sizes) ds.files.push_back({s});
  return ds;
}

/// A mixed dataset around the small_env BDP (2.5 MB): some sub-BDP files,
/// some medium, a couple of large ones. ~600 MB total.
inline proto::Dataset mixed_dataset() {
  proto::Dataset ds;
  for (int i = 0; i < 40; ++i) ds.files.push_back({1 * kMB + i * 30 * kKB});
  for (int i = 0; i < 10; ++i) ds.files.push_back({20 * kMB + i * kMB});
  ds.files.push_back({150 * kMB});
  ds.files.push_back({200 * kMB});
  return ds;
}

}  // namespace eadt::testutil
