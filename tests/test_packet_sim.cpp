// Validation of the fluid model's TCP assumptions against the round-based
// packet simulator.
#include "net/packet_sim.hpp"

#include <gtest/gtest.h>

namespace eadt::net {
namespace {

PathSpec wan_path() { return {gbps(10.0), 0.040, 32 * kMB, 1500}; }

TEST(PacketSim, DegenerateInputs) {
  PacketSimConfig c;
  EXPECT_EQ(simulate_tcp_rounds(c, 100).flows.size(), 0u);  // zero-capacity path
  c.path = wan_path();
  EXPECT_EQ(simulate_tcp_rounds(c, 0).rounds, 0);
  c.flows = 0;
  EXPECT_EQ(simulate_tcp_rounds(c, 10).flows.size(), 0u);
}

TEST(PacketSim, SingleFlowIsWindowLimitedOnFatPipe) {
  // 32 MiB window over 40 ms cannot fill 10 Gbps: the round model must agree
  // with the fluid cap buffer/RTT to within a few percent.
  const auto path = wan_path();
  const auto fluid = stream_window_cap(path);
  const auto packet = packet_sim_steady_goodput(path, 1);
  EXPECT_NEAR(packet / fluid, 1.0, 0.08);
}

TEST(PacketSim, TwoFlowsFillTheWindowLimitedPipe) {
  // Two window-limited flows: aggregate ~ min(2 * window cap, link).
  const auto path = wan_path();
  const auto expected = std::min(2.0 * stream_window_cap(path), path.bandwidth);
  const auto packet = packet_sim_steady_goodput(path, 2);
  EXPECT_NEAR(packet / expected, 1.0, 0.12);
}

TEST(PacketSim, ManyFlowsSaturateTheLink) {
  // With plenty of flows the bottleneck, not the windows, binds; the round
  // model's loss synchronisation costs some utilisation, so expect >= 70 %.
  const auto path = wan_path();
  const auto packet = packet_sim_steady_goodput(path, 8);
  EXPECT_GT(packet, path.bandwidth * 0.70);
  EXPECT_LE(packet, path.bandwidth * 1.001);
}

TEST(PacketSim, CongestedFlowsShareFairly) {
  // Small windows removed: flows share a 1 Gbps pipe roughly equally.
  PathSpec path{gbps(1.0), 0.020, 64 * kMB, 1500};
  PacketSimConfig c;
  c.path = path;
  c.flows = 4;
  const auto r = simulate_tcp_rounds(c, 600);
  ASSERT_EQ(r.flows.size(), 4u);
  double min_flow = 1e18, max_flow = 0.0;
  for (const auto& f : r.flows) {
    min_flow = std::min(min_flow, f.goodput);
    max_flow = std::max(max_flow, f.goodput);
  }
  // Synchronised rounds make sharing nearly exact.
  EXPECT_GT(min_flow / max_flow, 0.9);
}

TEST(PacketSim, LossesOnlyWhenPipeOverflows) {
  // A single window-limited flow never overflows BDP + queue: zero losses.
  PacketSimConfig c;
  c.path = wan_path();
  const auto r = simulate_tcp_rounds(c, 400);
  EXPECT_DOUBLE_EQ(r.flows[0].losses, 0.0);

  // Sixteen unbounded flows on a small pipe must lose and back off.
  PacketSimConfig crowded;
  crowded.path = {mbps(100.0), 0.020, 64 * kMB, 1500};
  crowded.flows = 16;
  const auto rc = simulate_tcp_rounds(crowded, 400);
  double losses = 0.0;
  for (const auto& f : rc.flows) losses += f.losses;
  EXPECT_GT(losses, 0.0);
}

TEST(PacketSim, RampTimeMatchesSlowStartModel) {
  // The fluid model charges a cold file log2(target/IW) RTTs of ramp; the
  // round model's measured ramp should be in the same ballpark (within a
  // factor of two — round quantisation and the 10-segment IW differ from the
  // fluid model's 64 KB).
  const auto path = wan_path();
  PacketSimConfig c;
  c.path = path;
  const auto r = simulate_tcp_rounds(c, 400);
  const Seconds fluid_ramp = slow_start_penalty(path, 1 * kGB, 0.0);
  const Seconds packet_ramp = r.ramp_time(path);
  EXPECT_GT(packet_ramp, fluid_ramp * 0.4);
  EXPECT_LT(packet_ramp, fluid_ramp * 2.5);
}

TEST(PacketSim, LanRampIsNegligible) {
  PathSpec lan{gbps(1.0), 0.0002, 32 * kMB, 1500};
  PacketSimConfig c;
  c.path = lan;
  const auto r = simulate_tcp_rounds(c, 2000);
  EXPECT_LT(r.ramp_time(lan), 0.02);
  EXPECT_NEAR(packet_sim_steady_goodput(lan, 1) / gbps(1.0), 1.0, 0.05);
}

TEST(PacketSim, DeterministicAcrossRuns) {
  PacketSimConfig c;
  c.path = wan_path();
  c.flows = 3;
  const auto a = simulate_tcp_rounds(c, 300);
  const auto b = simulate_tcp_rounds(c, 300);
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.flows[i].segments_delivered, b.flows[i].segments_delivered);
  }
}

}  // namespace
}  // namespace eadt::net
