// Cross-traffic and integrity-verification extensions of the transfer engine.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/algorithms.hpp"
#include "net/tcp_model.hpp"
#include "proto/session.hpp"
#include "test_env.hpp"
#include "util/stats.hpp"

namespace eadt::proto {
namespace {

using testutil::dataset_of;
using testutil::small_env;

TEST(CrossTraffic, AvailableBandwidthMath) {
  net::PathSpec p{gbps(10.0), 0.04, 32 * kMB, 1500};
  EXPECT_DOUBLE_EQ(p.available_bandwidth(), gbps(10.0));
  p.background_traffic = gbps(4.0);
  EXPECT_DOUBLE_EQ(p.available_bandwidth(), gbps(6.0));
  p.background_traffic = gbps(12.0);  // oversubscribed by others
  EXPECT_DOUBLE_EQ(p.available_bandwidth(), 0.0);
  // The BDP the tuner reasons about is the *link's*, not the residue's.
  EXPECT_EQ(p.bdp(), 50'000'000ULL);
}

TEST(CrossTraffic, ThroughputShrinksWithBackgroundLoad) {
  auto env = small_env();
  const auto ds = dataset_of({200 * kMB, 200 * kMB, 200 * kMB, 200 * kMB});
  proto::TransferSession clear(env, ds, baselines::plan_promc(env, ds, 4));
  const auto r_clear = clear.run();

  env.path.background_traffic = mbps(600.0);  // 60 % of the 1 Gbps link busy
  proto::TransferSession busy(env, ds, baselines::plan_promc(env, ds, 4));
  const auto r_busy = busy.run();

  EXPECT_TRUE(r_busy.completed);
  EXPECT_LT(r_busy.avg_throughput(), r_clear.avg_throughput());
  EXPECT_LE(r_busy.avg_throughput(), mbps(400.0) * 1.01);  // residue-capped
}

TEST(CrossTraffic, FullyLoadedLinkStillTerminatesViaGuard) {
  auto env = small_env();
  env.path.background_traffic = env.path.bandwidth;  // nothing left
  const auto ds = dataset_of({1 * kMB});
  SessionConfig cfg;
  cfg.max_sim_time = 50.0;  // don't wait a simulated week
  proto::TransferSession s(env, ds, baselines::plan_guc(env, ds), cfg);
  const auto r = s.run();
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.bytes, 0u);
}

TEST(CrossTraffic, SlaeeCompensatesForBackgroundLoad) {
  auto env = small_env();
  env.source.servers[0].disk.max_bandwidth = gbps(4.0);
  env.destination.servers[0].disk.max_bandwidth = gbps(4.0);
  proto::Dataset ds;
  for (int i = 0; i < 60; ++i) ds.files.push_back({25 * kMB});
  SessionConfig cfg;
  cfg.sample_interval = 1.0;

  // Without background traffic this target is easy at low concurrency...
  core::SlaeeController quiet_ctl(mbps(400.0), 8);
  proto::TransferSession quiet(env, ds, core::plan_slaee(env, ds, 8), cfg);
  (void)quiet.run(&quiet_ctl);

  // ...with the link half-occupied SLAEE must climb higher to hold it.
  env.path.background_traffic = mbps(500.0);
  core::SlaeeController busy_ctl(mbps(400.0), 8);
  proto::TransferSession busy(env, ds, core::plan_slaee(env, ds, 8), cfg);
  const auto r = busy.run(&busy_ctl);
  EXPECT_TRUE(r.completed);
  EXPECT_GE(busy_ctl.final_level(), quiet_ctl.final_level());
}


TEST(Jitter, ZeroJitterStaysDeterministic) {
  const auto env = small_env();
  const auto ds = dataset_of({100 * kMB, 100 * kMB, 100 * kMB});
  proto::TransferSession a(env, ds, baselines::plan_promc(env, ds, 3));
  proto::TransferSession b(env, ds, baselines::plan_promc(env, ds, 3));
  EXPECT_DOUBLE_EQ(a.run().duration, b.run().duration);
}

TEST(Jitter, SameSeedReproduces) {
  auto env = small_env();
  env.rate_jitter_sd = 0.15;
  env.jitter_seed = 77;
  const auto ds = dataset_of({100 * kMB, 100 * kMB, 100 * kMB, 100 * kMB});
  proto::TransferSession a(env, ds, baselines::plan_promc(env, ds, 4));
  proto::TransferSession b(env, ds, baselines::plan_promc(env, ds, 4));
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_DOUBLE_EQ(ra.duration, rb.duration);
  EXPECT_DOUBLE_EQ(ra.end_system_energy, rb.end_system_energy);
}

TEST(Jitter, DifferentSeedsDiverge) {
  auto env = small_env();
  env.rate_jitter_sd = 0.15;
  const auto ds = dataset_of({100 * kMB, 100 * kMB, 100 * kMB, 100 * kMB});
  env.jitter_seed = 1;
  proto::TransferSession a(env, ds, baselines::plan_promc(env, ds, 4));
  const auto ra = a.run();
  env.jitter_seed = 2;
  proto::TransferSession b(env, ds, baselines::plan_promc(env, ds, 4));
  const auto rb = b.run();
  EXPECT_NE(ra.duration, rb.duration);
}

TEST(Jitter, MeanBehaviourTracksTheDeterministicRun) {
  auto env = small_env();
  const auto ds = testutil::mixed_dataset();
  proto::TransferSession clean(env, ds, baselines::plan_promc(env, ds, 4));
  const auto r0 = clean.run();

  env.rate_jitter_sd = 0.10;
  RunningStats durations;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    env.jitter_seed = seed;
    proto::TransferSession s(env, ds, baselines::plan_promc(env, ds, 4));
    const auto r = s.run();
    ASSERT_TRUE(r.completed);
    ASSERT_EQ(r.bytes, ds.total_bytes());
    durations.add(r.duration);
  }
  // Noise is roughly zero-mean; jittered runs are a touch slower on average
  // (the 0.1 floor is asymmetric), never wildly off.
  EXPECT_NEAR(durations.mean() / r0.duration, 1.0, 0.15);
}

TEST(Checksum, VerificationSlowsAndCostsEnergy) {
  const auto env = small_env();
  proto::Dataset ds;
  for (int i = 0; i < 40; ++i) ds.files.push_back({20 * kMB});

  auto plain = baselines::plan_promc(env, ds, 4);
  auto verified = plain;
  verified.checksum_rate = mbps(800.0);  // hash pass roughly at line rate

  proto::TransferSession s1(env, ds, plain);
  proto::TransferSession s2(env, ds, verified);
  const auto r1 = s1.run();
  const auto r2 = s2.run();
  EXPECT_TRUE(r2.completed);
  // "...causes significant slowdowns in average transfer throughput."
  EXPECT_LT(r2.avg_throughput(), r1.avg_throughput() * 0.8);
  EXPECT_GT(r2.end_system_energy, r1.end_system_energy);
}

TEST(Checksum, GoPlanTogglesIt) {
  const auto env = small_env();
  const auto ds = dataset_of({10 * kMB, 300 * kMB});
  EXPECT_DOUBLE_EQ(baselines::plan_go(env, ds).checksum_rate, 0.0);
  EXPECT_GT(baselines::plan_go(env, ds, /*verify_checksums=*/true).checksum_rate, 0.0);
}

TEST(Checksum, ZeroRateMeansDisabled) {
  const auto env = small_env();
  const auto ds = dataset_of({50 * kMB});
  auto plan = baselines::plan_guc(env, ds);
  plan.checksum_rate = 0.0;
  proto::TransferSession s(env, ds, plan);
  EXPECT_TRUE(s.run().completed);
}

}  // namespace
}  // namespace eadt::proto
