// Allocation guard for the engine's steady-state hot path.
//
// MODEL.md §11's invariant: once a session's scratch buffers have grown to
// their working size, a steady-state tick — rate allocation, byte movement,
// energy accounting, sampling, the ticker re-arm itself — performs zero heap
// allocations. The proof is a counting replacement of the global operator
// new/delete: a Controller snapshots the allocation counter at every
// sampling window, and after the warm-up windows every delta must be zero.
//
// This lives in its own test binary: replacing global new/delete is
// process-wide, and the counters must not be perturbed by (or perturb) the
// main suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "proto/session.hpp"
#include "test_env.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// GCC pairs these against the default operator new and flags the free() as
// mismatched; our replacement new above is malloc-backed, so it is not.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace eadt::proto {
namespace {

using testutil::dataset_of;
using testutil::small_env;

/// Snapshots the global allocation counter at every sampling window into a
/// fixed-size buffer — the controller itself must not allocate mid-run.
class AllocSnapshotController : public Controller {
 public:
  void on_sample(TransferSession& /*session*/, const SampleStats& /*stats*/) override {
    if (count_ < kMax) snapshots_[count_++] = g_allocations.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::uint64_t at(std::size_t i) const { return snapshots_[i]; }

 private:
  static constexpr std::size_t kMax = 256;
  std::uint64_t snapshots_[kMax] = {};
  std::size_t count_ = 0;
};

TEST(AllocGuard, SteadyStateTicksAreAllocationFree) {
  const auto env = small_env();
  // One file far larger than the deadline allows: the run never completes
  // and never resolves a file mid-tick, so every window past warm-up is
  // pure steady state.
  const auto ds = dataset_of({100ULL * kGB});
  TransferPlan plan;
  Chunk all{SizeClass::kLarge, {0}, 100ULL * kGB};
  plan.chunks.push_back(all);
  plan.params.push_back({1, 1, 2});

  SessionConfig cfg;
  cfg.tick = 0.1;
  cfg.sample_interval = 2.0;
  cfg.max_sim_time = 120.0;

  TransferSession session(env, ds, plan, cfg);
  AllocSnapshotController ctl;
  const auto r = session.run(&ctl);
  EXPECT_FALSE(r.completed);

  // ~60 windows; the first few may still grow scratch capacity (rate
  // vectors, the event heap, the samples reserve) — after that, flat.
  ASSERT_GE(ctl.count(), 16u);
  const std::size_t warmup = 2;
  for (std::size_t i = warmup + 1; i < ctl.count(); ++i) {
    EXPECT_EQ(ctl.at(i) - ctl.at(i - 1), 0u)
        << "heap allocation between sampling windows " << i - 1 << " and " << i;
  }
}

}  // namespace
}  // namespace eadt::proto
