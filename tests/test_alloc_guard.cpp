// Allocation guard for the engine's steady-state hot path.
//
// MODEL.md §11's invariant: once a session's scratch buffers have grown to
// their working size, a steady-state tick — rate allocation, byte movement,
// energy accounting, sampling, the ticker re-arm itself — performs zero heap
// allocations. The proof is a counting replacement of the global operator
// new/delete: a Controller snapshots the allocation counter at every
// sampling window, and after the warm-up windows every delta must be zero.
//
// This lives in its own test binary: replacing global new/delete is
// process-wide, and the counters must not be perturbed by (or perturb) the
// main suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <vector>

#include "exp/scheduler.hpp"
#include "exp/service.hpp"
#include "obs/telemetry.hpp"
#include "proto/session.hpp"
#include "test_env.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// GCC pairs these against the default operator new and flags the free() as
// mismatched; our replacement new above is malloc-backed, so it is not.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace eadt::proto {
namespace {

using testutil::dataset_of;
using testutil::small_env;

/// Snapshots the global allocation counter at every sampling window into a
/// fixed-size buffer — the controller itself must not allocate mid-run.
class AllocSnapshotController : public Controller {
 public:
  void on_sample(TransferSession& /*session*/, const SampleStats& /*stats*/) override {
    if (count_ < kMax) snapshots_[count_++] = g_allocations.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] std::uint64_t at(std::size_t i) const { return snapshots_[i]; }

 private:
  static constexpr std::size_t kMax = 256;
  std::uint64_t snapshots_[kMax] = {};
  std::size_t count_ = 0;
};

TEST(AllocGuard, SteadyStateTicksAreAllocationFree) {
  const auto env = small_env();
  // One file far larger than the deadline allows: the run never completes
  // and never resolves a file mid-tick, so every window past warm-up is
  // pure steady state.
  const auto ds = dataset_of({100ULL * kGB});
  TransferPlan plan;
  Chunk all{SizeClass::kLarge, {0}, 100ULL * kGB};
  plan.chunks.push_back(all);
  plan.params.push_back({1, 1, 2});

  SessionConfig cfg;
  cfg.tick = 0.1;
  cfg.sample_interval = 2.0;
  cfg.max_sim_time = 120.0;

  TransferSession session(env, ds, plan, cfg);
  AllocSnapshotController ctl;
  const auto r = session.run(&ctl);
  EXPECT_FALSE(r.completed);

  // ~60 windows; the first few may still grow scratch capacity (rate
  // vectors, the event heap, the samples reserve) — after that, flat.
  ASSERT_GE(ctl.count(), 16u);
  const std::size_t warmup = 2;
  for (std::size_t i = warmup + 1; i < ctl.count(); ++i) {
    EXPECT_EQ(ctl.at(i) - ctl.at(i - 1), 0u)
        << "heap allocation between sampling windows " << i - 1 << " and " << i;
  }
}

}  // namespace
}  // namespace eadt::proto

namespace eadt::exp {
namespace {

/// The scheduler's steady-state master tick must be allocation-free too: the
/// per-tick scratch (watchdog/finish lists, path groups, staged allocation
/// slices) is Scheduler-owned and reused, and each session's tick is covered
/// by the single-session guard above. The Scheduler owns its controllers and
/// its simulation, so there is no mid-run hook to snapshot from; instead this
/// is a differential: the same never-completing 24-tenant schedule run to
/// horizon T and to horizon 2T must allocate exactly the same number of
/// times — any per-tick allocation would make the longer run allocate more.
std::uint64_t fleet_allocations(const Seconds horizon, const double telemetry_stride) {
  auto tb = testbeds::xsede();
  SchedulerPolicy policy;
  policy.max_concurrent = 24;
  policy.max_queue_depth = 24;
  policy.horizon = horizon;
  proto::SessionConfig cfg;
  cfg.tick = 0.1;
  cfg.sample_interval = 2.0;

  std::vector<SchedulerJob> jobs;
  for (int i = 0; i < 24; ++i) {
    TransferJob job;
    // One file no horizon this short can finish: no tenant ever completes,
    // so every tick past warm-up is pure steady state and the two horizons
    // run byte-identical prefixes of the same schedule.
    job.name = "g";
    job.name += std::to_string(i);
    job.dataset.files.push_back({100ULL * kGB});
    job.policy = JobPolicy::kDeadline;
    job.max_channels = 2;
    jobs.push_back({std::move(job), 0.0});
  }

  // The telemetry instruments ride along (hub pre-sized at construction,
  // recorder ring reserved up front), outside the counted window: attaching
  // them must not add per-tick or per-sample allocations.
  obs::TelemetryHub hub(telemetry_stride, 256, 1);
  obs::TickFlightRecorder flightrec;
  Scheduler scheduler(tb, gbps(7.0), policy, cfg);
  scheduler.set_telemetry(&hub);
  scheduler.set_flight_recorder(&flightrec);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const auto report = scheduler.run(std::move(jobs));
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(report.completed, 0);
  EXPECT_EQ(report.failed, 24);  // horizon cleanup, identically in both runs
  if (telemetry_stride > 0.0) {
    EXPECT_GT(hub.size(), 0u);
  }
  EXPECT_EQ(flightrec.triggers(), 0u);  // a clean run never dumps
  return after - before;
}

TEST(AllocGuard, SchedulerSteadyStateTicksAreAllocationFree) {
  const std::uint64_t short_run = fleet_allocations(60.0, /*telemetry_stride=*/0.0);
  const std::uint64_t long_run = fleet_allocations(120.0, /*telemetry_stride=*/0.0);
  EXPECT_EQ(short_run, long_run)
      << "the extra 600 steady-state master ticks of the longer run allocated "
      << (long_run - short_run) << " times";
}

TEST(AllocGuard, TelemetrySamplingTicksAreAllocationFree) {
  // Same differential with the sampler live at a 5 s stride: the longer run
  // takes 12 more samples than the shorter, and record() must commit each of
  // them into the pre-sized ring without touching the heap.
  const std::uint64_t short_run = fleet_allocations(60.0, /*telemetry_stride=*/5.0);
  const std::uint64_t long_run = fleet_allocations(120.0, /*telemetry_stride=*/5.0);
  EXPECT_EQ(short_run, long_run)
      << "the longer run's extra telemetry samples allocated "
      << (long_run - short_run) << " times";
}

}  // namespace
}  // namespace eadt::exp
